// Command stashbench regenerates the paper's tables and figures against the
// simulated cluster. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured.
//
// Usage:
//
//	stashbench -exp fig6a            # one experiment
//	stashbench -exp fig6a,fig7c      # several
//	stashbench -exp all              # everything
//	stashbench -exp all -full        # paper-scale request counts (slow)
//	stashbench -exp all -json BENCH.json  # machine-readable reports for trajectory tracking
//	stashbench -exp diff             # differential oracle cross-check (exits 1 on divergence)
//	stashbench -list                 # list experiment IDs
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"stash/internal/bench"
	"stash/internal/cluster"
	"stash/internal/obs"
	"stash/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id(s), comma separated, or 'all'")
		list     = flag.Bool("list", false, "list available experiment ids and exit")
		nodes    = flag.Int("nodes", 16, "simulated cluster size (paper: 120)")
		seed     = flag.Int64("seed", 42, "workload and dataset seed")
		points   = flag.Int("points", 512, "observations per storage block")
		full     = flag.Bool("full", false, "paper-scale request counts (slow)")
		stripes  = flag.Int("stripes", 0, "lock stripes per STASH graph shard (0 = cache default; 1 = single-lock baseline)")
		popwork  = flag.Int("popworkers", 0, "background cache-population workers per node (0 = cluster default)")
		diskpar  = flag.Int("diskparallel", 0, "concurrent block reads per disk fetch (0/1 = serial)")
		coalesce = flag.Bool("coalesce", false, "enable request coalescing + serve-side singleflight on experiment clusters")
		window   = flag.Duration("window", 0, "coalescer admission window (0 with -coalesce = cluster default)")
		metrics  = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to this file after the experiments (\"-\" for stderr)")
		jsonOut  = flag.String("json", "", "write the experiment reports as one machine-readable JSON document to this file (\"-\" for stdout)")
		explain  = flag.Bool("explain", false, "profile a sample query (cold, then warm) on a default cluster and print its EXPLAIN summaries")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *explain {
		if err := runExplain(*nodes, *seed, *points); err != nil {
			fmt.Fprintf(os.Stderr, "stashbench: explain: %v\n", err)
			os.Exit(1)
		}
		if *exp == "" {
			return
		}
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "stashbench: -exp required (try -list)")
		os.Exit(2)
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = bench.Experiments()
	}

	opts := bench.Options{
		Nodes:             *nodes,
		Seed:              *seed,
		PointsPerBlock:    *points,
		Quick:             !*full,
		Stripes:           *stripes,
		PopulationWorkers: *popwork,
		ParallelReads:     *diskpar,
		Coalesce:          *coalesce,
		CoalesceWindow:    *window,
		Out:               os.Stdout,
	}

	start := time.Now()
	doc := benchDocument{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Options: benchRunConfig{
			Nodes: *nodes, Seed: *seed, PointsPerBlock: *points, Full: *full,
		},
	}
	// With -json, sample the metrics registry through the run so the document
	// can embed a timeline summary (windowed p99, rates, ratios) instead of
	// only since-boot totals.
	var tl *obs.TSDB
	var tlStop func()
	if *jsonOut != "" {
		tl, tlStop = startTimeline()
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		rep, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stashbench: %s: %v\n", id, err)
			doc.Failed = append(doc.Failed, id)
			continue
		}
		doc.Reports = append(doc.Reports, rep)
	}
	doc.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	if tlStop != nil {
		tlStop()
		doc.Timeline = summarizeTimeline(tl, doc.ElapsedMS)
	}
	if *jsonOut != "" {
		if err := writeReportsJSON(*jsonOut, doc); err != nil {
			fmt.Fprintf(os.Stderr, "stashbench: json output: %v\n", err)
			doc.Failed = append(doc.Failed, "-json")
		}
	}
	if *metrics != "" {
		if err := writeMetricsSnapshot(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "stashbench: metrics snapshot: %v\n", err)
			doc.Failed = append(doc.Failed, "-metrics")
		}
	}
	if len(doc.Failed) > 0 {
		os.Exit(1)
	}
}

// benchDocument is the `-json` output: one run's reports plus the knobs that
// produced them, so BENCH_*.json files are comparable across PRs.
type benchDocument struct {
	Generated string           `json:"generated"`
	Options   benchRunConfig   `json:"options"`
	Reports   []bench.Report   `json:"reports"`
	Failed    []string         `json:"failed,omitempty"`
	ElapsedMS float64          `json:"elapsedMs"`
	Timeline  *timelineSummary `json:"timeline,omitempty"`
}

// timelineSummary condenses the run's sampled telemetry history: what the
// whole run looked like as a trend, not just its final counter values.
type timelineSummary struct {
	Samples    int     `json:"samples"`
	Series     int     `json:"series"`
	IntervalMS float64 `json:"intervalMs"`
	SpanMS     float64 `json:"spanMs"`
	// QueryP99MS is the p99 of coordinator query latency across the run's
	// observations (bucket delta between first and last sample).
	QueryP99MS float64 `json:"queryP99Ms,omitempty"`
	// QueryRate is coordinator queries per second across the run.
	QueryRate float64 `json:"queryRate,omitempty"`
	// CacheHitRatio is hits/(hits+misses) summed over all tiers.
	CacheHitRatio float64 `json:"cacheHitRatio,omitempty"`
	// ErrorRatio is error outcomes over all outcomes.
	ErrorRatio float64 `json:"errorRatio,omitempty"`
}

// timelineInterval is the -json sampling cadence: fine enough to catch
// per-experiment phases, coarse enough to stay invisible in the results.
const timelineInterval = 250 * time.Millisecond

// startTimeline begins sampling the process registry in the background and
// returns the store plus a stop function that takes one final sample.
func startTimeline() (*obs.TSDB, func()) {
	t := obs.NewTSDB(nil, obs.TSDBConfig{History: 4096, Interval: timelineInterval})
	t.Sample()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(t.Interval())
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.Sample()
			case <-stop:
				return
			}
		}
	}()
	return t, func() {
		close(stop)
		<-done
		t.Sample()
	}
}

// summarizeTimeline folds the sampled history into the embedded summary.
func summarizeTimeline(t *obs.TSDB, elapsedMS float64) *timelineSummary {
	s := &timelineSummary{
		Samples:    t.Samples(),
		Series:     len(t.Names()),
		IntervalMS: float64(t.Interval().Milliseconds()),
		SpanMS:     elapsedMS,
	}
	if v, _, ok := t.QuantileOver("stash_query_duration_seconds", 0.99, 0); ok {
		s.QueryP99MS = v * 1000
	}
	if v, ok := t.RateOver("stash_coord_queries_total", 0); ok {
		s.QueryRate = v
	}
	hits, _ := t.DeltaOver("stash_cache_hits_total", 0)
	misses, _ := t.DeltaOver("stash_cache_misses_total", 0)
	if hits+misses > 0 {
		s.CacheHitRatio = hits / (hits + misses)
	}
	errs, _ := t.DeltaOver(`stash_coord_queries_total{outcome="error"}`, 0)
	total, _ := t.DeltaOver("stash_coord_queries_total", 0)
	if total > 0 {
		s.ErrorRatio = errs / total
	}
	return s
}

// benchRunConfig records the run's sizing knobs inside the JSON document.
type benchRunConfig struct {
	Nodes          int   `json:"nodes"`
	Seed           int64 `json:"seed"`
	PointsPerBlock int   `json:"pointsPerBlock"`
	Full           bool  `json:"full"`
}

// writeReportsJSON serializes the run document ("-" routes to stdout).
func writeReportsJSON(path string, doc benchDocument) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("reports written to %s\n", path)
	return nil
}

// runExplain drives one state-level query against a default cluster twice —
// cold (disk-backed) and warm (cache-served) — with query profiling on, and
// prints each run's EXPLAIN summary plus the full JSON of the cold run. The
// side-by-side pair is the quickest demonstration of what the profile
// captures: the cold run shows disk scans and blocks read, the warm run the
// same footprint served from the graph.
func runExplain(nodes int, seed int64, points int) error {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Seed = uint64(seed)
	cfg.PointsPerBlock = points
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	c.Start()
	defer c.Stop()

	rng := rand.New(rand.NewSource(seed))
	q := workload.RandomQuery(rng, workload.State)
	cl := c.Client()
	for _, label := range []string{"cold", "warm"} {
		ctx, p := obs.WithProfile(context.Background())
		res, err := cl.QueryContext(ctx, q)
		if err != nil {
			return fmt.Errorf("%s run: %w", label, err)
		}
		status := "ok"
		if !res.Coverage.Complete() {
			status = "partial"
		}
		p.Finish(status)
		d := p.Data()
		fmt.Printf("%-4s %s\n", label, d.String())
		if label == "cold" {
			fmt.Printf("     %s\n", d.JSON())
		}
	}
	return nil
}

// writeMetricsSnapshot dumps the process-global metrics registry accumulated
// across every experiment in Prometheus text form. The experiment tables stay
// on stdout, so "-" routes the snapshot to stderr.
func writeMetricsSnapshot(path string) error {
	if path == "-" {
		return obs.Default().WritePrometheus(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.Default().WritePrometheus(f); err != nil {
		return err
	}
	fmt.Printf("metrics snapshot written to %s\n", path)
	return nil
}
