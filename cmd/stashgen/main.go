// Command stashgen materializes blocks of the synthetic NAM-like dataset as
// CSV — useful for inspecting exactly what the simulated backing store
// serves, or for feeding external tools. The dataset is deterministic in
// (seed, block): re-running with the same flags reproduces identical rows.
//
// Usage:
//
//	stashgen -prefix 9q8 -day 2015-02-02              # one block to stdout
//	stashgen -box 35,37,-103,-95 -day 2015-02-02      # all blocks in a box
//	stashgen -prefix 9q8 -day 2015-02-02 -o block.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"stash/internal/galileo"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/temporal"
)

func main() {
	var (
		prefix = flag.String("prefix", "", "geohash block prefix (e.g. 9q8)")
		boxArg = flag.String("box", "", "minLat,maxLat,minLon,maxLon — emit every block intersecting the box")
		dayArg = flag.String("day", "2015-02-02", "day (YYYY-MM-DD)")
		seed   = flag.Uint64("seed", 42, "dataset seed")
		points = flag.Int("points", 512, "observations per block")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	day, err := temporal.Parse(*dayArg, temporal.Day)
	if err != nil {
		log.Fatalf("stashgen: %v", err)
	}

	var prefixes []string
	switch {
	case *prefix != "" && *boxArg != "":
		log.Fatal("stashgen: -prefix and -box are mutually exclusive")
	case *prefix != "":
		prefixes = []string{*prefix}
	case *boxArg != "":
		box, err := parseBox(*boxArg)
		if err != nil {
			log.Fatalf("stashgen: %v", err)
		}
		prefixes, err = geohash.Cover(box, galileo.DefaultBlockPrefixLen)
		if err != nil {
			log.Fatalf("stashgen: %v", err)
		}
	default:
		log.Fatal("stashgen: one of -prefix or -box is required")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("stashgen: %v", err)
		}
		defer f.Close()
		w = f
	}

	gen := &namgen.Generator{Seed: *seed, PointsPerBlock: *points}
	cw := csv.NewWriter(w)
	header := append([]string{"block", "lat", "lon", "time"}, namgen.Attributes...)
	if err := cw.Write(header); err != nil {
		log.Fatalf("stashgen: %v", err)
	}
	rows := 0
	for _, p := range prefixes {
		obs, err := gen.Block(p, day)
		if err != nil {
			log.Fatalf("stashgen: block %s: %v", p, err)
		}
		for _, o := range obs {
			rec := []string{
				p,
				strconv.FormatFloat(o.Lat, 'f', 6, 64),
				strconv.FormatFloat(o.Lon, 'f', 6, 64),
				o.Time.UTC().Format("2006-01-02T15:04:05Z"),
			}
			for _, attr := range namgen.Attributes {
				v, _ := o.Value(attr)
				rec = append(rec, strconv.FormatFloat(v, 'f', 4, 64))
			}
			if err := cw.Write(rec); err != nil {
				log.Fatalf("stashgen: %v", err)
			}
			rows++
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		log.Fatalf("stashgen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "stashgen: wrote %d observations from %d block(s)\n", rows, len(prefixes))
}

func parseBox(s string) (geohash.Box, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return geohash.Box{}, fmt.Errorf("box needs 4 comma-separated numbers, got %q", s)
	}
	var vals [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return geohash.Box{}, fmt.Errorf("box component %d: %w", i, err)
		}
		vals[i] = v
	}
	box := geohash.Box{MinLat: vals[0], MaxLat: vals[1], MinLon: vals[2], MaxLon: vals[3]}
	if !box.Valid() {
		return geohash.Box{}, fmt.Errorf("invalid box %v", box)
	}
	return box, nil
}
