// Command stashd runs a STASH cluster in-process and serves aggregation
// queries over HTTP/JSON — the role the paper's Grafana WorldMap front-end
// talks to (§VI-A). Any client that can POST JSON can drive it; the
// examples/dashboard program is one.
//
// Endpoints:
//
//	POST /query    evaluate an aggregation query (JSON body, see QueryRequest).
//	               ?timeout=250ms bounds the whole query; a degraded partial
//	               answer returns 206 with a coverage block, a query that
//	               produced nothing at all before its deadline returns 504.
//	               ?trace=1 records the query as a span tree and embeds it in
//	               the JSON response; ?trace=chrome returns the spans as
//	               Chrome trace-event JSON loadable in Perfetto.
//	               ?explain=1 embeds the query's profile — per-stage latencies,
//	               cache-tier outcomes, nodes contacted, blocks read — in the
//	               JSON response (EXPLAIN ANALYZE for STASH; never cached).
//	GET  /stats    cluster counters, a flat metrics snapshot, and the hot keys
//	GET  /metrics  Prometheus text exposition of every registered metric
//	GET  /healthz  readiness detail as JSON (ingest version, node count,
//	               recorder/coalescer flags)
//	POST /faults   inject or heal a node fault (requires -faults; see FaultRequest)
//	GET  /faults   list currently faulted nodes
//
// Elastic membership (online scale-out/scale-in with warm cell handoff):
//
//	POST /admin/join       add a node; its partitions arrive warm via handoff
//	POST /admin/leave      retire a node ({"node": N}); its cells are handed
//	                       off to the surviving owners before it stops
//	GET  /admin/rebalance  membership epoch, member list, and cumulative
//	                       handoff counters
//
// With -debug the standard net/http/pprof profiles are additionally served
// under /debug/pprof/, alongside the introspection endpoints:
//
//	GET  /debug/queries  the flight recorder's last -flightrec completed query
//	                     profiles, newest first (?min_ms=, ?level=, ?n= filter)
//	GET  /debug/slow     the slow-query ring: profiles over -slowms
//	GET  /debug/hot      hot-key telemetry: the top-K most-requested cell keys,
//	                     globally and per node (?n= bounds each list)
//	GET  /debug/timeline the telemetry history: sampled time series per metric
//	                     (?name= selects one series or family, ?window= bounds
//	                     the lookback, ?step= downsamples; no ?name= lists the
//	                     retained series)
//	GET  /debug/alerts   SLO burn-rate alert states plus the recent transition
//	                     ring
//
// Usage:
//
//	stashd -addr :8080 -nodes 16 -points 512 -resilient -faults -debug
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"time"

	"stash"
	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		nodes     = flag.Int("nodes", 16, "simulated cluster size")
		seed      = flag.Uint64("seed", 42, "synthetic dataset seed")
		points    = flag.Int("points", 512, "observations per storage block")
		repl      = flag.Bool("replication", true, "enable hotspot clique replication")
		hists     = flag.Bool("histograms", false, "maintain per-attribute histograms in result cells")
		stripes   = flag.Int("stripes", stash.DefaultCacheConfig().Stripes, "lock stripes per STASH graph shard (rounded up to a power of two; 1 = single lock)")
		popwork   = flag.Int("popworkers", 2, "background cache-population workers per node (the paper's population thread, bounded)")
		diskpar   = flag.Int("diskparallel", 1, "concurrent block reads per disk fetch (1 = serial)")
		resilient = flag.Bool("resilient", true, "enable the resilient coordinator (deadlines, retries, failover, partial results)")
		coalesce  = flag.Bool("coalesce", true, "enable request coalescing (admission-window batching) and serve-side singleflight")
		window    = flag.Duration("window", stash.DefaultCoalesceWindow, "coalescer admission window (how long the first fetch waits for mergeable peers)")
		timeout   = flag.Duration("timeout", 0, "default per-query deadline (0 = none; ?timeout= overrides per request)")
		faults    = flag.Bool("faults", false, "enable the /faults chaos endpoint")
		faultseed = flag.Int64("faultseed", 1, "seed for randomized fault decisions (reply-drop sequences)")
		debug     = flag.Bool("debug", false, "serve net/http/pprof profiles and the /debug/queries, /debug/slow, /debug/hot, /debug/timeline, /debug/alerts introspection endpoints")
		flightrec = flag.Int("flightrec", 512, "flight recorder capacity: keep the last N completed query profiles (0 disables)")
		slowms    = flag.Int("slowms", 100, "slow-query threshold in milliseconds: profiles over it are logged to stderr and kept at /debug/slow (0 disables)")
		history   = flag.Int("history", 600, "telemetry history: samples retained per metric series (0 disables the timeline, SLO alerts, and health watchdog)")
		sampleInt = flag.Duration("sample-interval", obs.DefaultTSDBInterval, "telemetry history sampling cadence")
		sloP99MS  = flag.Float64("slo-p99ms", 250, "SLO target: query p99 latency in milliseconds over the fast window (0 disables the objective)")
		sloErr    = flag.Float64("slo-errratio", 0.01, "SLO target: max query error ratio (0 disables)")
		sloHit    = flag.Float64("slo-hitratio", 0.5, "SLO target: min cache hit ratio, advisory — warns but never degrades (0 disables)")
		sloCov    = flag.Float64("slo-coverage", 0.05, "SLO target: max partial-coverage ratio, answers shipped incomplete (0 disables)")
	)
	flag.Parse()

	cfg := stash.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	cfg.PointsPerBlock = *points
	cfg.Histograms = *hists
	cfg.Stash.Stripes = *stripes
	cfg.PopulationWorkers = *popwork
	cfg.GalileoParallelReads = *diskpar
	cfg.Sleeper = stash.NewRealSleeper()
	if *repl {
		cfg.Replication = stash.DefaultReplicationConfig()
	}
	if *resilient {
		cfg.Resilience = stash.DefaultResilienceConfig()
	}
	if *coalesce {
		cfg.CoalesceWindow = *window
		if cfg.CoalesceWindow <= 0 {
			cfg.CoalesceWindow = stash.DefaultCoalesceWindow
		}
		cfg.ServeSingleflight = true
	}
	var fp *stash.FaultPlan
	if *faults {
		fp = stash.NewFaultPlan(*faultseed)
		cfg.Faults = fp
	}
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		log.Fatalf("stashd: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	health := cluster.NewHealth(nil, cluster.HealthConfig{
		History:  *history,
		Interval: *sampleInt,
		SLO: cluster.SLOThresholds{
			QueryP99:     *sloP99MS / 1000,
			ErrRatio:     *sloErr,
			HitRatio:     *sloHit,
			PartialRatio: *sloCov,
		},
		Structural: cluster.DefaultStructuralThresholds(),
	})
	health.Monitor.Start()
	defer health.Monitor.Stop()

	srv := &server{
		sys:            sys,
		faults:         fp,
		defaultTimeout: *timeout,
		rec:            obs.NewFlightRecorder(*flightrec),
		slow:           obs.NewSlowLog(time.Duration(*slowms)*time.Millisecond, slowRingCapacity, os.Stderr),
		health:         health,
	}
	mux := newMux(srv, *debug)

	log.Printf("stashd: %d nodes, serving on %s", *nodes, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// newMux wires the server's routes. Split from main so tests can exercise the
// full routing table (including /metrics and the -debug pprof gating) through
// httptest.
func newMux(srv *server, debug bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", srv.handleQuery)
	mux.HandleFunc("GET /stats", srv.handleStats)
	mux.HandleFunc("GET /metrics", srv.handleMetrics)
	mux.HandleFunc("POST /faults", srv.handleFaultsPost)
	mux.HandleFunc("GET /faults", srv.handleFaultsGet)
	mux.HandleFunc("GET /healthz", srv.handleHealthz)
	mux.HandleFunc("POST /admin/join", srv.handleAdminJoin)
	mux.HandleFunc("POST /admin/leave", srv.handleAdminLeave)
	mux.HandleFunc("GET /admin/rebalance", srv.handleAdminRebalance)
	if debug {
		// The pprof handlers register themselves on DefaultServeMux at
		// import; route them explicitly so they exist only behind -debug.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		// Query introspection rides the same gate: profiles carry query
		// strings, so they are operator-facing, not public.
		mux.HandleFunc("GET /debug/queries", srv.handleDebugQueries)
		mux.HandleFunc("GET /debug/slow", srv.handleDebugSlow)
		mux.HandleFunc("GET /debug/hot", srv.handleDebugHot)
		mux.HandleFunc("GET /debug/timeline", srv.handleDebugTimeline)
		mux.HandleFunc("GET /debug/alerts", srv.handleDebugAlerts)
	}
	return mux
}

// slowRingCapacity bounds the slow-query ring behind /debug/slow: offenders
// are rare by definition, so the ring stays much smaller than the flight
// recorder.
const slowRingCapacity = 64

type server struct {
	sys            *stash.Cluster
	faults         *stash.FaultPlan
	defaultTimeout time.Duration
	// rec is the always-on flight recorder of completed query profiles; nil
	// when -flightrec is 0.
	rec *obs.FlightRecorder
	// slow retains and logs profiles over the -slowms threshold; nil when
	// disabled.
	slow *obs.SlowLog
	// health is the telemetry history pipeline (TSDB, SLO engine, watchdog);
	// nil (or a Health with nil components, -history 0) disables it.
	health *cluster.Health
}

// healthTSDB returns the server's history store, nil when disabled.
func (s *server) healthTSDB() *obs.TSDB {
	if s.health == nil {
		return nil
	}
	return s.health.TSDB
}

// record finishes a query's profile with the given status and feeds it to the
// flight recorder and slow-query log. Returns the settled snapshot for
// ?explain=1 responses.
func (s *server) record(p *obs.QueryProfile, status string) obs.ProfileData {
	p.Finish(status)
	d := p.Data()
	// One id correlates this query's slow-log line with its flight-recorder
	// entry (?id= on /debug/queries and /debug/slow).
	d.ID = obs.NextQueryID()
	s.rec.Record(d)
	s.slow.Observe(d)
	return d
}

// QueryRequest is the JSON body of POST /query.
type QueryRequest struct {
	MinLat      float64 `json:"minLat"`
	MaxLat      float64 `json:"maxLat"`
	MinLon      float64 `json:"minLon"`
	MaxLon      float64 `json:"maxLon"`
	Start       string  `json:"start"` // RFC 3339
	End         string  `json:"end"`   // RFC 3339
	SpatialRes  int     `json:"spatialRes"`
	TemporalRes string  `json:"temporalRes"` // Year|Month|Day|Hour
}

// CellResponse is one aggregated cell in the response, carrying the center
// point so map panels can place it directly.
type CellResponse struct {
	Geohash string               `json:"geohash"`
	Time    string               `json:"time"`
	Lat     float64              `json:"lat"`
	Lon     float64              `json:"lon"`
	Stats   map[string]StatBlock `json:"stats"`
}

// StatBlock is one attribute's aggregate in the response.
type StatBlock struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Histogram is present when the server runs with -histograms.
	Histogram *HistogramBlock `json:"histogram,omitempty"`
}

// HistogramBlock is an attribute's distribution in the response.
type HistogramBlock struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Under   int64   `json:"under"`
	Over    int64   `json:"over"`
	Buckets []int64 `json:"buckets"`
}

// CoverageBlock reports how much of the query's footprint a degraded answer
// actually covers (see query.Coverage). It is present in the response only
// when the coordinator tracked coverage, i.e. the resilient path ran.
type CoverageBlock struct {
	Complete   bool              `json:"complete"`
	Requested  int               `json:"requested"`
	Covered    int               `json:"covered"`
	Degraded   int               `json:"degraded"`
	Missing    int               `json:"missing"`
	Recovered  int               `json:"recovered"`
	ShareRatio float64           `json:"shareRatio"`
	NodeErrors map[string]string `json:"nodeErrors,omitempty"`
}

// QueryResponse is the body of a successful POST /query. A 206 response
// carries a Coverage block describing the degradation; ?trace=1 adds the
// recorded span tree.
type QueryResponse struct {
	Cells     []CellResponse  `json:"cells"`
	LatencyMS float64         `json:"latencyMs"`
	Coverage  *CoverageBlock  `json:"coverage,omitempty"`
	Trace     []*obs.SpanNode `json:"trace,omitempty"`
	// Profile is the query's EXPLAIN ANALYZE provenance, present with
	// ?explain=1 (never cached).
	Profile *obs.ProfileData `json:"profile,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, err := buildQuery(req)
	if err != nil {
		http.Error(w, "bad query: "+err.Error(), http.StatusBadRequest)
		return
	}

	deadline := s.defaultTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad timeout "+raw, http.StatusBadRequest)
			return
		}
		deadline = d
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	traceMode := r.URL.Query().Get("trace")
	var tr *obs.Trace
	switch traceMode {
	case "", "0", "false":
		traceMode = ""
	case "1", "true", "json":
		traceMode = "json"
		ctx, tr = obs.NewTrace(ctx)
	case "chrome":
		ctx, tr = obs.NewTrace(ctx)
	default:
		http.Error(w, "unknown trace mode "+traceMode, http.StatusBadRequest)
		return
	}

	explain := false
	switch raw := r.URL.Query().Get("explain"); raw {
	case "", "0", "false":
	case "1", "true":
		explain = true
	default:
		http.Error(w, "unknown explain mode "+raw, http.StatusBadRequest)
		return
	}
	// Profile the query whenever anyone will see the result: the explain
	// response, the flight recorder, or the slow-query log. With all three
	// off, no profile is installed and the serve path stays allocation-free.
	var prof *obs.QueryProfile
	if explain || s.rec != nil || s.slow != nil {
		ctx, prof = obs.WithProfile(ctx)
	}

	begin := time.Now()
	res, err := s.sys.Client().QueryContext(ctx, q)
	if err != nil {
		if prof != nil {
			s.record(prof, "error")
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, stash.ErrNoCoverage),
			errors.Is(err, stash.ErrUnavailable):
			// The deadline elapsed (or every owner failed) before any part of
			// the answer materialised: the paper's "no answer in time" case.
			http.Error(w, "query timed out: "+err.Error(), http.StatusGatewayTimeout)
		default:
			http.Error(w, "query failed: "+err.Error(), http.StatusInternalServerError)
		}
		return
	}

	status := http.StatusOK
	outcome := "ok"
	if !res.Coverage.Complete() {
		// Partial answer under degradation: signal it in the status code so
		// dashboards can badge the panel, but still deliver the cells.
		status = http.StatusPartialContent
		outcome = "partial"
	}
	var profData obs.ProfileData
	if prof != nil {
		profData = s.record(prof, outcome)
	}

	if traceMode == "chrome" {
		// The trace is the payload: Chrome trace-event JSON, loadable
		// directly in Perfetto / chrome://tracing.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := tr.WriteChrome(w); err != nil {
			log.Printf("stashd: chrome trace export: %v", err)
		}
		return
	}

	switch format := r.URL.Query().Get("format"); format {
	case "geojson":
		w.Header().Set("Content-Type", "application/geo+json")
		w.WriteHeader(status)
		if err := stash.WriteGeoJSON(w, res); err != nil {
			log.Printf("stashd: geojson export: %v", err)
		}
		return
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		w.WriteHeader(status)
		if err := stash.WriteCSV(w, res); err != nil {
			log.Printf("stashd: csv export: %v", err)
		}
		return
	case "", "json":
		// fall through to the native JSON shape below
	default:
		http.Error(w, "unknown format "+format, http.StatusBadRequest)
		return
	}

	resp := QueryResponse{LatencyMS: float64(time.Since(begin).Microseconds()) / 1000}
	if traceMode == "json" {
		resp.Trace = tr.Tree()
	}
	if explain {
		// Profiles are per-request provenance: mark the response uncacheable
		// so an intermediary never serves one query's explain for another.
		w.Header().Set("Cache-Control", "no-store")
		resp.Profile = &profData
	}
	if cov := res.Coverage; cov.Requested > 0 {
		resp.Coverage = &CoverageBlock{
			Complete:   cov.Complete(),
			Requested:  cov.Requested,
			Covered:    cov.Covered,
			Degraded:   cov.Degraded,
			Missing:    cov.Missing(),
			Recovered:  cov.Recovered,
			ShareRatio: cov.Ratio(),
			NodeErrors: cov.NodeErrors,
		}
	}
	for key, sum := range res.Cells {
		box, err := stash.DecodeGeohash(key.Geohash)
		if err != nil {
			continue
		}
		lat, lon := box.Center()
		cr := CellResponse{
			Geohash: key.Geohash,
			Time:    key.Time.Text,
			Lat:     lat,
			Lon:     lon,
			Stats:   map[string]StatBlock{},
		}
		for _, attr := range sum.Attrs() {
			st := sum.Stats[attr]
			mean := st.Mean()
			if math.IsNaN(mean) {
				mean = 0
			}
			block := StatBlock{Count: st.Count, Sum: st.Sum, Min: st.Min, Max: st.Max, Mean: mean}
			if h := sum.Hist(attr); h != nil {
				block.Histogram = &HistogramBlock{
					Lo: h.Lo, Hi: h.Hi, Under: h.Under, Over: h.Over, Buckets: h.Counts,
				}
			}
			cr.Stats[attr] = block
		}
		resp.Cells = append(resp.Cells, cr)
	}
	writeJSONStatus(w, status, resp)
}

// StatsResponse is the body of GET /stats: the aggregated node counters plus
// a flat snapshot of every registered metric (histograms expand to _count,
// _sum, and _p50/_p95/_p99 entries), so one poll answers both "what has the
// cluster done" and "how degraded is it right now" — retries, reroutes,
// breaker trips, and fault firings all appear under their metric names.
// HotKeys folds in the globally hottest requested cells (see /debug/hot for
// the full per-node view).
type StatsResponse struct {
	Cluster stash.NodeStats    `json:"cluster"`
	Metrics map[string]float64 `json:"metrics"`
	HotKeys []HotKeyEntry      `json:"hotKeys,omitempty"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, StatsResponse{
		Cluster: s.sys.TotalStats(),
		Metrics: obs.Default().FlatSnapshot(),
		HotKeys: hotEntries(s.sys.HotKeys(10)),
	})
}

// HealthResponse is the body of GET /healthz: readiness detail rather than a
// bare 200, so orchestration and dashboards can see what this instance is
// actually running.
type HealthResponse struct {
	Status         string `json:"status"`
	Nodes          int    `json:"nodes"`
	Epoch          uint64 `json:"epoch"`
	IngestVersion  int64  `json:"ingestVersion"`
	FlightRecorder bool   `json:"flightRecorder"`
	FlightRecCap   int    `json:"flightRecCap,omitempty"`
	SlowLogMS      int64  `json:"slowLogMs,omitempty"`
	Coalescer      bool   `json:"coalescer"`
	// Degraded/Reasons/Warnings carry the health watchdog's verdict (always
	// false/empty when -history is 0: no watchdog, no opinion).
	Degraded bool     `json:"degraded"`
	Reasons  []string `json:"reasons,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var verdict obs.Verdict
	if s.health != nil {
		verdict = s.health.Watchdog.Verdict()
	}
	status := "ok"
	if verdict.Degraded {
		status = "degraded"
	}
	writeJSON(w, HealthResponse{
		Status:         status,
		Nodes:          s.sys.Ring().Size(),
		Epoch:          s.sys.Epoch(),
		IngestVersion:  s.sys.IngestVersion(),
		FlightRecorder: s.rec != nil,
		FlightRecCap:   s.rec.Cap(),
		SlowLogMS:      s.slow.Threshold().Milliseconds(),
		Coalescer:      s.sys.CoalescerEnabled(),
		Degraded:       verdict.Degraded,
		Reasons:        verdict.Reasons,
		Warnings:       verdict.Warnings,
	})
}

// JoinResponse is the body of POST /admin/join: the id the new node was
// assigned plus the post-handoff membership snapshot.
type JoinResponse struct {
	Node      string                `json:"node"`
	Rebalance stash.RebalanceStatus `json:"rebalance"`
}

func (s *server) handleAdminJoin(w http.ResponseWriter, _ *http.Request) {
	id, err := s.sys.Join()
	if err != nil {
		http.Error(w, "join: "+err.Error(), http.StatusConflict)
		return
	}
	st := s.sys.RebalanceStatus()
	log.Printf("stashd: node %v joined, epoch %d (%d cells / %d bytes migrated in %.1fms)",
		id, st.Epoch, st.CellsMigrated, st.BytesMigrated, st.LastDurationMS)
	writeJSON(w, JoinResponse{Node: id.String(), Rebalance: st})
}

// LeaveRequest is the body of POST /admin/leave: the numeric id of the node
// to retire (as listed in /admin/rebalance members, without the "node-"
// prefix).
type LeaveRequest struct {
	Node int `json:"node"`
}

// LeaveResponse is the body of POST /admin/leave.
type LeaveResponse struct {
	Node      string                `json:"node"`
	Rebalance stash.RebalanceStatus `json:"rebalance"`
}

func (s *server) handleAdminLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	id := stash.NodeID(req.Node)
	if err := s.sys.Leave(id); err != nil {
		http.Error(w, "leave: "+err.Error(), http.StatusConflict)
		return
	}
	st := s.sys.RebalanceStatus()
	log.Printf("stashd: node %v left, epoch %d (%d cells / %d bytes migrated in %.1fms)",
		id, st.Epoch, st.CellsMigrated, st.BytesMigrated, st.LastDurationMS)
	writeJSON(w, LeaveResponse{Node: id.String(), Rebalance: st})
}

func (s *server) handleAdminRebalance(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.sys.RebalanceStatus())
}

// ProfilesResponse is the body of GET /debug/queries and GET /debug/slow:
// retained query profiles, newest first.
type ProfilesResponse struct {
	Count    int               `json:"count"`
	Profiles []obs.ProfileData `json:"profiles"`
}

// profileFilter parses the shared ?min_ms= / ?level= / ?n= query filters.
func profileFilter(r *http.Request) (obs.ProfileFilter, error) {
	var f obs.ProfileFilter
	q := r.URL.Query()
	if raw := q.Get("min_ms"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			return f, fmt.Errorf("bad min_ms %q", raw)
		}
		f.MinMS = v
	}
	if raw := q.Get("level"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return f, fmt.Errorf("bad level %q", raw)
		}
		f.Level = v
	}
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			return f, fmt.Errorf("bad n %q", raw)
		}
		f.N = v
	}
	if raw := q.Get("id"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil || v == 0 {
			return f, fmt.Errorf("bad id %q", raw)
		}
		f.ID = v
	}
	return f, nil
}

func (s *server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		http.Error(w, "flight recorder disabled (start with -flightrec N)", http.StatusConflict)
		return
	}
	f, err := profileFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ps := s.rec.Snapshot(f)
	writeJSON(w, ProfilesResponse{Count: len(ps), Profiles: ps})
}

func (s *server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if s.slow == nil {
		http.Error(w, "slow-query log disabled (start with -slowms N)", http.StatusConflict)
		return
	}
	f, err := profileFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ps := s.slow.Snapshot(f)
	writeJSON(w, ProfilesResponse{Count: len(ps), Profiles: ps})
}

// HotKeyEntry is one ranked cell key in the hot-key telemetry. Count
// overestimates the true request frequency by at most Err (space-saving
// sketch guarantee).
type HotKeyEntry struct {
	Geohash string `json:"geohash"`
	Time    string `json:"time"`
	Count   uint64 `json:"count"`
	Err     uint64 `json:"err,omitempty"`
}

// HotResponse is the body of GET /debug/hot: the most-requested cell keys
// globally and per node, epoch-decayed so the ranking tracks the current
// workload.
type HotResponse struct {
	Total  uint64                   `json:"total"`
	Global []HotKeyEntry            `json:"global"`
	Nodes  map[string][]HotKeyEntry `json:"nodes,omitempty"`
}

func (s *server) handleDebugHot(w http.ResponseWriter, r *http.Request) {
	n := 20
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			http.Error(w, "bad n "+raw, http.StatusBadRequest)
			return
		}
		n = v
	}
	resp := HotResponse{Total: s.sys.HotKeyTotal(), Global: hotEntries(s.sys.HotKeys(n))}
	for _, node := range s.sys.Nodes() {
		if es := hotEntries(node.HotKeys(n)); len(es) > 0 {
			if resp.Nodes == nil {
				resp.Nodes = map[string][]HotKeyEntry{}
			}
			resp.Nodes[node.ID().String()] = es
		}
	}
	writeJSON(w, resp)
}

// TimelineResponse is the body of GET /debug/timeline. Without ?name= it
// lists the retained series names; with one it carries the matching series'
// sampled points (plus derived rates and windowed quantiles).
type TimelineResponse struct {
	IntervalMS float64          `json:"intervalMs"`
	History    int              `json:"history"`
	Samples    int              `json:"samples"`
	Names      []string         `json:"names,omitempty"`
	Series     []obs.SeriesData `json:"series,omitempty"`
}

func (s *server) handleDebugTimeline(w http.ResponseWriter, r *http.Request) {
	t := s.healthTSDB()
	if !t.Enabled() {
		http.Error(w, "telemetry history disabled (start with -history N)", http.StatusConflict)
		return
	}
	q := r.URL.Query()
	resp := TimelineResponse{
		IntervalMS: float64(t.Interval().Milliseconds()),
		History:    t.History(),
		Samples:    t.Samples(),
	}
	name := q.Get("name")
	if name == "" {
		resp.Names = t.Names()
		writeJSON(w, resp)
		return
	}
	var window time.Duration
	if raw := q.Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, "bad window "+raw, http.StatusBadRequest)
			return
		}
		window = d
	}
	step := 1
	if raw := q.Get("step"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, "bad step "+raw, http.StatusBadRequest)
			return
		}
		step = v
	}
	series, ok := t.Query(name, window, step)
	if !ok {
		http.Error(w, "unknown series "+name, http.StatusNotFound)
		return
	}
	resp.Series = series
	writeJSON(w, resp)
}

// AlertsResponse is the body of GET /debug/alerts: every objective's current
// burn-rate state plus the recent transition ring, newest first.
type AlertsResponse struct {
	Worst       string            `json:"worst"`
	Alerts      []obs.AlertStatus `json:"alerts"`
	Transitions []obs.Transition  `json:"transitions,omitempty"`
}

func (s *server) handleDebugAlerts(w http.ResponseWriter, _ *http.Request) {
	var slo *obs.SLOEngine
	if s.health != nil {
		slo = s.health.SLO
	}
	if slo == nil {
		http.Error(w, "SLO engine disabled (start with -history N)", http.StatusConflict)
		return
	}
	writeJSON(w, AlertsResponse{
		Worst:       slo.WorstState().String(),
		Alerts:      slo.Current(),
		Transitions: slo.Transitions(),
	})
}

func hotEntries(entries []obs.TopEntry[cell.Key]) []HotKeyEntry {
	if len(entries) == 0 {
		return nil
	}
	out := make([]HotKeyEntry, len(entries))
	for i, e := range entries {
		out[i] = HotKeyEntry{Geohash: e.Key.Geohash, Time: e.Key.Time.Text, Count: e.Count, Err: e.Err}
	}
	return out
}

// handleMetrics serves the Prometheus text exposition of the process-global
// registry. The mux's "GET /metrics" pattern also matches HEAD (net/http
// treats HEAD as GET for routing); a HEAD probe gets the headers without the
// exposition body being generated.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	if err := obs.Default().WritePrometheus(w); err != nil {
		log.Printf("stashd: metrics exposition: %v", err)
	}
}

// FaultRequest is the JSON body of POST /faults. Heal=true clears the node's
// faults; otherwise Kind selects what to inject ("crash", "pause", "drop",
// "reject", "error"), with Pause in milliseconds for pause faults and
// DropProb in [0,1] for drop faults.
type FaultRequest struct {
	Node     int     `json:"node"`
	Kind     string  `json:"kind"`
	Heal     bool    `json:"heal"`
	PauseMS  int     `json:"pauseMs"`
	DropProb float64 `json:"dropProb"`
}

// FaultsResponse lists the currently faulted node ids.
type FaultsResponse struct {
	Faulted []int `json:"faulted"`
}

func (s *server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	if s.faults == nil {
		http.Error(w, "fault injection disabled (start with -faults)", http.StatusConflict)
		return
	}
	var req FaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	ev := stash.ScheduledFault{Node: req.Node, Heal: req.Heal}
	if !req.Heal {
		kind, err := stash.ParseFaultKind(req.Kind)
		if err != nil {
			http.Error(w, "bad fault: "+err.Error(), http.StatusBadRequest)
			return
		}
		ev.Kind = kind
		ev.Pause = time.Duration(req.PauseMS) * time.Millisecond
		ev.DropProb = req.DropProb
	}
	s.faults.Apply(ev)
	log.Printf("stashd: fault event %s", ev)
	writeJSON(w, FaultsResponse{Faulted: s.faults.Faulted()})
}

func (s *server) handleFaultsGet(w http.ResponseWriter, _ *http.Request) {
	if s.faults == nil {
		http.Error(w, "fault injection disabled (start with -faults)", http.StatusConflict)
		return
	}
	writeJSON(w, FaultsResponse{Faulted: s.faults.Faulted()})
}

func buildQuery(req QueryRequest) (stash.Query, error) {
	start, err := time.Parse(time.RFC3339, req.Start)
	if err != nil {
		return stash.Query{}, fmt.Errorf("start: %w", err)
	}
	end, err := time.Parse(time.RFC3339, req.End)
	if err != nil {
		return stash.Query{}, fmt.Errorf("end: %w", err)
	}
	tr, err := stash.NewTimeRange(start, end)
	if err != nil {
		return stash.Query{}, err
	}
	var res stash.Resolution
	switch req.TemporalRes {
	case "Year":
		res = stash.Year
	case "Month":
		res = stash.Month
	case "Day", "":
		res = stash.Day
	case "Hour":
		res = stash.Hour
	default:
		return stash.Query{}, fmt.Errorf("unknown temporal resolution %q", req.TemporalRes)
	}
	q := stash.Query{
		Box:         stash.Box{MinLat: req.MinLat, MaxLat: req.MaxLat, MinLon: req.MinLon, MaxLon: req.MaxLon},
		Time:        tr,
		SpatialRes:  req.SpatialRes,
		TemporalRes: res,
	}
	return q, q.Validate()
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("stashd: encode response: %v", err)
	}
}
