package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stash"
	"stash/internal/obs"
)

// obsServer is testServer plus the introspection layer: a flight recorder, and
// a slow-query log whose 1ns threshold catches every query so /debug/slow has
// content to assert on. The log's sink is returned for line-format checks.
func obsServer(t *testing.T) (*server, *bytes.Buffer) {
	t.Helper()
	srv := testServer(t)
	var sink bytes.Buffer
	srv.rec = obs.NewFlightRecorder(32)
	srv.slow = obs.NewSlowLog(time.Nanosecond, 8, &sink)
	return srv, &sink
}

func postQuery(t *testing.T, srv *server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, httptest.NewRequest(http.MethodPost, target, strings.NewReader(validBody())))
	return rec
}

func TestHandleQueryExplain(t *testing.T) {
	srv, _ := obsServer(t)
	blocksBefore := obs.Default().Counter("stash_disk_blocks_read_total").Value()

	rec := postQuery(t, srv, "/query?explain=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("explain response Cache-Control %q, want no-store", cc)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	p := resp.Profile
	if p == nil {
		t.Fatal("?explain=1 response carries no profile")
	}
	if p.Status != "ok" {
		t.Errorf("profile status %q, want ok", p.Status)
	}
	if p.Query == "" || p.FootprintKeys <= 0 || p.Level <= 0 {
		t.Errorf("footprint not populated: query=%q keys=%d level=%d", p.Query, p.FootprintKeys, p.Level)
	}
	if p.TotalMS <= 0 {
		t.Errorf("total %v, want > 0", p.TotalMS)
	}
	stages := map[string]float64{}
	for _, s := range p.Stages {
		stages[s.Stage] = s.MS
	}
	for _, want := range []string{"footprint", "fanout", "merge", "graph.get"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("stages %v missing %q", stages, want)
		}
	}
	if len(p.Tiers) == 0 || p.Tiers[0].Hits+p.Tiers[0].Misses == 0 {
		t.Errorf("no tier probe outcomes: %+v", p.Tiers)
	}
	if len(p.Nodes) == 0 {
		t.Error("no nodes contacted in profile")
	}
	var nodeKeys int64
	for _, n := range p.Nodes {
		nodeKeys += n.Keys
	}
	if nodeKeys < int64(p.FootprintKeys) {
		t.Errorf("nodes carry %d keys, footprint is %d", nodeKeys, p.FootprintKeys)
	}
	// A cold first query materializes from disk; its blocks must appear both
	// in the profile and in the global metric the profile claims to explain.
	if p.BlocksRead <= 0 {
		t.Errorf("cold query profile shows %d blocks read, want > 0", p.BlocksRead)
	}
	delta := obs.Default().Counter("stash_disk_blocks_read_total").Value() - blocksBefore
	if delta < p.BlocksRead {
		t.Errorf("profile claims %d blocks read but the metric advanced by %d", p.BlocksRead, delta)
	}

	// A warm repeat of the same query is served from cache with no disk
	// blocks. Cache population runs on background workers, so poll until it
	// lands rather than asserting on the first repeat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec = postQuery(t, srv, "/query?explain=1")
		var warm QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &warm); err != nil {
			t.Fatal(err)
		}
		if warm.Profile == nil {
			t.Fatal("warm explain carries no profile")
		}
		if warm.Profile.BlocksRead == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm query still reads %d blocks after cache population", warm.Profile.BlocksRead)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHandleQueryExplainOff(t *testing.T) {
	srv, _ := obsServer(t)
	rec := postQuery(t, srv, "/query")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), `"profile"`) {
		t.Error("unrequested response carries a profile field")
	}
	if rec := postQuery(t, srv, "/query?explain=verbose"); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown explain mode: status %d, want 400", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	srv, _ := obsServer(t)
	rec := httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Nodes != 2 {
		t.Errorf("health %+v, want status ok on 2 nodes", h)
	}
	if h.IngestVersion != 0 {
		t.Errorf("ingest version %d on a fresh cluster, want 0", h.IngestVersion)
	}
	if !h.FlightRecorder || h.FlightRecCap != 32 {
		t.Errorf("recorder flags %+v, want enabled at cap 32", h)
	}
	if h.SlowLogMS != 0 {
		t.Errorf("slowLogMs %d for a 1ns threshold, want 0 (rounds down)", h.SlowLogMS)
	}

	// An ingest update bumps the reported dataset version.
	label, err := stash.ParseTimeLabel("2015-02-02", stash.Day)
	if err != nil {
		t.Fatal(err)
	}
	srv.sys.UpdateBlock("9v6", label)
	rec = httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var bumped HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &bumped); err != nil {
		t.Fatal(err)
	}
	if bumped.IngestVersion != 1 {
		t.Errorf("ingest version %d after one UpdateBlock, want 1", bumped.IngestVersion)
	}

	// The introspection-disabled shape reports its flags off.
	bare := testServer(t)
	rec = httptest.NewRecorder()
	bare.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h2 HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h2); err != nil {
		t.Fatal(err)
	}
	if h2.FlightRecorder || h2.FlightRecCap != 0 || h2.SlowLogMS != 0 {
		t.Errorf("bare server health claims introspection on: %+v", h2)
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	srv, _ := obsServer(t)
	for i := 0; i < 3; i++ {
		if rec := postQuery(t, srv, "/query"); rec.Code != http.StatusOK {
			t.Fatalf("warm-up query %d: status %d", i, rec.Code)
		}
	}

	get := func(target string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.handleDebugQueries(rec, httptest.NewRequest(http.MethodGet, target, nil))
		return rec
	}

	rec := get("/debug/queries")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var pr ProfilesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Count != 3 || len(pr.Profiles) != 3 {
		t.Fatalf("recorder holds %d profiles, want 3", pr.Count)
	}
	for i := 1; i < len(pr.Profiles); i++ {
		if pr.Profiles[i].Start.After(pr.Profiles[i-1].Start) {
			t.Errorf("profiles not newest-first at %d", i)
		}
	}

	if rec := get("/debug/queries?n=1"); rec.Code != http.StatusOK {
		t.Errorf("?n=1 status %d", rec.Code)
	} else {
		var one ProfilesResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
			t.Fatal(err)
		}
		if one.Count != 1 {
			t.Errorf("?n=1 returned %d profiles", one.Count)
		}
	}
	// The test queries are level-4 footprints; filtering on another level
	// returns nothing, on the right level everything.
	if rec := get("/debug/queries?level=9"); !strings.Contains(rec.Body.String(), `"count":0`) {
		t.Errorf("?level=9 matched something: %s", rec.Body.String())
	}
	if rec := get("/debug/queries?min_ms=1000000"); !strings.Contains(rec.Body.String(), `"count":0`) {
		t.Errorf("huge ?min_ms matched something: %s", rec.Body.String())
	}
	for _, bad := range []string{"?min_ms=fast", "?min_ms=-1", "?level=x", "?n=-2"} {
		if rec := get("/debug/queries" + bad); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestDebugSlowEndpoint(t *testing.T) {
	srv, sink := obsServer(t)
	if rec := postQuery(t, srv, "/query"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up query: status %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	srv.handleDebugSlow(rec, httptest.NewRequest(http.MethodGet, "/debug/slow", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var pr ProfilesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Count != 1 {
		t.Fatalf("slow ring holds %d profiles, want 1 (1ns threshold)", pr.Count)
	}
	if pr.Profiles[0].TotalMS <= 0 {
		t.Errorf("slow profile has no latency: %+v", pr.Profiles[0])
	}

	// The sink got the same profile as one JSON line.
	line := bytes.TrimSpace(sink.Bytes())
	if len(line) == 0 || bytes.ContainsRune(line, '\n') {
		t.Fatalf("slow log wrote %q, want exactly one line", sink.String())
	}
	var logged obs.ProfileData
	if err := json.Unmarshal(line, &logged); err != nil {
		t.Fatalf("slow-log line is not JSON: %v", err)
	}
	if logged.Query != pr.Profiles[0].Query {
		t.Errorf("logged query %q != retained %q", logged.Query, pr.Profiles[0].Query)
	}
}

func TestDebugHotEndpoint(t *testing.T) {
	srv, _ := obsServer(t)
	if rec := postQuery(t, srv, "/query"); rec.Code != http.StatusOK {
		t.Fatalf("warm-up query: status %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	srv.handleDebugHot(rec, httptest.NewRequest(http.MethodGet, "/debug/hot", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var hot HotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hot); err != nil {
		t.Fatal(err)
	}
	if hot.Total == 0 || len(hot.Global) == 0 {
		t.Fatalf("hot-key telemetry empty after a query: %+v", hot)
	}
	for _, e := range hot.Global {
		if e.Geohash == "" || e.Time == "" || e.Count == 0 {
			t.Errorf("malformed hot entry %+v", e)
		}
	}
	if len(hot.Nodes) == 0 {
		t.Error("no per-node hot keys")
	}

	rec = httptest.NewRecorder()
	srv.handleDebugHot(rec, httptest.NewRequest(http.MethodGet, "/debug/hot?n=1", nil))
	var one HotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Global) != 1 {
		t.Errorf("?n=1 returned %d global entries", len(one.Global))
	}
	rec = httptest.NewRecorder()
	srv.handleDebugHot(rec, httptest.NewRequest(http.MethodGet, "/debug/hot?n=lots", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}

	// The globally hottest keys also fold into /stats.
	rec = httptest.NewRecorder()
	srv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.HotKeys) == 0 {
		t.Error("/stats carries no hotKeys block")
	}
}

// TestDebugIntrospectionGating: the endpoints exist only behind -debug, and
// answer 409 when their backing feature is disabled.
func TestDebugIntrospectionGating(t *testing.T) {
	srv := testServer(t) // rec and slow nil

	plain := newMux(srv, false)
	for _, path := range []string{"/debug/queries", "/debug/slow", "/debug/hot"} {
		rec := httptest.NewRecorder()
		plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s without -debug: status %d, want 404", path, rec.Code)
		}
	}

	dbg := newMux(srv, true)
	for _, path := range []string{"/debug/queries", "/debug/slow"} {
		rec := httptest.NewRecorder()
		dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusConflict {
			t.Errorf("GET %s with feature disabled: status %d, want 409", path, rec.Code)
		}
	}
	// Hot-key telemetry is cluster-level and on by default, so it serves even
	// on a server without a recorder.
	rec := httptest.NewRecorder()
	dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/hot", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /debug/hot: status %d, want 200", rec.Code)
	}
}
