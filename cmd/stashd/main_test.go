package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stash"
)

func testServer(t *testing.T) *server {
	t.Helper()
	cfg := stash.DefaultConfig()
	cfg.Nodes = 2
	cfg.PointsPerBlock = 32
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return &server{sys: sys}
}

func validBody() string {
	return `{
		"minLat": 35, "maxLat": 35.6, "minLon": -98, "maxLon": -96.8,
		"start": "2015-02-02T00:00:00Z", "end": "2015-02-03T00:00:00Z",
		"spatialRes": 4, "temporalRes": "Day"
	}`
}

func TestHandleQueryOK(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) == 0 {
		t.Fatal("no cells in response")
	}
	for _, c := range resp.Cells {
		if c.Geohash == "" || c.Time == "" {
			t.Fatalf("cell missing labels: %+v", c)
		}
		st, ok := c.Stats["temperature"]
		if !ok {
			t.Fatalf("cell missing temperature: %+v", c)
		}
		if st.Count <= 0 || st.Min > st.Max {
			t.Fatalf("implausible stat: %+v", st)
		}
	}
	if resp.LatencyMS < 0 {
		t.Error("negative latency")
	}
}

func TestHandleQueryBadJSON(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d for malformed JSON", rec.Code)
	}
}

func TestHandleQueryInvalidQuery(t *testing.T) {
	srv := testServer(t)
	bad := strings.Replace(validBody(), `"spatialRes": 4`, `"spatialRes": 0`, 1)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(bad))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d for invalid query", rec.Code)
	}
}

func TestHandleStats(t *testing.T) {
	srv := testServer(t)
	rec := httptest.NewRecorder()
	srv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var stats stash.NodeStats
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
}

func TestBuildQueryValidation(t *testing.T) {
	good := QueryRequest{
		MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1,
		Start: "2015-02-02T00:00:00Z", End: "2015-02-03T00:00:00Z",
		SpatialRes: 3, TemporalRes: "Day",
	}
	if _, err := buildQuery(good); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	cases := []func(*QueryRequest){
		func(r *QueryRequest) { r.Start = "not-a-time" },
		func(r *QueryRequest) { r.End = "not-a-time" },
		func(r *QueryRequest) { r.End = r.Start }, // empty range
		func(r *QueryRequest) { r.TemporalRes = "Fortnight" },
		func(r *QueryRequest) { r.SpatialRes = 0 },
		func(r *QueryRequest) { r.MinLat, r.MaxLat = 5, 1 },
	}
	for i, mutate := range cases {
		req := good
		mutate(&req)
		if _, err := buildQuery(req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}

	// Default temporal resolution is Day.
	req := good
	req.TemporalRes = ""
	q, err := buildQuery(req)
	if err != nil || q.TemporalRes != stash.Day {
		t.Errorf("empty temporal resolution: %v %v", q.TemporalRes, err)
	}
	// All named resolutions parse.
	for _, name := range []string{"Year", "Month", "Day", "Hour"} {
		req.TemporalRes = name
		if _, err := buildQuery(req); err != nil {
			t.Errorf("resolution %q rejected: %v", name, err)
		}
	}
}

func TestHandleQueryFormats(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		format   string
		wantCode int
		wantBody string
	}{
		{"geojson", http.StatusOK, "FeatureCollection"},
		{"csv", http.StatusOK, "geohash,time,lat,lon"},
		{"json", http.StatusOK, `"cells"`},
		{"protobuf", http.StatusBadRequest, ""},
	} {
		req := httptest.NewRequest(http.MethodPost, "/query?format="+tc.format, strings.NewReader(validBody()))
		rec := httptest.NewRecorder()
		srv.handleQuery(rec, req)
		if rec.Code != tc.wantCode {
			t.Errorf("format %q: status %d, want %d", tc.format, rec.Code, tc.wantCode)
			continue
		}
		if tc.wantBody != "" && !strings.Contains(rec.Body.String(), tc.wantBody) {
			t.Errorf("format %q: body missing %q", tc.format, tc.wantBody)
		}
	}
}

func TestHandleQueryHistograms(t *testing.T) {
	cfg := stash.DefaultConfig()
	cfg.Nodes = 2
	cfg.PointsPerBlock = 32
	cfg.Histograms = true
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	srv := &server{sys: sys}

	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range resp.Cells {
		if st, ok := c.Stats["temperature"]; ok && st.Histogram != nil {
			found = true
			var total int64 = st.Histogram.Under + st.Histogram.Over
			for _, b := range st.Histogram.Buckets {
				total += b
			}
			if total != st.Count {
				t.Fatalf("histogram total %d != count %d", total, st.Count)
			}
		}
	}
	if !found {
		t.Fatal("no histogram in any cell despite -histograms")
	}
}
