package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stash"
)

func testServer(t *testing.T) *server {
	t.Helper()
	cfg := stash.DefaultConfig()
	cfg.Nodes = 2
	cfg.PointsPerBlock = 32
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return &server{sys: sys}
}

func validBody() string {
	return `{
		"minLat": 35, "maxLat": 35.6, "minLon": -98, "maxLon": -96.8,
		"start": "2015-02-02T00:00:00Z", "end": "2015-02-03T00:00:00Z",
		"spatialRes": 4, "temporalRes": "Day"
	}`
}

func TestHandleQueryOK(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Cells) == 0 {
		t.Fatal("no cells in response")
	}
	for _, c := range resp.Cells {
		if c.Geohash == "" || c.Time == "" {
			t.Fatalf("cell missing labels: %+v", c)
		}
		st, ok := c.Stats["temperature"]
		if !ok {
			t.Fatalf("cell missing temperature: %+v", c)
		}
		if st.Count <= 0 || st.Min > st.Max {
			t.Fatalf("implausible stat: %+v", st)
		}
	}
	if resp.LatencyMS < 0 {
		t.Error("negative latency")
	}
}

func TestHandleQueryBadJSON(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d for malformed JSON", rec.Code)
	}
}

func TestHandleQueryInvalidQuery(t *testing.T) {
	srv := testServer(t)
	bad := strings.Replace(validBody(), `"spatialRes": 4`, `"spatialRes": 0`, 1)
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(bad))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d for invalid query", rec.Code)
	}
}

func TestHandleStats(t *testing.T) {
	srv := testServer(t)

	// Run one query first so the metrics snapshot has live series in it.
	qreq := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody()))
	qrec := httptest.NewRecorder()
	srv.handleQuery(qrec, qreq)
	if qrec.Code != http.StatusOK {
		t.Fatalf("warm-up query: status %d", qrec.Code)
	}

	rec := httptest.NewRecorder()
	srv.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cluster.Processed <= 0 {
		t.Errorf("cluster stats report no processed tasks: %+v", resp.Cluster)
	}
	if len(resp.Metrics) == 0 {
		t.Fatal("stats response carries no metrics snapshot")
	}
	found := false
	for name := range resp.Metrics {
		if strings.HasPrefix(name, "stash_coord_queries_total") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("metrics snapshot missing coordinator outcome counters: %d entries", len(resp.Metrics))
	}
}

func TestBuildQueryValidation(t *testing.T) {
	good := QueryRequest{
		MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1,
		Start: "2015-02-02T00:00:00Z", End: "2015-02-03T00:00:00Z",
		SpatialRes: 3, TemporalRes: "Day",
	}
	if _, err := buildQuery(good); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	cases := []func(*QueryRequest){
		func(r *QueryRequest) { r.Start = "not-a-time" },
		func(r *QueryRequest) { r.End = "not-a-time" },
		func(r *QueryRequest) { r.End = r.Start }, // empty range
		func(r *QueryRequest) { r.TemporalRes = "Fortnight" },
		func(r *QueryRequest) { r.SpatialRes = 0 },
		func(r *QueryRequest) { r.MinLat, r.MaxLat = 5, 1 },
	}
	for i, mutate := range cases {
		req := good
		mutate(&req)
		if _, err := buildQuery(req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}

	// Default temporal resolution is Day.
	req := good
	req.TemporalRes = ""
	q, err := buildQuery(req)
	if err != nil || q.TemporalRes != stash.Day {
		t.Errorf("empty temporal resolution: %v %v", q.TemporalRes, err)
	}
	// All named resolutions parse.
	for _, name := range []string{"Year", "Month", "Day", "Hour"} {
		req.TemporalRes = name
		if _, err := buildQuery(req); err != nil {
			t.Errorf("resolution %q rejected: %v", name, err)
		}
	}
}

func TestHandleQueryFormats(t *testing.T) {
	srv := testServer(t)
	for _, tc := range []struct {
		format   string
		wantCode int
		wantBody string
	}{
		{"geojson", http.StatusOK, "FeatureCollection"},
		{"csv", http.StatusOK, "geohash,time,lat,lon"},
		{"json", http.StatusOK, `"cells"`},
		{"protobuf", http.StatusBadRequest, ""},
	} {
		req := httptest.NewRequest(http.MethodPost, "/query?format="+tc.format, strings.NewReader(validBody()))
		rec := httptest.NewRecorder()
		srv.handleQuery(rec, req)
		if rec.Code != tc.wantCode {
			t.Errorf("format %q: status %d, want %d", tc.format, rec.Code, tc.wantCode)
			continue
		}
		if tc.wantBody != "" && !strings.Contains(rec.Body.String(), tc.wantBody) {
			t.Errorf("format %q: body missing %q", tc.format, tc.wantBody)
		}
	}
}

func TestHandleQueryHistograms(t *testing.T) {
	cfg := stash.DefaultConfig()
	cfg.Nodes = 2
	cfg.PointsPerBlock = 32
	cfg.Histograms = true
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	srv := &server{sys: sys}

	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range resp.Cells {
		if st, ok := c.Stats["temperature"]; ok && st.Histogram != nil {
			found = true
			var total int64 = st.Histogram.Under + st.Histogram.Over
			for _, b := range st.Histogram.Buckets {
				total += b
			}
			if total != st.Count {
				t.Fatalf("histogram total %d != count %d", total, st.Count)
			}
		}
	}
	if !found {
		t.Fatal("no histogram in any cell despite -histograms")
	}
}

// faultyServer builds a resilient 8-node server with a live fault plan, the
// configuration the -resilient -faults flags produce (with test-friendly
// deadlines).
func faultyServer(t *testing.T) *server {
	t.Helper()
	cfg := stash.DefaultConfig()
	cfg.Nodes = 8
	cfg.PointsPerBlock = 32
	fp := stash.NewFaultPlan(1)
	cfg.Faults = fp
	rc := stash.DefaultResilienceConfig()
	rc.RequestTimeout = 25 * time.Millisecond
	rc.Retries = 1
	rc.RetryBackoff = time.Millisecond
	rc.HelperReroute = false
	rc.ScatterFallback = false
	cfg.Resilience = rc
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return &server{sys: sys, faults: fp}
}

// regionBody is a country-size query whose footprint spans several owners.
func regionBody() string {
	return `{
		"minLat": 30, "maxLat": 40, "minLon": -100, "maxLon": -90,
		"start": "2015-02-02T00:00:00Z", "end": "2015-02-03T00:00:00Z",
		"spatialRes": 3, "temporalRes": "Day"
	}`
}

func TestHandleQueryBadTimeout(t *testing.T) {
	srv := testServer(t)
	for _, raw := range []string{"banana", "-5ms", "0s"} {
		req := httptest.NewRequest(http.MethodPost, "/query?timeout="+raw, strings.NewReader(validBody()))
		rec := httptest.NewRecorder()
		srv.handleQuery(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("timeout %q: status %d, want 400", raw, rec.Code)
		}
	}
}

func TestHandleQueryPartialCoverage(t *testing.T) {
	srv := faultyServer(t)

	// Pick a node that owns part of the footprint and crash it.
	var qr QueryRequest
	if err := json.Unmarshal([]byte(regionBody()), &qr); err != nil {
		t.Fatal(err)
	}
	q, err := buildQuery(qr)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	owners := srv.sys.Client().GroupByOwner(keys)
	if len(owners) < 2 {
		t.Skipf("footprint landed on %d owner(s); need 2+ for a partial answer", len(owners))
	}
	var victim stash.NodeID
	for id := range owners {
		victim = id
		break
	}
	srv.faults.Crash(int(victim))

	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(regionBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("crashed owner: status %d, want 206: %s", rec.Code, rec.Body.String())
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	cov := resp.Coverage
	if cov == nil {
		t.Fatal("206 response without coverage block")
	}
	if cov.Complete {
		t.Fatalf("206 response claims complete coverage: %+v", cov)
	}
	if cov.Requested != len(keys) {
		t.Errorf("coverage requested %d, want footprint size %d", cov.Requested, len(keys))
	}
	if cov.Missing+cov.Degraded == 0 {
		t.Errorf("no missing/degraded shares in partial coverage: %+v", cov)
	}
	if cov.ShareRatio <= 0 || cov.ShareRatio >= 1 {
		t.Errorf("share ratio %v outside (0,1)", cov.ShareRatio)
	}
	if len(cov.NodeErrors) == 0 {
		t.Errorf("partial coverage names no failing node: %+v", cov)
	}

	// Heal and verify the server recovers to a complete 200 answer.
	srv.faults.Recover(int(victim))
	rec = httptest.NewRecorder()
	srv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(regionBody())))
	if rec.Code != http.StatusOK {
		t.Fatalf("healed cluster: status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var healed QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &healed); err != nil {
		t.Fatal(err)
	}
	if healed.Coverage != nil && !healed.Coverage.Complete {
		t.Fatalf("healed cluster still degraded: %+v", healed.Coverage)
	}
	if len(healed.Cells) <= len(resp.Cells) {
		t.Errorf("healed answer has %d cells, partial had %d; expected strictly more",
			len(healed.Cells), len(resp.Cells))
	}
}

func TestHandleQueryGatewayTimeout(t *testing.T) {
	srv := faultyServer(t)
	// An unmeetable deadline yields nothing at all before it expires: 504.
	req := httptest.NewRequest(http.MethodPost, "/query?timeout=1ns", strings.NewReader(regionBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("1ns deadline: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

func TestFaultsEndpoints(t *testing.T) {
	srv := faultyServer(t)

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.handleFaultsPost(rec, httptest.NewRequest(http.MethodPost, "/faults", strings.NewReader(body)))
		return rec
	}

	// Inject a crash and read it back.
	rec := post(`{"node": 3, "kind": "crash"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("inject crash: status %d: %s", rec.Code, rec.Body.String())
	}
	var fr FaultsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Faulted) != 1 || fr.Faulted[0] != 3 {
		t.Fatalf("faulted list %v, want [3]", fr.Faulted)
	}

	rec = httptest.NewRecorder()
	srv.handleFaultsGet(rec, httptest.NewRequest(http.MethodGet, "/faults", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "3") {
		t.Fatalf("GET /faults: %d %s", rec.Code, rec.Body.String())
	}

	// Heal it.
	rec = post(`{"node": 3, "heal": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("heal: status %d: %s", rec.Code, rec.Body.String())
	}
	fr = FaultsResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if len(fr.Faulted) != 0 {
		t.Fatalf("faulted list after heal: %v", fr.Faulted)
	}

	// Bad requests.
	if rec := post(`{"node": 1, "kind": "meteor"}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", rec.Code)
	}
	if rec := post(`{nope`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	mux := newMux(srv, false)

	// Run one query through the mux so the core families have live series.
	qrec := httptest.NewRecorder()
	mux.ServeHTTP(qrec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody())))
	if qrec.Code != http.StatusOK {
		t.Fatalf("warm-up query: status %d: %s", qrec.Code, qrec.Body.String())
	}

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"stash_cache_hits_total",
		"stash_query_duration_seconds_bucket",
		"stash_coord_queries_total",
		"stash_dht_lookups_total",
		"# TYPE stash_query_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestPprofGating(t *testing.T) {
	srv := testServer(t)

	// Without -debug the pprof routes must not exist.
	plain := newMux(srv, false)
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof without -debug: status %d, want 404", rec.Code)
	}

	// With -debug the index and cmdline endpoints serve.
	dbg := newMux(srv, true)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		dbg.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("pprof with -debug: GET %s status %d, want 200", path, rec.Code)
		}
	}
}

func TestHandleQueryTraceJSON(t *testing.T) {
	srv := testServer(t)
	for _, mode := range []string{"1", "true", "json"} {
		req := httptest.NewRequest(http.MethodPost, "/query?trace="+mode, strings.NewReader(validBody()))
		rec := httptest.NewRecorder()
		srv.handleQuery(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("trace=%s: status %d: %s", mode, rec.Code, rec.Body.String())
		}
		var resp QueryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Trace) == 0 {
			t.Fatalf("trace=%s: response carries no span tree", mode)
		}
		root := resp.Trace[0]
		if root.Name != "query" {
			t.Errorf("trace=%s: root span %q, want query", mode, root.Name)
		}
		if root.DurUS <= 0 {
			t.Errorf("trace=%s: root span has no duration: %+v", mode, root)
		}
		// The root's children are the query stages; their durations must not
		// exceed the end-to-end span.
		if len(root.Children) == 0 {
			t.Fatalf("trace=%s: root span has no stage children", mode)
		}
		stages := map[string]bool{}
		var sum int64
		for _, c := range root.Children {
			stages[c.Name] = true
			sum += c.DurUS
		}
		for _, want := range []string{"footprint", "fanout", "merge"} {
			if !stages[want] {
				t.Errorf("trace=%s: stages %v missing %s", mode, stages, want)
			}
		}
		if sum > root.DurUS {
			t.Errorf("trace=%s: stage durations (%dµs) exceed end-to-end (%dµs)", mode, sum, root.DurUS)
		}
	}

	// Untraced responses must omit the tree entirely.
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(validBody())))
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Error("untraced response carries a trace field")
	}
}

func TestHandleQueryTraceChrome(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query?trace=chrome", strings.NewReader(validBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s: ph %q, want X", ev.Name, ev.Ph)
		}
		names[ev.Name] = true
	}
	if !names["query"] {
		t.Errorf("chrome trace missing the root query event: %v", names)
	}
}

func TestHandleQueryBadTraceMode(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/query?trace=perfetto", strings.NewReader(validBody()))
	rec := httptest.NewRecorder()
	srv.handleQuery(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown trace mode: status %d, want 400", rec.Code)
	}
}

func TestFaultsEndpointsDisabledWithoutPlan(t *testing.T) {
	srv := testServer(t) // no -faults: srv.faults is nil
	rec := httptest.NewRecorder()
	srv.handleFaultsPost(rec, httptest.NewRequest(http.MethodPost, "/faults", strings.NewReader(`{"node":1,"kind":"crash"}`)))
	if rec.Code != http.StatusConflict {
		t.Errorf("POST /faults without plan: status %d, want 409", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handleFaultsGet(rec, httptest.NewRequest(http.MethodGet, "/faults", nil))
	if rec.Code != http.StatusConflict {
		t.Errorf("GET /faults without plan: status %d, want 409", rec.Code)
	}
}

func TestAdminJoinLeaveRebalance(t *testing.T) {
	srv := testServer(t)
	mux := newMux(srv, false)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	post := func(path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
		return rec
	}

	var h0 HealthResponse
	if err := json.Unmarshal(get("/healthz").Body.Bytes(), &h0); err != nil {
		t.Fatal(err)
	}
	if h0.Epoch == 0 {
		t.Fatal("healthz reports epoch 0")
	}

	rec := post("/admin/join", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("join: %d %s", rec.Code, rec.Body)
	}
	var jr JoinResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Node == "" || jr.Rebalance.Epoch != h0.Epoch+1 {
		t.Fatalf("join response: %+v", jr)
	}

	var h1 HealthResponse
	if err := json.Unmarshal(get("/healthz").Body.Bytes(), &h1); err != nil {
		t.Fatal(err)
	}
	if h1.Epoch != h0.Epoch+1 || h1.Nodes != h0.Nodes+1 {
		t.Fatalf("healthz after join: %+v (was %+v)", h1, h0)
	}

	rec = post("/admin/leave", `{"node": 1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("leave: %d %s", rec.Code, rec.Body)
	}
	var lr LeaveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Rebalance.Epoch != h0.Epoch+2 {
		t.Fatalf("leave response: %+v", lr)
	}

	var st stash.RebalanceStatus
	if err := json.Unmarshal(get("/admin/rebalance").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != h0.Epoch+2 || st.Changes != 2 || len(st.Members) != h0.Nodes {
		t.Fatalf("rebalance status: %+v", st)
	}

	if rec := post("/admin/leave", `{"node": 1}`); rec.Code != http.StatusConflict {
		t.Fatalf("double leave: %d, want 409", rec.Code)
	}
	if rec := post("/admin/leave", "{nope"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad leave body: %d, want 400", rec.Code)
	}

	// The cluster still answers queries after the churn.
	qrec := post("/query", validBody())
	if qrec.Code != http.StatusOK {
		t.Fatalf("query after churn: %d %s", qrec.Code, qrec.Body)
	}
}
