package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stash/internal/cluster"
	"stash/internal/obs"
)

// tickClock is a manually-advanced clock shared by the health pipeline under
// test.
type tickClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTickClock() *tickClock {
	return &tickClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *tickClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *tickClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestMetricsContentTypeAndHead pins the exposition content type and HEAD
// support through the real routing table.
func TestMetricsContentTypeAndHead(t *testing.T) {
	srv := testServer(t)
	mux := newMux(srv, false)

	const wantCT = "text/plain; version=0.0.4; charset=utf-8"
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != wantCT {
		t.Fatalf("GET Content-Type %q, want %q", ct, wantCT)
	}
	if rec.Body.Len() == 0 {
		t.Fatal("GET /metrics body empty")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("HEAD /metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != wantCT {
		t.Fatalf("HEAD Content-Type %q, want %q", ct, wantCT)
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("HEAD /metrics carried a %d-byte body", rec.Body.Len())
	}
}

// TestQueryIDCorrelation: the slow-log JSON line and the flight-recorder
// entry for the same query share a monotonic id, and ?id= retrieves exactly
// that profile.
func TestQueryIDCorrelation(t *testing.T) {
	srv, sink := obsServer(t)
	for i := 0; i < 3; i++ {
		if rec := postQuery(t, srv, "/query"); rec.Code != http.StatusOK {
			t.Fatalf("query %d status %d", i, rec.Code)
		}
	}

	// Every slow-log line (1ns threshold catches all) carries a nonzero id.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("slow log emitted %d lines, want 3", len(lines))
	}
	var ids []uint64
	for _, line := range lines {
		var d obs.ProfileData
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("slow-log line not JSON: %v\n%s", err, line)
		}
		if d.ID == 0 {
			t.Fatalf("slow-log line missing id: %s", line)
		}
		ids = append(ids, d.ID)
	}
	// Monotonic across the run.
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not monotonic: %v", ids)
		}
	}

	// ?id= on /debug/queries returns exactly the matching profile.
	rec := httptest.NewRecorder()
	srv.handleDebugQueries(rec, httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/debug/queries?id=%d", ids[1]), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("?id= status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ProfilesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || len(resp.Profiles) != 1 || resp.Profiles[0].ID != ids[1] {
		t.Fatalf("?id=%d returned %+v", ids[1], resp)
	}
	// Same filter works on the slow ring.
	rec = httptest.NewRecorder()
	srv.handleDebugSlow(rec, httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/debug/slow?id=%d", ids[2]), nil))
	var slowResp ProfilesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &slowResp); err != nil {
		t.Fatal(err)
	}
	if slowResp.Count != 1 || slowResp.Profiles[0].ID != ids[2] {
		t.Fatalf("slow ?id=%d returned %+v", ids[2], slowResp)
	}

	// Unknown id matches nothing; malformed id is a client error.
	rec = httptest.NewRecorder()
	srv.handleDebugQueries(rec, httptest.NewRequest(http.MethodGet, "/debug/queries?id=999999999", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 0 {
		t.Fatalf("unknown id matched %d profiles", resp.Count)
	}
	rec = httptest.NewRecorder()
	srv.handleDebugQueries(rec, httptest.NewRequest(http.MethodGet, "/debug/queries?id=zap", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id status %d, want 400", rec.Code)
	}
}

// healthHarness builds a deterministic health pipeline over its own registry
// (so the process-global one stays untouched) and mounts it on a test server.
type healthHarness struct {
	srv  *server
	reg  *obs.Registry
	clk  *tickClock
	hist *obs.Histogram
	okC  *obs.Counter
}

func newHealthHarness(t *testing.T) *healthHarness {
	t.Helper()
	reg := obs.New()
	clk := newTickClock()
	health := cluster.NewHealth(reg, cluster.HealthConfig{
		History:  256,
		Interval: time.Second,
		SLO:      cluster.SLOThresholds{QueryP99: 0.1, ErrRatio: 0.01, HitRatio: 0.5, PartialRatio: 0.05},
		Burn: obs.BurnConfig{
			FastWindow: 10 * time.Second,
			SlowWindow: 60 * time.Second,
			EnterAfter: 2,
			ClearAfter: 3,
		},
		Structural: cluster.DefaultStructuralThresholds(),
		Now:        clk.Now,
	})
	if health.TSDB == nil || health.SLO == nil || health.Watchdog == nil || health.Monitor == nil {
		t.Fatal("NewHealth left components nil with positive history")
	}
	srv := testServer(t)
	srv.health = health
	return &healthHarness{
		srv:  srv,
		reg:  reg,
		clk:  clk,
		hist: reg.Histogram("stash_query_duration_seconds"),
		okC:  reg.Counter("stash_coord_queries_total", "outcome", "ok"),
	}
}

// tick injects one second of traffic at the given latency and runs one
// monitor pass.
func (h *healthHarness) tick(latency float64) {
	for i := 0; i < 20; i++ {
		h.hist.Observe(latency)
		h.okC.Inc()
	}
	h.srv.health.Monitor.Tick()
	h.clk.Advance(time.Second)
}

func (h *healthHarness) healthz(t *testing.T) HealthResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.srv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var resp HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHealthDegradationEndToEnd is the acceptance-criteria scenario: a
// deterministic fake-clock latency regression travels from injected
// observations through /debug/timeline, becomes a burn-rate alert at
// /debug/alerts, flips /healthz to degraded, and recovers.
func TestHealthDegradationEndToEnd(t *testing.T) {
	h := newHealthHarness(t)

	// Healthy phase: 5ms queries.
	for i := 0; i < 12; i++ {
		h.tick(0.005)
	}
	if resp := h.healthz(t); resp.Degraded || resp.Status != "ok" {
		t.Fatalf("healthy phase: %+v", resp)
	}

	// Regression: 2s queries. p99 burn = 20x the 100ms target.
	for i := 0; i < 4; i++ {
		h.tick(2.0)
	}
	resp := h.healthz(t)
	if !resp.Degraded || resp.Status != "degraded" {
		t.Fatalf("regression not reflected: %+v", resp)
	}
	foundReason := false
	for _, r := range resp.Reasons {
		if strings.Contains(r, "query_p99_latency") {
			foundReason = true
		}
	}
	if !foundReason {
		t.Fatalf("reasons %v missing the p99 objective", resp.Reasons)
	}

	// The timeline shows the regression: the histogram's windowed p99 points
	// end high.
	rec := httptest.NewRecorder()
	h.srv.handleDebugTimeline(rec, httptest.NewRequest(http.MethodGet,
		"/debug/timeline?name=stash_query_duration_seconds&window=10s", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("timeline status %d: %s", rec.Code, rec.Body.String())
	}
	var tl TimelineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Series) != 1 || tl.Series[0].Kind != "histogram" {
		t.Fatalf("timeline series: %+v", tl.Series)
	}
	p99 := tl.Series[0].Quantiles["p99"]
	if len(p99) == 0 {
		t.Fatal("timeline carries no p99 points")
	}
	if last := p99[len(p99)-1].V; last < 1.0 {
		t.Fatalf("timeline p99 tail = %v, want >= 1s during regression", last)
	}

	// The alert surface agrees: the latency objective is critical and the
	// transition into it is recorded.
	rec = httptest.NewRecorder()
	h.srv.handleDebugAlerts(rec, httptest.NewRequest(http.MethodGet, "/debug/alerts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("alerts status %d", rec.Code)
	}
	var alerts AlertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	if alerts.Worst != "critical" {
		t.Fatalf("worst = %q, want critical (alerts %+v)", alerts.Worst, alerts.Alerts)
	}
	sawObjective := false
	for _, a := range alerts.Alerts {
		if a.Objective == "query_p99_latency" && a.State == obs.StateCritical {
			sawObjective = true
		}
	}
	if !sawObjective {
		t.Fatalf("alerts %+v missing critical p99 objective", alerts.Alerts)
	}
	if len(alerts.Transitions) == 0 {
		t.Fatal("no transitions recorded")
	}

	// Recovery: healthy latencies until the fast window drains and hysteresis
	// clears the alert.
	recovered := false
	for i := 0; i < 40; i++ {
		h.tick(0.005)
		if resp := h.healthz(t); !resp.Degraded {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("never recovered to degraded:false")
	}
	if resp := h.healthz(t); resp.Status != "ok" {
		t.Fatalf("post-recovery status %q", resp.Status)
	}
}

// TestDebugTimelineHandler covers the listing, filtering, and error paths.
func TestDebugTimelineHandler(t *testing.T) {
	h := newHealthHarness(t)
	for i := 0; i < 5; i++ {
		h.tick(0.01)
	}

	// No ?name=: a sorted listing of retained series.
	rec := httptest.NewRecorder()
	h.srv.handleDebugTimeline(rec, httptest.NewRequest(http.MethodGet, "/debug/timeline", nil))
	var tl TimelineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Samples != 5 || tl.History != 256 {
		t.Fatalf("timeline meta: %+v", tl)
	}
	found := false
	for _, n := range tl.Names {
		if n == "stash_query_duration_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatalf("names %v missing the latency histogram", tl.Names)
	}

	// Family name matches labeled series; ?step= downsamples keeping newest.
	rec = httptest.NewRecorder()
	h.srv.handleDebugTimeline(rec, httptest.NewRequest(http.MethodGet,
		"/debug/timeline?name=stash_coord_queries_total&step=2", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Series) != 1 {
		t.Fatalf("family query returned %d series", len(tl.Series))
	}
	if got := len(tl.Series[0].Points); got != 3 {
		t.Fatalf("step=2 over 5 samples kept %d points, want 3", got)
	}
	if last := tl.Series[0].Points[len(tl.Series[0].Points)-1].V; last != 100 {
		t.Fatalf("newest point = %v, want 100", last)
	}

	// Error paths.
	for target, want := range map[string]int{
		"/debug/timeline?name=no_such_series":  http.StatusNotFound,
		"/debug/timeline?name=x&window=banana": http.StatusBadRequest,
		"/debug/timeline?name=x&step=0":        http.StatusBadRequest,
	} {
		rec = httptest.NewRecorder()
		h.srv.handleDebugTimeline(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != want {
			t.Fatalf("%s status %d, want %d", target, rec.Code, want)
		}
	}
}

// TestTimelineAndAlertsDisabled: without -history the introspection endpoints
// refuse with 409 (mirroring the recorder/slow-log gating convention), and
// /healthz never claims degradation.
func TestTimelineAndAlertsDisabled(t *testing.T) {
	srv := testServer(t) // srv.health == nil
	rec := httptest.NewRecorder()
	srv.handleDebugTimeline(rec, httptest.NewRequest(http.MethodGet, "/debug/timeline", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("timeline disabled status %d, want 409", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handleDebugAlerts(rec, httptest.NewRequest(http.MethodGet, "/debug/alerts", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("alerts disabled status %d, want 409", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var resp HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded || resp.Status != "ok" {
		t.Fatalf("disabled watchdog verdict: %+v", resp)
	}

	// The same holds for a Health built with History 0: all components nil,
	// nothing panics, nothing degrades.
	srv.health = cluster.NewHealth(obs.New(), cluster.HealthConfig{History: 0})
	if srv.health.TSDB != nil || srv.health.Monitor != nil {
		t.Fatal("History 0 must produce nil components")
	}
	rec = httptest.NewRecorder()
	srv.handleDebugTimeline(rec, httptest.NewRequest(http.MethodGet, "/debug/timeline", nil))
	if rec.Code != http.StatusConflict {
		t.Fatalf("nil-TSDB timeline status %d, want 409", rec.Code)
	}
}
