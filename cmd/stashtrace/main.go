// Command stashtrace records and replays visual-exploration session traces
// (JSON-lines of timestamped queries). Record captures a synthetic session
// driven against a live cluster; replay re-drives any trace — recorded here
// or by a real front-end — against a fresh cluster, so configurations can be
// compared on identical workloads.
//
// Usage:
//
//	stashtrace -record session.jsonl -session panning -steps 20
//	stashtrace -replay session.jsonl -nodes 32
//	stashtrace -replay session.jsonl -paced            # honor think-time
//	stashtrace -replay session.jsonl -metrics metrics.prom
//	stashtrace -replay session.jsonl -chrometrace replay.json  # Perfetto
//	stashtrace -replay session.jsonl -explain                  # slowest-query profiles
//	stashtrace -replay session.jsonl -snapshot after.json      # timestamped flat snapshot
//	stashtrace -metrics-diff before.json after.json            # counter rates between two snapshots
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"stash/internal/cluster"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/simnet"
	"stash/internal/stash"
	"stash/internal/trace"
	"stash/internal/workload"
)

func main() {
	var (
		record   = flag.String("record", "", "record a synthetic session to this file")
		replay   = flag.String("replay", "", "replay a trace file")
		session  = flag.String("session", "panning", "synthetic session kind: panning|dicing|zoom")
		steps    = flag.Int("steps", 12, "synthetic session length")
		nodes    = flag.Int("nodes", 16, "cluster size")
		seed     = flag.Int64("seed", 42, "workload/dataset seed")
		points   = flag.Int("points", 512, "observations per storage block")
		paced    = flag.Bool("paced", false, "honor recorded think-time during replay (capped at 2s)")
		metrics  = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to this file when done (\"-\" for stdout)")
		snapshot = flag.String("snapshot", "", "write a timestamped flat JSON metrics snapshot to this file when done (\"-\" for stdout; diff two with -metrics-diff)")
		diff     = flag.String("metrics-diff", "", "standalone: compute counter rates between this snapshot file (old) and the positional argument (new), then exit")
		chrome   = flag.String("chrometrace", "", "replay only: write the session's spans as Chrome trace-event JSON (Perfetto-loadable)")
		explain  = flag.Bool("explain", false, "replay only: profile every query and print the slowest EXPLAIN summaries")
	)
	flag.Parse()

	switch {
	case *diff != "":
		if *record != "" || *replay != "" {
			log.Fatal("stashtrace: -metrics-diff is a standalone mode")
		}
		if flag.NArg() != 1 {
			log.Fatal("stashtrace: -metrics-diff OLD.json needs the new snapshot as its argument: stashtrace -metrics-diff old.json new.json")
		}
		if err := doMetricsDiff(*diff, flag.Arg(0)); err != nil {
			log.Fatal(err)
		}
		return
	case *record != "" && *replay != "":
		log.Fatal("stashtrace: -record and -replay are mutually exclusive")
	case *record != "":
		if err := doRecord(*record, *session, *steps, *nodes, *seed, *points); err != nil {
			log.Fatal(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *nodes, *seed, *points, *paced, *chrome, *explain); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("stashtrace: one of -record, -replay, or -metrics-diff is required")
	}
	if *metrics != "" {
		if err := writeMetricsSnapshot(*metrics); err != nil {
			log.Fatal(err)
		}
	}
	if *snapshot != "" {
		if err := writeFlatSnapshot(*snapshot); err != nil {
			log.Fatal(err)
		}
	}
}

// writeFlatSnapshot dumps the process-global registry as a timestamped flat
// JSON document — the -metrics-diff input format.
func writeFlatSnapshot(path string) error {
	doc := obs.TakeSnapshot(obs.Default(), time.Time{})
	if path == "-" {
		return obs.WriteSnapshotJSON(os.Stdout, doc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteSnapshotJSON(f, doc); err != nil {
		return err
	}
	fmt.Printf("flat snapshot written to %s\n", path)
	return nil
}

// doMetricsDiff loads two snapshot documents and prints per-series deltas and
// per-second rates, fastest-moving first.
func doMetricsDiff(oldPath, newPath string) error {
	oldDoc, err := obs.ReadSnapshotFile(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := obs.ReadSnapshotFile(newPath)
	if err != nil {
		return err
	}
	rows, elapsed, err := obs.DiffSnapshots(oldDoc, newDoc)
	if err != nil {
		return err
	}
	fmt.Printf("%s -> %s: %v elapsed, %d comparable series\n",
		oldPath, newPath, elapsed.Round(time.Millisecond), len(rows))
	fmt.Printf("%12s %12s %14s  %s\n", "RATE/S", "DELTA", "NEW", "SERIES")
	unchanged := 0
	for _, r := range rows {
		if r.Delta == 0 {
			unchanged++
			continue
		}
		fmt.Printf("%12.3f %12.1f %14.1f  %s\n", r.PerSec, r.Delta, r.New, r.Name)
	}
	if unchanged > 0 {
		fmt.Printf("(%d unchanged series suppressed)\n", unchanged)
	}
	return nil
}

// writeMetricsSnapshot dumps the process-global registry in Prometheus text
// form, so a benchmark or replay run leaves an inspectable metrics artifact.
func writeMetricsSnapshot(path string) error {
	if path == "-" {
		return obs.Default().WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.Default().WritePrometheus(f); err != nil {
		return err
	}
	fmt.Printf("metrics snapshot written to %s\n", path)
	return nil
}

func buildCluster(nodes int, seed int64, points int) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Seed = uint64(seed)
	cfg.PointsPerBlock = points
	cfg.Sleeper = simnet.NewReal()
	sc := stash.DefaultConfig()
	cfg.Stash = &sc
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	c.Start()
	return c, nil
}

func synthSession(kind string, steps int, seed int64) ([]query.Query, error) {
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "panning":
		start := workload.RandomQuery(rng, workload.State)
		return workload.PanningSession(start, steps, 0.10, rng), nil
	case "dicing":
		start := workload.RandomQuery(rng, workload.Country)
		return workload.DicingDescending(start, steps, 0.20), nil
	case "zoom":
		base := workload.RandomQuery(rng, workload.State)
		return workload.DrillDownSession(base, 2, 5), nil
	default:
		return nil, fmt.Errorf("stashtrace: unknown session kind %q", kind)
	}
}

func doRecord(path, kind string, steps, nodes int, seed int64, points int) error {
	qs, err := synthSession(kind, steps, seed)
	if err != nil {
		return err
	}
	c, err := buildCluster(nodes, seed, points)
	if err != nil {
		return err
	}
	defer c.Stop()

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec := trace.NewRecorder(f)
	for _, q := range qs {
		_, lat, err := c.Client().TimedQuery(q)
		if err != nil {
			return err
		}
		if err := rec.Record(q, lat); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond) // think-time lands in offsets
	}
	if err := rec.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d queries (%s session) to %s\n", len(qs), kind, path)
	return nil
}

// ctxRunner adapts the coordinator to the trace.Runner interface while
// threading one long-lived context through every replayed query, so a single
// obs.Trace can capture the whole session's span forest.
type ctxRunner struct {
	ctx context.Context
	cl  *cluster.Client
}

func (r ctxRunner) Query(q query.Query) (query.Result, error) {
	return r.cl.QueryContext(r.ctx, q)
}

// explainRunner profiles every replayed query, retaining the snapshots so the
// replay can report its slowest offenders. base is the session context — the
// trace context when -chrometrace is also set, so a profiled replay still
// yields a complete span forest.
type explainRunner struct {
	base context.Context
	cl   *cluster.Client

	mu       sync.Mutex
	profiles []obs.ProfileData
}

func (r *explainRunner) Query(q query.Query) (query.Result, error) {
	ctx, p := obs.WithProfile(r.base)
	res, err := r.cl.QueryContext(ctx, q)
	switch {
	case err != nil:
		p.Finish("error")
	case !res.Coverage.Complete():
		p.Finish("partial")
	default:
		p.Finish("ok")
	}
	r.mu.Lock()
	r.profiles = append(r.profiles, p.Data())
	r.mu.Unlock()
	return res, err
}

// slowest returns the n highest-latency profiles, descending.
func (r *explainRunner) slowest(n int) []obs.ProfileData {
	r.mu.Lock()
	out := make([]obs.ProfileData, len(r.profiles))
	copy(out, r.profiles)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMS > out[j].TotalMS })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func doReplay(path string, nodes int, seed int64, points int, paced bool, chromePath string, explain bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	c, err := buildCluster(nodes, seed, points)
	if err != nil {
		return err
	}
	defer c.Stop()

	var run trace.Runner = c.Client()
	var tr *obs.Trace
	sessionCtx := context.Background()
	if chromePath != "" {
		ctx, t := obs.NewTrace(sessionCtx)
		tr = t
		sessionCtx = ctx
		run = ctxRunner{ctx: ctx, cl: c.Client()}
	}
	var er *explainRunner
	if explain {
		er = &explainRunner{base: sessionCtx, cl: c.Client()}
		run = er
	}

	stats, err := trace.Replay(events, run, paced, 2*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d queries (%d failed) on %d nodes\n", stats.Queries, stats.Failed, nodes)
	fmt.Printf("latency: mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
		stats.Mean().Round(time.Microsecond),
		stats.Percentile(50).Round(time.Microsecond),
		stats.Percentile(95).Round(time.Microsecond),
		stats.Percentile(99).Round(time.Microsecond),
		stats.Max.Round(time.Microsecond))

	if er != nil {
		slow := er.slowest(5)
		if len(slow) > 0 {
			fmt.Printf("slowest %d queries:\n", len(slow))
			for _, d := range slow {
				fmt.Printf("  %s\n", d.String())
			}
		}
	}

	if chromePath != "" {
		cf, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := tr.WriteChrome(cf); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s (open in Perfetto or chrome://tracing)\n", chromePath)
	}
	return nil
}
