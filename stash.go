// Package stash is the public API of the STASH reproduction: a distributed,
// in-memory cache for hierarchical spatiotemporal aggregation queries,
// layered as middleware over a Galileo-style distributed block store, after
// Mitra et al., "STASH: Fast Hierarchical Aggregation Queries for Effective
// Visual Spatiotemporal Explorations" (IEEE CLUSTER 2019).
//
// The package re-exports the system's building blocks as aliases, so the
// whole surface is reachable from one import:
//
//	import "stash"
//
//	cfg := stash.DefaultConfig()
//	sys, err := stash.NewCluster(cfg)
//	if err != nil { ... }
//	sys.Start()
//	defer sys.Stop()
//
//	q := stash.Query{
//		Box:         stash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95},
//		Time:        stash.DayRange(2015, 2, 2),
//		SpatialRes:  4,
//		TemporalRes: stash.Day,
//	}
//	res, err := sys.Client().Query(q)
//
// Architecture (one instance simulates the full deployment in-process):
//
//	front-end  →  Client (coordinator: zero-hop owner lookup, fan-out, merge)
//	              └→ Node (request queue + workers)
//	                   ├→ STASH graph  (per-level cell cache, freshness, PLM)
//	                   ├→ guest graph  (replicated cliques from hotspots)
//	                   └→ Galileo shard (block store, scan + aggregate)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure.
package stash

import (
	"io"
	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/dht"

	"stash/internal/elastic"
	"stash/internal/export"
	"stash/internal/frontend"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/stash"
	"stash/internal/temporal"
	"stash/internal/workload"
)

// --- spatial primitives ---

// Box is a latitude/longitude bounding rectangle.
type Box = geohash.Box

// Direction is one of the eight compass directions used by panning and
// neighbor discovery.
type Direction = geohash.Direction

// Compass directions, clockwise from north.
const (
	North     = geohash.North
	NorthEast = geohash.NorthEast
	East      = geohash.East
	SouthEast = geohash.SouthEast
	South     = geohash.South
	SouthWest = geohash.SouthWest
	West      = geohash.West
	NorthWest = geohash.NorthWest
)

// World is the whole-globe bounding box.
var World = geohash.World

// Point is a latitude/longitude coordinate.
type Point = geohash.Point

// Polygon is a simple lat/lon polygon for lasso queries (the general form
// of the paper's Query_Polygon).
type Polygon = geohash.Polygon

// NewPolygonQuery builds a lasso query over the polygon at the given
// resolutions.
func NewPolygonQuery(p Polygon, tr TimeRange, spatialRes int, temporalRes Resolution) (Query, error) {
	return query.NewPolygonQuery(p, tr, spatialRes, temporalRes)
}

// EncodeGeohash returns the geohash of a point at the given precision.
func EncodeGeohash(lat, lon float64, precision int) string {
	return geohash.Encode(lat, lon, precision)
}

// DecodeGeohash returns the bounding box of a geohash.
func DecodeGeohash(gh string) (Box, error) { return geohash.DecodeBox(gh) }

// --- temporal primitives ---

// Resolution is a temporal resolution rung (Year → Hour).
type Resolution = temporal.Resolution

// Temporal resolutions, coarse to fine.
const (
	Year  = temporal.Year
	Month = temporal.Month
	Day   = temporal.Day
	Hour  = temporal.Hour
)

// TimeRange is a half-open [start, end) interval.
type TimeRange = temporal.Range

// TimeLabel is a temporal cell identifier (e.g. "2015-02" at Month).
type TimeLabel = temporal.Label

// ParseTimeLabel validates text as a label at the given resolution; use it
// with Cluster.UpdateBlock / InvalidateBlock to name a block's day.
func ParseTimeLabel(text string, r Resolution) (TimeLabel, error) {
	return temporal.Parse(text, r)
}

// DayRange returns the one-day range starting at the given civil date (UTC).
var DayRange = temporal.DayRange

// NewTimeRange builds a validated time range.
var NewTimeRange = temporal.NewRange

// --- query model ---

// Query is a hierarchical aggregation query: a spatial rectangle, a time
// range, and the requested spatial (geohash precision) and temporal
// resolutions. Its OLAP methods (Pan, DiceShrink, DrillDown, RollUp,
// SliceTime, ...) derive the visual-navigation sequences of the paper.
type Query = query.Query

// Result maps each non-empty footprint cell to its aggregate summary.
type Result = query.Result

// CellKey identifies one cell: a geohash plus a temporal label.
type CellKey = cell.Key

// Summary is the mergeable per-attribute aggregate payload of a cell.
type Summary = cell.Summary

// Stat is one attribute's count/sum/min/max aggregate.
type Stat = cell.Stat

// Histogram is a mergeable fixed-bucket distribution, optionally carried by
// cells when Config.Histograms is set (drives histogram panels).
type Histogram = cell.Histogram

// --- system assembly ---

// Config assembles a simulated STASH deployment.
type Config = cluster.Config

// CacheConfig tunes the per-node STASH graph shard.
type CacheConfig = stash.Config

// ReplicationConfig tunes hotspot handling (clique handoff).
type ReplicationConfig = replication.Config

// CostModel prices the simulated disk/network/memory operations.
type CostModel = simnet.Model

// Cluster is a running STASH deployment: nodes, ring, and cost plumbing.
type Cluster = cluster.Cluster

// Client is the query coordinator bound to a cluster.
type Client = cluster.Client

// Node is one cluster member.
type Node = cluster.Node

// NodeID identifies a cluster member on the DHT ring.
type NodeID = dht.NodeID

// NodeStats snapshots one node's counters.
type NodeStats = cluster.NodeStats

// RebalanceStatus snapshots the membership epoch, the member list, and the
// cumulative warm-handoff counters of a cluster's elastic membership layer.
type RebalanceStatus = cluster.RebalanceStatus

// ErrNotOwner is the retriable bounce a node returns when a request was
// routed under a superseded membership epoch; coordinators refresh their
// view and re-plan on it.
type ErrNotOwner = cluster.ErrNotOwner

// DefaultConfig returns a 16-node STASH-enabled cluster with metered
// (non-sleeping) simulated costs — a good starting point for examples and
// tests. For timing experiments swap in a sleeping cost applier:
//
//	cfg := stash.DefaultConfig()
//	cfg.Sleeper = stash.NewRealSleeper()
func DefaultConfig() Config { return cluster.DefaultConfig() }

// DefaultCacheConfig returns the cache tuning used by the experiments.
func DefaultCacheConfig() CacheConfig { return stash.DefaultConfig() }

// DefaultReplicationConfig returns the paper-aligned hotspot settings.
func DefaultReplicationConfig() ReplicationConfig { return replication.DefaultConfig() }

// DefaultCostModel returns a disk≫network≫memory cost model.
func DefaultCostModel() CostModel { return simnet.Default() }

// NewCluster assembles a cluster; call Start before querying and Stop when
// done.
func NewCluster(cfg Config) (*Cluster, error) { return cluster.New(cfg) }

// Sleeper applies simulated costs (real sleeps or pure accounting).
type Sleeper = simnet.Sleeper

// NewRealSleeper returns a cost applier that actually sleeps, so concurrent
// load exhibits genuine queueing. Use it for latency/throughput experiments.
func NewRealSleeper() Sleeper { return simnet.NewReal() }

// NewMeterSleeper returns an accounting-only cost applier for tests.
func NewMeterSleeper() Sleeper { return simnet.NewMeter() }

// --- fault injection & resilience (chaos testing, graceful degradation) ---

// FaultPlan holds per-node injected failures (crash, pause, reply drop,
// admission rejection, storage error). Wire one into Config.Faults, then
// flip faults at runtime; the transport observes them on the next request.
// All stochastic decisions are deterministic functions of the plan's seed.
type FaultPlan = simnet.FaultPlan

// NewFaultPlan returns an all-healthy plan whose randomized decisions
// derive from seed.
func NewFaultPlan(seed int64) *FaultPlan { return simnet.NewFaultPlan(seed) }

// FaultKind enumerates the injectable failure modes.
type FaultKind = simnet.FaultKind

// The injectable failure modes.
const (
	FaultCrash  = simnet.FaultCrash  // node never answers
	FaultPause  = simnet.FaultPause  // node answers after an injected stall
	FaultDrop   = simnet.FaultDrop   // node works but replies are lost
	FaultReject = simnet.FaultReject // node bounces requests at admission
	FaultError  = simnet.FaultError  // node answers with a permanent error
)

// ScheduledFault is one timed entry of a chaos schedule.
type ScheduledFault = simnet.ScheduledFault

// ParseFaultKind parses a fault kind name ("crash", "pause", "drop",
// "reject", "error").
var ParseFaultKind = simnet.ParseFaultKind

// GenerateFaultSchedule derives a deterministic chaos schedule (fault and
// heal events over a stepped timeline) from a seed — the same seed always
// replays the same failures.
var GenerateFaultSchedule = simnet.GenerateFaultSchedule

// ResilienceConfig tunes the coordinator's failure handling: per-attempt
// deadlines, retries with backoff, helper reroute, scatter fallback, and
// graceful degradation to partial results. The zero value preserves
// fail-fast semantics.
type ResilienceConfig = cluster.ResilienceConfig

// DefaultResilienceConfig returns production-shaped failure handling.
func DefaultResilienceConfig() ResilienceConfig { return cluster.DefaultResilienceConfig() }

// DefaultCoalesceWindow is the default admission window for client-side
// request coalescing (Config.CoalesceWindow).
const DefaultCoalesceWindow = cluster.DefaultCoalesceWindow

// Coverage is a result's partial-result report: which requested keys were
// fully covered, degraded (under-counted), or missing, and why. The zero
// value means complete by construction.
type Coverage = query.Coverage

// Failure-classification errors surfaced by the coordinator.
var (
	// ErrNoCoverage reports a degraded query none of whose footprint could
	// be served.
	ErrNoCoverage = cluster.ErrNoCoverage
	// ErrRejected reports a node bouncing a request at admission.
	ErrRejected = cluster.ErrRejected
	// ErrUnavailable reports a node that never answered within the deadline.
	ErrUnavailable = cluster.ErrUnavailable
	// ErrFaulted reports a permanent node storage fault.
	ErrFaulted = cluster.ErrFaulted
)

// Retryable classifies a node sub-request error: true for transient
// failures a retry may fix, false for permanent ones.
var Retryable = cluster.Retryable

// --- workloads ---

// SizeClass is one of the paper's four query sizes.
type SizeClass = workload.SizeClass

// The paper's query-size classes.
const (
	Country = workload.Country
	State   = workload.State
	County  = workload.County
	City    = workload.City
)

// Attributes lists the synthetic dataset's observed fields.
var Attributes = namgen.Attributes

// --- result export ---

// WriteGeoJSON renders a result as a GeoJSON FeatureCollection (one polygon
// per cell with aggregate properties) — the format map panels ingest.
func WriteGeoJSON(w io.Writer, r Result) error { return export.WriteGeoJSON(w, r) }

// WriteCSV renders a result as CSV, one row per cell.
func WriteCSV(w io.Writer, r Result) error { return export.WriteCSV(w, r) }

// --- front-end tier (paper §IX-A future work, implemented) ---

// FrontendClient wraps a cluster client with a small local STASH graph and
// optional predictive prefetching, so narrow browsing is served without
// back-end round trips.
type FrontendClient = frontend.Client

// FrontendConfig tunes the front-end tier.
type FrontendConfig = frontend.Config

// Predictor guesses the next query from recent navigation history.
type Predictor = frontend.Predictor

// NewFrontendClient builds a front-end tier over a cluster client.
func NewFrontendClient(inner *Client, cfg FrontendConfig) *FrontendClient {
	return frontend.NewClient(inner, cfg)
}

// DefaultFrontendConfig returns a 20k-cell prefetching front-end.
func DefaultFrontendConfig() FrontendConfig { return frontend.DefaultConfig() }

// NewMomentumPredictor returns the default navigation predictor
// (pan/zoom/dice momentum extrapolation).
func NewMomentumPredictor() Predictor { return frontend.NewMomentumPredictor() }

// --- observability ---

// MetricsRegistry is a concurrent metrics registry (counters, gauges,
// histograms) with Prometheus text exposition. Every subsystem records into
// the process-global default registry.
type MetricsRegistry = obs.Registry

// DefaultMetrics returns the process-global metrics registry — the one
// stashd serves at GET /metrics and every package instruments.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// QueryTrace collects the span tree of one traced operation; export it as
// Chrome trace-event JSON (WriteChrome) for Perfetto, or walk Tree().
type QueryTrace = obs.Trace

// SpanNode is one node of an exported span tree.
type SpanNode = obs.SpanNode

// NewQueryTrace arms span recording on a context: pass the returned context
// into Client.QueryContext and read the span tree from the returned trace
// after the query completes.
var NewQueryTrace = obs.NewTrace

// --- comparator ---

// Elastic is the ElasticSearch-style comparator engine used by the Fig. 8
// experiments.
type Elastic = elastic.Engine

// ElasticConfig assembles a comparator engine.
type ElasticConfig = elastic.Config

// NewElastic assembles the comparator engine.
func NewElastic(cfg ElasticConfig) *Elastic { return elastic.New(cfg) }

// DefaultElasticConfig mirrors the paper's ES deployment at simulation
// scale.
func DefaultElasticConfig() ElasticConfig { return elastic.DefaultConfig() }
