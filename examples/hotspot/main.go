// Hotspot: flood one county-sized region with concurrent requests — a burst
// of public attention after an event — and watch a node detect the hotspot,
// hand its hottest cliques to an antipode helper, and reroute traffic
// (the paper's §VII).
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"stash"
)

func main() {
	repl := stash.DefaultReplicationConfig()
	repl.QueueThreshold = 50
	repl.RerouteProbability = 0.7

	cfg := stash.DefaultConfig()
	cfg.Nodes = 8
	cfg.Workers = 1 // easy to saturate, so the demo triggers quickly
	cfg.QueueSize = 1024
	cfg.Replication = repl
	cfg.Sleeper = stash.NewRealSleeper()
	model := stash.DefaultCostModel()
	model.MemCell = 200 * time.Microsecond // aggregation work saturates a flooded node
	cfg.Model = model

	sys, err := stash.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	// Everyone looks at the same county; each user jitters by small pans.
	base := stash.Query{
		Box:         stash.Box{MinLat: 35.0, MaxLat: 35.6, MinLon: -98.0, MaxLon: -96.8},
		Time:        stash.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: stash.Day,
	}

	const requests = 500
	rng := rand.New(rand.NewSource(7))
	queries := make([]stash.Query, requests)
	for i := range queries {
		queries[i] = base.Pan(stash.Direction(rng.Intn(8)), 0.1*rng.Float64())
	}

	fmt.Printf("flooding %d concurrent county-level requests at one region...\n", requests)
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, 128)
	for _, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(q stash.Query) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := sys.Client().Query(q); err != nil {
				log.Printf("query: %v", err)
			}
		}(q)
	}
	wg.Wait()
	fmt.Printf("all served in %v\n\n", time.Since(start).Round(time.Millisecond))

	stats := sys.TotalStats()
	fmt.Printf("clique handoffs:     %d\n", stats.Handoffs)
	fmt.Printf("requests rerouted:   %d\n", stats.Rerouted)
	fmt.Printf("cells guest-served:  %d\n", stats.GuestServed)
	fmt.Printf("peak queue length:   %d\n", stats.QueuePeak)

	for _, n := range sys.Nodes() {
		s := n.Stats()
		if s.Processed == 0 {
			continue
		}
		role := ""
		if n.Routing().Len() > 0 {
			role = "  <- hotspotted (owns routing entries)"
		}
		if n.Guest() != nil && n.Guest().Len() > 0 {
			role = fmt.Sprintf("  <- helper (%d guest cells)", n.Guest().Len())
		}
		fmt.Printf("  %v: processed=%d queuePeak=%d%s\n", n.ID(), s.Processed, s.QueuePeak, role)
	}
}
