// Dashboard: the front-end role from the paper's architecture (§VI-A) — a
// lightweight client that turns "user interactions" into HTTP/JSON queries
// against a stashd server and renders the responses, here as a terminal
// heatmap of mean surface temperature.
//
// Run the server first, then this client:
//
//	go run ./cmd/stashd -addr :8080 &
//	go run ./examples/dashboard -server http://localhost:8080
//
// Without -server, the example starts an in-process cluster and serves
// itself, so it also works standalone.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"stash"
)

type queryRequest struct {
	MinLat      float64 `json:"minLat"`
	MaxLat      float64 `json:"maxLat"`
	MinLon      float64 `json:"minLon"`
	MaxLon      float64 `json:"maxLon"`
	Start       string  `json:"start"`
	End         string  `json:"end"`
	SpatialRes  int     `json:"spatialRes"`
	TemporalRes string  `json:"temporalRes"`
}

type queryResponse struct {
	Cells []struct {
		Geohash string  `json:"geohash"`
		Lat     float64 `json:"lat"`
		Lon     float64 `json:"lon"`
		Stats   map[string]struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
		} `json:"stats"`
	} `json:"cells"`
	LatencyMS float64 `json:"latencyMs"`
}

func main() {
	server := flag.String("server", "", "stashd base URL (empty: self-contained in-process server)")
	flag.Parse()

	base := *server
	if base == "" {
		base = startSelfContained()
	}

	// The "viewport": a wide band over North America. Drill from coarse to
	// fine like a user zooming in.
	req := queryRequest{
		MinLat: 30, MaxLat: 48, MinLon: -110, MaxLon: -80,
		Start: "2015-02-02T00:00:00Z", End: "2015-02-03T00:00:00Z",
		SpatialRes: 3, TemporalRes: "Day",
	}

	for _, res := range []int{2, 3} {
		req.SpatialRes = res
		resp, err := post(base, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== viewport at geohash precision %d: %d cells, %.2f ms server latency ===\n",
			res, len(resp.Cells), resp.LatencyMS)
		renderHeatmap(req, resp)
	}
}

func post(base string, req queryRequest) (queryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return queryResponse{}, err
	}
	httpResp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return queryResponse{}, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return queryResponse{}, fmt.Errorf("server returned %s", httpResp.Status)
	}
	var out queryResponse
	err = json.NewDecoder(httpResp.Body).Decode(&out)
	return out, err
}

// renderHeatmap draws mean temperature as ASCII shades on a fixed grid:
// each character maps to the aggregated cell containing its coordinates.
func renderHeatmap(req queryRequest, resp queryResponse) {
	const rows, cols = 12, 48
	means := make(map[string]float64, len(resp.Cells))
	for _, c := range resp.Cells {
		if st, ok := c.Stats["temperature"]; ok && st.Count > 0 {
			means[c.Geohash] = st.Mean
		}
	}
	shades := []rune(" .:-=+*#%@")
	for r := 0; r < rows; r++ {
		line := make([]rune, cols)
		lat := req.MaxLat - (float64(r)+0.5)/rows*(req.MaxLat-req.MinLat)
		for c := 0; c < cols; c++ {
			lon := req.MinLon + (float64(c)+0.5)/cols*(req.MaxLon-req.MinLon)
			gh := stash.EncodeGeohash(lat, lon, req.SpatialRes)
			mean, ok := means[gh]
			if !ok {
				line[c] = ' '
				continue
			}
			// Map -20..+30 °C onto the shade ramp.
			idx := int((mean + 20) / 50 * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[c] = shades[idx]
		}
		fmt.Println(string(line))
	}
	fmt.Println("(shade ramp: cold ' ' … '@' warm, mean surface temperature)")
}

// startSelfContained boots a cluster and an in-process HTTP server speaking
// the same protocol as cmd/stashd, returning its base URL.
func startSelfContained() string {
	cfg := stash.DefaultConfig()
	cfg.Nodes = 8
	cfg.Sleeper = stash.NewRealSleeper()
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start, err := time.Parse(time.RFC3339, req.Start)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		end, err := time.Parse(time.RFC3339, req.End)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tr, err := stash.NewTimeRange(start, end)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		q := stash.Query{
			Box:         stash.Box{MinLat: req.MinLat, MaxLat: req.MaxLat, MinLon: req.MinLon, MaxLon: req.MaxLon},
			Time:        tr,
			SpatialRes:  req.SpatialRes,
			TemporalRes: stash.Day,
		}
		begin := time.Now()
		res, err := sys.Client().Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var out queryResponse
		out.LatencyMS = float64(time.Since(begin).Microseconds()) / 1000
		for key, sum := range res.Cells {
			box, err := stash.DecodeGeohash(key.Geohash)
			if err != nil {
				continue
			}
			lat, lon := box.Center()
			cellOut := struct {
				Geohash string  `json:"geohash"`
				Lat     float64 `json:"lat"`
				Lon     float64 `json:"lon"`
				Stats   map[string]struct {
					Count int64   `json:"count"`
					Mean  float64 `json:"mean"`
				} `json:"stats"`
			}{Geohash: key.Geohash, Lat: lat, Lon: lon, Stats: map[string]struct {
				Count int64   `json:"count"`
				Mean  float64 `json:"mean"`
			}{}}
			st := sum.Stats["temperature"]
			if st.Count > 0 {
				cellOut.Stats["temperature"] = struct {
					Count int64   `json:"count"`
					Mean  float64 `json:"mean"`
				}{Count: st.Count, Mean: st.Mean()}
			}
			out.Cells = append(out.Cells, cellOut)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			log.Printf("dashboard: encode: %v", err)
		}
	})
	srv := httptest.NewServer(mux)
	return srv.URL
}
