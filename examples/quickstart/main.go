// Quickstart: assemble a simulated STASH deployment, run one aggregation
// query cold and once more warm, and show the cache doing its job.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"stash"
)

func main() {
	// A 8-node cluster over the synthetic NAM-like dataset, with real
	// (sleeping) simulated I/O costs so latencies are observable.
	cfg := stash.DefaultConfig()
	cfg.Nodes = 8
	cfg.Sleeper = stash.NewRealSleeper()
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	// A state-sized query over the south-central US, one day of data,
	// binned at geohash precision 4 by day — the paper's canonical shape.
	q := stash.Query{
		Box:         stash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95},
		Time:        stash.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: stash.Day,
	}
	if err := q.Validate(); err != nil {
		log.Fatal(err)
	}

	client := sys.Client()

	res, cold, err := client.TimedQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold query: %d cells in %v\n", res.Len(), cold.Round(time.Microsecond))

	// Give the background population a moment, then repeat: the footprint
	// is now served from the in-memory STASH graph.
	time.Sleep(100 * time.Millisecond)
	res, warm, err := client.TimedQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm query: %d cells in %v (%.1fx faster)\n",
		res.Len(), warm.Round(time.Microsecond), float64(cold)/float64(warm))

	// Inspect one cell's temperature aggregate.
	for key, sum := range res.Cells {
		st := sum.Stats["temperature"]
		fmt.Printf("cell %s @ %s: n=%d mean=%.1f°C min=%.1f max=%.1f\n",
			key.Geohash, key.Time.Text, st.Count, st.Mean(), st.Min, st.Max)
		break
	}

	stats := sys.TotalStats()
	fmt.Printf("cluster: %d cache hits, %d misses, %d blocks read from disk\n",
		stats.CacheHits, stats.CacheMisses, stats.BlocksRead)
}
