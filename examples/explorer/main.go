// Explorer: the paper's §IX-A future work in action — a front-end tier with
// its own small STASH graph and a navigation predictor. A user pans steadily
// east; after two steps the predictor locks onto the momentum and prefetches
// the next viewport while the user is still looking at the current one, so
// subsequent pans never touch the back-end at all.
//
//	go run ./examples/explorer
package main

import (
	"fmt"
	"log"
	"time"

	"stash"
)

func main() {
	cfg := stash.DefaultConfig()
	cfg.Nodes = 8
	cfg.Sleeper = stash.NewRealSleeper()
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	fe := stash.NewFrontendClient(sys.Client(), stash.DefaultFrontendConfig())

	q := stash.Query{
		Box:         stash.Box{MinLat: 38, MaxLat: 42, MinLon: -110, MaxLon: -102},
		Time:        stash.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: stash.Day,
	}

	fmt.Println("panning east with a prefetching front-end:")
	fmt.Println("step  latency     back-end round trip?")
	var prevLocal int64
	for i := 0; i < 8; i++ {
		begin := time.Now()
		if _, err := fe.Query(q); err != nil {
			log.Fatal(err)
		}
		lat := time.Since(begin)

		st := fe.Stats()
		trip := "yes"
		if st.FullyLocal > prevLocal {
			trip = "no — served entirely from the front-end cache"
		}
		prevLocal = st.FullyLocal
		fmt.Printf("%4d  %-10v  %s\n", i+1, lat.Round(time.Microsecond), trip)

		// User think-time: the predictor's prefetch lands during this.
		time.Sleep(60 * time.Millisecond)
		q = q.Pan(stash.East, 0.10)
	}

	st := fe.Stats()
	fmt.Printf("\nfront-end: %d/%d queries fully local, %d prefetches issued\n",
		st.FullyLocal, st.Queries, st.Prefetches)
	fmt.Printf("cells: %d from front cache, %d from back-end\n",
		st.CellsFromCache, st.CellsFromBack)
}
