// Panning: simulate a visual-exploration session — a user pans a state-level
// viewport across the map — and watch per-step latency collapse as the STASH
// graph accumulates the neighborhood's cells (the paper's §VIII-D3).
//
//	go run ./examples/panning
package main

import (
	"fmt"
	"log"
	"time"

	"stash"
)

func main() {
	cfg := stash.DefaultConfig()
	cfg.Nodes = 8
	cfg.Sleeper = stash.NewRealSleeper()
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()
	client := sys.Client()

	// Start over the Great Plains; pan 10% of the viewport per step,
	// sweeping clockwise through the compass.
	q := stash.Query{
		Box:         stash.Box{MinLat: 38, MaxLat: 42, MinLon: -102, MaxLon: -94},
		Time:        stash.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: stash.Day,
	}
	directions := []stash.Direction{
		stash.East, stash.East, stash.NorthEast, stash.North,
		stash.West, stash.West, stash.SouthWest, stash.South,
	}

	fmt.Println("step  direction  cells  latency")
	var first time.Duration
	for i := 0; ; i++ {
		res, lat, err := client.TimedQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			first = lat
			fmt.Printf("%4d  %-9s  %5d  %v\n", i+1, "start", res.Len(), lat.Round(time.Microsecond))
		} else {
			fmt.Printf("%4d  %-9s  %5d  %v  (%.0f%% below first)\n",
				i+1, directions[i-1], res.Len(), lat.Round(time.Microsecond),
				100*(1-float64(lat)/float64(first)))
		}
		if i == len(directions) {
			break
		}
		// User think-time; background population lands meanwhile.
		time.Sleep(50 * time.Millisecond)
		q = q.Pan(directions[i], 0.10)
	}

	stats := sys.TotalStats()
	hitRate := float64(stats.CacheHits) / float64(stats.CacheHits+stats.CacheMisses)
	fmt.Printf("\nsession cache hit rate: %.0f%%\n", hitRate*100)
}
