package stash_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stash"
)

// newSystem assembles a small metered cluster through the public API only.
func newSystem(t *testing.T, mutate func(*stash.Config)) *stash.Cluster {
	t.Helper()
	cfg := stash.DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 64
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := stash.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	t.Cleanup(sys.Stop)
	return sys
}

func stateQuery() stash.Query {
	return stash.Query{
		Box:         stash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95},
		Time:        stash.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: stash.Day,
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := newSystem(t, nil)
	q := stateQuery()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no cells returned")
	}
	if res.TotalCount("temperature") == 0 {
		t.Fatal("no observations aggregated")
	}
	// Warm round must return identical content.
	time.Sleep(50 * time.Millisecond)
	res2, err := sys.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalCount("temperature") != res.TotalCount("temperature") {
		t.Errorf("warm count %d != cold count %d",
			res2.TotalCount("temperature"), res.TotalCount("temperature"))
	}
}

func TestPublicAPIOLAPOperators(t *testing.T) {
	q := stateQuery()
	panned := q.Pan(stash.East, 0.1)
	if panned.Box == q.Box {
		t.Error("pan did not move the box")
	}
	shrunk := q.DiceShrink(0.2)
	if !q.Box.ContainsBox(shrunk.Box) {
		t.Error("dice shrink did not nest")
	}
	if down, ok := q.DrillDown(); !ok || down.SpatialRes != q.SpatialRes+1 {
		t.Error("drill-down failed")
	}
	if up, ok := q.RollUp(); !ok || up.SpatialRes != q.SpatialRes-1 {
		t.Error("roll-up failed")
	}
}

func TestPublicAPIGeohashHelpers(t *testing.T) {
	gh := stash.EncodeGeohash(37.7749, -122.4194, 5)
	if gh != "9q8yy" {
		t.Errorf("EncodeGeohash = %q", gh)
	}
	box, err := stash.DecodeGeohash(gh)
	if err != nil {
		t.Fatal(err)
	}
	if !box.Contains(37.7749, -122.4194) {
		t.Error("decoded box does not contain the point")
	}
	if _, err := stash.DecodeGeohash("not a geohash"); err == nil {
		t.Error("invalid geohash accepted")
	}
}

func TestPublicAPIElasticComparator(t *testing.T) {
	cfg := stash.DefaultElasticConfig()
	cfg.Shards = 30
	cfg.PointsPerBlock = 64
	es := stash.NewElastic(cfg)
	res, err := es.Query(stateQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("elastic comparator returned no cells")
	}
}

func TestPublicAPIReplicationWiring(t *testing.T) {
	sys := newSystem(t, func(cfg *stash.Config) {
		cfg.Replication = stash.DefaultReplicationConfig()
	})
	if _, err := sys.Client().Query(stateQuery()); err != nil {
		t.Fatal(err)
	}
	for _, n := range sys.Nodes() {
		if n.Guest() == nil || n.Routing() == nil {
			t.Error("replication-enabled node missing guest graph or routing table")
		}
	}
}

func TestPublicAPICostModel(t *testing.T) {
	m := stash.DefaultCostModel()
	if !(m.DiskCost(1, 0) > m.NetCost(0) && m.NetCost(0) > m.MemCost(1)) {
		t.Error("cost ordering disk > net > mem violated")
	}
}

func TestPublicAPISizeClasses(t *testing.T) {
	dLat, dLon := stash.Country.Extent()
	if dLat != 16 || dLon != 32 {
		t.Errorf("country extent = (%v,%v)", dLat, dLon)
	}
	if len(stash.Attributes) != 4 {
		t.Errorf("attributes = %v", stash.Attributes)
	}
}

func TestPublicAPITimedQuery(t *testing.T) {
	sys := newSystem(t, nil)
	_, d, err := sys.Client().TimedQuery(stateQuery())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("latency not measured")
	}
}

func TestPublicAPIUpdateBlock(t *testing.T) {
	sys := newSystem(t, nil)
	q := stateQuery()
	if _, err := sys.Client().Query(q); err != nil {
		t.Fatal(err)
	}
	day, err := stash.ParseTimeLabel("2015-02-02", stash.Day)
	if err != nil {
		t.Fatal(err)
	}
	sys.UpdateBlock("9y6", day) // rewrite one block under the query
	res, err := sys.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("post-update query empty")
	}
}

func TestPublicAPIExports(t *testing.T) {
	sys := newSystem(t, nil)
	res, err := sys.Client().Query(stateQuery())
	if err != nil {
		t.Fatal(err)
	}
	var gj, csvBuf bytes.Buffer
	if err := stash.WriteGeoJSON(&gj, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gj.String(), "FeatureCollection") {
		t.Error("GeoJSON export malformed")
	}
	if err := stash.WriteCSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "geohash") {
		t.Error("CSV export malformed")
	}
}

func TestPublicAPIFrontend(t *testing.T) {
	sys := newSystem(t, nil)
	fe := stash.NewFrontendClient(sys.Client(), stash.DefaultFrontendConfig())
	q := stateQuery()
	if _, err := fe.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Query(q); err != nil {
		t.Fatal(err)
	}
	fe.Wait()
	if fe.Stats().FullyLocal == 0 {
		t.Error("repeat query not served locally by the front-end tier")
	}
}

func TestPublicAPIHistograms(t *testing.T) {
	sys := newSystem(t, func(cfg *stash.Config) { cfg.Histograms = true })
	res, err := sys.Client().Query(stateQuery())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Cells {
		if h := s.Hist("temperature"); h != nil {
			found = true
			if h.Quantile(0.5) < h.Lo || h.Quantile(0.5) > h.Hi {
				t.Error("median outside histogram bounds")
			}
		}
	}
	if !found {
		t.Error("no histograms despite Config.Histograms")
	}
}

func TestPublicAPIPolygonQuery(t *testing.T) {
	sys := newSystem(t, nil)
	tri := stash.Polygon{{Lat: 34, Lon: -100}, {Lat: 38, Lon: -97}, {Lat: 34, Lon: -94}}
	q, err := stash.NewPolygonQuery(tri, stash.DayRange(2015, 2, 2), 3, stash.Day)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("polygon query returned nothing")
	}
}

// TestPublicAPIFaultInjection drives the chaos surface end to end through
// the facade: a fault plan, a resilient coordinator, a crashed node, and a
// partial result with an honest coverage report.
func TestPublicAPIFaultInjection(t *testing.T) {
	fp := stash.NewFaultPlan(5)
	sys := newSystem(t, func(cfg *stash.Config) {
		cfg.Faults = fp
		rc := stash.DefaultResilienceConfig()
		rc.RequestTimeout = 25 * time.Millisecond
		rc.HelperReroute = false
		rc.ScatterFallback = false
		cfg.Resilience = rc
	})
	q := stash.Query{
		Box:         stash.Box{MinLat: 30, MaxLat: 40, MinLon: -100, MaxLon: -90},
		Time:        stash.DayRange(2015, 2, 2),
		SpatialRes:  3,
		TemporalRes: stash.Day,
	}
	res, err := sys.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coverage.Complete() {
		t.Fatalf("healthy query partial: %v", res.Coverage)
	}

	// Crash a node that owns part of the footprint and query again.
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	var victim stash.NodeID
	for id := range sys.Client().GroupByOwner(keys) {
		victim = id
		break
	}
	sys.Faults().Crash(int(victim))
	partial, err := sys.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cov := partial.Coverage
	if cov.Complete() || cov.Missing()+cov.Degraded == 0 {
		t.Fatalf("crashed owner but coverage reads %v", cov)
	}
	if cov.String() == "" || stash.Retryable(nil) {
		t.Fatal("coverage/string/retryable surface broken")
	}
	sys.Faults().Recover(int(victim))

	// The schedule generator is reachable and deterministic.
	a := stash.GenerateFaultSchedule(1, 4, 10, 3, stash.FaultCrash, stash.FaultReject)
	b := stash.GenerateFaultSchedule(1, 4, 10, 3, stash.FaultCrash, stash.FaultReject)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule generation broken: %d vs %d entries", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	var k stash.FaultKind = stash.FaultPause
	if k.String() == "" {
		t.Fatal("fault kind string empty")
	}
	_ = []error{stash.ErrNoCoverage, stash.ErrRejected, stash.ErrUnavailable, stash.ErrFaulted}
	var sf stash.ScheduledFault = a[0]
	if sf.String() == "" {
		t.Fatal("scheduled fault string empty")
	}
}
