// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VIII). Each benchmark drives the same runner as `stashbench -exp <id>`,
// at reduced scale so `go test -bench=.` completes in minutes; run
// `stashbench -exp all -full -nodes 120` for paper-scale counts.
//
// The reported ns/op is the wall time of regenerating the whole experiment
// once; the shape assertions live in the harness's notes and are recorded in
// EXPERIMENTS.md.
package stash_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"stash/internal/bench"
	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/query"
	istash "stash/internal/stash"
	"stash/internal/temporal"
)

// benchOpts shrinks experiments to benchmark scale.
func benchOpts() bench.Options {
	opts := bench.DefaultOptions()
	opts.Nodes = 8
	opts.Quick = true
	return opts
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id, opts); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkFig6aLatencyVsQuerySize regenerates Fig. 6a: latency per query
// size for basic / empty-STASH / warm-STASH.
func BenchmarkFig6aLatencyVsQuerySize(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6bThroughput regenerates Fig. 6b: throughput basic vs STASH
// per query size.
func BenchmarkFig6bThroughput(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig6cMaintenance regenerates Fig. 6c: cold-start cell population
// cost per query size.
func BenchmarkFig6cMaintenance(b *testing.B) { runExperiment(b, "fig6c") }

// BenchmarkFig6dHotspot regenerates Fig. 6d: hotspot responses/sec with and
// without dynamic clique replication.
func BenchmarkFig6dHotspot(b *testing.B) { runExperiment(b, "fig6d") }

// BenchmarkFig7aDicingDescending regenerates Fig. 7a.
func BenchmarkFig7aDicingDescending(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7bDicingAscending regenerates Fig. 7b.
func BenchmarkFig7bDicingAscending(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFig7cPanning regenerates Fig. 7c: panning latency basic vs STASH
// at 10/20/25% pan fractions.
func BenchmarkFig7cPanning(b *testing.B) { runExperiment(b, "fig7c") }

// BenchmarkFig7dDrillDown regenerates Fig. 7d: drill-down with 50/75/100%
// pre-stocked cells.
func BenchmarkFig7dDrillDown(b *testing.B) { runExperiment(b, "fig7d") }

// BenchmarkFig7eRollUp regenerates Fig. 7e: roll-up with 50/75/100%
// pre-stocked cells.
func BenchmarkFig7eRollUp(b *testing.B) { runExperiment(b, "fig7e") }

// BenchmarkFig8aPanningVsElastic regenerates Fig. 8a: panning on STASH vs
// the ElasticSearch comparator.
func BenchmarkFig8aPanningVsElastic(b *testing.B) { runExperiment(b, "fig8a") }

// BenchmarkFig8bDicingAscVsElastic regenerates Fig. 8b.
func BenchmarkFig8bDicingAscVsElastic(b *testing.B) { runExperiment(b, "fig8b") }

// BenchmarkFig8cDicingDescVsElastic regenerates Fig. 8c.
func BenchmarkFig8cDicingDescVsElastic(b *testing.B) { runExperiment(b, "fig8c") }

// BenchmarkAblationFreshness regenerates abl-freshness: cell replacement
// with vs without freshness dispersion.
func BenchmarkAblationFreshness(b *testing.B) { runExperiment(b, "abl-freshness") }

// BenchmarkAblationPLM regenerates abl-plm: PLM missing-chunk tracking vs
// whole-request refetch.
func BenchmarkAblationPLM(b *testing.B) { runExperiment(b, "abl-plm") }

// BenchmarkAblationAntipode regenerates abl-antipode: antipode helper
// selection vs uniform random.
func BenchmarkAblationAntipode(b *testing.B) { runExperiment(b, "abl-antipode") }

// BenchmarkExtCoalesce regenerates ext-coalesce: duplicate-heavy concurrent
// sessions with request coalescing + serve-side singleflight off vs on.
func BenchmarkExtCoalesce(b *testing.B) { runExperiment(b, "ext-coalesce") }

// BenchmarkExtMerge regenerates ext-merge: the coordinator's serial reply
// fold vs the parallel tournament fan-in at 8-64 shares.
func BenchmarkExtMerge(b *testing.B) { runExperiment(b, "ext-merge") }

// BenchmarkGraphParallel measures the STASH graph under concurrent workers at
// different lock-striping factors. stripes=1 is the original single-lock
// graph; with -cpu=4 (or more) *hardware* threads the striped variants win by
// spreading map accesses across independent locks, at the cost of a small
// single-threaded grouping overhead (on a 1-core box all variants are
// necessarily within noise of each other, since wall time then equals total
// CPU work). Run with
//
//	go test -run=NONE -bench=GraphParallel -cpu=1,4,8 .
func BenchmarkGraphParallel(b *testing.B) {
	day := temporal.MustParse("2015-02-02", temporal.Day)
	makeKeys := func(n int) []cell.Key {
		keys := make([]cell.Key, 0, n)
		for i := 0; len(keys) < n; i++ {
			gh := string([]byte{
				geohash.Base32[i%32],
				geohash.Base32[(i/32)%32],
				geohash.Base32[(i/1024)%32],
			})
			keys = append(keys, cell.Key{Geohash: gh, Time: day})
		}
		return keys
	}
	keys := makeKeys(4096)
	warm := query.NewResult()
	for i, k := range keys {
		s := cell.NewSummary()
		s.Observe("temperature", float64(i))
		warm.Add(k, s)
	}

	for _, stripes := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			cfg := istash.DefaultConfig()
			cfg.Capacity = 64_000
			cfg.Stripes = stripes
			cfg.Disperse = false // isolate store contention from neighbor algebra
			g := istash.NewGraph(cfg)
			g.Put(warm)

			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(seed.Add(1)))
				for pb.Next() {
					base := rng.Intn(len(keys) - 64)
					batch := keys[base : base+64]
					if rng.Intn(8) == 0 {
						// Occasional population write: re-insert a slice of the
						// batch so writers contend with readers, as on a
						// serving node.
						res := query.NewResult()
						for j, k := range batch[:16] {
							s := cell.NewSummary()
							s.Observe("temperature", float64(j))
							res.Add(k, s)
						}
						g.Put(res)
					} else {
						g.Get(batch)
					}
				}
			})
		})
	}
}
