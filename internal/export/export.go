// Package export renders query results in the interchange formats a
// visualization front-end consumes: GeoJSON FeatureCollections (map panels)
// and CSV (tables, spreadsheets). Cells are emitted as polygon features of
// their geohash bounds with the aggregate statistics as properties — the
// shape the paper's Grafana WorldMap panel and similar tools ingest.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/query"
)

// sortedKeys returns the result's keys in deterministic order (geohash,
// then time), so exports are stable across runs.
func sortedKeys(r query.Result) []cell.Key {
	keys := make([]cell.Key, 0, len(r.Cells))
	for k := range r.Cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Geohash != keys[j].Geohash {
			return keys[i].Geohash < keys[j].Geohash
		}
		return keys[i].Time.Text < keys[j].Time.Text
	})
	return keys
}

// --- GeoJSON ---

type geoJSON struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

type feature struct {
	Type       string         `json:"type"`
	Geometry   geometry       `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geometry struct {
	Type        string         `json:"type"`
	Coordinates [][][2]float64 `json:"coordinates"`
}

// WriteGeoJSON renders the result as a GeoJSON FeatureCollection: one
// Polygon per cell (its geohash bounds), with properties "geohash", "time",
// and per attribute "<attr>_count|mean|min|max".
func WriteGeoJSON(w io.Writer, r query.Result) error {
	fc := geoJSON{Type: "FeatureCollection", Features: []feature{}}
	for _, k := range sortedKeys(r) {
		box, err := geohash.DecodeBox(k.Geohash)
		if err != nil {
			return fmt.Errorf("export: cell %v: %w", k, err)
		}
		props := map[string]any{
			"geohash": k.Geohash,
			"time":    k.Time.Text,
		}
		s := r.Cells[k]
		for _, attr := range s.Attrs() {
			st := s.Stats[attr]
			props[attr+"_count"] = st.Count
			props[attr+"_min"] = st.Min
			props[attr+"_max"] = st.Max
			mean := st.Mean()
			if math.IsNaN(mean) {
				mean = 0
			}
			props[attr+"_mean"] = mean
		}
		// GeoJSON rings are [lon, lat], counter-clockwise, closed.
		ring := [][2]float64{
			{box.MinLon, box.MinLat},
			{box.MaxLon, box.MinLat},
			{box.MaxLon, box.MaxLat},
			{box.MinLon, box.MaxLat},
			{box.MinLon, box.MinLat},
		}
		fc.Features = append(fc.Features, feature{
			Type:       "Feature",
			Geometry:   geometry{Type: "Polygon", Coordinates: [][][2]float64{ring}},
			Properties: props,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(fc)
}

// --- CSV ---

// WriteCSV renders the result as CSV with one row per cell: geohash, time,
// cell center, then count/mean/min/max per attribute (union of attributes
// across cells, sorted).
func WriteCSV(w io.Writer, r query.Result) error {
	attrSet := map[string]bool{}
	for _, s := range r.Cells {
		for _, a := range s.Attrs() {
			attrSet[a] = true
		}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	cw := csv.NewWriter(w)
	header := []string{"geohash", "time", "lat", "lon"}
	for _, a := range attrs {
		header = append(header, a+"_count", a+"_mean", a+"_min", a+"_max")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, k := range sortedKeys(r) {
		box, err := geohash.DecodeBox(k.Geohash)
		if err != nil {
			return fmt.Errorf("export: cell %v: %w", k, err)
		}
		lat, lon := box.Center()
		row := []string{
			k.Geohash, k.Time.Text,
			strconv.FormatFloat(lat, 'f', 6, 64),
			strconv.FormatFloat(lon, 'f', 6, 64),
		}
		s := r.Cells[k]
		for _, a := range attrs {
			st := s.Stats[a]
			mean := st.Mean()
			if math.IsNaN(mean) {
				mean = 0
			}
			row = append(row,
				strconv.FormatInt(st.Count, 10),
				strconv.FormatFloat(mean, 'f', 4, 64),
				strconv.FormatFloat(st.Min, 'f', 4, 64),
				strconv.FormatFloat(st.Max, 'f', 4, 64),
			)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
