package export

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stash/internal/cell"
	"stash/internal/query"
	"stash/internal/temporal"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenResult is a hand-crafted fixture exercising every formatting branch:
// multiple cells in non-sorted insertion order (exports must sort), a cell
// missing an attribute other cells have (CSV zero-fills the union header),
// negative and fractional values, and a zero-count stat (mean renders 0,
// not NaN).
func goldenResult() query.Result {
	r := query.NewResult()

	s1 := cell.NewSummary()
	s1.Stats["temperature"] = cell.Stat{Count: 3, Sum: 45, Min: 10, Max: 20.5}
	s1.Stats["humidity"] = cell.Stat{Count: 2, Sum: 1.5, Min: 0.25, Max: 1.25}
	r.Add(cell.MustKey("9v6m", "2015-02-03", temporal.Day), s1)

	s2 := cell.NewSummary()
	s2.Stats["temperature"] = cell.Stat{Count: 1, Sum: -7.5, Min: -7.5, Max: -7.5}
	r.Add(cell.MustKey("9v6k", "2015-02-02", temporal.Day), s2)

	// Same geohash as s2, later label: exercises the (geohash, time)
	// secondary sort key.
	s3 := cell.NewSummary()
	s3.Stats["temperature"] = cell.Stat{Count: 4, Sum: 100, Min: 20, Max: 30}
	s3.Stats["precipitation"] = cell.Stat{Count: 0}
	r.Add(cell.MustKey("9v6k", "2015-02-03", temporal.Day), s3)

	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/export -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(if the change is intentional, re-run with -update)",
			name, got, want)
	}
}

// TestGeoJSONGolden pins the exact GeoJSON byte output — property names,
// ring orientation, number formatting, feature order — against a checked-in
// golden file, so any wire-format drift is a conscious, reviewed change.
func TestGeoJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, goldenResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.geojson", buf.Bytes())
}

// TestCSVGolden pins the exact CSV byte output: header union across cells,
// sorted attribute columns, fixed-precision floats, row order.
func TestCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenResult()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.csv", buf.Bytes())
}

// TestGoldenDeterministic guards the property the golden files rely on:
// repeated exports of the same result are byte-identical (no map-order
// leakage).
func TestGoldenDeterministic(t *testing.T) {
	r := goldenResult()
	for _, w := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"geojson", func(b *bytes.Buffer) error { return WriteGeoJSON(b, r) }},
		{"csv", func(b *bytes.Buffer) error { return WriteCSV(b, r) }},
	} {
		var a, b bytes.Buffer
		if err := w.write(&a); err != nil {
			t.Fatal(err)
		}
		if err := w.write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s export not deterministic across runs", w.name)
		}
	}
}
