package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"stash/internal/cell"
	"stash/internal/query"
	"stash/internal/temporal"
)

func sampleResult() query.Result {
	r := query.NewResult()
	s1 := cell.NewSummary()
	s1.Observe("temperature", 10)
	s1.Observe("temperature", 20)
	s1.Observe("humidity", 0.5)
	r.Add(cell.MustKey("9q8y", "2015-02-02", temporal.Day), s1)

	s2 := cell.NewSummary()
	s2.Observe("temperature", -5)
	r.Add(cell.MustKey("9q8z", "2015-02-02", temporal.Day), s2)
	return r
}

func TestWriteGeoJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string         `json:"type"`
				Coordinates [][][2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) != 2 {
		t.Fatalf("collection: %s with %d features", fc.Type, len(fc.Features))
	}
	f := fc.Features[0]
	if f.Geometry.Type != "Polygon" {
		t.Errorf("geometry type %q", f.Geometry.Type)
	}
	ring := f.Geometry.Coordinates[0]
	if len(ring) != 5 || ring[0] != ring[4] {
		t.Errorf("polygon ring not closed: %v", ring)
	}
	if f.Properties["geohash"] != "9q8y" {
		t.Errorf("first feature geohash %v (order must be deterministic)", f.Properties["geohash"])
	}
	if f.Properties["temperature_mean"].(float64) != 15 {
		t.Errorf("temperature_mean = %v", f.Properties["temperature_mean"])
	}
	if f.Properties["time"] != "2015-02-02" {
		t.Errorf("time property = %v", f.Properties["time"])
	}
}

func TestWriteGeoJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGeoJSON(&buf, query.NewResult()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"features":[]`) {
		t.Errorf("empty collection should have empty features array: %s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	header := strings.Join(rows[0], ",")
	// Attribute columns sorted: humidity before temperature.
	if !strings.Contains(header, "humidity_count") || !strings.Contains(header, "temperature_mean") {
		t.Errorf("header missing attribute columns: %s", header)
	}
	if strings.Index(header, "humidity") > strings.Index(header, "temperature") {
		t.Error("attribute columns not sorted")
	}
	if rows[1][0] != "9q8y" || rows[2][0] != "9q8z" {
		t.Errorf("rows not in deterministic order: %v %v", rows[1][0], rows[2][0])
	}
	// The humidity columns of the second cell (no humidity data) are zeros.
	hIdx := indexOf(rows[0], "humidity_count")
	if rows[2][hIdx] != "0" {
		t.Errorf("missing attribute should export count 0, got %q", rows[2][hIdx])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, query.NewResult()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("empty result should export header only, got %d rows", len(rows))
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	var a, b bytes.Buffer
	r := sampleResult()
	if err := WriteGeoJSON(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteGeoJSON(&b, r); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("GeoJSON export not deterministic")
	}
}

func indexOf(row []string, col string) int {
	for i, c := range row {
		if c == col {
			return i
		}
	}
	return -1
}
