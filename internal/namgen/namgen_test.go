package namgen

import (
	"testing"

	"stash/internal/geohash"
	"stash/internal/temporal"
)

var day = temporal.MustParse("2015-02-02", temporal.Day)

func TestBlockDeterministic(t *testing.T) {
	g1 := New(42)
	g2 := New(42)
	b1, err := g1.Block("9q", day)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := g2.Block("9q", day)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatalf("lengths differ: %d vs %d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("observation %d differs: %+v vs %+v", i, b1[i], b2[i])
		}
	}
}

func TestBlockSeedSensitivity(t *testing.T) {
	a, _ := New(1).Block("9q", day)
	b, _ := New(2).Block("9q", day)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical blocks")
	}
}

func TestBlockIndependence(t *testing.T) {
	// Generating other blocks first must not perturb a block's content.
	g := New(7)
	want, _ := g.Block("9q", day)
	g2 := New(7)
	if _, err := g2.Block("u4", day); err != nil {
		t.Fatal(err)
	}
	other := temporal.MustParse("2015-07-14", temporal.Day)
	if _, err := g2.Block("9q", other); err != nil {
		t.Fatal(err)
	}
	got, _ := g2.Block("9q", day)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("block content depends on generation order at %d", i)
		}
	}
}

func TestBlockBounds(t *testing.T) {
	g := New(42)
	obs, err := g.Block("9q", day)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != DefaultPointsPerBlock {
		t.Fatalf("block size = %d, want %d", len(obs), DefaultPointsPerBlock)
	}
	box := geohash.MustBox("9q")
	start, _ := day.Start()
	end, _ := day.End()
	for _, o := range obs {
		if !box.Contains(o.Lat, o.Lon) {
			t.Errorf("observation at (%v,%v) outside block box %v", o.Lat, o.Lon, box)
		}
		if o.Time.Before(start) || !o.Time.Before(end) {
			t.Errorf("observation time %v outside day %v", o.Time, day)
		}
	}
}

func TestBlockCustomSize(t *testing.T) {
	g := &Generator{Seed: 1, PointsPerBlock: 17}
	obs, err := g.Block("u4", day)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 17 {
		t.Errorf("block size = %d, want 17", len(obs))
	}
	g.PointsPerBlock = 0
	obs, _ = g.Block("u4", day)
	if len(obs) != DefaultPointsPerBlock {
		t.Errorf("zero size should fall back to default, got %d", len(obs))
	}
}

func TestBlockInvalidInputs(t *testing.T) {
	g := New(1)
	if _, err := g.Block("not a geohash", day); err == nil {
		t.Error("invalid prefix accepted")
	}
	if _, err := g.Block("9q", temporal.Label{Res: temporal.Day, Text: "bogus"}); err == nil {
		t.Error("invalid day accepted")
	}
}

func TestPhysicalPlausibility(t *testing.T) {
	g := New(42)
	// Sample several blocks across the globe.
	prefixes := []string{"9q", "u4", "6g", "r3", "c2"}
	var minT, maxT float64 = 1e9, -1e9
	for _, p := range prefixes {
		obs, err := g.Block(p, day)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range obs {
			if o.Humidity < 0 || o.Humidity > 1 {
				t.Fatalf("humidity %v out of [0,1]", o.Humidity)
			}
			if o.Precipitation < 0 || o.Snow < 0 {
				t.Fatalf("negative precipitation/snow: %+v", o)
			}
			if o.Snow > 0 && o.Temperature >= 0 {
				t.Fatalf("snow above freezing: %+v", o)
			}
			if o.Temperature < minT {
				minT = o.Temperature
			}
			if o.Temperature > maxT {
				maxT = o.Temperature
			}
		}
	}
	if minT < -80 || maxT > 60 {
		t.Errorf("temperature range [%v,%v] implausible", minT, maxT)
	}
}

func TestLatitudeGradient(t *testing.T) {
	// Mean temperature near the equator must exceed mean temperature at
	// high northern latitudes (February).
	g := New(42)
	mean := func(prefix string) float64 {
		obs, err := g.Block(prefix, day)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, o := range obs {
			sum += o.Temperature
		}
		return sum / float64(len(obs))
	}
	equator := mean("s0") // ~(0-5)N
	arctic := mean("b")   // high north (precision-1 block is large; still cold on average)
	if equator <= arctic {
		t.Errorf("equator mean %v should exceed arctic mean %v", equator, arctic)
	}
}

func TestObservationValue(t *testing.T) {
	o := Observation{Temperature: 5, Humidity: 0.5, Precipitation: 1, Snow: 0}
	for _, attr := range Attributes {
		if _, ok := o.Value(attr); !ok {
			t.Errorf("attribute %q not retrievable", attr)
		}
	}
	if v, ok := o.Value("temperature"); !ok || v != 5 {
		t.Errorf("temperature = %v,%v", v, ok)
	}
	if _, ok := o.Value("nonsense"); ok {
		t.Error("unknown attribute accepted")
	}
}

func BenchmarkBlock(b *testing.B) {
	g := New(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Block("9q", day); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBumpChangesContent(t *testing.T) {
	g := New(42)
	before, err := g.Block("9q", day)
	if err != nil {
		t.Fatal(err)
	}
	if v := g.Bump("9q", day); v != 1 {
		t.Errorf("first bump version = %d", v)
	}
	after, err := g.Block("9q", day)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range before {
		if before[i] == after[i] {
			same++
		}
	}
	if same == len(before) {
		t.Error("bump did not change block content")
	}
	// Versioned content is still deterministic.
	again, _ := g.Block("9q", day)
	for i := range after {
		if after[i] != again[i] {
			t.Fatal("versioned block not deterministic")
		}
	}
	// Other blocks are untouched.
	otherBefore, _ := New(42).Block("u4", day)
	otherAfter, _ := g.Block("u4", day)
	for i := range otherBefore {
		if otherBefore[i] != otherAfter[i] {
			t.Fatal("bump leaked into an unrelated block")
		}
	}
}

func TestVersionAccessor(t *testing.T) {
	g := New(1)
	if g.Version("9q", day) != 0 {
		t.Error("fresh block should be version 0")
	}
	g.Bump("9q", day)
	g.Bump("9q", day)
	if g.Version("9q", day) != 2 {
		t.Errorf("version = %d, want 2", g.Version("9q", day))
	}
}
