// Package namgen synthesizes a NAM-like atmospheric dataset — the stand-in
// for the paper's 1.1 TB NOAA North American Mesoscale feed (§VIII-B).
//
// The generator is deterministic and block-addressable: the observations for
// any (geohash prefix, day) block are a pure function of the generator seed
// and the block identity. The backing store can therefore materialize any
// block lazily on first read, simulating an arbitrarily large global dataset
// with zero resident footprint — what matters to the experiments is the
// per-block disk cost and per-point aggregation cost, both of which are
// exercised exactly as with stored data.
package namgen

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"

	"stash/internal/geohash"
	"stash/internal/temporal"
)

// Attributes are the observed fields carried by every synthetic observation,
// mirroring the NAM features named in the paper (surface temperature,
// relative humidity, snow and precipitation).
var Attributes = []string{"temperature", "humidity", "precipitation", "snow"}

// HistogramSpecs gives each attribute a natural distribution range for
// pipelines that maintain histograms alongside the scalar aggregates.
var HistogramSpecs = map[string]struct {
	Lo, Hi  float64
	Buckets int
}{
	"temperature":   {-50, 50, 20},
	"humidity":      {0, 1, 20},
	"precipitation": {0, 20, 20},
	"snow":          {0, 10, 20},
}

// Observation is a single synthetic sensor reading.
type Observation struct {
	Lat, Lon float64
	Time     time.Time

	Temperature   float64 // °C
	Humidity      float64 // fraction [0,1]
	Precipitation float64 // mm/h, >= 0
	Snow          float64 // mm/h water equivalent, >= 0
}

// Value returns the named attribute's value; ok is false for unknown names.
func (o Observation) Value(attr string) (float64, bool) {
	switch attr {
	case "temperature":
		return o.Temperature, true
	case "humidity":
		return o.Humidity, true
	case "precipitation":
		return o.Precipitation, true
	case "snow":
		return o.Snow, true
	}
	return 0, false
}

// Generator produces deterministic observation blocks. It also models a
// *mutable* backing dataset: Bump advances a block's version, after which
// the block deterministically regenerates with different values — the
// stand-in for real-time ingest updating stored data (paper §IV-D).
type Generator struct {
	// Seed namespaces the whole synthetic dataset; two generators with the
	// same seed produce identical blocks.
	Seed uint64
	// PointsPerBlock is the observation count per (prefix, day) block.
	PointsPerBlock int

	mu       sync.Mutex
	versions map[string]uint64
}

// DefaultPointsPerBlock keeps full-cluster experiments fast while giving
// every cell at the paper's finest query resolution a realistic chance of
// multiple observations.
const DefaultPointsPerBlock = 256

// New returns a generator with the given seed and the default block size.
func New(seed uint64) *Generator {
	return &Generator{Seed: seed, PointsPerBlock: DefaultPointsPerBlock}
}

// Block materializes the observations for one (geohash prefix, day) block.
// The result is deterministic in (Seed, prefix, day) and independent of any
// other block.
func (g *Generator) Block(prefix string, day temporal.Label) ([]Observation, error) {
	box, err := geohash.DecodeBox(prefix)
	if err != nil {
		return nil, err
	}
	start, err := day.Start()
	if err != nil {
		return nil, err
	}
	end, _ := day.End()
	span := end.Sub(start)

	n := g.PointsPerBlock
	if n <= 0 {
		n = DefaultPointsPerBlock
	}
	rng := rand.New(rand.NewSource(int64(g.blockSeed(prefix, day))))
	out := make([]Observation, n)
	for i := range out {
		lat := box.MinLat + rng.Float64()*box.Height()
		lon := box.MinLon + rng.Float64()*box.Width()
		ts := start.Add(time.Duration(rng.Int63n(int64(span))))
		out[i] = synthesize(lat, lon, ts, rng)
	}
	return out, nil
}

// blockSeed derives the per-block PRNG seed, folding in the block's current
// version so updated blocks regenerate with new content.
func (g *Generator) blockSeed(prefix string, day temporal.Label) uint64 {
	h := fnv.New64a()
	h.Write([]byte(prefix))
	h.Write([]byte{0})
	h.Write([]byte(day.Text))
	h.Write([]byte{byte(day.Res)})
	return h.Sum64() ^ g.Seed ^ (g.Version(prefix, day) * 0x9e3779b97f4a7c15)
}

func versionKey(prefix string, day temporal.Label) string {
	return prefix + "/" + day.Text
}

// Version returns a block's current version (0 until first Bump).
func (g *Generator) Version(prefix string, day temporal.Label) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.versions[versionKey(prefix, day)]
}

// Bump records an update to a block: subsequent Block calls for it return
// new (still deterministic) content. It returns the new version.
func (g *Generator) Bump(prefix string, day temporal.Label) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.versions == nil {
		g.versions = map[string]uint64{}
	}
	g.versions[versionKey(prefix, day)]++
	return g.versions[versionKey(prefix, day)]
}

// synthesize produces physically plausible attribute values: temperature
// falls with |latitude| and follows seasonal and diurnal cycles; humidity is
// bounded; precipitation is sparse and non-negative; snow occurs only below
// freezing.
func synthesize(lat, lon float64, ts time.Time, rng *rand.Rand) Observation {
	dayOfYear := float64(ts.YearDay())
	hour := float64(ts.Hour()) + float64(ts.Minute())/60

	// Base climate: warm equator, cold poles.
	base := 30 - 0.55*math.Abs(lat)
	// Seasonal swing, opposite phase per hemisphere.
	season := 12 * math.Cos(2*math.Pi*(dayOfYear-196)/365.25)
	if lat < 0 {
		season = -season
	}
	// Diurnal swing peaking mid-afternoon local time (approximate local
	// hour from longitude).
	localHour := math.Mod(hour+lon/15+24, 24)
	diurnal := 6 * math.Cos(2*math.Pi*(localHour-15)/24)
	temp := base + season + diurnal + rng.NormFloat64()*2

	hum := 0.55 + 0.25*math.Sin(lon/23) + rng.NormFloat64()*0.1
	hum = math.Max(0, math.Min(1, hum))

	var precip float64
	if rng.Float64() < 0.25*hum {
		precip = rng.ExpFloat64() * 2
	}
	var snow float64
	if temp < 0 && precip > 0 {
		snow = precip * (0.5 + rng.Float64()*0.5)
		precip = 0
	}
	return Observation{
		Lat: lat, Lon: lon, Time: ts,
		Temperature: temp, Humidity: hum, Precipitation: precip, Snow: snow,
	}
}
