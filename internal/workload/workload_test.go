package workload

import (
	"math"
	"math/rand"
	"testing"

	"stash/internal/geohash"
	"stash/internal/temporal"
)

func TestSizeClassExtents(t *testing.T) {
	cases := map[SizeClass][2]float64{
		Country: {16, 32},
		State:   {4, 8},
		County:  {0.6, 1.2},
		City:    {0.2, 0.5},
	}
	for s, want := range cases {
		dLat, dLon := s.Extent()
		if dLat != want[0] || dLon != want[1] {
			t.Errorf("%v extent = (%v,%v), want %v", s, dLat, dLon, want)
		}
	}
	if dLat, dLon := SizeClass(99).Extent(); dLat != 0 || dLon != 0 {
		t.Error("unknown size class should have zero extent")
	}
	if Country.String() != "country" || City.String() != "city" {
		t.Error("size names wrong")
	}
	if SizeClass(99).String() == "" {
		t.Error("unknown size class should still format")
	}
	if len(Sizes()) != 4 {
		t.Error("Sizes() should list 4 classes")
	}
}

func TestRandomRectInRegionWithExactExtent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range Sizes() {
		for i := 0; i < 50; i++ {
			b := RandomRect(rng, s)
			dLat, dLon := s.Extent()
			if math.Abs(b.Height()-dLat) > 1e-9 || math.Abs(b.Width()-dLon) > 1e-9 {
				t.Fatalf("%v rect extent (%v,%v)", s, b.Height(), b.Width())
			}
			if !Region.ContainsBox(b) {
				t.Fatalf("%v rect %v escapes region %v", s, b, Region)
			}
		}
	}
}

func TestRandomQueryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range Sizes() {
		q := RandomQuery(rng, s)
		if err := q.Validate(); err != nil {
			t.Errorf("%v query invalid: %v", s, err)
		}
		if q.SpatialRes != DefaultSpatialRes || q.TemporalRes != temporal.Day {
			t.Errorf("%v query resolutions wrong", s)
		}
	}
}

func TestRandomQueryDeterministicPerSeed(t *testing.T) {
	q1 := RandomQuery(rand.New(rand.NewSource(7)), State)
	q2 := RandomQuery(rand.New(rand.NewSource(7)), State)
	if q1.Box != q2.Box {
		t.Error("same seed produced different queries")
	}
}

func TestPanningSession(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	start := RandomQuery(rng, State)
	qs := PanningSession(start, 5, 0.1, rng)
	if len(qs) != 6 {
		t.Fatalf("session length = %d, want 6", len(qs))
	}
	if qs[0].Box != start.Box || qs[0].SpatialRes != start.SpatialRes {
		t.Error("session must start with the start query")
	}
	for i := 1; i < len(qs); i++ {
		inter, ok := qs[i-1].Box.Intersection(qs[i].Box)
		if !ok {
			t.Fatalf("step %d does not overlap previous", i)
		}
		frac := inter.Area() / qs[i].Box.Area()
		if frac < 0.8 {
			t.Errorf("step %d overlap fraction %v too small for 10%% pan", i, frac)
		}
	}
}

func TestPanningStar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	start := RandomQuery(rng, State)
	qs := PanningStar(start, 0.25)
	if len(qs) != 9 {
		t.Fatalf("star length = %d, want 9", len(qs))
	}
	seen := map[geohash.Box]bool{}
	for _, q := range qs {
		if seen[q.Box] {
			t.Error("duplicate box in panning star")
		}
		seen[q.Box] = true
	}
}

func TestDicingSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	start := RandomQuery(rng, Country)
	desc := DicingDescending(start, 5, 0.2)
	if len(desc) != 5 {
		t.Fatalf("descending length = %d", len(desc))
	}
	for i := 1; i < len(desc); i++ {
		if !desc[i-1].Box.ContainsBox(desc[i].Box) {
			t.Errorf("descending step %d not nested", i)
		}
		ratio := desc[i].Box.Area() / desc[i-1].Box.Area()
		if math.Abs(ratio-0.8) > 1e-9 {
			t.Errorf("descending step %d area ratio %v, want 0.8", i, ratio)
		}
	}
	// Final query area ~ (5.2, 10.4)-ish relative shrink per the paper:
	// 0.8^4 of the original.
	finalRatio := desc[4].Box.Area() / desc[0].Box.Area()
	if math.Abs(finalRatio-math.Pow(0.8, 4)) > 1e-9 {
		t.Errorf("final area ratio = %v", finalRatio)
	}

	asc := DicingAscending(start, 5, 0.2)
	if len(asc) != 5 {
		t.Fatalf("ascending length = %d", len(asc))
	}
	for i := range asc {
		if asc[i].Box != desc[len(desc)-1-i].Box {
			t.Fatal("ascending is not the exact reverse of descending")
		}
	}
}

func TestZoomSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := RandomQuery(rng, State)
	down := DrillDownSession(base, 2, 6)
	if len(down) != 5 {
		t.Fatalf("drill-down length = %d, want 5 (res 2..6)", len(down))
	}
	for i, q := range down {
		if q.SpatialRes != 2+i {
			t.Errorf("drill-down step %d res = %d", i, q.SpatialRes)
		}
		if q.Box != base.Box {
			t.Error("drill-down changed extent")
		}
	}
	up := RollUpSession(base, 2, 6)
	if len(up) != 5 || up[0].SpatialRes != 6 || up[4].SpatialRes != 2 {
		t.Errorf("roll-up sequence wrong: %v", up)
	}
	// Swapped bounds are normalized.
	if got := DrillDownSession(base, 6, 2); len(got) != 5 || got[0].SpatialRes != 2 {
		t.Error("swapped bounds not normalized")
	}
}

func TestThroughputWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	qs := ThroughputWorkload(rng, County, 10, 9, 0.1)
	if len(qs) != 100 {
		t.Fatalf("workload size = %d, want 10*(9+1)", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("invalid workload query: %v", err)
		}
	}
}

func TestHotspotWorkloadConcentrated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	qs := HotspotWorkload(rng, County, 100, 0.1)
	if len(qs) != 100 {
		t.Fatalf("hotspot size = %d", len(qs))
	}
	// All queries must stay near the start: centers within ~1 extent.
	cLat0, cLon0 := qs[0].Box.Center()
	dLat, dLon := County.Extent()
	for i, q := range qs {
		cLat, cLon := q.Box.Center()
		if math.Abs(cLat-cLat0) > 2*dLat || math.Abs(cLon-cLon0) > 2*dLon {
			t.Fatalf("query %d drifted from hotspot: (%v,%v) vs (%v,%v)", i, cLat, cLon, cLat0, cLon0)
		}
	}
}

func TestZipfRegionsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	draws := ZipfRegions(rng, 100, 10000, 1.3)
	if len(draws) != 10000 {
		t.Fatalf("draws = %d", len(draws))
	}
	counts := map[int]int{}
	for _, d := range draws {
		if d < 0 || d >= 100 {
			t.Fatalf("draw %d out of range", d)
		}
		counts[d]++
	}
	if counts[0] <= counts[50] {
		t.Error("Zipf draw not skewed toward low indices")
	}
	if ZipfRegions(rng, 0, 10, 1.3) != nil || ZipfRegions(rng, 10, 0, 1.3) != nil {
		t.Error("degenerate inputs should yield nil")
	}
	// Skew <= 1 is clamped, not a panic.
	if got := ZipfRegions(rng, 10, 5, 0.5); len(got) != 5 {
		t.Error("clamped skew failed")
	}
}
