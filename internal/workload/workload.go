// Package workload generates the query workloads of the paper's evaluation
// (§VIII): the four query-size classes, the visual-navigation sessions
// (panning, iterative dicing, drill-down/roll-up) and the skewed hotspot
// workload used to exercise dynamic replication.
package workload

import (
	"fmt"
	"math/rand"

	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/temporal"
)

// SizeClass is one of the paper's four spatial query sizes.
type SizeClass int

// The paper's query-size classes (§VIII-A) with their latitudinal and
// longitudinal extents in degrees.
const (
	Country SizeClass = iota // (16°, 32°)
	State                    // (4°, 8°)
	County                   // (0.6°, 1.2°)
	City                     // (0.2°, 0.5°)
)

var sizeNames = [...]string{"country", "state", "county", "city"}

func (s SizeClass) String() string {
	if s < 0 || int(s) >= len(sizeNames) {
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
	return sizeNames[s]
}

// Extent returns the (latitude, longitude) span of the size class in
// degrees, exactly as §VIII-A specifies.
func (s SizeClass) Extent() (dLat, dLon float64) {
	switch s {
	case Country:
		return 16, 32
	case State:
		return 4, 8
	case County:
		return 0.6, 1.2
	case City:
		return 0.2, 0.5
	}
	return 0, 0
}

// Sizes lists all classes largest-first.
func Sizes() []SizeClass { return []SizeClass{Country, State, County, City} }

// Region bounds where random query rectangles are placed. The paper draws
// "random rectangle[s] over the data's entire spatial coverage"; we restrict
// latitude to the densely inhabited band so queries always hit data.
var Region = geohash.Box{MinLat: -55, MaxLat: 70, MinLon: -179, MaxLon: 179}

// DefaultDay is the paper's fixed temporal extent, 2015-02-02.
func DefaultDay() temporal.Range { return temporal.DayRange(2015, 2, 2) }

// DefaultSpatialRes is the spatial resolution used by the harness. The
// paper requests resolution 6; at simulation scale that footprint (millions
// of cells per country query) is neither tractable in one process nor
// renderable, so the harness defaults to 4 and keeps the size *ratios*
// intact. See EXPERIMENTS.md for the scale-down argument.
const DefaultSpatialRes = 4

// RandomRect places a rectangle of the given size class uniformly inside
// Region.
func RandomRect(rng *rand.Rand, s SizeClass) geohash.Box {
	dLat, dLon := s.Extent()
	lat := Region.MinLat + rng.Float64()*(Region.Height()-dLat)
	lon := Region.MinLon + rng.Float64()*(Region.Width()-dLon)
	return geohash.Box{MinLat: lat, MaxLat: lat + dLat, MinLon: lon, MaxLon: lon + dLon}
}

// RandomQuery builds a query of the given size class at the harness default
// resolutions over the paper's fixed day.
func RandomQuery(rng *rand.Rand, s SizeClass) query.Query {
	return query.Query{
		Box:         RandomRect(rng, s),
		Time:        DefaultDay(),
		SpatialRes:  DefaultSpatialRes,
		TemporalRes: temporal.Day,
	}
}

// PanningSession reproduces §VIII-D3: the start query followed by steps
// queries, each panned by fraction of the extent in a direction drawn from
// the eight compass directions.
func PanningSession(start query.Query, steps int, fraction float64, rng *rand.Rand) []query.Query {
	out := make([]query.Query, 0, steps+1)
	out = append(out, start)
	cur := start
	for i := 0; i < steps; i++ {
		cur = cur.Pan(geohash.Direction(rng.Intn(8)), fraction)
		out = append(out, cur)
	}
	return out
}

// PanningStar reproduces Fig. 7c's layout: the start query panned by
// fraction once in each of the 8 compass directions (queries 2..9), after
// the initial query.
func PanningStar(start query.Query, fraction float64) []query.Query {
	out := make([]query.Query, 0, 9)
	out = append(out, start)
	for _, d := range geohash.Directions() {
		out = append(out, start.Pan(d, fraction))
	}
	return out
}

// DicingDescending reproduces §VIII-D1: steps queries starting from the
// start extent, each shrinking the spatial area by the given fraction
// (the paper used 5 queries at 20 % per step from country size).
func DicingDescending(start query.Query, steps int, fraction float64) []query.Query {
	out := make([]query.Query, 0, steps)
	cur := start
	for i := 0; i < steps; i++ {
		out = append(out, cur)
		cur = cur.DiceShrink(fraction)
	}
	return out
}

// DicingAscending is the descending sequence "executed in reverse order"
// (§VIII-D1).
func DicingAscending(start query.Query, steps int, fraction float64) []query.Query {
	desc := DicingDescending(start, steps, fraction)
	out := make([]query.Query, 0, len(desc))
	for i := len(desc) - 1; i >= 0; i-- {
		out = append(out, desc[i])
	}
	return out
}

// DrillDownSession reproduces §VIII-D2: the same extent queried at
// successively finer spatial resolutions, fromRes up to toRes inclusive.
func DrillDownSession(base query.Query, fromRes, toRes int) []query.Query {
	if fromRes > toRes {
		fromRes, toRes = toRes, fromRes
	}
	out := make([]query.Query, 0, toRes-fromRes+1)
	for r := fromRes; r <= toRes; r++ {
		q := base
		q.SpatialRes = r
		out = append(out, q)
	}
	return out
}

// RollUpSession is the reverse of DrillDownSession: finest resolution first.
func RollUpSession(base query.Query, fromRes, toRes int) []query.Query {
	down := DrillDownSession(base, fromRes, toRes)
	out := make([]query.Query, 0, len(down))
	for i := len(down) - 1; i >= 0; i-- {
		out = append(out, down[i])
	}
	return out
}

// ThroughputSessions reproduces Fig. 6b's request mix: rects user sessions,
// each a random rectangle of the size class panned pans times by fraction
// in a random direction (the paper used 100 rectangles x 100 pans). Each
// inner slice is one user's sequential session; sessions run concurrently.
func ThroughputSessions(rng *rand.Rand, s SizeClass, rects, pans int, fraction float64) [][]query.Query {
	out := make([][]query.Query, 0, rects)
	for r := 0; r < rects; r++ {
		start := RandomQuery(rng, s)
		out = append(out, PanningSession(start, pans, fraction, rng))
	}
	return out
}

// ThroughputWorkload flattens ThroughputSessions into one request stream.
func ThroughputWorkload(rng *rand.Rand, s SizeClass, rects, pans int, fraction float64) []query.Query {
	var out []query.Query
	for _, sess := range ThroughputSessions(rng, s, rects, pans, fraction) {
		out = append(out, sess...)
	}
	return out
}

// HotspotWorkload reproduces Fig. 6d's skew: n requests panning around one
// random starting rectangle, emulating "sudden interest over a single
// region from multiple users" (the paper used 1000 county-level requests).
func HotspotWorkload(rng *rand.Rand, s SizeClass, n int, fraction float64) []query.Query {
	start := RandomQuery(rng, s)
	out := make([]query.Query, 0, n)
	cur := start
	for i := 0; i < n; i++ {
		out = append(out, cur)
		// Pan around the start, not a drifting walk: re-derive from start
		// so the hotspot stays concentrated.
		cur = start.Pan(geohash.Direction(rng.Intn(8)), fraction*rng.Float64())
	}
	return out
}

// ZipfRegions draws region indices with a Zipf distribution — the access
// skew §V-A cites. Useful for cache-churn experiments beyond the paper's
// fixed scenarios.
func ZipfRegions(rng *rand.Rand, regions, n int, skew float64) []int {
	if regions <= 0 || n <= 0 {
		return nil
	}
	if skew <= 1 {
		skew = 1.01
	}
	z := rand.NewZipf(rng, skew, 1, uint64(regions-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}
