// Package oracle is the repo's answer-correctness reference: a deliberately
// simple, single-threaded evaluator that answers any query.Query by scanning
// the synthetic namgen dataset directly and aggregating exactly — no STASH
// graph, no DHT routing, no derivation from cached children, no coalescing,
// no wire codec. Whatever the optimized cluster serve path returns must be
// semantically interchangeable with what this package recomputes (the
// reuse-correctness contract: cached and derived intermediates are only
// valid if recomputation agrees).
//
// The package deliberately re-implements block enumeration and binning
// instead of calling into internal/galileo: sharing the production scan code
// would blind the oracle to bugs in it. The only things the oracle shares
// with the system under test are the *dataset definition* — the namgen
// generator (seed + block versions) and the block prefix length, since the
// set of materialized (prefix, day) blocks IS the dataset — and the leaf
// packages geohash/temporal/cell that define what a key means.
package oracle

import (
	"fmt"
	"sort"
	"sync"

	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/galileo"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/temporal"
)

// Oracle evaluates queries by exact sequential recomputation. It is safe for
// concurrent use (the differential driver cross-checks responses from many
// goroutines); internally every evaluation is a plain single-threaded scan.
type Oracle struct {
	gen      *namgen.Generator
	blockLen int

	mu   sync.Mutex
	memo map[memoKey][]namgen.Observation
}

// memoKey identifies one immutable materialization of a block: folding the
// version in keeps the memo coherent across Generator.Bump (simulated
// ingest) without any invalidation protocol — a bumped block is simply a new
// key.
type memoKey struct {
	prefix  string
	day     string
	version uint64
}

// New returns an oracle over the given generator, enumerating blocks at the
// given geohash prefix length. The prefix length is clamped to
// [1, geohash.MaxPrecision].
func New(gen *namgen.Generator, blockPrefixLen int) *Oracle {
	if blockPrefixLen < 1 {
		blockPrefixLen = galileo.DefaultBlockPrefixLen
	}
	if blockPrefixLen > geohash.MaxPrecision {
		blockPrefixLen = geohash.MaxPrecision
	}
	return &Oracle{gen: gen, blockLen: blockPrefixLen, memo: map[memoKey][]namgen.Observation{}}
}

// ForCluster returns an oracle bound to the cluster's dataset: the same
// generator instance (so block version bumps from UpdateBlock stay coherent)
// and the same block prefix length its Galileo shards scan at.
func ForCluster(c *cluster.Cluster) *Oracle {
	blockLen := galileo.DefaultBlockPrefixLen
	if nodes := c.Nodes(); len(nodes) > 0 {
		blockLen = nodes[0].Store().BlockPrefixLen()
	}
	return New(c.Generator(), blockLen)
}

// BlockPrefixLen returns the block granularity the oracle enumerates at.
func (o *Oracle) BlockPrefixLen() int { return o.blockLen }

// Query answers an aggregation query exactly: one summary per footprint cell
// holding at least one observation, each aggregated over the cell's full
// spatiotemporal bounds (the same full-extent semantics the cluster serves,
// which is what makes cells reusable across queries).
func (o *Oracle) Query(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	keys, err := q.Footprint()
	if err != nil {
		return query.Result{}, err
	}
	return o.FetchCells(keys)
}

// FetchCells recomputes the summaries of an explicit key set. Keys may span
// hierarchy levels; each level is scanned independently.
func (o *Oracle) FetchCells(keys []cell.Key) (query.Result, error) {
	res := query.NewResult()
	type level struct {
		sres int
		tres temporal.Resolution
	}
	groups := map[level][]cell.Key{}
	for _, k := range keys {
		l := level{sres: k.SpatialRes(), tres: k.TemporalRes()}
		groups[l] = append(groups[l], k)
	}
	// Deterministic group order (mixed-level requests only): sort levels.
	levels := make([]level, 0, len(groups))
	for l := range groups {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool {
		if levels[i].tres != levels[j].tres {
			return levels[i].tres < levels[j].tres
		}
		return levels[i].sres < levels[j].sres
	})
	for _, l := range levels {
		if err := o.scanLevel(groups[l], l.sres, l.tres, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// blockID names one stored block; a local twin of galileo.BlockID so the
// oracle stays import-light on the system under test.
type blockID struct {
	prefix string
	day    temporal.Label
}

// scanLevel aggregates all requested keys of one hierarchy level: enumerate
// the covering blocks, scan each exactly once in sorted order, and bin every
// observation to its key at the requested resolutions.
func (o *Oracle) scanLevel(keys []cell.Key, sres int, tres temporal.Resolution, res *query.Result) error {
	want := make(map[cell.Key]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	blocks, err := o.blocksFor(keys)
	if err != nil {
		return err
	}
	acc := map[cell.Key]*cell.Summary{}
	for _, b := range blocks {
		obs, err := o.block(b)
		if err != nil {
			return err
		}
		for _, ob := range obs {
			k := cell.Key{
				Geohash: geohash.Encode(ob.Lat, ob.Lon, sres),
				Time:    temporal.At(ob.Time, tres),
			}
			if !want[k] {
				continue
			}
			sum := acc[k]
			if sum == nil {
				s := cell.NewSummary()
				sum = &s
				acc[k] = sum
			}
			for _, attr := range namgen.Attributes {
				v, _ := ob.Value(attr)
				sum.Observe(attr, v)
			}
		}
	}
	for k, sum := range acc {
		res.Add(k, *sum)
	}
	return nil
}

// blocksFor enumerates the distinct blocks holding raw data for the keys, in
// deterministic (prefix, day) order.
func (o *Oracle) blocksFor(keys []cell.Key) ([]blockID, error) {
	seen := map[blockID]bool{}
	var out []blockID
	for _, k := range keys {
		days, err := coverDays(k.Time)
		if err != nil {
			return nil, err
		}
		for _, p := range o.blockPrefixes(k.Geohash) {
			for _, d := range days {
				id := blockID{prefix: p, day: d}
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].prefix != out[j].prefix {
			return out[i].prefix < out[j].prefix
		}
		return out[i].day.Text < out[j].day.Text
	})
	return out, nil
}

// blockPrefixes expands a cell geohash to the block prefixes storing its
// data: truncation at or beyond the block length, the full extending tree
// below it.
func (o *Oracle) blockPrefixes(gh string) []string {
	if len(gh) >= o.blockLen {
		return []string{gh[:o.blockLen]}
	}
	prefixes := []string{gh}
	for len(prefixes[0]) < o.blockLen {
		next := make([]string, 0, len(prefixes)*geohash.BranchFactor)
		for _, p := range prefixes {
			next = append(next, geohash.Children(p)...)
		}
		prefixes = next
	}
	return prefixes
}

// coverDays returns the Day-resolution labels spanned by a temporal label.
func coverDays(l temporal.Label) ([]temporal.Label, error) {
	if l.Res == temporal.Day {
		return []temporal.Label{l}, nil
	}
	start, err := l.Start()
	if err != nil {
		return nil, err
	}
	end, err := l.End()
	if err != nil {
		return nil, err
	}
	return temporal.Range{Start: start, End: end}.Cover(temporal.Day)
}

// block materializes one block, memoized per (prefix, day, version).
func (o *Oracle) block(b blockID) ([]namgen.Observation, error) {
	v := o.gen.Version(b.prefix, b.day)
	k := memoKey{prefix: b.prefix, day: b.day.Text, version: v}
	o.mu.Lock()
	obs, ok := o.memo[k]
	o.mu.Unlock()
	if ok {
		return obs, nil
	}
	obs, err := o.gen.Block(b.prefix, b.day)
	if err != nil {
		return nil, fmt.Errorf("oracle: block %s/%s: %w", b.prefix, b.day.Text, err)
	}
	// Memoize only if the version is still the one we read: a concurrent
	// Bump between Version and Block would otherwise file new content under
	// the old version forever.
	if o.gen.Version(b.prefix, b.day) == v {
		o.mu.Lock()
		o.memo[k] = obs
		o.mu.Unlock()
	}
	return obs, nil
}
