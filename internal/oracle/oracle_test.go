package oracle

import (
	"testing"
	"time"

	"stash/internal/cell"
	"stash/internal/cluster"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/temporal"
)

func testCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 64
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func testQueries() []query.Query {
	box := geohash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95}
	return []query.Query{
		{Box: box, Time: temporal.DayRange(2015, 2, 2), SpatialRes: 4, TemporalRes: temporal.Day},
		{Box: box, Time: temporal.DayRange(2015, 2, 2), SpatialRes: 3, TemporalRes: temporal.Day},
		{Box: box, Time: temporal.DayRange(2015, 2, 2), SpatialRes: 2, TemporalRes: temporal.Month},
		{Box: geohash.Box{MinLat: 34, MaxLat: 35, MinLon: -99, MaxLon: -98},
			Time: temporal.Range{Start: time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC),
				End: time.Date(2015, 2, 4, 0, 0, 0, 0, time.UTC)},
			SpatialRes: 5, TemporalRes: temporal.Day},
	}
}

// TestOracleMatchesCluster is the core differential assertion: for every
// query, the cluster's answer — cold, then warm (served from cached and
// derived cells on the repeat) — must be cell-for-cell identical to the
// oracle's sequential recomputation.
func TestOracleMatchesCluster(t *testing.T) {
	c := testCluster(t)
	o := ForCluster(c)
	cl := c.Client()
	for i, q := range testQueries() {
		want, err := o.Query(q)
		if err != nil {
			t.Fatalf("query %d: oracle: %v", i, err)
		}
		if want.Len() == 0 {
			t.Fatalf("query %d: oracle returned no cells (test dataset empty?)", i)
		}
		for _, pass := range []string{"cold", "warm"} {
			got, err := cl.Query(q)
			if err != nil {
				t.Fatalf("query %d (%s): cluster: %v", i, pass, err)
			}
			if !got.Coverage.Complete() {
				t.Fatalf("query %d (%s): healthy cluster returned partial coverage: %v",
					i, pass, got.Coverage)
			}
			if diffs := Check(got, want); len(diffs) > 0 {
				t.Errorf("query %d (%s): %d diffs vs oracle:\n%s",
					i, pass, len(diffs), FormatDiffs(diffs, 10))
			}
		}
	}
}

// TestOracleDeterministic: the oracle over the same seed is a pure function
// of the query — two independent instances and repeated evaluations agree
// exactly (including sums, since the scan order is fixed).
func TestOracleDeterministic(t *testing.T) {
	c := testCluster(t)
	o1 := ForCluster(c)
	o2 := ForCluster(c)
	q := testQueries()[0]
	r1, err := o1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := o1.Query(q) // memoized path
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []query.Result{r2, r3} {
		if diffs := Compare(r, r1); len(diffs) > 0 {
			t.Fatalf("oracle not deterministic:\n%s", FormatDiffs(diffs, 10))
		}
		for k, s := range r.Cells {
			for attr, st := range s.Stats {
				if st.Sum != r1.Cells[k].Stats[attr].Sum {
					t.Fatalf("oracle sums not bit-identical at %v %s", k, attr)
				}
			}
		}
	}
}

// TestOracleBumpCoherence: after simulated ingest (UpdateBlock bumps the
// shared generator's block version and invalidates the cluster), oracle and
// cluster must still agree — the oracle's version-keyed memo picks up the
// new content without any invalidation protocol.
func TestOracleBumpCoherence(t *testing.T) {
	c := testCluster(t)
	o := ForCluster(c)
	cl := c.Client()
	q := testQueries()[0]

	before, err := o.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(q); err != nil { // populate caches pre-update
		t.Fatal(err)
	}
	// Quiesce the async population pipeline before bumping: population
	// stamps the PLM epoch at insert time, so a pre-bump fetch landing
	// after the bump would be recorded fresh while holding stale data
	// (the difftest driver settles before its update steps for the same
	// reason).
	settle(c)

	prefix := geohash.Encode(35, -99, o.BlockPrefixLen())
	day := temporal.At(time.Date(2015, 2, 2, 0, 0, 0, 0, time.UTC), temporal.Day)
	c.UpdateBlock(prefix, day)

	want, err := o.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(Compare(want, before)) == 0 {
		t.Fatal("UpdateBlock changed nothing the oracle can see (block outside footprint?)")
	}
	got, err := cl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Check(got, want); len(diffs) > 0 {
		t.Errorf("post-update cluster diverges from oracle:\n%s", FormatDiffs(diffs, 10))
	}
}

// mutate applies a named corruption to a deep copy of a result, returning
// the copy. Each corruption models a realistic aggregation bug class.
func mutate(r query.Result, kind string) query.Result {
	out := query.NewResult()
	out.Coverage = r.Coverage
	var victim cell.Key
	for k := range r.Cells {
		if victim == (cell.Key{}) || k.Geohash < victim.Geohash {
			victim = k // deterministic pick: smallest geohash
		}
	}
	for k, s := range r.Cells {
		cp := s.Clone()
		if k == victim {
			st := cp.Stats["temperature"]
			switch kind {
			case "count-bump": // double-counted merge
				st.Count++
			case "sum-skew": // lost partial in a sum tree
				st.Sum *= 1.5
			case "min-lower": // impossible extremum
				st.Min -= 100
			case "drop-attr": // attribute lost in a wire round trip
				delete(cp.Stats, "temperature")
			}
			if kind != "drop-attr" {
				cp.Stats["temperature"] = st
			}
		}
		out.Cells[k] = cp
	}
	switch kind {
	case "drop-cell": // cell lost in a merge
		delete(out.Cells, victim)
	case "spurious-cell": // cell binned to the wrong key
		ghost := victim
		ghost.Geohash = victim.Geohash[:len(victim.Geohash)-1] + "~"
		s := cell.NewSummary()
		s.Observe("temperature", 1)
		out.Cells[ghost] = s
	}
	return out
}

// TestCompareCatchesMutations is the mutation smoke test for the exact
// comparator: every seeded aggregation-bug class must produce diffs.
func TestCompareCatchesMutations(t *testing.T) {
	c := testCluster(t)
	o := ForCluster(c)
	want, err := o.Query(testQueries()[0])
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Compare(want, want); len(diffs) != 0 {
		t.Fatalf("self-compare not clean:\n%s", FormatDiffs(diffs, 10))
	}
	for _, kind := range []string{
		"count-bump", "sum-skew", "min-lower", "drop-attr", "drop-cell", "spurious-cell",
	} {
		t.Run(kind, func(t *testing.T) {
			got := mutate(want, kind)
			if diffs := Compare(got, want); len(diffs) == 0 {
				t.Errorf("mutation %q not caught by Compare", kind)
			}
		})
	}
}

// TestCompareSubsetSemantics pins the partial-result contract: genuine
// subsets pass, impossible aggregates and spurious cells fail, and a cell
// claiming full count is held to the exact contract.
func TestCompareSubsetSemantics(t *testing.T) {
	key := func(gh string) cell.Key {
		return cell.Key{Geohash: gh, Time: temporal.Label{Text: "2015-02-02", Res: temporal.Day}}
	}
	stat := func(count int64, sum, min, max float64) cell.Summary {
		return cell.Summary{Stats: map[string]cell.Stat{
			"temperature": {Count: count, Sum: sum, Min: min, Max: max},
		}}
	}
	oracle := query.NewResult()
	oracle.Cells[key("9v6k")] = stat(10, 50, 1, 9)
	oracle.Cells[key("9v6m")] = stat(4, 12, 2, 5)

	partial := func(mod func(r *query.Result)) query.Result {
		r := query.NewResult()
		r.Coverage = query.Coverage{Requested: 2, Covered: 1, Degraded: 1}
		mod(&r)
		return r
	}

	cases := []struct {
		name string
		got  query.Result
		ok   bool
	}{
		{"missing-cell-ok", partial(func(r *query.Result) {
			r.Cells[key("9v6k")] = stat(10, 50, 1, 9)
		}), true},
		{"undercount-ok", partial(func(r *query.Result) {
			r.Cells[key("9v6k")] = stat(6, 30, 2, 8)
		}), true},
		{"overcount-bad", partial(func(r *query.Result) {
			r.Cells[key("9v6k")] = stat(11, 55, 1, 9)
		}), false},
		{"min-below-bad", partial(func(r *query.Result) {
			r.Cells[key("9v6k")] = stat(6, 30, 0.5, 8)
		}), false},
		{"max-above-bad", partial(func(r *query.Result) {
			r.Cells[key("9v6k")] = stat(6, 30, 2, 9.5)
		}), false},
		{"spurious-cell-bad", partial(func(r *query.Result) {
			r.Cells[key("zzzz")] = stat(1, 1, 1, 1)
		}), false},
		{"full-count-wrong-sum-bad", partial(func(r *query.Result) {
			r.Cells[key("9v6k")] = stat(10, 51, 1, 9)
		}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffs := Check(tc.got, oracle)
			if tc.ok && len(diffs) > 0 {
				t.Errorf("expected pass, got diffs:\n%s", FormatDiffs(diffs, 10))
			}
			if !tc.ok && len(diffs) == 0 {
				t.Error("expected diffs, comparator accepted the result")
			}
		})
	}
}

// TestFetchCellsMixedLevels: the oracle accepts key sets spanning hierarchy
// levels (as the cluster's Fetch path does) and aggregates each at its own
// resolution.
func TestFetchCellsMixedLevels(t *testing.T) {
	c := testCluster(t)
	o := ForCluster(c)
	day := temporal.At(time.Date(2015, 2, 2, 0, 0, 0, 0, time.UTC), temporal.Day)
	month := temporal.At(time.Date(2015, 2, 2, 0, 0, 0, 0, time.UTC), temporal.Month)
	coarse := geohash.Encode(35, -99, 3)
	fine := geohash.Encode(35, -99, 5)
	keys := []cell.Key{
		{Geohash: coarse, Time: month},
		{Geohash: fine, Time: day},
	}
	r, err := o.FetchCells(keys)
	if err != nil {
		t.Fatal(err)
	}
	// The cluster fetch path serves one hierarchy level per request, so
	// fetch per level and merge; the oracle handles the mixed set in one call.
	got := query.NewResult()
	for _, k := range keys {
		part, err := c.Client().Fetch([]cell.Key{k})
		if err != nil {
			t.Fatal(err)
		}
		got.Merge(part)
	}
	if diffs := Check(got, r); len(diffs) > 0 {
		t.Errorf("mixed-level fetch diverges:\n%s", FormatDiffs(diffs, 10))
	}
	// The coarse month cell must contain the fine day cell (footprint algebra).
	cs := r.Cells[keys[0]].Stats["temperature"]
	fs := r.Cells[keys[1]].Stats["temperature"]
	if fs.Count > cs.Count || fs.Min < cs.Min || fs.Max > cs.Max {
		t.Errorf("containment violated: fine %+v vs coarse %+v", fs, cs)
	}
}

// settle waits for the asynchronous cache-population pipeline to drain (3
// consecutive quiet 1ms windows), so an ingest bump cannot race an in-flight
// pre-bump population insert.
func settle(c *cluster.Cluster) {
	last := c.TotalStats().PopulatedCells
	quiet := 0
	for i := 0; i < 100 && quiet < 3; i++ {
		time.Sleep(time.Millisecond)
		cur := c.TotalStats().PopulatedCells
		if cur == last {
			quiet++
		} else {
			quiet = 0
			last = cur
		}
	}
}
