package difftest

import (
	"stash/internal/oracle"
)

// shrinkBudget caps the number of replay attempts one shrink may spend.
// Each attempt builds a fresh small cluster and replays sequentially, so
// the cap bounds shrink cost even for long sessions.
const shrinkBudget = 80

// Shrink reduces a failing session to a minimal reproducing step list with
// a delta-debugging pass (ddmin-lite): truncate to the failing step, then
// repeatedly try dropping chunks of decreasing size, keeping any candidate
// that still fails on a fresh cluster. The final step (the one that
// exposed the divergence) is always retained. If the failure does not
// reproduce under sequential replay — e.g. it needed cross-session
// concurrency — the truncated list is returned unshrunk.
func Shrink(cfg Config, opts Options, steps []Step, failStep int) []Step {
	opts = opts.withDefaults()
	if failStep >= 0 && failStep < len(steps) {
		steps = steps[:failStep+1]
	}
	budget := shrinkBudget
	fails := func(s []Step) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return Replay(cfg, opts, s) != nil
	}
	if !fails(steps) {
		return steps
	}
	// ddmin over the prefix; the last step is pinned (it is the failure).
	last := steps[len(steps)-1]
	prefix := steps[:len(steps)-1]
	chunk := (len(prefix) + 1) / 2
	for chunk >= 1 && len(prefix) > 0 && budget > 0 {
		removed := false
		for i := 0; i < len(prefix); i += chunk {
			end := i + chunk
			if end > len(prefix) {
				end = len(prefix)
			}
			cand := make([]Step, 0, len(prefix)-(end-i)+1)
			cand = append(cand, prefix[:i]...)
			cand = append(cand, prefix[end:]...)
			cand = append(cand, last)
			if fails(cand) {
				prefix = cand[:len(cand)-1]
				removed = true
				break
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}
	out := make([]Step, 0, len(prefix)+1)
	out = append(out, prefix...)
	out = append(out, last)
	return out
}

// Replay runs a step list sequentially against a fresh cluster and oracle,
// returning the first failure (or nil). Used by Shrink and directly by
// tests and the seed-replay debugging workflow.
func Replay(cfg Config, opts Options, steps []Step) *Failure {
	opts = opts.withDefaults()
	replayCfg := cfg
	replayCfg.Faults = false // fault timing is wall-clock; replays run healthy
	c := buildCluster(replayCfg, opts)
	defer c.Stop()
	o := oracle.ForCluster(c)
	_, fail := runSession(c, o, replayCfg, opts, 0, steps)
	return fail
}
