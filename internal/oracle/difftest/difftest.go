// Package difftest is the randomized differential harness: seeded workload
// sessions of OLAP navigation steps run against real clusters built across a
// matrix of feature configurations — lock striping, request coalescing,
// serve-side singleflight, hotspot replication, fault injection, simulated
// ingest — and every response is cross-checked cell-by-cell against the
// sequential oracle (package oracle). Complete responses must match the
// oracle exactly; partial responses under faults must be subsets (never
// wrong, only missing). On a mismatch the failing session is shrunk with a
// delta-debugging pass to a minimal reproducing step list and reported with
// the seed that regenerates it.
package difftest

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"stash/internal/cluster"
	"stash/internal/dht"
	"stash/internal/galileo"
	"stash/internal/geohash"
	"stash/internal/oracle"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/stash"
	"stash/internal/temporal"
)

// Config selects one cluster feature combination for a differential run.
type Config struct {
	// Name identifies the configuration in reports and seeds the workload
	// (different configs get different sessions on purpose: more coverage).
	Name string
	// Tune mutates the base cluster configuration for this run.
	Tune func(cfg *cluster.Config)
	// Faults plays a seeded fault schedule during the run. Query errors are
	// tolerated, partial results are held to subset semantics, and the
	// failing session is not shrunk (fault timing is wall-clock dependent).
	Faults bool
	// Updates interleaves simulated ingest (UpdateBlock: generator bump +
	// cluster-wide invalidation) between query steps. Forces Sequential.
	Updates bool
	// Churn drives online membership changes (node joins and leaves, each a
	// full epoch flip with warm handoff) while the sessions run. Queries that
	// exhaust their epoch retries are tolerated like fault errors; every
	// returned result is still held to the oracle contract, and the failing
	// session is not shrunk (flip timing is wall-clock dependent).
	Churn bool
	// Sequential runs a single session instead of concurrent ones.
	Sequential bool
}

// Matrix returns the standard configuration matrix: every production feature
// toggle the serve path branches on, alone and combined.
func Matrix() []Config {
	stripes := func(n int) func(*cluster.Config) {
		return func(cfg *cluster.Config) {
			sc := stash.DefaultConfig()
			sc.Stripes = n
			cfg.Stash = &sc
		}
	}
	hotRepl := func(cfg *cluster.Config) {
		rc := replication.DefaultConfig()
		rc.QueueThreshold = 1 // trip handoffs at test scale
		rc.Cooldown = time.Millisecond
		rc.RerouteProbability = 0.5
		cfg.Replication = rc
	}
	return []Config{
		{Name: "stripes-1", Tune: stripes(1)},
		{Name: "stripes-16", Tune: stripes(16)},
		{Name: "no-stash", Tune: func(cfg *cluster.Config) { cfg.Stash = nil }},
		{Name: "coalesce", Tune: func(cfg *cluster.Config) {
			cfg.CoalesceWindow = cluster.DefaultCoalesceWindow
		}},
		{Name: "singleflight", Tune: func(cfg *cluster.Config) {
			cfg.ServeSingleflight = true
		}},
		{Name: "coalesce-singleflight", Tune: func(cfg *cluster.Config) {
			cfg.CoalesceWindow = cluster.DefaultCoalesceWindow
			cfg.ServeSingleflight = true
		}},
		{Name: "replication", Tune: hotRepl},
		{Name: "membership-churn", Churn: true},
		{Name: "columnar+parallel-fanin", Tune: func(cfg *cluster.Config) {
			// Wide tournament bound plus the batching features that feed it,
			// so pooled-arena recycling and concurrent pairwise merges run hot
			// under the oracle's eye.
			cfg.FanInWorkers = 8
			cfg.CoalesceWindow = cluster.DefaultCoalesceWindow
			cfg.ServeSingleflight = true
		}},
		{Name: "serial-fanin", Tune: func(cfg *cluster.Config) {
			// Legacy serial reply fold: pins the baseline the tournament is
			// benchmarked against to the same oracle contract.
			cfg.FanInWorkers = -1
		}},
		{Name: "updates", Updates: true, Sequential: true},
		{Name: "faults-partial", Faults: true, Tune: func(cfg *cluster.Config) {
			cfg.Resilience = fastResilience(true)
		}},
		{Name: "faults-strict", Faults: true, Tune: func(cfg *cluster.Config) {
			cfg.Resilience = fastResilience(false)
		}},
		{Name: "kitchen-sink", Tune: func(cfg *cluster.Config) {
			stripes(4)(cfg)
			hotRepl(cfg)
			cfg.CoalesceWindow = cluster.DefaultCoalesceWindow
			cfg.ServeSingleflight = true
		}},
	}
}

// fastResilience is the coordinator failure handling used under injected
// faults, scaled so a crashed-node wait costs milliseconds in tests.
func fastResilience(partial bool) cluster.ResilienceConfig {
	return cluster.ResilienceConfig{
		RequestTimeout:  20 * time.Millisecond,
		Retries:         1,
		RetryBackoff:    time.Millisecond,
		AllowPartial:    partial,
		HelperReroute:   partial,
		ScatterFallback: partial,
	}
}

// Options sizes a differential run.
type Options struct {
	// Seed drives everything: workloads, fault schedules, update picks.
	// Re-running with the same seed regenerates the identical run (modulo
	// goroutine interleaving, which is the point of the exercise).
	Seed uint64
	// Nodes / PointsPerBlock size the cluster and dataset.
	Nodes          int
	PointsPerBlock int
	// Steps is the number of query steps per session.
	Steps int
	// Sessions is the number of concurrent navigation sessions.
	Sessions int
	// MaxFootprint caps per-query footprint cells; the generator rolls up
	// or re-bases any step that would exceed it.
	MaxFootprint int
	// Mutate, when set, corrupts responses before cross-checking — the
	// mutation-smoke hook proving the harness detects seeded bugs.
	Mutate func(q query.Query, r *query.Result)
	// NoShrink disables delta-debugging of a failing session.
	NoShrink bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Nodes == 0 {
		o.Nodes = 5
	}
	if o.PointsPerBlock == 0 {
		o.PointsPerBlock = 96
	}
	if o.Steps == 0 {
		o.Steps = 200
	}
	if o.Sessions == 0 {
		o.Sessions = 4
	}
	if o.MaxFootprint == 0 {
		o.MaxFootprint = 512
	}
	return o
}

// Step is one session action: an ingest update (Update non-nil) or a query.
type Step struct {
	Op     string // "base", "pan", "drill", "rollup", ... or "update"
	Q      query.Query
	Update *BlockUpdate
}

func (s Step) String() string {
	if s.Update != nil {
		return fmt.Sprintf("update %s/%s", s.Update.Prefix, s.Update.Day.Text)
	}
	return fmt.Sprintf("%-8s %v", s.Op, s.Q)
}

// BlockUpdate names one simulated-ingest bump.
type BlockUpdate struct {
	Prefix string
	Day    temporal.Label
}

// Stats summarizes one differential run.
type Stats struct {
	Queries  int   // query steps executed
	Cells    int64 // result cells cross-checked against the oracle
	Complete int   // responses with complete coverage (exact-checked)
	Partial  int   // responses with partial coverage (subset-checked)
	Errors   int   // tolerated query errors (fault configs only)
	Updates  int   // ingest bumps applied
	Repeats  int   // metamorphic repeat-identity checks performed
	PanPairs int   // pan footprint-continuity checks performed
	Flips    int   // membership epoch flips driven (churn configs only)
}

func (s *Stats) add(o Stats) {
	s.Queries += o.Queries
	s.Cells += o.Cells
	s.Complete += o.Complete
	s.Partial += o.Partial
	s.Errors += o.Errors
	s.Updates += o.Updates
	s.Repeats += o.Repeats
	s.PanPairs += o.PanPairs
	s.Flips += o.Flips
}

// Failure is one detected divergence, with everything needed to reproduce
// it: config, seed, session, step, and (when shrinking ran) the minimal
// step list that still fails.
type Failure struct {
	Config  string
	Seed    uint64
	Session int
	Step    int
	Kind    string // "diff", "error", "repeat-identity", "pan-continuity", "oracle-error"
	Query   query.Query
	Diffs   []oracle.Diff
	Err     error
	Repro   []Step
}

func (f *Failure) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "difftest %s: %s at session %d step %d (seed %d)\n",
		f.Config, f.Kind, f.Session, f.Step, f.Seed)
	fmt.Fprintf(&b, "  query: %v\n", f.Query)
	if f.Err != nil {
		fmt.Fprintf(&b, "  error: %v\n", f.Err)
	}
	if len(f.Diffs) > 0 {
		fmt.Fprintf(&b, "  %d cell diffs:\n%s", len(f.Diffs), oracle.FormatDiffs(f.Diffs, 8))
	}
	if len(f.Repro) > 0 {
		fmt.Fprintf(&b, "  minimal repro (%d steps, replay with seed %d):\n", len(f.Repro), f.Seed)
		for i, s := range f.Repro {
			fmt.Fprintf(&b, "    %2d. %v\n", i, s)
		}
	}
	return b.String()
}

// Run executes one differential run: build the cluster for cfg, generate
// opts.Sessions deterministic workload sessions, run them concurrently with
// oracle cross-checking, and return aggregate stats plus the first failure
// (shrunk to a minimal repro when possible).
func Run(cfg Config, opts Options) (Stats, *Failure) {
	opts = opts.withDefaults()
	sessions := opts.Sessions
	if cfg.Sequential {
		sessions = 1
	}
	all := make([][]Step, sessions)
	for i := range all {
		all[i] = GenSession(cfg, i, opts)
	}

	c := buildCluster(cfg, opts)
	defer c.Stop()
	o := oracle.ForCluster(c)

	// Churn configs run a driver alongside the sessions: alternate joins and
	// leaves, each a full three-phase warm handoff plus epoch flip, so the
	// workload crosses many ownership changes mid-query.
	stopChurn := make(chan struct{})
	var churnDone chan int
	if cfg.Churn {
		churnDone = make(chan int, 1)
		go func() {
			flips := 0
			var joined []dht.NodeID
			for i := 0; ; i++ {
				select {
				case <-stopChurn:
					churnDone <- flips
					return
				case <-time.After(25 * time.Millisecond):
				}
				if i%2 == 0 {
					if id, err := c.Join(); err == nil {
						joined = append(joined, id)
						flips++
					}
				} else if len(joined) > 0 {
					if err := c.Leave(joined[0]); err == nil {
						joined = joined[1:]
						flips++
					}
				}
			}
		}()
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats Stats
		first *Failure
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, fail := runSession(c, o, cfg, opts, i, all[i])
			mu.Lock()
			defer mu.Unlock()
			stats.add(st)
			if fail != nil && first == nil {
				first = fail
			}
		}(i)
	}
	wg.Wait()
	if cfg.Churn {
		close(stopChurn)
		stats.Flips = <-churnDone
	}

	if first != nil && !cfg.Faults && !cfg.Churn && !opts.NoShrink {
		first.Repro = Shrink(cfg, opts, all[first.Session], first.Step)
	}
	return stats, first
}

// buildCluster constructs the system under test for one configuration.
func buildCluster(cfg Config, opts Options) *cluster.Cluster {
	cc := cluster.DefaultConfig()
	cc.Nodes = opts.Nodes
	cc.Seed = opts.Seed
	cc.PointsPerBlock = opts.PointsPerBlock
	if cfg.Faults {
		cc.Faults = simnet.NewFaultPlan(int64(opts.Seed))
	}
	if cfg.Tune != nil {
		cfg.Tune(&cc)
	}
	c, err := cluster.New(cc)
	if err != nil {
		panic(fmt.Sprintf("difftest: cluster build for %q: %v", cfg.Name, err))
	}
	c.Start()
	return c
}

// sessionSeed derives a session's workload seed from the run seed, config
// name, and session index, so every (config, session) pair explores a
// different deterministic trajectory.
func sessionSeed(seed uint64, name string, session int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%d", seed, name, session)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// GenSession deterministically generates one session's step list: a random
// base query followed by a weighted walk of the OLAP navigation operators
// (pan, drill-down, roll-up — spatial and temporal — dice, slice, repeat),
// re-based whenever a step would exceed the footprint cap. Updates configs
// interleave ingest bumps. Pure function of (opts.Seed, cfg.Name, session).
func GenSession(cfg Config, session int, opts Options) []Step {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(sessionSeed(opts.Seed, cfg.Name, session)))
	steps := make([]Step, 0, opts.Steps+opts.Steps/16)
	q := baseQuery(rng)
	steps = append(steps, Step{Op: "base", Q: q})
	for queries := 1; queries < opts.Steps; queries++ {
		if cfg.Updates && queries%16 == 0 {
			steps = append(steps, Step{Op: "update", Update: randUpdate(rng)})
		}
		var op string
		q, op = nextQuery(rng, q, opts.MaxFootprint)
		steps = append(steps, Step{Op: op, Q: q})
	}
	return steps
}

// baseQuery picks a fresh viewport: a 1–3 degree box over the south-central
// US (dense synthetic data, shared across sessions so caches actually
// collide) and 1–3 days of February 2015 at Day resolution.
func baseQuery(rng *rand.Rand) query.Query {
	h := 0.8 + rng.Float64()*1.6
	w := 0.8 + rng.Float64()*2.2
	lat := 30 + rng.Float64()*8
	lon := -104 + rng.Float64()*12
	start := time.Date(2015, 2, 1+rng.Intn(8), 0, 0, 0, 0, time.UTC)
	return query.Query{
		Box:         geohash.Box{MinLat: lat, MaxLat: lat + h, MinLon: lon, MaxLon: lon + w},
		Time:        temporal.Range{Start: start, End: start.AddDate(0, 0, 1+rng.Intn(3))},
		SpatialRes:  3 + rng.Intn(2),
		TemporalRes: temporal.Day,
	}
}

// randUpdate picks a block inside the workload region to bump.
func randUpdate(rng *rand.Rand) *BlockUpdate {
	lat := 30 + rng.Float64()*8
	lon := -104 + rng.Float64()*12
	day := temporal.At(time.Date(2015, 2, 1+rng.Intn(10), 0, 0, 0, 0, time.UTC), temporal.Day)
	return &BlockUpdate{
		Prefix: geohash.Encode(lat, lon, galileo.DefaultBlockPrefixLen),
		Day:    day,
	}
}

// nextQuery advances the navigation walk by one operator, keeping the query
// valid and its footprint under the cap. "repeat" re-issues the current
// query verbatim — the natural trigger for the warm-cache repeat-identity
// metamorphic check.
func nextQuery(rng *rand.Rand, q query.Query, maxFootprint int) (query.Query, string) {
	cand, op := applyOp(rng, q)
	if admissible(cand, maxFootprint) {
		return cand, op
	}
	// Too wide or invalid: coarsen before giving up on the trajectory.
	if up, ok := cand.RollUp(); ok && admissible(up, maxFootprint) {
		return up, "rollup"
	}
	if up, ok := cand.RollUpTemporal(); ok && admissible(up, maxFootprint) {
		return up, "rollup-t"
	}
	return baseQuery(rng), "base"
}

func applyOp(rng *rand.Rand, q query.Query) (query.Query, string) {
	switch rng.Intn(12) {
	case 0, 1, 2:
		d := geohash.Direction(rng.Intn(8))
		return q.Pan(d, 0.2+rng.Float64()*0.6), "pan"
	case 3:
		if nq, ok := q.DrillDown(); ok {
			return nq, "drill"
		}
	case 4:
		if nq, ok := q.RollUp(); ok {
			return nq, "rollup"
		}
	case 5:
		if nq, ok := q.DrillDownTemporal(); ok {
			return nq, "drill-t"
		}
	case 6:
		if nq, ok := q.RollUpTemporal(); ok {
			return nq, "rollup-t"
		}
	case 7:
		return q.DiceShrink(0.2 + rng.Float64()*0.3), "shrink"
	case 8:
		return q.DiceExpand(0.2 + rng.Float64()*0.3), "expand"
	case 9: // slice to one covered temporal label
		if labels, err := q.Time.Cover(q.TemporalRes); err == nil && len(labels) > 1 {
			if nq, err := q.SliceTime(labels[rng.Intn(len(labels))]); err == nil {
				return nq, "slice"
			}
		}
	case 10, 11:
		return q, "repeat"
	}
	return q, "repeat"
}

// admissible bounds a candidate step. Besides validity and the footprint
// cap, it pins the walk to block-friendly resolutions: a cell coarser than
// the block prefix (spatial res < 3) or a Year label covers an enormous set
// of (prefix, day) blocks — a single such query forces both the oracle and
// the cluster's cold scan through hundreds of thousands of generated blocks,
// which bounds nothing. The footprint cap counts cells; this bounds blocks.
func admissible(q query.Query, maxFootprint int) bool {
	if q.SpatialRes < 3 || q.SpatialRes > 8 {
		return false
	}
	if q.TemporalRes == temporal.Year {
		return false
	}
	if err := q.Validate(); err != nil {
		return false
	}
	n, err := q.FootprintCount()
	return err == nil && n <= maxFootprint
}

// seen is one prior complete response retained for metamorphic checks.
type seenResult struct {
	q   query.Query
	res query.Result
	gen int // update generation: results across an ingest bump differ legally
}

// runSession replays one step list against the live cluster, cross-checking
// every response. Session 0 additionally owns the fault schedule (fault
// configs) so events are applied exactly once.
func runSession(c *cluster.Cluster, o *oracle.Oracle, cfg Config, opts Options, session int, steps []Step) (Stats, *Failure) {
	var (
		stats   Stats
		cl      = c.Client()
		history []seenResult
		gen     int
		prev    *seenResult // previous step's complete response, for pan continuity
		prevOp  string
	)
	var schedule []simnet.ScheduledFault
	next := 0
	if cfg.Faults && session == 0 {
		schedule = simnet.GenerateFaultSchedule(int64(opts.Seed), opts.Nodes, len(steps), 8)
		defer c.Faults().Reset()
	}

	for i, step := range steps {
		for next < len(schedule) && schedule[next].Step <= i {
			c.Faults().Apply(schedule[next])
			next++
		}
		if step.Update != nil {
			settle(c)
			c.UpdateBlock(step.Update.Prefix, step.Update.Day)
			gen++
			stats.Updates++
			prev = nil
			continue
		}
		stats.Queries++
		got, err := cl.Query(step.Q)
		if err != nil {
			if cfg.Faults || cfg.Churn {
				stats.Errors++
				prev = nil
				continue
			}
			return stats, &Failure{Config: cfg.Name, Seed: opts.Seed, Session: session,
				Step: i, Kind: "error", Query: step.Q, Err: err}
		}
		if opts.Mutate != nil {
			opts.Mutate(step.Q, &got)
		}
		want, err := o.Query(step.Q)
		if err != nil {
			return stats, &Failure{Config: cfg.Name, Seed: opts.Seed, Session: session,
				Step: i, Kind: "oracle-error", Query: step.Q, Err: err}
		}
		stats.Cells += int64(got.Len())
		if diffs := oracle.Check(got, want); len(diffs) > 0 {
			return stats, &Failure{Config: cfg.Name, Seed: opts.Seed, Session: session,
				Step: i, Kind: "diff", Query: step.Q, Diffs: diffs}
		}

		if !got.Coverage.Complete() {
			stats.Partial++
			prev = nil
			continue
		}
		stats.Complete++

		// Metamorphic repeat identity: the same query issued again in the
		// same data generation — now answered from cache and derivation
		// instead of disk — must return the identical result.
		for j := len(history) - 1; j >= 0; j-- {
			h := history[j]
			if h.gen == gen && h.q.Equal(step.Q) {
				stats.Repeats++
				if diffs := oracle.Compare(got, h.res); len(diffs) > 0 {
					return stats, &Failure{Config: cfg.Name, Seed: opts.Seed, Session: session,
						Step: i, Kind: "repeat-identity", Query: step.Q, Diffs: diffs}
				}
				break
			}
		}

		// Pan footprint continuity: cells shared between consecutive pan
		// viewports must carry identical aggregates in both responses.
		if step.Op == "pan" && prev != nil && prevOp != "update" {
			stats.PanPairs++
			if diffs := sharedCellDiffs(got, prev.res); len(diffs) > 0 {
				return stats, &Failure{Config: cfg.Name, Seed: opts.Seed, Session: session,
					Step: i, Kind: "pan-continuity", Query: step.Q, Diffs: diffs}
			}
		}

		cur := seenResult{q: step.Q, res: got, gen: gen}
		history = append(history, cur)
		if len(history) > 64 {
			history = history[1:]
		}
		prev = &cur
		prevOp = step.Op
	}
	return stats, nil
}

// sharedCellDiffs compares the cells present in both results: overlapping
// viewport regions must agree exactly.
func sharedCellDiffs(a, b query.Result) []oracle.Diff {
	shared := query.NewResult()
	ref := query.NewResult()
	for k, s := range a.Cells {
		if bs, ok := b.Cells[k]; ok {
			shared.Cells[k] = s
			ref.Cells[k] = bs
		}
	}
	return oracle.Compare(shared, ref)
}

// settle waits for the asynchronous cache-population pipeline to drain
// before an ingest bump. Population stamps the PLM epoch at insert time, so
// a pre-bump fetch inserted post-bump would be recorded fresh while holding
// stale data; quiescing first keeps the updates run deterministic.
func settle(c *cluster.Cluster) {
	last := c.TotalStats().PopulatedCells
	quiet := 0
	for i := 0; i < 100 && quiet < 3; i++ {
		time.Sleep(time.Millisecond)
		cur := c.TotalStats().PopulatedCells
		if cur == last {
			quiet++
		} else {
			quiet = 0
			last = cur
		}
	}
}
