package difftest

import (
	"math/rand"
	"testing"

	"stash/internal/cell"
	"stash/internal/oracle"
	"stash/internal/query"
)

// TestDifferentialMatrix is the headline harness run: every configuration in
// the matrix executes its full randomized workload (concurrent sessions of
// OLAP navigation steps), cross-checking each response against the
// sequential oracle cell-by-cell, plus the metamorphic repeat-identity and
// pan-continuity properties. Any divergence fails with a seed and a shrunk
// minimal repro.
func TestDifferentialMatrix(t *testing.T) {
	opts := Options{Seed: 1}
	if testing.Short() {
		opts.Steps = 40
		opts.Sessions = 2
	}
	configs := Matrix()
	if len(configs) < 8 {
		t.Fatalf("matrix has %d configs, want >= 8", len(configs))
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			stats, fail := Run(cfg, opts)
			if fail != nil {
				t.Fatalf("divergence:\n%s", fail.Error())
			}
			want := opts.withDefaults().Steps
			if cfg.Sequential {
				// single session
			} else {
				want *= opts.withDefaults().Sessions
			}
			if stats.Queries < want {
				t.Errorf("ran %d queries, want >= %d", stats.Queries, want)
			}
			if stats.Cells == 0 {
				t.Error("cross-checked zero cells — workload never hit data")
			}
			if stats.Repeats == 0 {
				t.Error("repeat-identity property never exercised")
			}
			if stats.PanPairs == 0 {
				t.Error("pan-continuity property never exercised")
			}
			if cfg.Updates && stats.Updates == 0 {
				t.Error("updates config applied no ingest bumps")
			}
			if !cfg.Faults && !cfg.Churn && (stats.Errors > 0 || stats.Partial > 0) {
				t.Errorf("healthy config saw %d errors / %d partial results",
					stats.Errors, stats.Partial)
			}
			if cfg.Churn && stats.Flips < 2 {
				t.Errorf("churn config flipped the epoch %d times; workload finished before membership moved", stats.Flips)
			}
			t.Logf("%s: %+v", cfg.Name, stats)
		})
	}
}

// mutations are the seeded aggregation-bug classes the harness must catch:
// each corrupts every non-empty response in a different way.
var mutations = []struct {
	name   string
	mutate func(q query.Query, r *query.Result)
}{
	{"count-bump", func(q query.Query, r *query.Result) {
		corruptOne(r, func(st *cell.Stat) { st.Count++ })
	}},
	{"sum-skew", func(q query.Query, r *query.Result) {
		corruptOne(r, func(st *cell.Stat) { st.Sum *= 1.25 })
	}},
	{"min-lower", func(q query.Query, r *query.Result) {
		corruptOne(r, func(st *cell.Stat) { st.Min -= 1000 })
	}},
	{"lane-drop", func(q query.Query, r *query.Result) {
		// Columnar-era bug class: one attribute lane lost in SummaryBatch
		// materialization — the whole temperature column vanishes from a
		// cell while the other attrs stay intact.
		dropLane(r, "temperature")
	}},
	{"spurious-cell", func(q query.Query, r *query.Result) {
		if len(r.Cells) == 0 {
			return
		}
		var ghost cell.Key
		for k := range r.Cells {
			ghost = k
			break
		}
		ghost.Geohash = ghost.Geohash[:len(ghost.Geohash)-1] + "~"
		s := cell.NewSummary()
		s.Observe("temperature", 1)
		r.Cells[ghost] = s
	}},
}

// corruptOne applies f to the temperature stat of the lexically-smallest
// cell (deterministic victim), cloning first per the immutability contract.
func corruptOne(r *query.Result, f func(*cell.Stat)) {
	victim, found := smallestKey(r)
	if !found {
		return
	}
	cp := r.Cells[victim].Clone()
	st := cp.Stats["temperature"]
	f(&st)
	cp.Stats["temperature"] = st
	r.Cells[victim] = cp
}

// dropLane deletes one attribute from the deterministic victim cell, cloning
// first per the immutability contract.
func dropLane(r *query.Result, attr string) {
	victim, found := smallestKey(r)
	if !found {
		return
	}
	cp := r.Cells[victim].Clone()
	delete(cp.Stats, attr)
	r.Cells[victim] = cp
}

// smallestKey picks the lexically-smallest cell key — a deterministic victim
// for the corruption hooks.
func smallestKey(r *query.Result) (cell.Key, bool) {
	var victim cell.Key
	found := false
	for k := range r.Cells {
		if !found || k.Geohash < victim.Geohash ||
			(k.Geohash == victim.Geohash && k.Time.Text < victim.Time.Text) {
			victim = k
			found = true
		}
	}
	return victim, found
}

// TestMutationSmoke proves the harness detects deliberately injected
// aggregation bugs: with each corruption hook active, the run must fail
// with a cell diff, and the shrinker must minimize the session to a single
// reproducing step (the corruption fires on every response).
func TestMutationSmoke(t *testing.T) {
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			opts := Options{Seed: 7, Steps: 30, Sessions: 1, Mutate: m.mutate}
			_, fail := Run(Config{Name: "mutation-" + m.name}, opts)
			if fail == nil {
				t.Fatalf("injected %s was not detected", m.name)
			}
			if fail.Kind != "diff" && fail.Kind != "repeat-identity" && fail.Kind != "pan-continuity" {
				t.Fatalf("unexpected failure kind %q:\n%s", fail.Kind, fail.Error())
			}
			if len(fail.Diffs) == 0 {
				t.Fatal("failure carries no cell diffs")
			}
			if len(fail.Repro) != 1 {
				t.Errorf("shrink left %d steps, want 1:\n%s", len(fail.Repro), fail.Error())
			}
			// The minimal repro must actually reproduce.
			if rf := Replay(Config{Name: "mutation-" + m.name}, opts, fail.Repro); rf == nil {
				t.Error("minimal repro does not reproduce the failure")
			}
		})
	}
}

// TestCleanRunNotFlagged: the same small run with no corruption passes —
// the mutation test's failures come from the injected bugs, not the
// harness.
func TestCleanRunNotFlagged(t *testing.T) {
	opts := Options{Seed: 7, Steps: 30, Sessions: 1}
	if _, fail := Run(Config{Name: "mutation-clean"}, opts); fail != nil {
		t.Fatalf("clean run flagged:\n%s", fail.Error())
	}
}

// TestGenSessionDeterministic: the workload generator is a pure function of
// (seed, config, session) — the shrinker's replay and the seed-reporting
// workflow both depend on this.
func TestGenSessionDeterministic(t *testing.T) {
	cfg := Config{Name: "updates", Updates: true, Sequential: true}
	opts := Options{Seed: 99, Steps: 120}
	a := GenSession(cfg, 0, opts)
	b := GenSession(cfg, 0, opts)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || !a[i].Q.Equal(b[i].Q) {
			t.Fatalf("step %d differs: %v vs %v", i, a[i], b[i])
		}
		if (a[i].Update == nil) != (b[i].Update == nil) {
			t.Fatalf("step %d update presence differs", i)
		}
		if a[i].Update != nil && *a[i].Update != *b[i].Update {
			t.Fatalf("step %d update differs: %v vs %v", i, *a[i].Update, *b[i].Update)
		}
	}
	// Different sessions must explore different trajectories.
	c := GenSession(cfg, 1, opts)
	same := true
	for i := range a {
		if i >= len(c) || !a[i].Q.Equal(c[i].Q) {
			same = false
			break
		}
	}
	if same {
		t.Error("sessions 0 and 1 generated identical workloads")
	}
}

// TestSummaryMergeAlgebra pins the algebraic laws the whole derivation
// hierarchy rests on: Summary.Merge is commutative and associative (counts
// and extrema exactly; sums within float tolerance), with the empty summary
// as identity.
func TestSummaryMergeAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randSummary := func() cell.Summary {
		s := cell.NewSummary()
		for _, attr := range []string{"temperature", "humidity"} {
			for n := rng.Intn(6); n >= 0; n-- {
				s.Observe(attr, rng.NormFloat64()*40)
			}
		}
		return s
	}
	merge := func(a, b cell.Summary) cell.Summary {
		m := a.Clone()
		m.Merge(b)
		return m
	}
	equal := func(a, b cell.Summary) bool {
		if len(a.Stats) != len(b.Stats) {
			return false
		}
		for attr, as := range a.Stats {
			bs, ok := b.Stats[attr]
			if !ok || !as.ApproxEqual(bs, 1e-12) {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := randSummary(), randSummary(), randSummary()
		if !equal(merge(a, b), merge(b, a)) {
			t.Fatalf("merge not commutative (trial %d): %+v vs %+v", trial, a, b)
		}
		if !equal(merge(merge(a, b), c), merge(a, merge(b, c))) {
			t.Fatalf("merge not associative (trial %d)", trial)
		}
		if !equal(merge(a, cell.NewSummary()), a) {
			t.Fatalf("empty summary not a merge identity (trial %d)", trial)
		}
	}
}

// TestCheckUsesClaimedSemantics: the comparison layer trusts the coverage
// report — a result claiming completeness is held to the exact contract
// even if its cells would pass as a subset.
func TestCheckUsesClaimedSemantics(t *testing.T) {
	want := query.NewResult()
	k := cell.Key{Geohash: "9v6k"}
	s := cell.NewSummary()
	s.Observe("temperature", 5)
	s.Observe("temperature", 7)
	want.Cells[k] = s

	got := query.NewResult() // empty, claims complete (zero coverage)
	if diffs := oracle.Check(got, want); len(diffs) == 0 {
		t.Error("empty complete result accepted against non-empty oracle")
	}
	partial := query.NewResult()
	partial.Coverage = query.Coverage{Requested: 2, Covered: 1}
	if diffs := oracle.Check(partial, want); len(diffs) != 0 {
		t.Error("empty partial result rejected — subset semantics not applied")
	}
}
