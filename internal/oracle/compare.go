package oracle

import (
	"fmt"
	"sort"
	"strings"

	"stash/internal/cell"
	"stash/internal/query"
)

// SumEpsilon is the relative tolerance for aggregate sums. Counts, minima
// and maxima are order-independent reductions and must match bit-exactly;
// sums accumulate in whatever order the serving path merged partials
// (per-node, per-block, per-derivation-child), so they may differ from the
// oracle's sequential scan in the low bits.
const SumEpsilon = 1e-9

// Diff is one cell-level disagreement between a system result and the
// oracle's recomputation.
type Diff struct {
	Key   cell.Key
	Attr  string // empty for presence-level diffs
	Field string // "count", "sum", "min", "max", "cell", "attrs"
	Got   float64
	Want  float64
	Msg   string
}

func (d Diff) String() string {
	if d.Msg != "" {
		return fmt.Sprintf("%v: %s", d.Key, d.Msg)
	}
	return fmt.Sprintf("%v: %s.%s got %v want %v", d.Key, d.Attr, d.Field, d.Got, d.Want)
}

// FormatDiffs renders diffs one per line, capped so a badly wrong result
// does not drown the report.
func FormatDiffs(diffs []Diff, max int) string {
	var b strings.Builder
	for i, d := range diffs {
		if max > 0 && i >= max {
			fmt.Fprintf(&b, "  ... and %d more\n", len(diffs)-i)
			break
		}
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return b.String()
}

// Check compares a system result against the oracle's answer using the
// semantics the result claims for itself: a complete result (by coverage
// report, or zero-value coverage meaning "complete by construction") must
// match exactly; a partial result must be a subset — present cells may
// under-count but must never be impossible, and no cell may appear that the
// oracle says holds no data. It returns nil when the result is acceptable.
func Check(got, want query.Result) []Diff {
	if got.Coverage.Complete() {
		return Compare(got, want)
	}
	return CompareSubset(got, want)
}

// Compare checks exact cell-by-cell equivalence: identical key sets
// (non-empty cells only) and, per key, identical attribute sets with equal
// stats (sum within SumEpsilon).
func Compare(got, want query.Result) []Diff {
	var diffs []Diff
	for _, k := range sortedKeys(want) {
		ws := want.Cells[k]
		gs, ok := got.Cells[k]
		if !ok {
			diffs = append(diffs, Diff{Key: k, Field: "cell",
				Msg: fmt.Sprintf("missing cell (oracle has %d attrs)", len(ws.Stats))})
			continue
		}
		diffs = append(diffs, compareCell(k, gs, ws)...)
	}
	for _, k := range sortedKeys(got) {
		if _, ok := want.Cells[k]; !ok {
			diffs = append(diffs, Diff{Key: k, Field: "cell",
				Msg: "unexpected cell (oracle says empty)"})
		}
	}
	return diffs
}

// CompareSubset checks the partial-result contract: every served cell must
// be the aggregate of a subset of the oracle's observations for that cell —
// count no larger, min no smaller, max no greater — and cells the oracle
// holds no data for must not appear at all. A served cell whose count equals
// the oracle's is complete and must match exactly. Absent cells are fine:
// that is what "partial" means.
func CompareSubset(got, want query.Result) []Diff {
	var diffs []Diff
	for _, k := range sortedKeys(got) {
		gs := got.Cells[k]
		ws, ok := want.Cells[k]
		if !ok {
			diffs = append(diffs, Diff{Key: k, Field: "cell",
				Msg: "unexpected cell in partial result (oracle says empty)"})
			continue
		}
		for _, attr := range gs.Attrs() {
			gst := gs.Stats[attr]
			wst, ok := ws.Stats[attr]
			if !ok {
				diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "attrs",
					Msg: fmt.Sprintf("attribute %q not in oracle cell", attr)})
				continue
			}
			if gst.Count == wst.Count {
				// Fully served cell inside a partial result: exact contract.
				diffs = append(diffs, compareStat(k, attr, gst, wst)...)
				continue
			}
			if !gst.SubsetOf(wst) {
				diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "count",
					Got: float64(gst.Count), Want: float64(wst.Count),
					Msg: fmt.Sprintf("%s: not a subset of the oracle aggregate (count %d vs %d, min %v vs %v, max %v vs %v)",
						attr, gst.Count, wst.Count, gst.Min, wst.Min, gst.Max, wst.Max)})
			}
		}
	}
	return diffs
}

// compareCell checks one cell's full equality: same attributes, equal stats.
func compareCell(k cell.Key, got, want cell.Summary) []Diff {
	var diffs []Diff
	for _, attr := range want.Attrs() {
		wst := want.Stats[attr]
		gst, ok := got.Stats[attr]
		if !ok {
			diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "attrs",
				Msg: fmt.Sprintf("missing attribute %q", attr)})
			continue
		}
		diffs = append(diffs, compareStat(k, attr, gst, wst)...)
	}
	for _, attr := range got.Attrs() {
		if _, ok := want.Stats[attr]; !ok {
			diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "attrs",
				Msg: fmt.Sprintf("unexpected attribute %q", attr)})
		}
	}
	return diffs
}

// compareStat checks one attribute aggregate field by field, so a failure
// names exactly which reduction went wrong.
func compareStat(k cell.Key, attr string, got, want cell.Stat) []Diff {
	var diffs []Diff
	if got.Count != want.Count {
		diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "count",
			Got: float64(got.Count), Want: float64(want.Count)})
	}
	if got.Count == 0 || want.Count == 0 {
		return diffs
	}
	if got.Min != want.Min {
		diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "min", Got: got.Min, Want: want.Min})
	}
	if got.Max != want.Max {
		diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "max", Got: got.Max, Want: want.Max})
	}
	if !got.ApproxEqual(cell.Stat{Count: got.Count, Sum: want.Sum, Min: got.Min, Max: got.Max}, SumEpsilon) {
		diffs = append(diffs, Diff{Key: k, Attr: attr, Field: "sum", Got: got.Sum, Want: want.Sum})
	}
	return diffs
}

// sortedKeys returns a result's keys in deterministic (geohash, time) order
// so diff reports are stable.
func sortedKeys(r query.Result) []cell.Key {
	keys := make([]cell.Key, 0, len(r.Cells))
	for k := range r.Cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Geohash != keys[j].Geohash {
			return keys[i].Geohash < keys[j].Geohash
		}
		return keys[i].Time.Text < keys[j].Time.Text
	})
	return keys
}
