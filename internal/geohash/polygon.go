package geohash

import (
	"fmt"
)

// Point is a latitude/longitude coordinate.
type Point struct {
	Lat, Lon float64
}

// Polygon is a simple (non-self-intersecting) polygon on the lat/lon plane,
// listed as its vertices in order (closing edge implied). The paper's
// queries carry a Query_Polygon; rectangles are the common case but front-
// ends also send lassoed regions, which this type models. Polygons spanning
// the antimeridian are not supported (split them first).
type Polygon []Point

// Validate checks the polygon has at least 3 vertices inside the globe.
func (p Polygon) Validate() error {
	if len(p) < 3 {
		return fmt.Errorf("%w: polygon needs >= 3 vertices, has %d", ErrInvalid, len(p))
	}
	for i, v := range p {
		if v.Lat < -90 || v.Lat > 90 || v.Lon < -180 || v.Lon > 180 {
			return fmt.Errorf("%w: polygon vertex %d off-globe: %+v", ErrInvalid, i, v)
		}
	}
	return nil
}

// BoundingBox returns the polygon's axis-aligned bounds.
func (p Polygon) BoundingBox() Box {
	if len(p) == 0 {
		return Box{}
	}
	b := Box{MinLat: p[0].Lat, MaxLat: p[0].Lat, MinLon: p[0].Lon, MaxLon: p[0].Lon}
	for _, v := range p[1:] {
		if v.Lat < b.MinLat {
			b.MinLat = v.Lat
		}
		if v.Lat > b.MaxLat {
			b.MaxLat = v.Lat
		}
		if v.Lon < b.MinLon {
			b.MinLon = v.Lon
		}
		if v.Lon > b.MaxLon {
			b.MaxLon = v.Lon
		}
	}
	return b
}

// Contains reports whether the point lies inside the polygon (ray casting;
// boundary points may land on either side, which is irrelevant at cell
// granularity).
func (p Polygon) Contains(lat, lon float64) bool {
	inside := false
	n := len(p)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := p[i], p[j]
		if (vi.Lat > lat) != (vj.Lat > lat) {
			xCross := (vj.Lon-vi.Lon)*(lat-vi.Lat)/(vj.Lat-vi.Lat) + vi.Lon
			if lon < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// IntersectsBox reports whether the polygon and the box share any area,
// tested via mutual containment and edge crossings.
func (p Polygon) IntersectsBox(b Box) bool {
	// Any polygon vertex inside the box.
	for _, v := range p {
		if b.Contains(v.Lat, v.Lon) {
			return true
		}
	}
	// Any box corner inside the polygon.
	corners := [4]Point{
		{b.MinLat, b.MinLon}, {b.MinLat, b.MaxLon},
		{b.MaxLat, b.MinLon}, {b.MaxLat, b.MaxLon},
	}
	for _, c := range corners {
		if p.Contains(c.Lat, c.Lon) {
			return true
		}
	}
	// Any polygon edge crossing any box edge.
	n := len(p)
	boxEdges := [4][2]Point{
		{{b.MinLat, b.MinLon}, {b.MinLat, b.MaxLon}},
		{{b.MaxLat, b.MinLon}, {b.MaxLat, b.MaxLon}},
		{{b.MinLat, b.MinLon}, {b.MaxLat, b.MinLon}},
		{{b.MinLat, b.MaxLon}, {b.MaxLat, b.MaxLon}},
	}
	for i := 0; i < n; i++ {
		a1, a2 := p[i], p[(i+1)%n]
		for _, e := range boxEdges {
			if segmentsCross(a1, a2, e[0], e[1]) {
				return true
			}
		}
	}
	return false
}

// segmentsCross reports proper intersection of two segments (shared
// endpoints count as crossing, which errs toward inclusion — correct for
// query footprints).
func segmentsCross(p1, p2, q1, q2 Point) bool {
	d1 := cross(q1, q2, p1)
	d2 := cross(q1, q2, p2)
	d3 := cross(p1, p2, q1)
	d4 := cross(p1, p2, q2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(q1, q2, p1)) ||
		(d2 == 0 && onSegment(q1, q2, p2)) ||
		(d3 == 0 && onSegment(p1, p2, q1)) ||
		(d4 == 0 && onSegment(p1, p2, q2))
}

func cross(a, b, c Point) float64 {
	return (b.Lon-a.Lon)*(c.Lat-a.Lat) - (b.Lat-a.Lat)*(c.Lon-a.Lon)
}

func onSegment(a, b, c Point) bool {
	return min2(a.Lon, b.Lon) <= c.Lon && c.Lon <= max2(a.Lon, b.Lon) &&
		min2(a.Lat, b.Lat) <= c.Lat && c.Lat <= max2(a.Lat, b.Lat)
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CoverPolygon returns the geohashes at the given precision whose tiles
// intersect the polygon: the bounding-box cover filtered by polygon/tile
// intersection.
func CoverPolygon(p Polygon, precision int) ([]string, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	candidates, err := Cover(p.BoundingBox(), precision)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, gh := range candidates {
		tb, err := DecodeBox(gh)
		if err != nil {
			return nil, err
		}
		if p.IntersectsBox(tb) {
			out = append(out, gh)
		}
	}
	return out, nil
}

// RectPolygon converts a box into its polygon (counter-clockwise).
func RectPolygon(b Box) Polygon {
	return Polygon{
		{b.MinLat, b.MinLon},
		{b.MinLat, b.MaxLon},
		{b.MaxLat, b.MaxLon},
		{b.MaxLat, b.MinLon},
	}
}
