package geohash

import (
	"math"
	"testing"
	"testing/quick"
)

// triangle over the central US.
func triangle() Polygon {
	return Polygon{{30, -100}, {45, -90}, {30, -80}}
}

func TestPolygonValidate(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Errorf("valid polygon rejected: %v", err)
	}
	if err := (Polygon{{0, 0}, {1, 1}}).Validate(); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	if err := (Polygon{{0, 0}, {1, 1}, {95, 0}}).Validate(); err == nil {
		t.Error("off-globe vertex accepted")
	}
}

func TestPolygonBoundingBox(t *testing.T) {
	b := triangle().BoundingBox()
	want := Box{MinLat: 30, MaxLat: 45, MinLon: -100, MaxLon: -80}
	if b != want {
		t.Errorf("bbox = %v, want %v", b, want)
	}
	if (Polygon{}).BoundingBox() != (Box{}) {
		t.Error("empty polygon bbox should be zero")
	}
}

func TestPolygonContains(t *testing.T) {
	tri := triangle()
	cases := []struct {
		lat, lon float64
		want     bool
	}{
		{35, -90, true},    // centroid-ish
		{31, -99.9, false}, // inside bbox, outside triangle (left corner)
		{31, -80.1, false}, // inside bbox, outside triangle (right corner)
		{44, -90, true},    // near apex
		{29, -90, false},   // below base
		{46, -90, false},   // above apex
		{35, -120, false},  // far outside
	}
	for _, c := range cases {
		if got := tri.Contains(c.lat, c.lon); got != c.want {
			t.Errorf("Contains(%v,%v) = %v, want %v", c.lat, c.lon, got, c.want)
		}
	}
}

func TestRectPolygonMatchesBox(t *testing.T) {
	f := func(lat, lon float64) bool {
		lat = math.Mod(lat, 80)
		lon = math.Mod(lon, 170)
		b := Box{MinLat: lat, MaxLat: lat + 4, MinLon: lon, MaxLon: lon + 6}.Clamp()
		if !b.Valid() {
			return true
		}
		p := RectPolygon(b)
		// Interior points agree between box and polygon.
		for dl := 0.5; dl < b.Height(); dl += 1.3 {
			for dn := 0.5; dn < b.Width(); dn += 1.7 {
				if !p.Contains(b.MinLat+dl, b.MinLon+dn) {
					return false
				}
			}
		}
		// Points clearly outside disagree.
		return !p.Contains(b.MaxLat+1, b.MinLon) && !p.Contains(b.MinLat, b.MaxLon+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolygonIntersectsBox(t *testing.T) {
	tri := triangle()
	cases := []struct {
		box  Box
		want bool
	}{
		{Box{MinLat: 34, MaxLat: 36, MinLon: -91, MaxLon: -89}, true},    // fully inside
		{Box{MinLat: 20, MaxLat: 50, MinLon: -110, MaxLon: -70}, true},   // contains polygon
		{Box{MinLat: 29, MaxLat: 31, MinLon: -91, MaxLon: -89}, true},    // straddles base edge
		{Box{MinLat: 50, MaxLat: 55, MinLon: -91, MaxLon: -89}, false},   // above
		{Box{MinLat: 30, MaxLat: 32, MinLon: -130, MaxLon: -120}, false}, // far west
		{Box{MinLat: 43, MaxLat: 46, MinLon: -100, MaxLon: -97}, false},  // bbox corner, outside slanted edge
	}
	for i, c := range cases {
		if got := tri.IntersectsBox(c.box); got != c.want {
			t.Errorf("case %d: IntersectsBox(%v) = %v, want %v", i, c.box, got, c.want)
		}
	}
}

func TestCoverPolygonSubsetOfBoxCover(t *testing.T) {
	tri := triangle()
	polyCover, err := CoverPolygon(tri, 3)
	if err != nil {
		t.Fatal(err)
	}
	boxCover, err := Cover(tri.BoundingBox(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(polyCover) == 0 {
		t.Fatal("empty polygon cover")
	}
	if len(polyCover) >= len(boxCover) {
		t.Errorf("polygon cover (%d tiles) not smaller than bbox cover (%d) for a triangle",
			len(polyCover), len(boxCover))
	}
	boxSet := map[string]bool{}
	for _, gh := range boxCover {
		boxSet[gh] = true
	}
	for _, gh := range polyCover {
		if !boxSet[gh] {
			t.Errorf("polygon tile %q outside bbox cover", gh)
		}
	}
}

func TestCoverPolygonCompleteness(t *testing.T) {
	// Every point inside the polygon must land in a covered tile.
	tri := triangle()
	tiles, err := CoverPolygon(tri, 3)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, gh := range tiles {
		set[gh] = true
	}
	for lat := 30.5; lat < 45; lat += 1.1 {
		for lon := -99.5; lon < -80; lon += 1.3 {
			if !tri.Contains(lat, lon) {
				continue
			}
			if !set[Encode(lat, lon, 3)] {
				t.Fatalf("interior point (%v,%v) not covered", lat, lon)
			}
		}
	}
}

func TestCoverPolygonRectangleEqualsCover(t *testing.T) {
	b := Box{MinLat: 33.3, MaxLat: 37.9, MinLon: -101.5, MaxLon: -93.2}
	fromPoly, err := CoverPolygon(RectPolygon(b), 3)
	if err != nil {
		t.Fatal(err)
	}
	fromBox, err := Cover(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromPoly) != len(fromBox) {
		t.Errorf("rect-as-polygon cover %d tiles != box cover %d", len(fromPoly), len(fromBox))
	}
}

func TestCoverPolygonInvalid(t *testing.T) {
	if _, err := CoverPolygon(Polygon{{0, 0}}, 3); err == nil {
		t.Error("degenerate polygon accepted")
	}
}
