package geohash

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeKnownValues(t *testing.T) {
	cases := []struct {
		lat, lon  float64
		precision int
		want      string
	}{
		{57.64911, 10.40744, 11, "u4pruydqqvj"},
		{57.64911, 10.40744, 5, "u4pru"},
		{37.7749, -122.4194, 5, "9q8yy"}, // San Francisco
		{0, 0, 1, "s"},
		{-90, -180, 4, "0000"},
		{48.8566, 2.3522, 6, "u09tvw"}, // Paris
	}
	for _, c := range cases {
		if got := Encode(c.lat, c.lon, c.precision); got != c.want {
			t.Errorf("Encode(%v,%v,%d) = %q, want %q", c.lat, c.lon, c.precision, got, c.want)
		}
	}
}

func TestEncodeClampsAndWraps(t *testing.T) {
	if got := Encode(95, 0, 3); got != Encode(89.9999999, 0, 3) {
		t.Errorf("latitude above 90 not clamped: %q", got)
	}
	if got, want := Encode(10, 190, 4), Encode(10, -170, 4); got != want {
		t.Errorf("longitude wrap: got %q want %q", got, want)
	}
	if got, want := Encode(10, -190, 4), Encode(10, 170, 4); got != want {
		t.Errorf("longitude wrap negative: got %q want %q", got, want)
	}
}

func TestEncodePrecisionBounds(t *testing.T) {
	if got := Encode(1, 1, 0); len(got) != 1 {
		t.Errorf("precision 0 should clamp to 1, got %q", got)
	}
	if got := Encode(1, 1, 99); len(got) != MaxPrecision {
		t.Errorf("precision 99 should clamp to %d, got len %d", MaxPrecision, len(got))
	}
}

func TestDecodeBoxRoundTrip(t *testing.T) {
	f := func(lat, lon float64, p uint8) bool {
		lat = math.Mod(lat, 90)
		lon = math.Mod(lon, 180)
		precision := int(p)%MaxPrecision + 1
		gh := Encode(lat, lon, precision)
		box, err := DecodeBox(gh)
		if err != nil {
			return false
		}
		return box.Contains(lat, lon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeBoxInvalid(t *testing.T) {
	for _, gh := range []string{"", "abc", "9q8il", "9q8o", strings.Repeat("9", 13), "9Q8"} {
		if _, err := DecodeBox(gh); err == nil {
			t.Errorf("DecodeBox(%q) should fail", gh)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate("9q8y7"); err != nil {
		t.Errorf("valid geohash rejected: %v", err)
	}
	if err := Validate("9q8a"); err == nil {
		t.Error("geohash with 'a' accepted")
	}
}

func TestCellSizeHalvesAlternately(t *testing.T) {
	// Each precision step multiplies area by 1/32 (5 bits).
	for p := 1; p < MaxPrecision; p++ {
		w1, h1 := CellSize(p)
		w2, h2 := CellSize(p + 1)
		ratio := (w1 * h1) / (w2 * h2)
		if math.Abs(ratio-32) > 1e-9 {
			t.Errorf("precision %d->%d area ratio = %v, want 32", p, p+1, ratio)
		}
	}
}

// TestPaperNeighbors checks the exact example from the paper (Fig. 1): the 8
// spatial neighbors of 9q8y7.
func TestPaperNeighbors(t *testing.T) {
	got, err := Neighbors("9q8y7")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"9q8yd", "9q8ye", "9q8ys", "9q8yk", "9q8yh", "9q8y5", "9q8y4", "9q8y6"}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d neighbors %v, want %d", len(got), got, len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("neighbors mismatch: got %v want %v", got, want)
			break
		}
	}
}

func TestNeighborDirections(t *testing.T) {
	// 9q8y7's north neighbor per the paper figure is 9q8ye.
	n, ok, err := Neighbor("9q8y7", North)
	if err != nil || !ok {
		t.Fatalf("Neighbor north: %v ok=%v", err, ok)
	}
	if n != "9q8ye" {
		t.Errorf("north of 9q8y7 = %q, want 9q8ye", n)
	}
	s, ok, _ := Neighbor("9q8y7", South)
	if !ok || s != "9q8y5" {
		t.Errorf("south of 9q8y7 = %q, want 9q8y5", s)
	}
}

func TestNeighborWrapsAntimeridian(t *testing.T) {
	gh := Encode(10, 179.99, 4)
	e, ok, err := Neighbor(gh, East)
	if err != nil || !ok {
		t.Fatalf("east neighbor: %v ok=%v", err, ok)
	}
	box, _ := DecodeBox(e)
	if box.MinLon > -180+1 && box.MinLon < 170 {
		t.Errorf("east neighbor of antimeridian tile should wrap, got box %v", box)
	}
}

func TestNeighborPoleStops(t *testing.T) {
	gh := Encode(89.9, 0, 3)
	if _, ok, _ := Neighbor(gh, North); ok {
		t.Error("north neighbor at pole should not exist")
	}
	gh = Encode(-89.9, 0, 3)
	if _, ok, _ := Neighbor(gh, South); ok {
		t.Error("south neighbor at south pole should not exist")
	}
}

func TestNeighborsAreAdjacent(t *testing.T) {
	f := func(lat, lon float64) bool {
		lat = math.Mod(lat, 80) // keep away from poles
		lon = math.Mod(lon, 180)
		gh := Encode(lat, lon, 5)
		box, _ := DecodeBox(gh)
		ns, err := Neighbors(gh)
		if err != nil || len(ns) != 8 {
			return false
		}
		for _, n := range ns {
			nb, err := DecodeBox(n)
			if err != nil {
				return false
			}
			// Neighbor boxes must not overlap gh's box but must touch it
			// (within a tile of distance).
			if nb == box {
				return false
			}
			if box.Intersects(nb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParentChildren(t *testing.T) {
	p, ok := Parent("9q8y7")
	if !ok || p != "9q8y" {
		t.Errorf("Parent(9q8y7) = %q,%v; want 9q8y,true", p, ok)
	}
	if _, ok := Parent("9"); ok {
		t.Error("single-char geohash should have no parent")
	}
	ch := Children("9q8y")
	if len(ch) != 32 {
		t.Fatalf("Children returned %d entries, want 32", len(ch))
	}
	seen := map[string]bool{}
	for _, c := range ch {
		if len(c) != 5 || !strings.HasPrefix(c, "9q8y") {
			t.Errorf("child %q malformed", c)
		}
		if seen[c] {
			t.Errorf("duplicate child %q", c)
		}
		seen[c] = true
	}
	if !seen["9q8y7"] {
		t.Error("9q8y7 should be a child of 9q8y")
	}
}

func TestChildrenNestInParent(t *testing.T) {
	parent := "u4pr"
	pbox, _ := DecodeBox(parent)
	for _, c := range Children(parent) {
		cbox, err := DecodeBox(c)
		if err != nil {
			t.Fatal(err)
		}
		if !pbox.ContainsBox(cbox) {
			t.Errorf("child %q box %v escapes parent box %v", c, cbox, pbox)
		}
	}
}

func TestIsAncestor(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"9q", "9q8y7", true},
		{"9q8y7", "9q", false},
		{"9q8y7", "9q8y7", false},
		{"9r", "9q8y7", false},
	}
	for _, c := range cases {
		if got := IsAncestor(c.a, c.b); got != c.want {
			t.Errorf("IsAncestor(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCoverSingleTile(t *testing.T) {
	box := MustBox("9q8y7")
	// Shrink slightly so we don't touch neighboring tiles.
	eps := 1e-9
	box.MinLat += eps
	box.MinLon += eps
	box.MaxLat -= eps
	box.MaxLon -= eps
	got, err := Cover(box, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "9q8y7" {
		t.Errorf("Cover of own box = %v, want [9q8y7]", got)
	}
}

func TestCoverParentYieldsAllChildren(t *testing.T) {
	box := MustBox("9q8y")
	eps := 1e-9
	box.MaxLat -= eps
	box.MaxLon -= eps
	got, err := Cover(box, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("Cover(parent box, p+1) returned %d tiles, want 32", len(got))
	}
	want := Children("9q8y")
	sort.Strings(got)
	sort.Strings(want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cover mismatch:\n got %v\nwant %v", got, want)
		}
	}
}

func TestCoverTilesIntersectBox(t *testing.T) {
	box := Box{MinLat: 10.1, MaxLat: 14.7, MinLon: -3.2, MaxLon: 2.9}
	tiles, err := Cover(box, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) == 0 {
		t.Fatal("no tiles covering non-empty box")
	}
	for _, gh := range tiles {
		tb, _ := DecodeBox(gh)
		if !tb.Intersects(box) {
			t.Errorf("tile %q %v does not intersect %v", gh, tb, box)
		}
	}
}

func TestCoverCompleteness(t *testing.T) {
	// Every point in the box must land in one of the cover tiles.
	box := Box{MinLat: 33.3, MaxLat: 37.9, MinLon: -101.5, MaxLon: -93.2}
	tiles, err := Cover(box, 4)
	if err != nil {
		t.Fatal(err)
	}
	set := map[string]bool{}
	for _, gh := range tiles {
		set[gh] = true
	}
	for lat := box.MinLat; lat < box.MaxLat; lat += 0.37 {
		for lon := box.MinLon; lon < box.MaxLon; lon += 0.41 {
			gh := Encode(lat, lon, 4)
			if !set[gh] {
				t.Fatalf("point (%v,%v) in tile %q not covered", lat, lon, gh)
			}
		}
	}
}

func TestCoverCountMatchesCover(t *testing.T) {
	boxes := []Box{
		{MinLat: 10.1, MaxLat: 14.7, MinLon: -3.2, MaxLon: 2.9},
		{MinLat: -5, MaxLat: 5, MinLon: -5, MaxLon: 5},
		{MinLat: 40, MaxLat: 40.3, MinLon: -105, MaxLon: -104.5},
	}
	for _, b := range boxes {
		for p := 2; p <= 4; p++ {
			tiles, err := Cover(b, p)
			if err != nil {
				t.Fatal(err)
			}
			n, err := CoverCount(b, p)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(tiles) {
				t.Errorf("CoverCount(%v,%d)=%d but Cover yields %d", b, p, n, len(tiles))
			}
		}
	}
}

func TestCoverInvalidInputs(t *testing.T) {
	if _, err := Cover(Box{MinLat: 5, MaxLat: 1, MinLon: 0, MaxLon: 1}, 3); err == nil {
		t.Error("inverted box accepted")
	}
	if _, err := Cover(World, 0); err == nil {
		t.Error("precision 0 accepted")
	}
	if _, err := CoverCount(World, 13); err == nil {
		t.Error("precision 13 accepted by CoverCount")
	}
}

func TestAntipode(t *testing.T) {
	a, err := Antipode("9q8y7")
	if err != nil {
		t.Fatal(err)
	}
	lat0, lon0, _ := Decode("9q8y7")
	lat1, lon1, _ := Decode(a)
	if math.Abs(lat0+lat1) > 1 {
		t.Errorf("antipode latitude: %v vs %v", lat0, lat1)
	}
	dlon := math.Abs(math.Abs(lon0-lon1) - 180)
	if dlon > 1 {
		t.Errorf("antipode longitude: %v vs %v (delta from 180: %v)", lon0, lon1, dlon)
	}
	if len(a) != len("9q8y7") {
		t.Errorf("antipode precision changed: %q", a)
	}
}

func TestAntipodeInvolution(t *testing.T) {
	f := func(lat, lon float64) bool {
		lat = math.Mod(lat, 85)
		lon = math.Mod(lon, 175)
		gh := Encode(lat, lon, 4)
		a, err := Antipode(gh)
		if err != nil {
			return false
		}
		back, err := Antipode(a)
		if err != nil {
			return false
		}
		// Antipode of antipode must be the original tile or an adjacent one
		// (center quantization can shift by at most one tile).
		if back == gh {
			return true
		}
		ns, _ := Neighbors(gh)
		for _, n := range ns {
			if n == back {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoxIntersection(t *testing.T) {
	a := Box{MinLat: 0, MaxLat: 10, MinLon: 0, MaxLon: 10}
	b := Box{MinLat: 5, MaxLat: 15, MinLon: 5, MaxLon: 15}
	got, ok := a.Intersection(b)
	if !ok {
		t.Fatal("expected overlap")
	}
	want := Box{MinLat: 5, MaxLat: 10, MinLon: 5, MaxLon: 10}
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	c := Box{MinLat: 20, MaxLat: 30, MinLon: 20, MaxLon: 30}
	if _, ok := a.Intersection(c); ok {
		t.Error("disjoint boxes reported overlapping")
	}
	if a.Intersects(c) {
		t.Error("Intersects on disjoint boxes")
	}
}

func TestBoxContainsBox(t *testing.T) {
	outer := Box{MinLat: 0, MaxLat: 10, MinLon: 0, MaxLon: 10}
	inner := Box{MinLat: 2, MaxLat: 8, MinLon: 2, MaxLon: 8}
	if !outer.ContainsBox(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsBox(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.ContainsBox(outer) {
		t.Error("box should contain itself")
	}
}

func TestDirectionString(t *testing.T) {
	if North.String() != "N" || SouthWest.String() != "SW" {
		t.Error("direction names wrong")
	}
	if Direction(99).String() == "" {
		t.Error("out-of-range direction should still format")
	}
}

func TestWorldBoxProperties(t *testing.T) {
	if !World.Valid() {
		t.Error("World box invalid")
	}
	if World.Area() != 360*180 {
		t.Errorf("World area = %v", World.Area())
	}
	if !World.Contains(0, 0) || !World.Contains(-90, -180) {
		t.Error("World should contain globe points")
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(40.0150, -105.2705, 6)
	}
}

func BenchmarkDecodeBox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBox("9xj5smj"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverStateSize(b *testing.B) {
	box := Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cover(box, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCoverBoxSmallerThanTile(t *testing.T) {
	// Regression: a box entirely inside one tile, below the tile's center,
	// must still yield that tile.
	box := Box{MinLat: 35, MaxLat: 35.6, MinLon: -98, MaxLon: -96.8}
	tiles, err := Cover(box, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) == 0 {
		t.Fatal("sub-tile box yielded no cover")
	}
	covered := false
	for _, gh := range tiles {
		if b, _ := DecodeBox(gh); b.Intersects(box) {
			covered = true
		}
	}
	if !covered {
		t.Errorf("cover %v does not intersect box", tiles)
	}
	n, err := CoverCount(box, 2)
	if err != nil || n != len(tiles) {
		t.Errorf("CoverCount = %d,%v want %d", n, err, len(tiles))
	}
}
