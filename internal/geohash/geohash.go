// Package geohash implements the Geohash geocoding system used by STASH to
// label, partition and relate spatial extents.
//
// A geohash is a Base32 string; every additional character multiplies the
// spatial resolution by 32. STASH leans on three algebraic properties of the
// encoding, all provided here:
//
//   - prefix containment: a geohash's bounding box fully encloses the boxes of
//     all geohashes that extend it (hierarchical edges),
//   - adjacency: the 8 same-length neighbors of a geohash tile the immediate
//     spatial neighborhood (lateral edges),
//   - coverage: any query rectangle can be tiled by a finite set of
//     fixed-precision geohashes (query footprint enumeration).
package geohash

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Base32 is the geohash alphabet. Note the absence of a, i, l and o.
const Base32 = "0123456789bcdefghjkmnpqrstuvwxyz"

// MaxPrecision is the longest geohash this package produces or accepts. A
// 12-character geohash is ~3.7cm x 1.9cm at the equator, far below anything a
// visual-analytics workload requests.
const MaxPrecision = 12

// BranchFactor is the number of children a geohash splits into when its
// precision increases by one (the paper's "32 nested Geohashes").
const BranchFactor = 32

var base32Index = func() [128]int8 {
	var idx [128]int8
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < len(Base32); i++ {
		idx[Base32[i]] = int8(i)
	}
	return idx
}()

// ErrInvalid reports a malformed geohash string.
var ErrInvalid = errors.New("geohash: invalid geohash")

// Box is a latitude/longitude bounding box. Min bounds are inclusive, max
// bounds are exclusive (except at the +90/+180 edges of the globe), matching
// how geohash tiles partition the globe without overlap.
type Box struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

// Center returns the center point of the box.
func (b Box) Center() (lat, lon float64) {
	return (b.MinLat + b.MaxLat) / 2, (b.MinLon + b.MaxLon) / 2
}

// Width returns the longitudinal extent of the box in degrees.
func (b Box) Width() float64 { return b.MaxLon - b.MinLon }

// Height returns the latitudinal extent of the box in degrees.
func (b Box) Height() float64 { return b.MaxLat - b.MinLat }

// Area returns the box area in square degrees. It is a planar approximation,
// used only to compare relative query footprints.
func (b Box) Area() float64 { return b.Width() * b.Height() }

// Contains reports whether the point lies inside the box.
func (b Box) Contains(lat, lon float64) bool {
	return lat >= b.MinLat && lat < b.MaxLat && lon >= b.MinLon && lon < b.MaxLon
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	return o.MinLat >= b.MinLat && o.MaxLat <= b.MaxLat &&
		o.MinLon >= b.MinLon && o.MaxLon <= b.MaxLon
}

// Intersects reports whether the two boxes share any area.
func (b Box) Intersects(o Box) bool {
	return b.MinLat < o.MaxLat && o.MinLat < b.MaxLat &&
		b.MinLon < o.MaxLon && o.MinLon < b.MaxLon
}

// Intersection returns the overlapping region of two boxes and whether any
// overlap exists.
func (b Box) Intersection(o Box) (Box, bool) {
	r := Box{
		MinLat: math.Max(b.MinLat, o.MinLat),
		MaxLat: math.Min(b.MaxLat, o.MaxLat),
		MinLon: math.Max(b.MinLon, o.MinLon),
		MaxLon: math.Min(b.MaxLon, o.MaxLon),
	}
	if r.MinLat >= r.MaxLat || r.MinLon >= r.MaxLon {
		return Box{}, false
	}
	return r, true
}

// Clamp restricts the box to valid globe coordinates.
func (b Box) Clamp() Box {
	b.MinLat = math.Max(b.MinLat, -90)
	b.MaxLat = math.Min(b.MaxLat, 90)
	b.MinLon = math.Max(b.MinLon, -180)
	b.MaxLon = math.Min(b.MaxLon, 180)
	return b
}

// Valid reports whether the box has positive area and lies on the globe.
func (b Box) Valid() bool {
	return b.MinLat < b.MaxLat && b.MinLon < b.MaxLon &&
		b.MinLat >= -90 && b.MaxLat <= 90 && b.MinLon >= -180 && b.MaxLon <= 180
}

func (b Box) String() string {
	return fmt.Sprintf("[%.5f,%.5f]x[%.5f,%.5f]", b.MinLat, b.MaxLat, b.MinLon, b.MaxLon)
}

// World is the bounding box of the entire globe.
var World = Box{MinLat: -90, MaxLat: 90, MinLon: -180, MaxLon: 180}

// bits returns the number of longitude and latitude bits at the given
// precision. Geohash interleaves bits starting with longitude, so odd total
// bit counts give longitude one extra bit.
func bits(precision int) (lonBits, latBits int) {
	total := 5 * precision
	lonBits = (total + 1) / 2
	latBits = total / 2
	return
}

// CellSize returns the width (degrees longitude) and height (degrees
// latitude) of a geohash tile at the given precision.
func CellSize(precision int) (width, height float64) {
	lonBits, latBits := bits(precision)
	return 360 / math.Pow(2, float64(lonBits)), 180 / math.Pow(2, float64(latBits))
}

// Encode returns the geohash of the given point at the given precision.
// Latitude is clamped to [-90,90); longitude is wrapped into [-180,180).
func Encode(lat, lon float64, precision int) string {
	if precision < 1 {
		precision = 1
	}
	if precision > MaxPrecision {
		precision = MaxPrecision
	}
	lat = clampLat(lat)
	lon = wrapLon(lon)

	var sb strings.Builder
	sb.Grow(precision)
	latLo, latHi := -90.0, 90.0
	lonLo, lonHi := -180.0, 180.0
	even := true // longitude bit first
	var ch, bit int
	for sb.Len() < precision {
		if even {
			mid := (lonLo + lonHi) / 2
			if lon >= mid {
				ch = ch<<1 | 1
				lonLo = mid
			} else {
				ch <<= 1
				lonHi = mid
			}
		} else {
			mid := (latLo + latHi) / 2
			if lat >= mid {
				ch = ch<<1 | 1
				latLo = mid
			} else {
				ch <<= 1
				latHi = mid
			}
		}
		even = !even
		bit++
		if bit == 5 {
			sb.WriteByte(Base32[ch])
			ch, bit = 0, 0
		}
	}
	return sb.String()
}

// DecodeBox returns the bounding box of the geohash.
func DecodeBox(gh string) (Box, error) {
	if len(gh) == 0 || len(gh) > MaxPrecision {
		return Box{}, fmt.Errorf("%w: %q", ErrInvalid, gh)
	}
	latLo, latHi := -90.0, 90.0
	lonLo, lonHi := -180.0, 180.0
	even := true
	for i := 0; i < len(gh); i++ {
		c := gh[i]
		if c >= 128 || base32Index[c] < 0 {
			return Box{}, fmt.Errorf("%w: %q has invalid character %q", ErrInvalid, gh, c)
		}
		v := base32Index[c]
		for mask := int8(16); mask > 0; mask >>= 1 {
			if even {
				mid := (lonLo + lonHi) / 2
				if v&mask != 0 {
					lonLo = mid
				} else {
					lonHi = mid
				}
			} else {
				mid := (latLo + latHi) / 2
				if v&mask != 0 {
					latLo = mid
				} else {
					latHi = mid
				}
			}
			even = !even
		}
	}
	return Box{MinLat: latLo, MaxLat: latHi, MinLon: lonLo, MaxLon: lonHi}, nil
}

// MustBox is DecodeBox for geohashes known to be valid; it panics otherwise.
// Intended for literals in tests and examples.
func MustBox(gh string) Box {
	b, err := DecodeBox(gh)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode returns the center point of the geohash's bounding box.
func Decode(gh string) (lat, lon float64, err error) {
	b, err := DecodeBox(gh)
	if err != nil {
		return 0, 0, err
	}
	lat, lon = b.Center()
	return lat, lon, nil
}

// Validate reports whether gh is a well-formed geohash.
func Validate(gh string) error {
	_, err := DecodeBox(gh)
	return err
}

// Direction identifies one of the eight compass neighbors of a geohash tile.
type Direction int

// The eight compass directions, clockwise from north.
const (
	North Direction = iota
	NorthEast
	East
	SouthEast
	South
	SouthWest
	West
	NorthWest
	numDirections
)

var directionNames = [...]string{"N", "NE", "E", "SE", "S", "SW", "W", "NW"}

func (d Direction) String() string {
	if d < 0 || int(d) >= len(directionNames) {
		return fmt.Sprintf("Direction(%d)", int(d))
	}
	return directionNames[d]
}

// Offsets returns the (latSteps, lonSteps) displacement of the direction in
// units of one tile.
func (d Direction) Offsets() (dLat, dLon int) {
	switch d {
	case North:
		return 1, 0
	case NorthEast:
		return 1, 1
	case East:
		return 0, 1
	case SouthEast:
		return -1, 1
	case South:
		return -1, 0
	case SouthWest:
		return -1, -1
	case West:
		return 0, -1
	case NorthWest:
		return 1, -1
	}
	return 0, 0
}

// Directions lists all eight compass directions, clockwise from north.
func Directions() []Direction {
	ds := make([]Direction, numDirections)
	for i := range ds {
		ds[i] = Direction(i)
	}
	return ds
}

// Neighbor returns the same-precision geohash adjacent to gh in the given
// direction. Longitude wraps around the antimeridian. Stepping past a pole
// returns ok=false (the tile has no neighbor in that direction).
func Neighbor(gh string, d Direction) (string, bool, error) {
	b, err := DecodeBox(gh)
	if err != nil {
		return "", false, err
	}
	dLat, dLon := d.Offsets()
	lat, lon := b.Center()
	lat += float64(dLat) * b.Height()
	lon += float64(dLon) * b.Width()
	if lat >= 90 || lat < -90 {
		return "", false, nil
	}
	return Encode(lat, wrapLon(lon), len(gh)), true, nil
}

// Neighbors returns the up-to-8 same-precision neighbors of gh, clockwise
// from north. Tiles at a pole have fewer than 8.
func Neighbors(gh string) ([]string, error) {
	out := make([]string, 0, 8)
	for _, d := range Directions() {
		n, ok, err := Neighbor(gh, d)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, n)
		}
	}
	return out, nil
}

// Parent returns the geohash one spatial resolution coarser (the enclosing
// tile). ok is false for single-character geohashes, which have no parent.
func Parent(gh string) (string, bool) {
	if len(gh) <= 1 {
		return "", false
	}
	return gh[:len(gh)-1], true
}

// Children returns the 32 geohashes one spatial resolution finer that tile
// gh, in Base32 order.
func Children(gh string) []string {
	out := make([]string, BranchFactor)
	for i := 0; i < BranchFactor; i++ {
		out[i] = gh + string(Base32[i])
	}
	return out
}

// IsAncestor reports whether a is a strict spatial ancestor of b (a encloses
// b and is coarser).
func IsAncestor(a, b string) bool {
	return len(a) < len(b) && strings.HasPrefix(b, a)
}

// Cover returns the set of geohashes at the given precision whose tiles
// intersect the box, in row-major (south-to-north, west-to-east) order. The
// box is clamped to the globe. Boxes spanning the antimeridian are not
// supported (callers split them first); such boxes yield ErrInvalid.
func Cover(b Box, precision int) ([]string, error) {
	b = b.Clamp()
	if !b.Valid() {
		return nil, fmt.Errorf("%w: cover box %v", ErrInvalid, b)
	}
	if precision < 1 || precision > MaxPrecision {
		return nil, fmt.Errorf("%w: cover precision %d", ErrInvalid, precision)
	}
	w, h := CellSize(precision)
	// Anchor the walk on tile centers so floating-point drift cannot skip a
	// row or column.
	first, err := DecodeBox(Encode(b.MinLat, b.MinLon, precision))
	if err != nil {
		return nil, err
	}
	// Walk tile minimums (not centers): a box smaller than one tile must
	// still yield the tile that contains it.
	var out []string
	for latMin := first.MinLat; latMin < b.MaxLat && latMin < 90; latMin += h {
		for lonMin := first.MinLon; lonMin < b.MaxLon && lonMin < 180; lonMin += w {
			out = append(out, Encode(latMin+h/2, lonMin+w/2, precision))
		}
	}
	return out, nil
}

// CoverCount returns the number of tiles Cover would produce without
// materializing them. Useful for query planning and admission control.
func CoverCount(b Box, precision int) (int, error) {
	b = b.Clamp()
	if !b.Valid() {
		return 0, fmt.Errorf("%w: cover box %v", ErrInvalid, b)
	}
	if precision < 1 || precision > MaxPrecision {
		return 0, fmt.Errorf("%w: cover precision %d", ErrInvalid, precision)
	}
	w, h := CellSize(precision)
	first, err := DecodeBox(Encode(b.MinLat, b.MinLon, precision))
	if err != nil {
		return 0, err
	}
	rows := 0
	for latMin := first.MinLat; latMin < b.MaxLat && latMin < 90; latMin += h {
		rows++
	}
	cols := 0
	for lonMin := first.MinLon; lonMin < b.MaxLon && lonMin < 180; lonMin += w {
		cols++
	}
	return rows * cols, nil
}

// Antipode returns the geohash of the point diametrically opposite gh's
// center, at the same precision. STASH uses this to pick the helper node
// "most isolated" from a hotspotted region (paper §VII-B3).
func Antipode(gh string) (string, error) {
	lat, lon, err := Decode(gh)
	if err != nil {
		return "", err
	}
	return Encode(-lat, wrapLon(lon+180), len(gh)), nil
}

func clampLat(lat float64) float64 {
	if lat >= 90 {
		return math.Nextafter(90, 0)
	}
	if lat < -90 {
		return -90
	}
	return lat
}

func wrapLon(lon float64) float64 {
	if lon >= -180 && lon < 180 {
		return lon
	}
	// math.Mod, not repeated subtraction: for |lon| beyond ~2^53 a loop of
	// "lon -= 360" never changes the value and would spin forever (found by
	// FuzzEncodeDecodeRoundTrip).
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}
