package geohash

import (
	"math"
	"strings"
	"testing"
)

// The fuzz targets below double as property tests: `go test` runs them over
// the checked-in seed corpus (the f.Add calls), and `go test -fuzz=...`
// explores beyond it. The seeds pin every boundary that has bitten once:
// poles, antimeridian, degenerate precision, and the astronomically large
// longitude that used to hang wrapLon's subtraction loop.

// FuzzEncodeDecodeRoundTrip checks the core invariants of Encode/DecodeBox:
// output shape, canonical re-encoding of the cell center, containment of the
// (clamped, wrapped) input point, and parent-box nesting.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	seeds := []struct {
		lat, lon float64
		prec     int
	}{
		{0, 0, 1},
		{57.64911, 10.40744, 11}, // the classic geohash example
		{90, 180, 12},            // both coordinates on their wrap boundary
		{-90, -180, 12},
		{29.7604, -95.3698, 6}, // Houston, the paper's NOAA hotspot
		{-33.8688, 151.2093, 8},
		{89.999999999, 179.999999999, 12},
		{1e300, -1e300, 7},  // used to hang wrapLon before the math.Mod fix
		{12.5, 400.25, 5},   // multiple wraps
		{0, 0, -3},          // precision below range: clamps to 1
		{37.8, -122.4, 100}, // precision above range: clamps to MaxPrecision
	}
	for _, s := range seeds {
		f.Add(s.lat, s.lon, s.prec)
	}
	f.Fuzz(func(t *testing.T, lat, lon float64, prec int) {
		gh := Encode(lat, lon, prec)

		wantLen := prec
		if wantLen < 1 {
			wantLen = 1
		}
		if wantLen > MaxPrecision {
			wantLen = MaxPrecision
		}
		if len(gh) != wantLen {
			t.Fatalf("Encode(%v, %v, %d) = %q: length %d, want %d", lat, lon, prec, gh, len(gh), wantLen)
		}
		if err := Validate(gh); err != nil {
			t.Fatalf("Encode(%v, %v, %d) produced invalid geohash %q: %v", lat, lon, prec, gh, err)
		}
		box, err := DecodeBox(gh)
		if err != nil {
			t.Fatalf("DecodeBox(%q): %v", gh, err)
		}
		if !box.Valid() {
			t.Fatalf("DecodeBox(%q) = %v: invalid box", gh, box)
		}

		// The cell center must re-encode to the same geohash: the encoding
		// is canonical per cell.
		cLat, cLon := box.Center()
		if got := Encode(cLat, cLon, len(gh)); got != gh {
			t.Errorf("center of %q re-encodes to %q", gh, got)
		}

		// For finite inputs, the encoded cell must contain the point Encode
		// actually used (after clamping/wrapping).
		if !math.IsNaN(lat) && !math.IsInf(lat, 0) && !math.IsNaN(lon) && !math.IsInf(lon, 0) {
			la, lo := clampLat(lat), wrapLon(lon)
			if !box.Contains(la, lo) {
				t.Errorf("cell %q %v does not contain encoded point (%v, %v)", gh, box, la, lo)
			}
		}

		// Parent is a one-shorter prefix whose box contains ours.
		if p, ok := Parent(gh); ok {
			if len(p) != len(gh)-1 || !strings.HasPrefix(gh, p) {
				t.Fatalf("Parent(%q) = %q: not a one-shorter prefix", gh, p)
			}
			pb, err := DecodeBox(p)
			if err != nil {
				t.Fatalf("DecodeBox(parent %q): %v", p, err)
			}
			if !pb.ContainsBox(box) {
				t.Errorf("parent box %v does not contain child box %v", pb, box)
			}
			if !IsAncestor(p, gh) {
				t.Errorf("IsAncestor(%q, %q) = false for a direct parent", p, gh)
			}
		}

		// Children invert Parent: every child of gh names gh as its parent.
		if len(gh) < MaxPrecision {
			kids := Children(gh)
			if len(kids) != 32 {
				t.Fatalf("Children(%q) returned %d entries, want 32", gh, len(kids))
			}
			for _, k := range kids {
				if p, ok := Parent(k); !ok || p != gh {
					t.Fatalf("Parent(Children(%q)) = %q, want %q", gh, p, gh)
				}
			}
		}
	})
}

// FuzzValidate feeds arbitrary strings through Validate: it must never
// panic, and any string it accepts must be a canonical geohash (DecodeBox
// succeeds and the center re-encodes to the identical string).
func FuzzValidate(f *testing.F) {
	for _, s := range []string{
		"", "9", "9v", "ezs42", "9vk41hm", // valid
		"9V", "EZS42", // uppercase is not canonical
		"a", "i", "l", "o", // the four letters base32 excludes
		"9v k4", "近", "\x00\xff",
		strings.Repeat("z", 12), // max precision, near-pole corner
		strings.Repeat("9", 13), // one past MaxPrecision
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if err := Validate(s); err != nil {
			return // rejection is always acceptable; absence of panic is the property
		}
		box, err := DecodeBox(s)
		if err != nil {
			t.Fatalf("Validate accepted %q but DecodeBox rejects it: %v", s, err)
		}
		lat, lon := box.Center()
		if got := Encode(lat, lon, len(s)); got != s {
			t.Errorf("accepted geohash %q is not canonical: center re-encodes to %q", s, got)
		}
	})
}

// FuzzCover cross-checks Cover against CoverCount on arbitrary boxes: both
// must agree on validity, the count must match, and every produced tile must
// be unique, at the requested precision, and intersect the clamped box.
func FuzzCover(f *testing.F) {
	seeds := []struct {
		minLat, maxLat, minLon, maxLon float64
		prec                           int
	}{
		{30, 40, -100, -90, 3},          // the chaos suite's country box
		{0, 0.1, 0, 0.1, 5},             // city-scale
		{-90, 90, -180, 180, 1},         // the whole world at minimum precision
		{35, 35.0001, -98, -97.9999, 7}, // box smaller than one tile
		{89, 90, 179, 180, 4},           // pole + antimeridian corner
		{40, 30, -90, -100, 3},          // inverted: must be rejected
		{30, 40, -100, -90, 0},          // precision out of range
	}
	for _, s := range seeds {
		f.Add(s.minLat, s.maxLat, s.minLon, s.maxLon, s.prec)
	}
	f.Fuzz(func(t *testing.T, minLat, maxLat, minLon, maxLon float64, prec int) {
		b := Box{MinLat: minLat, MaxLat: maxLat, MinLon: minLon, MaxLon: maxLon}
		n, err := CoverCount(b, prec)
		if err != nil {
			if _, terr := Cover(b, prec); terr == nil {
				t.Fatalf("CoverCount(%v, %d) errored (%v) but Cover succeeded", b, prec, err)
			}
			return
		}
		if n > 4096 {
			t.Skip("covering too large to materialize in a fuzz iteration")
		}
		tiles, terr := Cover(b, prec)
		if terr != nil {
			t.Fatalf("CoverCount(%v, %d) = %d but Cover errored: %v", b, prec, n, terr)
		}
		if len(tiles) != n {
			t.Fatalf("CoverCount %d != len(Cover) %d for %v @%d", n, len(tiles), b, prec)
		}
		cb := b.Clamp()
		seen := make(map[string]bool, len(tiles))
		for _, gh := range tiles {
			if len(gh) != prec {
				t.Fatalf("tile %q has precision %d, want %d", gh, len(gh), prec)
			}
			if seen[gh] {
				t.Fatalf("duplicate tile %q in covering of %v @%d", gh, b, prec)
			}
			seen[gh] = true
			tb, err := DecodeBox(gh)
			if err != nil {
				t.Fatalf("covering produced invalid tile %q: %v", gh, err)
			}
			if !tb.Intersects(cb) {
				t.Errorf("tile %q %v does not intersect box %v", gh, tb, cb)
			}
		}
	})
}

// FuzzCoverPolygonSubset checks the lasso-query invariant the planner relies
// on: a polygon's covering is always a subset of its bounding box's covering
// (a polygon can only exclude tiles, never add them).
func FuzzCoverPolygonSubset(f *testing.F) {
	seeds := []struct {
		lat1, lon1, lat2, lon2, lat3, lon3 float64
		prec                               int
	}{
		{34, -100, 38, -97, 34, -94, 3}, // the README's lasso triangle
		{0, 0, 10, 10, 0, 10, 2},
		{-1, -1, 1, 0, -1, 1, 6},        // sliver triangle
		{89, -180, 89.9, 0, 89, 180, 2}, // polar cap sweep
		{34, -100, 34, -97, 34, -94, 3}, // degenerate (collinear): must be rejected
	}
	for _, s := range seeds {
		f.Add(s.lat1, s.lon1, s.lat2, s.lon2, s.lat3, s.lon3, s.prec)
	}
	f.Fuzz(func(t *testing.T, lat1, lon1, lat2, lon2, lat3, lon3 float64, prec int) {
		p := Polygon{{Lat: lat1, Lon: lon1}, {Lat: lat2, Lon: lon2}, {Lat: lat3, Lon: lon3}}
		if p.Validate() != nil {
			return
		}
		bb := p.BoundingBox()
		n, err := CoverCount(bb, prec)
		if err != nil {
			if _, perr := CoverPolygon(p, prec); perr == nil {
				t.Fatalf("bbox covering of %v @%d invalid (%v) but CoverPolygon succeeded", p, prec, err)
			}
			return
		}
		if n > 4096 {
			t.Skip("covering too large to materialize in a fuzz iteration")
		}
		boxTiles, err := Cover(bb, prec)
		if err != nil {
			t.Fatalf("Cover(bbox %v, %d): %v", bb, prec, err)
		}
		inBox := make(map[string]bool, len(boxTiles))
		for _, gh := range boxTiles {
			inBox[gh] = true
		}
		polyTiles, err := CoverPolygon(p, prec)
		if err != nil {
			t.Fatalf("CoverPolygon(%v, %d): %v", p, prec, err)
		}
		for _, gh := range polyTiles {
			if !inBox[gh] {
				t.Errorf("polygon tile %q not in bounding-box covering of %v @%d", gh, p, prec)
			}
		}
		if len(polyTiles) > len(boxTiles) {
			t.Errorf("polygon covering (%d tiles) larger than bbox covering (%d)", len(polyTiles), len(boxTiles))
		}
	})
}

// TestWrapLonExtremeValues pins the wrapLon hang regression directly: values
// so large that subtracting 360 is a floating-point no-op must still wrap
// (and Encode must terminate).
func TestWrapLonExtremeValues(t *testing.T) {
	for _, lon := range []float64{1e300, -1e300, math.MaxFloat64, -math.MaxFloat64, 1e17, 540, -540, 180, -180.000001} {
		got := wrapLon(lon)
		if !(got >= -180 && got < 180) && !math.IsNaN(got) {
			t.Errorf("wrapLon(%v) = %v, outside [-180, 180)", lon, got)
		}
	}
	// This call looped forever before wrapLon used math.Mod.
	if gh := Encode(0, 1e300, 5); len(gh) != 5 {
		t.Errorf("Encode with huge longitude returned %q", gh)
	}
	if gh := Encode(12.5, 400.25, 5); gh != Encode(12.5, 40.25, 5) {
		t.Errorf("wrapLon(400.25) disagrees with 40.25: %q", gh)
	}
}
