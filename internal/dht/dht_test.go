package dht

import (
	"testing"
	"testing/quick"

	"stash/internal/geohash"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0, 2); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewRing(-3, 2); err == nil {
		t.Error("negative nodes accepted")
	}
	if _, err := NewRing(4, 99); err == nil {
		t.Error("absurd prefix length accepted")
	}
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.PrefixLen() != DefaultPrefixLen {
		t.Errorf("default prefix length = %d", r.PrefixLen())
	}
}

func TestRingSizeAndNodes(t *testing.T) {
	r, err := NewRing(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 5 {
		t.Errorf("Size = %d", r.Size())
	}
	ns := r.Nodes()
	if len(ns) != 5 {
		t.Fatalf("Nodes = %v", ns)
	}
	for i, id := range ns {
		if int(id) != i {
			t.Errorf("node %d has id %v", i, id)
		}
	}
	// Returned slice must be a copy.
	ns[0] = 99
	if r.Nodes()[0] == 99 {
		t.Error("Nodes exposes internal slice")
	}
}

func TestPartitionKey(t *testing.T) {
	r, _ := NewRing(3, 2)
	if got := r.Partition("9q8y7"); got != "9q" {
		t.Errorf("Partition(9q8y7) = %q", got)
	}
	if got := r.Partition("9"); got != "9" {
		t.Errorf("short geohash partition = %q", got)
	}
	if got := r.Partition("9q"); got != "9q" {
		t.Errorf("exact-length partition = %q", got)
	}
}

func TestOwnerDeterministicAcrossRings(t *testing.T) {
	// Zero-hop property: two independently built rings with identical
	// membership must agree on every owner, with no coordination.
	a, _ := NewRing(120, 2)
	b, _ := NewRing(120, 2)
	for _, gh := range []string{"9q8y7", "u4pru", "dr5rs", "000", "zzzz"} {
		if a.Owner(gh) != b.Owner(gh) {
			t.Errorf("rings disagree on owner of %q", gh)
		}
	}
}

func TestOwnerSamePrefixSameNode(t *testing.T) {
	r, _ := NewRing(16, 2)
	f := func(suffixSel []uint8) bool {
		gh := "9q"
		for _, s := range suffixSel {
			gh += string(geohash.Base32[int(s)%32])
			if len(gh) >= 8 {
				break
			}
		}
		return r.Owner(gh) == r.Owner("9q")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOwnerInRange(t *testing.T) {
	r, _ := NewRing(7, 2)
	for _, p := range r.Partitions()[:100] {
		id := r.OwnerOfPartition(p)
		if id < 0 || int(id) >= r.Size() {
			t.Fatalf("owner of %q out of range: %v", p, id)
		}
	}
}

func TestPartitionsCount(t *testing.T) {
	r, _ := NewRing(3, 2)
	if got := len(r.Partitions()); got != 1024 {
		t.Errorf("2-char partitions = %d, want 32*32 = 1024", got)
	}
	r1, _ := NewRing(3, 1)
	if got := len(r1.Partitions()); got != 32 {
		t.Errorf("1-char partitions = %d, want 32", got)
	}
}

func TestPartitionsOfCoversAllDisjointly(t *testing.T) {
	r, _ := NewRing(6, 1)
	seen := map[string]NodeID{}
	total := 0
	for _, id := range r.Nodes() {
		for _, p := range r.PartitionsOf(id) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("partition %q assigned to both %v and %v", p, prev, id)
			}
			seen[p] = id
			total++
		}
	}
	if total != 32 {
		t.Errorf("assigned partitions = %d, want 32", total)
	}
}

func TestBalanceAcrossNodes(t *testing.T) {
	// With 1024 partitions over 16 nodes and 64 vnodes each, no node should
	// be grossly over- or under-loaded.
	r, _ := NewRing(16, 2)
	counts := map[NodeID]int{}
	for _, p := range r.Partitions() {
		counts[r.OwnerOfPartition(p)]++
	}
	want := 1024 / 16
	for id, c := range counts {
		if c < want/4 || c > want*4 {
			t.Errorf("node %v owns %d partitions, expected near %d", id, c, want)
		}
	}
	if len(counts) != 16 {
		t.Errorf("only %d/16 nodes own partitions", len(counts))
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r, _ := NewRing(1, 2)
	for _, gh := range []string{"9q8y7", "u4", "z"} {
		if r.Owner(gh) != 0 {
			t.Errorf("single-node ring routed %q to %v", gh, r.Owner(gh))
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(3).String() != "node-3" {
		t.Errorf("NodeID.String = %q", NodeID(3).String())
	}
}

func BenchmarkOwner(b *testing.B) {
	r, _ := NewRing(120, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner("9q8y7zzz")
	}
}
