package dht

import "fmt"

// View is an epoch-versioned snapshot of cluster membership: the partition
// ring plus a monotonically increasing epoch. Views are immutable; AddNode
// and RemoveNode return a fresh View at epoch+1 together with the diff of
// partition ownership moves, which is exactly the work list the membership
// controller must hand off before the new epoch may serve traffic.
//
// Consistent hashing bounds that work list: a join claims ~1/(n+1) of the
// key space from the incumbents (Ji et al.'s condition for hit rates
// surviving churn), and a leave moves only the departing node's arc.
type View struct {
	ring  *Ring
	epoch uint64
}

// Move records one partition whose owner changed between two consecutive
// views. From is the owner in the old view, To in the new. A join produces
// moves with To = the new node; a leave produces moves with From = the
// departed node.
type Move struct {
	Partition string
	From, To  NodeID
}

// NewView wraps a ring as epoch-1 membership (epoch 0 is reserved as "no
// view", so a zero-valued epoch field is never a valid route).
func NewView(r *Ring) *View {
	return &View{ring: r, epoch: 1}
}

// Ring returns the view's partition ring.
func (v *View) Ring() *Ring { return v.ring }

// Epoch returns the view's membership epoch.
func (v *View) Epoch() uint64 { return v.epoch }

// Contains reports whether id is a member of this view.
func (v *View) Contains(id NodeID) bool {
	for _, n := range v.ring.nodes {
		if n == id {
			return true
		}
	}
	return false
}

// AddNode returns a new view at epoch+1 whose ring includes id, plus the
// partitions that move to the joiner. Every move's To is id: adding vnodes
// can only claim hash-space arcs, never shuffle ownership between incumbents.
func (v *View) AddNode(id NodeID) (*View, []Move, error) {
	if v.Contains(id) {
		return nil, nil, fmt.Errorf("dht: node %v already in view", id)
	}
	nodes := append(v.ring.Nodes(), id)
	next, err := NewRingFromNodes(nodes, v.ring.prefixLen)
	if err != nil {
		return nil, nil, err
	}
	return v.succeed(next)
}

// RemoveNode returns a new view at epoch+1 whose ring excludes id, plus the
// partitions that leave it. Every move's From is id: removing vnodes only
// releases the departed node's arcs to their hash-space successors.
func (v *View) RemoveNode(id NodeID) (*View, []Move, error) {
	if !v.Contains(id) {
		return nil, nil, fmt.Errorf("dht: node %v not in view", id)
	}
	if v.ring.Size() == 1 {
		return nil, nil, ErrNoNodes
	}
	nodes := make([]NodeID, 0, v.ring.Size()-1)
	for _, n := range v.ring.nodes {
		if n != id {
			nodes = append(nodes, n)
		}
	}
	next, err := NewRingFromNodes(nodes, v.ring.prefixLen)
	if err != nil {
		return nil, nil, err
	}
	return v.succeed(next)
}

func (v *View) succeed(next *Ring) (*View, []Move, error) {
	return &View{ring: next, epoch: v.epoch + 1}, Diff(v.ring, next), nil
}

// Diff enumerates the partitions whose owner differs between two rings. With
// the default 2-character prefix this walks 1024 partitions — a handful of
// microseconds, paid once per membership change, never on the serve path.
func Diff(old, next *Ring) []Move {
	var moves []Move
	for _, p := range old.Partitions() {
		from := old.ownerOfKey(p)
		to := next.ownerOfKey(p)
		if from != to {
			moves = append(moves, Move{Partition: p, From: from, To: to})
		}
	}
	return moves
}
