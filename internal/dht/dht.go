// Package dht implements the zero-hop distributed hash table that both
// Galileo (the backing store) and STASH (the cache) use to place and locate
// spatiotemporal data (paper §IV-D, §VI-C).
//
// "Zero-hop" means every node holds the complete partition map, so locating
// the owner of any geohash costs a single local lookup — the paper's O(1)
// data-discovery claim. Placement is by geohash prefix: all data whose
// geohash shares the first PrefixLen characters lands on the same node,
// preserving spatial locality within a partition.
package dht

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"stash/internal/geohash"
)

// DefaultPrefixLen is the partitioning prefix length used throughout the
// paper's evaluation ("partitioned uniformly over the cluster based on the
// first 2 characters of their Geohash").
const DefaultPrefixLen = 2

// ErrNoNodes reports a ring constructed without members.
var ErrNoNodes = errors.New("dht: ring has no nodes")

// NodeID identifies a cluster member.
type NodeID int

// nodeLabels caches the formatted form of the low IDs, which are the only
// ones that exist in practice (clusters are built 0..n-1 and joins extend
// from there). String() sits on the metrics/profile attribution hot path, so
// the common case must not format.
var nodeLabels = func() [1024]string {
	var a [1024]string
	for i := range a {
		a[i] = "node-" + strconv.Itoa(i)
	}
	return a
}()

func (n NodeID) String() string {
	if n >= 0 && int(n) < len(nodeLabels) {
		return nodeLabels[n]
	}
	return "node-" + strconv.Itoa(int(n))
}

// Ring is the shared partition map. It is immutable after construction, so
// every node can hold the same value and route without coordination.
type Ring struct {
	nodes     []NodeID
	prefixLen int
	// vnodes maps hash-space positions to nodes (consistent hashing with
	// virtual nodes, so partitions spread evenly even for small clusters).
	vnodeKeys   []uint64
	vnodeOwners []NodeID
}

const vnodesPerNode = 64

// NewRing builds a ring of n nodes (IDs 0..n-1) partitioning on prefixLen
// geohash characters. prefixLen <= 0 selects DefaultPrefixLen.
func NewRing(n, prefixLen int) (*Ring, error) {
	if n <= 0 {
		return nil, ErrNoNodes
	}
	nodes := make([]NodeID, n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	return NewRingFromNodes(nodes, prefixLen)
}

// NewRingFromNodes builds a ring over an arbitrary (non-empty, duplicate-free)
// node set. Membership changes produce node sets that are neither contiguous
// nor zero-based — a join appends a fresh ID, a leave punches a hole — so the
// elastic layer constructs its rings through this entry point. The vnode
// placement of a given NodeID depends only on that ID, never on the rest of
// the set, which is what bounds key movement under churn to the departing or
// arriving node's arc.
func NewRingFromNodes(nodes []NodeID, prefixLen int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	if prefixLen <= 0 {
		prefixLen = DefaultPrefixLen
	}
	if prefixLen > geohash.MaxPrecision {
		return nil, fmt.Errorf("dht: prefix length %d exceeds max geohash precision", prefixLen)
	}
	r := &Ring{prefixLen: prefixLen}
	r.nodes = make([]NodeID, len(nodes))
	copy(r.nodes, nodes)
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i] < r.nodes[j] })
	for i := 1; i < len(r.nodes); i++ {
		if r.nodes[i] == r.nodes[i-1] {
			return nil, fmt.Errorf("dht: duplicate node id %v", r.nodes[i])
		}
	}
	type vn struct {
		key   uint64
		owner NodeID
	}
	vns := make([]vn, 0, len(r.nodes)*vnodesPerNode)
	// One reusable buffer for every vnode key: "vnode-<id>-<v>" assembled
	// with strconv.AppendInt instead of a fmt.Sprintf allocation per vnode
	// (64 per node; see BenchmarkNewRing).
	buf := make([]byte, 0, 32)
	for _, id := range r.nodes {
		buf = buf[:0]
		buf = append(buf, "vnode-"...)
		buf = strconv.AppendInt(buf, int64(id), 10)
		buf = append(buf, '-')
		prefix := len(buf)
		for v := 0; v < vnodesPerNode; v++ {
			buf = strconv.AppendInt(buf[:prefix], int64(v), 10)
			vns = append(vns, vn{key: hash64Bytes(buf), owner: id})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].key != vns[j].key {
			return vns[i].key < vns[j].key
		}
		return vns[i].owner < vns[j].owner
	})
	r.vnodeKeys = make([]uint64, len(vns))
	r.vnodeOwners = make([]NodeID, len(vns))
	for i, v := range vns {
		r.vnodeKeys[i] = v.key
		r.vnodeOwners[i] = v.owner
	}
	// Placement topology of the most recently built ring: membership changes
	// install a whole new ring, so last-writer-wins is the correct exposition.
	mNodes.Set(int64(len(r.nodes)))
	mPlacements.Add(int64(len(vns)))
	return r, nil
}

// Size returns the number of nodes in the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes returns all node IDs in ascending order.
func (r *Ring) Nodes() []NodeID {
	out := make([]NodeID, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// PrefixLen returns the geohash partitioning prefix length.
func (r *Ring) PrefixLen() int { return r.prefixLen }

// Partition returns the partition key (geohash prefix) that owns the given
// geohash. Geohashes shorter than the prefix length partition on their full
// string, so coarse cells still have a well-defined owner.
func (r *Ring) Partition(gh string) string {
	if len(gh) <= r.prefixLen {
		return gh
	}
	return gh[:r.prefixLen]
}

// Owner returns the node owning the given geohash. This is the zero-hop
// lookup: pure local computation, no network — which is exactly why the
// registry counts placements rather than hops (there are none to count).
func (r *Ring) Owner(gh string) NodeID {
	mLookupPoint.Inc()
	return r.ownerOfKey(r.Partition(gh))
}

// OwnerOfPartition returns the node owning a raw partition key.
func (r *Ring) OwnerOfPartition(part string) NodeID {
	mLookupPartition.Inc()
	return r.ownerOfKey(part)
}

func (r *Ring) ownerOfKey(key string) NodeID {
	h := hash64(key)
	i := sort.Search(len(r.vnodeKeys), func(i int) bool { return r.vnodeKeys[i] >= h })
	if i == len(r.vnodeKeys) {
		i = 0
	}
	return r.vnodeOwners[i]
}

// Partitions enumerates every base partition key: all geohash prefixes of
// the ring's prefix length. For the default length 2 this is the paper's
// 32*32 = 1024 partitions.
func (r *Ring) Partitions() []string {
	return allPrefixes(r.prefixLen)
}

// PartitionsOf returns the partition keys assigned to one node.
func (r *Ring) PartitionsOf(id NodeID) []string {
	var out []string
	for _, p := range r.Partitions() {
		if r.ownerOfKey(p) == id {
			out = append(out, p)
		}
	}
	return out
}

func allPrefixes(n int) []string {
	out := []string{""}
	for i := 0; i < n; i++ {
		next := make([]string, 0, len(out)*len(geohash.Base32))
		for _, p := range out {
			for j := 0; j < len(geohash.Base32); j++ {
				next = append(next, p+string(geohash.Base32[j]))
			}
		}
		out = next
	}
	return out
}

// hash64 hashes a key into the ring's 64-bit space. Raw FNV-1a leaves very
// short keys (like 2-character geohash prefixes) clustered in a narrow band,
// which would collapse all partitions onto one vnode; a splitmix64-style
// finalizer disperses them across the full space.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return finalize64(h.Sum64())
}

// hash64Bytes is hash64 over a byte slice, with the FNV-1a loop inlined so
// ring construction can hash a reusable buffer without the hash.Hash
// allocation per key. Must stay bit-identical to hash64 on the same bytes.
func hash64Bytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	x := uint64(offset64)
	for _, c := range b {
		x ^= uint64(c)
		x *= prime64
	}
	return finalize64(x)
}

func finalize64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
