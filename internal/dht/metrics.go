package dht

import "stash/internal/obs"

// Registry handles for the DHT layer. Owner lookups run once per footprint
// key on the coordinator hot path, so both are single atomic adds.
var (
	mLookupPoint     = lookupCounter("point")
	mLookupPartition = lookupCounter("partition")
	mNodes           = nodesGauge()
	mPlacements      = placementsCounter()
)

func lookupCounter(kind string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_dht_lookups_total", "Zero-hop owner lookups on the DHT ring, by key kind.")
	return r.Counter("stash_dht_lookups_total", "kind", kind)
}

func nodesGauge() *obs.Gauge {
	r := obs.Default()
	r.Help("stash_dht_nodes", "Node count of the most recently built ring.")
	return r.Gauge("stash_dht_nodes")
}

func placementsCounter() *obs.Counter {
	r := obs.Default()
	r.Help("stash_dht_placements_total", "Virtual-node placements performed across all ring builds.")
	return r.Counter("stash_dht_placements_total")
}
