package dht

import (
	"math/rand"
	"testing"

	"stash/internal/geohash"
)

func randGeohash(rng *rand.Rand) string {
	n := 1 + rng.Intn(7)
	b := make([]byte, n)
	for i := range b {
		b[i] = geohash.Base32[rng.Intn(32)]
	}
	return string(b)
}

func TestNewRingFromNodesValidation(t *testing.T) {
	if _, err := NewRingFromNodes(nil, 2); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewRingFromNodes([]NodeID{1, 2, 1}, 2); err == nil {
		t.Error("duplicate node ids accepted")
	}
	r, err := NewRingFromNodes([]NodeID{7, 3, 11}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns := r.Nodes()
	if len(ns) != 3 || ns[0] != 3 || ns[1] != 7 || ns[2] != 11 {
		t.Errorf("Nodes = %v, want sorted [3 7 11]", ns)
	}
}

func TestNewRingFromNodesMatchesNewRing(t *testing.T) {
	// The contiguous constructor must be a pure special case: same vnode
	// placement, so existing clusters route identically.
	a, _ := NewRing(9, 2)
	b, _ := NewRingFromNodes([]NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8}, 2)
	for _, p := range a.Partitions() {
		if a.OwnerOfPartition(p) != b.OwnerOfPartition(p) {
			t.Fatalf("constructors disagree on owner of %q", p)
		}
	}
}

func TestHash64BytesMatchesHash64(t *testing.T) {
	for _, s := range []string{"", "a", "vnode-0-0", "vnode-119-63", "9q8y7zzz"} {
		if hash64Bytes([]byte(s)) != hash64(s) {
			t.Errorf("hash64Bytes(%q) != hash64(%q)", s, s)
		}
	}
}

func TestViewEpochMonotonic(t *testing.T) {
	r, _ := NewRing(4, 2)
	v := NewView(r)
	if v.Epoch() != 1 {
		t.Fatalf("initial epoch = %d, want 1", v.Epoch())
	}
	v2, _, err := v.AddNode(4)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Epoch() != 2 {
		t.Errorf("epoch after join = %d, want 2", v2.Epoch())
	}
	v3, _, err := v2.RemoveNode(1)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Epoch() != 3 {
		t.Errorf("epoch after leave = %d, want 3", v3.Epoch())
	}
	if v.Epoch() != 1 || v2.Epoch() != 2 {
		t.Error("views are not immutable")
	}
}

func TestViewMembershipValidation(t *testing.T) {
	r, _ := NewRing(3, 2)
	v := NewView(r)
	if _, _, err := v.AddNode(1); err == nil {
		t.Error("duplicate join accepted")
	}
	if _, _, err := v.RemoveNode(9); err == nil {
		t.Error("leave of non-member accepted")
	}
	one, _ := NewRing(1, 2)
	if _, _, err := NewView(one).RemoveNode(0); err == nil {
		t.Error("removing the last node accepted")
	}
}

func TestDiffMatchesRingOwners(t *testing.T) {
	r, _ := NewRing(8, 2)
	v := NewView(r)
	v2, moves, err := v.AddNode(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("join moved no partitions")
	}
	moved := map[string]Move{}
	for _, m := range moves {
		if m.To != 8 {
			t.Errorf("join move %q goes to %v, not the joiner", m.Partition, m.To)
		}
		if m.From != r.OwnerOfPartition(m.Partition) {
			t.Errorf("move %q From=%v disagrees with old ring", m.Partition, m.From)
		}
		if m.To != v2.Ring().OwnerOfPartition(m.Partition) {
			t.Errorf("move %q To=%v disagrees with new ring", m.Partition, m.To)
		}
		moved[m.Partition] = m
	}
	// Partitions absent from the diff must not change owner.
	for _, p := range r.Partitions() {
		if _, ok := moved[p]; ok {
			continue
		}
		if r.OwnerOfPartition(p) != v2.Ring().OwnerOfPartition(p) {
			t.Fatalf("partition %q moved but is not in the diff", p)
		}
	}
}

// TestJoinMovementBound enforces the consistent-hashing contract that makes
// elastic membership viable at all (Ji et al.): a join may remap at most
// ~1/(n+1) of the key space, plus slack for vnode placement variance.
func TestJoinMovementBound(t *testing.T) {
	const samples = 20000
	for _, n := range []int{4, 8, 16} {
		old, _ := NewRing(n, 2)
		v, moves, err := NewView(old).AddNode(NodeID(n))
		if err != nil {
			t.Fatal(err)
		}
		next := v.Ring()
		rng := rand.New(rand.NewSource(int64(n)))
		remapped := 0
		for i := 0; i < samples; i++ {
			gh := randGeohash(rng)
			if old.Owner(gh) != next.Owner(gh) {
				remapped++
			}
		}
		frac := float64(remapped) / samples
		bound := 1.0/float64(n+1) + 0.10
		if frac > bound {
			t.Errorf("n=%d: join remapped %.3f of keys, bound %.3f", n, frac, bound)
		}
		// And the diff agrees: moved partitions / total within the same bound.
		if pf := float64(len(moves)) / float64(len(old.Partitions())); pf > bound {
			t.Errorf("n=%d: join moved %.3f of partitions, bound %.3f", n, pf, bound)
		}
	}
}

// TestLeaveMovesOnlyDepartedKeys: removing a node must remap exactly the keys
// it owned — incumbents keep every key they had.
func TestLeaveMovesOnlyDepartedKeys(t *testing.T) {
	const samples = 20000
	old, _ := NewRing(10, 2)
	const departing = NodeID(3)
	v, moves, err := NewView(old).RemoveNode(departing)
	if err != nil {
		t.Fatal(err)
	}
	next := v.Ring()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < samples; i++ {
		gh := randGeohash(rng)
		was, is := old.Owner(gh), next.Owner(gh)
		if was == departing {
			if is == departing {
				t.Fatalf("key %q still routed to departed node", gh)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %v->%v though %v did not leave", gh, was, is, was)
		}
	}
	for _, m := range moves {
		if m.From != departing {
			t.Errorf("leave move %q has From=%v, want %v", m.Partition, m.From, departing)
		}
	}
}

func TestNodeIDStringCached(t *testing.T) {
	if NodeID(0).String() != "node-0" || NodeID(1023).String() != "node-1023" {
		t.Error("cached labels wrong")
	}
	if NodeID(4096).String() != "node-4096" {
		t.Error("fallback label wrong")
	}
	if NodeID(-1).String() != "node--1" {
		t.Errorf("negative label = %q", NodeID(-1).String())
	}
	if testing.AllocsPerRun(100, func() { _ = NodeID(7).String() }) != 0 {
		t.Error("cached NodeID.String allocates")
	}
}

func BenchmarkNewRing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewRing(120, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkViewAddNode(b *testing.B) {
	r, _ := NewRing(16, 2)
	v := NewView(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.AddNode(16); err != nil {
			b.Fatal(err)
		}
	}
}
