// Package replication implements STASH's autoscaling machinery for skewed
// workloads (paper §VII): hotspot detection thresholds, antipode-based
// helper-node selection, and the routing table through which a hotspotted
// node redirects queries to replicas of its hottest cliques.
//
// The clique-handoff protocol itself (distress request/ack, replication
// request/response) runs over the cluster transport in package cluster; this
// package holds the policy and bookkeeping, which are independently
// testable.
package replication

import (
	"math/rand"
	"sort"
	"sync"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
)

// Config tunes hotspot handling. The zero value disables replication
// (threshold 0 is treated as "never hotspotted"); start from DefaultConfig.
type Config struct {
	// QueueThreshold is the pending-request queue length at which a node
	// deems itself hotspotted (paper §VII-B1; the evaluation used 100).
	QueueThreshold int
	// MaxReplicaCells is N: the cumulative cell budget of one handoff's
	// cliques (§VII-B2).
	MaxReplicaCells int
	// CliqueDepth is the configured clique depth (§VII-B2's example uses 2).
	CliqueDepth int
	// Cooldown is the minimum interval between successive handoffs on one
	// node (§VII-D).
	Cooldown time.Duration
	// RouteTTL is how long a routing-table entry lives before it is purged
	// as signifying "the retreat of hotspot" (§VII-D).
	RouteTTL time.Duration
	// GuestTTL is how long an unused guest clique survives on a helper
	// before being purged (§VII-D).
	GuestTTL time.Duration
	// RerouteProbability is the chance a query over a fully replicated
	// region is redirected to the helper (§VII-C: "probabilistically
	// rerouted"); the remainder stays local so the replica and the origin
	// share load.
	RerouteProbability float64
	// MaxCandidates bounds the helper search walk around the antipode
	// before giving up (§VII-B3).
	MaxCandidates int
}

// DefaultConfig mirrors the paper's evaluation settings where stated and
// sensible middles elsewhere.
func DefaultConfig() Config {
	return Config{
		QueueThreshold:     100,
		MaxReplicaCells:    4096,
		CliqueDepth:        2,
		Cooldown:           5 * time.Second,
		RouteTTL:           30 * time.Second,
		GuestTTL:           30 * time.Second,
		RerouteProbability: 0.7,
		MaxCandidates:      8,
	}
}

// Enabled reports whether the configuration can ever trigger a handoff.
func (c Config) Enabled() bool { return c.QueueThreshold > 0 && c.MaxReplicaCells > 0 }

// CandidateHelpers returns the ordered helper candidates for a clique rooted
// at the given geohash: first the antipode node (the owner of the region
// diametrically opposite the hotspot), then owners of random directions
// around the antipode geohash (§VII-B3's retry rule). The hotspotted node
// itself is excluded. Candidates are deduplicated; at most cfg.MaxCandidates
// are returned.
func CandidateHelpers(root string, ring *dht.Ring, self dht.NodeID, cfg Config, rng *rand.Rand) []dht.NodeID {
	max := cfg.MaxCandidates
	if max <= 0 {
		max = DefaultConfig().MaxCandidates
	}
	var out []dht.NodeID
	seen := map[dht.NodeID]bool{self: true}
	add := func(gh string) {
		if len(out) >= max {
			return
		}
		id := ring.Owner(gh)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}

	anti, err := geohash.Antipode(root)
	if err != nil {
		return nil
	}
	add(anti)

	// Walk outward from the antipode in random directions until enough
	// distinct candidates are found or the neighborhood is exhausted.
	frontier := anti
	for attempts := 0; len(out) < max && attempts < 64; attempts++ {
		d := geohash.Direction(rng.Intn(8))
		next, ok, err := geohash.Neighbor(frontier, d)
		if err != nil || !ok {
			continue
		}
		frontier = next
		add(frontier)
	}
	return out
}

// Route is one routing-table entry: a replicated clique and where its
// replica lives (paper §VII-B5).
type Route struct {
	Root    cell.Key
	Helper  dht.NodeID
	Cells   map[cell.Key]bool
	Created time.Time
}

// Covers reports whether the replica holds every one of the given keys.
func (r Route) Covers(keys []cell.Key) bool {
	for _, k := range keys {
		if !r.Cells[k] {
			return false
		}
	}
	return true
}

// Table is a hotspotted node's routing table of replicated cliques. It is
// safe for concurrent use.
type Table struct {
	mu     sync.Mutex
	routes map[cell.Key]Route
	// helperCells is the per-helper union of replicated cells with
	// refcounts, so Lookup can test full coverage against everything a
	// helper holds rather than one clique at a time.
	helperCells map[dht.NodeID]map[cell.Key]int
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{
		routes:      map[cell.Key]Route{},
		helperCells: map[dht.NodeID]map[cell.Key]int{},
	}
}

// Add records a successfully replicated clique.
func (t *Table) Add(root cell.Key, helper dht.NodeID, keys []cell.Key, now time.Time) {
	cells := make(map[cell.Key]bool, len(keys))
	for _, k := range keys {
		cells[k] = true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.routes[root]; ok {
		t.dropFromHelperLocked(old)
	}
	t.routes[root] = Route{Root: root, Helper: helper, Cells: cells, Created: now}
	hc := t.helperCells[helper]
	if hc == nil {
		hc = map[cell.Key]int{}
		t.helperCells[helper] = hc
	}
	for _, k := range keys {
		hc[k]++
	}
}

func (t *Table) dropFromHelperLocked(r Route) {
	hc := t.helperCells[r.Helper]
	for k := range r.Cells {
		if hc[k] <= 1 {
			delete(hc, k)
		} else {
			hc[k]--
		}
	}
	if len(hc) == 0 {
		delete(t.helperCells, r.Helper)
	}
}

// Len returns the number of live routes.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.routes)
}

// Lookup finds a helper whose replicas, taken together, fully cover the
// requested keys (paper §VII-C: reroute only when the query region is fully
// replicated at a helper node). ok is false when no helper covers the
// request.
func (t *Table) Lookup(keys []cell.Key) (dht.NodeID, bool) {
	if len(keys) == 0 {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
helpers:
	for helper, hc := range t.helperCells {
		for _, k := range keys {
			if hc[k] == 0 {
				continue helpers
			}
		}
		return helper, true
	}
	return 0, false
}

// Helpers lists the distinct helper nodes currently holding replicas for
// this table's routes, in ascending order. The coordinator's failover path
// uses it to find replicas of a failed owner's cliques: even when the owner
// itself is unreachable, its hottest data may survive on helpers selected
// around the antipode.
func (t *Table) Helpers() []dht.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]dht.NodeID, 0, len(t.helperCells))
	for h := range t.helperCells {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Purge drops routes older than ttl, returning how many were removed.
func (t *Table) Purge(now time.Time, ttl time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for root, r := range t.routes {
		if now.Sub(r.Created) > ttl {
			t.dropFromHelperLocked(r)
			delete(t.routes, root)
			n++
		}
	}
	return n
}

// PurgeWhere drops every route the predicate matches (with its helper-cell
// accounting), returning how many were removed. The membership controller
// uses it on epoch changes: a route whose root partition moved points redirect
// traffic at a helper chosen for an owner that no longer serves the clique,
// and a route whose helper departed points at nobody.
func (t *Table) PurgeWhere(pred func(Route) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for root, r := range t.routes {
		if pred(r) {
			t.dropFromHelperLocked(r)
			delete(t.routes, root)
			n++
		}
	}
	return n
}

// Roots lists the roots of all live routes.
func (t *Table) Roots() []cell.Key {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]cell.Key, 0, len(t.routes))
	for root := range t.routes {
		out = append(out, root)
	}
	return out
}
