package replication

import (
	"math/rand"
	"testing"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
	"stash/internal/temporal"
)

var day = temporal.MustParse("2015-02-02", temporal.Day)

func k(gh string) cell.Key { return cell.Key{Geohash: gh, Time: day} }

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config should be disabled")
	}
	if !DefaultConfig().Enabled() {
		t.Error("default config should be enabled")
	}
	if (Config{QueueThreshold: 10}).Enabled() {
		t.Error("config without cell budget should be disabled")
	}
}

func TestCandidateHelpersExcludesSelf(t *testing.T) {
	ring, _ := dht.NewRing(32, 2)
	self := ring.Owner("9q8")
	rng := rand.New(rand.NewSource(1))
	cands := CandidateHelpers("9q8", ring, self, DefaultConfig(), rng)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		if c == self {
			t.Error("self returned as candidate")
		}
	}
}

func TestCandidateHelpersFirstIsAntipodeOwner(t *testing.T) {
	ring, _ := dht.NewRing(64, 2)
	root := "9q8"
	anti, err := geohash.Antipode(root)
	if err != nil {
		t.Fatal(err)
	}
	antiOwner := ring.Owner(anti)
	self := ring.Owner(root)
	if antiOwner == self {
		t.Skip("antipode maps to self on this ring; geometry makes the test vacuous")
	}
	rng := rand.New(rand.NewSource(1))
	cands := CandidateHelpers(root, ring, self, DefaultConfig(), rng)
	if len(cands) == 0 || cands[0] != antiOwner {
		t.Errorf("first candidate = %v, want antipode owner %v", cands, antiOwner)
	}
}

func TestCandidateHelpersDeduplicated(t *testing.T) {
	ring, _ := dht.NewRing(16, 2)
	rng := rand.New(rand.NewSource(7))
	cands := CandidateHelpers("u4p", ring, ring.Owner("u4p"), DefaultConfig(), rng)
	seen := map[dht.NodeID]bool{}
	for _, c := range cands {
		if seen[c] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c] = true
	}
	if len(cands) > DefaultConfig().MaxCandidates {
		t.Errorf("candidates %d exceed max %d", len(cands), DefaultConfig().MaxCandidates)
	}
}

func TestCandidateHelpersInvalidRoot(t *testing.T) {
	ring, _ := dht.NewRing(4, 2)
	rng := rand.New(rand.NewSource(1))
	if got := CandidateHelpers("not-a-geohash", ring, 0, DefaultConfig(), rng); got != nil {
		t.Errorf("invalid root yielded candidates: %v", got)
	}
}

func TestCandidateHelpersTinyCluster(t *testing.T) {
	// On a 2-node ring every candidate must be the one other node.
	ring, _ := dht.NewRing(2, 2)
	self := dht.NodeID(0)
	rng := rand.New(rand.NewSource(3))
	cands := CandidateHelpers("9q8", ring, self, DefaultConfig(), rng)
	for _, c := range cands {
		if c != dht.NodeID(1) {
			t.Errorf("unexpected candidate %v", c)
		}
	}
	if len(cands) > 1 {
		t.Errorf("2-node ring should yield at most 1 candidate, got %d", len(cands))
	}
}

func TestRouteCovers(t *testing.T) {
	r := Route{Cells: map[cell.Key]bool{k("9q1"): true, k("9q2"): true}}
	if !r.Covers([]cell.Key{k("9q1")}) {
		t.Error("subset not covered")
	}
	if !r.Covers([]cell.Key{k("9q1"), k("9q2")}) {
		t.Error("exact set not covered")
	}
	if r.Covers([]cell.Key{k("9q1"), k("9q3")}) {
		t.Error("superset reported covered")
	}
	if !r.Covers(nil) {
		t.Error("empty request should be trivially covered")
	}
}

func TestTableAddLookup(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	keys := []cell.Key{k("9q1"), k("9q2"), k("9q3")}
	tb.Add(k("9q"), dht.NodeID(5), keys, now)

	helper, ok := tb.Lookup(keys[:2])
	if !ok || helper != dht.NodeID(5) {
		t.Errorf("Lookup = %v,%v", helper, ok)
	}
	if _, ok := tb.Lookup([]cell.Key{k("u41")}); ok {
		t.Error("uncovered keys matched a route")
	}
	if _, ok := tb.Lookup(nil); ok {
		t.Error("empty key set should not reroute")
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTablePartialCoverageRejected(t *testing.T) {
	// §VII-C: reroute only on FULL replication of the query region.
	tb := NewTable()
	tb.Add(k("9q"), dht.NodeID(2), []cell.Key{k("9q1")}, time.Now())
	if _, ok := tb.Lookup([]cell.Key{k("9q1"), k("9q2")}); ok {
		t.Error("partially covered request rerouted")
	}
}

func TestTablePurge(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	tb.Add(k("9q"), 1, []cell.Key{k("9q1")}, now.Add(-time.Minute))
	tb.Add(k("u4"), 2, []cell.Key{k("u41")}, now)
	if n := tb.Purge(now, 30*time.Second); n != 1 {
		t.Errorf("purged %d, want 1", n)
	}
	if tb.Len() != 1 {
		t.Errorf("Len after purge = %d", tb.Len())
	}
	if _, ok := tb.Lookup([]cell.Key{k("9q1")}); ok {
		t.Error("stale route survived purge")
	}
	if _, ok := tb.Lookup([]cell.Key{k("u41")}); !ok {
		t.Error("fresh route purged")
	}
}

func TestTableRoots(t *testing.T) {
	tb := NewTable()
	tb.Add(k("9q"), 1, []cell.Key{k("9q1")}, time.Now())
	tb.Add(k("u4"), 2, []cell.Key{k("u41")}, time.Now())
	roots := tb.Roots()
	if len(roots) != 2 {
		t.Errorf("Roots = %v", roots)
	}
}

func TestTableOverwriteRoute(t *testing.T) {
	tb := NewTable()
	tb.Add(k("9q"), 1, []cell.Key{k("9q1")}, time.Now())
	tb.Add(k("9q"), 3, []cell.Key{k("9q1"), k("9q2")}, time.Now())
	helper, ok := tb.Lookup([]cell.Key{k("9q2")})
	if !ok || helper != dht.NodeID(3) {
		t.Errorf("route not overwritten: %v,%v", helper, ok)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d after overwrite", tb.Len())
	}
}

func TestTableLookupUnionAcrossCliques(t *testing.T) {
	// §VII-C coverage is per helper node: two cliques replicated to the
	// same helper jointly cover a query spanning both.
	tb := NewTable()
	now := time.Now()
	tb.Add(k("9q"), dht.NodeID(4), []cell.Key{k("9q1"), k("9q2")}, now)
	tb.Add(k("9r"), dht.NodeID(4), []cell.Key{k("9r1")}, now)
	helper, ok := tb.Lookup([]cell.Key{k("9q1"), k("9r1")})
	if !ok || helper != dht.NodeID(4) {
		t.Errorf("union coverage failed: %v,%v", helper, ok)
	}
	// Split across two different helpers must NOT reroute.
	tb2 := NewTable()
	tb2.Add(k("9q"), dht.NodeID(1), []cell.Key{k("9q1")}, now)
	tb2.Add(k("9r"), dht.NodeID(2), []cell.Key{k("9r1")}, now)
	if _, ok := tb2.Lookup([]cell.Key{k("9q1"), k("9r1")}); ok {
		t.Error("coverage split across helpers was rerouted")
	}
}

func TestTablePurgeMaintainsHelperUnion(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	tb.Add(k("9q"), dht.NodeID(4), []cell.Key{k("9q1")}, now.Add(-time.Minute))
	tb.Add(k("9r"), dht.NodeID(4), []cell.Key{k("9r1")}, now)
	tb.Purge(now, 30*time.Second)
	if _, ok := tb.Lookup([]cell.Key{k("9q1")}); ok {
		t.Error("purged clique's cells still covered")
	}
	if _, ok := tb.Lookup([]cell.Key{k("9r1")}); !ok {
		t.Error("surviving clique lost coverage")
	}
}

func TestTableSharedCellRefcount(t *testing.T) {
	// Two cliques on one helper share a cell; dropping one clique must keep
	// the shared cell covered.
	tb := NewTable()
	now := time.Now()
	shared := k("9qs")
	tb.Add(k("9q"), dht.NodeID(4), []cell.Key{shared, k("9q1")}, now.Add(-time.Minute))
	tb.Add(k("9r"), dht.NodeID(4), []cell.Key{shared, k("9r1")}, now)
	tb.Purge(now, 30*time.Second)
	if _, ok := tb.Lookup([]cell.Key{shared}); !ok {
		t.Error("shared cell lost after dropping one of two cliques")
	}
}

func TestTableHelpers(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	if hs := tb.Helpers(); len(hs) != 0 {
		t.Fatalf("empty table lists helpers %v", hs)
	}
	tb.Add(k("9q"), dht.NodeID(4), []cell.Key{k("9q1")}, now)
	tb.Add(k("9r"), dht.NodeID(2), []cell.Key{k("9r1")}, now)
	tb.Add(k("9s"), dht.NodeID(4), []cell.Key{k("9s1")}, now) // same helper twice
	hs := tb.Helpers()
	if len(hs) != 2 || hs[0] != dht.NodeID(2) || hs[1] != dht.NodeID(4) {
		t.Fatalf("Helpers() = %v, want [2 4] sorted and deduplicated", hs)
	}
	// Purging every route empties the helper list again.
	tb.Purge(now.Add(time.Hour), time.Minute)
	if hs := tb.Helpers(); len(hs) != 0 {
		t.Fatalf("helpers survive purge: %v", hs)
	}
}

func TestTablePurgeWhere(t *testing.T) {
	tb := NewTable()
	now := time.Now()
	tb.Add(k("9q"), 1, []cell.Key{k("9q1")}, now)
	tb.Add(k("u4"), 2, []cell.Key{k("u41")}, now)
	tb.Add(k("dr"), 2, []cell.Key{k("dr1")}, now)

	// Purge routes whose helper is node 2, as a membership change would
	// after that helper departs.
	if n := tb.PurgeWhere(func(r Route) bool { return r.Helper == 2 }); n != 2 {
		t.Fatalf("purged %d, want 2", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len after purge = %d", tb.Len())
	}
	if _, ok := tb.Lookup([]cell.Key{k("u41")}); ok {
		t.Error("purged helper still routed")
	}
	if _, ok := tb.Lookup([]cell.Key{k("9q1")}); !ok {
		t.Error("surviving route lost")
	}
	if helpers := tb.Helpers(); len(helpers) != 1 || helpers[0] != 1 {
		t.Errorf("Helpers after purge = %v", helpers)
	}
	if n := tb.PurgeWhere(func(Route) bool { return false }); n != 0 {
		t.Errorf("no-op purge removed %d", n)
	}
}
