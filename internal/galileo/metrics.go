package galileo

import "stash/internal/obs"

// Registry handles for the storage layer. galileo.go keeps `obs` free as a
// local variable name for observations, so all registry access happens
// through these package-level handles.
var (
	mBlocksRead    = diskCounter("stash_disk_blocks_read_total", "Backing-store blocks materialized and scanned.")
	mPointsScanned = diskCounter("stash_disk_points_scanned_total", "Raw observations scanned while aggregating cells.")
	mScanDur       = scanHistogram()
)

func diskCounter(name, help string) *obs.Counter {
	r := obs.Default()
	r.Help(name, help)
	return r.Counter(name)
}

func scanHistogram() *obs.Histogram {
	r := obs.Default()
	r.Help("stash_disk_scan_duration_seconds", "Wall time of one FetchCells scan over the backing store.")
	return r.Histogram("stash_disk_scan_duration_seconds")
}
