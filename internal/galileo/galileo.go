// Package galileo reimplements the substrate the paper layers STASH on:
// Galileo, a zero-hop-DHT distributed block store for multidimensional
// spatiotemporal observations (paper §VI-C).
//
// Data lives in blocks keyed by (geohash prefix, day): all observations whose
// geohash shares the partitioning prefix and whose timestamp falls on the
// day. Each cluster node owns the blocks of the partitions the DHT ring
// assigns to it. A query against a node scans its relevant blocks from
// "disk" (the deterministic namgen generator plus an injected disk-latency
// cost) and aggregates matching observations into full-extent cells at the
// requested spatiotemporal resolution.
//
// Cells are aggregated over their full spatiotemporal bounds, not clipped to
// the query rectangle. This is what makes a cached cell reusable by any
// later query whose footprint contains it — the property STASH's collective
// cache rests on (§V-B).
package galileo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/simnet"
	"stash/internal/temporal"
)

// ErrMixedResolution reports a cell fetch whose keys span multiple hierarchy
// levels; fetches are per-level operations in STASH.
var ErrMixedResolution = errors.New("galileo: fetch keys span multiple resolutions")

// BlockID identifies one stored block: a geohash partition prefix and a day.
type BlockID struct {
	Prefix string
	Day    temporal.Label
}

func (b BlockID) String() string { return fmt.Sprintf("%s/%s", b.Prefix, b.Day.Text) }

// DefaultBlockPrefixLen is the geohash length of one stored block. Node
// *ownership* follows the DHT ring's (coarser) partition prefix — the
// paper's 2 characters — while the files within a partition are organized
// at finer granularity, so a small query reads a small block rather than
// the whole partition.
const DefaultBlockPrefixLen = 3

// Store is one node's shard of the Galileo storage system.
type Store struct {
	ring       atomic.Pointer[dht.Ring] // swapped on membership epoch flips
	node       dht.NodeID
	gen        *namgen.Generator
	model      simnet.Model
	sleeper    simnet.Sleeper
	blockLen   int
	histograms bool
	parallel   int // bounded concurrent block reads per fetch; <=1 is serial

	blocksRead    atomic.Int64
	pointsScanned atomic.Int64
}

// NewStore returns the shard of the given node. The sleeper receives the
// simulated disk cost of every read; pass simnet.NewMeter() in tests.
func NewStore(ring *dht.Ring, node dht.NodeID, gen *namgen.Generator, model simnet.Model, sleeper simnet.Sleeper) *Store {
	blockLen := DefaultBlockPrefixLen
	if ring.PrefixLen() > blockLen {
		blockLen = ring.PrefixLen()
	}
	s := &Store{node: node, gen: gen, model: model, sleeper: sleeper, blockLen: blockLen}
	s.ring.Store(ring)
	return s
}

// UpdateRing swaps the partition map this shard filters ownership by. The
// membership controller installs the new epoch's ring here when it flips, so
// the shard immediately claims (or disclaims) the blocks of moved partitions.
// In-flight fetches finish against whichever ring they loaded — a harmless
// transient covered by the coordinator's not-owner retry.
func (s *Store) UpdateRing(r *dht.Ring) { s.ring.Store(r) }

// SetHistograms toggles per-attribute histogram maintenance during scans
// (using namgen.HistogramSpecs), so result cells can drive histogram panels.
func (s *Store) SetHistograms(on bool) { s.histograms = on }

// SetParallelReads bounds the number of blocks one FetchCells scans
// concurrently. Values <= 1 keep the serial scan; the cap is per fetch, so
// a node serving W workers reads at most W*n blocks at once. Configure
// before serving traffic.
func (s *Store) SetParallelReads(n int) {
	if n < 1 {
		n = 1
	}
	s.parallel = n
}

// SetBlockPrefixLen overrides the block granularity (clamped to at least
// the ring's partition prefix, at most geohash.MaxPrecision).
func (s *Store) SetBlockPrefixLen(n int) {
	if n < s.ring.Load().PrefixLen() {
		n = s.ring.Load().PrefixLen()
	}
	if n > geohash.MaxPrecision {
		n = geohash.MaxPrecision
	}
	s.blockLen = n
}

// Node returns the owning node's ID.
func (s *Store) Node() dht.NodeID { return s.node }

// BlockPrefixLen returns the geohash length at which this shard's blocks are
// stored. An external reference evaluator must enumerate blocks at exactly
// this granularity: the synthetic dataset is *defined* by the set of
// (prefix, day) blocks materialized, so a different prefix length would
// describe a different dataset, not a different view of this one.
func (s *Store) BlockPrefixLen() int { return s.blockLen }

// BlocksRead returns the number of blocks this shard has read since creation.
func (s *Store) BlocksRead() int64 { return s.blocksRead.Load() }

// PointsScanned returns the number of observations scanned since creation.
func (s *Store) PointsScanned() int64 { return s.pointsScanned.Load() }

// Owns reports whether this shard owns the partition of the given geohash.
func (s *Store) Owns(gh string) bool { return s.ring.Load().Owner(gh) == s.node }

// blockPrefixes expands a cell geohash to the block prefixes storing its
// data. Geohashes at or beyond the block prefix length map to a single
// block prefix; coarser geohashes span every extending prefix.
func (s *Store) blockPrefixes(gh string) []string {
	if len(gh) >= s.blockLen {
		return []string{gh[:s.blockLen]}
	}
	prefixes := []string{gh}
	for len(prefixes[0]) < s.blockLen {
		next := make([]string, 0, len(prefixes)*geohash.BranchFactor)
		for _, p := range prefixes {
			next = append(next, geohash.Children(p)...)
		}
		prefixes = next
	}
	return prefixes
}

// ownerOf returns the node owning a block prefix: ownership follows the
// ring's coarser partition prefix.
func (s *Store) ownerOf(blockPrefix string) dht.NodeID {
	r := s.ring.Load()
	return r.OwnerOfPartition(r.Partition(blockPrefix))
}

// BlocksForKeys returns the distinct blocks owned by this shard that hold
// raw data for any of the given cell keys.
func (s *Store) BlocksForKeys(keys []cell.Key) ([]BlockID, error) {
	seen := map[BlockID]bool{}
	var out []BlockID
	for _, k := range keys {
		days, err := dayLabels(k.Time)
		if err != nil {
			return nil, err
		}
		for _, prefix := range s.blockPrefixes(k.Geohash) {
			if s.ownerOf(prefix) != s.node {
				continue
			}
			for _, d := range days {
				id := BlockID{Prefix: prefix, Day: d}
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	return out, nil
}

// dayLabels returns the Day-resolution labels spanned by a temporal label.
func dayLabels(l temporal.Label) ([]temporal.Label, error) {
	if l.Res == temporal.Day {
		return []temporal.Label{l}, nil
	}
	start, err := l.Start()
	if err != nil {
		return nil, err
	}
	end, _ := l.End()
	r := temporal.Range{Start: start, End: end}
	return r.Cover(temporal.Day)
}

// FetchCells computes full-extent summaries for the requested cell keys from
// this shard's raw data. All keys must share one spatiotemporal resolution
// (one hierarchy level). Only data in partitions owned by this shard is
// scanned; for keys spanning several nodes the caller merges the per-node
// partial results (summaries merge associatively).
//
// The request is grouped by block up front (BlocksForKeys deduplicates), so
// each covering block is read exactly once per fetch regardless of how many
// requested keys draw on it. With SetParallelReads(n > 1) up to n blocks are
// scanned concurrently, each into a private accumulator, and the per-block
// partials merge associatively — the same property the cross-node merge
// relies on.
//
// The returned result contains an entry for every requested key whose bounds
// hold at least one observation in this shard's partitions.
func (s *Store) FetchCells(keys []cell.Key) (query.Result, error) {
	res, _, err := s.fetchCells(keys)
	return res, err
}

// FetchCellsCtx is FetchCells with per-query attribution: when ctx carries a
// query profile (obs.ProfileFromContext), the blocks this fetch scanned on
// this shard are recorded against it. The unprofiled path is identical to
// FetchCells.
func (s *Store) FetchCellsCtx(ctx context.Context, keys []cell.Key) (query.Result, error) {
	res, blocks, err := s.fetchCells(keys)
	if p := obs.ProfileFromContext(ctx); p != nil && blocks > 0 {
		p.AddNodeBlocks(s.node.String(), blocks)
	}
	return res, err
}

// fetchCells implements FetchCells and additionally reports the number of
// blocks scanned, for per-query attribution.
func (s *Store) fetchCells(keys []cell.Key) (query.Result, int, error) {
	res := query.NewResult()
	if len(keys) == 0 {
		return res, 0, nil
	}
	defer func(start time.Time) { mScanDur.ObserveDuration(time.Since(start)) }(time.Now())
	sres, tres := keys[0].SpatialRes(), keys[0].TemporalRes()
	want := make(map[cell.Key]bool, len(keys))
	for _, k := range keys {
		if k.SpatialRes() != sres || k.TemporalRes() != tres {
			return res, 0, fmt.Errorf("%w: %v vs (%d,%v)", ErrMixedResolution, k, sres, tres)
		}
		want[k] = true
	}
	blocks, err := s.BlocksForKeys(keys)
	if err != nil {
		return res, 0, err
	}

	if s.histograms {
		// Histogram maintenance stays on the scalar accumulator: columnar
		// batches carry stats only, and ObserveHist mutates a shared map.
		var acc map[cell.Key]cell.Summary
		if s.parallel > 1 && len(blocks) > 1 {
			acc, err = s.scanBlocksParallel(blocks, want, sres, tres)
		} else {
			acc, err = s.scanBlocks(blocks, want, sres, tres)
		}
		if err != nil {
			return res, 0, err
		}
		for k, sum := range acc {
			res.Add(k, sum)
		}
		return res, len(blocks), nil
	}

	// Default path: accumulate columnar (one row per cell, one lane per
	// attribute; the scan inner loop indexes flat arrays instead of doing
	// per-point map inserts) and materialize each row once, straight into
	// the reply — no intermediate map-to-map transpose.
	var acc *colAcc
	if s.parallel > 1 && len(blocks) > 1 {
		acc, err = s.scanBlocksColumnarParallel(blocks, want, sres, tres)
	} else {
		acc, err = s.scanBlocksColumnar(blocks, want, sres, tres)
	}
	if err != nil {
		return res, 0, err
	}
	for k, row := range acc.rows {
		res.Cells[k] = acc.batch.RowSummary(int(row))
	}
	return res, len(blocks), nil
}

// colAcc is the columnar scan accumulator: cell key -> arena row, with every
// namgen attribute's lane pre-created so the per-observation inner loop is
// one map lookup plus array indexing.
type colAcc struct {
	rows  map[cell.Key]int32
	batch cell.SummaryBatch
	lanes []int // lane index per namgen.Attributes position
}

func newColAcc() *colAcc {
	a := &colAcc{rows: map[cell.Key]int32{}, lanes: make([]int, len(namgen.Attributes))}
	for i, attr := range namgen.Attributes {
		a.lanes[i] = a.batch.EnsureLane(attr)
	}
	return a
}

// rowFor returns the accumulator row of k, appending one on first sight.
func (a *colAcc) rowFor(k cell.Key) int32 {
	row, ok := a.rows[k]
	if !ok {
		row = int32(a.batch.AppendRow())
		a.rows[k] = row
	}
	return row
}

// mergeFrom folds another accumulator in as a columnar gather (the same
// MergeRows core the coordinator's tournament uses).
func (a *colAcc) mergeFrom(p *colAcc) {
	if p.batch.Rows() == 0 {
		return
	}
	dst := make([]int32, p.batch.Rows())
	for k, row := range p.rows {
		dst[row] = a.rowFor(k)
	}
	a.batch.MergeRows(dst, &p.batch)
}

// scanBlocks reads each block once, serially, accumulating matching
// observations into one summary per requested key.
func (s *Store) scanBlocks(blocks []BlockID, want map[cell.Key]bool, sres int, tres temporal.Resolution) (map[cell.Key]cell.Summary, error) {
	acc := map[cell.Key]cell.Summary{}
	for _, b := range blocks {
		if err := s.scanBlockInto(b, want, sres, tres, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// scanBlocksParallel fans the block list over a bounded worker pool. Each
// worker owns a private accumulator (no locks on the scan inner loop); the
// partials merge once at the end. The first error wins and remaining blocks
// are skipped.
func (s *Store) scanBlocksParallel(blocks []BlockID, want map[cell.Key]bool, sres int, tres temporal.Resolution) (map[cell.Key]cell.Summary, error) {
	workers := s.parallel
	if workers > len(blocks) {
		workers = len(blocks)
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errMu   sync.Mutex
		firstEr error
	)
	partials := make([]map[cell.Key]cell.Summary, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := map[cell.Key]cell.Summary{}
			partials[w] = local
			for {
				i := int(next.Add(1)) - 1
				if i >= len(blocks) || failed.Load() {
					return
				}
				if err := s.scanBlockInto(blocks[i], want, sres, tres, local); err != nil {
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	// Merge per-worker partials; summaries merge associatively.
	acc := partials[0]
	for _, part := range partials[1:] {
		for k, sum := range part {
			if base, ok := acc[k]; ok {
				base.Merge(sum)
				acc[k] = base // Merge may assign fields on the copy
			} else {
				acc[k] = sum
			}
		}
	}
	return acc, nil
}

// scanBlocksColumnar reads each block once, serially, into one columnar
// accumulator.
func (s *Store) scanBlocksColumnar(blocks []BlockID, want map[cell.Key]bool, sres int, tres temporal.Resolution) (*colAcc, error) {
	acc := newColAcc()
	for _, b := range blocks {
		if err := s.scanBlockColumnar(b, want, sres, tres, acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// scanBlocksColumnarParallel is scanBlocksColumnar over the bounded worker
// pool: each worker owns a private accumulator (no locks on the scan inner
// loop); the per-worker batches gather together once at the end.
func (s *Store) scanBlocksColumnarParallel(blocks []BlockID, want map[cell.Key]bool, sres int, tres temporal.Resolution) (*colAcc, error) {
	workers := s.parallel
	if workers > len(blocks) {
		workers = len(blocks)
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errMu   sync.Mutex
		firstEr error
	)
	partials := make([]*colAcc, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := newColAcc()
			partials[w] = local
			for {
				i := int(next.Add(1)) - 1
				if i >= len(blocks) || failed.Load() {
					return
				}
				if err := s.scanBlockColumnar(blocks[i], want, sres, tres, local); err != nil {
					errMu.Lock()
					if firstEr == nil {
						firstEr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	acc := partials[0]
	for _, part := range partials[1:] {
		acc.mergeFrom(part)
	}
	return acc, nil
}

// scanBlockColumnar reads one block and accumulates its matching observations
// into the columnar accumulator: one row lookup per point, then per-attribute
// array updates through the pre-created lanes.
func (s *Store) scanBlockColumnar(b BlockID, want map[cell.Key]bool, sres int, tres temporal.Resolution, a *colAcc) error {
	obs, err := s.readBlock(b)
	if err != nil {
		return err
	}
	for _, o := range obs {
		k := cell.Key{
			Geohash: geohash.Encode(o.Lat, o.Lon, sres),
			Time:    temporal.At(o.Time, tres),
		}
		if !want[k] {
			continue
		}
		row := int(a.rowFor(k))
		for i, attr := range namgen.Attributes {
			v, _ := o.Value(attr)
			a.batch.ObserveAt(a.lanes[i], row, v)
		}
	}
	return nil
}

// scanBlockInto reads one block and accumulates its matching observations
// into acc. Accumulate per cell: Observe mutates the summary's shared stats
// map, so one summary per key is built up across all matching points.
func (s *Store) scanBlockInto(b BlockID, want map[cell.Key]bool, sres int, tres temporal.Resolution, acc map[cell.Key]cell.Summary) error {
	obs, err := s.readBlock(b)
	if err != nil {
		return err
	}
	for _, o := range obs {
		k := cell.Key{
			Geohash: geohash.Encode(o.Lat, o.Lon, sres),
			Time:    temporal.At(o.Time, tres),
		}
		if !want[k] {
			continue
		}
		sum, ok := acc[k]
		if !ok {
			sum = cell.NewSummary()
			if s.histograms {
				// Pre-create the map so later copies of this struct
				// value share it (ObserveHist mutates the shared map).
				sum.Hists = map[string]*cell.Histogram{}
			}
			acc[k] = sum
		}
		for _, attr := range namgen.Attributes {
			v, _ := o.Value(attr)
			sum.Observe(attr, v)
			if s.histograms {
				spec := namgen.HistogramSpecs[attr]
				_ = sum.ObserveHist(attr, v, cell.HistogramSpec{Lo: spec.Lo, Hi: spec.Hi, Buckets: spec.Buckets})
			}
		}
	}
	return nil
}

// Query evaluates an aggregation query against this shard: the basic-system
// path with no cache in front. The result covers the footprint cells whose
// partitions this shard owns.
func (s *Store) Query(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	keys, err := q.Footprint()
	if err != nil {
		return query.Result{}, err
	}
	return s.FetchCells(keys)
}

// readBlock materializes a block and charges its disk cost.
func (s *Store) readBlock(b BlockID) ([]namgen.Observation, error) {
	obs, err := s.gen.Block(b.Prefix, b.Day)
	if err != nil {
		return nil, err
	}
	s.blocksRead.Add(1)
	s.pointsScanned.Add(int64(len(obs)))
	mBlocksRead.Inc()
	mPointsScanned.Add(int64(len(obs)))
	s.sleeper.Apply(s.model.DiskCost(1, len(obs)))
	return obs, nil
}

// Cluster bundles the shards of every node: the complete basic system. It
// answers whole queries by fanning out to each owning shard and merging —
// the behaviour a STASH-less deployment exhibits.
type Cluster struct {
	ring   *dht.Ring
	stores map[dht.NodeID]*Store
}

// NewCluster builds a store shard for every node on the ring.
func NewCluster(ring *dht.Ring, gen *namgen.Generator, model simnet.Model, sleeper simnet.Sleeper) *Cluster {
	c := &Cluster{ring: ring, stores: make(map[dht.NodeID]*Store, ring.Size())}
	for _, id := range ring.Nodes() {
		c.stores[id] = NewStore(ring, id, gen, model, sleeper)
	}
	return c
}

// Ring returns the cluster's partition map.
func (c *Cluster) Ring() *dht.Ring { return c.ring }

// Store returns the shard of the given node.
func (c *Cluster) Store(id dht.NodeID) *Store { return c.stores[id] }

// FetchCells fans a cell fetch out to every owning shard and merges the
// partial summaries.
func (c *Cluster) FetchCells(keys []cell.Key) (query.Result, error) {
	// Group keys by owning node so each shard scans only its share.
	byNode := map[dht.NodeID][]cell.Key{}
	for _, k := range keys {
		for _, prefix := range c.stores[0].blockPrefixes(k.Geohash) {
			owner := c.stores[0].ownerOf(prefix)
			byNode[owner] = append(byNode[owner], k)
		}
	}
	res := query.NewResult()
	for id, ks := range byNode {
		part, err := c.stores[id].FetchCells(dedupeKeys(ks))
		if err != nil {
			return res, err
		}
		res.Merge(part)
	}
	return res, nil
}

// Query evaluates a whole aggregation query across the cluster.
func (c *Cluster) Query(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	keys, err := q.Footprint()
	if err != nil {
		return query.Result{}, err
	}
	return c.FetchCells(keys)
}

// BlocksRead totals block reads across all shards.
func (c *Cluster) BlocksRead() int64 {
	var n int64
	for _, s := range c.stores {
		n += s.BlocksRead()
	}
	return n
}

func dedupeKeys(ks []cell.Key) []cell.Key {
	seen := make(map[cell.Key]bool, len(ks))
	out := ks[:0]
	for _, k := range ks {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
