package galileo

import (
	"testing"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/simnet"
	"stash/internal/temporal"
)

func testCluster(t *testing.T, nodes int) (*Cluster, *simnet.Meter) {
	t.Helper()
	ring, err := dht.NewRing(nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	meter := simnet.NewMeter()
	gen := &namgen.Generator{Seed: 42, PointsPerBlock: 64}
	return NewCluster(ring, gen, simnet.Default(), meter), meter
}

func smallQuery() query.Query {
	return query.Query{
		Box:         geohash.Box{MinLat: 35, MaxLat: 37, MinLon: -100, MaxLon: -97},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  3,
		TemporalRes: temporal.Day,
	}
}

func TestClusterQueryBasics(t *testing.T) {
	c, meter := testCluster(t, 4)
	q := smallQuery()
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("query over populated region returned no cells")
	}
	keys, _ := q.Footprint()
	want := map[cell.Key]bool{}
	for _, k := range keys {
		want[k] = true
	}
	for k := range res.Cells {
		if !want[k] {
			t.Errorf("result contains key %v outside footprint", k)
		}
	}
	if res.TotalCount("temperature") == 0 {
		t.Error("no observations aggregated")
	}
	if meter.Elapsed() == 0 {
		t.Error("no disk cost charged")
	}
	if c.BlocksRead() == 0 {
		t.Error("no blocks read")
	}
}

func TestQueryValidation(t *testing.T) {
	c, _ := testCluster(t, 2)
	bad := smallQuery()
	bad.SpatialRes = 0
	if _, err := c.Query(bad); err == nil {
		t.Error("invalid query accepted by cluster")
	}
	if _, err := c.Store(0).Query(bad); err == nil {
		t.Error("invalid query accepted by store")
	}
}

func TestClusterEqualsSingleNode(t *testing.T) {
	// The same data partitioned over N nodes must aggregate to exactly what
	// a single node computes: partitioning must not lose or double data.
	single, _ := testCluster(t, 1)
	multi, _ := testCluster(t, 7)
	q := smallQuery()
	r1, err := single.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := multi.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r7.Len() {
		t.Fatalf("cell counts differ: 1-node=%d 7-node=%d", r1.Len(), r7.Len())
	}
	for k, s1 := range r1.Cells {
		s7, ok := r7.Cells[k]
		if !ok {
			t.Fatalf("cell %v missing from 7-node result", k)
		}
		for _, attr := range namgen.Attributes {
			a, b := s1.Stats[attr], s7.Stats[attr]
			if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max {
				t.Fatalf("cell %v attr %s differs: %+v vs %+v", k, attr, a, b)
			}
		}
	}
}

func TestFetchCellsFullExtentReusable(t *testing.T) {
	// A cell fetched via a small query must be identical to the same cell
	// fetched via a larger query: cells are full-extent aggregates.
	c, _ := testCluster(t, 3)
	day := temporal.MustParse("2015-02-02", temporal.Day)
	k := cell.Key{Geohash: "9v1", Time: day}

	r1, err := c.FetchCells([]cell.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	neighbors, _ := k.SpatialNeighbors()
	r2, err := c.FetchCells(append(neighbors, k))
	if err != nil {
		t.Fatal(err)
	}
	s1, ok1 := r1.Cells[k]
	s2, ok2 := r2.Cells[k]
	if !ok1 || !ok2 {
		t.Fatalf("cell %v missing: solo=%v group=%v", k, ok1, ok2)
	}
	if s1.Count("temperature") != s2.Count("temperature") {
		t.Errorf("cell content depends on fetch context: %d vs %d",
			s1.Count("temperature"), s2.Count("temperature"))
	}
}

func TestFetchCellsMixedResolutionRejected(t *testing.T) {
	c, _ := testCluster(t, 2)
	keys := []cell.Key{
		cell.MustKey("9q8", "2015-02-02", temporal.Day),
		cell.MustKey("9q8y", "2015-02-02", temporal.Day),
	}
	if _, err := c.Store(0).FetchCells(keys); err == nil {
		t.Error("mixed spatial resolutions accepted")
	}
	keys = []cell.Key{
		cell.MustKey("9q8", "2015-02-02", temporal.Day),
		cell.MustKey("9q9", "2015-02", temporal.Month),
	}
	if _, err := c.Store(0).FetchCells(keys); err == nil {
		t.Error("mixed temporal resolutions accepted")
	}
}

func TestFetchCellsEmpty(t *testing.T) {
	c, _ := testCluster(t, 2)
	res, err := c.Store(0).FetchCells(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Error("empty fetch returned cells")
	}
}

func TestStoreOnlyScansOwnedPartitions(t *testing.T) {
	c, _ := testCluster(t, 5)
	q := smallQuery()
	keys, _ := q.Footprint()
	var total int64
	for _, id := range c.Ring().Nodes() {
		st := c.Store(id)
		res, err := st.FetchCells(keys)
		if err != nil {
			t.Fatal(err)
		}
		total += res.TotalCount("temperature")
	}
	// Each shard scans only its partitions, so summing per-shard counts
	// must equal the whole-cluster count (no overlap).
	whole, err := c.FetchCells(keys)
	if err != nil {
		t.Fatal(err)
	}
	if total != whole.TotalCount("temperature") {
		t.Errorf("per-shard total %d != cluster total %d (overlapping scans?)",
			total, whole.TotalCount("temperature"))
	}
}

func TestBlocksForKeysCoarseGeohash(t *testing.T) {
	// A precision-2 cell spans 32 prefix-3 blocks; the shard must expand it
	// and keep only blocks whose partition (prefix-2) it owns.
	c, _ := testCluster(t, 3)
	day := temporal.MustParse("2015-02-02", temporal.Day)
	k := cell.Key{Geohash: "9q", Time: day}
	var total int
	for _, id := range c.Ring().Nodes() {
		blocks, err := c.Store(id).BlocksForKeys([]cell.Key{k})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if b.Prefix[:2] != "9q" {
				t.Errorf("block %v outside coarse key", b)
			}
			if c.Ring().OwnerOfPartition(b.Prefix[:2]) != id {
				t.Errorf("node %v listed foreign block %v", id, b)
			}
		}
		total += len(blocks)
	}
	if total != 32 {
		t.Errorf("total blocks for precision-2 key = %d, want 32", total)
	}
}

func TestBlockGranularityFinerThanPartition(t *testing.T) {
	// Ownership follows the 2-char partition, blocks are 3-char: all 32
	// blocks under one partition belong to the partition's single owner.
	c, _ := testCluster(t, 5)
	day := temporal.MustParse("2015-02-02", temporal.Day)
	owner := c.Ring().OwnerOfPartition("9q")
	blocks, err := c.Store(owner).BlocksForKeys([]cell.Key{{Geohash: "9q", Time: day}})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 32 {
		t.Errorf("partition owner sees %d blocks, want all 32", len(blocks))
	}
	for _, id := range c.Ring().Nodes() {
		if id == owner {
			continue
		}
		bs, _ := c.Store(id).BlocksForKeys([]cell.Key{{Geohash: "9q", Time: day}})
		if len(bs) != 0 {
			t.Errorf("non-owner %v sees %d blocks of 9q", id, len(bs))
		}
	}
}

func TestBlocksForKeysMultiDay(t *testing.T) {
	c, _ := testCluster(t, 1)
	month := temporal.MustParse("2015-02", temporal.Month)
	k := cell.Key{Geohash: "9q8", Time: month}
	blocks, err := c.Store(0).BlocksForKeys([]cell.Key{k})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 28 {
		t.Errorf("month key over one prefix = %d blocks, want 28", len(blocks))
	}
}

func TestBlocksForKeysDeduplicates(t *testing.T) {
	c, _ := testCluster(t, 1)
	day := temporal.MustParse("2015-02-02", temporal.Day)
	// Two sibling precision-4 cells share one 3-char block.
	keys := []cell.Key{
		{Geohash: "9q1b", Time: day},
		{Geohash: "9q1c", Time: day},
	}
	blocks, err := c.Store(0).BlocksForKeys(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 1 {
		t.Errorf("sibling cells should share one block, got %d", len(blocks))
	}
}

func TestDiskCostProportionalToBlocks(t *testing.T) {
	ring, _ := dht.NewRing(1, 2)
	gen := &namgen.Generator{Seed: 42, PointsPerBlock: 64}
	meter := simnet.NewMeter()
	st := NewStore(ring, 0, gen, simnet.Default(), meter)
	day := temporal.MustParse("2015-02-02", temporal.Day)

	if _, err := st.FetchCells([]cell.Key{{Geohash: "9q1", Time: day}}); err != nil {
		t.Fatal(err)
	}
	one := meter.Elapsed()
	meter.Reset()
	if _, err := st.FetchCells([]cell.Key{
		{Geohash: "9q1", Time: day}, {Geohash: "9r1", Time: day}, {Geohash: "9w1", Time: day},
	}); err != nil {
		t.Fatal(err)
	}
	three := meter.Elapsed()
	if three != 3*one {
		t.Errorf("3-block fetch cost %v, want 3x single-block %v", three, one)
	}
}

func TestFetchCellsReadsEachBlockOnce(t *testing.T) {
	// The grouped scan must read every covering block exactly once per
	// request, no matter how many requested keys share a block.
	ring, _ := dht.NewRing(1, 2)
	gen := &namgen.Generator{Seed: 42, PointsPerBlock: 64}
	st := NewStore(ring, 0, gen, simnet.Default(), simnet.NewMeter())
	day := temporal.MustParse("2015-02-02", temporal.Day)
	// Eight precision-4 keys spanning two 3-char blocks (4 siblings each),
	// plus one precision-3 key that is itself a third block.
	keys := []cell.Key{
		{Geohash: "9q1b", Time: day}, {Geohash: "9q1c", Time: day},
		{Geohash: "9q1f", Time: day}, {Geohash: "9q1g", Time: day},
		{Geohash: "9q2b", Time: day}, {Geohash: "9q2c", Time: day},
		{Geohash: "9q2f", Time: day}, {Geohash: "9q2g", Time: day},
	}
	blocks, err := st.BlocksForKeys(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("expected 2 covering blocks, got %d", len(blocks))
	}
	before := st.BlocksRead()
	if _, err := st.FetchCells(keys); err != nil {
		t.Fatal(err)
	}
	if got := st.BlocksRead() - before; got != int64(len(blocks)) {
		t.Errorf("fetch of %d keys over %d blocks read %d blocks, want %d",
			len(keys), len(blocks), got, len(blocks))
	}
	// Repeating the request scans the same blocks again (the store is
	// stateless), but still once each.
	before = st.BlocksRead()
	if _, err := st.FetchCells(keys); err != nil {
		t.Fatal(err)
	}
	if got := st.BlocksRead() - before; got != int64(len(blocks)) {
		t.Errorf("repeat fetch read %d blocks, want %d", got, len(blocks))
	}
}

func TestFetchCellsParallelMatchesSerial(t *testing.T) {
	// The bounded-parallel block scan must be invisible in the results: same
	// cells, same aggregates, same number of block reads as the serial scan.
	newStore := func() *Store {
		ring, _ := dht.NewRing(1, 2)
		gen := &namgen.Generator{Seed: 42, PointsPerBlock: 64}
		return NewStore(ring, 0, gen, simnet.Default(), simnet.NewMeter())
	}
	serial := newStore()
	par := newStore()
	par.SetParallelReads(4)

	day := temporal.MustParse("2015-02-02", temporal.Day)
	keys := []cell.Key{
		{Geohash: "9q1", Time: day}, {Geohash: "9q2", Time: day},
		{Geohash: "9r1", Time: day}, {Geohash: "9w1", Time: day},
		{Geohash: "9y1", Time: day}, {Geohash: "9z1", Time: day},
	}
	rs, err := serial.FetchCells(keys)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.FetchCells(keys)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != rp.Len() {
		t.Fatalf("cell counts differ: serial=%d parallel=%d", rs.Len(), rp.Len())
	}
	for k, ss := range rs.Cells {
		sp, ok := rp.Cells[k]
		if !ok {
			t.Fatalf("cell %v missing from parallel result", k)
		}
		for _, attr := range namgen.Attributes {
			a, b := ss.Stats[attr], sp.Stats[attr]
			if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max || a.Sum != b.Sum {
				t.Fatalf("cell %v attr %s differs: %+v vs %+v", k, attr, a, b)
			}
		}
	}
	if serial.BlocksRead() != par.BlocksRead() {
		t.Errorf("block reads differ: serial=%d parallel=%d",
			serial.BlocksRead(), par.BlocksRead())
	}
}

func TestBlockIDString(t *testing.T) {
	b := BlockID{Prefix: "9q", Day: temporal.MustParse("2015-02-02", temporal.Day)}
	if b.String() != "9q/2015-02-02" {
		t.Errorf("String = %q", b.String())
	}
}

func BenchmarkStoreQueryCountySize(b *testing.B) {
	ring, _ := dht.NewRing(1, 2)
	gen := &namgen.Generator{Seed: 42, PointsPerBlock: 128}
	st := NewStore(ring, 0, gen, simnet.Model{}, simnet.NewMeter())
	q := query.Query{
		Box:         geohash.Box{MinLat: 35, MaxLat: 35.9, MinLon: -98, MaxLon: -96.9},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := st.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
