package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestUntracedContextIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("untraced context produced a span")
	}
	if ctx2 != ctx {
		t.Fatal("untraced StartSpan must return the context unchanged")
	}
	// Every method is nil-safe.
	sp.SetAttr("k", "v")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration %v, want 0", d)
	}
}

func TestSpanTreeParenting(t *testing.T) {
	ctx, tr := NewTrace(context.Background())
	rootCtx, root := StartSpan(ctx, "query")
	root.SetAttr("query", "q1")

	c1Ctx, c1 := StartSpan(rootCtx, "footprint")
	c1.End()
	_, gc := StartSpan(c1Ctx, "never-a-sibling")
	gc.End()
	_, c2 := StartSpan(rootCtx, "fanout")
	c2.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	q := roots[0]
	if q.Name != "query" || q.Attrs["query"] != "q1" {
		t.Fatalf("unexpected root: %+v", q)
	}
	if len(q.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (footprint, fanout)", len(q.Children))
	}
	if q.Children[0].Name != "footprint" || q.Children[1].Name != "fanout" {
		t.Fatalf("children out of order: %s, %s", q.Children[0].Name, q.Children[1].Name)
	}
	if len(q.Children[0].Children) != 1 || q.Children[0].Children[0].Name != "never-a-sibling" {
		t.Fatalf("grandchild misplaced: %+v", q.Children[0])
	}
}

func TestSpanSnapshotOrdering(t *testing.T) {
	ctx, tr := NewTrace(context.Background())
	_, a := StartSpan(ctx, "a")
	time.Sleep(time.Millisecond)
	_, b := StartSpan(ctx, "b")
	b.End()
	a.End()
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot not start-ordered: %+v", snap)
	}
	if snap[0].Dur <= 0 || snap[1].Dur < 0 {
		t.Fatalf("non-positive durations: %+v", snap)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	ctx, _ := NewTrace(context.Background())
	_, sp := StartSpan(ctx, "x")
	d1 := sp.End()
	time.Sleep(2 * time.Millisecond)
	d2 := sp.End()
	if d1 != d2 {
		t.Fatalf("End not idempotent: %v then %v", d1, d2)
	}
}

func TestConcurrentSpans(t *testing.T) {
	// The coordinator opens spans from many goroutines against one trace;
	// this must be race-free (run with -race).
	ctx, tr := NewTrace(context.Background())
	rootCtx, root := StartSpan(ctx, "query")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(rootCtx, "share")
			sp.SetAttr("n", "x")
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	roots := tr.Tree()
	if len(roots) != 1 || len(roots[0].Children) != 16 {
		t.Fatalf("want 1 root with 16 children, got %d roots / %d children",
			len(roots), len(roots[0].Children))
	}
}

func TestStageDurationsSumToRoot(t *testing.T) {
	// The ?trace=1 acceptance shape: the root's direct children partition the
	// query, so their durations must not exceed the root's.
	ctx, tr := NewTrace(context.Background())
	rootCtx, root := StartSpan(ctx, "query")
	for _, stage := range []string{"footprint", "fanout", "merge"} {
		_, sp := StartSpan(rootCtx, stage)
		time.Sleep(time.Millisecond)
		sp.End()
	}
	root.End()
	roots := tr.Tree()
	var sum int64
	for _, c := range roots[0].Children {
		sum += c.DurUS
	}
	if sum <= 0 {
		t.Fatal("stage durations are zero")
	}
	if sum > roots[0].DurUS {
		t.Fatalf("stage durations (%dµs) exceed end-to-end (%dµs)", sum, roots[0].DurUS)
	}
}

func TestWriteChrome(t *testing.T) {
	ctx, tr := NewTrace(context.Background())
	rootCtx, root := StartSpan(ctx, "query")
	shareCtx, share := StartSpan(rootCtx, "share")
	_, get := StartSpan(shareCtx, "graph.get")
	get.End()
	share.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   *int64 `json:"ts"`
			Dur  *int64 `json:"dur"`
			PID  int    `json:"pid"`
			TID  int64  `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3", len(f.TraceEvents))
	}
	lanes := map[string]int64{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s: ph %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS == nil || ev.Dur == nil {
			t.Errorf("event %s missing ts/dur", ev.Name)
		}
		lanes[ev.Name] = ev.TID
	}
	// share and its graph.get child share a track; the root has its own.
	if lanes["share"] != lanes["graph.get"] {
		t.Errorf("share (tid %d) and graph.get (tid %d) should share a lane",
			lanes["share"], lanes["graph.get"])
	}
	if lanes["query"] == lanes["share"] {
		t.Error("root should be on its own lane")
	}
}

func TestTraceFromContext(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("background context should carry no trace")
	}
	ctx, tr := NewTrace(context.Background())
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace lost from context")
	}
}
