package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// set, histograms expanded into cumulative _bucket/_sum/_count series. The
// output is deterministic for a fixed registry state, which the golden test
// relies on.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f famView, s seriesView) error {
	switch {
	case s.c != nil:
		return writeSample(w, f.name, s.key, "", float64(s.c.Value()))
	case s.fn != nil:
		return writeSample(w, f.name, s.key, "", s.fn())
	case s.g != nil:
		return writeSample(w, f.name, s.key, "", float64(s.g.Value()))
	case s.h != nil:
		snap := s.h.Snapshot()
		var cum uint64
		for i, bound := range snap.Bounds {
			cum += snap.Counts[i]
			le := formatFloat(bound)
			if err := writeSample(w, f.name+"_bucket", s.key, `le="`+le+`"`, float64(cum)); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Counts)-1]
		if err := writeSample(w, f.name+"_bucket", s.key, `le="+Inf"`, float64(cum)); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_sum", s.key, "", snap.Sum); err != nil {
			return err
		}
		return writeSample(w, f.name+"_count", s.key, "", float64(snap.Count))
	}
	return nil
}

// writeSample emits one `name{labels,extra} value` line.
func writeSample(w io.Writer, name, labels, extra string, v float64) error {
	var lb string
	switch {
	case labels != "" && extra != "":
		lb = "{" + labels + "," + extra + "}"
	case labels != "":
		lb = "{" + labels + "}"
	case extra != "":
		lb = "{" + extra + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, lb, formatFloat(v))
	return err
}

// formatFloat renders a float the way Prometheus clients do: integral
// values without exponent or trailing zeros, everything else shortest-form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Guard against "1e+06"-style renderings of small integral values not
	// caught above; Prometheus accepts them, but keep output stable.
	return strings.TrimSpace(s)
}
