package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestSnapshotRoundTripAndDiff(t *testing.T) {
	reg := New()
	c := reg.Counter("reqs_total", "outcome", "ok")
	g := reg.Gauge("depth")
	h := reg.Histogram("lat_seconds")

	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	c.Add(100)
	g.Set(7)
	h.Observe(0.01)
	oldDoc := TakeSnapshot(reg, t0)

	c.Add(50)
	g.Set(3)
	h.Observe(0.02)
	newDoc := TakeSnapshot(reg, t0.Add(10*time.Second))

	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	var buf bytes.Buffer
	if err := WriteSnapshotJSON(&buf, oldDoc); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(oldPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if !got.TakenAt.Equal(oldDoc.TakenAt) || len(got.Metrics) != len(oldDoc.Metrics) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, oldDoc)
	}

	rows, elapsed, err := DiffSnapshots(oldDoc, newDoc)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s", elapsed)
	}
	byName := map[string]RateRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	cr, ok := byName[`reqs_total{outcome="ok"}`]
	if !ok {
		t.Fatalf("counter row missing from %v", rows)
	}
	if cr.Delta != 50 || cr.PerSec != 5 {
		t.Fatalf("counter row = %+v, want delta 50, 5/s", cr)
	}
	gr := byName["depth"]
	if gr.Delta != -4 {
		t.Fatalf("gauge row delta = %v, want -4", gr.Delta)
	}
	// Derived quantile keys are meaningless as rates and must be skipped.
	for name := range byName {
		if isQuantileKey(name) {
			t.Fatalf("quantile key %s leaked into the diff", name)
		}
	}
	// Histogram count/sum keys do participate.
	if _, ok := byName["lat_seconds_count"]; !ok {
		t.Fatal("histogram _count row missing")
	}
	// Rows sort by |PerSec| descending.
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if abs(a.PerSec) < abs(b.PerSec) {
			t.Fatalf("rows not sorted by |PerSec|: %v before %v", a, b)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestDiffSnapshotsRejectsOutOfOrder(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	a := SnapshotDoc{TakenAt: t0, Metrics: map[string]float64{}}
	b := SnapshotDoc{TakenAt: t0.Add(time.Second), Metrics: map[string]float64{}}
	if _, _, err := DiffSnapshots(b, a); err == nil {
		t.Fatal("reversed snapshots must error")
	}
	if _, _, err := DiffSnapshots(a, a); err == nil {
		t.Fatal("identical timestamps must error")
	}
}

func TestReadSnapshotFileErrors(t *testing.T) {
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	p := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(p, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(p); err == nil {
		t.Fatal("malformed JSON must error")
	}
	// Valid JSON but no metrics map.
	if err := os.WriteFile(p, []byte(`{"takenAt":"2026-08-01T12:00:00Z"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(p); err == nil {
		t.Fatal("document without metrics must error")
	}
}

func TestAlertStateJSON(t *testing.T) {
	b, err := json.Marshal(struct {
		S AlertState `json:"s"`
	}{StateCritical})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"s":"critical"}` {
		t.Fatalf("marshal = %s", b)
	}
	var out struct {
		S AlertState `json:"s"`
	}
	if err := json.Unmarshal([]byte(`{"s":"warning"}`), &out); err != nil {
		t.Fatal(err)
	}
	if out.S != StateWarning {
		t.Fatalf("unmarshal = %v", out.S)
	}
}
