package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets returns the default histogram bounds: 20 exponential buckets
// from 100µs doubling to ~52s (seconds-valued observations), sized for the
// repo's latency range — sub-millisecond warm cache hits up to multi-second
// degraded-mode tails.
func DefBuckets() []float64 { return ExpBuckets(100e-6, 2, 20) }

// ExpBuckets builds n exponential upper bounds: start, start*factor,
// start*factor^2, ... Panics on non-positive start, factor <= 1, or n <= 0.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// An observation is a binary search over the bounds plus two atomic adds,
// cheap enough for per-request hot paths. Quantiles are estimated from the
// bucket layout (linear interpolation inside the target bucket), the same
// scheme Prometheus' histogram_quantile uses.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit at the end
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	} else {
		bounds = append([]float64(nil), bounds...)
		if !sort.Float64sAreSorted(bounds) {
			panic("obs: histogram bounds must ascend")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value (in the histogram's native unit; the repo's
// latency histograms use seconds). NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 // upper bounds (no +Inf)
	Counts []uint64  // per-bucket (non-cumulative), len(Bounds)+1
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Under concurrent observation the
// copy is approximate (buckets are read one by one), which is the standard
// exposition trade-off.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket layout:
// the target bucket is found by cumulative rank, then the position inside
// it is linearly interpolated. Values in the +Inf bucket report the highest
// finite bound. An empty histogram (zero observations) reports exactly 0 —
// never NaN or garbage — so downstream consumers (flat snapshots, SLO burn
// rates, timeline quantiles) can fold quantiles without NaN guards; a NaN q
// likewise reports 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := 0.0
		if c > 0 {
			frac = (rank - prev) / float64(c)
		}
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates a quantile from the live histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }
