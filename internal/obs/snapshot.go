package obs

// Snapshot documents: a flat metrics snapshot with a timestamp, written as
// JSON by stashtrace -snapshot and diffed by stashtrace -metrics-diff to
// turn two point-in-time scrapes into counter rates.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// SnapshotDoc is a timestamped flat metrics snapshot.
type SnapshotDoc struct {
	TakenAt time.Time          `json:"takenAt"`
	Metrics map[string]float64 `json:"metrics"`
}

// TakeSnapshot captures r's flat snapshot at now (time.Now when zero).
func TakeSnapshot(r *Registry, now time.Time) SnapshotDoc {
	if now.IsZero() {
		now = time.Now()
	}
	return SnapshotDoc{TakenAt: now, Metrics: r.FlatSnapshot()}
}

// WriteSnapshotJSON writes doc as indented JSON.
func WriteSnapshotJSON(w io.Writer, doc SnapshotDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadSnapshotFile parses a snapshot document from path.
func ReadSnapshotFile(path string) (SnapshotDoc, error) {
	var doc SnapshotDoc
	b, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Metrics == nil {
		return doc, fmt.Errorf("%s: no metrics map", path)
	}
	return doc, nil
}

// RateRow is one series in a snapshot diff.
type RateRow struct {
	Name   string  `json:"name"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Delta  float64 `json:"delta"`
	PerSec float64 `json:"perSec"`
}

// DiffSnapshots computes per-series deltas and per-second rates between two
// snapshots, sorted by |PerSec| descending (name ascending on ties). Series
// missing from either side are skipped, as are derived histogram quantile
// keys (_p50/_p95/_p99) whose deltas are meaningless; elapsed comes from the
// documents' timestamps and must be positive.
func DiffSnapshots(oldDoc, newDoc SnapshotDoc) ([]RateRow, time.Duration, error) {
	elapsed := newDoc.TakenAt.Sub(oldDoc.TakenAt)
	if elapsed <= 0 {
		return nil, 0, fmt.Errorf("snapshots not in order: old %s, new %s",
			oldDoc.TakenAt.Format(time.RFC3339), newDoc.TakenAt.Format(time.RFC3339))
	}
	sec := elapsed.Seconds()
	var rows []RateRow
	for name, nv := range newDoc.Metrics {
		if isQuantileKey(name) {
			continue
		}
		ov, ok := oldDoc.Metrics[name]
		if !ok {
			continue
		}
		d := nv - ov
		rows = append(rows, RateRow{Name: name, Old: ov, New: nv, Delta: d, PerSec: d / sec})
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := math.Abs(rows[i].PerSec), math.Abs(rows[j].PerSec)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Name < rows[j].Name
	})
	return rows, elapsed, nil
}

// isQuantileKey reports whether a flat key is a derived histogram quantile.
func isQuantileKey(name string) bool {
	return strings.HasSuffix(name, "_p50") ||
		strings.HasSuffix(name, "_p95") ||
		strings.HasSuffix(name, "_p99")
}
