package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a metric family.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be >= 0 for Prometheus semantics;
// negative deltas are silently dropped to keep the family monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, in-flight requests,
// resident cells).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// series is one labeled time series inside a family.
type series struct {
	labels []Label // sorted by name
	key    string  // canonical label rendering
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// family groups all series sharing a metric name.
type family struct {
	name string
	kind Kind
	// kindSet distinguishes a real kind from the zero value: Help may create
	// a family before any series fixes its kind.
	kindSet bool
	help    string
	series  map[string]*series
}

// Registry is a concurrent metric registry. The zero value is not usable;
// call New (or use the process-wide Default). All getters are get-or-create
// and safe for concurrent use; handles returned once stay valid forever, so
// hot paths should resolve their handles at construction time and then only
// touch atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry served at /metrics.
var defaultRegistry = New()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// labelPairs converts alternating name, value strings into sorted labels.
func labelPairs(kv []string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: labels must be name, value pairs")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Name: kv[i], Value: kv[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// renderLabels produces the canonical {a="x",b="y"} body (no braces) used
// both as map key and in exposition.
func renderLabels(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getSeries returns the series for name+labels, creating family and series
// as needed. Panics when the name is reused with a different kind — that is
// a programming error best caught in tests.
func (r *Registry) getSeries(name string, kind Kind, kv []string) *series {
	ls := labelPairs(kv)
	key := renderLabels(ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, series: map[string]*series{}}
		r.families[name] = f
	}
	if !f.kindSet {
		f.kind = kind
		f.kindSet = true
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: ls, key: key}
		f.series[key] = s
	}
	return s
}

// Counter returns (creating if absent) the counter for name and the given
// alternating label name, value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	s := r.getSeries(name, KindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (creating if absent) the gauge for name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	s := r.getSeries(name, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers (or replaces) a callback-backed gauge: fn is invoked
// at exposition/snapshot time. Use it for values derived from live state,
// e.g. summed queue depths; re-registering the same name+labels replaces
// the callback, so a rebuilt cluster simply takes over the series.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.getSeries(name, KindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
}

// Histogram returns (creating if absent) the histogram for name and labels,
// with the default exponential duration buckets (seconds).
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, nil, labels...)
}

// HistogramBuckets is Histogram with explicit upper bounds (ascending,
// excluding +Inf). nil selects DefBuckets. Bounds are fixed at first
// creation; later calls return the existing histogram.
func (r *Registry) HistogramBuckets(name string, bounds []float64, labels ...string) *Histogram {
	s := r.getSeries(name, KindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// Help attaches exposition help text to a metric family.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = text
	} else {
		r.families[name] = &family{name: name, help: text, series: map[string]*series{}}
	}
}

// Metric is one series in a Snapshot.
type Metric struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Value is the counter count or gauge level; for histograms it is the
	// observation count (see Count/Sum/Quantiles for the rest).
	Value float64
	// Histogram-only fields.
	Count     uint64
	Sum       float64
	Quantiles map[string]float64 // "p50", "p95", "p99"
	// Hist carries the full bucket snapshot for histograms (nil otherwise) —
	// the telemetry history store needs cumulative bucket counts to extract
	// windowed quantiles, not just the since-boot ones above.
	Hist *HistSnapshot
}

// Snapshot returns every series' current value, sorted by name then labels.
func (r *Registry) Snapshot() []Metric {
	var out []Metric
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			m := Metric{Name: f.name, Labels: s.labels, Kind: f.kind}
			switch {
			case s.c != nil:
				m.Value = float64(s.c.Value())
			case s.fn != nil:
				m.Value = s.fn()
			case s.g != nil:
				m.Value = float64(s.g.Value())
			case s.h != nil:
				snap := s.h.Snapshot()
				m.Value = float64(snap.Count)
				m.Count = snap.Count
				m.Sum = snap.Sum
				m.Hist = &snap
				m.Quantiles = map[string]float64{
					"p50": snap.Quantile(0.50),
					"p95": snap.Quantile(0.95),
					"p99": snap.Quantile(0.99),
				}
			}
			out = append(out, m)
		}
	}
	return out
}

// FlatSnapshot renders the snapshot as a map keyed name{labels} (plus
// _count/_sum/_p50/_p95/_p99 entries for histograms) — the shape /stats
// folds into its JSON body.
func (r *Registry) FlatSnapshot() map[string]float64 {
	out := map[string]float64{}
	for _, m := range r.Snapshot() {
		key := m.Name
		if lb := renderLabels(m.Labels); lb != "" {
			key += "{" + lb + "}"
		}
		if m.Kind == KindHistogram {
			out[key+"_count"] = float64(m.Count)
			out[key+"_sum"] = m.Sum
			for q, v := range m.Quantiles {
				out[key+"_"+q] = v
			}
			continue
		}
		out[key] = m.Value
	}
	return out
}

// famView is a race-free copy of one family taken under the registry lock.
type famView struct {
	name   string
	kind   Kind
	help   string
	series []seriesView // sorted by label key
}

// seriesView copies a series' instrument pointers under the registry lock.
// The series struct itself is not safe to read outside it: getSeries creates
// a bare series and the instrument fields (c/g/h/fn) are attached by a later
// locked write, so a reader holding only the *series could race that write.
// The instruments behind the pointers are atomics, safe to read lock-free.
type seriesView struct {
	labels []Label
	key    string
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// sortedFamilies snapshots families (and their series lists) in name order.
func (r *Registry) sortedFamilies() []famView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]famView, 0, len(r.families))
	for _, f := range r.families {
		v := famView{name: f.name, kind: f.kind, help: f.help,
			series: make([]seriesView, 0, len(f.series))}
		for _, s := range f.series {
			v.series = append(v.series, seriesView{
				labels: s.labels, key: s.key, c: s.c, g: s.g, fn: s.fn, h: s.h,
			})
		}
		sort.Slice(v.series, func(i, j int) bool { return v.series[i].key < v.series[j].key })
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Timer observes the elapsed time since start into h. Usage:
//
//	defer obs.Timer(h, time.Now())
func Timer(h *Histogram, start time.Time) {
	if h != nil {
		h.ObserveDuration(time.Since(start))
	}
}
