package obs

// The always-on flight recorder: a fixed-size, lock-striped ring buffer of
// the last N completed query profiles, plus a slow-query log that keeps
// profiles over a latency threshold in a smaller ring and emits them as
// structured one-line JSON. Memory is bounded by construction — N
// ProfileData slots, allocated once — and recording is one stripe-lock
// acquisition plus a slot copy, off the query's critical path (the handler
// records after the response is computed).

import (
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder-layer metric handles (registered once; the recorder itself is the
// instrument, so its own overhead/loss must be observable too).
var (
	mFlightRecDropped = recCounter("stash_flightrec_dropped_total",
		"Completed query profiles evicted from the flight recorder ring by newer entries.")
	mSlowLogTotal = recCounter("stash_slowlog_total",
		"Query profiles that exceeded the slow-query threshold.")
	mTopKEpochResets = recCounter("stash_topk_epoch_resets_total",
		"Epoch decays applied to hot-key top-K sketches.")
)

func recCounter(name, help string) *Counter {
	r := Default()
	r.Help(name, help)
	return r.Counter(name)
}

// queryIDCounter backs NextQueryID.
var queryIDCounter atomic.Uint64

// NextQueryID returns the next process-monotonic query id (starting at 1).
// The serve path stamps it into each recorded ProfileData so the slow-query
// log line and the flight-recorder entry for the same query share an id.
func NextQueryID() uint64 { return queryIDCounter.Add(1) }

// flightStripes is the fixed stripe count of a FlightRecorder; recording
// round-robins across stripes so concurrent recorders contend 1/8th as often
// as a single-lock ring.
const flightStripes = 8

// FlightRecorder is a bounded ring of the most recent completed profiles.
// A nil *FlightRecorder is a valid disabled recorder: Record and Snapshot
// are no-ops.
type FlightRecorder struct {
	cursor  atomic.Uint64
	stripes [flightStripes]flightStripe
	cap     int
}

type flightStripe struct {
	mu   sync.Mutex
	buf  []ProfileData
	next int
	n    int // occupied slots
}

// NewFlightRecorder returns a recorder keeping the last n profiles
// (rounded up to a multiple of the stripe count). n <= 0 returns nil — the
// disabled recorder.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		return nil
	}
	per := (n + flightStripes - 1) / flightStripes
	r := &FlightRecorder{cap: per * flightStripes}
	for i := range r.stripes {
		r.stripes[i].buf = make([]ProfileData, per)
	}
	return r
}

// Cap returns the recorder's slot capacity (0 when disabled).
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// Len returns the number of profiles currently held.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	total := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		total += s.n
		s.mu.Unlock()
	}
	return total
}

// Record stores one completed profile, evicting the stripe's oldest entry
// when full (counted as a drop).
func (r *FlightRecorder) Record(d ProfileData) {
	if r == nil {
		return
	}
	s := &r.stripes[r.cursor.Add(1)%flightStripes]
	s.mu.Lock()
	if s.n == len(s.buf) {
		mFlightRecDropped.Inc()
	} else {
		s.n++
	}
	s.buf[s.next] = d
	s.next = (s.next + 1) % len(s.buf)
	s.mu.Unlock()
}

// ProfileFilter selects profiles out of a recorder snapshot. The zero value
// matches everything.
type ProfileFilter struct {
	// MinMS keeps only profiles whose total latency is at least this many
	// milliseconds.
	MinMS float64
	// Level keeps only profiles at this hierarchy level (0 = any).
	Level int
	// ID keeps only the profile with this query id (0 = any).
	ID uint64
	// N truncates the result to the newest N profiles (0 = all).
	N int
}

// Snapshot returns the retained profiles matching f, newest first.
func (r *FlightRecorder) Snapshot(f ProfileFilter) []ProfileData {
	if r == nil {
		return nil
	}
	var out []ProfileData
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for j := 0; j < s.n; j++ {
			// Walk backwards from the write cursor: newest first per stripe.
			idx := (s.next - 1 - j + 2*len(s.buf)) % len(s.buf)
			d := s.buf[idx]
			if f.MinMS > 0 && d.TotalMS < f.MinMS {
				continue
			}
			if f.Level != 0 && d.Level != f.Level {
				continue
			}
			if f.ID != 0 && d.ID != f.ID {
				continue
			}
			out = append(out, d)
		}
		s.mu.Unlock()
	}
	// Stripes interleave by arrival; order globally by start time, newest
	// first (ties keep the per-stripe order, which is already newest-first).
	sortProfilesNewestFirst(out)
	if f.N > 0 && len(out) > f.N {
		out = out[:f.N]
	}
	return out
}

func sortProfilesNewestFirst(ps []ProfileData) {
	// Insertion sort: snapshots are small (bounded by the ring) and mostly
	// ordered already.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Start.After(ps[j-1].Start); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// SlowLog keeps profiles whose total latency crossed a threshold: each one
// is counted, written as a single JSON line to the sink (stderr in stashd),
// and retained in its own smaller ring for GET /debug/slow.
type SlowLog struct {
	threshold time.Duration
	ring      *FlightRecorder

	mu sync.Mutex
	w  io.Writer
}

// NewSlowLog returns a slow-query log keeping the last capacity offenders.
// threshold <= 0 or capacity <= 0 returns nil — the disabled log (Observe is
// a no-op on nil). w may be nil to retain without emitting.
func NewSlowLog(threshold time.Duration, capacity int, w io.Writer) *SlowLog {
	if threshold <= 0 || capacity <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, ring: NewFlightRecorder(capacity), w: w}
}

// Threshold returns the slow-query latency threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe records d if it is slow enough; returns true when it was.
func (l *SlowLog) Observe(d ProfileData) bool {
	if l == nil || d.TotalMS < float64(l.threshold.Microseconds())/1000 {
		return false
	}
	mSlowLogTotal.Inc()
	l.ring.Record(d)
	if l.w != nil {
		line := append(d.JSON(), '\n')
		l.mu.Lock()
		_, _ = l.w.Write(line)
		l.mu.Unlock()
	}
	return true
}

// Snapshot returns the retained slow profiles matching f, newest first.
func (l *SlowLog) Snapshot(f ProfileFilter) []ProfileData {
	if l == nil {
		return nil
	}
	return l.ring.Snapshot(f)
}
