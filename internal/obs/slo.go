package obs

// SLO engine: declared service-level objectives evaluated against the
// telemetry history with multi-window burn rates. Each objective compares an
// observed value — a windowed latency quantile or a counter-rate ratio —
// against its target over a fast window (reacts in minutes) and a slow window
// (filters noise): a fast-window breach alone is a warning, a fast-window
// breach at critical burn that the slow window corroborates is critical.
// State changes carry hysteresis — an objective must hold a new level for
// several consecutive evaluations before the alert moves — so a single bad
// sample never flaps an alert, and every transition lands in a bounded ring
// for /debug/alerts.
//
// A nil *SLOEngine is the disabled engine: every method is a no-op.

import (
	"math"
	"sort"
	"sync"
	"time"
)

// AlertState is an objective's typed alert level.
type AlertState int

// The alert levels, in escalation order.
const (
	StateOK AlertState = iota
	StateWarning
	StateCritical
)

func (s AlertState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarning:
		return "warning"
	case StateCritical:
		return "critical"
	}
	return "unknown"
}

// MarshalText renders the state as its name in JSON surfaces.
func (s AlertState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name (tests round-trip alert JSON).
func (s *AlertState) UnmarshalText(b []byte) error {
	switch string(b) {
	case "warning":
		*s = StateWarning
	case "critical":
		*s = StateCritical
	default:
		*s = StateOK
	}
	return nil
}

// Objective declares one SLO. Two shapes share the struct:
//
//   - Latency: Series names a histogram series; the objective holds when the
//     Quantile of the observations in the window stays at or under Target
//     (seconds). Burn = observed / Target.
//   - Ratio: Num and Den name counter series (flat names or bare families,
//     summed); the objective tracks rate(Num)/rate(Den) against Goal. With
//     HigherIsBetter false the ratio must stay at or under Goal (error
//     ratio; burn = ratio/Goal), with it true the ratio must stay at or
//     above Goal (hit ratio; burn = Goal/ratio).
//
// Series != "" selects the latency shape.
type Objective struct {
	Name string

	// Latency shape.
	Series   string
	Quantile float64
	Target   float64 // seconds

	// Ratio shape.
	Num, Den       []string
	Goal           float64
	HigherIsBetter bool

	// MinCount is the traffic guard: fewer observations (latency) or
	// denominator events (ratio) than this inside the fast window and the
	// objective evaluates as ok — no data is not an outage. Zero defaults
	// to 1.
	MinCount float64

	// CapState bounds how far this objective can escalate (zero = no cap,
	// i.e. critical allowed). Advisory objectives — e.g. cache hit ratio,
	// which legitimately collapses on a cold start — cap at warning so they
	// inform /debug/alerts without ever flipping the watchdog verdict.
	CapState AlertState
}

// BurnConfig tunes the engine's windows and hysteresis.
type BurnConfig struct {
	// FastWindow is the reactive window (default 5m); SlowWindow the
	// corroborating one (default 1h).
	FastWindow, SlowWindow time.Duration
	// WarnBurn and CritBurn are the burn-rate thresholds (default 1.0 and
	// 2.0): warning when the fast-window burn reaches WarnBurn, critical
	// when it reaches CritBurn while the slow window is also burning (>= 1).
	WarnBurn, CritBurn float64
	// EnterAfter is how many consecutive evaluations a *higher* level must
	// hold before the alert escalates (default 2); ClearAfter the same for
	// de-escalation (default 3). Hysteresis: one bad or good sample never
	// moves an alert.
	EnterAfter, ClearAfter int
	// Transitions bounds the transition ring (default 64).
	Transitions int
	// Now is the clock; nil uses time.Now.
	Now func() time.Time
}

func (c BurnConfig) withDefaults() BurnConfig {
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 1.0
	}
	if c.CritBurn <= 0 {
		c.CritBurn = 2.0
	}
	if c.EnterAfter <= 0 {
		c.EnterAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 3
	}
	if c.Transitions <= 0 {
		c.Transitions = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// AlertStatus is one objective's current evaluation.
type AlertStatus struct {
	Objective string     `json:"objective"`
	State     AlertState `json:"state"`
	// Value is the fast-window observed value (seconds for latency
	// objectives, a ratio otherwise); Target the declared bound.
	Value    float64   `json:"value"`
	Target   float64   `json:"target"`
	FastBurn float64   `json:"fastBurn"`
	SlowBurn float64   `json:"slowBurn"`
	Since    time.Time `json:"since"`
}

// Transition is one recorded alert state change.
type Transition struct {
	Objective string     `json:"objective"`
	From      AlertState `json:"from"`
	To        AlertState `json:"to"`
	At        time.Time  `json:"at"`
	Value     float64    `json:"value"`
}

type objState struct {
	state       AlertState
	since       time.Time
	pending     AlertState
	pendingRuns int
	last        AlertStatus
}

// SLOEngine evaluates declared objectives against a TSDB. Safe for
// concurrent use; all methods no-op on a nil receiver.
type SLOEngine struct {
	tsdb       *TSDB
	cfg        BurnConfig
	objectives []Objective

	mu        sync.Mutex
	states    map[string]*objState
	trans     []Transition
	transNext int
	transN    int
	evals     int
}

// NewSLOEngine returns an engine over t. A nil t (history disabled) or an
// empty objective list returns nil — the disabled engine.
func NewSLOEngine(t *TSDB, objectives []Objective, cfg BurnConfig) *SLOEngine {
	if t == nil || len(objectives) == 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	e := &SLOEngine{
		tsdb:       t,
		cfg:        cfg,
		objectives: objectives,
		states:     make(map[string]*objState, len(objectives)),
		trans:      make([]Transition, cfg.Transitions),
	}
	now := cfg.Now()
	for _, o := range objectives {
		e.states[o.Name] = &objState{since: now, last: AlertStatus{
			Objective: o.Name, Target: o.target(), Since: now,
		}}
	}
	return e
}

// target returns the objective's declared bound in status units.
func (o Objective) target() float64 {
	if o.Series != "" {
		return o.Target
	}
	return o.Goal
}

// Evaluate runs one evaluation pass over every objective and returns the
// resulting statuses. Call it after each TSDB sample (a Monitor does).
func (e *SLOEngine) Evaluate() []AlertStatus {
	if e == nil {
		return nil
	}
	now := e.cfg.Now()
	type eval struct {
		o      Objective
		status AlertStatus
		want   AlertState
	}
	evals := make([]eval, 0, len(e.objectives))
	for _, o := range e.objectives {
		st, want := e.evaluateObjective(o)
		evals = append(evals, eval{o: o, status: st, want: want})
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	out := make([]AlertStatus, 0, len(evals))
	for _, ev := range evals {
		s := e.states[ev.o.Name]
		want := ev.want
		if ev.o.CapState != 0 && want > ev.o.CapState {
			want = ev.o.CapState
		}
		if want == s.state {
			s.pendingRuns = 0
		} else {
			if want != s.pending {
				s.pending = want
				s.pendingRuns = 0
			}
			s.pendingRuns++
			need := e.cfg.EnterAfter
			if want < s.state {
				need = e.cfg.ClearAfter
			}
			if s.pendingRuns >= need {
				e.recordTransitionLocked(Transition{
					Objective: ev.o.Name, From: s.state, To: want, At: now, Value: ev.status.Value,
				})
				s.state = want
				s.since = now
				s.pendingRuns = 0
			}
		}
		ev.status.State = s.state
		ev.status.Since = s.since
		s.last = ev.status
		out = append(out, ev.status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// evaluateObjective computes the raw (pre-hysteresis) desired state.
func (e *SLOEngine) evaluateObjective(o Objective) (AlertStatus, AlertState) {
	st := AlertStatus{Objective: o.Name, Target: o.target()}
	minCount := o.MinCount
	if minCount <= 0 {
		minCount = 1
	}
	var fastBurn, slowBurn float64
	var traffic float64
	if o.Series != "" {
		vFast, cFast, okF := e.tsdb.QuantileOver(o.Series, o.Quantile, e.cfg.FastWindow)
		vSlow, _, okS := e.tsdb.QuantileOver(o.Series, o.Quantile, e.cfg.SlowWindow)
		if !okF || o.Target <= 0 {
			return st, StateOK
		}
		st.Value = vFast
		traffic = float64(cFast)
		fastBurn = vFast / o.Target
		if okS {
			slowBurn = vSlow / o.Target
		}
	} else {
		if o.Goal <= 0 {
			return st, StateOK
		}
		ratio := func(window time.Duration) (float64, float64, bool) {
			var num, den float64
			for _, n := range o.Num {
				if v, ok := e.tsdb.RateOver(n, window); ok {
					num += v
				}
			}
			okAny := false
			for _, n := range o.Den {
				if v, ok := e.tsdb.RateOver(n, window); ok {
					den += v
					okAny = true
				}
			}
			if !okAny || den <= 0 {
				return 0, 0, false
			}
			return num / den, den, true
		}
		rFast, denFast, okF := ratio(e.cfg.FastWindow)
		rSlow, _, okS := ratio(e.cfg.SlowWindow)
		if !okF {
			return st, StateOK
		}
		st.Value = rFast
		traffic = denFast * e.cfg.FastWindow.Seconds()
		fastBurn = ratioBurn(rFast, o.Goal, o.HigherIsBetter)
		if okS {
			slowBurn = ratioBurn(rSlow, o.Goal, o.HigherIsBetter)
		}
	}
	st.FastBurn = round3(fastBurn)
	st.SlowBurn = round3(slowBurn)
	if traffic < minCount {
		return st, StateOK
	}
	switch {
	case fastBurn >= e.cfg.CritBurn && slowBurn >= 1:
		return st, StateCritical
	case fastBurn >= e.cfg.WarnBurn:
		return st, StateWarning
	}
	return st, StateOK
}

// ratioBurn converts an observed ratio into a burn factor against its goal.
func ratioBurn(observed, goal float64, higherIsBetter bool) float64 {
	if !higherIsBetter {
		return observed / goal
	}
	if observed <= 0 {
		return math.Inf(1)
	}
	return goal / observed
}

func round3(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1000) / 1000
}

func (e *SLOEngine) recordTransitionLocked(tr Transition) {
	e.trans[e.transNext] = tr
	e.transNext = (e.transNext + 1) % len(e.trans)
	if e.transN < len(e.trans) {
		e.transN++
	}
}

// Current returns the latest status of every objective, sorted by name.
func (e *SLOEngine) Current() []AlertStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]AlertStatus, 0, len(e.states))
	for _, s := range e.states {
		out = append(out, s.last)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// WorstState returns the highest current alert level across objectives.
func (e *SLOEngine) WorstState() AlertState {
	if e == nil {
		return StateOK
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := StateOK
	for _, s := range e.states {
		if s.state > worst {
			worst = s.state
		}
	}
	return worst
}

// Transitions returns the recorded state changes, newest first.
func (e *SLOEngine) Transitions() []Transition {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Transition, 0, e.transN)
	for i := 0; i < e.transN; i++ {
		idx := (e.transNext - 1 - i + 2*len(e.trans)) % len(e.trans)
		out = append(out, e.trans[idx])
	}
	return out
}

// Evaluations returns how many Evaluate passes have run.
func (e *SLOEngine) Evaluations() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evals
}
