package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTSDB(t *testing.T, history int) (*Registry, *TSDB, *fakeClock) {
	t.Helper()
	reg := New()
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: history, Interval: time.Second, Now: clk.Now})
	if ts == nil {
		t.Fatal("NewTSDB returned nil for positive history")
	}
	return reg, ts, clk
}

func TestTSDBDisabled(t *testing.T) {
	if ts := NewTSDB(New(), TSDBConfig{History: 0}); ts != nil {
		t.Fatal("History 0 must return the nil (disabled) store")
	}
	var ts *TSDB
	if ts.Enabled() {
		t.Fatal("nil TSDB reports enabled")
	}
	ts.Sample() // must not panic
	if _, ok := ts.Query("x", 0, 1); ok {
		t.Fatal("nil Query reported ok")
	}
	if _, ok := ts.RateOver("x", time.Minute); ok {
		t.Fatal("nil RateOver reported ok")
	}
	if _, ok := ts.LastValue("x"); ok {
		t.Fatal("nil LastValue reported ok")
	}
	if _, _, ok := ts.QuantileOver("x", 0.99, time.Minute); ok {
		t.Fatal("nil QuantileOver reported ok")
	}
	if ts.Names() != nil || ts.Samples() != 0 || ts.History() != 0 {
		t.Fatal("nil accessors must return zero values")
	}
}

// The disabled path must be allocation-free: -history 0 means every call the
// serve path could make against the (nil) store costs nothing.
func TestTSDBDisabledZeroAlloc(t *testing.T) {
	var ts *TSDB
	var slo *SLOEngine
	var dog *Watchdog
	var mon *Monitor
	allocs := testing.AllocsPerRun(100, func() {
		ts.Sample()
		ts.RateOver("stash_coord_queries_total", time.Minute)
		ts.LastValue("stash_node_queue_depth")
		slo.Evaluate()
		slo.Current()
		slo.WorstState()
		dog.Check()
		dog.Verdict()
		mon.Tick()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocated %v times per run, want 0", allocs)
	}
}

func TestTSDBCounterRateAndDelta(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 64)
	c := reg.Counter("reqs_total")
	for i := 0; i < 10; i++ {
		c.Add(5) // 5 per second
		ts.Sample()
		clk.Advance(time.Second)
	}
	if got := ts.Samples(); got != 10 {
		t.Fatalf("Samples = %d, want 10", got)
	}
	rate, ok := ts.RateOver("reqs_total", 5*time.Second)
	if !ok {
		t.Fatal("RateOver found nothing")
	}
	if rate < 4.9 || rate > 5.1 {
		t.Fatalf("rate = %v, want ~5/s", rate)
	}
	delta, ok := ts.DeltaOver("reqs_total", 5*time.Second)
	if !ok || delta < 25 || delta > 30 {
		t.Fatalf("delta = %v ok=%v, want ~25 over 5s", delta, ok)
	}
	// Whole-history window: 45 added across the 9 intervals after the first
	// sample.
	delta, ok = ts.DeltaOver("reqs_total", 0)
	if !ok || delta != 45 {
		t.Fatalf("full-history delta = %v ok=%v, want 45", delta, ok)
	}
}

func TestTSDBFamilySumsAcrossLabels(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 16)
	okC := reg.Counter("outcomes_total", "outcome", "ok")
	errC := reg.Counter("outcomes_total", "outcome", "error")
	for i := 0; i < 5; i++ {
		okC.Add(9)
		errC.Add(1)
		ts.Sample()
		clk.Advance(time.Second)
	}
	total, ok := ts.RateOver("outcomes_total", 0)
	if !ok || total < 9.9 || total > 10.1 {
		t.Fatalf("family rate = %v ok=%v, want ~10/s", total, ok)
	}
	errOnly, ok := ts.RateOver(`outcomes_total{outcome="error"}`, 0)
	if !ok || errOnly < 0.9 || errOnly > 1.1 {
		t.Fatalf("exact-series rate = %v ok=%v, want ~1/s", errOnly, ok)
	}
	if _, ok := ts.RateOver("no_such_series", 0); ok {
		t.Fatal("unknown series reported ok")
	}
}

func TestTSDBGaugeLastValue(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 8)
	g := reg.Gauge("depth")
	for _, v := range []int64{3, 7, 2} {
		g.Set(v)
		ts.Sample()
		clk.Advance(time.Second)
	}
	v, ok := ts.LastValue("depth")
	if !ok || v != 2 {
		t.Fatalf("LastValue = %v ok=%v, want 2", v, ok)
	}
	avg, ok := ts.AvgOver("depth", 0)
	if !ok || avg != 4 {
		t.Fatalf("AvgOver = %v ok=%v, want 4", avg, ok)
	}
}

func TestTSDBWraparoundBoundedMemory(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 4)
	c := reg.Counter("wrap_total")
	for i := 0; i < 20; i++ {
		c.Inc()
		ts.Sample()
		clk.Advance(time.Second)
	}
	series, ok := ts.Query("wrap_total", 0, 1)
	if !ok || len(series) != 1 {
		t.Fatalf("Query ok=%v len=%d", ok, len(series))
	}
	pts := series[0].Points
	if len(pts) != 4 {
		t.Fatalf("ring retained %d points, want history=4", len(pts))
	}
	// The retained window is the newest 4 samples: values 17..20, ascending
	// in time.
	for i, p := range pts {
		if want := float64(17 + i); p.V != want {
			t.Fatalf("point %d = %v, want %v", i, p.V, want)
		}
		if i > 0 && !pts[i-1].T.Before(p.T) {
			t.Fatalf("points not chronological at %d", i)
		}
	}
}

func TestTSDBQueryWindowAndStep(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 64)
	c := reg.Counter("step_total")
	for i := 0; i < 30; i++ {
		c.Add(2)
		ts.Sample()
		clk.Advance(time.Second)
	}
	// window=10s keeps the newest ~11 samples; step=5 keeps every 5th going
	// backwards from the newest.
	series, ok := ts.Query("step_total", 10*time.Second, 5)
	if !ok {
		t.Fatal("Query found nothing")
	}
	pts := series[0].Points
	if len(pts) != 3 {
		t.Fatalf("downsampled to %d points, want 3", len(pts))
	}
	// Newest must always survive downsampling.
	if pts[len(pts)-1].V != 60 {
		t.Fatalf("newest point = %v, want 60", pts[len(pts)-1].V)
	}
	// Rates are per-second between retained points: 2/s regardless of step.
	for _, r := range series[0].Rate {
		if r.V < 1.9 || r.V > 2.1 {
			t.Fatalf("rate point = %v, want ~2/s", r.V)
		}
	}
}

func TestTSDBHistogramWindowedQuantiles(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 64)
	h := reg.Histogram("lat_seconds")
	// Phase 1: 5 ticks of fast observations.
	for i := 0; i < 5; i++ {
		for j := 0; j < 20; j++ {
			h.Observe(0.005)
		}
		ts.Sample()
		clk.Advance(time.Second)
	}
	// Phase 2: 5 ticks of slow observations.
	for i := 0; i < 5; i++ {
		for j := 0; j < 20; j++ {
			h.Observe(2.0)
		}
		ts.Sample()
		clk.Advance(time.Second)
	}
	// A window covering only phase 2 must see the slow p99; the since-boot
	// quantile would be dragged down by phase 1's observations.
	p99, count, ok := ts.QuantileOver("lat_seconds", 0.99, 4*time.Second)
	if !ok {
		t.Fatal("QuantileOver found nothing")
	}
	if count == 0 {
		t.Fatal("windowed count = 0")
	}
	if p99 < 1.0 {
		t.Fatalf("windowed p99 = %v, want >= 1s (slow phase only)", p99)
	}
	// The full-history window mixes both phases; its p50 must be fast-ish
	// or slow depending on mix — here exactly half the points are slow, so
	// p50 sits at the fast/slow boundary and p99 is slow.
	p99All, _, ok := ts.QuantileOver("lat_seconds", 0.99, 0)
	if !ok || p99All < 1.0 {
		t.Fatalf("full p99 = %v ok=%v, want >= 1s", p99All, ok)
	}
	// Timeline quantiles ride Query.
	series, ok := ts.Query("lat_seconds", 0, 1)
	if !ok || series[0].Quantiles == nil {
		t.Fatal("histogram Query missing quantiles")
	}
	if len(series[0].Quantiles["p99"]) == 0 {
		t.Fatal("no p99 points")
	}
}

func TestTSDBLateSeriesJoin(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 16)
	reg.Counter("early_total").Inc()
	ts.Sample()
	clk.Advance(time.Second)
	// A series registered after the store exists joins on the next sample.
	late := reg.Counter("late_total")
	late.Add(3)
	ts.Sample()
	names := ts.Names()
	want := []string{"early_total", "late_total"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	v, ok := ts.LastValue("late_total")
	if !ok || v != 3 {
		t.Fatalf("late series LastValue = %v ok=%v, want 3", v, ok)
	}
}

// TestTSDBConcurrentSampleAndRead exercises the ring buffers under -race:
// sampling, registration of new series, and every read path run concurrently.
func TestTSDBConcurrentSampleAndRead(t *testing.T) {
	reg, ts, clk := newTestTSDB(t, 32)
	c := reg.Counter("conc_total")
	h := reg.Histogram("conc_seconds")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // writer: metrics churn + new series
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(0.01)
			if i%50 == 0 {
				reg.Counter("conc_labeled_total", "i", fmt.Sprint(i)).Inc()
			}
			i++
		}
	}()
	go func() { // sampler
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts.Sample()
			clk.Advance(time.Millisecond)
		}
	}()
	go func() { // timeline reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts.Query("conc_total", time.Second, 2)
			ts.Query("conc_seconds", 0, 1)
			ts.Names()
		}
	}()
	go func() { // scalar readers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ts.RateOver("conc_total", time.Second)
			ts.QuantileOver("conc_seconds", 0.99, time.Second)
			ts.LastValue("conc_labeled_total")
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// BenchmarkTimelineOff measures the cost a disabled history adds to the serve
// path's bookkeeping: it must be 0 allocs/op (CI-gated).
func BenchmarkTimelineOff(b *testing.B) {
	var ts *TSDB
	var slo *SLOEngine
	var dog *Watchdog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.Sample()
		ts.RateOver("stash_coord_queries_total", time.Minute)
		slo.Evaluate()
		dog.Check()
	}
}
