package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// prof builds a minimal distinguishable ProfileData; i orders Start so
// newest-first assertions are deterministic.
func prof(i int, totalMS float64, level int) ProfileData {
	return ProfileData{
		Query:   fmt.Sprintf("q%d", i),
		Start:   time.Date(2015, 2, 2, 0, 0, 0, i, time.UTC),
		TotalMS: totalMS,
		Level:   level,
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	if r := NewFlightRecorder(0); r != nil {
		t.Fatal("capacity 0 should return the nil disabled recorder")
	}
	var r *FlightRecorder
	r.Record(prof(1, 1, 1)) // must not panic
	if r.Cap() != 0 || r.Len() != 0 || r.Snapshot(ProfileFilter{}) != nil {
		t.Error("nil recorder is not inert")
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(16)
	if r.Cap() != 16 {
		t.Fatalf("cap %d, want 16", r.Cap())
	}
	dropped := mFlightRecDropped.Value()
	for i := 0; i < 48; i++ {
		r.Record(prof(i, float64(i), 1))
	}
	// Memory is bounded by construction: wrapping three times over never
	// grows past capacity.
	if r.Len() != 16 {
		t.Fatalf("len %d after 48 records, want capacity 16", r.Len())
	}
	if got := mFlightRecDropped.Value() - dropped; got != 32 {
		t.Errorf("dropped counter advanced by %d, want 32", got)
	}
	ps := r.Snapshot(ProfileFilter{})
	if len(ps) != 16 {
		t.Fatalf("snapshot %d profiles, want 16", len(ps))
	}
	// Only the newest 16 survive, and the snapshot is newest-first. Recording
	// round-robins stripes in arrival order, so the retained set is exactly
	// the last 16 arrivals.
	for i, p := range ps {
		if want := fmt.Sprintf("q%d", 47-i); p.Query != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, p.Query, want)
		}
	}
}

func TestFlightRecorderFilters(t *testing.T) {
	r := NewFlightRecorder(32)
	for i := 0; i < 20; i++ {
		r.Record(prof(i, float64(i), 1+i%3))
	}
	if got := r.Snapshot(ProfileFilter{MinMS: 15}); len(got) != 5 {
		t.Errorf("MinMS=15 matched %d, want 5 (totals 15..19)", len(got))
	}
	byLevel := r.Snapshot(ProfileFilter{Level: 2})
	for _, p := range byLevel {
		if p.Level != 2 {
			t.Errorf("Level=2 filter returned level %d", p.Level)
		}
	}
	if len(byLevel) != 7 {
		t.Errorf("Level=2 matched %d, want 7", len(byLevel))
	}
	top := r.Snapshot(ProfileFilter{N: 3})
	if len(top) != 3 || top[0].Query != "q19" || top[2].Query != "q17" {
		t.Errorf("N=3 returned %+v, want q19,q18,q17", top)
	}
	if got := r.Snapshot(ProfileFilter{MinMS: 10, Level: 1, N: 2}); len(got) > 2 {
		t.Errorf("combined filter returned %d, want <= 2", len(got))
	}
}

// TestFlightRecorderConcurrent hammers Record/Snapshot/Len from many
// goroutines; run under -race this is the striping's correctness check, and
// the Len bound is the memory guarantee under contention.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(prof(w*1000+i, float64(i%50), 1+i%4))
				if i%100 == 0 {
					_ = r.Snapshot(ProfileFilter{MinMS: 10, N: 8})
					if n := r.Len(); n > r.Cap() {
						t.Errorf("len %d exceeds cap %d mid-flight", n, r.Cap())
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != r.Cap() {
		t.Errorf("len %d after %d records, want full cap %d", r.Len(), writers*500, r.Cap())
	}
	if got := r.Snapshot(ProfileFilter{}); len(got) != r.Cap() {
		t.Errorf("snapshot %d, want %d", len(got), r.Cap())
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if l := NewSlowLog(0, 8, nil); l != nil {
		t.Error("zero threshold should disable the slow log")
	}
	if l := NewSlowLog(time.Millisecond, 0, nil); l != nil {
		t.Error("zero capacity should disable the slow log")
	}
	var l *SlowLog
	if l.Observe(prof(1, 100, 1)) {
		t.Error("nil slow log observed a profile")
	}
	if l.Threshold() != 0 || l.Snapshot(ProfileFilter{}) != nil {
		t.Error("nil slow log is not inert")
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(10*time.Millisecond, 8, &buf)
	if l.Threshold() != 10*time.Millisecond {
		t.Fatalf("threshold %v", l.Threshold())
	}
	total := mSlowLogTotal.Value()

	if l.Observe(prof(1, 9.99, 1)) {
		t.Error("profile under threshold logged as slow")
	}
	if !l.Observe(prof(2, 10, 1)) {
		t.Error("profile at threshold not logged")
	}
	if !l.Observe(prof(3, 250, 2)) {
		t.Error("profile over threshold not logged")
	}
	if got := mSlowLogTotal.Value() - total; got != 2 {
		t.Errorf("slowlog counter advanced by %d, want 2", got)
	}

	ps := l.Snapshot(ProfileFilter{})
	if len(ps) != 2 || ps[0].Query != "q3" || ps[1].Query != "q2" {
		t.Fatalf("slow ring %+v, want q3,q2 newest first", ps)
	}

	// The sink receives one parseable JSON object per line, in order.
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2: %q", len(lines), buf.String())
	}
	for i, want := range []string{"q2", "q3"} {
		var d ProfileData
		if err := json.Unmarshal(lines[i], &d); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if d.Query != want {
			t.Errorf("line %d query %s, want %s", i, d.Query, want)
		}
	}
}

// TestSlowLogNilWriter: retention works without a sink (the /debug/slow-only
// configuration).
func TestSlowLogNilWriter(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 4, nil)
	if !l.Observe(prof(1, 5, 1)) {
		t.Fatal("slow profile not observed")
	}
	if len(l.Snapshot(ProfileFilter{})) != 1 {
		t.Error("slow profile not retained")
	}
}
