package obs

// Telemetry history: a zero-dependency, in-process time-series store. A TSDB
// samples a Registry's Snapshot on a fixed cadence into per-series ring
// buffers, so the process can answer "how has this been trending" — not just
// "what is it right now" — without an external Prometheus. Memory is bounded
// by construction: O(series × history) slots, allocated once per series and
// reused forever; a steady-state Sample performs no allocation beyond the
// registry snapshot itself.
//
// Counters are stored raw (cumulative) and differentiated at query time
// (RateOver / DeltaOver), histograms keep their cumulative per-bucket counts
// so quantiles can be extracted over any trailing window from bucket deltas —
// the windowed p99 an SLO burn rate needs, as opposed to the since-boot
// quantiles /metrics exposes.
//
// The clock is injectable, so tests drive a deterministic timeline; a nil
// *TSDB is a valid disabled store (History <= 0): every method is an
// allocation-free no-op, and no goroutine exists anywhere in the layer.

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// TSDBConfig sizes a telemetry history store.
type TSDBConfig struct {
	// History is the ring capacity: samples retained per series. <= 0
	// disables the store entirely (NewTSDB returns nil).
	History int
	// Interval is the nominal sampling cadence. It is metadata for the
	// store itself (Sample is caller-driven) and the tick period a Monitor
	// uses. Zero defaults to one second.
	Interval time.Duration
	// Now is the clock; nil uses time.Now. Tests inject a fake clock to
	// drive deterministic timelines.
	Now func() time.Time
}

// DefaultTSDBInterval is the sampling cadence used when none is configured.
const DefaultTSDBInterval = time.Second

// TSDB is the in-memory time-series store. All methods are safe for
// concurrent use and are no-ops (or empty results) on a nil receiver.
type TSDB struct {
	reg      *Registry
	history  int
	interval time.Duration
	now      func() time.Time

	mu      sync.RWMutex
	series  map[string]*tsRing
	names   []string // kept sorted for deterministic listings
	samples int
}

// NewTSDB returns a history store sampling reg (nil selects the process
// default registry). cfg.History <= 0 returns nil — the disabled store.
func NewTSDB(reg *Registry, cfg TSDBConfig) *TSDB {
	if cfg.History <= 0 {
		return nil
	}
	if reg == nil {
		reg = Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultTSDBInterval
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &TSDB{
		reg:      reg,
		history:  cfg.History,
		interval: cfg.Interval,
		now:      cfg.Now,
		series:   map[string]*tsRing{},
	}
}

// tsRing is one series' ring: parallel timestamp/value arrays plus, for
// histograms, per-slot cumulative bucket counts (each slot's slice is
// allocated once and overwritten in place on wrap).
type tsRing struct {
	kind    Kind
	ts      []int64   // unix milliseconds
	val     []float64 // counter/gauge value; histogram cumulative count
	sum     []float64 // histogram cumulative sum, nil otherwise
	counts  [][]uint64
	bounds  []float64
	n, next int
}

func newTSRing(history int, m Metric) *tsRing {
	r := &tsRing{
		kind: m.Kind,
		ts:   make([]int64, history),
		val:  make([]float64, history),
	}
	if m.Kind == KindHistogram && m.Hist != nil {
		r.bounds = m.Hist.Bounds
		r.sum = make([]float64, history)
		r.counts = make([][]uint64, history)
	}
	return r
}

func (r *tsRing) push(tsMilli int64, m Metric) {
	slot := r.next
	r.ts[slot] = tsMilli
	if r.kind == KindHistogram && m.Hist != nil {
		r.val[slot] = float64(m.Count)
		r.sum[slot] = m.Sum
		if r.counts[slot] == nil {
			r.counts[slot] = make([]uint64, len(m.Hist.Counts))
		}
		copy(r.counts[slot], m.Hist.Counts)
	} else {
		r.val[slot] = m.Value
	}
	r.next = (r.next + 1) % len(r.ts)
	if r.n < len(r.ts) {
		r.n++
	}
}

// slotIdx maps i in [0, n) — oldest first — to the backing array index.
func (r *tsRing) slotIdx(i int) int {
	return (r.next - r.n + i + 2*len(r.ts)) % len(r.ts)
}

// Enabled reports whether the store exists (the -history 0 probe).
func (t *TSDB) Enabled() bool { return t != nil }

// History returns the per-series ring capacity (0 when disabled).
func (t *TSDB) History() int {
	if t == nil {
		return 0
	}
	return t.history
}

// Interval returns the nominal sampling cadence (0 when disabled).
func (t *TSDB) Interval() time.Duration {
	if t == nil {
		return 0
	}
	return t.interval
}

// Samples returns how many Sample calls have run.
func (t *TSDB) Samples() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.samples
}

// Names returns every retained series name, sorted.
func (t *TSDB) Names() []string {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// flatSeriesName renders a Metric's flat series key: name or name{labels},
// matching FlatSnapshot's base keys.
func flatSeriesName(m Metric) string {
	if lb := renderLabels(m.Labels); lb != "" {
		return m.Name + "{" + lb + "}"
	}
	return m.Name
}

// Sample takes one sample of every registered series at the clock's current
// time. Series appearing after construction (new families, new label sets)
// join the store on the sample that first sees them.
func (t *TSDB) Sample() {
	if t == nil {
		return
	}
	nowMilli := t.now().UnixMilli()
	snap := t.reg.Snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples++
	for _, m := range snap {
		key := flatSeriesName(m)
		r := t.series[key]
		if r == nil {
			r = newTSRing(t.history, m)
			t.series[key] = r
			i := sort.SearchStrings(t.names, key)
			t.names = append(t.names, "")
			copy(t.names[i+1:], t.names[i:])
			t.names[i] = key
		}
		r.push(nowMilli, m)
	}
}

// Point is one sample of one series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// SeriesData is one series' retained timeline, as served by /debug/timeline.
// Points carry the raw sampled values (cumulative for counters and histogram
// counts, instantaneous for gauges). Rate carries the per-second derivative
// between consecutive retained points for counters and histogram counts.
// Quantiles carries, for histograms, the latency quantiles of the
// observations recorded between consecutive retained points — with ?step=k
// each point therefore summarizes a k×interval window.
type SeriesData struct {
	Name      string             `json:"name"`
	Kind      string             `json:"kind"`
	Points    []Point            `json:"points"`
	Rate      []Point            `json:"rate,omitempty"`
	Quantiles map[string][]Point `json:"quantiles,omitempty"`
}

// seriesFamily returns the metric family of a flat series name (the part
// before the label block).
func seriesFamily(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// match returns the rings matching name: an exact flat series name, or a bare
// family name matching every labeled series of that family. Caller holds at
// least the read lock.
func (t *TSDB) matchLocked(name string) []*tsRing {
	if r := t.series[name]; r != nil {
		return []*tsRing{r}
	}
	var out []*tsRing
	for _, key := range t.names {
		if seriesFamily(key) == name {
			out = append(out, t.series[key])
		}
	}
	return out
}

// matchNamesLocked is matchLocked returning the names instead.
func (t *TSDB) matchNamesLocked(name string) []string {
	if t.series[name] != nil {
		return []string{name}
	}
	var out []string
	for _, key := range t.names {
		if seriesFamily(key) == name {
			out = append(out, key)
		}
	}
	return out
}

// Query returns the retained timeline of every series matching name (exact
// flat name, or bare family name). window > 0 restricts to the trailing
// window (measured from the newest sample); step > 1 downsamples, always
// keeping the newest sample. ok is false when nothing matches.
func (t *TSDB) Query(name string, window time.Duration, step int) ([]SeriesData, bool) {
	if t == nil {
		return nil, false
	}
	if step < 1 {
		step = 1
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := t.matchNamesLocked(name)
	if len(names) == 0 {
		return nil, false
	}
	out := make([]SeriesData, 0, len(names))
	for _, key := range names {
		out = append(out, t.seriesDataLocked(key, t.series[key], window, step))
	}
	return out, true
}

func (t *TSDB) seriesDataLocked(name string, r *tsRing, window time.Duration, step int) SeriesData {
	d := SeriesData{Name: name, Kind: r.kind.String()}
	if r.n == 0 {
		return d
	}
	newest := r.ts[r.slotIdx(r.n-1)]
	cutoff := int64(math.MinInt64)
	if window > 0 {
		cutoff = newest - window.Milliseconds()
	}
	// Select retained indices newest-backwards so the newest sample always
	// survives downsampling, then reverse into chronological order.
	var idxs []int
	for i := r.n - 1; i >= 0; i -= step {
		if r.ts[r.slotIdx(i)] < cutoff {
			break
		}
		idxs = append(idxs, i)
	}
	for lo, hi := 0, len(idxs)-1; lo < hi; lo, hi = lo+1, hi-1 {
		idxs[lo], idxs[hi] = idxs[hi], idxs[lo]
	}
	for _, i := range idxs {
		slot := r.slotIdx(i)
		d.Points = append(d.Points, Point{T: time.UnixMilli(r.ts[slot]), V: r.val[slot]})
	}
	cumulative := r.kind == KindCounter || r.kind == KindHistogram
	if cumulative && len(idxs) >= 2 {
		for k := 1; k < len(idxs); k++ {
			a, b := r.slotIdx(idxs[k-1]), r.slotIdx(idxs[k])
			dt := float64(r.ts[b]-r.ts[a]) / 1000
			delta := r.val[b] - r.val[a]
			rate := 0.0
			if dt > 0 && delta > 0 {
				rate = delta / dt
			}
			d.Rate = append(d.Rate, Point{T: time.UnixMilli(r.ts[b]), V: rate})
		}
	}
	if r.kind == KindHistogram && r.counts != nil && len(idxs) >= 2 {
		d.Quantiles = map[string][]Point{}
		for _, q := range [...]struct {
			name string
			q    float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			pts := make([]Point, 0, len(idxs)-1)
			for k := 1; k < len(idxs); k++ {
				a, b := r.slotIdx(idxs[k-1]), r.slotIdx(idxs[k])
				v := bucketDeltaQuantile(r.bounds, r.counts[a], r.counts[b], q.q)
				pts = append(pts, Point{T: time.UnixMilli(r.ts[b]), V: v})
			}
			d.Quantiles[q.name] = pts
		}
	}
	return d
}

// bucketDeltaQuantile extracts a quantile from the observations recorded
// between two cumulative bucket snapshots.
func bucketDeltaQuantile(bounds []float64, older, newer []uint64, q float64) float64 {
	if older == nil || newer == nil {
		return 0
	}
	delta := make([]uint64, len(newer))
	for i := range newer {
		if i < len(older) && newer[i] >= older[i] {
			delta[i] = newer[i] - older[i]
		}
	}
	return HistSnapshot{Bounds: bounds, Counts: delta}.Quantile(q)
}

// windowEndpoints returns the baseline and newest array slots for a trailing
// window: the baseline is the newest sample at or before the window start
// (so the delta covers at least the window when history allows), falling
// back to the oldest retained sample. ok is false with fewer than 2 samples.
func (r *tsRing) windowEndpoints(window time.Duration) (a, b int, ok bool) {
	if r.n < 2 {
		return 0, 0, false
	}
	last := r.n - 1
	b = r.slotIdx(last)
	cutoff := r.ts[b] - window.Milliseconds()
	first := 0
	if window > 0 {
		for i := last - 1; i >= 0; i-- {
			if r.ts[r.slotIdx(i)] <= cutoff {
				first = i
				break
			}
		}
	}
	a = r.slotIdx(first)
	if r.ts[b] <= r.ts[a] {
		return 0, 0, false
	}
	return a, b, true
}

// DeltaOver returns the summed value change of every series matching name
// (exact or family) over the trailing window (0 = whole retained history).
// ok is false when no matching series has two samples.
func (t *TSDB) DeltaOver(name string, window time.Duration) (float64, bool) {
	d, _, ok := t.deltaSpan(name, window)
	return d, ok
}

// RateOver returns the summed per-second rate of change over the trailing
// window. Negative per-series deltas (a gauge falling, a counter family
// re-registered) clamp to zero, keeping the result a rate of increase.
func (t *TSDB) RateOver(name string, window time.Duration) (float64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total float64
	found := false
	for _, r := range t.matchLocked(name) {
		a, b, ok := r.windowEndpoints(window)
		if !ok {
			continue
		}
		found = true
		if delta := r.val[b] - r.val[a]; delta > 0 {
			total += delta / (float64(r.ts[b]-r.ts[a]) / 1000)
		}
	}
	return total, found
}

func (t *TSDB) deltaSpan(name string, window time.Duration) (delta, spanSec float64, ok bool) {
	if t == nil {
		return 0, 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.matchLocked(name) {
		a, b, eok := r.windowEndpoints(window)
		if !eok {
			continue
		}
		ok = true
		delta += r.val[b] - r.val[a]
		if s := float64(r.ts[b]-r.ts[a]) / 1000; s > spanSec {
			spanSec = s
		}
	}
	return delta, spanSec, ok
}

// LastValue returns the newest sample of the series (summed across a family
// match). ok is false when nothing matches or nothing was sampled yet.
func (t *TSDB) LastValue(name string) (float64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total float64
	found := false
	for _, r := range t.matchLocked(name) {
		if r.n == 0 {
			continue
		}
		found = true
		total += r.val[r.slotIdx(r.n-1)]
	}
	return total, found
}

// AvgOver returns the mean of the samples inside the trailing window, summed
// across a family match — the right reduction for level gauges like queue
// depth. ok is false when nothing matched.
func (t *TSDB) AvgOver(name string, window time.Duration) (float64, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total float64
	found := false
	for _, r := range t.matchLocked(name) {
		if r.n == 0 {
			continue
		}
		newest := r.ts[r.slotIdx(r.n-1)]
		cutoff := int64(math.MinInt64)
		if window > 0 {
			cutoff = newest - window.Milliseconds()
		}
		var sum float64
		var cnt int
		for i := r.n - 1; i >= 0; i-- {
			slot := r.slotIdx(i)
			if r.ts[slot] < cutoff {
				break
			}
			sum += r.val[slot]
			cnt++
		}
		if cnt > 0 {
			found = true
			total += sum / float64(cnt)
		}
	}
	return total, found
}

// QuantileOver extracts the q-quantile of the observations a histogram series
// recorded during the trailing window (bucket-count delta between the window
// endpoints), plus how many observations that window held. ok is false when
// the series is not a sampled histogram or has fewer than two samples.
func (t *TSDB) QuantileOver(name string, q float64, window time.Duration) (v float64, count uint64, ok bool) {
	if t == nil {
		return 0, 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rs := t.matchLocked(name)
	if len(rs) != 1 || rs[0].kind != KindHistogram || rs[0].counts == nil {
		return 0, 0, false
	}
	r := rs[0]
	a, b, eok := r.windowEndpoints(window)
	if !eok {
		return 0, 0, false
	}
	if d := r.val[b] - r.val[a]; d > 0 {
		count = uint64(d)
	}
	return bucketDeltaQuantile(r.bounds, r.counts[a], r.counts[b], q), count, true
}
