// Package obs is the repo's zero-dependency observability substrate:
//
//   - a concurrent metrics registry of atomic counters, gauges, and
//     fixed-bucket exponential histograms, exposed in Prometheus text
//     format (metrics.go, prom.go), and
//   - lightweight span tracing propagated through context.Context across
//     the full query path, exportable as a nested span tree or as Chrome
//     trace-event JSON loadable in Perfetto / chrome://tracing (span.go).
//
// The paper's whole argument is latency decomposition — cache hit vs. disk
// path, hop counts, replication absorbing hotspots (§VI) — so every layer
// (frontend cache probe → coordinator fan-out → per-node graph lookup →
// galileo disk scan → merge) registers its counters and stage histograms
// here and opens spans on the request path.
//
// Metrics are cheap enough for hot paths: a counter increment is one atomic
// add, a histogram observation is a binary search over ~20 bucket bounds
// plus two atomic adds. Span creation is a handful of allocations but only
// happens when the caller installed a Trace in the context (StartSpan is a
// nil-cheap no-op otherwise), so untraced production queries pay one
// context value lookup.
//
// The package depends only on the standard library; the process-wide
// Default() registry is what cmd/stashd serves at GET /metrics.
package obs
