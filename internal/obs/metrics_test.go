package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas are dropped: counters stay monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
	if again := r.Counter("reqs_total"); again != c {
		t.Fatal("re-registering a counter must return the same handle")
	}

	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge value %d, want 7", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := New()
	hit := r.Counter("cache_total", "tier", "frontend", "op", "hit")
	miss := r.Counter("cache_total", "tier", "frontend", "op", "miss")
	if hit == miss {
		t.Fatal("different label sets must be different series")
	}
	hit.Inc()
	// Label order must not matter: (op, tier) resolves to the (tier, op) series.
	same := r.Counter("cache_total", "op", "hit", "tier", "frontend")
	if same != hit {
		t.Fatal("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge on a counter family must panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHelpBeforeKindIsAdopted(t *testing.T) {
	// Help may create the family before the first series fixes its kind; the
	// first real registration must adopt the kind rather than panic.
	r := New()
	r.Help("nodes", "ring size")
	g := r.Gauge("nodes")
	g.Set(3)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE nodes gauge") {
		t.Fatalf("help-first family lost its gauge kind:\n%s", buf.String())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := New()
	v := 1.0
	r.GaugeFunc("live", func() float64 { return v })
	snap := r.FlatSnapshot()
	if snap["live"] != 1 {
		t.Fatalf("gauge func snapshot %v, want 1", snap["live"])
	}
	// Re-registering replaces the callback.
	r.GaugeFunc("live", func() float64 { return 42 })
	if snap = r.FlatSnapshot(); snap["live"] != 42 {
		t.Fatalf("replaced gauge func snapshot %v, want 42", snap["live"])
	}
}

func TestRegistryConcurrency(t *testing.T) {
	// Hammer registration, observation, and exposition concurrently; run
	// with -race in CI.
	r := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tiers := []string{"frontend", "local", "guest"}
			for n := 0; n < 500; n++ {
				c := r.Counter("conc_total", "tier", tiers[n%len(tiers)])
				c.Inc()
				h := r.Histogram("conc_lat_seconds")
				h.Observe(float64(n) * 1e-4)
				g := r.Gauge("conc_gauge")
				g.Add(1)
			}
		}(i)
	}
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			_ = r.WritePrometheus(&buf)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()

	var total int64
	for _, m := range r.Snapshot() {
		if m.Name == "conc_total" {
			total += int64(m.Value)
		}
	}
	if total != 4*500 {
		t.Fatalf("concurrent counter total %d, want %d", total, 4*500)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.HistogramBuckets("lat", []float64{1, 2, 4})
	// Prometheus buckets are le (inclusive upper bounds): 1.0 lands in the
	// first bucket, 1.0001 in the second, 4.5 in +Inf.
	h.Observe(0.5)
	h.Observe(1.0)
	h.Observe(1.0001)
	h.Observe(2.0)
	h.Observe(4.0)
	h.Observe(4.5)
	snap := h.Snapshot()
	want := []uint64{2, 2, 1, 1} // le=1, le=2, le=4, +Inf
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d count %d, want %d", i, snap.Counts[i], w)
		}
	}
	if snap.Count != 6 {
		t.Errorf("count %d, want 6", snap.Count)
	}
	if got, want := snap.Sum, 0.5+1.0+1.0001+2.0+4.0+4.5; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum %v, want %v", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the first bucket
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Errorf("p50 %v outside first bucket (0,10]", q)
	}
	// +Inf-bucket values clamp to the highest finite bound.
	h2 := newHistogram([]float64{10})
	h2.Observe(1e9)
	if q := h2.Quantile(0.99); q != 10 {
		t.Errorf("+Inf bucket quantile %v, want clamp to 10", q)
	}
	// Empty histogram reports 0.
	h3 := newHistogram([]float64{1})
	if q := h3.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile %v, want 0", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	def := DefBuckets()
	if len(def) != 20 || def[0] != 100e-6 {
		t.Fatalf("unexpected default buckets: %v", def)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Help("app_requests_total", "Requests by outcome.")
	r.Counter("app_requests_total", "outcome", "ok").Add(3)
	r.Counter("app_requests_total", "outcome", "error").Inc()
	r.Help("app_depth", "Live depth.")
	r.Gauge("app_depth").Set(2)
	h := r.HistogramBuckets("app_latency_seconds", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.25)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_depth Live depth.
# TYPE app_depth gauge
app_depth 2
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="0.5"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 2.3
app_latency_seconds_count 3
# HELP app_requests_total Requests by outcome.
# TYPE app_requests_total counter
app_requests_total{outcome="error"} 1
app_requests_total{outcome="ok"} 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("esc_total", "q", "a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `q="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
}

func TestFlatSnapshotHistogramKeys(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "stage", "merge")
	h.ObserveDuration(2 * time.Millisecond)
	flat := r.FlatSnapshot()
	base := `lat_seconds{stage="merge"}`
	if flat[base+"_count"] != 1 {
		t.Errorf("count entry missing: %v", flat)
	}
	for _, q := range []string{"_p50", "_p95", "_p99", "_sum"} {
		if _, ok := flat[base+q]; !ok {
			t.Errorf("flat snapshot missing %s%s", base, q)
		}
	}
}

func TestDefaultRegistryIsShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the process-wide registry")
	}
}
