package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// ctxKey namespaces the package's context values.
type ctxKey int

const (
	traceCtxKey ctxKey = iota
	spanCtxKey
)

// Trace collects the spans of one request. It is safe for concurrent use:
// the coordinator fans sub-requests out across goroutines and each opens
// spans against the same trace.
type Trace struct {
	start time.Time

	mu    sync.Mutex
	next  int64
	spans []*Span
}

// NewTrace installs a fresh trace in the context and returns both. Every
// StartSpan under the returned context records into this trace.
func NewTrace(ctx context.Context) (context.Context, *Trace) {
	t := &Trace{start: time.Now()}
	return context.WithValue(ctx, traceCtxKey, t), t
}

// TraceFromContext returns the context's trace, or nil when untraced.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey).(*Trace)
	return t
}

// Span is one timed stage of a traced request. A nil *Span is a valid
// no-op receiver for every method, so instrumentation sites never need to
// check whether tracing is on.
type Span struct {
	tr     *Trace
	id     int64
	parent int64 // 0 = no parent
	name   string
	start  time.Time

	mu    sync.Mutex
	end   time.Time
	attrs map[string]string
}

// StartSpan opens a span named name under the context's current span (or as
// a root when none) and returns a derived context carrying it. When the
// context holds no trace it returns the context unchanged and a nil span —
// the untraced fast path costs one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if p, _ := ctx.Value(spanCtxKey).(*Span); p != nil {
		parent = p.id
	}
	t.mu.Lock()
	t.next++
	s := &Span{tr: t, id: t.next, parent: parent, name: name, start: time.Now()}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey, s), s
}

// SetAttr attaches a key=value annotation (node id, key counts, outcomes).
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// End closes the span (idempotent) and returns its duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	return s.end.Sub(s.start)
}

// SpanData is an immutable copy of one span.
type SpanData struct {
	ID     int64
	Parent int64
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  map[string]string
}

// Snapshot copies every span, ordered by start time (ties by id, which is
// creation order). Unfinished spans are measured up to now.
func (t *Trace) Snapshot() []SpanData {
	now := time.Now()
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanData, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		end := s.end
		if end.IsZero() {
			end = now
		}
		attrs := make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		s.mu.Unlock()
		if len(attrs) == 0 {
			attrs = nil
		}
		out = append(out, SpanData{
			ID: s.id, Parent: s.parent, Name: s.name,
			Start: s.start, Dur: end.Sub(s.start), Attrs: attrs,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SpanNode is one vertex of the nested span tree (the ?trace=1 response
// shape). Offsets and durations are microseconds from trace start.
type SpanNode struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"startUs"`
	DurUS    int64             `json:"durUs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Tree assembles the span forest: roots are spans with no (or an unknown)
// parent; children are ordered by start time.
func (t *Trace) Tree() []*SpanNode {
	data := t.Snapshot()
	nodes := make(map[int64]*SpanNode, len(data))
	for _, d := range data {
		nodes[d.ID] = &SpanNode{
			Name:    d.Name,
			StartUS: d.Start.Sub(t.start).Microseconds(),
			DurUS:   d.Dur.Microseconds(),
			Attrs:   d.Attrs,
		}
	}
	var roots []*SpanNode
	for _, d := range data { // data is start-ordered, so children append in order
		if p, ok := nodes[d.Parent]; ok && d.Parent != d.ID {
			p.Children = append(p.Children, nodes[d.ID])
			continue
		}
		roots = append(roots, nodes[d.ID])
	}
	return roots
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds from trace start
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the JSON Object Format Perfetto and chrome://tracing load.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the trace as Chrome trace-event JSON (complete "X"
// events), loadable in Perfetto or chrome://tracing. Each root's direct
// subtree is placed on its own track (tid) so concurrent fan-out shares
// render side by side while the sequential spans inside one share nest.
func (t *Trace) WriteChrome(w io.Writer) error {
	data := t.Snapshot()
	parentOf := make(map[int64]int64, len(data))
	for _, d := range data {
		parentOf[d.ID] = d.Parent
	}
	// lane: the ancestor that is a direct child of a root (or the span
	// itself when it is a root or a root's child).
	lane := func(id int64) int64 {
		for {
			p := parentOf[id]
			if p == 0 {
				return id // root: own track
			}
			if parentOf[p] == 0 {
				return id // direct child of a root anchors the track
			}
			id = p
		}
	}
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(data))}
	for _, d := range data {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: d.Name,
			Cat:  "stash",
			Ph:   "X",
			TS:   d.Start.Sub(t.start).Microseconds(),
			Dur:  d.Dur.Microseconds(),
			PID:  1,
			TID:  lane(d.ID),
			Args: d.Attrs,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
