package obs

// Cluster health watchdog: folds the SLO engine's alert states with
// structural signals the cluster already exports — queue-depth gauges,
// breaker trips, retry storms, epoch churn, flight-recorder drops — into a
// single degradation verdict that /healthz can report. Structural rules get
// the same hysteresis treatment as SLOs: a rule must breach on consecutive
// checks before it contributes to the verdict and must stay clean for
// several checks before it clears.
//
// A nil *Watchdog is the disabled watchdog: Check returns a healthy verdict.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// RuleKind selects how a structural Rule reads its series.
type RuleKind int

// The rule kinds.
const (
	// RuleRate breaches when the counter family's per-second rate over the
	// window reaches Threshold.
	RuleRate RuleKind = iota
	// RuleLast breaches when the series' most recent sample reaches
	// Threshold (gauges: queue depth).
	RuleLast
	// RuleDelta breaches when the series' change over the window reaches
	// Threshold (epoch churn).
	RuleDelta
)

// Rule is one structural health signal.
type Rule struct {
	// Name labels the rule in verdict reasons.
	Name string
	// Series is the flat series name or bare family (summed across labels).
	Series string
	Kind   RuleKind
	// Threshold is the breach bound; values at or above it breach.
	// Threshold <= 0 disables the rule.
	Threshold float64
	// Window for RuleRate/RuleDelta; zero uses WatchdogConfig.Window.
	Window time.Duration
	// Critical rules flip the verdict to degraded; advisory (false) rules
	// only surface as warnings.
	Critical bool
}

// WatchdogConfig tunes the watchdog.
type WatchdogConfig struct {
	// Window is the default lookback for rate/delta rules (default 5m).
	Window time.Duration
	// EnterAfter consecutive breaching checks activate a rule (default 2);
	// ClearAfter consecutive clean checks deactivate it (default 3).
	EnterAfter, ClearAfter int
	// Now is the clock; nil uses time.Now.
	Now func() time.Time
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.EnterAfter <= 0 {
		c.EnterAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// RuleStatus is one rule's state inside a Verdict.
type RuleStatus struct {
	Rule      string  `json:"rule"`
	Active    bool    `json:"active"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// Verdict is the watchdog's folded health assessment.
type Verdict struct {
	// Degraded is true when any SLO objective is critical or any critical
	// structural rule is active.
	Degraded bool `json:"degraded"`
	// Reasons explains each degrading input; empty when healthy.
	Reasons []string `json:"reasons,omitempty"`
	// Warnings lists non-degrading concerns (SLO warnings, advisory rules).
	Warnings  []string     `json:"warnings,omitempty"`
	CheckedAt time.Time    `json:"checkedAt"`
	Checks    []RuleStatus `json:"checks,omitempty"`
}

type ruleState struct {
	active     bool
	breachRuns int
	clearRuns  int
	lastValue  float64
}

// Watchdog folds SLO and structural signals into a Verdict. Safe for
// concurrent use; nil-safe.
type Watchdog struct {
	tsdb  *TSDB
	slo   *SLOEngine
	cfg   WatchdogConfig
	rules []Rule

	mu     sync.Mutex
	states []ruleState
	last   Verdict
	checks int
}

// NewWatchdog returns a watchdog over t and (optionally nil) slo. A nil t
// returns nil — the disabled watchdog.
func NewWatchdog(t *TSDB, slo *SLOEngine, rules []Rule, cfg WatchdogConfig) *Watchdog {
	if t == nil {
		return nil
	}
	return &Watchdog{
		tsdb:   t,
		slo:    slo,
		cfg:    cfg.withDefaults(),
		rules:  rules,
		states: make([]ruleState, len(rules)),
		last:   Verdict{},
	}
}

// Check runs one watchdog pass and returns the verdict. Call it after each
// SLO evaluation (a Monitor does).
func (w *Watchdog) Check() Verdict {
	if w == nil {
		return Verdict{}
	}
	now := w.cfg.Now()
	// Read rule inputs before taking the lock: TSDB reads take the TSDB's
	// own lock and must not nest inside ours.
	type reading struct {
		value  float64
		breach bool
	}
	readings := make([]reading, len(w.rules))
	for i, r := range w.rules {
		if r.Threshold <= 0 {
			continue
		}
		window := r.Window
		if window <= 0 {
			window = w.cfg.Window
		}
		var v float64
		var ok bool
		switch r.Kind {
		case RuleRate:
			v, ok = w.tsdb.RateOver(r.Series, window)
		case RuleLast:
			v, ok = w.tsdb.LastValue(r.Series)
		case RuleDelta:
			v, ok = w.tsdb.DeltaOver(r.Series, window)
		}
		if !ok {
			continue
		}
		readings[i] = reading{value: v, breach: v >= r.Threshold}
	}
	sloStatuses := w.slo.Current()

	w.mu.Lock()
	defer w.mu.Unlock()
	w.checks++
	v := Verdict{CheckedAt: now}
	for _, st := range sloStatuses {
		switch st.State {
		case StateCritical:
			v.Degraded = true
			v.Reasons = append(v.Reasons, fmt.Sprintf(
				"slo %s critical: value %.4g vs target %.4g (fast burn %.2f)",
				st.Objective, st.Value, st.Target, st.FastBurn))
		case StateWarning:
			v.Warnings = append(v.Warnings, fmt.Sprintf(
				"slo %s warning: value %.4g vs target %.4g (fast burn %.2f)",
				st.Objective, st.Value, st.Target, st.FastBurn))
		}
	}
	for i, r := range w.rules {
		s := &w.states[i]
		rd := readings[i]
		s.lastValue = rd.value
		if rd.breach {
			s.breachRuns++
			s.clearRuns = 0
			if !s.active && s.breachRuns >= w.cfg.EnterAfter {
				s.active = true
			}
		} else {
			s.clearRuns++
			s.breachRuns = 0
			if s.active && s.clearRuns >= w.cfg.ClearAfter {
				s.active = false
			}
		}
		v.Checks = append(v.Checks, RuleStatus{
			Rule: r.Name, Active: s.active, Value: rd.value, Threshold: r.Threshold,
		})
		if !s.active {
			continue
		}
		msg := fmt.Sprintf("%s: %.4g >= %.4g", r.Name, rd.value, r.Threshold)
		if r.Critical {
			v.Degraded = true
			v.Reasons = append(v.Reasons, msg)
		} else {
			v.Warnings = append(v.Warnings, msg)
		}
	}
	sort.Strings(v.Reasons)
	sort.Strings(v.Warnings)
	w.last = v
	return v
}

// Verdict returns the most recent check result (healthy before any check).
func (w *Watchdog) Verdict() Verdict {
	if w == nil {
		return Verdict{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Checks returns how many Check passes have run.
func (w *Watchdog) Checks() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.checks
}

// Monitor drives a TSDB + SLO engine + watchdog off one ticker: every
// interval it samples the registry, evaluates objectives, and refreshes the
// verdict. A nil *Monitor (history disabled) starts no goroutine.
type Monitor struct {
	tsdb *TSDB
	slo  *SLOEngine
	dog  *Watchdog

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewMonitor bundles the three stages. A nil tsdb returns nil.
func NewMonitor(t *TSDB, slo *SLOEngine, dog *Watchdog) *Monitor {
	if t == nil {
		return nil
	}
	return &Monitor{tsdb: t, slo: slo, dog: dog}
}

// Tick runs one sample→evaluate→check pass synchronously. Tests (and the
// deterministic fake-clock e2e) drive the monitor with Tick instead of
// Start.
func (m *Monitor) Tick() {
	if m == nil {
		return
	}
	m.tsdb.Sample()
	m.slo.Evaluate()
	m.dog.Check()
}

// Start launches the background sampling goroutine at the TSDB's interval.
// No-op on nil.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.tsdb.Interval())
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Tick()
			case <-m.stop:
				return
			}
		}
	}()
}

// Stop halts the sampling goroutine and waits for it to exit. No-op on nil
// or if Start was never called.
func (m *Monitor) Stop() {
	if m == nil || m.stop == nil {
		return
	}
	m.once.Do(func() { close(m.stop) })
	<-m.done
}
