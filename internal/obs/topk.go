package obs

// Hot-key telemetry: a space-saving top-K sketch (Metwally et al.'s
// stream-summary, simplified) over requested cell keys, so operators can see
// the hot districts that coalescing and replication decisions depend on.
//
// The sketch keeps at most `capacity` counters. An offered key that is
// already tracked increments its counter; a new key arriving at a full
// sketch replaces the current minimum, inheriting its count as the new
// entry's error bound — the classic space-saving guarantee: any key whose
// true frequency exceeds N/capacity is present, and count-err is a lower
// bound on its true frequency.
//
// The sketch sits on the node serve path, so offers must be cheap under
// saturation: entries live in a min-heap keyed by count with a position
// index, making the min-replacement O(log capacity) instead of a linear
// min scan.
//
// Hot sets drift as users pan: an epoch decay (halve every counter, drop
// zeros) ages out yesterday's districts. Decay runs lazily from Offer when a
// decay interval is configured, or explicitly via Decay for deterministic
// tests.

import (
	"sort"
	"sync"
	"time"
)

// TopK is a concurrent space-saving sketch over keys of any comparable type.
// A nil *TopK is a valid disabled sketch: offers and snapshots are no-ops.
type TopK[K comparable] struct {
	mu       sync.Mutex
	capacity int
	heap     []tkEntry[K] // min-heap by count
	idx      map[K]int    // key -> heap position
	total    uint64       // offers observed this epoch

	decayEvery time.Duration
	lastDecay  time.Time
}

type tkEntry[K comparable] struct {
	key   K
	count uint64
	err   uint64 // overestimation bound inherited at replacement
}

// TopEntry is one ranked key in a sketch snapshot. Count overestimates the
// true frequency by at most Err.
type TopEntry[K comparable] struct {
	Key   K
	Count uint64
	Err   uint64
}

// NewTopK returns a sketch tracking up to capacity keys, decaying every
// decayEvery (0 disables automatic decay; call Decay explicitly).
// capacity <= 0 returns nil — the disabled sketch.
func NewTopK[K comparable](capacity int, decayEvery time.Duration) *TopK[K] {
	if capacity <= 0 {
		return nil
	}
	return &TopK[K]{
		capacity:   capacity,
		heap:       make([]tkEntry[K], 0, capacity),
		idx:        make(map[K]int, capacity),
		decayEvery: decayEvery,
		lastDecay:  time.Now(),
	}
}

// Offer records one occurrence of k.
func (t *TopK[K]) Offer(k K) { t.OfferN(k, 1) }

// OfferN records n occurrences of k.
func (t *TopK[K]) OfferN(k K, n uint64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.offerLocked(k, n)
	t.maybeDecayLocked()
	t.mu.Unlock()
}

// OfferBatch records one occurrence of every key under a single lock
// acquisition — the form the node serve path uses, so hot-path contention is
// one lock op per request rather than per key.
func (t *TopK[K]) OfferBatch(keys []K) {
	if t == nil || len(keys) == 0 {
		return
	}
	t.mu.Lock()
	for _, k := range keys {
		t.offerLocked(k, 1)
	}
	t.maybeDecayLocked()
	t.mu.Unlock()
}

func (t *TopK[K]) offerLocked(k K, n uint64) {
	t.total += n
	if pos, ok := t.idx[k]; ok {
		t.heap[pos].count += n
		t.siftDown(pos)
		return
	}
	if len(t.heap) < t.capacity {
		t.heap = append(t.heap, tkEntry[K]{key: k, count: n})
		t.siftUp(len(t.heap) - 1)
		return
	}
	// Replace the minimum-count entry — the heap root — inheriting its count
	// as the newcomer's error bound (space-saving).
	min := t.heap[0]
	delete(t.idx, min.key)
	t.heap[0] = tkEntry[K]{key: k, count: min.count + n, err: min.count}
	t.idx[k] = 0
	t.siftDown(0)
}

// siftUp restores the heap invariant after an insert at pos, keeping idx in
// step with every move.
func (t *TopK[K]) siftUp(pos int) {
	e := t.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 2
		if t.heap[parent].count <= e.count {
			break
		}
		t.heap[pos] = t.heap[parent]
		t.idx[t.heap[pos].key] = pos
		pos = parent
	}
	t.heap[pos] = e
	t.idx[e.key] = pos
}

// siftDown restores the heap invariant after the entry at pos grew (or was
// replaced), keeping idx in step with every move.
func (t *TopK[K]) siftDown(pos int) {
	e := t.heap[pos]
	n := len(t.heap)
	for {
		child := 2*pos + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && t.heap[r].count < t.heap[child].count {
			child = r
		}
		if t.heap[child].count >= e.count {
			break
		}
		t.heap[pos] = t.heap[child]
		t.idx[t.heap[pos].key] = pos
		pos = child
	}
	t.heap[pos] = e
	t.idx[e.key] = pos
}

func (t *TopK[K]) maybeDecayLocked() {
	if t.decayEvery <= 0 {
		return
	}
	if now := time.Now(); now.Sub(t.lastDecay) >= t.decayEvery {
		t.lastDecay = now
		t.decayLocked()
	}
}

// Decay halves every counter (and error bound), dropping entries that reach
// zero — one epoch of aging. Exposed for deterministic tests and for
// operators forcing a reset.
func (t *TopK[K]) Decay() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.decayLocked()
	t.mu.Unlock()
}

func (t *TopK[K]) decayLocked() {
	// Halving preserves relative order, so the array stays a valid heap;
	// dropped zeros are compacted in one pass and the index rebuilt.
	kept := t.heap[:0]
	for _, e := range t.heap {
		e.count /= 2
		e.err /= 2
		if e.count == 0 {
			delete(t.idx, e.key)
			continue
		}
		kept = append(kept, e)
	}
	t.heap = kept
	for i, e := range t.heap {
		t.idx[e.key] = i
	}
	t.total /= 2
	mTopKEpochResets.Inc()
}

// Total returns the (decay-scaled) number of offers observed.
func (t *TopK[K]) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns the number of tracked keys.
func (t *TopK[K]) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.heap)
}

// Top returns the n highest-count entries, descending by count (ties by
// ascending error bound, so the more certain entry ranks first).
func (t *TopK[K]) Top(n int) []TopEntry[K] {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	out := make([]TopEntry[K], 0, len(t.heap))
	for _, e := range t.heap {
		out = append(out, TopEntry[K]{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sortTopEntries(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// MergeTop aggregates snapshots from several sketches — the per-node hot-key
// sketches — into one global ranking. Counts and error bounds add per key;
// when key spaces are (near-)partitioned across the sketches, as DHT-owned
// cell keys are, the merge is (near-)exact.
func MergeTop[K comparable](groups [][]TopEntry[K], n int) []TopEntry[K] {
	if n <= 0 {
		return nil
	}
	agg := map[K]TopEntry[K]{}
	for _, g := range groups {
		for _, e := range g {
			a := agg[e.Key]
			a.Key = e.Key
			a.Count += e.Count
			a.Err += e.Err
			agg[e.Key] = a
		}
	}
	out := make([]TopEntry[K], 0, len(agg))
	for _, e := range agg {
		out = append(out, e)
	}
	sortTopEntries(out)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func sortTopEntries[K comparable](out []TopEntry[K]) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Err < out[j].Err
	})
}
