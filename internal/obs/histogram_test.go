package obs

import (
	"math"
	"testing"
	"time"
)

// Regression pin: a zero-count histogram must report exactly 0 for every
// quantile — never NaN, never a bucket bound. Flat snapshots, SLO burn
// rates, and timeline quantiles all fold quantiles without NaN guards on the
// strength of this.
func TestQuantileEmptyHistogramIsZero(t *testing.T) {
	h := newHistogram(nil)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	// The snapshot path too, including a snapshot with no bounds at all.
	if got := (HistSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("zero-value snapshot Quantile = %v, want 0", got)
	}
	if got := (HistSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}).Quantile(0.5); got != 0 {
		t.Fatalf("zero-count snapshot Quantile = %v, want 0", got)
	}
	// And it must be a plain 0, not a NaN that formats like one.
	if v := h.Quantile(0.99); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("empty histogram Quantile not finite: %v", v)
	}
}

func TestQuantileNaNInput(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(0.5)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}
}

// The empty-quantile pin must hold through the registry surfaces where the
// value is consumed.
func TestEmptyHistogramThroughSnapshots(t *testing.T) {
	reg := New()
	reg.Histogram("empty_seconds")
	flat := reg.FlatSnapshot()
	for _, k := range []string{"empty_seconds_p50", "empty_seconds_p95", "empty_seconds_p99"} {
		v, ok := flat[k]
		if !ok {
			t.Fatalf("flat snapshot missing %s", k)
		}
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("%s = %v, want 0", k, v)
		}
	}
	// And through the TSDB's windowed extraction on a histogram that has
	// samples but no observations.
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: 8, Interval: time.Second, Now: clk.Now})
	ts.Sample()
	clk.Advance(time.Second)
	ts.Sample()
	v, count, ok := ts.QuantileOver("empty_seconds", 0.99, 0)
	if !ok {
		t.Fatal("QuantileOver on sampled empty histogram not ok")
	}
	if v != 0 || count != 0 {
		t.Fatalf("QuantileOver = (%v, %d), want (0, 0)", v, count)
	}
}
