package obs

// Per-query introspection: an EXPLAIN ANALYZE for STASH. A QueryProfile is
// installed in a context at the top of the serve path (stashd's handler, a
// bench harness, a test) and accumulated by every layer underneath —
// frontend cache probe, coordinator footprint/fanout/merge, per-node graph
// probes, derivations, disk scans — so one finished profile answers "why was
// this query slow" without attaching a debugger.
//
// The disabled path is free: when no profile is installed,
// ProfileFromContext returns nil (one context-value lookup, no allocation)
// and every method on the nil receiver is a no-op. Instrumentation sites
// whose *arguments* would allocate (String() conversions, snapshots) must
// guard with `if p != nil`; plain integer/const-string record calls may be
// made unconditionally.

import (
	"context"
	"encoding/json"
	"sort"
	"sync"
	"time"
)

const profileCtxKey ctxKey = 100 // distinct from trace/span keys

// QueryProfile accumulates the provenance of one query. It is safe for
// concurrent use: the coordinator fans sub-requests out across goroutines
// and each records into the same profile. All methods are no-ops on a nil
// receiver.
type QueryProfile struct {
	start time.Time

	mu          sync.Mutex
	query       string
	footprint   int
	spatialRes  int
	temporalRes string
	level       int
	status      string
	total       time.Duration

	stages map[string]time.Duration
	tiers  map[string]*tierProbe
	nodes  map[string]*nodeVisit

	derived     int64
	diskCells   int64
	blocksRead  int64
	retries     int64
	reroutes    int64
	scatterReqs int64

	coalesceBatches int64
	coalesceKeys    int64 // keys carried by joined batches
	coalesceDeduped int64

	sfLeader int64
	sfWaiter int64

	wireBytes int64

	mergeParts int64 // share partials folded by the reply fan-in
	mergeDepth int64 // height of the tournament merge tree (max across fetches)
}

type tierProbe struct {
	hits, misses int64
}

type nodeVisit struct {
	keys       int64
	blocksRead int64
}

// NewProfile returns an empty profile clocked from now. Use
// ContextWithProfile to install it; most callers want WithProfile, which
// does both.
func NewProfile() *QueryProfile {
	return &QueryProfile{start: time.Now()}
}

// ContextWithProfile installs p in the context so every layer underneath
// records into it.
func ContextWithProfile(ctx context.Context, p *QueryProfile) context.Context {
	return context.WithValue(ctx, profileCtxKey, p)
}

// WithProfile installs a fresh profile in the context and returns both.
func WithProfile(ctx context.Context) (context.Context, *QueryProfile) {
	p := NewProfile()
	return ContextWithProfile(ctx, p), p
}

// ProfileFromContext returns the context's profile, or nil when the query is
// unprofiled. The nil path is the production default and costs one context
// lookup — no allocation, no lock.
func ProfileFromContext(ctx context.Context) *QueryProfile {
	p, _ := ctx.Value(profileCtxKey).(*QueryProfile)
	return p
}

// SetQuery records the query's canonical string.
func (p *QueryProfile) SetQuery(q string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.query = q
	p.mu.Unlock()
}

// SetFootprint records the planned footprint: key count, spatial resolution
// (geohash precision), temporal resolution name, and hierarchy level.
func (p *QueryProfile) SetFootprint(keys, spatialRes int, temporalRes string, level int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.footprint = keys
	p.spatialRes = spatialRes
	p.temporalRes = temporalRes
	p.level = level
	p.mu.Unlock()
}

// AddStage accumulates wall time into a named stage. Stages repeated across
// fan-out shares (graph.get on several nodes) sum.
func (p *QueryProfile) AddStage(stage string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.stages == nil {
		p.stages = map[string]time.Duration{}
	}
	p.stages[stage] += d
	p.mu.Unlock()
}

// AddTier accumulates a cache-tier probe outcome (tier = "frontend",
// "local", "guest").
func (p *QueryProfile) AddTier(tier string, hits, misses int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.tiers == nil {
		p.tiers = map[string]*tierProbe{}
	}
	t := p.tiers[tier]
	if t == nil {
		t = &tierProbe{}
		p.tiers[tier] = t
	}
	t.hits += int64(hits)
	t.misses += int64(misses)
	p.mu.Unlock()
}

// AddNode records a sub-request contacting a node with the given key count.
func (p *QueryProfile) AddNode(node string, keys int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.nodeLocked(node).keys += int64(keys)
	p.mu.Unlock()
}

// AddNodeBlocks attributes backing-store blocks read on a node to this query.
func (p *QueryProfile) AddNodeBlocks(node string, blocks int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.nodeLocked(node).blocksRead += int64(blocks)
	p.blocksRead += int64(blocks)
	p.mu.Unlock()
}

func (p *QueryProfile) nodeLocked(node string) *nodeVisit {
	if p.nodes == nil {
		p.nodes = map[string]*nodeVisit{}
	}
	v := p.nodes[node]
	if v == nil {
		v = &nodeVisit{}
		p.nodes[node] = v
	}
	return v
}

// The counter wrappers each guard nil themselves: the field address they pass
// to add must not be computed off a nil receiver.

// AddDerived counts cells computed from cached children instead of disk.
func (p *QueryProfile) AddDerived(n int) {
	if p == nil {
		return
	}
	p.add(&p.derived, n)
}

// AddDiskCells counts cells materialized from the backing store.
func (p *QueryProfile) AddDiskCells(n int) {
	if p == nil {
		return
	}
	p.add(&p.diskCells, n)
}

// AddRetry counts one coordinator retry attempt.
func (p *QueryProfile) AddRetry() {
	if p == nil {
		return
	}
	p.add(&p.retries, 1)
}

// AddReroute counts one redirect to a replication helper (owner-side flip or
// coordinator failover).
func (p *QueryProfile) AddReroute() {
	if p == nil {
		return
	}
	p.add(&p.reroutes, 1)
}

// AddScatter counts mini-requests issued by the scatter fallback.
func (p *QueryProfile) AddScatter(n int) {
	if p == nil {
		return
	}
	p.add(&p.scatterReqs, n)
}

// AddCoalesce records this query's shares joining a coalesced batch: the
// batch's deduplicated key count and how many duplicate keys the batch
// elided across all its waiters.
func (p *QueryProfile) AddCoalesce(batchKeys, dedupedKeys int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.coalesceBatches++
	p.coalesceKeys += int64(batchKeys)
	p.coalesceDeduped += int64(dedupedKeys)
	p.mu.Unlock()
}

// AddSingleflight records serve-side singleflight participation: keys this
// request resolved as leader and keys it waited on another request for.
func (p *QueryProfile) AddSingleflight(leader, waiter int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sfLeader += int64(leader)
	p.sfWaiter += int64(waiter)
	p.mu.Unlock()
}

// AddWireBytes accumulates modeled wire payload bytes moved for this query.
func (p *QueryProfile) AddWireBytes(n int) {
	if p == nil {
		return
	}
	p.add(&p.wireBytes, n)
}

// AddMergeFanIn records one reply merge: how many share partials folded and
// the height of the tournament tree that folded them (1 for a single share;
// the serial baseline reports the partial count as its depth).
func (p *QueryProfile) AddMergeFanIn(parts, depth int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.mergeParts += int64(parts)
	if int64(depth) > p.mergeDepth {
		p.mergeDepth = int64(depth)
	}
	p.mu.Unlock()
}

func (p *QueryProfile) add(field *int64, n int) {
	if n == 0 {
		return
	}
	p.mu.Lock()
	*field += int64(n)
	p.mu.Unlock()
}

// Finish stamps the profile's outcome ("ok", "partial", "error") and total
// latency. Idempotent on total: the first call wins.
func (p *QueryProfile) Finish(status string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.status = status
	if p.total == 0 {
		p.total = time.Since(p.start)
	}
	p.mu.Unlock()
}

// Merge folds another profile's accumulated work into p — the coalescer uses
// it to attribute a shared batch's node-side work to every waiter that rode
// along. Query identity, footprint, status, and total are NOT merged; only
// the work counters, stages, tiers, and node visits are. Merge directions
// must not form a cycle (our callers only ever merge a settled batch profile
// into waiter profiles).
func (p *QueryProfile) Merge(other *QueryProfile) {
	if p == nil || other == nil || p == other {
		return
	}
	// Copy the source under its own lock, then apply under ours: never hold
	// both locks at once.
	other.mu.Lock()
	stages := make(map[string]time.Duration, len(other.stages))
	for s, d := range other.stages {
		stages[s] = d
	}
	tiers := make(map[string]tierProbe, len(other.tiers))
	for t, tp := range other.tiers {
		tiers[t] = *tp
	}
	nodes := make(map[string]nodeVisit, len(other.nodes))
	for n, v := range other.nodes {
		nodes[n] = *v
	}
	derived, diskCells, blocksRead := other.derived, other.diskCells, other.blocksRead
	retries, reroutes, scatterReqs := other.retries, other.reroutes, other.scatterReqs
	sfLeader, sfWaiter, wireBytes := other.sfLeader, other.sfWaiter, other.wireBytes
	mergeParts, mergeDepth := other.mergeParts, other.mergeDepth
	other.mu.Unlock()

	p.mu.Lock()
	for s, d := range stages {
		if p.stages == nil {
			p.stages = map[string]time.Duration{}
		}
		p.stages[s] += d
	}
	for t, tp := range tiers {
		if p.tiers == nil {
			p.tiers = map[string]*tierProbe{}
		}
		dst := p.tiers[t]
		if dst == nil {
			dst = &tierProbe{}
			p.tiers[t] = dst
		}
		dst.hits += tp.hits
		dst.misses += tp.misses
	}
	for n, v := range nodes {
		dst := p.nodeLocked(n)
		dst.keys += v.keys
		dst.blocksRead += v.blocksRead
	}
	p.derived += derived
	p.diskCells += diskCells
	p.blocksRead += blocksRead
	p.retries += retries
	p.reroutes += reroutes
	p.scatterReqs += scatterReqs
	p.sfLeader += sfLeader
	p.sfWaiter += sfWaiter
	p.wireBytes += wireBytes
	p.mergeParts += mergeParts
	if mergeDepth > p.mergeDepth {
		p.mergeDepth = mergeDepth
	}
	p.mu.Unlock()
}

// --- exported snapshot shape (the ?explain=1 JSON) ---

// StageMS is one stage's accumulated latency in the profile snapshot.
type StageMS struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
}

// TierOutcome is one cache tier's probe outcome in the profile snapshot.
type TierOutcome struct {
	Tier   string `json:"tier"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

// NodeContact is one contacted node in the profile snapshot.
type NodeContact struct {
	Node       string `json:"node"`
	Keys       int64  `json:"keys"`
	BlocksRead int64  `json:"blocksRead"`
}

// ProfileData is the immutable snapshot of a finished QueryProfile — the
// JSON returned inline by ?explain=1 and the record stored in the flight
// recorder and slow-query log. Field order is the wire order (golden-file
// pinned); slices are sorted so repeated snapshots are byte-identical.
type ProfileData struct {
	// ID is the process-monotonic query id the serve path assigns (see
	// NextQueryID); it correlates a slow-log line with the same query's
	// entry in the flight recorder (?id= on /debug/queries). Zero when the
	// recording layer did not assign one, and then omitted from the JSON.
	ID                 uint64        `json:"id,omitempty"`
	Query              string        `json:"query,omitempty"`
	Start              time.Time     `json:"start"`
	TotalMS            float64       `json:"totalMs"`
	Status             string        `json:"status,omitempty"`
	FootprintKeys      int           `json:"footprintKeys"`
	SpatialRes         int           `json:"spatialRes,omitempty"`
	TemporalRes        string        `json:"temporalRes,omitempty"`
	Level              int           `json:"level,omitempty"`
	Stages             []StageMS     `json:"stages,omitempty"`
	Tiers              []TierOutcome `json:"tiers,omitempty"`
	Nodes              []NodeContact `json:"nodes,omitempty"`
	Derived            int64         `json:"derived,omitempty"`
	DiskCells          int64         `json:"diskCells,omitempty"`
	BlocksRead         int64         `json:"blocksRead,omitempty"`
	Retries            int64         `json:"retries,omitempty"`
	Reroutes           int64         `json:"reroutes,omitempty"`
	ScatterRequests    int64         `json:"scatterRequests,omitempty"`
	CoalesceBatches    int64         `json:"coalesceBatches,omitempty"`
	CoalesceBatchKeys  int64         `json:"coalesceBatchKeys,omitempty"`
	CoalesceDedupKeys  int64         `json:"coalesceDedupKeys,omitempty"`
	SingleflightLeader int64         `json:"singleflightLeader,omitempty"`
	SingleflightWaiter int64         `json:"singleflightWaiter,omitempty"`
	WireBytes          int64         `json:"wireBytes,omitempty"`
	MergeParts         int64         `json:"mergeParts,omitempty"`
	MergeFanInDepth    int64         `json:"mergeFanInDepth,omitempty"`
}

// Data snapshots the profile. Safe to call concurrently with accumulation;
// for a settled view call it after Finish.
func (p *QueryProfile) Data() ProfileData {
	if p == nil {
		return ProfileData{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

func (p *QueryProfile) snapshotLocked() ProfileData {
	d := ProfileData{
		Query:              p.query,
		Start:              p.start,
		TotalMS:            float64(p.total.Microseconds()) / 1000,
		Status:             p.status,
		FootprintKeys:      p.footprint,
		SpatialRes:         p.spatialRes,
		TemporalRes:        p.temporalRes,
		Level:              p.level,
		Derived:            p.derived,
		DiskCells:          p.diskCells,
		BlocksRead:         p.blocksRead,
		Retries:            p.retries,
		Reroutes:           p.reroutes,
		ScatterRequests:    p.scatterReqs,
		CoalesceBatches:    p.coalesceBatches,
		CoalesceBatchKeys:  p.coalesceKeys,
		CoalesceDedupKeys:  p.coalesceDeduped,
		SingleflightLeader: p.sfLeader,
		SingleflightWaiter: p.sfWaiter,
		WireBytes:          p.wireBytes,
		MergeParts:         p.mergeParts,
		MergeFanInDepth:    p.mergeDepth,
	}
	for s, dur := range p.stages {
		d.Stages = append(d.Stages, StageMS{Stage: s, MS: float64(dur.Microseconds()) / 1000})
	}
	sort.Slice(d.Stages, func(i, j int) bool { return d.Stages[i].Stage < d.Stages[j].Stage })
	for t, tp := range p.tiers {
		d.Tiers = append(d.Tiers, TierOutcome{Tier: t, Hits: tp.hits, Misses: tp.misses})
	}
	sort.Slice(d.Tiers, func(i, j int) bool { return tierRank(d.Tiers[i].Tier) < tierRank(d.Tiers[j].Tier) })
	for n, v := range p.nodes {
		d.Nodes = append(d.Nodes, NodeContact{Node: n, Keys: v.keys, BlocksRead: v.blocksRead})
	}
	sort.Slice(d.Nodes, func(i, j int) bool { return d.Nodes[i].Node < d.Nodes[j].Node })
	return d
}

// tierRank orders tiers outermost-first, the order a request actually probes
// them; unknown tiers sort after the known ones, alphabetically via name.
func tierRank(tier string) string {
	switch tier {
	case "frontend":
		return "0"
	case "local":
		return "1"
	case "guest":
		return "2"
	}
	return "9" + tier
}

// JSON renders the snapshot as compact one-line JSON (the slow-log line
// format).
func (d ProfileData) JSON() []byte {
	b, err := json.Marshal(d)
	if err != nil {
		return []byte("{}")
	}
	return b
}

// String renders a one-line human-readable summary for CLI output.
func (d ProfileData) String() string {
	var b []byte
	b = append(b, "query "...)
	if d.Query != "" {
		b = append(b, d.Query...)
	} else {
		b = append(b, '?')
	}
	b = appendKV(b, " total=", d.TotalMS, "ms")
	b = append(b, " keys="...)
	b = appendInt(b, int64(d.FootprintKeys))
	for _, t := range d.Tiers {
		b = append(b, ' ')
		b = append(b, t.Tier...)
		b = append(b, '=')
		b = appendInt(b, t.Hits)
		b = append(b, '/')
		b = appendInt(b, t.Hits+t.Misses)
	}
	b = append(b, " nodes="...)
	b = appendInt(b, int64(len(d.Nodes)))
	b = append(b, " derived="...)
	b = appendInt(b, d.Derived)
	b = append(b, " disk="...)
	b = appendInt(b, d.DiskCells)
	b = append(b, " blocks="...)
	b = appendInt(b, d.BlocksRead)
	for _, s := range d.Stages {
		b = append(b, ' ')
		b = append(b, s.Stage...)
		b = appendKV(b, "=", s.MS, "ms")
	}
	if d.Status != "" {
		b = append(b, " status="...)
		b = append(b, d.Status...)
	}
	return string(b)
}

func appendKV(b []byte, k string, v float64, unit string) []byte {
	b = append(b, k...)
	// two decimal places, no fmt dependency on the hot path (String is not
	// hot, but keeping the package allocation-disciplined is cheap here)
	i := int64(v * 100)
	b = appendInt(b, i/100)
	b = append(b, '.')
	frac := i % 100
	if frac < 0 {
		frac = -frac
	}
	b = append(b, byte('0'+frac/10), byte('0'+frac%10))
	b = append(b, unit...)
	return b
}

func appendInt(b []byte, n int64) []byte {
	if n < 0 {
		b = append(b, '-')
		n = -n
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
