package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestTopKDisabled(t *testing.T) {
	if s := NewTopK[string](0, 0); s != nil {
		t.Fatal("capacity 0 should return the nil disabled sketch")
	}
	var s *TopK[string]
	s.Offer("a")
	s.OfferN("a", 5)
	s.OfferBatch([]string{"a", "b"})
	s.Decay()
	if s.Total() != 0 || s.Len() != 0 || s.Top(5) != nil {
		t.Error("nil sketch is not inert")
	}
}

func TestTopKExactUnderCapacity(t *testing.T) {
	s := NewTopK[string](8, 0)
	s.OfferN("a", 5)
	s.OfferN("b", 3)
	s.Offer("c")
	s.OfferBatch([]string{"a", "a", "b"})
	if s.Total() != 12 {
		t.Errorf("total %d, want 12", s.Total())
	}
	top := s.Top(10)
	if len(top) != 3 {
		t.Fatalf("tracked %d keys, want 3", len(top))
	}
	// Below capacity the sketch is an exact counter: zero error bounds.
	want := []TopEntry[string]{{"a", 7, 0}, {"b", 4, 0}, {"c", 1, 0}}
	for i, w := range want {
		if top[i] != w {
			t.Errorf("top[%d] = %+v, want %+v", i, top[i], w)
		}
	}
	if got := s.Top(2); len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
		t.Errorf("Top(2) = %+v", got)
	}
}

// TestTopKZipfRecovery feeds a seeded zipf stream through a sketch far
// smaller than the key domain and checks the space-saving guarantees hold:
// every true heavy hitter is tracked, and each tracked count brackets the
// true frequency (true <= count <= true + err).
func TestTopKZipfRecovery(t *testing.T) {
	const (
		capacity = 64
		domain   = 10_000
		samples  = 50_000
	)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.4, 1, domain-1)

	s := NewTopK[uint64](capacity, 0)
	truth := map[uint64]uint64{}
	batch := make([]uint64, 0, 100)
	for i := 0; i < samples; i++ {
		k := zipf.Uint64()
		truth[k]++
		batch = append(batch, k)
		if len(batch) == cap(batch) {
			s.OfferBatch(batch)
			batch = batch[:0]
		}
	}
	s.OfferBatch(batch)

	if s.Total() != samples {
		t.Fatalf("total %d, want %d", s.Total(), samples)
	}
	if s.Len() > capacity {
		t.Fatalf("tracking %d keys, capacity %d", s.Len(), capacity)
	}

	tracked := map[uint64]TopEntry[uint64]{}
	for _, e := range s.Top(capacity) {
		tracked[e.Key] = e
	}
	// Guarantee 1: any key with true frequency above samples/capacity is
	// present.
	threshold := uint64(samples / capacity)
	for k, n := range truth {
		if n > threshold {
			if _, ok := tracked[k]; !ok {
				t.Errorf("heavy hitter %d (true count %d > %d) evicted", k, n, threshold)
			}
		}
	}
	// Guarantee 2: counts overestimate by at most the recorded error bound.
	for k, e := range tracked {
		n := truth[k]
		if e.Count < n {
			t.Errorf("key %d count %d underestimates true %d", k, e.Count, n)
		}
		if e.Count-e.Err > n {
			t.Errorf("key %d count-err %d exceeds true %d (bound violated)", k, e.Count-e.Err, n)
		}
	}
	// Sanity: the zipf head is recovered at the very top.
	top := s.Top(3)
	if top[0].Key != 0 {
		t.Errorf("hottest key %d, want 0 (zipf head)", top[0].Key)
	}
}

func TestTopKDecay(t *testing.T) {
	s := NewTopK[string](8, 0)
	s.OfferN("a", 9)
	s.OfferN("b", 2)
	s.Offer("c") // count 1: one decay zeroes and drops it
	resets := mTopKEpochResets.Value()

	s.Decay()
	if got := mTopKEpochResets.Value() - resets; got != 1 {
		t.Errorf("epoch reset counter advanced by %d, want 1", got)
	}
	if s.Total() != 6 {
		t.Errorf("total %d after decay, want 6 (12/2)", s.Total())
	}
	top := s.Top(8)
	if len(top) != 2 {
		t.Fatalf("tracking %d keys after decay, want 2 (c dropped)", len(top))
	}
	if top[0] != (TopEntry[string]{"a", 4, 0}) || top[1] != (TopEntry[string]{"b", 1, 0}) {
		t.Errorf("post-decay entries %+v, want a=4 b=1", top)
	}

	// Error bounds decay with their counts so the bracket stays honest.
	full := NewTopK[int](2, 0)
	full.OfferN(1, 8)
	full.OfferN(2, 4)
	full.Offer(3) // replaces the min (count 4): count 5, err 4
	before := full.Top(2)
	if before[1] != (TopEntry[int]{3, 5, 4}) {
		t.Fatalf("replacement entry %+v, want {3 5 4}", before[1])
	}
	full.Decay()
	after := full.Top(2)
	if after[1] != (TopEntry[int]{3, 2, 2}) {
		t.Errorf("decayed replacement %+v, want {3 2 2}", after[1])
	}
}

func TestTopKReplacementInheritsMinCount(t *testing.T) {
	s := NewTopK[string](2, 0)
	s.OfferN("a", 10)
	s.OfferN("b", 3)
	s.Offer("new")
	top := s.Top(2)
	if top[0] != (TopEntry[string]{"a", 10, 0}) {
		t.Errorf("survivor %+v, want a=10", top[0])
	}
	// "new" inherits the evicted minimum's count as its error bound.
	if top[1] != (TopEntry[string]{"new", 4, 3}) {
		t.Errorf("replacement %+v, want {new 4 3}", top[1])
	}
	if s.Len() != 2 {
		t.Errorf("len %d, want capacity 2", s.Len())
	}
}

// TestTopKConcurrent exercises the sketch from parallel offerers and readers;
// under -race this is the locking's correctness check.
func TestTopKConcurrent(t *testing.T) {
	s := NewTopK[int](32, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]int, 16)
			for i := 0; i < 200; i++ {
				for j := range keys {
					keys[j] = (w + j) % 24
				}
				s.OfferBatch(keys)
				if i%50 == 0 {
					_ = s.Top(10)
					_ = s.Total()
				}
				if i%97 == 0 {
					s.Decay()
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 32 {
		t.Errorf("len %d exceeds capacity", s.Len())
	}
}
