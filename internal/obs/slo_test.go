package obs

import (
	"testing"
	"time"
)

// sloHarness is a registry + TSDB + engine driven by one fake clock.
type sloHarness struct {
	reg *Registry
	ts  *TSDB
	eng *SLOEngine
	clk *fakeClock
}

func newSLOHarness(t *testing.T, objectives []Objective) *sloHarness {
	t.Helper()
	reg := New()
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: 256, Interval: time.Second, Now: clk.Now})
	eng := NewSLOEngine(ts, objectives, BurnConfig{
		FastWindow: 10 * time.Second,
		SlowWindow: 60 * time.Second,
		EnterAfter: 2,
		ClearAfter: 3,
		Now:        clk.Now,
	})
	if eng == nil {
		t.Fatal("NewSLOEngine returned nil")
	}
	return &sloHarness{reg: reg, ts: ts, eng: eng, clk: clk}
}

// tick samples and evaluates once, then advances the clock one interval.
func (h *sloHarness) tick() []AlertStatus {
	h.ts.Sample()
	out := h.eng.Evaluate()
	h.clk.Advance(time.Second)
	return out
}

func stateOf(t *testing.T, statuses []AlertStatus, name string) AlertState {
	t.Helper()
	for _, s := range statuses {
		if s.Objective == name {
			return s.State
		}
	}
	t.Fatalf("objective %q not in statuses", name)
	return StateOK
}

func TestSLOEngineDisabled(t *testing.T) {
	if e := NewSLOEngine(nil, []Objective{{Name: "x"}}, BurnConfig{}); e != nil {
		t.Fatal("nil TSDB must return the nil engine")
	}
	if e := NewSLOEngine(&TSDB{}, nil, BurnConfig{}); e != nil {
		t.Fatal("no objectives must return the nil engine")
	}
	var e *SLOEngine
	if e.Evaluate() != nil || e.Current() != nil || e.Transitions() != nil {
		t.Fatal("nil engine must return empty results")
	}
	if e.WorstState() != StateOK {
		t.Fatal("nil engine WorstState != ok")
	}
}

func TestSLOLatencyRegressionAndRecovery(t *testing.T) {
	obj := Objective{
		Name: "p99", Series: "lat_seconds", Quantile: 0.99, Target: 0.1, MinCount: 5,
	}
	h := newSLOHarness(t, []Objective{obj})
	hist := h.reg.Histogram("lat_seconds")

	observe := func(v float64) {
		for i := 0; i < 20; i++ {
			hist.Observe(v)
		}
	}

	// Healthy: p99 ~5ms, far under the 100ms target.
	for i := 0; i < 12; i++ {
		observe(0.005)
		if got := stateOf(t, h.tick(), "p99"); got != StateOK {
			t.Fatalf("healthy tick %d: state %v, want ok", i, got)
		}
	}

	// Regression: p99 jumps to ~1s. Burn = 10x: critical — but only after
	// EnterAfter=2 consecutive evaluations (hysteresis).
	observe(1.0)
	if got := stateOf(t, h.tick(), "p99"); got != StateOK {
		t.Fatalf("first bad eval escalated immediately to %v; hysteresis broken", got)
	}
	observe(1.0)
	if got := stateOf(t, h.tick(), "p99"); got != StateCritical {
		t.Fatalf("second bad eval: state %v, want critical", got)
	}
	if h.eng.WorstState() != StateCritical {
		t.Fatal("WorstState != critical during regression")
	}

	// Recovery: fast observations again. The fast window still contains bad
	// samples for a while; once it clears, OK requires ClearAfter=3 evals.
	recovered := -1
	for i := 0; i < 30; i++ {
		observe(0.005)
		if got := stateOf(t, h.tick(), "p99"); got == StateOK {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		t.Fatal("never recovered to ok")
	}

	// The journey must be recorded: ok -> critical -> ok transitions.
	trs := h.eng.Transitions()
	if len(trs) < 2 {
		t.Fatalf("transitions = %d, want >= 2", len(trs))
	}
	// Newest first: last recovery first.
	if trs[0].To != StateOK {
		t.Fatalf("newest transition to %v, want ok", trs[0].To)
	}
	sawCritical := false
	for _, tr := range trs {
		if tr.To == StateCritical {
			sawCritical = true
		}
	}
	if !sawCritical {
		t.Fatal("no transition into critical recorded")
	}
}

func TestSLONoFlappingOnSingleBadSample(t *testing.T) {
	obj := Objective{
		Name: "p99", Series: "lat_seconds", Quantile: 0.99, Target: 0.1, MinCount: 5,
	}
	h := newSLOHarness(t, []Objective{obj})
	hist := h.reg.Histogram("lat_seconds")
	for i := 0; i < 12; i++ {
		for j := 0; j < 50; j++ {
			hist.Observe(0.005)
		}
		h.tick()
	}
	// One slow burst, then immediately healthy traffic heavy enough to pull
	// the windowed p99 back under target within one tick.
	hist.Observe(5.0)
	if got := stateOf(t, h.tick(), "p99"); got != StateOK {
		t.Fatalf("single bad sample moved the alert to %v", got)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 200; j++ {
			hist.Observe(0.005)
		}
		if got := stateOf(t, h.tick(), "p99"); got != StateOK {
			t.Fatalf("tick %d after single bad sample: %v, want ok (no flap)", i, got)
		}
	}
	if len(h.eng.Transitions()) != 0 {
		t.Fatalf("transitions recorded for a single bad sample: %v", h.eng.Transitions())
	}
}

func TestSLOErrorRatioObjective(t *testing.T) {
	obj := Objective{
		Name: "errs",
		Num:  []string{`q_total{outcome="error"}`},
		Den:  []string{"q_total"},
		Goal: 0.05, MinCount: 5,
	}
	h := newSLOHarness(t, []Objective{obj})
	okC := h.reg.Counter("q_total", "outcome", "ok")
	errC := h.reg.Counter("q_total", "outcome", "error")

	// 1% errors: healthy.
	for i := 0; i < 12; i++ {
		okC.Add(99)
		errC.Add(1)
		if got := stateOf(t, h.tick(), "errs"); got != StateOK {
			t.Fatalf("1%% errors tick %d: %v", i, got)
		}
	}
	// 50% errors: burn 10x, critical after hysteresis.
	var last AlertState
	for i := 0; i < 15; i++ {
		okC.Add(50)
		errC.Add(50)
		last = stateOf(t, h.tick(), "errs")
		if last == StateCritical {
			break
		}
	}
	if last != StateCritical {
		t.Fatalf("50%% errors never reached critical: %v", last)
	}
}

func TestSLOHitRatioCapsAtWarning(t *testing.T) {
	obj := Objective{
		Name:           "hit",
		Num:            []string{"hits_total"},
		Den:            []string{"hits_total", "misses_total"},
		Goal:           0.5,
		HigherIsBetter: true,
		MinCount:       5,
		CapState:       StateWarning,
	}
	h := newSLOHarness(t, []Objective{obj})
	h.reg.Counter("hits_total") // series exists, never incremented
	misses := h.reg.Counter("misses_total")
	// 0% hit ratio forever: burn is infinite, but the cap holds it at
	// warning — a cold cache must never flip the verdict to degraded.
	var last AlertState
	for i := 0; i < 20; i++ {
		misses.Add(50)
		last = stateOf(t, h.tick(), "hit")
		if last == StateCritical {
			t.Fatalf("capped objective escalated to critical at tick %d", i)
		}
	}
	if last != StateWarning {
		t.Fatalf("0%% hit ratio settled at %v, want warning", last)
	}
}

func TestSLOTrafficGuard(t *testing.T) {
	obj := Objective{
		Name: "errs",
		Num:  []string{`g_total{outcome="error"}`},
		Den:  []string{"g_total"},
		Goal: 0.05, MinCount: 100,
	}
	h := newSLOHarness(t, []Objective{obj})
	errC := h.reg.Counter("g_total", "outcome", "error")
	// 100% errors but only ~2 events/s: far under MinCount=100 per fast
	// window, so the objective stays ok — no data is not an outage.
	for i := 0; i < 15; i++ {
		errC.Add(2)
		if got := stateOf(t, h.tick(), "errs"); got != StateOK {
			t.Fatalf("under-traffic objective alerted: %v", got)
		}
	}
}
