package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWatchdogDisabled(t *testing.T) {
	if w := NewWatchdog(nil, nil, nil, WatchdogConfig{}); w != nil {
		t.Fatal("nil TSDB must return the nil watchdog")
	}
	var w *Watchdog
	if v := w.Check(); v.Degraded {
		t.Fatal("nil watchdog degraded")
	}
	if v := w.Verdict(); v.Degraded || len(v.Reasons) != 0 {
		t.Fatal("nil watchdog verdict not healthy")
	}
	var m *Monitor
	m.Tick() // must not panic
	m.Start()
	m.Stop()
}

// TestWatchdogStateTransitions drives the full ok → warning → critical →
// recovery ladder through structural rules with a fake clock, asserting
// hysteresis at each edge.
func TestWatchdogStateTransitions(t *testing.T) {
	reg := New()
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: 128, Interval: time.Second, Now: clk.Now})
	rules := []Rule{
		{Name: "queue_depth", Series: "depth", Kind: RuleLast, Threshold: 100, Critical: true},
		{Name: "retry_rate", Series: "retries_total", Kind: RuleRate, Threshold: 10, Window: 10 * time.Second},
	}
	dog := NewWatchdog(ts, nil, rules, WatchdogConfig{
		Window: 10 * time.Second, EnterAfter: 2, ClearAfter: 3, Now: clk.Now,
	})
	depth := reg.Gauge("depth")
	retries := reg.Counter("retries_total")

	tick := func(queue int64, retryStep int64) Verdict {
		depth.Set(queue)
		retries.Add(retryStep)
		ts.Sample()
		v := dog.Check()
		clk.Advance(time.Second)
		return v
	}

	type phase struct {
		name       string
		ticks      int
		queue      int64
		retryStep  int64
		wantFinal  bool // degraded at the end of the phase
		wantReason string
	}
	phases := []phase{
		// Healthy baseline.
		{name: "ok", ticks: 12, queue: 5, retryStep: 1, wantFinal: false},
		// Advisory breach only (retry storm): warnings, not degraded.
		{name: "warning", ticks: 12, queue: 5, retryStep: 50, wantFinal: false},
		// Critical breach (queue saturation): degraded after EnterAfter.
		{name: "critical", ticks: 12, queue: 500, retryStep: 50, wantFinal: true,
			wantReason: "queue_depth"},
		// Recovery: both signals clean; clears after the windows drain and
		// ClearAfter consecutive clean checks.
		{name: "recovery", ticks: 25, queue: 5, retryStep: 0, wantFinal: false},
	}
	for _, ph := range phases {
		var v Verdict
		for i := 0; i < ph.ticks; i++ {
			v = tick(ph.queue, ph.retryStep)
		}
		if v.Degraded != ph.wantFinal {
			t.Fatalf("phase %s: degraded = %v (reasons %v), want %v",
				ph.name, v.Degraded, v.Reasons, ph.wantFinal)
		}
		if ph.wantReason != "" {
			found := false
			for _, r := range v.Reasons {
				if strings.Contains(r, ph.wantReason) {
					found = true
				}
			}
			if !found {
				t.Fatalf("phase %s: reasons %v missing %q", ph.name, v.Reasons, ph.wantReason)
			}
		}
		if ph.name == "warning" {
			if len(v.Warnings) == 0 {
				t.Fatalf("phase warning: no warnings surfaced (verdict %+v)", v)
			}
		}
	}
	if v := dog.Verdict(); v.Degraded {
		t.Fatalf("final verdict still degraded: %v", v.Reasons)
	}
}

// TestWatchdogHysteresisNoFlap: a single breaching check must not activate a
// rule, and a single clean check must not deactivate one.
func TestWatchdogHysteresisNoFlap(t *testing.T) {
	reg := New()
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: 64, Interval: time.Second, Now: clk.Now})
	dog := NewWatchdog(ts, nil, []Rule{
		{Name: "depth", Series: "depth", Kind: RuleLast, Threshold: 100, Critical: true},
	}, WatchdogConfig{EnterAfter: 2, ClearAfter: 3, Now: clk.Now})
	depth := reg.Gauge("depth")

	tick := func(v int64) Verdict {
		depth.Set(v)
		ts.Sample()
		out := dog.Check()
		clk.Advance(time.Second)
		return out
	}

	for i := 0; i < 5; i++ {
		tick(5)
	}
	// One bad sample: no activation.
	if v := tick(500); v.Degraded {
		t.Fatal("single breaching check activated the rule")
	}
	if v := tick(5); v.Degraded {
		t.Fatal("degraded after breach cleared immediately")
	}
	// Sustained breach: activates on the 2nd consecutive check.
	tick(500)
	if v := tick(500); !v.Degraded {
		t.Fatal("sustained breach did not activate")
	}
	// One clean sample: stays active (ClearAfter=3).
	if v := tick(5); !v.Degraded {
		t.Fatal("single clean check deactivated the rule")
	}
	tick(5)
	if v := tick(5); v.Degraded {
		t.Fatal("rule still active after ClearAfter clean checks")
	}
}

// TestWatchdogFoldsSLOStates: a critical SLO objective degrades the verdict;
// a warning objective only warns.
func TestWatchdogFoldsSLOStates(t *testing.T) {
	obj := Objective{
		Name: "errs",
		Num:  []string{`w_total{outcome="error"}`},
		Den:  []string{"w_total"},
		Goal: 0.05, MinCount: 5,
	}
	reg := New()
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: 256, Interval: time.Second, Now: clk.Now})
	eng := NewSLOEngine(ts, []Objective{obj}, BurnConfig{
		FastWindow: 10 * time.Second, SlowWindow: 60 * time.Second,
		EnterAfter: 2, ClearAfter: 3, Now: clk.Now,
	})
	dog := NewWatchdog(ts, eng, nil, WatchdogConfig{Now: clk.Now})
	okC := reg.Counter("w_total", "outcome", "ok")
	errC := reg.Counter("w_total", "outcome", "error")

	tick := func(okN, errN int64) Verdict {
		okC.Add(okN)
		errC.Add(errN)
		ts.Sample()
		eng.Evaluate()
		v := dog.Check()
		clk.Advance(time.Second)
		return v
	}

	for i := 0; i < 12; i++ {
		if v := tick(99, 1); v.Degraded {
			t.Fatalf("healthy tick %d degraded: %v", i, v.Reasons)
		}
	}
	var v Verdict
	for i := 0; i < 15; i++ {
		v = tick(50, 50)
		if v.Degraded {
			break
		}
	}
	if !v.Degraded {
		t.Fatal("critical SLO never degraded the verdict")
	}
	found := false
	for _, r := range v.Reasons {
		if strings.Contains(r, "slo errs critical") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons %v missing the SLO explanation", v.Reasons)
	}
}

// TestMonitorTick drives the bundled pipeline end to end once.
func TestMonitorTick(t *testing.T) {
	reg := New()
	clk := newFakeClock()
	ts := NewTSDB(reg, TSDBConfig{History: 16, Interval: time.Second, Now: clk.Now})
	eng := NewSLOEngine(ts, []Objective{{
		Name: "p99", Series: "m_seconds", Quantile: 0.99, Target: 1,
	}}, BurnConfig{Now: clk.Now})
	dog := NewWatchdog(ts, eng, nil, WatchdogConfig{Now: clk.Now})
	mon := NewMonitor(ts, eng, dog)
	if mon == nil {
		t.Fatal("NewMonitor returned nil for a live TSDB")
	}
	reg.Histogram("m_seconds").Observe(0.01)
	mon.Tick()
	if ts.Samples() != 1 {
		t.Fatalf("Samples = %d after one Tick", ts.Samples())
	}
	if eng.Evaluations() != 1 {
		t.Fatalf("Evaluations = %d after one Tick", eng.Evaluations())
	}
	if dog.Checks() != 1 {
		t.Fatalf("Checks = %d after one Tick", dog.Checks())
	}
	if NewMonitor(nil, nil, nil) != nil {
		t.Fatal("NewMonitor(nil) must return nil")
	}
}

// TestMonitorStartStop exercises the real ticker path briefly.
func TestMonitorStartStop(t *testing.T) {
	reg := New()
	ts := NewTSDB(reg, TSDBConfig{History: 16, Interval: time.Millisecond})
	mon := NewMonitor(ts, nil, nil)
	mon.Start()
	deadline := time.Now().Add(2 * time.Second)
	for ts.Samples() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	mon.Stop()
	if ts.Samples() == 0 {
		t.Fatal("monitor never sampled")
	}
}
