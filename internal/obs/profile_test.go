package obs

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenProfile builds a profile through the public mutators — the same calls
// the serve path makes — then pins the non-deterministic fields (start time,
// measured total) so the snapshot is byte-stable.
func goldenProfile() ProfileData {
	p := NewProfile()
	p.SetQuery("box[35.00,-98.00 35.60,-96.80] 2015-02-02/2015-02-03 s4/Day")
	p.SetFootprint(24, 4, "Day", 3)
	p.AddStage("footprint", 150*time.Microsecond)
	p.AddStage("fanout", 2100*time.Microsecond)
	p.AddStage("graph.get", 400*time.Microsecond)
	p.AddStage("disk.scan", 1800*time.Microsecond)
	p.AddStage("merge", 90*time.Microsecond)
	// Tiers offered out of probe order: the snapshot must sort
	// frontend -> local -> guest regardless of arrival.
	p.AddTier("guest", 2, 1)
	p.AddTier("local", 15, 9)
	p.AddTier("frontend", 0, 24)
	p.AddNode("node-3", 10)
	p.AddNode("node-1", 14)
	p.AddNodeBlocks("node-1", 6)
	p.AddDerived(5)
	p.AddDiskCells(9)
	p.AddRetry()
	p.AddReroute()
	p.AddScatter(2)
	p.AddCoalesce(18, 4)
	p.AddSingleflight(12, 3)
	p.AddWireBytes(4096)
	p.Finish("partial")

	d := p.Data()
	d.Start = time.Date(2015, 2, 2, 12, 0, 0, 0, time.UTC)
	d.TotalMS = 4.54
	return d
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(if the change is intentional, re-run with -update)",
			name, got, want)
	}
}

// TestProfileJSONGolden pins the exact ?explain=1 wire shape — field names,
// order, omitempty behavior, slice sorting — against a checked-in golden
// file, so profile-format drift is a conscious, reviewed change.
func TestProfileJSONGolden(t *testing.T) {
	got := append(goldenProfile().JSON(), '\n')
	checkGolden(t, "golden.profile.json", got)
}

// TestProfileStringGolden pins the one-line human summary the CLI tools print.
func TestProfileStringGolden(t *testing.T) {
	got := []byte(goldenProfile().String() + "\n")
	checkGolden(t, "golden.profile.txt", got)
}

// TestProfileDeterministic guards the property the golden files rely on:
// repeated snapshots of the same profile are byte-identical (the maps inside
// QueryProfile must not leak iteration order).
func TestProfileDeterministic(t *testing.T) {
	a, b := goldenProfile(), goldenProfile()
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Error("profile JSON not deterministic across identical builds")
	}
}

// TestProfileNilSafe drives every mutator and accessor through a nil receiver
// — the production disabled path — and through a context with no profile.
func TestProfileNilSafe(t *testing.T) {
	var p *QueryProfile
	p.SetQuery("q")
	p.SetFootprint(1, 2, "Day", 3)
	p.AddStage("s", time.Millisecond)
	p.AddTier("local", 1, 2)
	p.AddNode("n", 1)
	p.AddNodeBlocks("n", 1)
	p.AddDerived(1)
	p.AddDiskCells(1)
	p.AddRetry()
	p.AddReroute()
	p.AddScatter(1)
	p.AddCoalesce(1, 1)
	p.AddSingleflight(1, 1)
	p.AddWireBytes(1)
	p.Finish("ok")
	p.Merge(NewProfile())
	if d := p.Data(); d.FootprintKeys != 0 || d.Status != "" {
		t.Errorf("nil profile snapshot not zero: %+v", d)
	}
	if got := ProfileFromContext(context.Background()); got != nil {
		t.Errorf("ProfileFromContext on bare context = %v, want nil", got)
	}
}

// TestProfileRoundTrip checks an installed profile is retrievable and that
// accumulated values land in the snapshot.
func TestProfileRoundTrip(t *testing.T) {
	ctx, p := WithProfile(context.Background())
	if got := ProfileFromContext(ctx); got != p {
		t.Fatal("installed profile not returned from context")
	}
	p.AddTier("local", 7, 3)
	p.AddNodeBlocks("node-0", 4)
	p.Finish("ok")
	d := p.Data()
	if len(d.Tiers) != 1 || d.Tiers[0].Hits != 7 || d.Tiers[0].Misses != 3 {
		t.Errorf("tier outcome %+v", d.Tiers)
	}
	if d.BlocksRead != 4 || len(d.Nodes) != 1 || d.Nodes[0].BlocksRead != 4 {
		t.Errorf("blocks read: total %d nodes %+v", d.BlocksRead, d.Nodes)
	}
	if d.Status != "ok" || d.TotalMS < 0 {
		t.Errorf("finish: status %q total %v", d.Status, d.TotalMS)
	}
}

// TestProfileFinishFirstWins: retried Finish calls must not stretch the total.
func TestProfileFinishFirstWins(t *testing.T) {
	p := NewProfile()
	p.Finish("ok")
	first := p.Data().TotalMS
	time.Sleep(2 * time.Millisecond)
	p.Finish("error")
	d := p.Data()
	if d.TotalMS != first {
		t.Errorf("second Finish changed total: %v -> %v", first, d.TotalMS)
	}
	if d.Status != "error" {
		t.Errorf("status %q, want error (status does update)", d.Status)
	}
}

// TestProfileMerge checks the coalescer's batch-attribution path: work
// recorded into a detached batch profile folds into each waiter.
func TestProfileMerge(t *testing.T) {
	batch := NewProfile()
	batch.AddStage("graph.get", time.Millisecond)
	batch.AddTier("local", 5, 5)
	batch.AddNodeBlocks("node-2", 3)
	batch.AddDerived(2)

	waiter := NewProfile()
	waiter.AddStage("graph.get", time.Millisecond)
	waiter.AddTier("local", 1, 0)
	waiter.Merge(batch)
	waiter.Merge(nil)    // no-op
	waiter.Merge(waiter) // self-merge is a guarded no-op
	d := waiter.Data()

	if len(d.Stages) != 1 || d.Stages[0].MS != 2 {
		t.Errorf("merged stages %+v, want graph.get at 2ms", d.Stages)
	}
	if len(d.Tiers) != 1 || d.Tiers[0].Hits != 6 || d.Tiers[0].Misses != 5 {
		t.Errorf("merged tiers %+v", d.Tiers)
	}
	if d.BlocksRead != 3 || d.Derived != 2 {
		t.Errorf("merged counters: blocks %d derived %d", d.BlocksRead, d.Derived)
	}
	// The source must be unchanged.
	if bd := batch.Data(); bd.Derived != 2 || len(bd.Stages) != 1 {
		t.Errorf("merge mutated the source: %+v", bd)
	}
}

// TestDisabledPathZeroAlloc is the contract the whole serve path relies on:
// with no profile installed, the lookup plus every record call allocates
// nothing. BenchmarkQueryProfileOff asserts the same in allocs/op form for
// the CI grep.
func TestDisabledPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		p := ProfileFromContext(ctx)
		p.AddStage("graph.get", time.Microsecond)
		p.AddTier("local", 10, 2)
		p.AddNode("node-1", 12)
		p.AddNodeBlocks("node-1", 3)
		p.AddDerived(3)
		p.AddDiskCells(2)
		p.AddWireBytes(128)
		p.AddCoalesce(4, 1)
		p.AddSingleflight(1, 0)
		p.Finish("ok")
	})
	if allocs != 0 {
		t.Errorf("disabled profile path allocates %.1f per op, want 0", allocs)
	}
}

// TestProfileStringHasFields sanity-checks the human format beyond the golden
// byte pin (so a deliberate golden refresh still can't drop whole fields).
func TestProfileStringHasFields(t *testing.T) {
	s := goldenProfile().String()
	for _, want := range []string{
		"total=4.54ms", "keys=24", "frontend=0/24", "local=15/24", "guest=2/3",
		"nodes=2", "derived=5", "disk=9", "blocks=6", "status=partial",
		"footprint=0.15ms", "disk.scan=1.80ms",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

// BenchmarkQueryProfileOff measures the production default: no profile in the
// context. CI asserts this reports 0 allocs/op.
func BenchmarkQueryProfileOff(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := ProfileFromContext(ctx)
		p.AddStage("graph.get", time.Microsecond)
		p.AddTier("local", 10, 2)
		p.AddNode("node-1", 12)
		p.AddNodeBlocks("node-1", 3)
		p.AddDerived(3)
		p.AddDiskCells(2)
		p.AddWireBytes(128)
		p.Finish("ok")
	}
}

// BenchmarkQueryProfileOn prices the enabled path (explain / flight recorder
// on): one profile allocation plus locked map updates per query.
func BenchmarkQueryProfileOn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, prof := WithProfile(context.Background())
		p := ProfileFromContext(ctx)
		p.AddStage("graph.get", time.Microsecond)
		p.AddTier("local", 10, 2)
		p.AddNode("node-1", 12)
		p.AddNodeBlocks("node-1", 3)
		p.AddDerived(3)
		p.AddDiskCells(2)
		p.AddWireBytes(128)
		prof.Finish("ok")
	}
}
