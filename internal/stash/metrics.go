package stash

import (
	"sync"

	"stash/internal/obs"
)

// tierMetrics are the per-cache-tier observability handles. The repo runs
// the same Graph structure at three tiers — the front-end cache
// ("frontend"), each node's owner shard ("local"), and the replication
// guest shard ("guest") — so the registry keys every cache series by tier
// rather than by instance: 16 node shards aggregate into one "local"
// series, which is the granularity the paper's figures report at.
type tierMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	inserts   *obs.Counter
	evictions *obs.Counter
	cells     *obs.Gauge // resident cells summed over live graphs of the tier
}

var (
	tierMu sync.Mutex
	tiers  = map[string]*tierMetrics{}
)

// metricsForTier resolves (once per tier) the shared metric handles.
func metricsForTier(tier string) *tierMetrics {
	tierMu.Lock()
	defer tierMu.Unlock()
	if m, ok := tiers[tier]; ok {
		return m
	}
	r := obs.Default()
	r.Help("stash_cache_hits_total", "Cells served from a STASH graph, by cache tier.")
	r.Help("stash_cache_misses_total", "Cells requested but absent or stale, by cache tier.")
	r.Help("stash_cache_inserts_total", "Cells inserted into a STASH graph, by cache tier.")
	r.Help("stash_cache_evictions_total", "Cells evicted by freshness replacement, by cache tier.")
	r.Help("stash_cache_cells", "Resident cells summed across live graphs of a tier.")
	m := &tierMetrics{
		hits:      r.Counter("stash_cache_hits_total", "tier", tier),
		misses:    r.Counter("stash_cache_misses_total", "tier", tier),
		inserts:   r.Counter("stash_cache_inserts_total", "tier", tier),
		evictions: r.Counter("stash_cache_evictions_total", "tier", tier),
		cells:     r.Gauge("stash_cache_cells", "tier", tier),
	}
	tiers[tier] = m
	return m
}
