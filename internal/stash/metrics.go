package stash

import (
	"strconv"
	"sync"

	"stash/internal/obs"
)

// tierMetrics are the per-cache-tier observability handles. The repo runs
// the same Graph structure at three tiers — the front-end cache
// ("frontend"), each node's owner shard ("local"), and the replication
// guest shard ("guest") — so the registry keys every cache series by tier
// rather than by instance: 16 node shards aggregate into one "local"
// series, which is the granularity the paper's figures report at.
type tierMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	inserts   *obs.Counter
	evictions *obs.Counter
	cells     *obs.Gauge // resident cells summed over live graphs of the tier
	// contention counts stripe-lock acquisitions that found the lock held
	// (TryLock failed). A rate near zero means the striping factor is ample
	// for the worker count; a high rate says raise Stripes.
	contention *obs.Counter
}

var (
	tierMu sync.Mutex
	tiers  = map[string]*tierMetrics{}
)

// metricsForTier resolves (once per tier) the shared metric handles.
func metricsForTier(tier string) *tierMetrics {
	tierMu.Lock()
	defer tierMu.Unlock()
	if m, ok := tiers[tier]; ok {
		return m
	}
	r := obs.Default()
	r.Help("stash_cache_hits_total", "Cells served from a STASH graph, by cache tier.")
	r.Help("stash_cache_misses_total", "Cells requested but absent or stale, by cache tier.")
	r.Help("stash_cache_inserts_total", "Cells inserted into a STASH graph, by cache tier.")
	r.Help("stash_cache_evictions_total", "Cells evicted by freshness replacement, by cache tier.")
	r.Help("stash_cache_cells", "Resident cells summed across live graphs of a tier.")
	r.Help("stash_graph_stripe_contention_total", "Stripe-lock acquisitions that contended (TryLock failed), by cache tier.")
	m := &tierMetrics{
		hits:       r.Counter("stash_cache_hits_total", "tier", tier),
		misses:     r.Counter("stash_cache_misses_total", "tier", tier),
		inserts:    r.Counter("stash_cache_inserts_total", "tier", tier),
		evictions:  r.Counter("stash_cache_evictions_total", "tier", tier),
		cells:      r.Gauge("stash_cache_cells", "tier", tier),
		contention: r.Counter("stash_graph_stripe_contention_total", "tier", tier),
	}
	tiers[tier] = m
	return m
}

// stripeGauges resolves the per-stripe occupancy gauges of a tier. Graphs of
// the same tier and striping factor share series (the registry deduplicates
// by label set), so each gauge reads as the tier-wide cell count of that
// stripe index — skew across the series is hash imbalance, and a hot single
// stripe under contention shows up against a flat neighborhood.
func stripeGauges(tier string, n int) []*obs.Gauge {
	r := obs.Default()
	r.Help("stash_graph_stripe_cells", "Resident cells per lock stripe, summed across live graphs of a tier.")
	out := make([]*obs.Gauge, n)
	for i := range out {
		out[i] = r.Gauge("stash_graph_stripe_cells", "tier", tier, "stripe", strconv.Itoa(i))
	}
	return out
}
