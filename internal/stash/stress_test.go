package stash

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/query"
)

// stressKeys builds a working set large enough to span every stripe and to
// push a small-capacity graph through repeated evictions.
func stressKeys(n int) []cell.Key {
	keys := make([]cell.Key, 0, n)
	for i := 0; len(keys) < n; i++ {
		gh := string([]byte{
			geohash.Base32[i%32],
			geohash.Base32[(i/32)%32],
			geohash.Base32[(i/1024)%32],
		})
		keys = append(keys, k(gh))
	}
	return keys
}

// TestGraphStressParallel hammers one Graph from many goroutines with the
// full mutating API — Get, Put, PutEmpty, Delete, and the evictions the small
// capacity forces — so the race detector sees every lock-striping interleaving
// (run under -race in CI with -cpu=1,4). Afterwards the per-stripe sizes,
// level counts, and stats must reconcile with the global size.
func TestGraphStressParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 400 // small: every few Puts trigger an eviction pass
	cfg.Stripes = 8
	g := NewGraph(cfg)

	keys := stressKeys(2048)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	iters := 300
	if testing.Short() {
		iters = 60
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				base := rng.Intn(len(keys) - 32)
				batch := keys[base : base+1+rng.Intn(31)]
				switch rng.Intn(5) {
				case 0: // read path: touch + disperse
					g.Get(batch)
				case 1: // population path: insert + evict
					res := query.NewResult()
					for j, key := range batch {
						res.Add(key, summaryWith(float64(j)))
					}
					g.Put(res)
				case 2: // negative caching
					g.PutEmpty(batch)
				case 3: // purge path
					for _, key := range batch {
						g.Delete(key)
					}
				case 4: // metadata reads race the mutators
					g.Peek(batch[0])
					g.Freshness(batch[0])
					g.Len()
					g.Stats()
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()

	// Global size must equal the sum of per-stripe sizes and of per-level
	// counts: the atomics and the striped maps may not drift apart.
	total := 0
	for i := 0; i < g.Stripes(); i++ {
		total += g.StripeLen(i)
	}
	if total != g.Len() {
		t.Errorf("stripe sizes sum to %d, Len() = %d", total, g.Len())
	}
	byLevel := 0
	for lvl := 0; lvl < cell.NumLevels; lvl++ {
		byLevel += g.LevelLen(lvl)
	}
	if byLevel != g.Len() {
		t.Errorf("level sizes sum to %d, Len() = %d", byLevel, g.Len())
	}
	if g.Len() > cfg.Capacity {
		t.Errorf("Len() = %d exceeds capacity %d after stress", g.Len(), cfg.Capacity)
	}
	st := g.Stats()
	if st.Hits < 0 || st.Misses < 0 || st.Inserts < 0 || st.Evictions < 0 {
		t.Errorf("negative stats after stress: %+v", st)
	}
	if st.Inserts == 0 || st.Evictions == 0 {
		t.Errorf("stress never exercised insert/evict: %+v", st)
	}
}

// TestStripeDistribution checks the key hash actually spreads a realistic
// footprint across stripes: with 16 stripes and 1024 keys no stripe should be
// empty and none should hold the majority.
func TestStripeDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stripes = 16
	g := NewGraph(cfg)
	keys := stressKeys(1024)
	res := query.NewResult()
	for i, key := range keys {
		res.Add(key, summaryWith(float64(i)))
	}
	g.Put(res)

	max := 0
	for i := 0; i < g.Stripes(); i++ {
		n := g.StripeLen(i)
		if n == 0 {
			t.Errorf("stripe %d empty with %d keys resident", i, len(keys))
		}
		if n > max {
			max = n
		}
	}
	if max > len(keys)/2 {
		t.Errorf("one stripe holds %d of %d keys: hash is clumping", max, len(keys))
	}
}

// TestStripesRoundedToPowerOfTwo verifies the striping factor normalization:
// arbitrary requests round up to a power of two, capped at maxStripes, and 1
// stays the single-lock baseline.
func TestStripesRoundedToPowerOfTwo(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {100, 128}, {1 << 20, maxStripes},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.Stripes = tc.in
		if got := NewGraph(cfg).Stripes(); got != tc.want {
			t.Errorf("Stripes %d normalized to %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestSingleStripeSemantics re-runs the basic cache contract on the
// single-lock (stripes=1) configuration, so the baseline stays correct while
// the default is striped.
func TestSingleStripeSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 1000
	cfg.Stripes = 1
	g := NewGraph(cfg)
	if g.Stripes() != 1 {
		t.Fatalf("Stripes() = %d, want 1", g.Stripes())
	}
	keys := []cell.Key{k("9q8"), k("9q9"), k("9qb")}
	if _, missing := g.Get(keys); len(missing) != 3 {
		t.Fatalf("cold get on single stripe: missing=%d", len(missing))
	}
	g.Put(resultWith(keys...))
	found, missing := g.Get(keys)
	if found.Len() != 3 || len(missing) != 0 {
		t.Fatalf("warm get on single stripe: found=%d missing=%d", found.Len(), len(missing))
	}
	g.Delete(keys[0])
	if _, missing = g.Get(keys); len(missing) != 1 {
		t.Fatalf("after delete: missing=%d, want 1", len(missing))
	}
}

// TestGetBatchAliasesGet verifies the pipeline entry point and the classic
// entry point are the same operation.
func TestGetBatchAliasesGet(t *testing.T) {
	g := newTestGraph()
	keys := []cell.Key{k("9q8"), k("9q9")}
	g.Put(resultWith(keys...))
	r1, m1 := g.Get(keys)
	r2, m2 := g.GetBatch(keys)
	if r1.Len() != r2.Len() || len(m1) != len(m2) {
		t.Errorf("Get and GetBatch disagree: (%d,%d) vs (%d,%d)",
			r1.Len(), len(m1), r2.Len(), len(m2))
	}
}

// TestDeriveBatchMatchesSingle checks the batched derivation resolves exactly
// the keys the single-key path resolves, and returns unresolved keys in
// request order.
func TestDeriveBatchMatchesSingle(t *testing.T) {
	g := newTestGraph()
	parent := k("9q8")
	children, ok := parent.SpatialChildren()
	if !ok {
		t.Fatal("no spatial children for 9q8")
	}
	g.Put(resultWith(children...))

	orphan := k("9w1") // no cover cached
	res, unresolved := g.DeriveBatch([]cell.Key{orphan, parent})
	if _, ok := res.Cells[parent]; !ok {
		t.Fatal("batched derivation missed the covered parent")
	}
	if len(unresolved) != 1 || unresolved[0] != orphan {
		t.Fatalf("unresolved = %v, want [%v]", unresolved, orphan)
	}
	// The derived parent is now resident.
	if _, ok := g.Peek(parent); !ok {
		t.Error("derived cell not resident after DeriveBatch")
	}
}
