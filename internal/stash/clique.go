package stash

import (
	"sort"

	"stash/internal/cell"
)

// Clique is a subgraph of the STASH graph rooted at one cell and extending a
// configured number of levels down its spatial-children edges (paper
// §VII-B2). Cliques are the unit of hotspot replication: they capture a
// spatiotemporal region together with its finer-resolution refinements, so a
// helper node can answer drill-downs over the replicated region too.
//
// Cliques are identified by the spatiotemporal label of their topmost parent
// cell (the Root).
type Clique struct {
	// Root is the topmost parent cell identifying the clique.
	Root cell.Key
	// Keys lists every member cell resident in the graph, root included.
	Keys []cell.Key
	// Freshness is the cumulative (decayed) freshness of the members.
	Freshness float64
}

// Size returns the number of member cells.
func (c Clique) Size() int { return len(c.Keys) }

// CliqueAt assembles the clique rooted at the given key with the given depth:
// the root plus depth generations of spatial children, restricted to cells
// resident in the graph. Depth 0 is the root alone; the paper's example
// depth 2 adds children and grandchildren.
//
// Clique assembly is a whole-graph read (members span stripes), so it takes
// every stripe lock for a consistent snapshot. It runs only on the rare
// hotspot-handoff path, never per request.
func (g *Graph) CliqueAt(root cell.Key, depth int) Clique {
	g.lockAll()
	defer g.unlockAll()
	return g.cliqueLocked(root, depth)
}

// lookupAllLocked finds a cell in its home stripe. Callers hold every stripe
// lock (lockAll).
func (g *Graph) lookupAllLocked(k cell.Key) *cell.Cell {
	return g.stripeFor(k).lookup(k)
}

func (g *Graph) cliqueLocked(root cell.Key, depth int) Clique {
	tick := g.tick.Load()
	cl := Clique{Root: root}
	frontier := []cell.Key{root}
	for gen := 0; gen <= depth; gen++ {
		var next []cell.Key
		for _, k := range frontier {
			if c := g.lookupAllLocked(k); c != nil {
				cl.Keys = append(cl.Keys, k)
				cl.Freshness += c.FreshnessAt(tick, g.decay)
			}
			if gen < depth {
				if ch, ok := k.SpatialChildren(); ok {
					next = append(next, ch...)
				}
			}
		}
		frontier = next
	}
	return cl
}

// TopCliques finds the hottest disjoint cliques of the given depth whose
// cumulative size stays within maxCells — the hotspotted node's replica
// selection (paper §VII-B2: "the top K Cliques whose cumulative size is
// <= N").
//
// Candidate roots are every resident cell whose spatial parent is not itself
// resident (so cliques nest as deep as the cached hierarchy allows without
// double-counting), ranked by cumulative freshness and taken greedily.
func (g *Graph) TopCliques(depth, maxCells int) []Clique {
	if maxCells <= 0 {
		return nil
	}
	g.lockAll()
	defer g.unlockAll()

	var candidates []Clique
	for _, s := range g.stripes {
		for lvl := range s.levels {
			for k := range s.levels[lvl] {
				if parent, ok := spatialParentKey(k); ok && g.lookupAllLocked(parent) != nil {
					continue // covered by the parent's clique
				}
				cl := g.cliqueLocked(k, depth)
				if cl.Size() > 0 && cl.Freshness > 0 {
					candidates = append(candidates, cl)
				}
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Freshness != candidates[j].Freshness {
			return candidates[i].Freshness > candidates[j].Freshness
		}
		return candidates[i].Root.String() < candidates[j].Root.String()
	})

	var out []Clique
	total := 0
	for _, cl := range candidates {
		if total+cl.Size() > maxCells {
			continue
		}
		out = append(out, cl)
		total += cl.Size()
	}
	return out
}

func spatialParentKey(k cell.Key) (cell.Key, bool) {
	if len(k.Geohash) <= 1 {
		return cell.Key{}, false
	}
	return cell.Key{Geohash: k.Geohash[:len(k.Geohash)-1], Time: k.Time}, true
}
