// Package stash implements the paper's primary contribution: the STASH
// graph, a distributed in-memory cache of hierarchically aggregated
// spatiotemporal cells (paper §IV, §V).
//
// One Graph instance is the per-node shard of the logical G_STASH =
// (V, {E_H, E_L}). Vertices (Cells) are stored in per-level hash maps — the
// paper's "map of distributed hash tables" — so locating a cell costs one
// local map lookup per level. Edges are never materialized: hierarchical and
// lateral relationships are derived from the cell-key algebra in package
// cell, the paper's "composable vertex discovery schemes".
//
// The Graph also carries the two policies the paper builds on top of the
// data structure: freshness-based cell replacement with neighborhood
// dispersion (§V-C) and the precision-level map (PLM) that tracks
// completeness against the backing store (§IV-D).
//
// Concurrency: the store is hash-striped. Each stripe owns a private
// per-level map set under its own mutex, so requests touching disjoint
// stripes proceed in parallel across a node's workers (memcached-style lock
// striping). The replacement *policy* stays global — logical time, stats,
// and the eviction trigger are process-wide atomics, and eviction ranks
// victims across all stripes — so striping changes scalability, not
// semantics. See DESIGN.md "Concurrency model".
package stash

import (
	"sort"
	"sync"
	"sync/atomic"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/simnet"
)

// Config tunes a STASH graph shard. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// Capacity is the maximum number of cells held in memory (the paper's
	// configurable threshold on total Cells).
	Capacity int
	// SafeFraction is the fill level eviction drives the graph back to once
	// Capacity is breached (the paper's "safe limit").
	SafeFraction float64
	// FreshInc is f_inc: the freshness added to a cell on direct access.
	FreshInc float64
	// DisperseFraction is the share of FreshInc granted to the
	// spatiotemporal neighborhood of an accessed region.
	DisperseFraction float64
	// HalfLife is the freshness decay half-life in logical ticks (one tick
	// advances per graph operation batch).
	HalfLife int64
	// Disperse enables neighborhood freshness dispersion. Disabling it is
	// the abl-freshness ablation: replacement degenerates to per-cell
	// frequency/recency with no region awareness.
	Disperse bool
	// DisperseKeyLimit skips dispersion for requests larger than this many
	// cells. For perceptual-scale footprints the request already touches the
	// whole region of interest and its one-cell neighborhood shell is
	// negligible relative to it, so dispersing there buys nothing while the
	// neighbor algebra would dominate the request cost. Zero selects the
	// default.
	DisperseKeyLimit int
	// Stripes is the lock-striping factor: the store is split into this many
	// hash-sharded segments, each under its own mutex, so concurrent workers
	// contend only when their keys collide on a stripe. Rounded up to a
	// power of two; zero selects the default, 1 degenerates to the original
	// single-lock graph (useful as a benchmark baseline).
	Stripes int
	// Model and Sleeper price the in-memory work (cell touches) so that
	// experiments account for STASH's own overhead (paper Fig. 6c). A nil
	// Sleeper disables cost accounting.
	Model   simnet.Model
	Sleeper simnet.Sleeper
	// Tier labels this shard's series in the process metric registry
	// (stash_cache_*_total{tier=...}). The cluster uses "local" for owner
	// shards and "guest" for replica shards; the front-end uses
	// "frontend". Empty defaults to "local".
	Tier string
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Capacity:         200_000,
		SafeFraction:     0.90,
		FreshInc:         1.0,
		DisperseFraction: 0.25,
		HalfLife:         10_000,
		Disperse:         true,
		DisperseKeyLimit: 1024,
		Stripes:          16,
	}
}

// maxStripes bounds the striping factor: beyond this the per-stripe maps are
// too sparse to matter and the per-stripe metric series get noisy.
const maxStripes = 256

// Stats are cumulative counters of one graph shard.
type Stats struct {
	Hits      int64 // cells served from memory
	Misses    int64 // cells requested but absent (or stale)
	Inserts   int64 // cells inserted
	Evictions int64 // cells evicted by replacement
}

// stripe is one hash shard of the store: a private per-level map set under
// its own lock. A cell lives in exactly one stripe (chosen by key hash), so
// holding the stripe lock protects both the maps and the freshness fields of
// every resident *cell.Cell.
type stripe struct {
	mu     sync.Mutex
	idx    int // position in Graph.stripes, for the per-stripe gauges
	levels [cell.NumLevels]map[cell.Key]*cell.Cell
	size   int
}

// Graph is one node's shard of the STASH graph. It is safe for concurrent
// use: the store is lock-striped and all policy state is atomic.
type Graph struct {
	cfg     Config
	decay   cell.DecayFunc
	stripes []*stripe
	mask    uint32 // len(stripes)-1; len is a power of two
	plm     *PLM
	om      *tierMetrics // process-registry handles, resolved once per tier
	gauges  []*obs.Gauge // per-stripe occupancy, summed across graphs of the tier

	tick     atomic.Int64 // logical time, one advance per operation batch
	size     atomic.Int64 // resident cells across all stripes
	levelLen [cell.NumLevels]atomic.Int64
	evicting atomic.Bool // single-flight guard for the global eviction pass

	hits      atomic.Int64
	misses    atomic.Int64
	inserts   atomic.Int64
	evictions atomic.Int64
}

// NewGraph returns an empty shard with the given configuration.
func NewGraph(cfg Config) *Graph {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultConfig().Capacity
	}
	if cfg.SafeFraction <= 0 || cfg.SafeFraction > 1 {
		cfg.SafeFraction = DefaultConfig().SafeFraction
	}
	if cfg.FreshInc <= 0 {
		cfg.FreshInc = DefaultConfig().FreshInc
	}
	if cfg.DisperseKeyLimit <= 0 {
		cfg.DisperseKeyLimit = DefaultConfig().DisperseKeyLimit
	}
	if cfg.Stripes <= 0 {
		cfg.Stripes = DefaultConfig().Stripes
	}
	if cfg.Stripes > maxStripes {
		cfg.Stripes = maxStripes
	}
	n := 1
	for n < cfg.Stripes {
		n <<= 1
	}
	cfg.Stripes = n
	if cfg.Tier == "" {
		cfg.Tier = "local"
	}
	g := &Graph{
		cfg:     cfg,
		decay:   cell.ExpDecay(cfg.HalfLife),
		stripes: make([]*stripe, n),
		mask:    uint32(n - 1),
		plm:     NewPLM(),
		om:      metricsForTier(cfg.Tier),
		gauges:  stripeGauges(cfg.Tier, n),
	}
	for i := range g.stripes {
		g.stripes[i] = &stripe{idx: i}
	}
	return g
}

// Stripes returns the (normalized) lock-striping factor.
func (g *Graph) Stripes() int { return len(g.stripes) }

// stripeIndex hashes a key onto its stripe index (FNV-1a over the key labels).
func (g *Graph) stripeIndex(k cell.Key) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k.Geohash); i++ {
		h = (h ^ uint32(k.Geohash[i])) * prime32
	}
	h = (h ^ uint32(k.Time.Res)) * prime32
	for i := 0; i < len(k.Time.Text); i++ {
		h = (h ^ uint32(k.Time.Text[i])) * prime32
	}
	// Fold the high bits in so low-entropy keys still spread.
	h ^= h >> 16
	return h & g.mask
}

// stripeFor hashes a key onto its stripe.
func (g *Graph) stripeFor(k cell.Key) *stripe {
	return g.stripes[g.stripeIndex(k)]
}

// lockStripe acquires a stripe lock, counting contended acquisitions so
// /metrics shows when the striping factor is too low for the worker count.
func (g *Graph) lockStripe(s *stripe) {
	if s.mu.TryLock() {
		return
	}
	g.om.contention.Inc()
	s.mu.Lock()
}

// lockAll acquires every stripe lock in index order (whole-graph scans:
// clique assembly). Counterpart unlockAll releases in reverse.
func (g *Graph) lockAll() {
	for _, s := range g.stripes {
		g.lockStripe(s)
	}
}

func (g *Graph) unlockAll() {
	for i := len(g.stripes) - 1; i >= 0; i-- {
		g.stripes[i].mu.Unlock()
	}
}

// Len returns the number of cells currently cached.
func (g *Graph) Len() int { return int(g.size.Load()) }

// LevelLen returns the number of cells cached at one hierarchy level.
func (g *Graph) LevelLen(level int) int {
	if level < 0 || level >= cell.NumLevels {
		return 0
	}
	return int(g.levelLen[level].Load())
}

// StripeLen returns the number of cells resident in one stripe.
func (g *Graph) StripeLen(i int) int {
	if i < 0 || i >= len(g.stripes) {
		return 0
	}
	s := g.stripes[i]
	g.lockStripe(s)
	defer s.mu.Unlock()
	return s.size
}

// Stats returns a snapshot of the shard's counters.
func (g *Graph) Stats() Stats {
	return Stats{
		Hits:      g.hits.Load(),
		Misses:    g.misses.Load(),
		Inserts:   g.inserts.Load(),
		Evictions: g.evictions.Load(),
	}
}

// Tick returns the current logical time.
func (g *Graph) Tick() int64 { return g.tick.Load() }

// PLM exposes the shard's precision-level map.
func (g *Graph) PLM() *PLM {
	return g.plm
}

// stripeGroup is one stripe's share of a batched request: the indices (into
// the caller's key slice) of the keys hashing to the stripe.
type stripeGroup struct {
	s   *stripe
	idx []int
}

// groupByStripe partitions keys by stripe, preserving per-stripe request
// order. Requests are visual footprints (tens to a few thousand keys) and sit
// on the serve hot path, so the grouping is a counting sort into one shared
// index arena: two passes, three allocations, independent of stripe count.
func (g *Graph) groupByStripe(keys []cell.Key) []stripeGroup {
	if len(g.stripes) == 1 {
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		return []stripeGroup{{s: g.stripes[0], idx: idx}}
	}
	// Pass 1: hash every key once, counting per-stripe populations.
	// maxStripes is 256, so a stripe index fits a byte.
	si := make([]uint8, len(keys))
	var counts [maxStripes]int32
	touched := 0
	for i, k := range keys {
		s := g.stripeIndex(k)
		si[i] = uint8(s)
		if counts[s] == 0 {
			touched++
		}
		counts[s]++
	}
	// Pass 2: carve one arena into per-stripe segments and scatter the key
	// indices, keeping request order within each stripe.
	arena := make([]int, len(keys))
	groups := make([]stripeGroup, 0, touched)
	var gi [maxStripes]int32 // stripe -> group position
	off := int32(0)
	for s := range counts {
		if counts[s] == 0 {
			continue
		}
		gi[s] = int32(len(groups))
		groups = append(groups, stripeGroup{
			s:   g.stripes[s],
			idx: arena[off : off : off+counts[s]],
		})
		off += counts[s]
	}
	for i := range keys {
		g := &groups[gi[si[i]]]
		g.idx = append(g.idx, i)
	}
	return groups
}

// Get serves a region request from the cache: it returns the summaries of
// every requested cell present (and fresh), and the list of missing keys the
// caller must fetch from the backing store. Found cells are touched; if
// dispersion is enabled, the lateral neighbors and parents of the requested
// region receive their freshness share (paper §V-C2).
//
// Get is the batched entry point (GetBatch is an alias): keys are grouped by
// stripe and each stripe lock is taken once per request, not once per key.
func (g *Graph) Get(keys []cell.Key) (query.Result, []cell.Key) {
	return g.GetBatch(keys)
}

// GetBatch is Get under its pipeline name: one stripe-lock acquisition per
// touched stripe for the whole key batch.
func (g *Graph) GetBatch(keys []cell.Key) (query.Result, []cell.Key) {
	// Pre-size for the all-hit steady state: this map becomes the node's
	// reply (and the coordinator recycles it after its columnar merge), so
	// incremental growth here is pure serve-path overhead.
	res := query.NewResultCap(len(keys))
	if len(keys) == 0 {
		return res, nil
	}
	tick := g.tick.Add(1)

	missed := make([]bool, len(keys)) // by key index, so missing keeps request order
	nMiss := 0
	for _, grp := range g.groupByStripe(keys) {
		g.lockStripe(grp.s)
		for _, i := range grp.idx {
			k := keys[i]
			c := grp.s.lookup(k)
			if c == nil || g.plm.IsStale(k) {
				if c != nil {
					// Stale cell: drop it so the refetch replaces it.
					g.removeLocked(grp.s, k)
				}
				missed[i] = true
				nMiss++
				continue
			}
			c.Touch(tick, g.cfg.FreshInc, g.decay)
			// Negative-cached (empty) cells count as hits but add nothing
			// to the result, matching the disk path's omission of dataless
			// bins.
			if !c.Summary.Empty() {
				res.Add(k, c.Summary)
			}
		}
		grp.s.mu.Unlock()
	}

	var missing []cell.Key
	if nMiss > 0 {
		missing = make([]cell.Key, 0, nMiss)
		for i, m := range missed {
			if m {
				missing = append(missing, keys[i])
			}
		}
	}

	if g.cfg.Disperse && len(keys) <= g.cfg.DisperseKeyLimit {
		g.disperse(tick, keys)
	}
	// One batched atomic add per counter per request, not one per key.
	g.hits.Add(int64(len(keys) - nMiss))
	g.misses.Add(int64(nMiss))
	g.om.hits.Add(int64(len(keys) - nMiss))
	g.om.misses.Add(int64(nMiss))
	g.charge(len(keys))
	return res, missing
}

// disperse grants the neighborhood of the requested region its freshness
// share. Only the region boundary matters: interior neighbors are themselves
// requested and already touched. The boost set is computed from pure key
// algebra with no locks held, then applied stripe by stripe.
func (g *Graph) disperse(tick int64, keys []cell.Key) {
	inc := g.cfg.FreshInc * g.cfg.DisperseFraction
	if inc <= 0 {
		return
	}
	requested := make(map[cell.Key]bool, len(keys))
	for _, k := range keys {
		requested[k] = true
	}
	boosted := map[cell.Key]bool{}
	var boost []cell.Key
	add := func(k cell.Key) {
		if requested[k] || boosted[k] {
			return
		}
		boosted[k] = true
		boost = append(boost, k)
	}
	for _, k := range keys {
		if ns, err := k.LateralNeighbors(); err == nil {
			for _, n := range ns {
				add(n)
			}
		}
		for _, p := range k.Parents() {
			add(p)
		}
	}
	if len(boost) == 0 {
		return
	}
	for _, grp := range g.groupByStripe(boost) {
		g.lockStripe(grp.s)
		for _, i := range grp.idx {
			if c := grp.s.lookup(boost[i]); c != nil {
				c.Disperse(tick, inc, g.decay)
			}
		}
		grp.s.mu.Unlock()
	}
}

// Peek returns a cell's summary without touching freshness or dispersing.
// ok is false if the cell is absent or stale.
func (g *Graph) Peek(k cell.Key) (cell.Summary, bool) {
	s := g.stripeFor(k)
	g.lockStripe(s)
	defer s.mu.Unlock()
	c := s.lookup(k)
	if c == nil || g.plm.IsStale(k) {
		return cell.Summary{}, false
	}
	return c.Summary, true
}

// Put inserts (or replaces) the cells of a fetch result, marking them fresh
// in the PLM, then evicts down to the safe limit if the capacity threshold
// was breached. This is the cache-population path measured by the paper's
// maintenance experiment (Fig. 6c). Cells are inserted stripe by stripe,
// one lock acquisition per touched stripe.
func (g *Graph) Put(res query.Result) {
	tick := g.tick.Add(1)
	if res.Len() > 0 {
		keys := make([]cell.Key, 0, res.Len())
		for k := range res.Cells {
			keys = append(keys, k)
		}
		for _, grp := range g.groupByStripe(keys) {
			g.lockStripe(grp.s)
			for _, i := range grp.idx {
				g.insertLocked(grp.s, keys[i], res.Cells[keys[i]], tick)
			}
			grp.s.mu.Unlock()
		}
	}
	g.maybeEvict()
	g.charge(res.Len())
}

// PutEmpty records that the backing store holds no data for the given keys,
// caching the negative result so repeated queries over sparse regions do not
// re-scan disk. The cells carry empty summaries.
func (g *Graph) PutEmpty(keys []cell.Key) {
	tick := g.tick.Add(1)
	for _, grp := range g.groupByStripe(keys) {
		g.lockStripe(grp.s)
		for _, i := range grp.idx {
			if grp.s.lookup(keys[i]) == nil {
				g.insertLocked(grp.s, keys[i], cell.NewSummary(), tick)
			}
		}
		grp.s.mu.Unlock()
	}
	g.maybeEvict()
	g.charge(len(keys))
}

// insertLocked inserts or replaces one cell. Callers hold s.mu; k hashes to s.
func (g *Graph) insertLocked(s *stripe, k cell.Key, sum cell.Summary, tick int64) {
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels {
		return
	}
	if s.levels[lvl] == nil {
		s.levels[lvl] = map[cell.Key]*cell.Cell{}
	}
	c, exists := s.levels[lvl][k]
	if !exists {
		c = cell.New(k)
		s.levels[lvl][k] = c
		s.size++
		g.size.Add(1)
		g.levelLen[lvl].Add(1)
		g.inserts.Add(1)
		g.om.inserts.Inc()
		g.om.cells.Add(1)
		g.gauges[s.idx].Add(1)
	}
	// The graph aliases the inserted summary: results and caches share
	// summaries under the immutable-by-convention rule (see query.Result).
	c.Summary = sum
	c.Touch(tick, g.cfg.FreshInc, g.decay)
	g.plm.MarkPresent(k)
}

// lookup finds a cell within one stripe. Callers hold s.mu.
func (s *stripe) lookup(k cell.Key) *cell.Cell {
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || s.levels[lvl] == nil {
		return nil
	}
	return s.levels[lvl][k]
}

// removeLocked removes one cell. Callers hold s.mu; k hashes to s.
func (g *Graph) removeLocked(s *stripe, k cell.Key) {
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || s.levels[lvl] == nil {
		return
	}
	if _, ok := s.levels[lvl][k]; ok {
		delete(s.levels[lvl], k)
		s.size--
		g.size.Add(-1)
		g.levelLen[lvl].Add(-1)
		g.om.cells.Add(-1)
		g.gauges[s.idx].Add(-1)
		g.plm.MarkAbsent(k)
	}
}

// Delete removes a cell outright (used when purging stale guest entries).
func (g *Graph) Delete(k cell.Key) {
	s := g.stripeFor(k)
	g.lockStripe(s)
	defer s.mu.Unlock()
	g.removeLocked(s, k)
}

// maybeEvict enforces the capacity threshold: if breached, cells are evicted
// in ascending freshness order until the graph is back at the safe limit
// (paper §V-C2: evict lowest freshness "till the capacity goes below a safe
// limit"). The pass is single-flight (concurrent writers that lose the CAS
// skip it; the winner drives size back down) and stripe-aware: victim
// scores are snapshotted one stripe at a time, ranked globally so the
// freshness ordering matches the single-lock graph exactly, then removed in
// per-stripe batches — at most two lock acquisitions per stripe per pass.
func (g *Graph) maybeEvict() {
	if g.size.Load() <= int64(g.cfg.Capacity) {
		return
	}
	if !g.evicting.CompareAndSwap(false, true) {
		return
	}
	defer g.evicting.Store(false)

	target := int64(float64(g.cfg.Capacity) * g.cfg.SafeFraction)
	need := g.size.Load() - target
	if need <= 0 {
		return
	}
	tick := g.tick.Load()
	type scored struct {
		key   cell.Key
		s     *stripe
		score float64
	}
	all := make([]scored, 0, g.size.Load())
	for _, s := range g.stripes {
		g.lockStripe(s)
		for lvl := range s.levels {
			for k, c := range s.levels[lvl] {
				all = append(all, scored{key: k, s: s, score: c.FreshnessAt(tick, g.decay)})
			}
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	if int64(len(all)) < need {
		need = int64(len(all))
	}
	victims := all[:need]

	// Group removals by stripe so each stripe lock is taken once.
	byStripe := map[*stripe][]cell.Key{}
	for _, v := range victims {
		byStripe[v.s] = append(byStripe[v.s], v.key)
	}
	evicted := int64(0)
	for s, ks := range byStripe {
		g.lockStripe(s)
		for _, k := range ks {
			if s.lookup(k) != nil {
				g.removeLocked(s, k)
				evicted++
			}
		}
		s.mu.Unlock()
	}
	g.evictions.Add(evicted)
	g.om.evictions.Add(evicted)
}

// Freshness returns a cell's current (decayed) freshness; ok is false if the
// cell is absent.
func (g *Graph) Freshness(k cell.Key) (float64, bool) {
	s := g.stripeFor(k)
	g.lockStripe(s)
	defer s.mu.Unlock()
	c := s.lookup(k)
	if c == nil {
		return 0, false
	}
	return c.FreshnessAt(g.tick.Load(), g.decay), true
}

// Keys returns every cached key at one level, in unspecified order.
func (g *Graph) Keys(level int) []cell.Key {
	if level < 0 || level >= cell.NumLevels {
		return nil
	}
	out := make([]cell.Key, 0, g.levelLen[level].Load())
	for _, s := range g.stripes {
		g.lockStripe(s)
		for k := range s.levels[level] {
			out = append(out, k)
		}
		s.mu.Unlock()
	}
	return out
}

// Snapshot extracts the summaries of the given keys (used for clique
// replication payloads); absent keys are skipped.
func (g *Graph) Snapshot(keys []cell.Key) query.Result {
	res := query.NewResult()
	for _, grp := range g.groupByStripe(keys) {
		g.lockStripe(grp.s)
		for _, i := range grp.idx {
			if c := grp.s.lookup(keys[i]); c != nil {
				res.Add(keys[i], c.Summary)
			}
		}
		grp.s.mu.Unlock()
	}
	return res
}

// ExtractPartitions removes and returns every resident cell that belongs to
// one of the moved partitions, for warm handoff during a membership change.
// A cell belongs to partition gh[:prefixLen]; only cells at least as fine as
// the partitioning prefix are extracted — such a cell's extent lies entirely
// inside one partition, so its summary is valid verbatim on the new owner.
// Coarser cells are a different story (see DropCoarsePartials) and are left
// untouched here. Negative-cache entries (empty summaries) are extracted too:
// on the new owner they keep sparse regions from re-scanning disk.
//
// Removal goes through the PLM (MarkAbsent), so the old owner honestly
// misses on these keys after the freeze lifts.
func (g *Graph) ExtractPartitions(prefixLen int, moved map[string]bool) query.Result {
	res := query.NewResult()
	if len(moved) == 0 {
		return res
	}
	for _, s := range g.stripes {
		g.lockStripe(s)
		for lvl := range s.levels {
			for k, c := range s.levels[lvl] {
				if len(k.Geohash) < prefixLen || !moved[k.Geohash[:prefixLen]] {
					continue
				}
				// A stale cell (invalidated by ingest, not yet lazily
				// evicted) is removed but never shipped: the new owner's PLM
				// would mark it fresh on insert, laundering stale data.
				if !g.plm.IsStale(k) {
					res.Add(k, c.Summary)
				}
				g.removeLocked(s, k)
			}
		}
		s.mu.Unlock()
	}
	return res
}

// DropCoarsePartials removes cached cells coarser than the partitioning
// prefix whose region extends into any of the given partitions. A coarse
// cell's summary is a per-node partial: it aggregates exactly the extending
// partitions this node owned when the cell was cached. After a membership
// change that set is different — the partial over-counts on a node that lost
// partitions and under-counts on one that gained them — so migrating it (or
// keeping it) would serve wrong answers. It must be dropped and rebuilt from
// the new ownership. Returns the number of cells dropped.
func (g *Graph) DropCoarsePartials(prefixLen int, changed map[string]bool) int {
	if len(changed) == 0 {
		return 0
	}
	extendsChanged := func(gh string) bool {
		for p := range changed {
			if len(p) >= len(gh) && p[:len(gh)] == gh {
				return true
			}
		}
		return false
	}
	dropped := 0
	for _, s := range g.stripes {
		g.lockStripe(s)
		for lvl := range s.levels {
			for k := range s.levels[lvl] {
				if len(k.Geohash) >= prefixLen || !extendsChanged(k.Geohash) {
					continue
				}
				g.removeLocked(s, k)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// DeriveFromChildren attempts to compute a missing cell's summary from
// cached finer-resolution cells instead of touching disk (paper §V-B: disk
// access is required only if the missing values "are not available by
// computing from the existing cached values"). The derivation needs a
// complete child cover: all 32 spatial children, or all temporal children,
// resident and fresh. On success the derived cell is inserted and returned;
// a parent whose children are all negative-cached empties derives to an
// empty summary (ok=true), mirroring how a disk scan of the same cell would
// find nothing.
func (g *Graph) DeriveFromChildren(k cell.Key) (cell.Summary, bool) {
	res, unresolved := g.DeriveBatch([]cell.Key{k})
	if len(unresolved) > 0 {
		return cell.Summary{}, false
	}
	return res.Cells[k], true
}

// deriveCandidate is one (parent, child-cover) derivation attempt.
type deriveCandidate struct {
	parent   int // index into the request's key slice
	children []cell.Key
}

// DeriveBatch attempts child-cover derivation for a batch of missing keys in
// three stripe-grouped stages: (1) plan candidate child covers from level
// occupancy and key algebra alone, with no locks held; (2) fetch every
// needed child summary, taking each stripe lock once for the whole batch;
// (3) merge covers per parent and batch-insert the derived cells. It
// returns the derived result plus the keys still unresolved, in request
// order. Derived cells are resident afterwards, exactly as with the
// single-key path.
func (g *Graph) DeriveBatch(keys []cell.Key) (query.Result, []cell.Key) {
	res := query.NewResult()
	if len(keys) == 0 {
		return res, nil
	}

	// Stage 1: plan. Check child-level occupancy from level arithmetic alone
	// before materializing any child keys: building temporal children parses
	// and formats timestamps, far too costly to do per cache miss.
	var cands []deriveCandidate
	for i, k := range keys {
		if len(k.Geohash) < cell.MaxSpatialPrecision {
			childLvl := int(k.Time.Res)*cell.MaxSpatialPrecision + len(k.Geohash)
			if g.levelLen[childLvl].Load() >= int64(geohash.BranchFactor) {
				if children, ok := k.SpatialChildren(); ok {
					cands = append(cands, deriveCandidate{parent: i, children: children})
				}
			}
		}
		if finer, ok := k.Time.Res.Finer(); ok {
			childLvl := int(finer)*cell.MaxSpatialPrecision + len(k.Geohash) - 1
			if g.levelLen[childLvl].Load() > 0 {
				if children, ok := k.TemporalChildren(); ok {
					cands = append(cands, deriveCandidate{parent: i, children: children})
				}
			}
		}
	}
	if len(cands) == 0 {
		return res, keys
	}

	// Stage 2: fetch. Union the child keys of every candidate and read their
	// summaries with one lock acquisition per stripe. Summaries are shared
	// by value under the immutable-by-convention rule, so reading them under
	// the stripe lock and merging after release is safe.
	var lookups []cell.Key
	seen := map[cell.Key]bool{}
	for _, c := range cands {
		for _, ck := range c.children {
			if !seen[ck] {
				seen[ck] = true
				lookups = append(lookups, ck)
			}
		}
	}
	got := make(map[cell.Key]cell.Summary, len(lookups))
	for _, grp := range g.groupByStripe(lookups) {
		g.lockStripe(grp.s)
		for _, i := range grp.idx {
			ck := lookups[i]
			if c := grp.s.lookup(ck); c != nil && !g.plm.IsStale(ck) {
				got[ck] = c.Summary
			}
		}
		grp.s.mu.Unlock()
	}

	// Stage 3: merge complete covers and batch-insert the derived cells.
	derived := map[cell.Key]cell.Summary{}
	for _, c := range cands {
		k := keys[c.parent]
		if _, done := derived[k]; done {
			continue // spatial cover already succeeded for this parent
		}
		sum := cell.NewSummary()
		ok := true
		for _, ck := range c.children {
			cs, present := got[ck]
			if !present {
				ok = false
				break
			}
			sum.Merge(cs)
		}
		if ok {
			derived[k] = sum
		}
	}
	if len(derived) > 0 {
		tick := g.tick.Add(1)
		ins := make([]cell.Key, 0, len(derived))
		for k := range derived {
			ins = append(ins, k)
		}
		for _, grp := range g.groupByStripe(ins) {
			g.lockStripe(grp.s)
			for _, i := range grp.idx {
				g.insertLocked(grp.s, ins[i], derived[ins[i]], tick)
			}
			grp.s.mu.Unlock()
		}
		for k, sum := range derived {
			// A parent derived from all-empty children is a legitimate
			// negative-cache entry (inserted above), but it must not appear
			// in the served result: the disk path omits dataless bins, and
			// GetBatch skips negative hits the same way.
			if !sum.Empty() {
				res.Add(k, sum)
			}
		}
		g.maybeEvict()
	}

	var unresolved []cell.Key
	for _, k := range keys {
		if _, ok := derived[k]; !ok {
			unresolved = append(unresolved, k)
		}
	}
	return res, unresolved
}

func (g *Graph) charge(cells int) {
	if g.cfg.Sleeper != nil {
		g.cfg.Sleeper.Apply(g.cfg.Model.MemCost(cells))
	}
}
