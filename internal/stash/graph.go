// Package stash implements the paper's primary contribution: the STASH
// graph, a distributed in-memory cache of hierarchically aggregated
// spatiotemporal cells (paper §IV, §V).
//
// One Graph instance is the per-node shard of the logical G_STASH =
// (V, {E_H, E_L}). Vertices (Cells) are stored in per-level hash maps — the
// paper's "map of distributed hash tables" — so locating a cell costs one
// local map lookup per level. Edges are never materialized: hierarchical and
// lateral relationships are derived from the cell-key algebra in package
// cell, the paper's "composable vertex discovery schemes".
//
// The Graph also carries the two policies the paper builds on top of the
// data structure: freshness-based cell replacement with neighborhood
// dispersion (§V-C) and the precision-level map (PLM) that tracks
// completeness against the backing store (§IV-D).
package stash

import (
	"sort"
	"sync"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/simnet"
)

// Config tunes a STASH graph shard. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// Capacity is the maximum number of cells held in memory (the paper's
	// configurable threshold on total Cells).
	Capacity int
	// SafeFraction is the fill level eviction drives the graph back to once
	// Capacity is breached (the paper's "safe limit").
	SafeFraction float64
	// FreshInc is f_inc: the freshness added to a cell on direct access.
	FreshInc float64
	// DisperseFraction is the share of FreshInc granted to the
	// spatiotemporal neighborhood of an accessed region.
	DisperseFraction float64
	// HalfLife is the freshness decay half-life in logical ticks (one tick
	// advances per graph operation batch).
	HalfLife int64
	// Disperse enables neighborhood freshness dispersion. Disabling it is
	// the abl-freshness ablation: replacement degenerates to per-cell
	// frequency/recency with no region awareness.
	Disperse bool
	// DisperseKeyLimit skips dispersion for requests larger than this many
	// cells. For perceptual-scale footprints the request already touches the
	// whole region of interest and its one-cell neighborhood shell is
	// negligible relative to it, so dispersing there buys nothing while the
	// neighbor algebra would dominate the request cost. Zero selects the
	// default.
	DisperseKeyLimit int
	// Model and Sleeper price the in-memory work (cell touches) so that
	// experiments account for STASH's own overhead (paper Fig. 6c). A nil
	// Sleeper disables cost accounting.
	Model   simnet.Model
	Sleeper simnet.Sleeper
	// Tier labels this shard's series in the process metric registry
	// (stash_cache_*_total{tier=...}). The cluster uses "local" for owner
	// shards and "guest" for replica shards; the front-end uses
	// "frontend". Empty defaults to "local".
	Tier string
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig() Config {
	return Config{
		Capacity:         200_000,
		SafeFraction:     0.90,
		FreshInc:         1.0,
		DisperseFraction: 0.25,
		HalfLife:         10_000,
		Disperse:         true,
		DisperseKeyLimit: 1024,
	}
}

// Stats are cumulative counters of one graph shard.
type Stats struct {
	Hits      int64 // cells served from memory
	Misses    int64 // cells requested but absent (or stale)
	Inserts   int64 // cells inserted
	Evictions int64 // cells evicted by replacement
}

// Graph is one node's shard of the STASH graph. It is safe for concurrent
// use.
type Graph struct {
	mu     sync.Mutex
	cfg    Config
	decay  cell.DecayFunc
	levels [cell.NumLevels]map[cell.Key]*cell.Cell
	size   int
	tick   int64
	plm    *PLM
	stats  Stats
	om     *tierMetrics // process-registry handles, resolved once per tier
}

// NewGraph returns an empty shard with the given configuration.
func NewGraph(cfg Config) *Graph {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultConfig().Capacity
	}
	if cfg.SafeFraction <= 0 || cfg.SafeFraction > 1 {
		cfg.SafeFraction = DefaultConfig().SafeFraction
	}
	if cfg.FreshInc <= 0 {
		cfg.FreshInc = DefaultConfig().FreshInc
	}
	if cfg.DisperseKeyLimit <= 0 {
		cfg.DisperseKeyLimit = DefaultConfig().DisperseKeyLimit
	}
	if cfg.Tier == "" {
		cfg.Tier = "local"
	}
	g := &Graph{cfg: cfg, decay: cell.ExpDecay(cfg.HalfLife), plm: NewPLM(),
		om: metricsForTier(cfg.Tier)}
	return g
}

// Len returns the number of cells currently cached.
func (g *Graph) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.size
}

// LevelLen returns the number of cells cached at one hierarchy level.
func (g *Graph) LevelLen(level int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if level < 0 || level >= cell.NumLevels {
		return 0
	}
	return len(g.levels[level])
}

// Stats returns a snapshot of the shard's counters.
func (g *Graph) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Tick returns the current logical time.
func (g *Graph) Tick() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tick
}

// PLM exposes the shard's precision-level map.
func (g *Graph) PLM() *PLM {
	return g.plm
}

// Get serves a region request from the cache: it returns the summaries of
// every requested cell present (and fresh), and the list of missing keys the
// caller must fetch from the backing store. Found cells are touched; if
// dispersion is enabled, the lateral neighbors and parents of the requested
// region receive their freshness share (paper §V-C2).
func (g *Graph) Get(keys []cell.Key) (query.Result, []cell.Key) {
	res := query.NewResult()
	if len(keys) == 0 {
		return res, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tick++

	requested := make(map[cell.Key]bool, len(keys))
	for _, k := range keys {
		requested[k] = true
	}

	var missing []cell.Key
	for _, k := range keys {
		c := g.lookup(k)
		if c == nil || g.plm.IsStale(k) {
			if c != nil {
				// Stale cell: drop it so the refetch replaces it.
				g.remove(k)
			}
			missing = append(missing, k)
			g.stats.Misses++
			continue
		}
		c.Touch(g.tick, g.cfg.FreshInc, g.decay)
		// Negative-cached (empty) cells count as hits but add nothing to
		// the result, matching the disk path's omission of dataless bins.
		if !c.Summary.Empty() {
			res.Add(k, c.Summary)
		}
		g.stats.Hits++
	}

	if g.cfg.Disperse && len(keys) <= g.cfg.DisperseKeyLimit {
		g.disperseLocked(keys, requested)
	}
	// One batched atomic add per counter per request, not one per key.
	g.om.hits.Add(int64(len(keys) - len(missing)))
	g.om.misses.Add(int64(len(missing)))
	g.charge(len(keys))
	return res, missing
}

// disperseLocked grants the neighborhood of the requested region its
// freshness share. Only the region boundary matters: interior neighbors are
// themselves requested and already touched.
func (g *Graph) disperseLocked(keys []cell.Key, requested map[cell.Key]bool) {
	inc := g.cfg.FreshInc * g.cfg.DisperseFraction
	if inc <= 0 {
		return
	}
	boosted := map[cell.Key]bool{}
	boost := func(k cell.Key) {
		if requested[k] || boosted[k] {
			return
		}
		boosted[k] = true
		if c := g.lookup(k); c != nil {
			c.Disperse(g.tick, inc, g.decay)
		}
	}
	for _, k := range keys {
		if ns, err := k.LateralNeighbors(); err == nil {
			for _, n := range ns {
				boost(n)
			}
		}
		for _, p := range k.Parents() {
			boost(p)
		}
	}
}

// Peek returns a cell's summary without touching freshness or dispersing.
// ok is false if the cell is absent or stale.
func (g *Graph) Peek(k cell.Key) (cell.Summary, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.lookup(k)
	if c == nil || g.plm.IsStale(k) {
		return cell.Summary{}, false
	}
	return c.Summary, true
}

// Put inserts (or replaces) the cells of a fetch result, marking them fresh
// in the PLM, then evicts down to the safe limit if the capacity threshold
// was breached. This is the cache-population path measured by the paper's
// maintenance experiment (Fig. 6c).
func (g *Graph) Put(res query.Result) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tick++
	for k, s := range res.Cells {
		g.insert(k, s)
	}
	g.evictLocked()
	g.charge(res.Len())
}

// PutEmpty records that the backing store holds no data for the given keys,
// caching the negative result so repeated queries over sparse regions do not
// re-scan disk. The cells carry empty summaries.
func (g *Graph) PutEmpty(keys []cell.Key) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tick++
	for _, k := range keys {
		if g.lookup(k) == nil {
			g.insert(k, cell.NewSummary())
		}
	}
	g.evictLocked()
	g.charge(len(keys))
}

func (g *Graph) insert(k cell.Key, s cell.Summary) {
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels {
		return
	}
	if g.levels[lvl] == nil {
		g.levels[lvl] = map[cell.Key]*cell.Cell{}
	}
	c, exists := g.levels[lvl][k]
	if !exists {
		c = cell.New(k)
		g.levels[lvl][k] = c
		g.size++
		g.stats.Inserts++
		g.om.inserts.Inc()
		g.om.cells.Add(1)
	}
	// The graph aliases the inserted summary: results and caches share
	// summaries under the immutable-by-convention rule (see query.Result).
	c.Summary = s
	c.Touch(g.tick, g.cfg.FreshInc, g.decay)
	g.plm.MarkPresent(k)
}

func (g *Graph) lookup(k cell.Key) *cell.Cell {
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || g.levels[lvl] == nil {
		return nil
	}
	return g.levels[lvl][k]
}

func (g *Graph) remove(k cell.Key) {
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || g.levels[lvl] == nil {
		return
	}
	if _, ok := g.levels[lvl][k]; ok {
		delete(g.levels[lvl], k)
		g.size--
		g.om.cells.Add(-1)
		g.plm.MarkAbsent(k)
	}
}

// Delete removes a cell outright (used when purging stale guest entries).
func (g *Graph) Delete(k cell.Key) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.remove(k)
}

// evictLocked enforces the capacity threshold: if breached, cells are evicted
// in ascending freshness order until the graph is back at the safe limit
// (paper §V-C2: evict lowest freshness "till the capacity goes below a safe
// limit").
func (g *Graph) evictLocked() {
	if g.size <= g.cfg.Capacity {
		return
	}
	target := int(float64(g.cfg.Capacity) * g.cfg.SafeFraction)
	type scored struct {
		key   cell.Key
		score float64
	}
	all := make([]scored, 0, g.size)
	for lvl := range g.levels {
		for k, c := range g.levels[lvl] {
			all = append(all, scored{key: k, score: c.FreshnessAt(g.tick, g.decay)})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	evicted := int64(0)
	for _, s := range all {
		if g.size <= target {
			break
		}
		g.remove(s.key)
		g.stats.Evictions++
		evicted++
	}
	g.om.evictions.Add(evicted)
}

// Freshness returns a cell's current (decayed) freshness; ok is false if the
// cell is absent.
func (g *Graph) Freshness(k cell.Key) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.lookup(k)
	if c == nil {
		return 0, false
	}
	return c.FreshnessAt(g.tick, g.decay), true
}

// Keys returns every cached key at one level, in unspecified order.
func (g *Graph) Keys(level int) []cell.Key {
	g.mu.Lock()
	defer g.mu.Unlock()
	if level < 0 || level >= cell.NumLevels {
		return nil
	}
	out := make([]cell.Key, 0, len(g.levels[level]))
	for k := range g.levels[level] {
		out = append(out, k)
	}
	return out
}

// Snapshot extracts the summaries of the given keys (used for clique
// replication payloads); absent keys are skipped.
func (g *Graph) Snapshot(keys []cell.Key) query.Result {
	g.mu.Lock()
	defer g.mu.Unlock()
	res := query.NewResult()
	for _, k := range keys {
		if c := g.lookup(k); c != nil {
			res.Add(k, c.Summary)
		}
	}
	return res
}

// DeriveFromChildren attempts to compute a missing cell's summary from
// cached finer-resolution cells instead of touching disk (paper §V-B: disk
// access is required only if the missing values "are not available by
// computing from the existing cached values"). The derivation needs a
// complete child cover: all 32 spatial children, or all temporal children,
// resident and fresh. On success the derived cell is inserted and returned.
func (g *Graph) DeriveFromChildren(k cell.Key) (cell.Summary, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()

	try := func(children []cell.Key) (cell.Summary, bool) {
		sum := cell.NewSummary()
		for _, ck := range children {
			c := g.lookup(ck)
			if c == nil || g.plm.IsStale(ck) {
				return cell.Summary{}, false
			}
			sum.Merge(c.Summary)
		}
		return sum, true
	}

	// Check child-level occupancy from level arithmetic alone before
	// materializing any child keys: building temporal children parses and
	// formats timestamps, far too costly to do per cache miss.
	if len(k.Geohash) < cell.MaxSpatialPrecision {
		childLvl := int(k.Time.Res)*cell.MaxSpatialPrecision + len(k.Geohash)
		if len(g.levels[childLvl]) >= geohash.BranchFactor {
			if children, ok := k.SpatialChildren(); ok {
				if sum, ok := try(children); ok {
					g.insert(k, sum)
					return sum, true
				}
			}
		}
	}
	if finer, ok := k.Time.Res.Finer(); ok {
		childLvl := int(finer)*cell.MaxSpatialPrecision + len(k.Geohash) - 1
		if len(g.levels[childLvl]) > 0 {
			if children, ok := k.TemporalChildren(); ok {
				if sum, ok := try(children); ok {
					g.insert(k, sum)
					return sum, true
				}
			}
		}
	}
	return cell.Summary{}, false
}

func (g *Graph) charge(cells int) {
	if g.cfg.Sleeper != nil {
		g.cfg.Sleeper.Apply(g.cfg.Model.MemCost(cells))
	}
}
