package stash

import (
	"testing"

	"stash/internal/cell"
)

// buildHierarchy caches a root cell, its 32 spatial children, and the 32
// children of one child, returning the root key.
func buildHierarchy(g *Graph) cell.Key {
	root := k("9q8")
	res := resultWith(root)
	children, _ := root.SpatialChildren()
	for _, c := range children {
		res.Add(c, summaryWith(1))
	}
	grand, _ := children[0].SpatialChildren()
	for _, gc := range grand {
		res.Add(gc, summaryWith(2))
	}
	g.Put(res)
	return root
}

func TestCliqueAtDepths(t *testing.T) {
	g := newTestGraph()
	root := buildHierarchy(g)

	c0 := g.CliqueAt(root, 0)
	if c0.Size() != 1 {
		t.Errorf("depth-0 clique size = %d, want 1 (root only)", c0.Size())
	}
	c1 := g.CliqueAt(root, 1)
	if c1.Size() != 33 {
		t.Errorf("depth-1 clique size = %d, want 33", c1.Size())
	}
	c2 := g.CliqueAt(root, 2)
	if c2.Size() != 65 {
		t.Errorf("depth-2 clique size = %d, want 65 (root+32+32)", c2.Size())
	}
	if c2.Root != root {
		t.Errorf("clique root = %v", c2.Root)
	}
	if c2.Freshness <= c1.Freshness {
		t.Error("deeper clique must accumulate at least as much freshness")
	}
}

func TestCliqueAtAbsentRoot(t *testing.T) {
	g := newTestGraph()
	c := g.CliqueAt(k("zzz"), 2)
	if c.Size() != 0 {
		t.Errorf("clique at absent root has %d members", c.Size())
	}
}

func TestCliqueOnlyIncludesResidentCells(t *testing.T) {
	g := newTestGraph()
	root := k("9q8")
	children, _ := root.SpatialChildren()
	// Cache root and only 3 children.
	res := resultWith(root, children[0], children[1], children[2])
	g.Put(res)
	c := g.CliqueAt(root, 1)
	if c.Size() != 4 {
		t.Errorf("clique size = %d, want 4 (resident cells only)", c.Size())
	}
}

func TestTopCliquesRanksByFreshness(t *testing.T) {
	g := newTestGraph()
	hot := k("9q8")
	cold := k("u4p")
	g.Put(resultWith(hot, cold))
	for i := 0; i < 10; i++ {
		g.Get([]cell.Key{hot})
	}
	cliques := g.TopCliques(1, 100)
	if len(cliques) < 2 {
		t.Fatalf("cliques = %d, want >= 2", len(cliques))
	}
	if cliques[0].Root != hot {
		t.Errorf("hottest clique root = %v, want %v", cliques[0].Root, hot)
	}
	if cliques[0].Freshness <= cliques[1].Freshness {
		t.Error("cliques not sorted by freshness")
	}
}

func TestTopCliquesRespectsBudget(t *testing.T) {
	g := newTestGraph()
	buildHierarchy(g) // 65-cell hierarchy under 9q8
	g.Put(resultWith(k("u4p")))
	g.Get([]cell.Key{k("u4p")})

	cliques := g.TopCliques(2, 10)
	total := 0
	for _, c := range cliques {
		total += c.Size()
	}
	if total > 10 {
		t.Errorf("clique budget exceeded: %d cells > 10", total)
	}
	if len(cliques) == 0 {
		t.Error("no cliques fit a budget of 10")
	}
	if got := g.TopCliques(2, 0); got != nil {
		t.Error("zero budget should yield no cliques")
	}
}

func TestTopCliquesSkipsCoveredRoots(t *testing.T) {
	g := newTestGraph()
	buildHierarchy(g)
	// With the parent resident, children must not found their own cliques.
	cliques := g.TopCliques(2, 1000)
	for _, c := range cliques {
		if c.Root.Geohash != "9q8" && len(c.Root.Geohash) > 3 {
			if parent, ok := spatialParentKey(c.Root); ok {
				if _, present := g.Peek(parent); present {
					t.Errorf("clique root %v has resident parent", c.Root)
				}
			}
		}
	}
}

func TestTopCliquesDisjoint(t *testing.T) {
	g := newTestGraph()
	buildHierarchy(g)
	g.Put(resultWith(k("u4p"), k("dr5")))
	g.Get([]cell.Key{k("u4p"), k("dr5")})
	seen := map[cell.Key]bool{}
	for _, c := range g.TopCliques(2, 1000) {
		for _, key := range c.Keys {
			if seen[key] {
				t.Fatalf("cell %v appears in two cliques", key)
			}
			seen[key] = true
		}
	}
}

func TestTopCliquesEmptyGraph(t *testing.T) {
	g := newTestGraph()
	if got := g.TopCliques(2, 100); len(got) != 0 {
		t.Errorf("empty graph yielded cliques: %v", got)
	}
}
