package stash

import (
	"strings"
	"sync"
	"sync/atomic"

	"stash/internal/cell"
	"stash/internal/temporal"
)

// BlockRef names a backing-store block — a geohash partition prefix plus a
// day — without tying the cache to a particular storage engine. It matches
// galileo.BlockID structurally but keeps STASH storage-agnostic, as the
// paper requires of the middleware.
type BlockRef struct {
	Prefix string
	Day    temporal.Label
}

// PLM is the precision-level map (paper §IV-D): a memory-resident bitmap
// that associates the cells held in memory at each level with the backing
// data blocks, and tracks which blocks have been invalidated by updates so
// stale summaries are recomputed on next access.
//
// Staleness is epoch-based: marking a block stale stamps it with the current
// epoch, and a cell is stale only if it became resident BEFORE an
// overlapping block's invalidation. A cell recomputed after the update is
// therefore immediately current, while the block record keeps invalidating
// other, not-yet-recomputed cells.
//
// The zero value is not ready; use NewPLM. PLM is safe for concurrent use.
type PLM struct {
	mu      sync.Mutex
	epoch   int64
	present [cell.NumLevels]map[cell.Key]int64
	stale   map[BlockRef]int64
	// staleN mirrors len(stale) atomically so the hot read path (IsStale on
	// every cache hit, called under a graph stripe lock) skips the PLM mutex
	// entirely whenever no invalidation is outstanding — the overwhelmingly
	// common case.
	staleN atomic.Int64
}

// NewPLM returns an empty precision-level map.
func NewPLM() *PLM {
	return &PLM{stale: map[BlockRef]int64{}}
}

// MarkPresent records that a cell is resident in memory and current as of
// now.
func (p *PLM) MarkPresent(k cell.Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels {
		return
	}
	if p.present[lvl] == nil {
		p.present[lvl] = map[cell.Key]int64{}
	}
	p.epoch++
	p.present[lvl][k] = p.epoch
}

// MarkAbsent records that a cell left memory.
func (p *PLM) MarkAbsent(k cell.Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || p.present[lvl] == nil {
		return
	}
	delete(p.present[lvl], k)
}

// Present reports whether a cell is resident (regardless of staleness).
func (p *PLM) Present(k cell.Key) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || p.present[lvl] == nil {
		return false
	}
	_, ok := p.present[lvl][k]
	return ok
}

// Missing filters the given footprint to the keys not resident (or resident
// but stale) — the PLM's core job: identifying precisely which chunks a
// query evaluation still needs from the backing store.
func (p *PLM) Missing(keys []cell.Key) []cell.Key {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []cell.Key
	for _, k := range keys {
		lvl := k.Level()
		if lvl < 0 || lvl >= cell.NumLevels || p.present[lvl] == nil {
			out = append(out, k)
			continue
		}
		epoch, ok := p.present[lvl][k]
		if !ok || p.isStaleLocked(k, epoch) {
			out = append(out, k)
		}
	}
	return out
}

// Completeness returns the fraction of the given footprint resident and
// fresh in memory, in [0,1]. An empty footprint is complete.
func (p *PLM) Completeness(keys []cell.Key) float64 {
	if len(keys) == 0 {
		return 1
	}
	missing := len(p.Missing(keys))
	return float64(len(keys)-missing) / float64(len(keys))
}

// MarkStale records that a backing block changed: every cell resident
// *before this call* whose bounds draw on the block must be recomputed
// before it is served again (paper: "the PLM can be adjusted during an
// update ... so that stale data summaries are recomputed in case of future
// access").
func (p *PLM) MarkStale(b BlockRef) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	if _, exists := p.stale[b]; !exists {
		p.staleN.Add(1)
	}
	p.stale[b] = p.epoch
}

// ClearStale drops a block's invalidation record (e.g. once every affected
// consumer has recomputed, or after a retention period).
func (p *PLM) ClearStale(b BlockRef) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.stale[b]; exists {
		p.staleN.Add(-1)
	}
	delete(p.stale, b)
}

// StaleCount returns the number of currently invalidated blocks.
func (p *PLM) StaleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stale)
}

// IsStale reports whether the cell is resident but invalidated by a later
// block update. Non-resident cells are not stale (they are just absent).
// With no outstanding invalidations the check is a single atomic load.
func (p *PLM) IsStale(k cell.Key) bool {
	if p.staleN.Load() == 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	lvl := k.Level()
	if lvl < 0 || lvl >= cell.NumLevels || p.present[lvl] == nil {
		return false
	}
	epoch, ok := p.present[lvl][k]
	if !ok {
		return false
	}
	return p.isStaleLocked(k, epoch)
}

// isStaleLocked reports whether any invalidation newer than cellEpoch
// overlaps the cell. Callers hold p.mu.
func (p *PLM) isStaleLocked(k cell.Key, cellEpoch int64) bool {
	if len(p.stale) == 0 {
		return false
	}
	ks, err := k.Time.Start()
	if err != nil {
		return false
	}
	ke, _ := k.Time.End()
	for b, blockEpoch := range p.stale {
		if blockEpoch <= cellEpoch {
			continue
		}
		// Spatial overlap: one geohash must prefix the other.
		if !strings.HasPrefix(b.Prefix, k.Geohash) && !strings.HasPrefix(k.Geohash, b.Prefix) {
			continue
		}
		bs, err := b.Day.Start()
		if err != nil {
			continue
		}
		be, _ := b.Day.End()
		if bs.Before(ke) && ks.Before(be) {
			return true
		}
	}
	return false
}
