package stash

import (
	"testing"

	"stash/internal/cell"
)

func TestExtractPartitionsMovesOnlyMatchingFineCells(t *testing.T) {
	g := newTestGraph()
	moved := k("9q80") // fine, in moved partition "9q"
	stays := k("dr50") // fine, partition "dr"
	coarse := k("9")   // coarser than the prefix; never extracted
	exact := k("9q")   // exactly prefix-length: single-partition, extracted
	g.Put(resultWith(moved, stays, coarse, exact))

	res := g.ExtractPartitions(2, map[string]bool{"9q": true})
	if _, ok := res.Cells[moved]; !ok {
		t.Error("fine cell in moved partition not extracted")
	}
	if _, ok := res.Cells[exact]; !ok {
		t.Error("prefix-length cell in moved partition not extracted")
	}
	if _, ok := res.Cells[stays]; ok {
		t.Error("cell outside moved partitions extracted")
	}
	if _, ok := res.Cells[coarse]; ok {
		t.Error("coarse cell extracted; it is a per-node partial")
	}

	// Extracted cells are gone from the shard — the old owner misses
	// honestly; untouched cells still hit.
	found, missing := g.Get([]cell.Key{moved, exact, stays, coarse})
	if len(missing) != 2 || found.Len() != 2 {
		t.Fatalf("post-extract: found=%d missing=%d, want 2/2", found.Len(), len(missing))
	}
	if !g.PLM().Present(stays) || g.PLM().Present(moved) {
		t.Error("PLM presence not maintained by extraction")
	}
}

func TestExtractPartitionsSkipsStaleCells(t *testing.T) {
	// A cell invalidated by an ingest must not be shipped: inserting it on
	// the new owner would re-mark it fresh, laundering stale data. It is
	// still removed from the old owner.
	g := newTestGraph()
	fresh := k("9q80")
	g.Put(resultWith(fresh))
	g.PLM().MarkStale(BlockRef{Prefix: "9q80", Day: day})

	res := g.ExtractPartitions(2, map[string]bool{"9q": true})
	if res.Len() != 0 {
		t.Fatalf("stale cell shipped: %d cells", res.Len())
	}
	if g.PLM().Present(fresh) {
		t.Error("stale cell still resident after extraction")
	}
}

func TestExtractPartitionsShipsNegativeCache(t *testing.T) {
	// Empty summaries (negative cache) migrate too: on the new owner they
	// keep sparse regions from re-scanning disk.
	g := newTestGraph()
	empty := k("9q80")
	r := resultWith()
	r.Add(empty, cell.NewSummary())
	g.Put(r)

	res := g.ExtractPartitions(2, map[string]bool{"9q": true})
	s, ok := res.Cells[empty]
	if !ok {
		t.Fatal("negative-cache entry not extracted")
	}
	if !s.Empty() {
		t.Fatal("negative-cache entry extracted non-empty")
	}
}

func TestDropCoarsePartialsDropsOnlyExtendingCells(t *testing.T) {
	g := newTestGraph()
	over := k("9")   // coarse, extends into changed partition "9q"
	other := k("d")  // coarse, no changed partition below it
	fine := k("9q8") // finer than prefix; DropCoarsePartials never touches
	g.Put(resultWith(over, other, fine))

	dropped := g.DropCoarsePartials(2, map[string]bool{"9q": true})
	if dropped != 1 {
		t.Fatalf("dropped %d coarse cells, want 1", dropped)
	}
	found, missing := g.Get([]cell.Key{over, other, fine})
	if len(missing) != 1 || missing[0] != over {
		t.Fatalf("post-drop: missing=%v, want only %v", missing, over)
	}
	if found.Len() != 2 {
		t.Fatalf("post-drop: found=%d, want 2", found.Len())
	}
}

func TestDropCoarsePartialsEmptyChangeSet(t *testing.T) {
	g := newTestGraph()
	g.Put(resultWith(k("9")))
	if n := g.DropCoarsePartials(2, nil); n != 0 {
		t.Fatalf("dropped %d with empty change set", n)
	}
}
