package stash

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"stash/internal/cell"
	"stash/internal/query"
	"stash/internal/simnet"
	"stash/internal/temporal"
)

var day = temporal.MustParse("2015-02-02", temporal.Day)

func k(gh string) cell.Key { return cell.Key{Geohash: gh, Time: day} }

func summaryWith(v float64) cell.Summary {
	s := cell.NewSummary()
	s.Observe("temperature", v)
	return s
}

func resultWith(keys ...cell.Key) query.Result {
	r := query.NewResult()
	for i, key := range keys {
		r.Add(key, summaryWith(float64(i)))
	}
	return r
}

func newTestGraph() *Graph {
	cfg := DefaultConfig()
	cfg.Capacity = 1000
	return NewGraph(cfg)
}

func TestGetMissThenHit(t *testing.T) {
	g := newTestGraph()
	keys := []cell.Key{k("9q8"), k("9q9")}

	found, missing := g.Get(keys)
	if found.Len() != 0 || len(missing) != 2 {
		t.Fatalf("cold get: found=%d missing=%d", found.Len(), len(missing))
	}

	g.Put(resultWith(keys...))
	found, missing = g.Get(keys)
	if found.Len() != 2 || len(missing) != 0 {
		t.Fatalf("warm get: found=%d missing=%d", found.Len(), len(missing))
	}
	st := g.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Inserts != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetPartial(t *testing.T) {
	g := newTestGraph()
	g.Put(resultWith(k("9q8")))
	found, missing := g.Get([]cell.Key{k("9q8"), k("9q9"), k("9qb")})
	if found.Len() != 1 {
		t.Errorf("found = %d, want 1", found.Len())
	}
	if len(missing) != 2 {
		t.Errorf("missing = %v, want 2 keys", missing)
	}
}

func TestGetEmpty(t *testing.T) {
	g := newTestGraph()
	found, missing := g.Get(nil)
	if found.Len() != 0 || missing != nil {
		t.Error("empty get should be a no-op")
	}
}

func TestPutReplacesSummary(t *testing.T) {
	g := newTestGraph()
	key := k("9q8")
	g.Put(resultWith(key))

	r := query.NewResult()
	r.Add(key, summaryWith(99))
	g.Put(r)

	found, _ := g.Get([]cell.Key{key})
	if got := found.Cells[key].Stats["temperature"].Max; got != 99 {
		t.Errorf("summary not replaced: max = %v", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d after re-put", g.Len())
	}
}

func TestPutEmptyCachesNegativeResult(t *testing.T) {
	g := newTestGraph()
	keys := []cell.Key{k("9q8"), k("9q9")}
	g.PutEmpty(keys)
	found, missing := g.Get(keys)
	if len(missing) != 0 {
		t.Fatalf("negative-cached keys still missing: %v", missing)
	}
	for _, key := range keys {
		if !found.Cells[key].Empty() {
			t.Errorf("negative cell %v should be empty", key)
		}
	}
	// PutEmpty must not clobber a real summary.
	g.Put(resultWith(k("9qb")))
	g.PutEmpty([]cell.Key{k("9qb")})
	s, ok := g.Peek(k("9qb"))
	if !ok || s.Empty() {
		t.Error("PutEmpty overwrote a populated cell")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	g := newTestGraph()
	key := k("9q8")
	g.Put(resultWith(key))
	f0, _ := g.Freshness(key)
	if _, ok := g.Peek(key); !ok {
		t.Fatal("peek missed")
	}
	f1, _ := g.Freshness(key)
	if f1 > f0 {
		t.Error("peek increased freshness")
	}
	if _, ok := g.Peek(k("zzz")); ok {
		t.Error("peek found absent key")
	}
}

func TestLevelSeparation(t *testing.T) {
	g := newTestGraph()
	coarse := cell.Key{Geohash: "9q", Time: day}
	fine := cell.Key{Geohash: "9q8", Time: day}
	g.Put(resultWith(coarse, fine))
	if g.LevelLen(coarse.Level()) != 1 || g.LevelLen(fine.Level()) != 1 {
		t.Errorf("level lens: %d %d", g.LevelLen(coarse.Level()), g.LevelLen(fine.Level()))
	}
	if g.LevelLen(-1) != 0 || g.LevelLen(cell.NumLevels) != 0 {
		t.Error("out-of-range level should be empty")
	}
	ks := g.Keys(fine.Level())
	if len(ks) != 1 || ks[0] != fine {
		t.Errorf("Keys(level) = %v", ks)
	}
}

func TestFreshnessGrowsWithAccess(t *testing.T) {
	g := newTestGraph()
	a, b := k("9q8"), k("9q9")
	g.Put(resultWith(a, b))
	for i := 0; i < 5; i++ {
		g.Get([]cell.Key{a})
	}
	fa, _ := g.Freshness(a)
	fb, _ := g.Freshness(b)
	if fa <= fb {
		t.Errorf("hot cell freshness %v should exceed cold cell %v", fa, fb)
	}
	if _, ok := g.Freshness(k("zzz")); ok {
		t.Error("freshness of absent key reported")
	}
}

// TestDispersionProtectsNeighborhood is the core §V-C property: accessing a
// region boosts its resident neighbors, so eviction spares the neighborhood.
func TestDispersionProtectsNeighborhood(t *testing.T) {
	g := newTestGraph()
	center := k("9q8y7")
	neighbors, err := center.SpatialNeighbors()
	if err != nil {
		t.Fatal(err)
	}
	far := k("u4pru")
	g.Put(resultWith(append(neighbors, center, far)...))

	f0, _ := g.Freshness(neighbors[0])
	fFar0, _ := g.Freshness(far)
	g.Get([]cell.Key{center})
	f1, _ := g.Freshness(neighbors[0])
	fFar1, _ := g.Freshness(far)

	if f1 <= f0 {
		t.Errorf("neighbor freshness did not increase: %v -> %v", f0, f1)
	}
	if fFar1 > fFar0 {
		t.Errorf("distant cell freshness increased: %v -> %v", fFar0, fFar1)
	}
}

func TestDispersionDisabledAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 1000
	cfg.Disperse = false
	g := NewGraph(cfg)
	center := k("9q8y7")
	neighbors, _ := center.SpatialNeighbors()
	g.Put(resultWith(append(neighbors, center)...))
	f0, _ := g.Freshness(neighbors[0])
	g.Get([]cell.Key{center})
	f1, _ := g.Freshness(neighbors[0])
	if f1 > f0 {
		t.Error("dispersion happened with Disperse=false")
	}
}

func TestDispersionBoostsParents(t *testing.T) {
	g := newTestGraph()
	child := k("9q8y7")
	parent := k("9q8y")
	g.Put(resultWith(child, parent))
	p0, _ := g.Freshness(parent)
	g.Get([]cell.Key{child})
	p1, _ := g.Freshness(parent)
	if p1 <= p0 {
		t.Errorf("parent freshness did not increase: %v -> %v", p0, p1)
	}
}

func TestEvictionKeepsFreshCells(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 100
	cfg.SafeFraction = 0.5
	cfg.Disperse = false
	cfg.HalfLife = 0 // no decay; freshness = pure access count
	g := NewGraph(cfg)

	// Fill to capacity with cold cells, then heat a handful.
	var cold []cell.Key
	for i := 0; i < 100; i++ {
		cold = append(cold, k(fmt.Sprintf("%s%s%s",
			string("0123456789bcdefghjkmnpqrstuvwxyz"[i%32]),
			string("0123456789bcdefghjkmnpqrstuvwxyz"[(i/32)%32]), "0")))
	}
	g.Put(resultWith(cold...))
	hot := cold[:5]
	for i := 0; i < 10; i++ {
		g.Get(hot)
	}

	// Overflow the capacity to trigger eviction.
	overflow := resultWith(k("zzz"), k("zzy"))
	g.Put(overflow)

	if g.Len() > 52 {
		t.Errorf("eviction did not reach safe limit: len=%d", g.Len())
	}
	for _, h := range hot {
		if _, ok := g.Peek(h); !ok {
			t.Errorf("hot cell %v evicted while cold cells remained", h)
		}
	}
	if g.Stats().Evictions == 0 {
		t.Error("no evictions recorded")
	}
}

// TestEvictionKeepsRegionsUnderDispersion encodes §V-C2's goal: with
// dispersion on, a heavily accessed region's *neighborhood* survives
// eviction even though the neighborhood itself was never queried.
func TestEvictionKeepsRegionsUnderDispersion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 50
	cfg.SafeFraction = 0.6
	cfg.HalfLife = 0
	g := NewGraph(cfg)

	center := k("9q8y7")
	ring, _ := center.SpatialNeighbors()
	region := append([]cell.Key{center}, ring...)

	var filler []cell.Key
	for i := 0; i < 41; i++ {
		filler = append(filler, k(fmt.Sprintf("u4%s%s",
			string("0123456789bcdefghjkmnpqrstuvwxyz"[i%32]),
			string("0123456789bcdefghjkmnpqrstuvwxyz"[(i/32)%32]))))
	}
	g.Put(resultWith(append(region, filler...)...))

	// Hammer only the center; dispersion should shield the ring.
	for i := 0; i < 20; i++ {
		g.Get([]cell.Key{center})
	}
	g.Put(resultWith(k("zzz"))) // trigger eviction

	kept := 0
	for _, r := range ring {
		if _, ok := g.Peek(r); ok {
			kept++
		}
	}
	if kept < len(ring) {
		t.Errorf("only %d/%d ring cells survived eviction; dispersion should protect the region", kept, len(ring))
	}
}

func TestDeleteRemoves(t *testing.T) {
	g := newTestGraph()
	key := k("9q8")
	g.Put(resultWith(key))
	g.Delete(key)
	if _, ok := g.Peek(key); ok {
		t.Error("deleted key still present")
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d", g.Len())
	}
	g.Delete(key) // deleting absent key must not panic or underflow
	if g.Len() != 0 {
		t.Error("double delete corrupted size")
	}
}

func TestSnapshot(t *testing.T) {
	g := newTestGraph()
	a, b := k("9q8"), k("9q9")
	g.Put(resultWith(a, b))
	snap := g.Snapshot([]cell.Key{a, k("absent0")})
	if snap.Len() != 1 {
		t.Errorf("snapshot len = %d", snap.Len())
	}
	if _, ok := snap.Cells[a]; !ok {
		t.Error("snapshot missing requested present key")
	}
}

func TestStaleCellRefetched(t *testing.T) {
	g := newTestGraph()
	key := k("9q8")
	g.Put(resultWith(key))
	g.PLM().MarkStale(BlockRef{Prefix: "9q", Day: day})

	found, missing := g.Get([]cell.Key{key})
	if found.Len() != 0 || len(missing) != 1 {
		t.Fatalf("stale cell served from cache: found=%d missing=%d", found.Len(), len(missing))
	}
	// Re-put simulates the refetch; once the block invalidation is cleared
	// the cell serves again.
	g.PLM().ClearStale(BlockRef{Prefix: "9q", Day: day})
	g.Put(resultWith(key))
	found, missing = g.Get([]cell.Key{key})
	if found.Len() != 1 || len(missing) != 0 {
		t.Error("refetched cell not served")
	}
}

func TestChargeAccountsMemoryCost(t *testing.T) {
	meter := simnet.NewMeter()
	cfg := DefaultConfig()
	cfg.Model = simnet.Default()
	cfg.Sleeper = meter
	g := NewGraph(cfg)
	g.Put(resultWith(k("9q8")))
	if meter.Elapsed() == 0 {
		t.Error("no memory cost charged on put")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	g := NewGraph(Config{})
	if g.cfg.Capacity != DefaultConfig().Capacity {
		t.Error("zero capacity not defaulted")
	}
	if g.cfg.SafeFraction != DefaultConfig().SafeFraction {
		t.Error("zero safe fraction not defaulted")
	}
	if g.cfg.FreshInc != DefaultConfig().FreshInc {
		t.Error("zero fresh inc not defaulted")
	}
	g2 := NewGraph(Config{SafeFraction: 1.5})
	if g2.cfg.SafeFraction > 1 {
		t.Error("over-1 safe fraction accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	g := newTestGraph()
	keys := make([]cell.Key, 64)
	for i := range keys {
		keys[i] = k(fmt.Sprintf("9q%s", string("0123456789bcdefghjkmnpqrstuvwxyz"[i%32])))
	}
	g.Put(resultWith(keys...))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					g.Get(keys[w*4 : w*4+4])
				case 1:
					g.Put(resultWith(keys[(w*7+i)%64]))
				case 2:
					g.Peek(keys[(w*3+i)%64])
				}
			}
		}(w)
	}
	wg.Wait()
	if g.Len() == 0 {
		t.Error("graph emptied under concurrent access")
	}
}

func TestTickAdvances(t *testing.T) {
	g := newTestGraph()
	t0 := g.Tick()
	g.Get([]cell.Key{k("9q8")})
	g.Put(resultWith(k("9q8")))
	if g.Tick() != t0+2 {
		t.Errorf("tick advanced by %d, want 2", g.Tick()-t0)
	}
}

func BenchmarkGetWarm(b *testing.B) {
	g := newTestGraph()
	keys := make([]cell.Key, 100)
	for i := range keys {
		keys[i] = k(fmt.Sprintf("9q%s%s",
			string("0123456789bcdefghjkmnpqrstuvwxyz"[i%32]),
			string("0123456789bcdefghjkmnpqrstuvwxyz"[(i/32)%32])))
	}
	g.Put(resultWith(keys...))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Get(keys)
	}
}

func BenchmarkPut(b *testing.B) {
	cfg := DefaultConfig()
	g := NewGraph(cfg)
	res := resultWith(k("9q8"), k("9q9"), k("9qb"), k("9qc"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Put(res)
	}
}

func TestDeriveFromSpatialChildren(t *testing.T) {
	g := newTestGraph()
	parent := k("9q8")
	children, _ := parent.SpatialChildren()
	res := query.NewResult()
	for i, c := range children {
		res.Add(c, summaryWith(float64(i)))
	}
	g.Put(res)

	sum, ok := g.DeriveFromChildren(parent)
	if !ok {
		t.Fatal("derivation failed with full child cover")
	}
	if got := sum.Count("temperature"); got != 32 {
		t.Errorf("derived count = %d, want 32", got)
	}
	if st := sum.Stats["temperature"]; st.Min != 0 || st.Max != 31 {
		t.Errorf("derived stat = %+v", st)
	}
	// Derived cell must now be resident.
	if _, present := g.Peek(parent); !present {
		t.Error("derived cell not inserted")
	}
}

func TestDeriveFailsWithIncompleteCover(t *testing.T) {
	g := newTestGraph()
	parent := k("9q8")
	children, _ := parent.SpatialChildren()
	res := query.NewResult()
	for _, c := range children[:31] { // one child missing
		res.Add(c, summaryWith(1))
	}
	g.Put(res)
	if _, ok := g.DeriveFromChildren(parent); ok {
		t.Error("derivation succeeded with incomplete child cover")
	}
}

func TestDeriveFromTemporalChildren(t *testing.T) {
	g := newTestGraph()
	parent := cell.Key{Geohash: "9q8", Time: temporal.MustParse("2015-02-02", temporal.Day)}
	children, _ := parent.TemporalChildren()
	res := query.NewResult()
	for _, c := range children {
		res.Add(c, summaryWith(3))
	}
	g.Put(res)
	sum, ok := g.DeriveFromChildren(parent)
	if !ok {
		t.Fatal("temporal derivation failed")
	}
	if got := sum.Count("temperature"); got != 24 {
		t.Errorf("derived count = %d, want 24 (hours)", got)
	}
}

func TestDeriveFailsWithStaleChild(t *testing.T) {
	g := newTestGraph()
	parent := k("9q8")
	children, _ := parent.SpatialChildren()
	res := query.NewResult()
	for _, c := range children {
		res.Add(c, summaryWith(1))
	}
	g.Put(res)
	g.PLM().MarkStale(BlockRef{Prefix: children[0].Geohash[:2], Day: day})
	if _, ok := g.DeriveFromChildren(parent); ok {
		t.Error("derivation used a stale child")
	}
}

// TestGraphInvariants property-checks the structural invariants of the graph
// under random workloads: capacity is enforced, Len matches the per-level
// sum, and Get partitions its request into found + missing exactly.
func TestGraphInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := DefaultConfig()
		cfg.Capacity = 64
		cfg.SafeFraction = 0.75
		g := NewGraph(cfg)
		base32 := "0123456789bcdefghjkmnpqrstuvwxyz"
		keyFor := func(v uint16) cell.Key {
			gh := string(base32[v%32]) + string(base32[(v/32)%32]) + string(base32[(v/1024)%8])
			return k(gh)
		}
		for i, op := range ops {
			key := keyFor(op)
			switch i % 3 {
			case 0:
				g.Put(resultWith(key))
			case 1:
				found, missing := g.Get([]cell.Key{key, keyFor(op + 1)})
				if found.Len()+len(missing) != 2 {
					// found omits negative-cached empties; account for them.
					extra := 0
					for _, kk := range []cell.Key{key, keyFor(op + 1)} {
						if s, ok := g.Peek(kk); ok && s.Empty() {
							extra++
						}
					}
					if found.Len()+len(missing)+extra != 2 {
						return false
					}
				}
			case 2:
				g.PutEmpty([]cell.Key{key})
			}
			// Capacity enforced after every mutation batch.
			if g.Len() > cfg.Capacity {
				return false
			}
		}
		// Len equals the sum over levels.
		sum := 0
		for lvl := 0; lvl < cell.NumLevels; lvl++ {
			sum += g.LevelLen(lvl)
		}
		return sum == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEvictionNeverBelowSafeLimit checks the eviction target: after a breach
// the graph holds at most capacity*safeFraction cells.
func TestEvictionNeverBelowSafeLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 50
	cfg.SafeFraction = 0.6
	g := NewGraph(cfg)
	res := query.NewResult()
	for i := 0; i < 200; i++ {
		gh := fmt.Sprintf("%s%s%s",
			string("0123456789bcdefghjkmnpqrstuvwxyz"[i%32]),
			string("0123456789bcdefghjkmnpqrstuvwxyz"[(i/32)%32]), "7")
		res.Add(k(gh), summaryWith(float64(i)))
	}
	g.Put(res)
	if g.Len() > 30 {
		t.Errorf("after breach Len = %d, want <= capacity*safe = 30", g.Len())
	}
	if g.Len() == 0 {
		t.Error("eviction emptied the graph")
	}
}

// TestDeriveAllEmptyChildrenOmittedFromResult is the regression test for a
// contract violation the differential harness (internal/oracle/difftest)
// caught: a parent derived from 32 negative-cached (empty) children produced
// an empty summary that DeriveBatch added to the served result, while the
// disk path — and GetBatch's negative-hit handling — omit dataless bins.
// The derived empty must be cached (it is a valid parent-level negative
// entry) but must not appear in the result.
func TestDeriveAllEmptyChildrenOmittedFromResult(t *testing.T) {
	g := newTestGraph()
	parent := k("9q8")
	children, _ := parent.SpatialChildren()
	g.PutEmpty(children)

	res, unresolved := g.DeriveBatch([]cell.Key{parent})
	if len(unresolved) != 0 {
		t.Fatalf("parent unresolved despite full (empty) child cover: %v", unresolved)
	}
	if _, inResult := res.Cells[parent]; inResult {
		t.Error("derived-empty parent appeared in the served result")
	}
	// But it must be resident as a parent-level negative-cache entry ...
	if sum, present := g.Peek(parent); !present {
		t.Error("derived-empty parent not cached")
	} else if !sum.Empty() {
		t.Errorf("cached parent should be empty, got %+v", sum.Stats)
	}
	// ... and the single-key path mirrors the disk scan: success, empty.
	sum, ok := g.DeriveFromChildren(parent)
	if !ok || !sum.Empty() {
		t.Errorf("DeriveFromChildren = (%+v, %v), want empty summary, true", sum.Stats, ok)
	}
}
