package stash

import (
	"testing"

	"stash/internal/cell"
	"stash/internal/temporal"
)

func TestPLMPresence(t *testing.T) {
	p := NewPLM()
	key := k("9q8")
	if p.Present(key) {
		t.Error("fresh PLM reports presence")
	}
	p.MarkPresent(key)
	if !p.Present(key) {
		t.Error("marked key not present")
	}
	p.MarkAbsent(key)
	if p.Present(key) {
		t.Error("unmarked key still present")
	}
	p.MarkAbsent(key) // idempotent
}

func TestPLMMissing(t *testing.T) {
	p := NewPLM()
	a, b, c := k("9q8"), k("9q9"), k("9qb")
	p.MarkPresent(a)
	p.MarkPresent(c)
	missing := p.Missing([]cell.Key{a, b, c})
	if len(missing) != 1 || missing[0] != b {
		t.Errorf("Missing = %v, want [%v]", missing, b)
	}
}

func TestPLMCompleteness(t *testing.T) {
	p := NewPLM()
	keys := []cell.Key{k("9q8"), k("9q9"), k("9qb"), k("9qc")}
	if got := p.Completeness(keys); got != 0 {
		t.Errorf("empty PLM completeness = %v", got)
	}
	p.MarkPresent(keys[0])
	p.MarkPresent(keys[1])
	p.MarkPresent(keys[2])
	if got := p.Completeness(keys); got != 0.75 {
		t.Errorf("completeness = %v, want 0.75", got)
	}
	if got := p.Completeness(nil); got != 1 {
		t.Errorf("empty footprint completeness = %v, want 1", got)
	}
}

func TestPLMStaleSpatialOverlap(t *testing.T) {
	p := NewPLM()
	fine := k("9q8y7") // inside block prefix 9q
	coarse := k("9")   // encloses block prefix 9q
	other := k("u4p")  // disjoint from 9q
	for _, key := range []cell.Key{fine, coarse, other} {
		p.MarkPresent(key)
	}
	p.MarkStale(BlockRef{Prefix: "9q", Day: day})

	if !p.IsStale(fine) {
		t.Error("cell inside stale block not stale")
	}
	if !p.IsStale(coarse) {
		t.Error("cell enclosing stale block not stale")
	}
	if p.IsStale(other) {
		t.Error("disjoint cell reported stale")
	}
}

func TestPLMStaleTemporalOverlap(t *testing.T) {
	p := NewPLM()
	sameDay := k("9q8")
	otherDay := cell.Key{Geohash: "9q8", Time: temporal.MustParse("2015-02-03", temporal.Day)}
	month := cell.Key{Geohash: "9q8", Time: temporal.MustParse("2015-02", temporal.Month)}
	otherMonth := cell.Key{Geohash: "9q8", Time: temporal.MustParse("2015-03", temporal.Month)}
	for _, key := range []cell.Key{sameDay, otherDay, month, otherMonth} {
		p.MarkPresent(key)
	}
	p.MarkStale(BlockRef{Prefix: "9q", Day: day})

	if !p.IsStale(sameDay) {
		t.Error("same-day cell not stale")
	}
	if p.IsStale(otherDay) {
		t.Error("other-day cell stale")
	}
	if !p.IsStale(month) {
		t.Error("enclosing month cell not stale")
	}
	if p.IsStale(otherMonth) {
		t.Error("disjoint month cell stale")
	}
}

func TestPLMClearStale(t *testing.T) {
	p := NewPLM()
	b := BlockRef{Prefix: "9q", Day: day}
	p.MarkStale(b)
	if p.StaleCount() != 1 {
		t.Errorf("StaleCount = %d", p.StaleCount())
	}
	p.ClearStale(b)
	if p.StaleCount() != 0 || p.IsStale(k("9q8")) {
		t.Error("cleared block still stale")
	}
}

func TestPLMMissingIncludesStale(t *testing.T) {
	p := NewPLM()
	key := k("9q8")
	p.MarkPresent(key)
	p.MarkStale(BlockRef{Prefix: "9q", Day: day})
	missing := p.Missing([]cell.Key{key})
	if len(missing) != 1 {
		t.Error("stale present cell should count as missing")
	}
}

// TestPLMEpochSemantics pins the update flow: a cell recomputed AFTER a
// block invalidation is immediately current, while the invalidation record
// keeps flagging cells resident from before it.
func TestPLMEpochSemantics(t *testing.T) {
	p := NewPLM()
	old, fresh := k("9q1"), k("9q2")
	p.MarkPresent(old)
	p.MarkStale(BlockRef{Prefix: "9q", Day: day})
	p.MarkPresent(fresh) // recomputed after the update

	if !p.IsStale(old) {
		t.Error("pre-update cell not stale")
	}
	if p.IsStale(fresh) {
		t.Error("post-update cell reported stale")
	}
	// Re-marking the old cell (its refetch landed) clears its staleness
	// without touching the block record.
	p.MarkPresent(old)
	if p.IsStale(old) {
		t.Error("refetched cell still stale")
	}
	if p.StaleCount() != 1 {
		t.Error("block record should persist until cleared")
	}
}

func TestPLMNonResidentNeverStale(t *testing.T) {
	p := NewPLM()
	p.MarkStale(BlockRef{Prefix: "9q", Day: day})
	if p.IsStale(k("9q1")) {
		t.Error("absent cell reported stale")
	}
}
