// Package elastic models the comparator system of the paper's §VIII-F: an
// ElasticSearch-style analytics engine with its stock caching layers, used
// to contrast against STASH on overlapping visual-exploration queries.
//
// The model captures the properties the comparison hinges on:
//
//   - the index is sharded by document hash, not by space, so a geospatial
//     query fans out to every shard (the paper used 600 shards over 120 data
//     nodes) and pays per-shard coordination cost;
//   - the request cache stores results keyed by the *exact* query, so a
//     duplicate query is fast but any overlapping-yet-different query misses
//     it entirely;
//   - the field-data cache keeps column values of previously touched blocks
//     hot, shaving the disk seek — the only benefit ES gets from overlapping
//     queries, which is why the paper measures just 0.6–2 % improvement
//     while STASH reuses aggregated cells and improves 50–70 %.
package elastic

import (
	"fmt"
	"sync"
	"time"

	"stash/internal/cell"
	"stash/internal/galileo"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/simnet"
	"stash/internal/temporal"
)

// Config assembles an engine.
type Config struct {
	// Shards is the index shard count (paper: 600).
	Shards int
	// Seed and PointsPerBlock define the same synthetic dataset the STASH
	// cluster queries, so results are comparable.
	Seed           uint64
	PointsPerBlock int
	// RequestCacheSize bounds the exact-match request cache (entries).
	RequestCacheSize int
	// BlockPrefixLen matches the STASH cluster's storage block granularity
	// so both systems read identically sized blocks.
	BlockPrefixLen int
	// Histograms makes scans maintain per-attribute histograms, matching
	// the STASH cluster's option of the same name.
	Histograms bool
	// Model and Sleeper inject simulated costs.
	Model   simnet.Model
	Sleeper simnet.Sleeper
}

// DefaultConfig mirrors the paper's ES deployment scaled to the simulation.
func DefaultConfig() Config {
	return Config{
		Shards:           600,
		Seed:             42,
		PointsPerBlock:   namgen.DefaultPointsPerBlock,
		RequestCacheSize: 4096,
		BlockPrefixLen:   galileo.DefaultBlockPrefixLen,
		Model:            simnet.Default(),
		Sleeper:          simnet.NewMeter(),
	}
}

// Stats counts engine activity.
type Stats struct {
	Queries       int64
	RequestHits   int64 // served whole from the request cache
	FieldDataHits int64 // blocks whose columns were already hot
	BlocksRead    int64 // cold block reads
	PointsScanned int64
}

// esSeekDivisor scales the block-store seek down to ES's amortized
// sequential-segment open cost.
const esSeekDivisor = 10

// Engine is the simulated ES cluster. It is safe for concurrent use.
type Engine struct {
	cfg Config
	gen *namgen.Generator

	mu        sync.Mutex
	fielddata map[galileo.BlockID]bool
	requests  map[string]query.Result
	reqOrder  []string
	stats     Stats
}

// New assembles an engine.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultConfig().Shards
	}
	if cfg.PointsPerBlock <= 0 {
		cfg.PointsPerBlock = namgen.DefaultPointsPerBlock
	}
	if cfg.RequestCacheSize <= 0 {
		cfg.RequestCacheSize = DefaultConfig().RequestCacheSize
	}
	if cfg.BlockPrefixLen <= 0 {
		cfg.BlockPrefixLen = galileo.DefaultBlockPrefixLen
	}
	if cfg.Sleeper == nil {
		cfg.Sleeper = simnet.NewMeter()
	}
	return &Engine{
		cfg:       cfg,
		gen:       &namgen.Generator{Seed: cfg.Seed, PointsPerBlock: cfg.PointsPerBlock},
		fielddata: map[galileo.BlockID]bool{},
		requests:  map[string]query.Result{},
	}
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// cacheKey is the exact-match request-cache key: every parameter of the
// query participates, so any change — a 10% pan, one resolution step —
// misses.
func cacheKey(q query.Query) string {
	return fmt.Sprintf("%.6f/%.6f/%.6f/%.6f|%d/%d|%d/%d",
		q.Box.MinLat, q.Box.MaxLat, q.Box.MinLon, q.Box.MaxLon,
		q.Time.Start.UnixNano(), q.Time.End.UnixNano(),
		q.SpatialRes, int(q.TemporalRes))
}

// Query evaluates an aggregation query. Results are full-extent cells at the
// requested resolutions, identical in content to what the STASH cluster
// returns for the same query, so only the serving path differs.
func (e *Engine) Query(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	key := cacheKey(q)

	e.mu.Lock()
	if cached, ok := e.requests[key]; ok {
		e.stats.Queries++
		e.stats.RequestHits++
		e.mu.Unlock()
		// A request-cache hit still pays one coordination hop and the
		// response marshalling.
		e.cfg.Sleeper.Apply(e.cfg.Model.NetCost(0))
		e.cfg.Sleeper.Apply(e.cfg.Model.MemCost(cached.Len()))
		return cloneResult(cached), nil
	}
	e.stats.Queries++
	e.mu.Unlock()

	// Hash-sharded index: the query fans out to every shard regardless of
	// its spatial extent.
	e.cfg.Sleeper.Apply(time.Duration(e.cfg.Shards) * e.cfg.Model.NetCost(0))

	blocks, err := e.blocksFor(q)
	if err != nil {
		return query.Result{}, err
	}
	res := query.NewResult()
	for _, b := range blocks {
		if err := e.scanBlock(b, q, &res); err != nil {
			return query.Result{}, err
		}
	}

	e.mu.Lock()
	e.storeRequest(key, res)
	e.mu.Unlock()
	return cloneResult(res), nil
}

// blocksFor enumerates the (prefix, day) blocks intersecting the query.
func (e *Engine) blocksFor(q query.Query) ([]galileo.BlockID, error) {
	prefixes, err := geohash.Cover(q.Box, e.cfg.BlockPrefixLen)
	if err != nil {
		return nil, err
	}
	days, err := q.Time.Cover(temporal.Day)
	if err != nil {
		return nil, err
	}
	out := make([]galileo.BlockID, 0, len(prefixes)*len(days))
	for _, p := range prefixes {
		for _, d := range days {
			out = append(out, galileo.BlockID{Prefix: p, Day: d})
		}
	}
	return out, nil
}

// scanBlock reads one block (warm through field data if previously touched)
// and folds its observations into the result.
func (e *Engine) scanBlock(b galileo.BlockID, q query.Query, res *query.Result) error {
	obs, err := e.gen.Block(b.Prefix, b.Day)
	if err != nil {
		return err
	}

	e.mu.Lock()
	warm := e.fielddata[b]
	e.fielddata[b] = true
	if warm {
		e.stats.FieldDataHits++
	} else {
		e.stats.BlocksRead++
	}
	e.stats.PointsScanned += int64(len(obs))
	e.mu.Unlock()

	// Lucene-style segments are scanned sequentially, so the per-block open
	// overhead is a fraction of a block-store seek; field-data warmth saves
	// only that fraction while the per-point scan+aggregation work — the
	// dominant term — repeats on every query. This is why the paper measures
	// only a 0.6-2% gain for ES on overlapping queries.
	seek := e.cfg.Model.DiskSeek / esSeekDivisor
	if warm {
		e.cfg.Sleeper.Apply(e.cfg.Model.DiskCost(0, len(obs)))
	} else {
		e.cfg.Sleeper.Apply(seek + e.cfg.Model.DiskCost(0, len(obs)))
	}

	acc := map[cell.Key]cell.Summary{}
	for _, o := range obs {
		k := cell.Key{
			Geohash: geohash.Encode(o.Lat, o.Lon, q.SpatialRes),
			Time:    temporal.At(o.Time, q.TemporalRes),
		}
		box, err := geohash.DecodeBox(k.Geohash)
		if err != nil || !box.Intersects(q.Box) {
			continue
		}
		ts, err := k.Time.Start()
		if err != nil {
			continue
		}
		te, _ := k.Time.End()
		if !ts.Before(q.Time.End) || !q.Time.Start.Before(te) {
			continue
		}
		sum, ok := acc[k]
		if !ok {
			sum = cell.NewSummary()
			if e.cfg.Histograms {
				sum.Hists = map[string]*cell.Histogram{}
			}
			acc[k] = sum
		}
		for _, attr := range namgen.Attributes {
			v, _ := o.Value(attr)
			sum.Observe(attr, v)
			if e.cfg.Histograms {
				spec := namgen.HistogramSpecs[attr]
				_ = sum.ObserveHist(attr, v, cell.HistogramSpec{Lo: spec.Lo, Hi: spec.Hi, Buckets: spec.Buckets})
			}
		}
	}
	for k, sum := range acc {
		res.Add(k, sum)
	}
	return nil
}

// storeRequest inserts into the exact-match request cache with FIFO
// eviction. Callers hold e.mu.
func (e *Engine) storeRequest(key string, res query.Result) {
	if _, exists := e.requests[key]; exists {
		return
	}
	if len(e.reqOrder) >= e.cfg.RequestCacheSize {
		oldest := e.reqOrder[0]
		e.reqOrder = e.reqOrder[1:]
		delete(e.requests, oldest)
	}
	e.requests[key] = cloneResult(res)
	e.reqOrder = append(e.reqOrder, key)
}

func cloneResult(r query.Result) query.Result {
	out := query.NewResult()
	for k, s := range r.Cells {
		out.Add(k, s)
	}
	return out
}
