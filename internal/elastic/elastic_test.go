package elastic

import (
	"math/rand"
	"testing"
	"time"

	"stash/internal/dht"
	"stash/internal/galileo"
	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/simnet"
	"stash/internal/temporal"
)

func testEngine(meter *simnet.Meter) *Engine {
	cfg := DefaultConfig()
	cfg.Shards = 60
	cfg.PointsPerBlock = 64
	cfg.Sleeper = meter
	// Point-scan-dominated model, as on real hardware where a query's disk
	// cost is bandwidth, not seeks; field-data warmth then saves only a
	// small fraction — the ES shape under overlapping queries.
	cfg.Model = simnet.Model{
		DiskSeek:  50 * time.Microsecond,
		DiskPoint: 4 * time.Microsecond,
		NetHop:    10 * time.Microsecond,
		MemCell:   30 * time.Nanosecond,
	}
	return New(cfg)
}

func countyQuery() query.Query {
	return query.Query{
		Box:         geohash.Box{MinLat: 35, MaxLat: 35.6, MinLon: -98, MaxLon: -96.8},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
}

func TestQueryReturnsData(t *testing.T) {
	e := testEngine(simnet.NewMeter())
	res, err := e.Query(countyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 || res.TotalCount("temperature") == 0 {
		t.Fatal("empty result over populated region")
	}
}

func TestQueryValidation(t *testing.T) {
	e := testEngine(simnet.NewMeter())
	bad := countyQuery()
	bad.SpatialRes = 0
	if _, err := e.Query(bad); err == nil {
		t.Error("invalid query accepted")
	}
}

// TestMatchesGalileo pins the comparator to the reference aggregation: both
// engines must produce identical summaries for the same synthetic dataset,
// so benchmark contrasts measure serving paths, not data differences.
func TestMatchesGalileo(t *testing.T) {
	e := testEngine(simnet.NewMeter())
	ring, _ := dht.NewRing(1, 2)
	gen := &namgen.Generator{Seed: 42, PointsPerBlock: 64}
	store := galileo.NewStore(ring, 0, gen, simnet.Model{}, simnet.NewMeter())

	q := countyQuery()
	got, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := store.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("cells: es=%d galileo=%d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs, ok := got.Cells[k]
		if !ok {
			t.Fatalf("cell %v missing from ES result", k)
		}
		for _, attr := range namgen.Attributes {
			if ws.Stats[attr] != gs.Stats[attr] {
				t.Fatalf("cell %v attr %s: %+v != %+v", k, attr, ws.Stats[attr], gs.Stats[attr])
			}
		}
	}
}

func TestRequestCacheExactHit(t *testing.T) {
	meter := simnet.NewMeter()
	e := testEngine(meter)
	q := countyQuery()
	r1, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cold := meter.Elapsed()
	meter.Reset()
	r2, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	warm := meter.Elapsed()
	if e.Stats().RequestHits != 1 {
		t.Fatalf("request hits = %d", e.Stats().RequestHits)
	}
	if warm*10 > cold {
		t.Errorf("exact duplicate not cheap: cold=%v warm=%v", cold, warm)
	}
	if r1.TotalCount("temperature") != r2.TotalCount("temperature") {
		t.Error("cached result differs")
	}
}

// TestOverlappingQueryMissesRequestCache is the crux of Fig. 8: a 10% pan
// misses the exact-match cache, gaining only the field-data seek savings.
func TestOverlappingQueryMissesRequestCache(t *testing.T) {
	meter := simnet.NewMeter()
	e := testEngine(meter)
	q := countyQuery()
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	cold := meter.Elapsed()
	meter.Reset()

	panned := q.Pan(geohash.East, 0.10)
	if _, err := e.Query(panned); err != nil {
		t.Fatal(err)
	}
	overlapping := meter.Elapsed()

	if e.Stats().RequestHits != 0 {
		t.Error("overlapping query hit the request cache")
	}
	if e.Stats().FieldDataHits == 0 {
		t.Error("overlapping query gained no field-data warmth")
	}
	// The gain must exist but stay small — the ES shape from the paper.
	if overlapping >= cold {
		t.Errorf("no benefit at all from overlap: %v >= %v", overlapping, cold)
	}
	if overlapping*4 < cold*3 {
		t.Errorf("overlap benefit implausibly large for ES: cold=%v overlapping=%v", cold, overlapping)
	}
}

func TestShardFanoutCostScalesWithShards(t *testing.T) {
	mFew := simnet.NewMeter()
	few := New(Config{Shards: 10, PointsPerBlock: 64, Sleeper: mFew, Model: simnet.Default(), Seed: 42})
	mMany := simnet.NewMeter()
	many := New(Config{Shards: 600, PointsPerBlock: 64, Sleeper: mMany, Model: simnet.Default(), Seed: 42})
	q := countyQuery()
	if _, err := few.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := many.Query(q); err != nil {
		t.Fatal(err)
	}
	if mMany.Elapsed() <= mFew.Elapsed() {
		t.Errorf("600-shard query (%v) not costlier than 10-shard (%v)", mMany.Elapsed(), mFew.Elapsed())
	}
}

func TestRequestCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 10
	cfg.PointsPerBlock = 16
	cfg.RequestCacheSize = 2
	cfg.Sleeper = simnet.NewMeter()
	e := New(cfg)
	q := countyQuery()
	q2 := q.Pan(geohash.East, 0.5)
	q3 := q.Pan(geohash.West, 0.5)
	for _, qq := range []query.Query{q, q2, q3} {
		if _, err := e.Query(qq); err != nil {
			t.Fatal(err)
		}
	}
	// q was evicted (FIFO, size 2): re-running it must not hit.
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if e.Stats().RequestHits != 0 {
		t.Error("evicted entry served a hit")
	}
	// q3 is still resident.
	if _, err := e.Query(q3); err != nil {
		t.Fatal(err)
	}
	if e.Stats().RequestHits != 1 {
		t.Errorf("expected exactly one hit, got %d", e.Stats().RequestHits)
	}
}

func TestResultIsolation(t *testing.T) {
	e := testEngine(simnet.NewMeter())
	q := countyQuery()
	r1, _ := e.Query(q)
	// Mutate the returned result; the cache must be unaffected.
	for k := range r1.Cells {
		delete(r1.Cells, k)
	}
	r2, _ := e.Query(q)
	if r2.Len() == 0 {
		t.Error("cache was mutated through a returned result")
	}
}

func TestConfigDefaults(t *testing.T) {
	e := New(Config{})
	if e.cfg.Shards != DefaultConfig().Shards {
		t.Error("shards not defaulted")
	}
	if e.cfg.Sleeper == nil {
		t.Error("sleeper not defaulted")
	}
}

func BenchmarkQueryCold(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Shards = 60
	cfg.PointsPerBlock = 64
	cfg.Model = simnet.Model{}
	e := New(cfg)
	q := countyQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		qq := q.Pan(geohash.Direction(i%8), float64(i%13)/100+0.01)
		if _, err := e.Query(qq); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEquivalenceProperty pins ES and Galileo to identical aggregates over
// randomized queries: the Fig. 8 contrasts must measure serving paths, never
// data differences.
func TestEquivalenceProperty(t *testing.T) {
	gen := &namgen.Generator{Seed: 42, PointsPerBlock: 32}
	ring, _ := dht.NewRing(1, 2)
	store := galileo.NewStore(ring, 0, gen, simnet.Model{}, simnet.NewMeter())
	cfg := DefaultConfig()
	cfg.Shards = 10
	cfg.PointsPerBlock = 32
	cfg.Sleeper = simnet.NewMeter()
	cfg.Model = simnet.Model{}
	es := New(cfg)

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		lat := -50 + rng.Float64()*100
		lon := -170 + rng.Float64()*340
		q := query.Query{
			Box: geohash.Box{
				MinLat: lat, MaxLat: lat + 0.5 + rng.Float64()*2,
				MinLon: lon, MaxLon: lon + 0.5 + rng.Float64()*2,
			},
			Time:        temporal.DayRange(2015, 2, 1+rng.Intn(5)),
			SpatialRes:  3 + rng.Intn(2),
			TemporalRes: temporal.Day,
		}
		want, err := store.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := es.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() ||
			got.TotalCount("temperature") != want.TotalCount("temperature") {
			t.Fatalf("trial %d (%v): es=%d/%d galileo=%d/%d", trial, q,
				got.Len(), got.TotalCount("temperature"),
				want.Len(), want.TotalCount("temperature"))
		}
	}
}
