package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stash/internal/cell"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/temporal"
)

var day = temporal.MustParse("2015-02-02", temporal.Day)

func sampleResult(nCells int, seed int64) query.Result {
	rng := rand.New(rand.NewSource(seed))
	r := query.NewResult()
	for i := 0; i < nCells; i++ {
		gh := ""
		for j := 0; j < 4; j++ {
			gh += string("0123456789bcdefghjkmnpqrstuvwxyz"[rng.Intn(32)])
		}
		s := cell.NewSummary()
		for _, attr := range namgen.Attributes {
			for k := 0; k < 1+rng.Intn(3); k++ {
				s.Observe(attr, rng.NormFloat64()*20)
			}
		}
		r.Add(cell.Key{Geohash: gh, Time: day}, s)
	}
	return r
}

func TestResultRoundTrip(t *testing.T) {
	want := sampleResult(50, 1)
	b := EncodeResult(want)
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("cells: %d != %d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs, ok := got.Cells[k]
		if !ok {
			t.Fatalf("missing key %v", k)
		}
		for attr, wst := range ws.Stats {
			if gst := gs.Stats[attr]; gst != wst {
				t.Fatalf("key %v attr %s: %+v != %+v", k, attr, gst, wst)
			}
		}
	}
}

func TestResultRoundTripEmpty(t *testing.T) {
	b := EncodeResult(query.NewResult())
	got, err := DecodeResult(b)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty roundtrip: %v %d", err, got.Len())
	}
}

func TestResultSizeExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := sampleResult(int(seed)*13, seed)
		if got, want := ResultSize(r), len(EncodeResult(r)); got != want {
			t.Fatalf("seed %d: ResultSize=%d, encoded=%d", seed, got, want)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Map iteration order must not leak into sizes; and a single cell's
	// encoding must be byte-stable (attributes sorted).
	r := query.NewResult()
	s := cell.NewSummary()
	s.Observe("zeta", 1)
	s.Observe("alpha", 2)
	r.Add(cell.Key{Geohash: "9q8y", Time: day}, s)
	b1 := EncodeResult(r)
	b2 := EncodeResult(r)
	if string(b1) != string(b2) {
		t.Error("encoding not deterministic")
	}
}

func TestKeysRoundTrip(t *testing.T) {
	keys := []cell.Key{
		cell.MustKey("9q8y", "2015-02-02", temporal.Day),
		cell.MustKey("u4pr", "2015-02", temporal.Month),
		cell.MustKey("d", "2015", temporal.Year),
		cell.MustKey("9q8y7z", "2015-02-02T10", temporal.Hour),
	}
	b := EncodeKeys(keys)
	if len(b) != KeysSize(keys) {
		t.Fatalf("KeysSize=%d, encoded=%d", KeysSize(keys), len(b))
	}
	got, err := DecodeKeys(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("decoded %d keys", len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: %v != %v", i, got[i], keys[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{magic},
		{magic, 99},            // bad version
		{magic, version, 0xFF}, // truncated count
		{0x42, version, 0x00},  // bad magic
		append(EncodeResult(sampleResult(3, 2)), 0xAA), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeResult(b); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
		if _, err := DecodeKeys(b); err == nil {
			t.Errorf("case %d: corrupt key list accepted", i)
		}
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	full := EncodeResult(sampleResult(10, 3))
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := DecodeResult(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsInvalidKey(t *testing.T) {
	// Hand-craft a payload with an invalid geohash character.
	b := []byte{magic, version, 1}
	b = append(b, 4)
	b = append(b, "9qa8"...) // 'a' is not base32
	b = append(b, byte(temporal.Day))
	b = append(b, 10)
	b = append(b, "2015-02-02"...)
	b = append(b, 0) // zero attributes
	if _, err := DecodeResult(b); err == nil {
		t.Error("invalid geohash accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := sampleResult(int(n%64), seed)
		got, err := DecodeResult(EncodeResult(r))
		if err != nil || got.Len() != r.Len() {
			return false
		}
		return got.TotalCount("temperature") == r.TotalCount("temperature")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFloatEdgeCases(t *testing.T) {
	r := query.NewResult()
	s := cell.NewSummary()
	s.Stats["x"] = cell.Stat{Count: 1, Sum: math.Inf(1), Min: -math.MaxFloat64, Max: math.MaxFloat64}
	r.Add(cell.Key{Geohash: "9q8y", Time: day}, s)
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	st := got.Cells[cell.Key{Geohash: "9q8y", Time: day}].Stats["x"]
	if !math.IsInf(st.Sum, 1) || st.Min != -math.MaxFloat64 {
		t.Errorf("float extremes mangled: %+v", st)
	}
}

// sampleKeys builds n pseudo-random day-resolution keys clustered under a
// few shared geohash prefixes — the shape a sorted coalesced batch has.
func sampleKeys(n int, seed int64) []cell.Key {
	rng := rand.New(rand.NewSource(seed))
	const alpha = "0123456789bcdefghjkmnpqrstuvwxyz"
	prefixes := []string{"9q8", "9q9", "u4p", "dr5"}
	keys := make([]cell.Key, 0, n)
	for i := 0; i < n; i++ {
		gh := prefixes[rng.Intn(len(prefixes))]
		for j := 0; j < 3; j++ {
			gh += string(alpha[rng.Intn(32)])
		}
		keys = append(keys, cell.Key{Geohash: gh, Time: day})
	}
	return keys
}

func TestKeysDeltaRoundTrip(t *testing.T) {
	keys := []cell.Key{
		cell.MustKey("9q8y", "2015-02-02", temporal.Day),
		cell.MustKey("9q8y7z", "2015-02-02T10", temporal.Hour),
		cell.MustKey("9q8z", "2015-02-02", temporal.Day),
		cell.MustKey("d", "2015", temporal.Year),
		cell.MustKey("u4pr", "2015-02", temporal.Month),
	}
	for _, sorted := range []bool{false, true} {
		ks := append([]cell.Key(nil), keys...)
		if sorted {
			SortKeys(ks)
		}
		b := EncodeKeysDelta(ks)
		if len(b) != KeysDeltaSize(ks) {
			t.Fatalf("sorted=%v: KeysDeltaSize=%d, encoded=%d", sorted, KeysDeltaSize(ks), len(b))
		}
		got, err := DecodeKeysDelta(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ks) {
			t.Fatalf("decoded %d keys, want %d", len(got), len(ks))
		}
		for i := range ks {
			if got[i] != ks[i] {
				t.Fatalf("sorted=%v key %d: %v != %v", sorted, i, got[i], ks[i])
			}
		}
	}
}

func TestKeysDeltaSortedSmallerThanPlain(t *testing.T) {
	keys := sampleKeys(256, 7)
	SortKeys(keys)
	delta := len(EncodeKeysDelta(keys))
	plain := KeysSize(keys)
	if delta >= plain {
		t.Errorf("delta encoding (%dB) not smaller than plain (%dB)", delta, plain)
	}
}

func TestKeysDeltaRejectsGarbage(t *testing.T) {
	valid := EncodeKeysDelta(sampleKeys(16, 3))
	cases := [][]byte{
		nil,
		{},
		{magic},
		{magic, version},            // v1 header on the delta decoder
		{magic, versionDelta, 0xFF}, // truncated count
		{0x42, versionDelta, 0x00},  // bad magic
		// shared prefix on the FIRST key (no previous geohash to share with)
		{magic, versionDelta, 1, 3, 1, 'y', 0, byte(temporal.Day), 10, '2', '0', '1', '5', '-', '0', '2', '-', '0', '2'},
		// repeat-label flag on the first key
		{magic, versionDelta, 1, 0, 4, '9', 'q', '8', 'y', 1},
		// bad time flag
		{magic, versionDelta, 1, 0, 4, '9', 'q', '8', 'y', 7},
		append(append([]byte(nil), valid...), 0xAA), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeKeysDelta(b); err == nil {
			t.Errorf("case %d: corrupt delta key list accepted", i)
		}
	}
	for cut := 1; cut < len(valid); cut += 3 {
		if _, err := DecodeKeysDelta(valid[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestKeysDeltaIntoReusesDst(t *testing.T) {
	keys := sampleKeys(32, 5)
	b := EncodeKeysDelta(keys)
	dst := make([]cell.Key, 0, 64)
	got, err := DecodeKeysDeltaInto(dst, b)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("decode-into did not reuse the destination's backing array")
	}
	// On error dst must come back unchanged.
	if back, err := DecodeKeysDeltaInto(got, []byte{0x42}); err == nil || len(back) != len(got) {
		t.Errorf("error path altered dst: len=%d err=%v", len(back), err)
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("pooled buffer not reset: len=%d", len(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf()
	if len(b2) != 0 {
		t.Fatalf("reused buffer not truncated: len=%d", len(b2))
	}
	PutBuf(b2)
	// Oversized buffers must be dropped, never pooled.
	PutBuf(make([]byte, 0, maxPooledBuf+1))
}

// BenchmarkWireRoundTrip is the allocation benchmark of the pooled wire
// path: one encode into a pooled buffer plus one decode through the pooled
// reader per iteration. Run with -benchmem; the B/op column is the
// acceptance number for the zero-alloc work (decode output — the Result map
// and its summaries — still allocates; scratch must not).
func BenchmarkWireRoundTrip(b *testing.B) {
	r := sampleResult(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := AppendResult(GetBuf(), r)
		got, err := DecodeResult(buf)
		if err != nil {
			b.Fatal(err)
		}
		PutBuf(buf)
		if got.Len() != r.Len() {
			b.Fatal("round trip lost cells")
		}
	}
}

// BenchmarkWireRoundTripUnpooled is the contrast run: fresh buffers every
// iteration, so the delta against BenchmarkWireRoundTrip is the pool's win.
func BenchmarkWireRoundTripUnpooled(b *testing.B) {
	r := sampleResult(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeResult(EncodeResult(r))
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != r.Len() {
			b.Fatal("round trip lost cells")
		}
	}
}

func BenchmarkEncodeKeysPlain(b *testing.B) {
	keys := sampleKeys(256, 1)
	SortKeys(keys)
	b.ReportAllocs()
	b.SetBytes(int64(KeysSize(keys)))
	for i := 0; i < b.N; i++ {
		buf := AppendKeys(GetBuf(), keys)
		PutBuf(buf)
	}
}

func BenchmarkEncodeKeysDelta(b *testing.B) {
	keys := sampleKeys(256, 1)
	SortKeys(keys)
	b.ReportAllocs()
	b.SetBytes(int64(KeysDeltaSize(keys)))
	for i := 0; i < b.N; i++ {
		buf := AppendKeysDelta(GetBuf(), keys)
		PutBuf(buf)
	}
}

func BenchmarkDecodeKeysDeltaInto(b *testing.B) {
	keys := sampleKeys(256, 1)
	SortKeys(keys)
	buf := EncodeKeysDelta(keys)
	dst := make([]cell.Key, 0, len(keys))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeKeysDeltaInto(dst[:0], buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(keys) {
			b.Fatal("short decode")
		}
	}
}

func BenchmarkEncodeResult(b *testing.B) {
	r := sampleResult(500, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeResult(r)
	}
}

func BenchmarkDecodeResult(b *testing.B) {
	buf := EncodeResult(sampleResult(500, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResult(buf); err != nil {
			b.Fatal(err)
		}
	}
}
