package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stash/internal/cell"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/temporal"
)

var day = temporal.MustParse("2015-02-02", temporal.Day)

func sampleResult(nCells int, seed int64) query.Result {
	rng := rand.New(rand.NewSource(seed))
	r := query.NewResult()
	for i := 0; i < nCells; i++ {
		gh := ""
		for j := 0; j < 4; j++ {
			gh += string("0123456789bcdefghjkmnpqrstuvwxyz"[rng.Intn(32)])
		}
		s := cell.NewSummary()
		for _, attr := range namgen.Attributes {
			for k := 0; k < 1+rng.Intn(3); k++ {
				s.Observe(attr, rng.NormFloat64()*20)
			}
		}
		r.Add(cell.Key{Geohash: gh, Time: day}, s)
	}
	return r
}

func TestResultRoundTrip(t *testing.T) {
	want := sampleResult(50, 1)
	b := EncodeResult(want)
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("cells: %d != %d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs, ok := got.Cells[k]
		if !ok {
			t.Fatalf("missing key %v", k)
		}
		for attr, wst := range ws.Stats {
			if gst := gs.Stats[attr]; gst != wst {
				t.Fatalf("key %v attr %s: %+v != %+v", k, attr, gst, wst)
			}
		}
	}
}

func TestResultRoundTripEmpty(t *testing.T) {
	b := EncodeResult(query.NewResult())
	got, err := DecodeResult(b)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty roundtrip: %v %d", err, got.Len())
	}
}

func TestResultSizeExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := sampleResult(int(seed)*13, seed)
		if got, want := ResultSize(r), len(EncodeResult(r)); got != want {
			t.Fatalf("seed %d: ResultSize=%d, encoded=%d", seed, got, want)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Map iteration order must not leak into sizes; and a single cell's
	// encoding must be byte-stable (attributes sorted).
	r := query.NewResult()
	s := cell.NewSummary()
	s.Observe("zeta", 1)
	s.Observe("alpha", 2)
	r.Add(cell.Key{Geohash: "9q8y", Time: day}, s)
	b1 := EncodeResult(r)
	b2 := EncodeResult(r)
	if string(b1) != string(b2) {
		t.Error("encoding not deterministic")
	}
}

func TestKeysRoundTrip(t *testing.T) {
	keys := []cell.Key{
		cell.MustKey("9q8y", "2015-02-02", temporal.Day),
		cell.MustKey("u4pr", "2015-02", temporal.Month),
		cell.MustKey("d", "2015", temporal.Year),
		cell.MustKey("9q8y7z", "2015-02-02T10", temporal.Hour),
	}
	b := EncodeKeys(keys)
	if len(b) != KeysSize(keys) {
		t.Fatalf("KeysSize=%d, encoded=%d", KeysSize(keys), len(b))
	}
	got, err := DecodeKeys(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("decoded %d keys", len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: %v != %v", i, got[i], keys[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{magic},
		{magic, 99},            // bad version
		{magic, version, 0xFF}, // truncated count
		{0x42, version, 0x00},  // bad magic
		append(EncodeResult(sampleResult(3, 2)), 0xAA), // trailing bytes
	}
	for i, b := range cases {
		if _, err := DecodeResult(b); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
		if _, err := DecodeKeys(b); err == nil {
			t.Errorf("case %d: corrupt key list accepted", i)
		}
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	full := EncodeResult(sampleResult(10, 3))
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := DecodeResult(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsInvalidKey(t *testing.T) {
	// Hand-craft a payload with an invalid geohash character.
	b := []byte{magic, version, 1}
	b = append(b, 4)
	b = append(b, "9qa8"...) // 'a' is not base32
	b = append(b, byte(temporal.Day))
	b = append(b, 10)
	b = append(b, "2015-02-02"...)
	b = append(b, 0) // zero attributes
	if _, err := DecodeResult(b); err == nil {
		t.Error("invalid geohash accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := sampleResult(int(n%64), seed)
		got, err := DecodeResult(EncodeResult(r))
		if err != nil || got.Len() != r.Len() {
			return false
		}
		return got.TotalCount("temperature") == r.TotalCount("temperature")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFloatEdgeCases(t *testing.T) {
	r := query.NewResult()
	s := cell.NewSummary()
	s.Stats["x"] = cell.Stat{Count: 1, Sum: math.Inf(1), Min: -math.MaxFloat64, Max: math.MaxFloat64}
	r.Add(cell.Key{Geohash: "9q8y", Time: day}, s)
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	st := got.Cells[cell.Key{Geohash: "9q8y", Time: day}].Stats["x"]
	if !math.IsInf(st.Sum, 1) || st.Min != -math.MaxFloat64 {
		t.Errorf("float extremes mangled: %+v", st)
	}
}

func BenchmarkEncodeResult(b *testing.B) {
	r := sampleResult(500, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeResult(r)
	}
}

func BenchmarkDecodeResult(b *testing.B) {
	buf := EncodeResult(sampleResult(500, 1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResult(buf); err != nil {
			b.Fatal(err)
		}
	}
}
