package wire

import (
	"bytes"
	"testing"

	"stash/internal/cell"
	"stash/internal/temporal"
)

// FuzzKeysDeltaRoundTrip feeds arbitrary bytes to the prefix-delta key
// decoder. The invariants:
//
//  1. the decoder never panics and never reads past the input (enforced by
//     the reader's bounds checks);
//  2. whatever it accepts must re-encode and re-decode to the identical key
//     list — decode∘encode is the identity on the decoder's accepted set;
//  3. every accepted key is structurally valid (cell.NewKey passed during
//     decoding), so corrupt inputs cannot smuggle malformed geohashes or
//     temporal labels into the cluster.
//
// The seed corpus holds valid encodings (shared prefixes, repeated labels,
// mixed resolutions, the empty list) so coverage starts inside the accepted
// set, plus near-miss corruptions of each header field.
func FuzzKeysDeltaRoundTrip(f *testing.F) {
	seedKeys := [][]cell.Key{
		{},
		{cell.MustKey("9q8y", "2015-02-02", temporal.Day)},
		{
			cell.MustKey("9q8y", "2015-02-02", temporal.Day),
			cell.MustKey("9q8y7z", "2015-02-02T10", temporal.Hour),
			cell.MustKey("9q8z", "2015-02-02", temporal.Day),
			cell.MustKey("d", "2015", temporal.Year),
			cell.MustKey("u4pr", "2015-02", temporal.Month),
		},
		sampleKeys(32, 11),
	}
	for _, ks := range seedKeys {
		sorted := append([]cell.Key(nil), ks...)
		SortKeys(sorted)
		f.Add(EncodeKeysDelta(ks))
		f.Add(EncodeKeysDelta(sorted))
	}
	// Near-miss corruptions: bad version, truncated count, over-shared prefix.
	f.Add([]byte{magic, version, 0})
	f.Add([]byte{magic, versionDelta, 0xFF})
	f.Add([]byte{magic, versionDelta, 1, 3, 1, 'y', 0, byte(temporal.Day), 10, '2', '0', '1', '5', '-', '0', '2', '-', '0', '2'})

	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := DecodeKeysDelta(data)
		if err != nil {
			return // rejected: fine, as long as we didn't panic
		}
		for i, k := range keys {
			if _, err := cell.NewKey(k.Geohash, k.Time); err != nil {
				t.Fatalf("decoder accepted invalid key %d (%v): %v", i, k, err)
			}
		}
		re := EncodeKeysDelta(keys)
		back, err := DecodeKeysDelta(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted input does not decode: %v", err)
		}
		if len(back) != len(keys) {
			t.Fatalf("round trip changed key count: %d -> %d", len(keys), len(back))
		}
		for i := range keys {
			if back[i] != keys[i] {
				t.Fatalf("round trip changed key %d: %v -> %v", i, keys[i], back[i])
			}
		}
		// Canonical inputs (what AppendKeysDelta itself emits for these keys
		// in this order) must be byte-stable: encode is deterministic.
		if again := EncodeKeysDelta(back); !bytes.Equal(re, again) {
			t.Fatal("re-encoding is not deterministic")
		}
	})
}
