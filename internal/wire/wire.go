// Package wire provides a compact, deterministic binary encoding for STASH's
// transferable payloads: cell keys and query results. The cluster transport
// is in-process, so the codec's primary jobs are (a) pricing network payloads
// accurately — clique replication charges the exact encoded size — and
// (b) giving external consumers (files, sockets) a stable format.
//
// Layout (all integers varint/uvarint, strings length-prefixed, floats
// IEEE-754 bits little-endian):
//
//	Result  := magic u8 | version u8 | count uvarint | Cell*
//	Cell    := Key | Summary
//	Key     := geohash string | timeRes u8 | timeText string
//	Summary := nattrs uvarint | (name string | count varint |
//	           sum f64 | min f64 | max f64)*
//
// Attributes are encoded in sorted order, so equal results encode to equal
// bytes.
//
// Key lists additionally have a delta form (version 2) built for coalesced
// fetch batches: geohashes are encoded as a shared-prefix length against the
// previous key plus the differing suffix, and a repeated temporal label
// costs one flag byte. On a sorted batch (SortKeys) the marginal cost of one
// more key in an already-covered region approaches two bytes:
//
//	KeysDelta := magic u8 | versionDelta u8 | count uvarint | DKey*
//	DKey      := shared uvarint | suffix string |
//	             timeFlag u8 | [timeRes u8 | timeText string]   (flag 0)
//
// The hot encode/decode paths are allocation-frugal: encode buffers and
// decoder scratch are pooled (GetBuf/PutBuf and an internal reader pool),
// repeated strings (attribute names, temporal labels) are interned per
// decoder, and parsed temporal labels are memoized.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"stash/internal/cell"
	"stash/internal/query"
	"stash/internal/temporal"
)

const (
	magic        = 0xC5
	version      = 1
	versionDelta = 2
)

// ErrCorrupt reports malformed or truncated input.
var ErrCorrupt = errors.New("wire: corrupt payload")

// maxElems caps decoded collection sizes so corrupt or hostile input cannot
// trigger giant allocations.
const maxElems = 16 << 20

// --- pooled encode buffers ---

// maxPooledBuf bounds the capacity of buffers returned to the pool, so one
// giant batch does not pin its memory forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetBuf returns a pooled, zero-length encode buffer. Append into it (the
// Append* APIs), consume the bytes, then hand it back with PutBuf. The
// returned slice may have been used before; never assume zeroed capacity.
func GetBuf() []byte {
	return (*bufPool.Get().(*[]byte))[:0]
}

// PutBuf returns an encode buffer to the pool. The caller must not touch b
// afterwards. Oversized buffers are dropped rather than pooled.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}

// --- encoding ---

// AppendResult appends the encoded result to dst and returns the extended
// slice.
func AppendResult(dst []byte, r query.Result) []byte {
	dst = append(dst, magic, version)
	dst = binary.AppendUvarint(dst, uint64(len(r.Cells)))
	for k, s := range r.Cells {
		dst = appendKey(dst, k)
		dst = appendSummary(dst, s)
	}
	return dst
}

// EncodeResult encodes a result into a fresh buffer.
func EncodeResult(r query.Result) []byte {
	return AppendResult(make([]byte, 0, ResultSize(r)), r)
}

func appendKey(dst []byte, k cell.Key) []byte {
	dst = appendString(dst, k.Geohash)
	dst = append(dst, byte(k.Time.Res))
	return appendString(dst, k.Time.Text)
}

func appendSummary(dst []byte, s cell.Summary) []byte {
	attrs := s.Attrs()
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		st := s.Stats[a]
		dst = appendString(dst, a)
		dst = binary.AppendVarint(dst, st.Count)
		dst = appendFloat(dst, st.Sum)
		dst = appendFloat(dst, st.Min)
		dst = appendFloat(dst, st.Max)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// ResultSize returns the exact encoded length of a result without encoding
// it — what the transport charges as payload bytes.
func ResultSize(r query.Result) int {
	n := 2 + uvarintLen(uint64(len(r.Cells)))
	for k, s := range r.Cells {
		n += stringLen(k.Geohash) + 1 + stringLen(k.Time.Text)
		n += uvarintLen(uint64(len(s.Stats)))
		for a, st := range s.Stats {
			n += stringLen(a) + varintLen(st.Count) + 24
		}
	}
	return n
}

// --- decoding ---

// maxInterned bounds the per-reader intern and label-cache maps; a reader
// whose caches grew past this is not worth pooling the maps of.
const maxInterned = 4096

type labelKey struct {
	res  byte
	text string
}

// reader is the pooled decode scratch: the cursor plus two memoization maps
// that survive between decodes. Attribute names and temporal-label texts
// repeat across the cells of a result (and across results), so interning
// them turns most string allocations in DecodeResult into map hits; the
// label cache additionally skips re-parsing a temporal label seen before.
type reader struct {
	b   []byte
	pos int
	// intern dedupes repeated strings (attribute names, label texts).
	intern map[string]string
	// labels memoizes parsed temporal labels by (resolution, text).
	labels map[labelKey]temporal.Label
}

var readerPool = sync.Pool{New: func() any { return &reader{} }}

// getReader leases a pooled reader positioned at the start of b.
func getReader(b []byte) *reader {
	r := readerPool.Get().(*reader)
	r.b, r.pos = b, 0
	return r
}

// putReader returns a reader to the pool, dropping oversized caches.
func putReader(r *reader) {
	r.b = nil
	if len(r.intern) > maxInterned {
		r.intern = nil
	}
	if len(r.labels) > maxInterned {
		r.labels = nil
	}
	readerPool.Put(r)
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) {
		return nil, ErrCorrupt
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil || n > maxElems {
		return "", ErrCorrupt
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// internStr reads a length-prefixed string through the reader's intern table:
// a string seen before costs a map probe (the map[string] lookup on a []byte
// key compiles allocation-free), a new one is allocated once and remembered.
// Use it for strings that repeat across elements (attribute names, label
// texts), not for unique ones (geohashes).
func (r *reader) internStr() (string, error) {
	n, err := r.uvarint()
	if err != nil || n > maxElems {
		return "", ErrCorrupt
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	if s, ok := r.intern[string(b)]; ok {
		return s, nil
	}
	s := string(b)
	if r.intern == nil {
		r.intern = make(map[string]string, 16)
	}
	r.intern[s] = s
	return s, nil
}

// label parses (res, text) into a temporal label through the reader's
// memoization cache, so a result whose cells share a handful of labels pays
// the parse once.
func (r *reader) label(res byte, text string) (temporal.Label, error) {
	lk := labelKey{res: res, text: text}
	if l, ok := r.labels[lk]; ok {
		return l, nil
	}
	l, err := temporal.Parse(text, temporal.Resolution(res))
	if err != nil {
		return temporal.Label{}, err
	}
	if r.labels == nil {
		r.labels = make(map[labelKey]temporal.Label, 16)
	}
	r.labels[lk] = l
	return l, nil
}

func (r *reader) float() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) byte1() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// DecodeResult decodes an encoded result. Cell keys are validated, so a
// decoded result is structurally safe to insert into a graph. Decoder
// scratch (cursor, string intern table, parsed-label cache) comes from a
// pool, so repeated decodes of similar results allocate only the result
// itself.
func DecodeResult(b []byte) (query.Result, error) {
	r := getReader(b)
	defer putReader(r)
	m, err := r.byte1()
	if err != nil || m != magic {
		return query.Result{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := r.byte1()
	if err != nil || v != version {
		return query.Result{}, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := r.uvarint()
	if err != nil || count > maxElems {
		return query.Result{}, ErrCorrupt
	}
	out := query.NewResultCap(capHint(count))
	for i := uint64(0); i < count; i++ {
		k, err := decodeKey(r)
		if err != nil {
			return query.Result{}, err
		}
		s, err := decodeSummary(r)
		if err != nil {
			return query.Result{}, err
		}
		out.Add(k, s)
	}
	if r.pos != len(b) {
		return query.Result{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.pos)
	}
	return out, nil
}

func decodeKey(r *reader) (cell.Key, error) {
	gh, err := r.str()
	if err != nil {
		return cell.Key{}, err
	}
	res, err := r.byte1()
	if err != nil {
		return cell.Key{}, err
	}
	text, err := r.internStr()
	if err != nil {
		return cell.Key{}, err
	}
	label, err := r.label(res, text)
	if err != nil {
		return cell.Key{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	k, err := cell.NewKey(gh, label)
	if err != nil {
		return cell.Key{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return k, nil
}

func decodeSummary(r *reader) (cell.Summary, error) {
	n, err := r.uvarint()
	if err != nil || n > 1024 {
		return cell.Summary{}, ErrCorrupt
	}
	s := cell.Summary{Stats: make(map[string]cell.Stat, n)}
	for i := uint64(0); i < n; i++ {
		name, err := r.internStr()
		if err != nil {
			return cell.Summary{}, err
		}
		count, err := r.varint()
		if err != nil {
			return cell.Summary{}, err
		}
		sum, err := r.float()
		if err != nil {
			return cell.Summary{}, err
		}
		min, err := r.float()
		if err != nil {
			return cell.Summary{}, err
		}
		max, err := r.float()
		if err != nil {
			return cell.Summary{}, err
		}
		if count < 0 {
			return cell.Summary{}, fmt.Errorf("%w: negative count", ErrCorrupt)
		}
		s.Stats[name] = cell.Stat{Count: count, Sum: sum, Min: min, Max: max}
	}
	return s, nil
}

// --- key lists ---

// AppendKeys appends the plain (version 1) encoding of a key list to dst
// and returns the extended slice; pair with GetBuf/PutBuf on hot paths.
func AppendKeys(dst []byte, keys []cell.Key) []byte {
	dst = append(dst, magic, version)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendKey(dst, k)
	}
	return dst
}

// EncodeKeys encodes a key list (a fetch request payload).
func EncodeKeys(keys []cell.Key) []byte {
	return AppendKeys(make([]byte, 0, KeysSize(keys)), keys)
}

// DecodeKeys decodes a key list.
func DecodeKeys(b []byte) ([]cell.Key, error) {
	return DecodeKeysInto(nil, b)
}

// DecodeKeysInto decodes a key list, appending into dst so callers on a hot
// path can reuse one slice across requests. On error the returned slice is
// dst unchanged.
func DecodeKeysInto(dst []cell.Key, b []byte) ([]cell.Key, error) {
	r := getReader(b)
	defer putReader(r)
	m, err := r.byte1()
	if err != nil || m != magic {
		return dst, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := r.byte1()
	if err != nil || v != version {
		return dst, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := r.uvarint()
	if err != nil || count > maxElems {
		return dst, ErrCorrupt
	}
	out := dst
	if need := capHint(count); cap(out)-len(out) < need {
		grown := make([]cell.Key, len(out), len(out)+need)
		copy(grown, out)
		out = grown
	}
	for i := uint64(0); i < count; i++ {
		k, err := decodeKey(r)
		if err != nil {
			return dst, err
		}
		out = append(out, k)
	}
	if r.pos != len(b) {
		return dst, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return out, nil
}

// KeysSize returns the exact encoded length of a key list.
func KeysSize(keys []cell.Key) int {
	n := 2 + uvarintLen(uint64(len(keys)))
	for _, k := range keys {
		n += stringLen(k.Geohash) + 1 + stringLen(k.Time.Text)
	}
	return n
}

// --- prefix-delta key lists (version 2) ---

// SortKeys orders keys lexicographically by (geohash, time resolution, time
// text): the order that maximizes shared geohash prefixes and temporal-label
// runs for the delta encoding, and makes batched encodings deterministic.
func SortKeys(keys []cell.Key) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Geohash != b.Geohash {
			return a.Geohash < b.Geohash
		}
		if a.Time.Res != b.Time.Res {
			return a.Time.Res < b.Time.Res
		}
		return a.Time.Text < b.Time.Text
	})
}

// AppendKeysDelta appends the delta encoding of a key list to dst and
// returns the extended slice. Keys are encoded in the given order; call
// SortKeys first for the tightest (and deterministic) encoding. Decoding
// preserves the order, so any order round-trips.
func AppendKeysDelta(dst []byte, keys []cell.Key) []byte {
	dst = append(dst, magic, versionDelta)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	var prev cell.Key
	for i, k := range keys {
		shared := 0
		if i > 0 {
			shared = commonPrefixLen(prev.Geohash, k.Geohash)
		}
		dst = binary.AppendUvarint(dst, uint64(shared))
		dst = appendString(dst, k.Geohash[shared:])
		if i > 0 && k.Time == prev.Time {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0, byte(k.Time.Res))
			dst = appendString(dst, k.Time.Text)
		}
		prev = k
	}
	return dst
}

// EncodeKeysDelta delta-encodes a key list into a fresh buffer.
func EncodeKeysDelta(keys []cell.Key) []byte {
	return AppendKeysDelta(make([]byte, 0, KeysDeltaSize(keys)), keys)
}

// DecodeKeysDelta decodes a delta-encoded key list.
func DecodeKeysDelta(b []byte) ([]cell.Key, error) {
	return DecodeKeysDeltaInto(nil, b)
}

// DecodeKeysDeltaInto decodes a delta-encoded key list, appending into dst.
// Every reconstructed key is validated (geohash alphabet and precision,
// temporal label), so corrupt prefixes and suffixes are rejected rather than
// propagated. On error the returned slice is dst unchanged.
func DecodeKeysDeltaInto(dst []cell.Key, b []byte) ([]cell.Key, error) {
	r := getReader(b)
	defer putReader(r)
	m, err := r.byte1()
	if err != nil || m != magic {
		return dst, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := r.byte1()
	if err != nil || v != versionDelta {
		return dst, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := r.uvarint()
	if err != nil || count > maxElems {
		return dst, ErrCorrupt
	}
	out := dst
	if need := capHint(count); cap(out)-len(out) < need {
		grown := make([]cell.Key, len(out), len(out)+need)
		copy(grown, out)
		out = grown
	}
	prevGh := ""
	var prevLabel temporal.Label
	for i := uint64(0); i < count; i++ {
		shared, err := r.uvarint()
		if err != nil || shared > uint64(len(prevGh)) {
			return dst, fmt.Errorf("%w: shared prefix %d exceeds previous geohash", ErrCorrupt, shared)
		}
		suffix, err := r.str()
		if err != nil {
			return dst, err
		}
		gh := prevGh[:shared] + suffix
		flag, err := r.byte1()
		if err != nil {
			return dst, err
		}
		var label temporal.Label
		switch flag {
		case 1:
			if i == 0 {
				return dst, fmt.Errorf("%w: repeat-label flag on first key", ErrCorrupt)
			}
			label = prevLabel
		case 0:
			res, err := r.byte1()
			if err != nil {
				return dst, err
			}
			text, err := r.internStr()
			if err != nil {
				return dst, err
			}
			label, err = r.label(res, text)
			if err != nil {
				return dst, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		default:
			return dst, fmt.Errorf("%w: bad time flag %d", ErrCorrupt, flag)
		}
		k, err := cell.NewKey(gh, label)
		if err != nil {
			return dst, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		out = append(out, k)
		prevGh, prevLabel = gh, label
	}
	if r.pos != len(b) {
		return dst, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return out, nil
}

// KeysDeltaSize returns the exact delta-encoded length of a key list in the
// given order — what a coalesced batch request costs on the wire.
func KeysDeltaSize(keys []cell.Key) int {
	n := 2 + uvarintLen(uint64(len(keys)))
	var prev cell.Key
	for i, k := range keys {
		shared := 0
		if i > 0 {
			shared = commonPrefixLen(prev.Geohash, k.Geohash)
		}
		n += uvarintLen(uint64(shared)) + stringLen(k.Geohash[shared:]) + 1
		if !(i > 0 && k.Time == prev.Time) {
			n += 1 + stringLen(k.Time.Text)
		}
		prev = k
	}
	return n
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// capHint clamps an untrusted element count to a sane preallocation size.
func capHint(count uint64) int {
	return min(count, 4096)
}

// --- size helpers ---

func stringLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

func min(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
