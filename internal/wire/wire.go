// Package wire provides a compact, deterministic binary encoding for STASH's
// transferable payloads: cell keys and query results. The cluster transport
// is in-process, so the codec's primary jobs are (a) pricing network payloads
// accurately — clique replication charges the exact encoded size — and
// (b) giving external consumers (files, sockets) a stable format.
//
// Layout (all integers varint/uvarint, strings length-prefixed, floats
// IEEE-754 bits little-endian):
//
//	Result  := magic u8 | version u8 | count uvarint | Cell*
//	Cell    := Key | Summary
//	Key     := geohash string | timeRes u8 | timeText string
//	Summary := nattrs uvarint | (name string | count varint |
//	           sum f64 | min f64 | max f64)*
//
// Attributes are encoded in sorted order, so equal results encode to equal
// bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"stash/internal/cell"
	"stash/internal/query"
	"stash/internal/temporal"
)

const (
	magic   = 0xC5
	version = 1
)

// ErrCorrupt reports malformed or truncated input.
var ErrCorrupt = errors.New("wire: corrupt payload")

// maxElems caps decoded collection sizes so corrupt or hostile input cannot
// trigger giant allocations.
const maxElems = 16 << 20

// --- encoding ---

// AppendResult appends the encoded result to dst and returns the extended
// slice.
func AppendResult(dst []byte, r query.Result) []byte {
	dst = append(dst, magic, version)
	dst = binary.AppendUvarint(dst, uint64(len(r.Cells)))
	for k, s := range r.Cells {
		dst = appendKey(dst, k)
		dst = appendSummary(dst, s)
	}
	return dst
}

// EncodeResult encodes a result into a fresh buffer.
func EncodeResult(r query.Result) []byte {
	return AppendResult(make([]byte, 0, ResultSize(r)), r)
}

func appendKey(dst []byte, k cell.Key) []byte {
	dst = appendString(dst, k.Geohash)
	dst = append(dst, byte(k.Time.Res))
	return appendString(dst, k.Time.Text)
}

func appendSummary(dst []byte, s cell.Summary) []byte {
	attrs := s.Attrs()
	dst = binary.AppendUvarint(dst, uint64(len(attrs)))
	for _, a := range attrs {
		st := s.Stats[a]
		dst = appendString(dst, a)
		dst = binary.AppendVarint(dst, st.Count)
		dst = appendFloat(dst, st.Sum)
		dst = appendFloat(dst, st.Min)
		dst = appendFloat(dst, st.Max)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// ResultSize returns the exact encoded length of a result without encoding
// it — what the transport charges as payload bytes.
func ResultSize(r query.Result) int {
	n := 2 + uvarintLen(uint64(len(r.Cells)))
	for k, s := range r.Cells {
		n += stringLen(k.Geohash) + 1 + stringLen(k.Time.Text)
		n += uvarintLen(uint64(len(s.Stats)))
		for a, st := range s.Stats {
			n += stringLen(a) + varintLen(st.Count) + 24
		}
	}
	return n
}

// --- decoding ---

type reader struct {
	b   []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) {
		return nil, ErrCorrupt
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil || n > maxElems {
		return "", ErrCorrupt
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) float() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) byte1() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// DecodeResult decodes an encoded result. Cell keys are validated, so a
// decoded result is structurally safe to insert into a graph.
func DecodeResult(b []byte) (query.Result, error) {
	r := &reader{b: b}
	m, err := r.byte1()
	if err != nil || m != magic {
		return query.Result{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := r.byte1()
	if err != nil || v != version {
		return query.Result{}, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := r.uvarint()
	if err != nil || count > maxElems {
		return query.Result{}, ErrCorrupt
	}
	out := query.NewResult()
	for i := uint64(0); i < count; i++ {
		k, err := decodeKey(r)
		if err != nil {
			return query.Result{}, err
		}
		s, err := decodeSummary(r)
		if err != nil {
			return query.Result{}, err
		}
		out.Add(k, s)
	}
	if r.pos != len(b) {
		return query.Result{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.pos)
	}
	return out, nil
}

func decodeKey(r *reader) (cell.Key, error) {
	gh, err := r.str()
	if err != nil {
		return cell.Key{}, err
	}
	res, err := r.byte1()
	if err != nil {
		return cell.Key{}, err
	}
	text, err := r.str()
	if err != nil {
		return cell.Key{}, err
	}
	label, err := temporal.Parse(text, temporal.Resolution(res))
	if err != nil {
		return cell.Key{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	k, err := cell.NewKey(gh, label)
	if err != nil {
		return cell.Key{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return k, nil
}

func decodeSummary(r *reader) (cell.Summary, error) {
	n, err := r.uvarint()
	if err != nil || n > 1024 {
		return cell.Summary{}, ErrCorrupt
	}
	s := cell.NewSummary()
	for i := uint64(0); i < n; i++ {
		name, err := r.str()
		if err != nil {
			return cell.Summary{}, err
		}
		count, err := r.varint()
		if err != nil {
			return cell.Summary{}, err
		}
		sum, err := r.float()
		if err != nil {
			return cell.Summary{}, err
		}
		min, err := r.float()
		if err != nil {
			return cell.Summary{}, err
		}
		max, err := r.float()
		if err != nil {
			return cell.Summary{}, err
		}
		if count < 0 {
			return cell.Summary{}, fmt.Errorf("%w: negative count", ErrCorrupt)
		}
		s.Stats[name] = cell.Stat{Count: count, Sum: sum, Min: min, Max: max}
	}
	return s, nil
}

// --- key lists ---

// EncodeKeys encodes a key list (a fetch request payload).
func EncodeKeys(keys []cell.Key) []byte {
	dst := make([]byte, 0, KeysSize(keys))
	dst = append(dst, magic, version)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendKey(dst, k)
	}
	return dst
}

// DecodeKeys decodes a key list.
func DecodeKeys(b []byte) ([]cell.Key, error) {
	r := &reader{b: b}
	m, err := r.byte1()
	if err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := r.byte1()
	if err != nil || v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := r.uvarint()
	if err != nil || count > maxElems {
		return nil, ErrCorrupt
	}
	out := make([]cell.Key, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		k, err := decodeKey(r)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return out, nil
}

// KeysSize returns the exact encoded length of a key list.
func KeysSize(keys []cell.Key) int {
	n := 2 + uvarintLen(uint64(len(keys)))
	for _, k := range keys {
		n += stringLen(k.Geohash) + 1 + stringLen(k.Time.Text)
	}
	return n
}

// --- size helpers ---

func stringLen(s string) int { return uvarintLen(uint64(len(s))) + len(s) }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

func min(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
