// Package trace records and replays visual-exploration sessions. A trace is
// a JSON-lines file of timestamped queries — what a front-end would log —
// letting operators capture a real user's navigation once and re-drive it
// against different configurations (cache sizes, cost models, cluster
// sizes) for apples-to-apples comparisons.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/temporal"
)

// Event is one recorded query with its offset from session start and, when
// recorded from a live run, the latency observed at record time.
type Event struct {
	// OffsetMS is when the query was issued, relative to session start.
	OffsetMS int64 `json:"offsetMs"`
	// LatencyMS is the latency observed when the trace was recorded
	// (informational; replay measures its own).
	LatencyMS float64 `json:"latencyMs,omitempty"`

	MinLat      float64 `json:"minLat"`
	MaxLat      float64 `json:"maxLat"`
	MinLon      float64 `json:"minLon"`
	MaxLon      float64 `json:"maxLon"`
	Start       string  `json:"start"` // RFC 3339
	End         string  `json:"end"`   // RFC 3339
	SpatialRes  int     `json:"spatialRes"`
	TemporalRes string  `json:"temporalRes"`
}

// resolutionNames maps between temporal resolutions and their JSON names.
var resolutionNames = map[temporal.Resolution]string{
	temporal.Year:  "Year",
	temporal.Month: "Month",
	temporal.Day:   "Day",
	temporal.Hour:  "Hour",
}

// FromQuery converts a query into a trace event.
func FromQuery(q query.Query, offset time.Duration, latency time.Duration) Event {
	return Event{
		OffsetMS:    offset.Milliseconds(),
		LatencyMS:   float64(latency.Microseconds()) / 1000,
		MinLat:      q.Box.MinLat,
		MaxLat:      q.Box.MaxLat,
		MinLon:      q.Box.MinLon,
		MaxLon:      q.Box.MaxLon,
		Start:       q.Time.Start.UTC().Format(time.RFC3339),
		End:         q.Time.End.UTC().Format(time.RFC3339),
		SpatialRes:  q.SpatialRes,
		TemporalRes: resolutionNames[q.TemporalRes],
	}
}

// Query converts the event back into an executable query.
func (e Event) Query() (query.Query, error) {
	start, err := time.Parse(time.RFC3339, e.Start)
	if err != nil {
		return query.Query{}, fmt.Errorf("trace: start: %w", err)
	}
	end, err := time.Parse(time.RFC3339, e.End)
	if err != nil {
		return query.Query{}, fmt.Errorf("trace: end: %w", err)
	}
	tr, err := temporal.NewRange(start, end)
	if err != nil {
		return query.Query{}, fmt.Errorf("trace: %w", err)
	}
	var res temporal.Resolution
	found := false
	for r, name := range resolutionNames {
		if name == e.TemporalRes {
			res, found = r, true
			break
		}
	}
	if !found {
		return query.Query{}, fmt.Errorf("trace: unknown temporal resolution %q", e.TemporalRes)
	}
	q := query.Query{
		Box:         geohash.Box{MinLat: e.MinLat, MaxLat: e.MaxLat, MinLon: e.MinLon, MaxLon: e.MaxLon},
		Time:        tr,
		SpatialRes:  e.SpatialRes,
		TemporalRes: res,
	}
	if err := q.Validate(); err != nil {
		return query.Query{}, fmt.Errorf("trace: %w", err)
	}
	return q, nil
}

// Recorder appends events to a JSON-lines stream. Create with NewRecorder
// at session start; Record each query as it completes.
type Recorder struct {
	w     *bufio.Writer
	start time.Time
}

// NewRecorder starts a recording session writing to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriter(w), start: time.Now()}
}

// Record appends one query with the latency just observed for it.
func (r *Recorder) Record(q query.Query, latency time.Duration) error {
	ev := FromQuery(q, time.Since(r.start), latency)
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := r.w.Write(b); err != nil {
		return err
	}
	return r.w.WriteByte('\n')
}

// Flush writes buffered events through to the underlying writer.
func (r *Recorder) Flush() error { return r.w.Flush() }

// Read parses a JSON-lines trace.
func Read(rd io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(text, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Runner executes queries during replay.
type Runner interface {
	Query(q query.Query) (query.Result, error)
}

// ReplayStats summarizes one replay.
type ReplayStats struct {
	Queries   int
	Failed    int
	Total     time.Duration // sum of per-query latencies
	Max       time.Duration
	Latencies []time.Duration
}

// Mean returns the average per-query latency.
func (s ReplayStats) Mean() time.Duration {
	if s.Queries == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Queries)
}

// Percentile returns the p-th latency percentile (0 < p <= 100) of the
// replay, computed nearest-rank over a sorted copy of Latencies. Out-of-range
// p clamps to the valid range; an empty replay reports zero.
func (s ReplayStats) Percentile(p float64) time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.Latencies))
	copy(sorted, s.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// ErrEmptyTrace reports a replay over no events.
var ErrEmptyTrace = errors.New("trace: empty trace")

// Replay drives the events against the runner in order, measuring each
// query. With paced=true the recorded inter-query think-time is honored
// (capped at maxPause); otherwise queries run back-to-back.
func Replay(events []Event, run Runner, paced bool, maxPause time.Duration) (ReplayStats, error) {
	if len(events) == 0 {
		return ReplayStats{}, ErrEmptyTrace
	}
	var stats ReplayStats
	prevOffset := time.Duration(events[0].OffsetMS) * time.Millisecond
	for _, ev := range events {
		if paced {
			pause := time.Duration(ev.OffsetMS)*time.Millisecond - prevOffset
			if pause > maxPause {
				pause = maxPause
			}
			if pause > 0 {
				time.Sleep(pause)
			}
			prevOffset = time.Duration(ev.OffsetMS) * time.Millisecond
		}
		q, err := ev.Query()
		if err != nil {
			stats.Failed++
			continue
		}
		begin := time.Now()
		if _, err := run.Query(q); err != nil {
			stats.Failed++
			continue
		}
		lat := time.Since(begin)
		stats.Queries++
		stats.Total += lat
		stats.Latencies = append(stats.Latencies, lat)
		if lat > stats.Max {
			stats.Max = lat
		}
	}
	return stats, nil
}
