package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stash/internal/cluster"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/temporal"
)

func sampleQuery() query.Query {
	return query.Query{
		Box:         geohash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
}

func TestEventRoundTrip(t *testing.T) {
	q := sampleQuery()
	ev := FromQuery(q, 1500*time.Millisecond, 42*time.Millisecond)
	if ev.OffsetMS != 1500 || ev.LatencyMS != 42 {
		t.Errorf("event timing: %+v", ev)
	}
	back, err := ev.Query()
	if err != nil {
		t.Fatal(err)
	}
	if back.Box != q.Box || back.SpatialRes != q.SpatialRes || back.TemporalRes != q.TemporalRes {
		t.Errorf("roundtrip mismatch: %+v vs %+v", back, q)
	}
	if !back.Time.Start.Equal(q.Time.Start) || !back.Time.End.Equal(q.Time.End) {
		t.Errorf("time range mismatch")
	}
}

func TestEventRoundTripAllResolutions(t *testing.T) {
	for _, res := range []temporal.Resolution{temporal.Year, temporal.Month, temporal.Day, temporal.Hour} {
		q := sampleQuery()
		q.TemporalRes = res
		back, err := FromQuery(q, 0, 0).Query()
		if err != nil {
			t.Fatalf("%v: %v", res, err)
		}
		if back.TemporalRes != res {
			t.Errorf("resolution %v became %v", res, back.TemporalRes)
		}
	}
}

func TestEventQueryValidation(t *testing.T) {
	ev := FromQuery(sampleQuery(), 0, 0)
	bad := ev
	bad.Start = "garbage"
	if _, err := bad.Query(); err == nil {
		t.Error("bad start accepted")
	}
	bad = ev
	bad.End = "garbage"
	if _, err := bad.Query(); err == nil {
		t.Error("bad end accepted")
	}
	bad = ev
	bad.TemporalRes = "Fortnight"
	if _, err := bad.Query(); err == nil {
		t.Error("bad resolution accepted")
	}
	bad = ev
	bad.SpatialRes = 0
	if _, err := bad.Query(); err == nil {
		t.Error("invalid query accepted")
	}
	bad = ev
	bad.End = bad.Start
	if _, err := bad.Query(); err == nil {
		t.Error("empty range accepted")
	}
}

func TestRecorderAndRead(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	q := sampleQuery()
	for i := 0; i < 3; i++ {
		if err := rec.Record(q.Pan(geohash.East, 0.1*float64(i)), time.Duration(i)*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("lines = %d", lines)
	}
	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].OffsetMS < events[i-1].OffsetMS {
			t.Error("offsets not monotone")
		}
	}
}

func TestReadSkipsBlankAndRejectsGarbage(t *testing.T) {
	events, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank trace: %v %d", err, len(events))
	}
	if _, err := Read(strings.NewReader("{valid json this is not\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestReplayAgainstCluster(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 2
	cfg.PointsPerBlock = 32
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	q := sampleQuery()
	events := []Event{
		FromQuery(q, 0, 0),
		FromQuery(q.Pan(geohash.East, 0.1), 10*time.Millisecond, 0),
		FromQuery(q.Pan(geohash.East, 0.2), 20*time.Millisecond, 0),
	}
	stats, err := Replay(events, c.Client(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 3 || stats.Failed != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Mean() <= 0 || stats.Max < stats.Mean() {
		t.Errorf("latency accounting wrong: mean=%v max=%v", stats.Mean(), stats.Max)
	}
	if len(stats.Latencies) != 3 {
		t.Errorf("latencies = %d", len(stats.Latencies))
	}
}

func TestReplayPacedHonorsOffsets(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.PointsPerBlock = 16
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	q := sampleQuery()
	events := []Event{
		FromQuery(q, 0, 0),
		FromQuery(q, 30*time.Millisecond, 0),
	}
	begin := time.Now()
	if _, err := Replay(events, c.Client(), true, time.Second); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(begin); wall < 25*time.Millisecond {
		t.Errorf("paced replay finished in %v; think-time not honored", wall)
	}
	// Pauses are capped.
	events[1].OffsetMS = 60_000
	begin = time.Now()
	if _, err := Replay(events, c.Client(), true, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(begin); wall > 2*time.Second {
		t.Errorf("maxPause not applied: %v", wall)
	}
}

func TestReplayEmptyAndFailed(t *testing.T) {
	if _, err := Replay(nil, nil, false, 0); err == nil {
		t.Error("empty trace accepted")
	}
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	bad := Event{Start: "x", End: "y"}
	stats, err := Replay([]Event{bad}, c.Client(), false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || stats.Queries != 0 {
		t.Errorf("stats: %+v", stats)
	}
}

func TestReplayStatsPercentile(t *testing.T) {
	var s ReplayStats
	if got := s.Percentile(50); got != 0 {
		t.Errorf("empty stats p50 = %v, want 0", got)
	}

	// 1..100ms, shuffled order must not matter (Percentile sorts a copy).
	for _, ms := range []int{7, 3, 9, 1, 5, 10, 2, 8, 6, 4} {
		s.Latencies = append(s.Latencies, time.Duration(ms)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},    // clamps to min
		{50, 5 * time.Millisecond},   // nearest-rank: ceil(0.5*10) = 5th
		{95, 10 * time.Millisecond},  // ceil(0.95*10) = 10th
		{99, 10 * time.Millisecond},  // ceil(0.99*10) = 10th
		{100, 10 * time.Millisecond}, // clamps to max
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Percentile must not reorder the caller's slice.
	if s.Latencies[0] != 7*time.Millisecond {
		t.Errorf("Percentile mutated Latencies: %v", s.Latencies)
	}
}
