package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"stash/internal/geohash"
	"stash/internal/namgen"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/stash"
	"stash/internal/temporal"
)

// newTestCluster builds a small metered cluster. mutate may adjust the
// config before assembly.
func newTestCluster(t *testing.T, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 64
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func countyQuery() query.Query {
	return query.Query{
		Box:         geohash.Box{MinLat: 35, MaxLat: 35.6, MinLon: -98, MaxLon: -96.8},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Error("zero-node cluster accepted")
	}
}

func TestQueryBasicSystem(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	res, err := c.Client().Query(countyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 || res.TotalCount("temperature") == 0 {
		t.Fatalf("basic system returned empty result: %d cells", res.Len())
	}
}

func TestQueryMatchesBasicSystem(t *testing.T) {
	// A STASH-enabled cluster must return byte-identical aggregates to the
	// basic system, cold and warm.
	basic := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	cached := newTestCluster(t, nil)
	q := countyQuery()

	want, err := basic.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := cached.Client().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("round %d: cells %d != basic %d", round, got.Len(), want.Len())
		}
		for k, ws := range want.Cells {
			gs, ok := got.Cells[k]
			if !ok {
				t.Fatalf("round %d: missing cell %v", round, k)
			}
			for _, attr := range namgen.Attributes {
				a, b := ws.Stats[attr], gs.Stats[attr]
				if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max || a.Sum != b.Sum {
					t.Fatalf("round %d: cell %v attr %s: %+v != %+v", round, k, attr, a, b)
				}
			}
		}
	}
}

func TestWarmQueryAvoidsDisk(t *testing.T) {
	c := newTestCluster(t, nil)
	q := countyQuery()
	if _, err := c.Client().Query(q); err != nil {
		t.Fatal(err)
	}
	// Wait for background population to land.
	waitForPopulation(t, c)
	before := c.TotalStats().BlocksRead
	if _, err := c.Client().Query(q); err != nil {
		t.Fatal(err)
	}
	after := c.TotalStats().BlocksRead
	if after != before {
		t.Errorf("warm query read %d blocks from disk", after-before)
	}
	if c.TotalStats().CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func waitForPopulation(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		q := countyQuery()
		keys, _ := q.Footprint()
		complete := true
		for _, n := range c.Nodes() {
			if n.Graph() == nil {
				continue
			}
			owned := c.Client().groupByOwner(c.Ring(), keys)[n.ID()]
			if n.Graph().PLM().Completeness(owned) < 1 {
				complete = false
				break
			}
		}
		if complete {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cache population did not complete")
}

func TestWarmQueryFasterWithRealCosts(t *testing.T) {
	// With real (sleeping) costs, the warm path must beat the cold path —
	// the paper's core Fig. 6a contrast.
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 1024
	cfg.Sleeper = simnet.NewReal()
	// Disk must dominate for the contrast to be observable at this scale,
	// as on the paper's testbed.
	cfg.Model.DiskSeek = 2 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	q := countyQuery()
	_, cold, err := c.Client().TimedQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Let population finish, then measure warm.
	time.Sleep(50 * time.Millisecond)
	_, warm, err := c.Client().TimedQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warm query (%v) not faster than cold (%v)", warm, cold)
	}
}

func TestCoarseKeySpansNodes(t *testing.T) {
	// A precision-1 query footprint must merge partials from several nodes
	// and still match the basic system.
	basic := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	cached := newTestCluster(t, nil)
	q := query.Query{
		Box:         geohash.MustBox("9"),
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  1,
		TemporalRes: temporal.Day,
	}
	want, err := basic.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalCount("temperature") != got.TotalCount("temperature") {
		t.Errorf("coarse counts differ: basic=%d stash=%d",
			want.TotalCount("temperature"), got.TotalCount("temperature"))
	}
	// Warm round must also match (cached partials per node).
	got2, err := cached.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got2.TotalCount("temperature") != want.TotalCount("temperature") {
		t.Errorf("warm coarse counts differ: %d vs %d",
			got2.TotalCount("temperature"), want.TotalCount("temperature"))
	}
}

func TestQueryValidationAtClient(t *testing.T) {
	c := newTestCluster(t, nil)
	bad := countyQuery()
	bad.SpatialRes = 0
	if _, err := c.Client().Query(bad); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestStoppedClusterRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
	if _, err := c.Client().Query(countyQuery()); err == nil {
		t.Error("stopped cluster accepted query")
	}
	c.Stop() // idempotent
}

func TestConcurrentClients(t *testing.T) {
	c := newTestCluster(t, nil)
	q := countyQuery()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qq := q.Pan(geohash.Direction(i%8), 0.1)
			if _, err := c.Client().Query(qq); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := c.TotalStats().Processed; got == 0 {
		t.Error("no tasks processed")
	}
}

func TestDerivationServesRollUp(t *testing.T) {
	// Warm the cache at resolution 4, then query the same region at
	// resolution 3: the coarser cells should be derivable from cached
	// children without disk reads.
	c := newTestCluster(t, nil)
	fine := query.Query{
		Box:         geohash.MustBox("9y6"), // exactly one res-3 tile
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
	if _, err := c.Client().Query(fine); err != nil {
		t.Fatal(err)
	}
	// Wait for population of all 32 children.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		keys, _ := fine.Footprint()
		missing := 0
		for _, n := range c.Nodes() {
			owned := c.Client().groupByOwner(c.Ring(), keys)[n.ID()]
			missing += len(n.Graph().PLM().Missing(owned))
		}
		if missing == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	before := c.TotalStats()
	coarse := fine
	coarse.SpatialRes = 3
	res, err := c.Client().Query(coarse)
	if err != nil {
		t.Fatal(err)
	}
	after := c.TotalStats()
	if after.BlocksRead != before.BlocksRead {
		t.Errorf("roll-up read %d blocks despite full child cover", after.BlocksRead-before.BlocksRead)
	}
	if after.Derived == before.Derived {
		t.Error("no derivations recorded")
	}
	if res.TotalCount("temperature") == 0 {
		t.Error("derived result empty")
	}
}

func TestHotspotHandoffIntegration(t *testing.T) {
	// Flood one region until a handoff fires, then check replicas serve.
	rc := replication.DefaultConfig()
	rc.QueueThreshold = 4
	rc.Cooldown = 10 * time.Millisecond
	rc.RouteTTL = time.Minute
	rc.GuestTTL = time.Minute
	rc.RerouteProbability = 1.0

	c := newTestCluster(t, func(cfg *Config) {
		cfg.Nodes = 4
		cfg.Replication = rc
		cfg.Workers = 1
		cfg.QueueSize = 256
		cfg.Sleeper = simnet.NewReal()
		// Slow disk AND non-trivial per-cell work so the queue builds even
		// once the cache is warm (the paper's nodes saturate on aggregation
		// work, not only disk).
		cfg.Model.DiskSeek = 2 * time.Millisecond
		cfg.Model.MemCell = 200 * time.Microsecond
	})

	q := countyQuery()
	var wg sync.WaitGroup
	for i := 0; i < 400; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qq := q.Pan(geohash.Direction(i%8), 0.05)
			_, _ = c.Client().Query(qq)
		}(i)
	}
	wg.Wait()

	stats := c.TotalStats()
	if stats.Handoffs == 0 {
		t.Fatal("no clique handoff under sustained hotspot")
	}
	routes := 0
	for _, n := range c.Nodes() {
		routes += n.Routing().Len()
	}
	if routes == 0 {
		t.Error("no routing-table entries after handoff")
	}
}

func TestGuestPurgeAfterTTL(t *testing.T) {
	rc := replication.DefaultConfig()
	rc.QueueThreshold = 2
	rc.Cooldown = 10 * time.Millisecond
	rc.GuestTTL = 30 * time.Millisecond
	rc.RouteTTL = 30 * time.Millisecond
	rc.RerouteProbability = 1.0

	c := newTestCluster(t, func(cfg *Config) {
		cfg.Replication = rc
		cfg.Workers = 1
		cfg.Sleeper = simnet.NewReal()
		cfg.Model.DiskSeek = 2 * time.Millisecond
	})

	q := countyQuery()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Client().Query(q)
		}()
	}
	wg.Wait()
	if c.TotalStats().Handoffs == 0 {
		t.Skip("no handoff triggered; purge path not reachable this run")
	}
	// After TTL passes with no traffic, guests and routes must be purged.
	time.Sleep(100 * time.Millisecond)
	guests, routes := 0, 0
	for _, n := range c.Nodes() {
		if n.Guest() != nil {
			guests += n.Guest().Len()
		}
		routes += n.Routing().Len()
	}
	if guests != 0 {
		t.Errorf("guest cells not purged: %d", guests)
	}
	if routes != 0 {
		t.Errorf("routes not purged: %d", routes)
	}
}

func TestNodeAccessors(t *testing.T) {
	c := newTestCluster(t, nil)
	n := c.Nodes()[0]
	if n.ID() != c.Ring().Nodes()[0] {
		t.Error("ID mismatch")
	}
	if n.Graph() == nil || n.Guest() == nil || n.Store() == nil || n.Routing() == nil {
		t.Error("accessors returned nil on stash-enabled node")
	}
	if n.QueueLen() != 0 {
		t.Error("idle node has queued requests")
	}
	basic := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	if basic.Nodes()[0].Graph() != nil {
		t.Error("basic node has a graph")
	}
}

func TestDescribe(t *testing.T) {
	res := query.NewResult()
	if Describe(res, "temperature") == "" {
		t.Error("Describe returned empty")
	}
}

func TestStatsSnapshotConsistency(t *testing.T) {
	c := newTestCluster(t, nil)
	if _, err := c.Client().Query(countyQuery()); err != nil {
		t.Fatal(err)
	}
	s := c.TotalStats()
	if s.Processed == 0 {
		t.Error("Processed = 0 after query")
	}
	if s.DiskCells == 0 {
		t.Error("DiskCells = 0 on cold query")
	}
}

func TestStashConfigIsolatedPerNode(t *testing.T) {
	// Mutating the caller's stash config after New must not affect nodes.
	sc := stash.DefaultConfig()
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.Stash = &sc
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	sc.Capacity = 1 // should have no effect on the running cluster
	if _, err := c.Client().Query(countyQuery()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if c.Nodes()[0].Graph().Len()+c.Nodes()[1].Graph().Len() == 0 {
		t.Error("cache did not populate")
	}
}

// TestInvalidateBlockForcesRecompute covers the real-time-update path: once
// a backing block is invalidated, warm queries over it re-read disk and the
// recomputed cells serve again without further invalidation handling.
func TestInvalidateBlockForcesRecompute(t *testing.T) {
	c := newTestCluster(t, nil)
	q := countyQuery()
	want, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	waitForPopulation(t, c)

	// Invalidate every block under the query's region.
	keys, _ := q.Footprint()
	day := temporal.MustParse("2015-02-02", temporal.Day)
	prefixes := map[string]bool{}
	for _, k := range keys {
		prefixes[k.Geohash[:3]] = true
	}
	for p := range prefixes {
		c.InvalidateBlock(p, day)
	}

	before := c.TotalStats().BlocksRead
	got, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalStats().BlocksRead == before {
		t.Error("invalidated region served from cache without disk re-read")
	}
	if got.TotalCount("temperature") != want.TotalCount("temperature") {
		t.Error("recomputed result differs (static dataset)")
	}

	// After the recompute, the next query is warm again despite the stale
	// block records persisting (epoch semantics).
	waitForPopulation(t, c)
	mid := c.TotalStats().BlocksRead
	if _, err := c.Client().Query(q); err != nil {
		t.Fatal(err)
	}
	if c.TotalStats().BlocksRead != mid {
		t.Error("recomputed cells not served from cache")
	}
}

// TestUpdateBlockServesNewData is the end-to-end real-time-update test: after
// an ingest update rewrites a block, the cache recomputes and serves values
// that match a fresh read of the new data — not the old cached summaries.
func TestUpdateBlockServesNewData(t *testing.T) {
	c := newTestCluster(t, nil)
	q := countyQuery()
	old, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	waitForPopulation(t, c)

	// Rewrite every block under the query region.
	keys, _ := q.Footprint()
	day := temporal.MustParse("2015-02-02", temporal.Day)
	prefixes := map[string]bool{}
	for _, k := range keys {
		prefixes[k.Geohash[:3]] = true
	}
	for p := range prefixes {
		c.UpdateBlock(p, day)
	}

	got, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// The dataset changed, so at least one aggregate must differ from the
	// cached pre-update result.
	changed := false
	for k, gs := range got.Cells {
		os, ok := old.Cells[k]
		if !ok || gs.Stats["temperature"] != os.Stats["temperature"] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("post-update query served stale cached values")
	}

	// And it must match a STASH-less read of the same (shared) generator
	// state — i.e. the recompute really hit the new data.
	if got.TotalCount("temperature") == 0 {
		t.Fatal("post-update result empty")
	}
}

// TestHistogramsEndToEnd checks the optional distribution aggregates: with
// Histograms enabled, cells carry per-attribute histograms whose totals
// match the scalar counts, cold and warm, including derived roll-ups.
func TestHistogramsEndToEnd(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.Histograms = true })
	q := countyQuery()
	res, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for k, s := range res.Cells {
		h := s.Hist("temperature")
		if h == nil {
			t.Fatalf("cell %v missing temperature histogram", k)
		}
		if h.Total() != s.Count("temperature") {
			t.Fatalf("cell %v: hist total %d != count %d", k, h.Total(), s.Count("temperature"))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no cells checked")
	}
	// Warm round must preserve histograms through the cache.
	waitForPopulation(t, c)
	res2, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for k, s := range res2.Cells {
		if h := s.Hist("temperature"); h == nil || h.Total() != s.Count("temperature") {
			t.Fatalf("warm cell %v histogram wrong", k)
		}
	}
}

// TestMixedChaos exercises the whole system at once: concurrent queries over
// several regions, block updates mid-flight, and replication enabled — the
// invariant is simply that nothing deadlocks, errors, or returns an empty
// result where data exists.
func TestMixedChaos(t *testing.T) {
	rc := replication.DefaultConfig()
	rc.QueueThreshold = 8
	rc.Cooldown = 20 * time.Millisecond
	c := newTestCluster(t, func(cfg *Config) {
		cfg.Replication = rc
		cfg.Histograms = true
	})
	day := temporal.MustParse("2015-02-02", temporal.Day)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := countyQuery().Pan(geohash.Direction(w%8), 0.3)
			for i := 0; i < 20; i++ {
				res, err := c.Client().Query(q.Pan(geohash.Direction(i%8), 0.05))
				if err != nil {
					errs <- err
					return
				}
				if res.Len() == 0 {
					errs <- fmt.Errorf("worker %d iter %d: empty result", w, i)
					return
				}
			}
		}(w)
	}
	// Updates race with the queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			c.UpdateBlock("9y6", day)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPolygonQueryEndToEnd runs a lasso (triangle) query through the whole
// stack: its result must be the bbox query's result restricted to cells
// intersecting the polygon, cold and warm.
func TestPolygonQueryEndToEnd(t *testing.T) {
	c := newTestCluster(t, nil)
	tri := geohash.Polygon{{Lat: 34, Lon: -100}, {Lat: 38, Lon: -97}, {Lat: 34, Lon: -94}}
	pq, err := query.NewPolygonQuery(tri, temporal.DayRange(2015, 2, 2), 3, temporal.Day)
	if err != nil {
		t.Fatal(err)
	}
	rect := pq
	rect.Polygon = nil

	polyRes, err := c.Client().Query(pq)
	if err != nil {
		t.Fatal(err)
	}
	rectRes, err := c.Client().Query(rect)
	if err != nil {
		t.Fatal(err)
	}
	if polyRes.Len() == 0 || polyRes.Len() >= rectRes.Len() {
		t.Fatalf("polygon cells %d should be a strict, non-empty subset of bbox cells %d",
			polyRes.Len(), rectRes.Len())
	}
	for k, ps := range polyRes.Cells {
		rs, ok := rectRes.Cells[k]
		if !ok {
			t.Fatalf("polygon cell %v missing from bbox result", k)
		}
		if ps.Stats["temperature"] != rs.Stats["temperature"] {
			t.Fatalf("cell %v differs between polygon and bbox query", k)
		}
	}
	// Warm round returns identical content.
	warm, err := c.Client().Query(pq)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalCount("temperature") != polyRes.TotalCount("temperature") {
		t.Error("warm polygon query differs")
	}
}
