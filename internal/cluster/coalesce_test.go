package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stash/internal/cell"
	"stash/internal/query"
)

// ownerShare picks the node owning the largest share of the county query's
// footprint, plus that share's keys — a realistic single-owner batch.
func ownerShare(t *testing.T, c *Cluster) (*Node, []cell.Key) {
	t.Helper()
	keys, err := countyQuery().Footprint()
	if err != nil {
		t.Fatal(err)
	}
	var best *Node
	var bestKeys []cell.Key
	for id, ks := range c.Client().GroupByOwner(keys) {
		if len(ks) > len(bestKeys) {
			best, bestKeys = c.node(id), ks
		}
	}
	if best == nil {
		t.Fatal("no owner share")
	}
	return best, bestKeys
}

func TestCoalesceWindowZeroPreservesDirectPath(t *testing.T) {
	c := newTestCluster(t, nil)
	if c.coalescer != nil {
		t.Fatal("zero CoalesceWindow must not construct a coalescer")
	}
	// And the default config leaves serve-side singleflight off too.
	if c.cfg.ServeSingleflight {
		t.Fatal("ServeSingleflight on by default")
	}
}

func TestCoalesceMergesConcurrentFetches(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.CoalesceWindow = 2 * time.Millisecond })
	if c.coalescer == nil {
		t.Fatal("coalescer not constructed")
	}
	n, keys := ownerShare(t, c)
	want, err := n.Submit(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	results := make([]query.Result, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.coalescer.fetch(context.Background(), n, keys)
		}(i)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i].Len() != want.Len() {
			t.Errorf("waiter %d: %d cells, want %d", i, results[i].Len(), want.Len())
		}
		if got, exp := results[i].TotalCount("temperature"), want.TotalCount("temperature"); got != exp {
			t.Errorf("waiter %d: count %d, want %d", i, got, exp)
		}
	}
	c.coalescer.mu.Lock()
	pending := len(c.coalescer.pending)
	c.coalescer.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d batches leaked in the pending table", pending)
	}
}

func TestCoalesceDemuxProjectsEachCallersKeys(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.CoalesceWindow = 5 * time.Millisecond })
	n, keys := ownerShare(t, c)
	if len(keys) < 2 {
		t.Skip("share too small to split")
	}
	sub := keys[:1]
	var wg sync.WaitGroup
	var full, part query.Result
	var fullErr, partErr error
	wg.Add(2)
	go func() { defer wg.Done(); full, fullErr = c.coalescer.fetch(context.Background(), n, keys) }()
	go func() { defer wg.Done(); part, partErr = c.coalescer.fetch(context.Background(), n, sub) }()
	wg.Wait()
	if fullErr != nil || partErr != nil {
		t.Fatalf("errs: %v / %v", fullErr, partErr)
	}
	if part.Len() > len(sub) {
		t.Errorf("subset caller got %d cells for %d keys: demux leaked other callers' cells", part.Len(), len(sub))
	}
	for k, s := range part.Cells {
		if k != sub[0] {
			t.Errorf("subset caller received foreign key %v", k)
		}
		if fs, ok := full.Cells[k]; ok && fs.Stats["temperature"].Count != s.Stats["temperature"].Count {
			t.Errorf("demuxed summary diverges from batch summary for %v", k)
		}
	}
}

// TestCoalesceCancelledWaiterDoesNotPoisonBatch is the cancellation-contract
// race test (run under -race in CI): a waiter whose context has already
// expired abandons the batch, while a healthy waiter in the same admission
// window still gets the full reply.
func TestCoalesceCancelledWaiterDoesNotPoisonBatch(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.CoalesceWindow = 20 * time.Millisecond })
	n, keys := ownerShare(t, c)

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	var abandonedErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, abandonedErr = c.coalescer.fetch(dead, n, keys)
	}()

	res, err := c.coalescer.fetch(context.Background(), n, keys)
	wg.Wait()
	if !errors.Is(abandonedErr, context.Canceled) {
		t.Errorf("abandoned waiter error = %v, want context.Canceled", abandonedErr)
	}
	if err != nil {
		t.Fatalf("healthy waiter poisoned by sibling cancellation: %v", err)
	}
	if res.Len() == 0 {
		t.Error("healthy waiter got an empty result")
	}
}

func TestCoalesceAllAbandonedBatchSkipsSubmit(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.CoalesceWindow = 5 * time.Millisecond })
	n, keys := ownerShare(t, c)
	before := n.processed.Load()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.coalescer.fetch(dead, n, keys); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Let the admission window flush the now-empty batch.
	time.Sleep(50 * time.Millisecond)
	if got := n.processed.Load(); got != before {
		t.Errorf("all-abandoned batch still billed the node: processed %d -> %d", before, got)
	}
	c.coalescer.mu.Lock()
	pending := len(c.coalescer.pending)
	c.coalescer.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d batches leaked in the pending table", pending)
	}
}

func TestCoalescedClientMatchesDirect(t *testing.T) {
	// End-to-end equivalence: the same query through a coalescing cluster
	// and a plain cluster (same seed, same dataset) must agree exactly.
	plain := newTestCluster(t, nil)
	co := newTestCluster(t, func(cfg *Config) {
		cfg.CoalesceWindow = DefaultCoalesceWindow
		cfg.ServeSingleflight = true
	})
	q := countyQuery()
	want, err := plain.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := co.Client().Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() || got.TotalCount("temperature") != want.TotalCount("temperature") {
			t.Fatalf("round %d: coalesced answer diverges: %d cells/%d obs, want %d/%d",
				round, got.Len(), got.TotalCount("temperature"), want.Len(), want.TotalCount("temperature"))
		}
	}
}

// TestSingleflightStormSharesDiskScans is the serve-side storm test (run at
// -cpu=1,4 under -race in CI). Two parts:
//
//  1. A deterministic sharing proof: the test claims a cold footprint's keys
//     itself, resolves them with exactly one round of disk scans, parks a
//     storm of waiters on the held entries, and only then publishes. Every
//     waiter must receive the leader's answer and the cluster must read ZERO
//     additional blocks — no scheduler luck involved, because entries stay
//     claimed until every waiter has attached.
//  2. A concurrent client storm with singleflight on vs off, asserting the
//     answers agree. (Block counts across the two runs are scheduler- and
//     population-timing-dependent, so they are logged, not asserted; the
//     deterministic part above carries the shared-scan guarantee.)
func TestSingleflightStormSharesDiskScans(t *testing.T) {
	const storm = 16

	// Part 1: deterministic shared scan.
	c := newTestCluster(t, func(cfg *Config) { cfg.ServeSingleflight = true })
	n, keys := ownerShare(t, c)
	base := c.TotalStats().BlocksRead

	owned, entries, waits := n.sfClaim(keys)
	if len(owned) != len(keys) || waits != nil {
		t.Fatalf("cold claim: owned=%d waits=%d, want %d/0", len(owned), len(waits), len(keys))
	}
	leader := query.NewResult()
	if err := n.resolveMisses(context.Background(), owned, &leader, c.Epoch()); err != nil {
		t.Fatal(err)
	}
	blocksOne := c.TotalStats().BlocksRead - base
	if blocksOne <= 0 {
		t.Fatalf("leader resolve read no blocks (%d); footprint not cold", blocksOne)
	}

	// Park the storm. Every waiter must attach before we publish — the
	// attached counter gates the publish, so entries are guaranteed to still
	// be in the in-flight table when each waiter claims.
	var attached atomic.Int64
	results := make([]query.Result, storm)
	errs := make([]error, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, _, w := n.sfClaim(keys)
			if len(o) != 0 || len(w) != len(keys) {
				errs[i] = fmt.Errorf("waiter %d claimed %d keys, waits %d; entries were released early", i, len(o), len(w))
				attached.Add(1)
				return
			}
			attached.Add(1)
			out := query.NewResult()
			fb, err := n.sfWait(context.Background(), w, &out)
			if err == nil && len(fb) > 0 {
				err = fmt.Errorf("waiter %d got %d fallback keys from a successful leader", i, len(fb))
			}
			results[i], errs[i] = out, err
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for attached.Load() != storm {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters attached", attached.Load(), storm)
		}
		time.Sleep(100 * time.Microsecond)
	}
	n.sfPublish(owned, entries, leader, nil)
	wg.Wait()
	for i := 0; i < storm; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Len() != leader.Len() || results[i].TotalCount("temperature") != leader.TotalCount("temperature") {
			t.Fatalf("waiter %d disagrees with leader: %d cells/%d obs, want %d/%d",
				i, results[i].Len(), results[i].TotalCount("temperature"), leader.Len(), leader.TotalCount("temperature"))
		}
	}
	if total := c.TotalStats().BlocksRead - base; total != blocksOne {
		t.Errorf("storm of %d waiters read extra disk blocks: %d total, want %d (one shared scan)", storm, total, blocksOne)
	}
	n.sfMu.Lock()
	leaked := len(n.sfInflight)
	n.sfMu.Unlock()
	if leaked != 0 {
		t.Errorf("singleflight table leaked %d entries", leaked)
	}

	// Part 2: concurrent client storm, answers must agree across sf on/off.
	run := func(sf bool) (int64, query.Result) {
		t.Helper()
		c := newTestCluster(t, func(cfg *Config) { cfg.ServeSingleflight = sf })
		q := countyQuery()
		results := make([]query.Result, storm)
		errs := make([]error, storm)
		var wg sync.WaitGroup
		for i := 0; i < storm; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = c.Client().Query(q)
			}(i)
		}
		wg.Wait()
		for i := range results {
			if errs[i] != nil {
				t.Fatalf("sf=%v query %d: %v", sf, i, errs[i])
			}
			if results[i].Len() != results[0].Len() || results[i].TotalCount("temperature") != results[0].TotalCount("temperature") {
				t.Fatalf("sf=%v query %d disagrees with query 0", sf, i)
			}
		}
		return c.TotalStats().BlocksRead, results[0]
	}
	blocksOff, resOff := run(false)
	blocksOn, resOn := run(true)
	if resOn.Len() != resOff.Len() || resOn.TotalCount("temperature") != resOff.TotalCount("temperature") {
		t.Errorf("singleflight changed the answer: %d cells/%d obs vs %d/%d",
			resOn.Len(), resOn.TotalCount("temperature"), resOff.Len(), resOff.TotalCount("temperature"))
	}
	t.Logf("storm of %d: blocks off=%d on=%d", storm, blocksOff, blocksOn)
}

func TestSingleflightClaimPublishWait(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.ServeSingleflight = true })
	n, keys := ownerShare(t, c)
	k := keys[0]

	owned, entries, waits := n.sfClaim([]cell.Key{k})
	if len(owned) != 1 || waits != nil {
		t.Fatalf("first claim: owned=%d waits=%d", len(owned), len(waits))
	}
	// A second request for the same key attaches as a waiter.
	owned2, _, waits2 := n.sfClaim([]cell.Key{k})
	if len(owned2) != 0 || len(waits2) != 1 {
		t.Fatalf("second claim: owned=%d waits=%d, want 0/1", len(owned2), len(waits2))
	}
	// Duplicate keys inside one request: own once, self-wait once — resolved
	// because handleLocal publishes before waiting.
	owned3, entries3, waits3 := n.sfClaim([]cell.Key{keys[1], keys[1]})
	if len(owned3) != 1 || len(waits3) != 1 {
		t.Fatalf("dup claim: owned=%d waits=%d, want 1/1", len(owned3), len(waits3))
	}
	n.sfPublish(owned3, entries3, query.NewResult(), nil)

	res := query.NewResult()
	s := cell.NewSummary()
	s.Observe("temperature", 21.5)
	res.Add(k, s)
	n.sfPublish(owned, entries, res, nil)

	dst := query.NewResult()
	fallback, err := n.sfWait(context.Background(), waits2, &dst)
	if err != nil || len(fallback) != 0 {
		t.Fatalf("wait: fallback=%v err=%v", fallback, err)
	}
	if got := dst.Cells[k].Stats["temperature"].Count; got != 1 {
		t.Errorf("waiter did not receive the published summary (count=%d)", got)
	}
	n.sfMu.Lock()
	left := len(n.sfInflight)
	n.sfMu.Unlock()
	if left != 0 {
		t.Errorf("%d entries leaked in the in-flight table", left)
	}
}

func TestSingleflightLeaderErrorFallsBack(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.ServeSingleflight = true })
	n, keys := ownerShare(t, c)
	k := keys[0]

	owned, entries, _ := n.sfClaim([]cell.Key{k})
	_, _, waits := n.sfClaim([]cell.Key{k})
	n.sfPublish(owned, entries, query.Result{}, errors.New("leader disk fault"))

	dst := query.NewResult()
	fallback, err := n.sfWait(context.Background(), waits, &dst)
	if err != nil {
		t.Fatalf("a leader error must not become the waiter's error: %v", err)
	}
	if len(fallback) != 1 || fallback[0] != k {
		t.Fatalf("fallback = %v, want [%v]", fallback, k)
	}
	if dst.Len() != 0 {
		t.Errorf("failed leader leaked cells into the waiter result")
	}
}

func TestGroupByOwnerDedupsRepeatedKeys(t *testing.T) {
	c := newTestCluster(t, nil)
	keys, err := countyQuery().Footprint()
	if err != nil {
		t.Fatal(err)
	}
	// Triple every key: the duplicated-footprint shape overlapping viewport
	// tiles produce.
	tripled := make([]cell.Key, 0, 3*len(keys))
	for i := 0; i < 3; i++ {
		tripled = append(tripled, keys...)
	}
	once := c.Client().GroupByOwner(keys)
	thrice := c.Client().GroupByOwner(tripled)
	for id, want := range once {
		if got := thrice[id]; len(got) != len(want) {
			t.Errorf("node %v: %d keys from tripled footprint, want %d (dedup failed)", id, len(got), len(want))
		}
	}
}

// TestCoalesceKeepsHierarchyLevelsApart is the regression test for a bug the
// differential harness (internal/oracle/difftest) caught: batches were keyed
// by owner node alone, so two concurrent callers at different zoom levels —
// one session panning at res 4 while another rolls up to res 3 — merged into
// a single mixed-resolution key set, which the storage scan underneath
// rightly rejects. Batches must be keyed by (node, level): both callers
// succeed, each with its own level's answer.
func TestCoalesceKeepsHierarchyLevelsApart(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.CoalesceWindow = 5 * time.Millisecond })
	n, fineKeys := ownerShare(t, c)

	// Keys for the same node one level up: roll the fine keys' geohashes up
	// and keep only those this node owns.
	coarseSet := map[cell.Key]struct{}{}
	for _, k := range fineKeys {
		ck := cell.Key{Geohash: k.Geohash[:len(k.Geohash)-1], Time: k.Time}
		coarseSet[ck] = struct{}{}
	}
	var coarseKeys []cell.Key
	for ck := range coarseSet {
		for id, ks := range c.Client().GroupByOwner([]cell.Key{ck}) {
			if id == n.id {
				coarseKeys = append(coarseKeys, ks...)
			}
		}
	}
	if len(coarseKeys) == 0 {
		t.Skip("no coarse key lands on the same owner at this cluster size")
	}

	wantFine, err := n.Submit(context.Background(), fineKeys)
	if err != nil {
		t.Fatal(err)
	}
	wantCoarse, err := n.Submit(context.Background(), coarseKeys)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var fineRes, coarseRes query.Result
	var fineErr, coarseErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		fineRes, fineErr = c.coalescer.fetch(context.Background(), n, fineKeys)
	}()
	go func() {
		defer wg.Done()
		coarseRes, coarseErr = c.coalescer.fetch(context.Background(), n, coarseKeys)
	}()
	wg.Wait()

	if fineErr != nil || coarseErr != nil {
		t.Fatalf("mixed-level coalesced fetches failed: fine=%v coarse=%v", fineErr, coarseErr)
	}
	if fineRes.Len() != wantFine.Len() || fineRes.TotalCount("temperature") != wantFine.TotalCount("temperature") {
		t.Errorf("fine level: %d cells / count %d, want %d / %d",
			fineRes.Len(), fineRes.TotalCount("temperature"), wantFine.Len(), wantFine.TotalCount("temperature"))
	}
	if coarseRes.Len() != wantCoarse.Len() || coarseRes.TotalCount("temperature") != wantCoarse.TotalCount("temperature") {
		t.Errorf("coarse level: %d cells / count %d, want %d / %d",
			coarseRes.Len(), coarseRes.TotalCount("temperature"), wantCoarse.Len(), wantCoarse.TotalCount("temperature"))
	}
}
