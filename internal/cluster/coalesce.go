package cluster

// Client-side request coalescing: the visual-exploration workloads the paper
// targets are dominated by overlapping viewports, so at high concurrency
// many coordinator shares are bound for the same owner node — often carrying
// the very same cell keys — within microseconds of each other. The coalescer
// holds the first fetch for a small admission window, merges every share
// that arrives for the same node in that window into one batched wire
// message with cross-caller key dedup, and demultiplexes the single reply to
// each waiter. One NetHop is paid per batch instead of per caller, and the
// deduplicated, prefix-delta-encoded key set shrinks NetByte.
//
// Cancellation contract: a waiter whose context expires abandons the batch
// without poisoning it — the batch keeps running for the remaining waiters
// under its own context, which is cancelled only when the LAST waiter has
// departed (so an all-abandoned batch against a dead node cannot leak its
// goroutine past the waiters' deadlines).

import (
	"context"
	"sync"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/temporal"
	"stash/internal/wire"
)

// coalescer merges concurrent same-owner fetches that arrive within one
// admission window into a single batched node request.
//
// Batches are keyed by (node, hierarchy level), not node alone: every fetch
// carries keys of a single level (a query footprint is one level by
// construction), and the storage scan underneath rejects mixed-resolution
// key sets — merging two callers at different zoom levels into one wire
// message would turn two valid requests into one invalid one.
type coalescer struct {
	window time.Duration

	mu      sync.Mutex
	pending map[batchKey]*coalesceBatch
}

// batchKey identifies one admission window: one owner node at one hierarchy
// level, routed under one membership epoch. The epoch component keeps shares
// planned against different views out of the same wire message — a mixed
// batch would make the node's epoch validation bounce every rider, including
// the correctly-routed ones.
type batchKey struct {
	id    dht.NodeID
	sres  int
	tres  temporal.Resolution
	epoch uint64
}

func batchKeyFor(id dht.NodeID, epoch uint64, keys []cell.Key) batchKey {
	bk := batchKey{id: id, epoch: epoch}
	if len(keys) > 0 {
		bk.sres = keys[0].SpatialRes()
		bk.tres = keys[0].TemporalRes()
	}
	return bk
}

// coalesceBatch is one admission window's worth of fetches for one node.
// Mutable fields are guarded by the coalescer mutex until flush removes the
// batch from pending; after that only the flusher touches them, and waiters
// read res/err strictly after done closes.
type coalesceBatch struct {
	node *Node

	keys     []cell.Key            // deduplicated batch key set, admission order
	keySet   map[cell.Key]struct{} // membership for cross-caller dedup
	joined   int                   // waiters that ever joined (metrics)
	active   int                   // waiters still attached (cancellation refcount)
	rawKeys  int                   // keys requested including duplicates
	rawBytes int                   // sum of per-waiter uncoalesced request encodings
	flushed  bool                  // removed from pending; no more joiners

	ctx    context.Context    // batch-lifetime context, detached from any waiter
	cancel context.CancelFunc // fired when the last waiter departs
	done   chan struct{}      // closed when res/err are final
	res    query.Result
	err    error

	// prof accumulates the batch's node-side work when at least one joining
	// waiter is profiled (the batch ctx is detached, so the waiters' profiles
	// cannot ride along directly). After done closes, each profiled waiter
	// merges it — shared work is attributed to every query that rode the
	// batch, mirroring how each would have paid for it alone.
	prof *obs.QueryProfile
}

func newCoalescer(window time.Duration) *coalescer {
	return &coalescer{window: window, pending: map[batchKey]*coalesceBatch{}}
}

// fetch joins (or opens) the admission window for n's batch, waits for the
// batched reply, and returns the slice of it this caller asked for. A
// caller whose ctx expires first gets ctx.Err() while the batch runs on for
// the other waiters.
func (co *coalescer) fetch(ctx context.Context, n *Node, keys []cell.Key) (query.Result, error) {
	epoch, _ := epochFrom(ctx) // zero for epoch-less callers, a valid key component
	bk := batchKeyFor(n.id, epoch, keys)
	co.mu.Lock()
	b := co.pending[bk]
	if b == nil {
		bctx, cancel := context.WithCancel(context.Background())
		b = &coalesceBatch{
			node:   n,
			keySet: make(map[cell.Key]struct{}, len(keys)),
			ctx:    bctx,
			cancel: cancel,
			done:   make(chan struct{}),
		}
		co.pending[bk] = b
		time.AfterFunc(co.window, func() { co.flush(bk, b) })
	}
	for _, k := range keys {
		if _, dup := b.keySet[k]; !dup {
			b.keySet[k] = struct{}{}
			b.keys = append(b.keys, k)
		}
	}
	b.joined++
	b.active++
	b.rawKeys += len(keys)
	b.rawBytes += wire.KeysSize(keys)
	callerProf := obs.ProfileFromContext(ctx)
	if callerProf != nil && b.prof == nil {
		b.prof = obs.NewProfile()
	}
	co.mu.Unlock()

	select {
	case <-b.done:
		co.release(b)
		if callerProf != nil && b.err == nil {
			// b's fields are final once done closes (the close is the
			// happens-before edge).
			callerProf.AddCoalesce(len(b.keys), b.rawKeys-len(b.keys))
			callerProf.Merge(b.prof)
		}
		if b.err != nil {
			return query.Result{}, b.err
		}
		// Demux: project the caller's keys out of the batch result into a
		// pooled Result (the coordinator's fan-in recycles it after the
		// merge). The summaries are shared with the batch result and the
		// other waiters — safe, because result summaries are immutable by
		// convention and query.Result.Add clones before any merge.
		out := query.GetResult()
		for _, k := range keys {
			if s, ok := b.res.Cells[k]; ok {
				out.Add(k, s)
			}
		}
		return out, nil
	case <-ctx.Done():
		co.release(b)
		return query.Result{}, ctx.Err()
	}
}

// release detaches one waiter; the last one out cancels the batch context.
// Cancellation waits for the flush barrier so that an early-abandoned batch
// cannot poison waiters that join later in the same window.
func (co *coalescer) release(b *coalesceBatch) {
	co.mu.Lock()
	b.active--
	last := b.active == 0 && b.flushed
	co.mu.Unlock()
	if last {
		b.cancel()
	}
}

// flush closes the admission window: it removes the batch from pending (no
// more joiners), prices and records the coalescing win, issues the single
// batched node request under the batch context, and publishes the reply.
func (co *coalescer) flush(bk batchKey, b *coalesceBatch) {
	co.mu.Lock()
	if co.pending[bk] == b {
		delete(co.pending, bk)
	}
	b.flushed = true
	abandoned := b.active == 0
	joined, rawKeys, rawBytes := b.joined, b.rawKeys, b.rawBytes
	keys := b.keys
	prof := b.prof
	co.mu.Unlock()

	if abandoned {
		// Every waiter gave up inside the window; don't bill the node for a
		// request nobody wants.
		b.err = context.Canceled
		close(b.done)
		b.cancel()
		return
	}

	// Deterministic batch order; sorted keys also maximize the shared
	// prefixes the delta key encoding compresses away.
	wire.SortKeys(keys)

	mCoalesceBatches.Inc()
	mCoalesceBatchKeys.Observe(float64(len(keys)))
	mCoalesceBatchWaiters.Observe(float64(joined))
	if d := rawKeys - len(keys); d > 0 {
		mCoalesceDedupKeys.Add(int64(d))
	}
	if joined > 1 {
		mCoalesceHopsSaved.Add(int64(joined - 1))
	}
	// Encode the batched key set once (pooled buffer, prefix-delta form) to
	// price the message; the savings counter is the difference against what
	// each waiter's uncoalesced request would have encoded to.
	buf := wire.AppendKeysDelta(wire.GetBuf(), keys)
	if saved := rawBytes - len(buf); saved > 0 {
		mCoalesceBytesSaved.Add(int64(saved))
	}
	wire.PutBuf(buf)

	sctx := b.ctx
	if prof != nil {
		sctx = obs.ContextWithProfile(sctx, prof)
	}
	if bk.epoch != 0 {
		// The batch context is detached from the waiters, so the routing
		// epoch they shared must be re-attached for node-side validation.
		sctx = withEpoch(sctx, bk.epoch)
	}
	b.res, b.err = b.node.Submit(sctx, keys)
	close(b.done)
}
