package cluster

import (
	"context"
	"testing"

	"stash/internal/obs"
)

// collectNames walks a span tree depth-first, counting span names.
func collectNames(nodes []*obs.SpanNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		collectNames(n.Children, into)
	}
}

// findSpan returns the first span with the given name, searching depth-first.
func findSpan(nodes []*obs.SpanNode, name string) *obs.SpanNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if f := findSpan(n.Children, name); f != nil {
			return f
		}
	}
	return nil
}

func TestQuerySpanParenting(t *testing.T) {
	// The full traced chain for one query:
	//
	//	query → footprint
	//	      → fanout → share → node.request → node.serve → graph.get
	//	      → merge
	//
	// with disk.scan under node.serve on a cold cache.
	c := newTestCluster(t, nil)
	ctx, tr := obs.NewTrace(context.Background())
	if _, err := c.Client().QueryContext(ctx, countyQuery()); err != nil {
		t.Fatal(err)
	}

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "query" {
		t.Fatalf("root span %q, want query", root.Name)
	}

	// Stage spans are direct children of the root, in execution order.
	var stages []string
	for _, c := range root.Children {
		stages = append(stages, c.Name)
	}
	want := []string{"footprint", "fanout", "merge"}
	if len(stages) != len(want) {
		t.Fatalf("root children %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("root children %v, want %v", stages, want)
		}
	}

	// Shares hang under fanout, and each share's request chain nests below it.
	fanout := root.Children[1]
	if len(fanout.Children) == 0 {
		t.Fatal("fanout span has no share children")
	}
	for _, sh := range fanout.Children {
		if sh.Name != "share" {
			t.Fatalf("fanout child %q, want share", sh.Name)
		}
		req := findSpan(sh.Children, "node.request")
		if req == nil {
			t.Fatalf("share span has no node.request child: %+v", sh)
		}
		if findSpan(req.Children, "node.serve") == nil {
			t.Fatalf("node.request span has no node.serve child: %+v", req)
		}
	}

	// The cold query touches the graph and (via derivation misses) the disk.
	counts := map[string]int{}
	collectNames(roots, counts)
	if counts["graph.get"] == 0 {
		t.Error("no graph.get span recorded")
	}
	if counts["disk.scan"] == 0 {
		t.Error("cold query recorded no disk.scan span")
	}
	if counts["share"] != len(fanout.Children) {
		t.Errorf("share spans outside fanout: %d total, %d under fanout",
			counts["share"], len(fanout.Children))
	}
}

func TestQuerySpanParentingResilient(t *testing.T) {
	// The resilient ladder opens the same stage shape.
	c := newTestCluster(t, func(cfg *Config) {
		rc := DefaultResilienceConfig()
		cfg.Resilience = rc
	})
	ctx, tr := obs.NewTrace(context.Background())
	if _, err := c.Client().QueryContext(ctx, countyQuery()); err != nil {
		t.Fatal(err)
	}
	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "query" {
		t.Fatalf("unexpected roots: %+v", roots)
	}
	counts := map[string]int{}
	collectNames(roots, counts)
	for _, name := range []string{"footprint", "fanout", "merge", "share", "node.request"} {
		if counts[name] == 0 {
			t.Errorf("resilient query recorded no %s span (counts %v)", name, counts)
		}
	}
}
