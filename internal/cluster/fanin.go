package cluster

// Parallel tournament fan-in for the coordinator's reply merge. The serial
// coordinator folded node replies one at a time after the fan-out barrier —
// O(k) merge work on one goroutine for k owner shares. The fanIn merges
// replies PAIRWISE AS THEY LAND, on the reply goroutines themselves: each
// arriving partial either parks (no partner waiting) or grabs the parked
// partner and merges with it, repeating until it parks or everything folded.
// With replies arriving concurrently this is a tournament tree — merge
// latency O(log k) in the share count — and the merges run on the already-
// running reply goroutines, bounded by a small semaphore so a huge fan-out
// cannot stampede the CPU.
//
// Correctness rests on the same algebra the serial loop used: Summary.Merge
// is commutative and associative (pinned by the difftest metamorphic suite),
// so the tournament's nondeterministic merge order changes only float
// summation order, which the oracle compares within SumEpsilon.
//
// Partials accumulate in pooled query.ColumnarResult arenas, so the whole
// merge allocates only on first use of a pool carcass; finish() materializes
// the single surviving partial into a plain Result and releases the arena.

import (
	"sync"

	"stash/internal/query"
)

// defaultFanInWorkers bounds concurrent pairwise merges when the cluster
// config leaves FanInWorkers at zero. Merges are memory-bound; a handful of
// lanes saturates the win.
const defaultFanInWorkers = 4

// fanInPartial is one undefeated tournament entrant: an accumulated partial
// and the height of the merge tree beneath it.
type fanInPartial struct {
	res   *query.ColumnarResult
	depth int
}

// fanIn accumulates share results into one merged Result. add() may be
// called concurrently from reply goroutines; finish()/discard() must be
// called exactly once, after all add() calls completed (the caller's
// WaitGroup barrier provides the happens-before edge).
type fanIn struct {
	sem    chan struct{} // bounds concurrent pairwise merges
	serial bool          // legacy serial map-merge baseline (FanInWorkers < 0)

	mu       sync.Mutex
	pending  []fanInPartial // parked entrants awaiting a partner
	legacy   []query.Result // serial mode: parts folded at finish
	parts    int
	maxDepth int
}

// newFanIn returns a fan-in sized by the cluster's FanInWorkers knob:
// 0 selects the default tournament bound, > 0 an explicit bound, < 0 the
// legacy serial merge (the benchmark baseline).
func newFanIn(workers int) *fanIn {
	if workers < 0 {
		return &fanIn{serial: true}
	}
	if workers == 0 {
		workers = defaultFanInWorkers
	}
	return &fanIn{sem: make(chan struct{}, workers)}
}

// add folds one share result into the tournament. When owned is true the
// fan-in takes ownership of res's cells map and recycles it (the summaries
// inside are shared and immutable; only the map carcass is pooled) — pass
// false for results the caller retains.
func (f *fanIn) add(res query.Result, owned bool) {
	if res.Len() == 0 {
		if owned {
			query.PutResult(res)
		}
		return
	}
	if f.serial {
		f.mu.Lock()
		f.parts++
		f.legacy = append(f.legacy, res)
		f.mu.Unlock()
		return
	}
	c := query.GetColumnar()
	c.MergeResult(res)
	if owned {
		query.PutResult(res)
	}
	p := fanInPartial{res: c, depth: 1}

	f.mu.Lock()
	f.parts++
	for {
		if len(f.pending) == 0 {
			if p.depth > f.maxDepth {
				f.maxDepth = p.depth
			}
			f.pending = append(f.pending, p)
			f.mu.Unlock()
			return
		}
		q := f.pending[len(f.pending)-1]
		f.pending = f.pending[:len(f.pending)-1]
		f.mu.Unlock()

		f.sem <- struct{}{} // merge outside the lock, boundedly parallel
		// Gather the smaller partial into the larger one.
		if q.res.Len() >= p.res.Len() {
			q.res.MergeColumnar(p.res)
			p.res.Release()
			p.res = q.res
		} else {
			p.res.MergeColumnar(q.res)
			q.res.Release()
		}
		<-f.sem
		if q.depth > p.depth {
			p.depth = q.depth
		}
		p.depth++
		f.mu.Lock()
	}
}

// finish folds any still-parked partials, records the tournament depth, and
// materializes the merged Result. Must not race add().
func (f *fanIn) finish() query.Result {
	if f.serial {
		merged := query.NewResult()
		for _, r := range f.legacy {
			merged.Merge(r)
		}
		f.legacy = nil
		// The serial fold is a degenerate left-deep tree: its height is the
		// partial count. Reporting it keeps the depth histogram comparable
		// across modes.
		f.maxDepth = f.parts
		mFanInDepth.Observe(float64(f.maxDepth))
		return merged
	}
	if len(f.pending) == 0 {
		return query.NewResult()
	}
	acc := f.pending[0]
	for _, p := range f.pending[1:] {
		acc.res.MergeColumnar(p.res)
		p.res.Release()
		if p.depth > acc.depth {
			acc.depth = p.depth
		}
		acc.depth++
	}
	f.pending = f.pending[:0]
	if acc.depth > f.maxDepth {
		f.maxDepth = acc.depth
	}
	mFanInDepth.Observe(float64(f.maxDepth))
	out := acc.res.ToResult()
	acc.res.Release()
	return out
}

// stats reports how many partials were folded and the merge-tree height.
// Valid after finish.
func (f *fanIn) stats() (parts, depth int) { return f.parts, f.maxDepth }

// discard releases every parked partial without materializing — the error
// path's counterpart to finish. Must not race add().
func (f *fanIn) discard() {
	for _, p := range f.pending {
		p.res.Release()
	}
	f.pending = f.pending[:0]
	f.legacy = nil
}

// MergeResults merges share results with the coordinator's fan-in machinery:
// workers < 0 runs the legacy serial map merge, otherwise the parallel
// tournament (0 = default worker bound). Inputs are only read. Benchmarks
// and the bench harness use this to compare the two paths head to head.
func MergeResults(parts []query.Result, workers int) query.Result {
	f := newFanIn(workers)
	if f.serial {
		for _, p := range parts {
			f.add(p, false)
		}
		return f.finish()
	}
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p query.Result) {
			defer wg.Done()
			f.add(p, false)
		}(p)
	}
	wg.Wait()
	return f.finish()
}
