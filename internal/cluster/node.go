package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/galileo"
	"stash/internal/namgen"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/stash"
	"stash/internal/wire"
)

// approxKeyBytes and approxCellBytes price message payloads for the network
// cost model: a key is a short string pair, a result cell adds four stats
// per attribute.
const (
	approxKeyBytes  = 24
	approxCellBytes = 160
)

// NodeStats is a snapshot of one node's counters.
type NodeStats struct {
	Processed      int64         // fetch tasks served
	CacheHits      int64         // cells served from the local STASH graph
	CacheMisses    int64         // cells that missed the local graph
	Derived        int64         // cells computed from cached children
	DiskCells      int64         // cells fetched from the backing store
	BlocksRead     int64         // backing-store blocks read
	Rerouted       int64         // requests redirected to a helper
	Handoffs       int64         // clique handoffs completed
	GuestServed    int64         // cells served from the guest graph
	PopulatedCells int64         // cells inserted during cache population
	PopulationTime time.Duration // wall time spent populating the cache
	QueuePeak      int64         // maximum observed queue length
}

type fetchTask struct {
	ctx   context.Context // carries the caller's trace across the queue
	keys  []cell.Key
	guest bool
	// epoch is the membership epoch at admission; serve-side population uses
	// it to discard work planned against a superseded ownership baseline.
	epoch uint64
	reply chan fetchReply
}

type fetchReply struct {
	result  query.Result
	missing []cell.Key
	err     error
}

// popTask is one unit of background cache population: the cells fetched
// from disk plus the keys that requested them (for negative caching), stamped
// with the membership epoch the fetch was admitted under.
type popTask struct {
	res       query.Result
	requested []cell.Key
	epoch     uint64
}

type distressMsg struct {
	root  cell.Key
	cells int
	reply chan bool
}

type replicateMsg struct {
	root    cell.Key
	keys    []cell.Key
	payload query.Result
	reply   chan bool
}

type guestEntry struct {
	keys     []cell.Key
	lastUsed time.Time
}

// Node is one cluster member: a Galileo shard plus (optionally) a STASH
// graph shard, a guest graph for replicated cliques, a bounded request
// queue served by worker goroutines, and the hotspot-handling state.
type Node struct {
	id      dht.NodeID
	cluster *Cluster
	store   *galileo.Store
	graph   *stash.Graph // nil in the basic system
	guest   *stash.Graph
	routing *replication.Table

	requests chan fetchTask
	control  chan any
	done     chan struct{}
	wg       sync.WaitGroup

	// Bounded cache-population pool (the paper's population thread,
	// §VIII-C2): serve workers hand fetched cells to popCh; popWG tracks
	// the pool goroutines draining it.
	popCh chan popTask
	popWG sync.WaitGroup

	// flipState is the per-node lock-free reroute RNG (splitmix64 on an
	// atomic counter), so probabilistic redirect decisions never serialize
	// the submitting goroutines.
	flipState atomic.Uint64

	// rng backs the rare handoff path's helper selection only; the hot
	// path never takes rngMu.
	rngMu sync.Mutex
	rng   *rand.Rand

	lastHandoff   atomic.Int64 // unix nanos
	handoffActive atomic.Bool

	// frozen, when non-nil, is the set of partitions mid-migration off this
	// node: population tasks touching them are filtered so extracted cells
	// cannot reappear behind the migrator's back. Written only by the
	// membership controller; read lock-free on the population path.
	frozen atomic.Pointer[map[string]bool]
	// popGate lets the membership controller drain in-flight cache inserts:
	// populateOne and the derivation insert hold the read side; the
	// controller's barrier (write lock, immediately released) happens-after
	// every insert that started before the epoch flipped.
	popGate sync.RWMutex
	// stopOnce makes stop idempotent: a node retired by Leave and a
	// subsequent Cluster.Stop may both reach it.
	stopOnce sync.Once

	guestMu      sync.Mutex
	guestCliques map[cell.Key]*guestEntry

	// hot ranks this node's most-requested cell keys (nil disables); the
	// serve path offers each task's key batch under one sketch-lock
	// acquisition.
	hot *obs.TopK[cell.Key]

	// sfInflight is the serve-side singleflight table (groupcache-style):
	// one entry per cell key currently being derived or fetched from disk,
	// so concurrent identical misses attach as waiters instead of issuing
	// their own scans. Guarded by sfMu; entries resolve via channel close.
	sfMu       sync.Mutex
	sfInflight map[cell.Key]*sfEntry

	processed      atomic.Int64
	derived        atomic.Int64
	diskCells      atomic.Int64
	rerouted       atomic.Int64
	handoffs       atomic.Int64
	guestServed    atomic.Int64
	populatedCells atomic.Int64
	populationNs   atomic.Int64
	queuePeak      atomic.Int64
}

func newNode(id dht.NodeID, c *Cluster, gen *namgen.Generator) *Node {
	n := &Node{
		id:           id,
		cluster:      c,
		store:        galileo.NewStore(c.Ring(), id, gen, c.cfg.Model, c.cfg.Sleeper),
		routing:      replication.NewTable(),
		requests:     make(chan fetchTask, c.cfg.QueueSize),
		control:      make(chan any, 64),
		done:         make(chan struct{}),
		rng:          rand.New(rand.NewSource(int64(id)*7919 + 1)),
		guestCliques: map[cell.Key]*guestEntry{},
		sfInflight:   map[cell.Key]*sfEntry{},
	}
	n.flipState.Store(uint64(id)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	if c.cfg.Histograms {
		n.store.SetHistograms(true)
	}
	if c.cfg.GalileoParallelReads > 1 {
		n.store.SetParallelReads(c.cfg.GalileoParallelReads)
	}
	if c.cfg.Stash != nil {
		sc := *c.cfg.Stash
		sc.Model = c.cfg.Model
		sc.Sleeper = c.cfg.Sleeper
		sc.Tier = "local"
		n.graph = stash.NewGraph(sc)

		gc := sc
		gc.Tier = "guest"
		if c.cfg.GuestCapacity > 0 {
			gc.Capacity = c.cfg.GuestCapacity
		}
		n.guest = stash.NewGraph(gc)
	}
	return n
}

// ID returns the node's ring identity.
func (n *Node) ID() dht.NodeID { return n.id }

// Graph returns the node's local STASH shard (nil in the basic system).
func (n *Node) Graph() *stash.Graph { return n.graph }

// Guest returns the node's guest STASH shard (nil in the basic system).
func (n *Node) Guest() *stash.Graph { return n.guest }

// Store returns the node's Galileo shard.
func (n *Node) Store() *galileo.Store { return n.store }

// Routing returns the node's replication routing table.
func (n *Node) Routing() *replication.Table { return n.routing }

// QueueLen returns the number of pending requests.
func (n *Node) QueueLen() int { return len(n.requests) }

// HotKeys returns this node's top-n most-requested cell keys (nil when
// hot-key telemetry is disabled).
func (n *Node) HotKeys(num int) []obs.TopEntry[cell.Key] { return n.hot.Top(num) }

// Stats snapshots the node's counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Processed:      n.processed.Load(),
		CacheHits:      n.graphStat(func(s stash.Stats) int64 { return s.Hits }),
		CacheMisses:    n.graphStat(func(s stash.Stats) int64 { return s.Misses }),
		Derived:        n.derived.Load(),
		DiskCells:      n.diskCells.Load(),
		BlocksRead:     n.store.BlocksRead(),
		Rerouted:       n.rerouted.Load(),
		Handoffs:       n.handoffs.Load(),
		GuestServed:    n.guestServed.Load(),
		PopulatedCells: n.populatedCells.Load(),
		PopulationTime: time.Duration(n.populationNs.Load()),
		QueuePeak:      n.queuePeak.Load(),
	}
}

func (n *Node) graphStat(f func(stash.Stats) int64) int64 {
	if n.graph == nil {
		return 0
	}
	return f(n.graph.Stats())
}

func (n *Node) start(workers int) {
	for i := 0; i < workers; i++ {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for {
				select {
				case t := <-n.requests:
					n.handle(t)
				case <-n.done:
					return
				}
			}
		}()
	}
	if n.graph != nil {
		// The bounded population pool: the paper dedicates a separate
		// population thread (§VIII-C2); we run a small fixed pool fed by a
		// bounded queue instead of one goroutine per cache miss. The queue
		// is sized like the request queue: population work is at most one
		// task per in-flight request.
		n.popCh = make(chan popTask, cap(n.requests))
		for i := 0; i < n.cluster.cfg.PopulationWorkers; i++ {
			n.popWG.Add(1)
			go func() {
				defer n.popWG.Done()
				for t := range n.popCh {
					n.populateOne(t)
				}
			}()
		}
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.controlLoop()
	}()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.janitorLoop()
	}()
}

func (n *Node) stop() {
	n.stopOnce.Do(func() {
		close(n.done)
		// Workers first: only serve workers send on popCh, so the channel can
		// be closed exactly when no worker can enqueue anymore; the population
		// pool then drains the residue and exits. Closing in the reverse order
		// would race a worker's send against close — the channel-shaped
		// re-statement of the WaitGroup misuse the chaos suite used to exercise
		// under -race.
		n.wg.Wait()
		if n.popCh != nil {
			close(n.popCh)
		}
		n.popWG.Wait()
	})
}

// Submit evaluates a cell fetch on this node on behalf of a client, honoring
// the context's deadline and cancellation. When the node has active replicas
// covering the request, the call is probabilistically redirected to the
// helper (paper §VII-C); a helper failure or missing cells fall back to the
// local path rather than failing a request the owner can serve itself.
func (n *Node) Submit(ctx context.Context, keys []cell.Key) (query.Result, error) {
	cfg := n.cluster.cfg.Replication
	// A crashed node cannot run its redirect logic: the request vanishes at
	// the transport (enqueue below), exactly like the direct path.
	crashed := false
	if fp := n.cluster.cfg.Faults; fp != nil && fp.Crashed(int(n.id)) {
		crashed = true
	}
	if !crashed && cfg.Enabled() && n.routing.Len() > 0 {
		if helper, ok := n.routing.Lookup(keys); ok && n.flip(cfg.RerouteProbability) {
			// A helper that has since left the cluster is simply skipped —
			// the janitor purges its routes at the next epoch change.
			if hn := n.cluster.node(helper); hn != nil {
				n.rerouted.Add(1)
				mNodeRedirects.Inc()
				obs.ProfileFromContext(ctx).AddReroute()
				rep, err := hn.enqueue(ctx, keys, true)
				switch {
				case err != nil:
					// Helper unreachable; serve locally below.
				case len(rep.missing) == 0:
					return rep.result, nil
				default:
					local, err := n.enqueue(ctx, rep.missing, false)
					if err != nil {
						return query.Result{}, err
					}
					rep.result.Merge(local.result)
					return rep.result, nil
				}
			}
		}
	}
	rep, err := n.enqueue(ctx, keys, false)
	if err != nil {
		return query.Result{}, err
	}
	return rep.result, nil
}

// FetchGuest serves keys purely from this node's guest graph on behalf of
// the coordinator's failover path: cells not replicated here come back as
// missing, never touching the (possibly dead) owner.
func (n *Node) FetchGuest(ctx context.Context, keys []cell.Key) (query.Result, []cell.Key, error) {
	rep, err := n.enqueue(ctx, keys, true)
	return rep.result, rep.missing, err
}

// enqueue pushes a task through the node's request queue and waits for the
// worker's reply. The caller pays the request and response network costs,
// so client-perceived latency includes both directions. The fault plan is
// consulted here — the transport boundary — so every failure mode looks to
// the caller exactly like its real-world counterpart: a rejection is
// instant, a crash or dropped reply is silence until the context deadline,
// a pause is added latency.
func (n *Node) enqueue(ctx context.Context, keys []cell.Key, guest bool) (fetchReply, error) {
	c := n.cluster
	ctx, sp := obs.StartSpan(ctx, "node.request")
	sp.SetAttr("node", n.id.String())
	if guest {
		sp.SetAttr("guest", "true")
	}
	defer sp.End()
	prof := obs.ProfileFromContext(ctx)
	if prof != nil {
		prof.AddNode(n.id.String(), len(keys))
		prof.AddWireBytes(len(keys) * approxKeyBytes)
	}
	// Membership-epoch validation at admission: a request routed against a
	// superseded view may have the wrong owner grouping, so it bounces with a
	// retriable not-owner error and the coordinator re-plans on a fresh view.
	// Requests without a stamped epoch (direct node access, guest reroutes,
	// tests) skip the check.
	eAdmit := c.Epoch()
	if ec, ok := epochFrom(ctx); ok && ec != eAdmit {
		mNotOwner.Inc()
		return fetchReply{}, fmt.Errorf("%v: %w", n.id, ErrNotOwner{RequestEpoch: ec, Epoch: eAdmit})
	}
	if fp := c.cfg.Faults; fp != nil {
		id := int(n.id)
		if fp.Rejecting(id) {
			mFireReject.Inc()
			return fetchReply{}, fmt.Errorf("%v: %w", n.id, ErrRejected)
		}
		if fp.Erroring(id) {
			mFireError.Inc()
			return fetchReply{}, fmt.Errorf("%v: %w", n.id, ErrFaulted)
		}
		if fp.Crashed(id) {
			// A crashed node never answers: the request vanishes into the
			// transport and only the caller's deadline (or cluster
			// shutdown) ends the wait.
			mFireCrash.Inc()
			select {
			case <-ctx.Done():
				return fetchReply{}, fmt.Errorf("%v: %w: %v", n.id, ErrUnavailable, ctx.Err())
			case <-n.done:
				return fetchReply{}, ErrStopped
			}
		}
		if d := fp.PauseFor(id); d > 0 {
			mFirePause.Inc()
			if err := n.sleepCtx(ctx, d); err != nil {
				return fetchReply{}, err
			}
		}
	}
	c.cfg.Sleeper.Apply(c.cfg.Model.NetCost(len(keys) * approxKeyBytes))

	t := fetchTask{ctx: ctx, keys: keys, guest: guest, epoch: eAdmit, reply: make(chan fetchReply, 1)}
	select {
	case n.requests <- t:
	case <-ctx.Done():
		return fetchReply{}, ctx.Err()
	case <-n.done:
		return fetchReply{}, ErrStopped
	}
	// CAS max loop: the previous load-then-store pair lost updates when two
	// submitters raced (both could observe a stale peak and the larger
	// value could be overwritten by the smaller).
	if q := int64(len(n.requests)); q > 0 {
		for {
			cur := n.queuePeak.Load()
			if q <= cur || n.queuePeak.CompareAndSwap(cur, q) {
				break
			}
		}
	}
	n.maybeHandoff()

	select {
	case rep := <-t.reply:
		if fp := c.cfg.Faults; fp != nil && fp.DropReply(int(n.id)) {
			mFireDrop.Inc()
			// The reply was lost in flight: the node did the work (its
			// cache populated), but the caller sees only silence.
			select {
			case <-ctx.Done():
				return fetchReply{}, fmt.Errorf("%v: reply dropped: %w: %v", n.id, ErrUnavailable, ctx.Err())
			case <-n.done:
				return fetchReply{}, ErrStopped
			}
		}
		if rep.err == nil {
			c.cfg.Sleeper.Apply(c.cfg.Model.NetCost(rep.result.Len() * approxCellBytes))
			prof.AddWireBytes(rep.result.Len() * approxCellBytes)
			// The reply transfer itself can outlive the caller's deadline:
			// an oversized payload on a slow link is a timeout to the
			// caller even though the node answered. (No-op without a
			// deadline: background contexts never report Err.)
			if ctx.Err() != nil {
				return fetchReply{}, fmt.Errorf("%v: reply transfer exceeded deadline: %w: %v", n.id, ErrUnavailable, ctx.Err())
			}
			// A flip between admission and reply means the serve-side disk
			// scan may have used the new ring while the caller's plan used the
			// old one — moved keys would come back silently empty. Bounce so
			// the coordinator re-plans; guest replies are ownership-free.
			if cur := c.Epoch(); cur != eAdmit && !guest {
				mNotOwner.Inc()
				return fetchReply{}, fmt.Errorf("%v: %w", n.id, ErrNotOwner{RequestEpoch: eAdmit, Epoch: cur})
			}
		}
		return rep, rep.err
	case <-ctx.Done():
		return fetchReply{}, ctx.Err()
	case <-n.done:
		return fetchReply{}, ErrStopped
	}
}

// sleepCtx waits d of real wall-clock time (injected stall, not modeled
// cost), aborting early on context or shutdown.
func (n *Node) sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-n.done:
		return ErrStopped
	}
}

// flip draws a reroute decision without locking: one atomic add on the
// per-node state plus the splitmix64 finalizer. Concurrent submitters each
// advance the sequence by a fixed odd stride, so the stream stays
// equidistributed no matter how the adds interleave, and single-threaded
// callers see a deterministic per-node sequence.
func (n *Node) flip(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	x := n.flipState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < p
}

// handle serves one fetch task on a worker goroutine. The task carries the
// caller's context so the node-side work records into the caller's trace.
func (n *Node) handle(t fetchTask) {
	n.processed.Add(1)
	n.hot.OfferBatch(t.keys)
	ctx := t.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, sp := obs.StartSpan(ctx, "node.serve")
	sp.SetAttr("node", n.id.String())
	defer sp.End()
	if t.guest {
		t.reply <- n.handleGuest(ctx, t.keys)
		return
	}
	t.reply <- n.handleLocal(ctx, t.keys, t.epoch)
}

// handleGuest serves a rerouted request purely from the guest graph; cells
// the guest no longer holds are reported back as missing for the caller to
// fall back on (paper §VII-C).
func (n *Node) handleGuest(ctx context.Context, keys []cell.Key) fetchReply {
	if n.guest == nil {
		return fetchReply{result: query.NewResult(), missing: keys}
	}
	start := time.Now()
	_, gs := obs.StartSpan(ctx, "graph.get")
	found, missing := n.guest.Get(keys)
	gs.SetAttr("hits", fmt.Sprint(found.Len()))
	gs.End()
	getDur := time.Since(start)
	mStageGraphGet.ObserveDuration(getDur)
	prof := obs.ProfileFromContext(ctx)
	prof.AddTier("guest", found.Len(), len(missing))
	prof.AddStage("graph.get", getDur)
	n.guestServed.Add(int64(found.Len()))
	mGuestServed.Add(int64(found.Len()))
	n.touchGuestCliques(keys)
	return fetchReply{result: found, missing: missing}
}

// handleLocal serves an owner-path request as a staged pipeline: (1) one
// batched graph get (stripe-grouped, one lock acquisition per touched
// stripe), (2) a serve-side singleflight claim over the misses (when
// enabled) so concurrent identical misses share one derivation/disk scan,
// (3) one batched derivation pass over every owned miss, (4) one disk scan
// of the residue, grouped by Galileo block so each covering block is read
// exactly once, and (5) handoff of the fetched cells to the bounded
// population pool (the paper's separate population thread, §VIII-C2) so the
// response returns without waiting for cache maintenance.
func (n *Node) handleLocal(ctx context.Context, keys []cell.Key, epoch uint64) fetchReply {
	prof := obs.ProfileFromContext(ctx)
	if n.graph == nil {
		res, err := n.diskScan(ctx, keys)
		if err == nil {
			n.diskCells.Add(int64(len(keys)))
			prof.AddDiskCells(len(keys))
		}
		return fetchReply{result: res, err: err}
	}

	// Stage 1: batched graph get.
	getStart := time.Now()
	_, gs := obs.StartSpan(ctx, "graph.get")
	found, missing := n.graph.GetBatch(keys)
	gs.SetAttr("hits", fmt.Sprint(len(keys)-len(missing)))
	gs.End()
	getDur := time.Since(getStart)
	mStageGraphGet.ObserveDuration(getDur)
	prof.AddTier("local", len(keys)-len(missing), len(missing))
	prof.AddStage("graph.get", getDur)
	if len(missing) == 0 {
		return fetchReply{result: found}
	}
	if n.cluster.cfg.DisablePLM {
		// abl-plm: without per-cell completeness tracking the node cannot
		// tell which chunks are missing and re-evaluates the whole request.
		res, err := n.diskScan(ctx, keys)
		if err != nil {
			return fetchReply{result: found, err: err}
		}
		n.diskCells.Add(int64(len(keys)))
		prof.AddDiskCells(len(keys))
		n.populate(res, keys, epoch)
		return fetchReply{result: res}
	}

	if !n.cluster.cfg.ServeSingleflight {
		err := n.resolveMisses(ctx, missing, &found, epoch)
		return fetchReply{result: found, err: err}
	}

	// Singleflight: claim the misses no in-flight request is already
	// fetching; for the rest, attach as a waiter to the owning request's
	// entry. Owned keys are resolved and PUBLISHED BEFORE waiting, which is
	// what makes cross-request claim cycles (A owns k1 and waits on k2 while
	// B owns k2 and waits on k1) deadlock-free.
	owned, ownedEntries, waits := n.sfClaim(missing)
	prof.AddSingleflight(len(owned), len(waits))
	if len(owned) > 0 {
		mSFLeader.Add(int64(len(owned)))
		err := n.resolveMisses(ctx, owned, &found, epoch)
		// Owned keys were graph misses, so their presence in found is
		// exactly what resolveMisses produced — publish straight from it.
		n.sfPublish(owned, ownedEntries, found, err)
		if err != nil {
			return fetchReply{result: found, err: err}
		}
	}
	if len(waits) > 0 {
		fallback, err := n.sfWait(ctx, waits, &found)
		if err != nil {
			return fetchReply{result: found, err: err}
		}
		if len(fallback) > 0 {
			// The leader that owned these keys failed; fetch them ourselves
			// rather than propagating its error to an unrelated request.
			if err := n.resolveMisses(ctx, fallback, &found, epoch); err != nil {
				return fetchReply{result: found, err: err}
			}
		}
	}
	return fetchReply{result: found}
}

// resolveMisses runs the post-cache stages for a set of graph misses —
// batched derivation from cached children, disk scan of the residue, and
// handoff to the bounded population pool — merging everything it resolves
// directly into dst (no intermediate result, no second merge pass). After
// it returns, dst holds every missing key that produced data; keys still
// absent are genuinely empty.
func (n *Node) resolveMisses(ctx context.Context, missing []cell.Key, dst *query.Result, epoch uint64) error {
	// Batched derivation from cached children — every miss is attempted in
	// one pass, so the child lookups of the whole batch share stripe-lock
	// acquisitions instead of re-locking per missing key. The popGate read
	// lock brackets the derivation's cache inserts so the membership
	// controller's post-flip barrier can drain them before re-sweeping
	// coarse partials.
	deriveStart := time.Now()
	_, drs := obs.StartSpan(ctx, "graph.derive")
	n.popGate.RLock()
	derived, unfetched := n.graph.DeriveBatch(missing)
	n.popGate.RUnlock()
	drs.SetAttr("derived", fmt.Sprint(derived.Len()))
	drs.End()
	deriveDur := time.Since(deriveStart)
	mStageDerive.ObserveDuration(deriveDur)
	prof := obs.ProfileFromContext(ctx)
	prof.AddStage("graph.derive", deriveDur)
	if derived.Len() > 0 {
		n.derived.Add(int64(derived.Len()))
		mDerived.Add(int64(derived.Len()))
		prof.AddDerived(derived.Len())
		mergeResolved(dst, derived)
	}
	if len(unfetched) == 0 {
		return nil
	}

	// Disk scan of the residue, grouped by backing block.
	diskRes, err := n.diskScan(ctx, unfetched)
	if err != nil {
		return err
	}
	n.diskCells.Add(int64(len(unfetched)))
	prof.AddDiskCells(len(unfetched))
	mergeResolved(dst, diskRes)

	// Bounded background population.
	n.populate(diskRes, unfetched, epoch)
	return nil
}

// mergeResolved assembles one resolution tier's cells into the reply by
// direct insert. The tiers are disjoint by construction — derived and
// disk-scanned keys were graph misses (absent from the served cells), and
// DeriveBatch hands the disk scan only the keys it could not derive — so the
// clone-on-collision merge path can never fire and each cell costs exactly
// one map insert. The inserted summaries stay shared (and immutable by
// convention) with the population task and the cache.
func mergeResolved(dst *query.Result, src query.Result) {
	if dst.Cells == nil {
		dst.Cells = make(map[cell.Key]cell.Summary, src.Len())
	}
	for k, s := range src.Cells {
		dst.Cells[k] = s
	}
}

// sfEntry is one in-flight miss in the serve-side singleflight table. The
// leader fills sum/found/err and closes done; waiters read the fields only
// after done closes (the channel close is the happens-before edge).
type sfEntry struct {
	done  chan struct{}
	sum   cell.Summary
	found bool // key produced data (false = genuinely empty, not an error)
	err   error
}

// sfClaim partitions a request's misses into keys this request now owns
// (new entries inserted into the in-flight table) and keys another request
// is already fetching (returned as waiters). A duplicate key inside one
// request lands in waits against our own entry, which resolves when we
// publish — before we wait — so self-waits cannot deadlock.
func (n *Node) sfClaim(missing []cell.Key) ([]cell.Key, []*sfEntry, map[cell.Key]*sfEntry) {
	var owned []cell.Key
	var ownedEntries []*sfEntry
	var waits map[cell.Key]*sfEntry
	n.sfMu.Lock()
	for _, k := range missing {
		if e, ok := n.sfInflight[k]; ok {
			if waits == nil {
				waits = make(map[cell.Key]*sfEntry, 4)
			}
			waits[k] = e
			continue
		}
		e := &sfEntry{done: make(chan struct{})}
		n.sfInflight[k] = e
		owned = append(owned, k)
		ownedEntries = append(ownedEntries, e)
	}
	n.sfMu.Unlock()
	return owned, ownedEntries, waits
}

// sfPublish resolves the owned entries from the leader's result (or error)
// and removes them from the in-flight table. It must run before the leader
// waits on any entry it does not own.
func (n *Node) sfPublish(owned []cell.Key, entries []*sfEntry, res query.Result, err error) {
	for i, k := range owned {
		e := entries[i]
		if err != nil {
			e.err = err
		} else {
			e.sum, e.found = res.Cells[k]
		}
		close(e.done)
	}
	n.sfMu.Lock()
	for _, k := range owned {
		delete(n.sfInflight, k)
	}
	n.sfMu.Unlock()
}

// sfWait blocks on the entries another request owns, merging resolved
// summaries into dst. Keys whose leader failed come back as fallback for the
// caller to fetch itself; only context/shutdown aborts return an error.
func (n *Node) sfWait(ctx context.Context, waits map[cell.Key]*sfEntry, dst *query.Result) ([]cell.Key, error) {
	var fallback []cell.Key
	shared := 0
	for k, e := range waits {
		select {
		case <-e.done:
		case <-ctx.Done():
			mSFShared.Add(int64(shared))
			return nil, ctx.Err()
		case <-n.done:
			mSFShared.Add(int64(shared))
			return nil, ErrStopped
		}
		if e.err != nil {
			fallback = append(fallback, k)
			continue
		}
		shared++
		if e.found {
			dst.Add(k, e.sum)
		}
	}
	mSFShared.Add(int64(shared))
	return fallback, nil
}

// diskScan fetches cells from the backing store under a "disk.scan" span and
// the disk-stage latency histogram.
func (n *Node) diskScan(ctx context.Context, keys []cell.Key) (query.Result, error) {
	start := time.Now()
	ctx, ds := obs.StartSpan(ctx, "disk.scan")
	ds.SetAttr("cells", fmt.Sprint(len(keys)))
	res, err := n.store.FetchCellsCtx(ctx, keys)
	ds.End()
	scanDur := time.Since(start)
	mStageDiskScan.ObserveDuration(scanDur)
	obs.ProfileFromContext(ctx).AddStage("disk.scan", scanDur)
	if err == nil {
		mDiskCellFetches.Add(int64(len(keys)))
	}
	return res, err
}

// populate hands fetched cells to the bounded population pool off the
// response path (the paper's separate population thread, §VIII-C2, now with
// a fixed worker count instead of a goroutine per miss). A full population
// queue applies backpressure: the serving worker populates inline rather
// than dropping the work or growing without bound.
func (n *Node) populate(res query.Result, requested []cell.Key, epoch uint64) {
	t := popTask{res: res, requested: requested, epoch: epoch}
	select {
	case n.popCh <- t:
		mPopQueued.Inc()
	default:
		mPopInline.Inc()
		n.populateOne(t)
	}
}

// populateOne inserts one fetch result into the cache, negative-caching
// requested keys that held no data. Tasks admitted under a superseded
// membership epoch are discarded outright: their coarse cells were computed
// against an ownership baseline that no longer holds, and their fine cells
// may belong to partitions this node just handed off. Population is
// best-effort cache warming, so dropping is always safe.
func (n *Node) populateOne(t popTask) {
	n.popGate.RLock()
	defer n.popGate.RUnlock()
	if t.epoch != n.cluster.Epoch() {
		mPopStaleDropped.Inc()
		return
	}
	if fz := n.frozen.Load(); fz != nil {
		t = filterFrozen(t, *fz, n.cluster.Ring().PrefixLen())
	}
	start := time.Now()
	n.graph.Put(t.res)
	var empties []cell.Key
	for _, k := range t.requested {
		if _, ok := t.res.Cells[k]; !ok {
			empties = append(empties, k)
		}
	}
	if len(empties) > 0 {
		n.graph.PutEmpty(empties)
	}
	d := time.Since(start)
	mStagePopulate.ObserveDuration(d)
	n.populationNs.Add(int64(d))
	n.populatedCells.Add(int64(len(t.requested)))
}

// filterFrozen strips from a population task every cell and requested key
// touching a frozen (mid-migration) partition, so extracted cells cannot
// reappear behind the migrator's back. A coarse key's cached value is a
// partial over every owned partition under its geohash, so freezing any of
// those invalidates its baseline too.
func filterFrozen(t popTask, frozen map[string]bool, plen int) popTask {
	touches := func(gh string) bool {
		if len(gh) >= plen {
			return frozen[gh[:plen]]
		}
		for p := range frozen {
			if len(p) >= len(gh) && p[:len(gh)] == gh {
				return true
			}
		}
		return false
	}
	out := popTask{res: query.NewResult(), epoch: t.epoch}
	for k, s := range t.res.Cells {
		if !touches(k.Geohash) {
			out.res.Add(k, s)
		}
	}
	for _, k := range t.requested {
		if !touches(k.Geohash) {
			out.requested = append(out.requested, k)
		}
	}
	return out
}

// freeze marks partitions as mid-migration (nil or empty lifts the freeze).
func (n *Node) freeze(parts map[string]bool) {
	if len(parts) == 0 {
		n.frozen.Store(nil)
		return
	}
	n.frozen.Store(&parts)
}

// popBarrier waits until every cache insert that started before the call has
// finished: taking the write side of popGate excludes all readers admitted
// earlier, and inserts that start afterwards see the new epoch.
func (n *Node) popBarrier() {
	n.popGate.Lock()
	//lint:ignore SA2001 write-acquire is the barrier; nothing to protect after it
	n.popGate.Unlock()
}

// --- hotspot handling (paper §VII) ---

// maybeHandoff checks the hotspot condition (pending queue over threshold,
// §VII-B1) and, respecting the cooldown, runs a clique handoff in the
// background.
func (n *Node) maybeHandoff() {
	cfg := n.cluster.cfg.Replication
	if !cfg.Enabled() || n.graph == nil {
		return
	}
	if len(n.requests) <= cfg.QueueThreshold {
		return
	}
	last := n.lastHandoff.Load()
	if time.Since(time.Unix(0, last)) < cfg.Cooldown {
		return
	}
	if !n.handoffActive.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer n.handoffActive.Store(false)
		// The cooldown starts only after a handoff that actually shipped
		// replicas; an attempt on a still-cold graph (nothing to hand off)
		// must not suppress retries while the hotspot persists.
		if n.runHandoff() > 0 {
			n.lastHandoff.Store(time.Now().UnixNano())
		}
	}()
}

// runHandoff executes §VII-B: pick the hottest cliques, find helpers via
// antipode selection, ship replicas, and record routes. It returns the
// number of cliques successfully replicated.
func (n *Node) runHandoff() int {
	cfg := n.cluster.cfg.Replication
	done := 0
	cliques := n.graph.TopCliques(cfg.CliqueDepth, cfg.MaxReplicaCells)
	ring := n.cluster.Ring()
	for _, cl := range cliques {
		n.rngMu.Lock()
		cands := replication.CandidateHelpers(cl.Root.Geohash, ring, n.id, cfg, n.rng)
		n.rngMu.Unlock()
		for _, cand := range cands {
			helper := n.cluster.node(cand)
			if helper == nil || !helper.askDistress(cl.Root, cl.Size()) {
				continue // negative ack: retry around the antipode
			}
			payload := n.graph.Snapshot(cl.Keys)
			if helper.askReplicate(cl.Root, cl.Keys, payload) {
				n.routing.Add(cl.Root, cand, cl.Keys, time.Now())
				n.handoffs.Add(1)
				mHandoffs.Inc()
				done++
			}
			break
		}
	}
	return done
}

// askDistress delivers a distress request to this node (as helper
// candidate) and reports its acknowledgement (§VII-B3).
func (n *Node) askDistress(root cell.Key, cells int) bool {
	n.cluster.cfg.Sleeper.Apply(n.cluster.cfg.Model.NetCost(approxKeyBytes))
	m := distressMsg{root: root, cells: cells, reply: make(chan bool, 1)}
	select {
	case n.control <- m:
	case <-n.done:
		return false
	}
	select {
	case ok := <-m.reply:
		return ok
	case <-n.done:
		return false
	}
}

// askReplicate ships a clique replica to this node (as helper) and reports
// acceptance (§VII-B4). Replication is infrequent, so its payload is priced
// at the exact wire-encoded size rather than the per-cell approximation the
// hot path uses.
func (n *Node) askReplicate(root cell.Key, keys []cell.Key, payload query.Result) bool {
	n.cluster.cfg.Sleeper.Apply(n.cluster.cfg.Model.NetCost(wire.ResultSize(payload)))
	m := replicateMsg{root: root, keys: keys, payload: payload, reply: make(chan bool, 1)}
	select {
	case n.control <- m:
	case <-n.done:
		return false
	}
	select {
	case ok := <-m.reply:
		return ok
	case <-n.done:
		return false
	}
}

// controlLoop serializes replication control traffic so guest admission
// decisions are race-free without locking the data path.
func (n *Node) controlLoop() {
	cfg := n.cluster.cfg.Replication
	for {
		select {
		case msg := <-n.control:
			switch m := msg.(type) {
			case distressMsg:
				// Accept unless hotspotted ourselves or out of guest room.
				ok := n.guest != nil &&
					len(n.requests) <= cfg.QueueThreshold &&
					n.guest.Len()+m.cells <= n.guestCapacity()
				if ok {
					mDistressAccepted.Inc()
				} else {
					mDistressRejected.Inc()
				}
				m.reply <- ok
			case replicateMsg:
				if n.guest == nil {
					m.reply <- false
					continue
				}
				n.guest.Put(m.payload)
				n.guestMu.Lock()
				n.guestCliques[m.root] = &guestEntry{keys: m.keys, lastUsed: time.Now()}
				n.guestMu.Unlock()
				m.reply <- true
			}
		case <-n.done:
			return
		}
	}
}

func (n *Node) guestCapacity() int {
	if n.cluster.cfg.GuestCapacity > 0 {
		return n.cluster.cfg.GuestCapacity
	}
	if n.cluster.cfg.Stash != nil && n.cluster.cfg.Stash.Capacity > 0 {
		return n.cluster.cfg.Stash.Capacity
	}
	return stash.DefaultConfig().Capacity
}

// touchGuestCliques refreshes the last-used stamp of guest cliques serving
// the given keys, keeping live replicas from being purged (§VII-D).
func (n *Node) touchGuestCliques(keys []cell.Key) {
	n.guestMu.Lock()
	defer n.guestMu.Unlock()
	if len(n.guestCliques) == 0 {
		return
	}
	now := time.Now()
	for _, e := range n.guestCliques {
		for _, k := range e.keys {
			if containsKey(keys, k) {
				e.lastUsed = now
				break
			}
		}
	}
}

func containsKey(keys []cell.Key, k cell.Key) bool {
	for _, c := range keys {
		if c == k {
			return true
		}
	}
	return false
}

// janitorLoop purges expired routing-table entries and unused guest cliques
// (paper §VII-D).
func (n *Node) janitorLoop() {
	cfg := n.cluster.cfg.Replication
	if !cfg.Enabled() {
		return
	}
	interval := cfg.Cooldown / 2
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			now := time.Now()
			n.routing.Purge(now, cfg.RouteTTL)
			n.purgeGuests(now, cfg.GuestTTL)
		case <-n.done:
			return
		}
	}
}

func (n *Node) purgeGuests(now time.Time, ttl time.Duration) {
	if n.guest == nil {
		return
	}
	n.guestMu.Lock()
	defer n.guestMu.Unlock()
	for root, e := range n.guestCliques {
		if now.Sub(e.lastUsed) > ttl {
			for _, k := range e.keys {
				n.guest.Delete(k)
			}
			delete(n.guestCliques, root)
		}
	}
}
