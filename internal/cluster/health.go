package cluster

// Cluster health policy: the declared SLO objectives and structural watchdog
// rules for a STASH deployment, bound to the metric names this package (and
// the cache layer) already export. The obs package provides the mechanism —
// TSDB, burn-rate engine, watchdog — and this file provides the policy, so
// the thresholds live next to the metrics they judge.

import (
	"time"

	"stash/internal/obs"
)

// SLOThresholds are the objective targets stashd exposes as flags. A zero
// field disables that objective.
type SLOThresholds struct {
	// QueryP99 bounds the fast-window p99 of end-to-end query latency,
	// in seconds.
	QueryP99 float64
	// ErrRatio bounds rate(error outcomes) / rate(all outcomes).
	ErrRatio float64
	// HitRatio floors rate(cache hits) / rate(hits+misses) across all
	// tiers. Advisory: a cold cache legitimately starts at zero, so this
	// objective caps at warning and never degrades the verdict by itself.
	HitRatio float64
	// PartialRatio bounds rate(partial outcomes) / rate(all outcomes) —
	// how often answers ship with incomplete coverage.
	PartialRatio float64
}

// DefaultSLOThresholds returns the stock targets (250ms p99, 1% errors,
// 50% cache hits, 5% partial answers).
func DefaultSLOThresholds() SLOThresholds {
	return SLOThresholds{QueryP99: 0.25, ErrRatio: 0.01, HitRatio: 0.50, PartialRatio: 0.05}
}

// Objectives renders the thresholds as SLO objectives over the exported
// metric families.
func (t SLOThresholds) Objectives() []obs.Objective {
	return []obs.Objective{
		{
			Name:     "query_p99_latency",
			Series:   "stash_query_duration_seconds",
			Quantile: 0.99,
			Target:   t.QueryP99,
			MinCount: 5,
		},
		{
			Name: "error_ratio",
			Num:  []string{`stash_coord_queries_total{outcome="error"}`},
			Den:  []string{"stash_coord_queries_total"},
			Goal: t.ErrRatio,
			// MinCount is in denominator events over the fast window.
			MinCount: 5,
		},
		{
			Name:           "cache_hit_ratio",
			Num:            []string{"stash_cache_hits_total"},
			Den:            []string{"stash_cache_hits_total", "stash_cache_misses_total"},
			Goal:           t.HitRatio,
			HigherIsBetter: true,
			MinCount:       20,
			CapState:       obs.StateWarning,
		},
		{
			Name:     "partial_coverage_ratio",
			Num:      []string{`stash_coord_queries_total{outcome="partial"}`},
			Den:      []string{"stash_coord_queries_total"},
			Goal:     t.PartialRatio,
			MinCount: 5,
		},
	}
}

// StructuralThresholds bound the watchdog's non-SLO signals. A zero field
// disables that rule.
type StructuralThresholds struct {
	// QueueDepth bounds the summed pending fetch tasks across node queues
	// (latest sample). Critical: a saturated queue is an outage in progress.
	QueueDepth float64
	// BreakerTripsPerSec bounds scatter circuit-breaker aborts. Critical:
	// trips mean the failover ladder itself is giving up.
	BreakerTripsPerSec float64
	// RetriesPerSec bounds coordinator retry attempts. Advisory.
	RetriesPerSec float64
	// EpochChurn bounds membership epoch changes over the watchdog window.
	// Advisory: rebalances are legitimate, sustained churn is not.
	EpochChurn float64
	// FlightRecDropsPerSec bounds flight-recorder ring evictions. Advisory:
	// profiles aging out faster than anyone could read them.
	FlightRecDropsPerSec float64
}

// DefaultStructuralThresholds returns the stock structural bounds.
func DefaultStructuralThresholds() StructuralThresholds {
	return StructuralThresholds{
		QueueDepth:           1024,
		BreakerTripsPerSec:   0.5,
		RetriesPerSec:        10,
		EpochChurn:           4,
		FlightRecDropsPerSec: 100,
	}
}

// Rules renders the thresholds as watchdog rules over the exported metric
// families.
func (t StructuralThresholds) Rules() []obs.Rule {
	return []obs.Rule{
		{Name: "node_queue_depth", Series: "stash_node_queue_depth",
			Kind: obs.RuleLast, Threshold: t.QueueDepth, Critical: true},
		{Name: "breaker_trip_rate", Series: "stash_coord_breaker_trips_total",
			Kind: obs.RuleRate, Threshold: t.BreakerTripsPerSec, Critical: true},
		{Name: "retry_rate", Series: "stash_coord_retries_total",
			Kind: obs.RuleRate, Threshold: t.RetriesPerSec},
		{Name: "epoch_churn", Series: "stash_cluster_epoch",
			Kind: obs.RuleDelta, Threshold: t.EpochChurn},
		{Name: "flightrec_drop_rate", Series: "stash_flightrec_dropped_total",
			Kind: obs.RuleRate, Threshold: t.FlightRecDropsPerSec},
	}
}

// HealthConfig assembles a full health pipeline.
type HealthConfig struct {
	// History is the TSDB ring capacity in samples; 0 disables the whole
	// pipeline (nil everything, no goroutines, no allocations).
	History int
	// Interval is the sampling period (default obs.DefaultTSDBInterval).
	Interval time.Duration
	// SLO targets; zero-valued fields disable their objectives.
	SLO SLOThresholds
	// Structural watchdog bounds; zero-valued fields disable their rules.
	Structural StructuralThresholds
	// Burn tunes SLO windows and hysteresis (defaults inside obs).
	Burn obs.BurnConfig
	// Watchdog tunes structural windows and hysteresis.
	Watchdog obs.WatchdogConfig
	// Now overrides the clock everywhere (tests); nil uses time.Now.
	Now func() time.Time
}

// Health is the assembled pipeline. Fields are nil when disabled; every
// component is nil-safe, so callers use them without guards.
type Health struct {
	TSDB     *obs.TSDB
	SLO      *obs.SLOEngine
	Watchdog *obs.Watchdog
	Monitor  *obs.Monitor
}

// NewHealth builds the TSDB → SLO engine → watchdog chain over reg (nil =
// the process-global registry). History <= 0 returns a Health with all-nil
// components.
func NewHealth(reg *obs.Registry, cfg HealthConfig) *Health {
	if cfg.Now != nil {
		cfg.Burn.Now = cfg.Now
		cfg.Watchdog.Now = cfg.Now
	}
	t := obs.NewTSDB(reg, obs.TSDBConfig{
		History:  cfg.History,
		Interval: cfg.Interval,
		Now:      cfg.Now,
	})
	slo := obs.NewSLOEngine(t, cfg.SLO.Objectives(), cfg.Burn)
	dog := obs.NewWatchdog(t, slo, cfg.Structural.Rules(), cfg.Watchdog)
	return &Health{TSDB: t, SLO: slo, Watchdog: dog, Monitor: obs.NewMonitor(t, slo, dog)}
}
