// Package cluster simulates the paper's deployment in-process: a set of
// nodes, each pairing a Galileo storage shard with a STASH graph shard, a
// request queue, and the clique-handoff machinery; plus the client-side
// coordinator that splits queries across owners and merges partial results
// (paper §VI, §VII).
//
// Every node runs real goroutine workers draining a bounded request queue,
// so concurrent load produces genuine queueing — the signal hotspot
// detection triggers on. Network and disk costs are injected through
// simnet, preserving the testbed's cost ordering.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/namgen"
	"stash/internal/obs"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/stash"
	"stash/internal/temporal"
)

// Config assembles a cluster.
type Config struct {
	// Nodes is the cluster size (the paper's testbed used 120).
	Nodes int
	// PrefixLen is the DHT partitioning prefix (paper: 2).
	PrefixLen int
	// Seed namespaces the synthetic dataset.
	Seed uint64
	// PointsPerBlock sets the synthetic block density.
	PointsPerBlock int
	// Stash configures the per-node cache shard; nil builds the basic
	// system (no STASH), the paper's baseline.
	Stash *stash.Config
	// GuestCapacity is the per-node guest graph capacity (cells). Zero
	// defaults to the Stash capacity.
	GuestCapacity int
	// Replication configures hotspot handling; a zero value disables it.
	Replication replication.Config
	// Histograms makes the storage scan maintain per-attribute histograms
	// (namgen.HistogramSpecs) so result cells can drive histogram panels.
	Histograms bool
	// DisablePLM is the abl-plm ablation: without the precision-level map a
	// node cannot identify *which* chunks are missing, so any miss forces a
	// refetch of the entire requested key set from disk.
	DisablePLM bool
	// Model and Sleeper inject simulated I/O costs.
	Model   simnet.Model
	Sleeper simnet.Sleeper
	// Faults optionally injects per-node failures (crash, pause, reply
	// drop, admission rejection, permanent error). Nil means every node is
	// always healthy; the hot path pays a single nil check.
	Faults *simnet.FaultPlan
	// Resilience tunes the coordinator's failure handling. The zero value
	// preserves fail-fast semantics: no per-request deadline, no retries,
	// and any node failure fails the whole query (the pre-fault-injection
	// behaviour, and the right mode for cost-model experiments).
	Resilience ResilienceConfig
	// QueueSize bounds each node's pending-request queue.
	QueueSize int
	// Workers is the number of request-serving goroutines per node
	// (the paper's nodes were 8-core machines).
	Workers int
	// PopulationWorkers is the number of background cache-population
	// goroutines per node — the paper's "separate population thread"
	// (§VIII-C2), actually bounded. Fetched cells are handed to this pool
	// off the response path; when the pool's queue is full the serving
	// worker populates inline (backpressure) rather than spawning
	// goroutines without bound. Zero selects the default (2).
	PopulationWorkers int
	// GalileoParallelReads bounds how many storage blocks one disk fetch
	// scans concurrently. Values <= 1 keep the serial scan (the default):
	// the simulated disk cost is paid per block either way, but wall-clock
	// latency of wide footprints drops with real storage parallelism.
	GalileoParallelReads int
	// CoalesceWindow enables the client-side request coalescer: concurrent
	// fetches destined for the same owner node that arrive within this
	// admission window merge into one batched wire message with cross-caller
	// key dedup, and the reply is demultiplexed to every waiter. Zero (the
	// default) disables coalescing entirely and preserves the uncoalesced
	// per-share request behavior exactly. See DefaultCoalesceWindow.
	CoalesceWindow time.Duration
	// ServeSingleflight enables the per-node in-flight miss table: while one
	// request is deriving or disk-scanning a cell, concurrent requests for
	// the same cell attach as waiters and share the one result
	// (groupcache-style) instead of issuing duplicate scans. Off by default;
	// result semantics are identical either way.
	ServeSingleflight bool
	// HotKeyCapacity sizes the per-node hot-key top-K sketches tracking the
	// most-requested cell keys (the global view is merged from them on
	// demand). Zero selects DefaultHotKeyCapacity; negative disables hot-key
	// telemetry.
	HotKeyCapacity int
	// HotKeyDecay is the epoch length after which sketch counts are halved so
	// the hot set tracks the current workload rather than all history. Zero
	// selects DefaultHotKeyDecay; negative disables decay.
	HotKeyDecay time.Duration
	// FanInWorkers bounds the concurrent pairwise merges of the coordinator's
	// tournament reply fan-in. Zero (the default) enables the tournament with
	// its default bound; positive values set an explicit bound; negative
	// values select the legacy serial reply merge (the benchmark baseline).
	// Result semantics are identical either way — merging is commutative and
	// associative — only float summation order differs.
	FanInWorkers int
}

// DefaultHotKeyCapacity is the per-sketch counter budget for hot-key
// telemetry: enough to rank the hot districts of a few concurrent pan
// sessions, small enough that the heap stays cache-resident.
const DefaultHotKeyCapacity = 128

// DefaultHotKeyDecay is the hot-key epoch length: counts halve every minute
// so /debug/hot reflects "hot right now", not "hot since boot".
const DefaultHotKeyDecay = time.Minute

// DefaultCoalesceWindow is the admission window production deployments use
// when coalescing is on: long enough for the concurrent shares of a
// fanned-out query wave to meet, short enough to be invisible next to a
// disk-backed miss.
const DefaultCoalesceWindow = 200 * time.Microsecond

// DefaultConfig returns a mid-sized experiment cluster configuration with
// STASH enabled and metered (non-sleeping) costs.
func DefaultConfig() Config {
	sc := stash.DefaultConfig()
	return Config{
		Nodes:             16,
		PrefixLen:         dht.DefaultPrefixLen,
		Seed:              42,
		PointsPerBlock:    namgen.DefaultPointsPerBlock,
		Stash:             &sc,
		Replication:       replication.Config{}, // disabled unless asked for
		Model:             simnet.Default(),
		Sleeper:           simnet.NewMeter(),
		QueueSize:         512,
		Workers:           4,
		PopulationWorkers: 2,
	}
}

// ErrStopped reports a request submitted to a stopped cluster.
var ErrStopped = errors.New("cluster: stopped")

// ErrRejected reports a node bouncing a request at admission (queue full).
// Rejections are fast and retryable.
var ErrRejected = errors.New("cluster: request rejected (queue full)")

// ErrUnavailable reports a node that accepted a request but never answered
// within the caller's patience (crashed or reply lost). Retryable.
var ErrUnavailable = errors.New("cluster: node unavailable")

// ErrFaulted reports a node answering with a permanent internal error (an
// injected storage fault). NOT retryable: the coordinator propagates it.
var ErrFaulted = errors.New("cluster: node storage fault")

// ErrNoCoverage reports a degraded query none of whose footprint could be
// served: every owner share failed and no failover path recovered anything.
var ErrNoCoverage = errors.New("cluster: no coverage (all owners failed)")

// ErrNotOwner reports a request routed with a stale membership view: the
// epoch it was planned against no longer matches the node's current epoch, so
// its owner grouping may be wrong. Retryable — the coordinator refreshes its
// view and re-plans; nodes return it rather than silently serving a share
// they may no longer (or not yet) own.
type ErrNotOwner struct {
	// RequestEpoch is the epoch the request was routed against (zero when
	// the route was simply to a node that has since departed).
	RequestEpoch uint64
	// Epoch is the answering node's current membership epoch.
	Epoch uint64
}

func (e ErrNotOwner) Error() string {
	return fmt.Sprintf("cluster: not owner (request epoch %d, current epoch %d)", e.RequestEpoch, e.Epoch)
}

// isNotOwner reports whether err carries an ErrNotOwner anywhere in its chain.
func isNotOwner(err error) bool {
	var no ErrNotOwner
	return errors.As(err, &no)
}

// Retryable classifies an error from a node sub-request: true for transient
// failures a retry or failover may fix (timeouts, rejections, unavailable
// nodes, stale-epoch routing), false for permanent ones (stopped cluster,
// storage faults, cancellation by the caller).
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrStopped), errors.Is(err, ErrFaulted), errors.Is(err, context.Canceled):
		return false
	case errors.Is(err, ErrRejected), errors.Is(err, ErrUnavailable), errors.Is(err, context.DeadlineExceeded):
		return true
	case isNotOwner(err):
		return true
	}
	return false
}

// epochKey carries the coordinator's routing epoch on the request context, so
// nodes can validate that the plan behind a request matches current
// membership.
type epochKey struct{}

// withEpoch stamps ctx with the membership epoch the request was routed
// against.
func withEpoch(ctx context.Context, epoch uint64) context.Context {
	return context.WithValue(ctx, epochKey{}, epoch)
}

// epochFrom extracts the routing epoch from ctx. ok is false for requests
// submitted without a view (direct node access, tests, legacy callers) —
// those skip admission-time epoch validation.
func epochFrom(ctx context.Context) (uint64, bool) {
	e, ok := ctx.Value(epochKey{}).(uint64)
	return e, ok
}

// ResilienceConfig tunes how the coordinator handles node failures. All
// fields zero disables the machinery entirely (fail-fast, no deadlines —
// the behaviour the cost-model experiments calibrate against).
type ResilienceConfig struct {
	// RequestTimeout bounds each sub-request attempt to one node. Zero
	// means no per-attempt deadline (the caller's context still applies).
	RequestTimeout time.Duration
	// Retries is the number of additional attempts against the owner after
	// the first fails with a retryable error.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles on
	// each subsequent attempt.
	RetryBackoff time.Duration
	// AllowPartial makes the coordinator return a partial result (with a
	// filled-in Coverage report) when some owners stay unreachable, rather
	// than failing the whole query. Callers render what arrived.
	AllowPartial bool
	// HelperReroute lets the coordinator re-route a failed owner's share to
	// the replication helpers holding replicas of its cliques (the antipode
	// routing table, paper §VII), serving from guest graphs.
	HelperReroute bool
	// ScatterFallback lets the coordinator break a failed share into
	// per-key (and, for coarse keys, per-extending-partition) scatter
	// requests, each with a fresh deadline — small requests survive a slow
	// node that a big bundle cannot.
	ScatterFallback bool
}

// DefaultResilienceConfig returns production-shaped failure handling:
// bounded deadlines, one retry with backoff, helper reroute, scatter
// fallback, and graceful degradation to partial results.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		RequestTimeout:  150 * time.Millisecond,
		Retries:         1,
		RetryBackoff:    5 * time.Millisecond,
		AllowPartial:    true,
		HelperReroute:   true,
		ScatterFallback: true,
	}
}

// Enabled reports whether any failure handling is configured.
func (r ResilienceConfig) Enabled() bool {
	return r.RequestTimeout > 0 || r.Retries > 0 || r.AllowPartial || r.HelperReroute || r.ScatterFallback
}

// Cluster is the running system: membership view, nodes, and shared cost
// plumbing.
type Cluster struct {
	cfg Config
	gen *namgen.Generator
	// view is the current membership epoch: ring + epoch number. Swapped
	// atomically by the membership controller (phase 3 of a handoff); every
	// route computation snapshots it once.
	view atomic.Pointer[dht.View]
	// nodes is the copy-on-write member table. Readers load it lock-free on
	// the serve path; Join/Leave (serialized by memberMu) install a fresh map.
	nodes atomic.Pointer[map[dht.NodeID]*Node]
	// coalescer batches concurrent same-owner fetches inside the admission
	// window; nil when CoalesceWindow is zero (coalescing disabled).
	coalescer *coalescer
	// hotEnabled records whether hot-key telemetry is on. The sketches
	// themselves live per node — no shared global sketch, so the serve paths
	// of different nodes never contend on one mutex; the cluster-wide view
	// is merged from the node sketches on demand (cell keys are
	// owner-partitioned, so the merge is near-exact).
	hotEnabled bool

	// ingestVersion counts UpdateBlock calls — a monotonically increasing
	// dataset version for readiness reporting.
	ingestVersion atomic.Int64

	// memberMu serializes membership changes (Join/Leave); rb is the
	// rebalance progress the admin surface reports, guarded by rbMu.
	memberMu sync.Mutex
	rbMu     sync.Mutex
	rb       rebalanceState

	mu      sync.Mutex
	started bool
	stopped bool
}

// New assembles a cluster. Call Start before submitting queries and Stop
// when done.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultConfig().QueueSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultConfig().Workers
	}
	if cfg.PopulationWorkers <= 0 {
		cfg.PopulationWorkers = DefaultConfig().PopulationWorkers
	}
	if cfg.GalileoParallelReads <= 0 {
		cfg.GalileoParallelReads = 1
	}
	if cfg.Sleeper == nil {
		cfg.Sleeper = simnet.NewMeter()
	}
	if cfg.PointsPerBlock <= 0 {
		cfg.PointsPerBlock = namgen.DefaultPointsPerBlock
	}
	ring, err := dht.NewRing(cfg.Nodes, cfg.PrefixLen)
	if err != nil {
		return nil, err
	}
	gen := &namgen.Generator{Seed: cfg.Seed, PointsPerBlock: cfg.PointsPerBlock}
	c := &Cluster{cfg: cfg, gen: gen}
	view := dht.NewView(ring)
	c.view.Store(view)
	mEpoch.Set(int64(view.Epoch()))
	hotCap, hotDecay := cfg.HotKeyCapacity, cfg.HotKeyDecay
	if hotCap == 0 {
		hotCap = DefaultHotKeyCapacity
	}
	if hotDecay == 0 {
		hotDecay = DefaultHotKeyDecay
	}
	c.hotEnabled = hotCap > 0
	nodes := make(map[dht.NodeID]*Node, cfg.Nodes)
	for _, id := range ring.Nodes() {
		nodes[id] = newNode(id, c, gen)
		if c.hotEnabled {
			nodes[id].hot = obs.NewTopK[cell.Key](hotCap, hotDecay)
		}
	}
	c.nodes.Store(&nodes)
	if cfg.CoalesceWindow > 0 {
		c.coalescer = newCoalescer(cfg.CoalesceWindow)
	}
	// Queue depth is sampled live at scrape time: the sum of every node's
	// pending requests. Re-registering (a later cluster in the same process)
	// simply replaces the callback, so the gauge always reflects the newest
	// cluster.
	r := obs.Default()
	r.Help("stash_node_queue_depth", "Pending fetch tasks across all node request queues.")
	r.GaugeFunc("stash_node_queue_depth", func() float64 {
		var depth int
		for _, n := range c.nodeMap() {
			depth += len(n.requests)
		}
		return float64(depth)
	})
	return c, nil
}

// Ring returns the current membership view's partition map. Snapshot it once
// per routing decision: consecutive calls may observe different epochs while
// a rebalance is flipping.
func (c *Cluster) Ring() *dht.Ring { return c.view.Load().Ring() }

// View returns the current membership view (ring + epoch).
func (c *Cluster) View() *dht.View { return c.view.Load() }

// Epoch returns the current membership epoch.
func (c *Cluster) Epoch() uint64 { return c.view.Load().Epoch() }

// nodeMap returns the current copy-on-write member table.
func (c *Cluster) nodeMap() map[dht.NodeID]*Node {
	return *c.nodes.Load()
}

// node returns the member with the given id, or nil when the id is not (or no
// longer) a member — callers holding a stale view treat nil as a not-owner
// signal and refresh.
func (c *Cluster) node(id dht.NodeID) *Node {
	return (*c.nodes.Load())[id]
}

// Generator returns the cluster's synthetic dataset generator. A reference
// evaluator (internal/oracle) built over the same generator sees exactly the
// dataset the cluster serves — including block version bumps from
// UpdateBlock — which is what makes end-to-end answer cross-checking
// well-defined.
func (c *Cluster) Generator() *namgen.Generator { return c.gen }

// Faults returns the cluster's fault plan (nil when fault injection is
// disabled). Callers may flip faults at runtime; the transport observes them
// on the next request.
func (c *Cluster) Faults() *simnet.FaultPlan { return c.cfg.Faults }

// Resilience returns the coordinator failure-handling configuration.
func (c *Cluster) Resilience() ResilienceConfig { return c.cfg.Resilience }

// Node returns one cluster member (nil if id is not a member).
func (c *Cluster) Node(id dht.NodeID) *Node { return c.node(id) }

// Nodes returns all members in ring order.
func (c *Cluster) Nodes() []*Node {
	nodes := c.nodeMap()
	ring := c.Ring()
	out := make([]*Node, 0, len(nodes))
	for _, id := range ring.Nodes() {
		if n := nodes[id]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Client returns a coordinator bound to this cluster. Clients are cheap;
// create one per concurrent user if desired (they are also safe to share).
func (c *Cluster) Client() *Client {
	return &Client{cluster: c}
}

// Start launches every node's workers. Idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return
	}
	c.started = true
	for _, n := range c.nodeMap() {
		n.start(c.cfg.Workers)
	}
}

// Stop drains and terminates all nodes. Requests submitted after Stop fail
// with ErrStopped.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped || !c.started {
		c.stopped = true
		c.mu.Unlock()
		return
	}
	c.stopped = true
	c.mu.Unlock()
	for _, n := range c.nodeMap() {
		n.stop()
	}
}

func (c *Cluster) isStopped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopped
}

// UpdateBlock simulates real-time ingest rewriting one backing block: the
// synthetic dataset advances the block's version (its content changes
// deterministically) and every cached summary drawing on it is invalidated,
// so the next access recomputes from the new data.
func (c *Cluster) UpdateBlock(prefix string, day temporal.Label) {
	c.ingestVersion.Add(1)
	c.gen.Bump(prefix, day)
	c.InvalidateBlock(prefix, day)
}

// IngestVersion returns the number of ingest updates (UpdateBlock calls)
// applied since the cluster was assembled — the dataset version /healthz
// reports.
func (c *Cluster) IngestVersion() int64 { return c.ingestVersion.Load() }

// CoalescerEnabled reports whether the client-side request coalescer is
// active.
func (c *Cluster) CoalescerEnabled() bool { return c.coalescer != nil }

// HotKeys returns the cluster-wide top-n most-requested cell keys (nil when
// hot-key telemetry is disabled). The global view is merged on demand from
// the per-node sketches rather than maintained as a shared sketch, so the
// serve path never contends on a cluster-wide lock; because the DHT
// owner-partitions keys across nodes, the merge is near-exact.
func (c *Cluster) HotKeys(n int) []obs.TopEntry[cell.Key] {
	if !c.hotEnabled || n <= 0 {
		return nil
	}
	nodes := c.nodeMap()
	groups := make([][]obs.TopEntry[cell.Key], 0, len(nodes))
	for _, node := range nodes {
		if top := node.hot.Top(n); len(top) > 0 {
			groups = append(groups, top)
		}
	}
	return obs.MergeTop(groups, n)
}

// HotKeyTotal returns the (decay-scaled) number of key requests observed
// across all per-node sketches.
func (c *Cluster) HotKeyTotal() uint64 {
	var total uint64
	for _, node := range c.nodeMap() {
		total += node.hot.Total()
	}
	return total
}

// InvalidateBlock broadcasts a storage-update invalidation: every node's
// local and guest PLM marks the block stale, so cached summaries drawing on
// it are recomputed on next access, and stale clique replicas stop serving
// redirected requests (paper §IV-D, §VII-A). Cells cached after this call
// are current by construction (epoch semantics in stash.PLM).
func (c *Cluster) InvalidateBlock(prefix string, day temporal.Label) {
	ref := stash.BlockRef{Prefix: prefix, Day: day}
	for _, n := range c.nodeMap() {
		if n.graph != nil {
			n.graph.PLM().MarkStale(ref)
		}
		if n.guest != nil {
			n.guest.PLM().MarkStale(ref)
		}
	}
}

// TotalStats aggregates node metrics across the cluster.
func (c *Cluster) TotalStats() NodeStats {
	var total NodeStats
	for _, n := range c.nodeMap() {
		s := n.Stats()
		total.Processed += s.Processed
		total.CacheHits += s.CacheHits
		total.CacheMisses += s.CacheMisses
		total.Derived += s.Derived
		total.DiskCells += s.DiskCells
		total.BlocksRead += s.BlocksRead
		total.Rerouted += s.Rerouted
		total.Handoffs += s.Handoffs
		total.GuestServed += s.GuestServed
		total.PopulationTime += s.PopulationTime
		total.PopulatedCells += s.PopulatedCells
		if s.QueuePeak > total.QueuePeak {
			total.QueuePeak = s.QueuePeak
		}
	}
	return total
}
