package cluster

import (
	"fmt"
	"sync"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
	"stash/internal/query"
)

// Client is the coordinator the front-end talks to: it splits a query's
// footprint across the owning nodes (the zero-hop DHT lookup, §IV-D), fans
// the sub-requests out in parallel, and merges the partial results.
type Client struct {
	cluster *Cluster
}

// Query evaluates an aggregation query against the cluster and returns the
// merged result.
func (cl *Client) Query(q query.Query) (query.Result, error) {
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	keys, err := q.Footprint()
	if err != nil {
		return query.Result{}, err
	}
	return cl.Fetch(keys)
}

// Fetch retrieves the summaries of an explicit cell-key set, grouped and
// routed by owner.
func (cl *Client) Fetch(keys []cell.Key) (query.Result, error) {
	if cl.cluster.isStopped() {
		return query.Result{}, ErrStopped
	}
	byNode := cl.groupByOwner(keys)

	type part struct {
		res query.Result
		err error
	}
	parts := make([]part, 0, len(byNode))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, ks := range byNode {
		wg.Add(1)
		go func(id dht.NodeID, ks []cell.Key) {
			defer wg.Done()
			res, err := cl.cluster.nodes[id].Submit(ks)
			mu.Lock()
			parts = append(parts, part{res: res, err: err})
			mu.Unlock()
		}(id, ks)
	}
	wg.Wait()

	merged := query.NewResult()
	for _, p := range parts {
		if p.err != nil {
			return query.Result{}, p.err
		}
		merged.Merge(p.res)
	}
	return merged, nil
}

// TimedQuery evaluates a query and reports its wall-clock latency.
func (cl *Client) TimedQuery(q query.Query) (query.Result, time.Duration, error) {
	start := time.Now()
	res, err := cl.Query(q)
	return res, time.Since(start), err
}

// GroupByOwner exposes the coordinator's owner assignment: every key mapped
// to the node(s) owning its backing partitions. Harnesses use it to check
// per-node cache completeness.
func (cl *Client) GroupByOwner(keys []cell.Key) map[dht.NodeID][]cell.Key {
	return cl.groupByOwner(keys)
}

// groupByOwner assigns every key to the node(s) owning its backing
// partitions. Keys at or finer than the partition prefix have exactly one
// owner; coarser keys span every extending partition, and each owner
// computes its partial summary (partials merge associatively).
func (cl *Client) groupByOwner(keys []cell.Key) map[dht.NodeID][]cell.Key {
	ring := cl.cluster.ring
	plen := ring.PrefixLen()
	out := map[dht.NodeID][]cell.Key{}
	for _, k := range keys {
		if len(k.Geohash) >= plen {
			id := ring.Owner(k.Geohash)
			out[id] = append(out[id], k)
			continue
		}
		// Coarse key: fan out to every owner of an extending partition,
		// deduplicating per node.
		prefixes := []string{k.Geohash}
		for len(prefixes[0]) < plen {
			var next []string
			for _, p := range prefixes {
				next = append(next, geohash.Children(p)...)
			}
			prefixes = next
		}
		seen := map[dht.NodeID]bool{}
		for _, p := range prefixes {
			id := ring.OwnerOfPartition(p)
			if !seen[id] {
				seen[id] = true
				out[id] = append(out[id], k)
			}
		}
	}
	return out
}

// Describe formats a one-line summary of a result for logging and examples.
func Describe(res query.Result, attr string) string {
	return fmt.Sprintf("%d cells, %d %s observations", res.Len(), res.TotalCount(attr), attr)
}
