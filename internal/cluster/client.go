package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/replication"
)

// maxHelperCandidates bounds how many helper nodes the failover path probes
// for replicas of a failed owner's cliques before giving up. Probing is
// sequential (each candidate gets a fresh deadline), so this also bounds the
// failover latency tail.
const maxHelperCandidates = 3

// scatterBreakerLimit is the scatter-fallback circuit breaker: after this
// many consecutive mini-request failures against one node the scatter aborts,
// so a truly dead node costs a couple of deadlines rather than one per key.
const scatterBreakerLimit = 2

// maxEpochRetries bounds how many times one fetch re-plans after a
// not-owner bounce (the view it routed with was superseded mid-flight).
// Each retry re-reads the view, so consecutive membership changes are the
// only way to consume more than one; past the bound the fetch returns
// whatever honest partial coverage the last attempt produced.
const maxEpochRetries = 3

// Client is the coordinator the front-end talks to: it splits a query's
// footprint across the owning nodes (the zero-hop DHT lookup, §IV-D), fans
// the sub-requests out in parallel, and merges the partial results.
//
// When the cluster's ResilienceConfig is enabled the coordinator also runs
// the failure-handling ladder for each owner share: bounded per-attempt
// deadlines, retry with backoff, reroute to replication helpers holding
// replicas of the owner's cliques (paper §VII), scatter fallback over the
// owner's extending partitions, and finally graceful degradation to a
// partial result with a Coverage report.
type Client struct {
	cluster *Cluster
}

// Query evaluates an aggregation query against the cluster and returns the
// merged result.
func (cl *Client) Query(q query.Query) (query.Result, error) {
	return cl.QueryContext(context.Background(), q)
}

// QueryContext evaluates a query under the caller's context: cancellation
// and deadline propagate into every node sub-request, so a dead node
// produces a timeout, never a hang. When the context carries an obs.Trace
// the whole evaluation is recorded as a span tree rooted at "query".
func (cl *Client) QueryContext(ctx context.Context, q query.Query) (query.Result, error) {
	ctx, qs := obs.StartSpan(ctx, "query")
	qs.SetAttr("query", q.String())
	defer qs.End()
	if err := q.Validate(); err != nil {
		return query.Result{}, err
	}
	fpStart := time.Now()
	_, fps := obs.StartSpan(ctx, "footprint")
	keys, err := q.Footprint()
	fps.SetAttr("keys", fmt.Sprint(len(keys)))
	fps.End()
	fpDur := time.Since(fpStart)
	mStageFootprint.ObserveDuration(fpDur)
	if err != nil {
		return query.Result{}, err
	}
	if p := obs.ProfileFromContext(ctx); p != nil { // guarded: String() allocates
		p.SetQuery(q.String())
		p.AddStage("footprint", fpDur)
		if len(keys) > 0 {
			k := keys[0]
			p.SetFootprint(len(keys), k.SpatialRes(), k.TemporalRes().String(), k.Level())
		}
	}
	return cl.FetchContext(ctx, keys)
}

// Fetch retrieves the summaries of an explicit cell-key set, grouped and
// routed by owner.
func (cl *Client) Fetch(keys []cell.Key) (query.Result, error) {
	return cl.FetchContext(context.Background(), keys)
}

// FetchContext retrieves an explicit cell-key set under the caller's
// context. With resilience disabled (the zero config) it behaves exactly
// like the original fail-fast coordinator: any node error fails the query,
// and the first error cancels the remaining sub-requests so no goroutine is
// left blocked on a dead node. With resilience enabled it runs the retry /
// failover ladder per owner share and can return a partial result whose
// Coverage field reports what was actually served.
func (cl *Client) FetchContext(ctx context.Context, keys []cell.Key) (query.Result, error) {
	if cl.cluster.isStopped() {
		return query.Result{}, ErrStopped
	}
	start := time.Now()
	mInflight.Add(1)
	defer mInflight.Add(-1)

	rc := cl.cluster.cfg.Resilience
	var res query.Result
	var err error
	// Plan against one membership snapshot per attempt: the epoch rides on
	// the request context so nodes can bounce stale-routed shares with
	// ErrNotOwner, and a bounce discards the whole attempt (nothing merges
	// twice) and re-plans on a fresh view.
	for attempt := 0; ; attempt++ {
		view := cl.cluster.View()
		byNode := cl.groupByOwner(view.Ring(), keys)
		if attempt == 0 {
			mFanoutNodes.Observe(float64(len(byNode)))
		}
		ectx := withEpoch(ctx, view.Epoch())
		var stale bool
		if !rc.Enabled() {
			res, err = cl.fetchFailFast(ectx, byNode)
			// ErrStopped from a node while the cluster itself is running
			// means the node was retired by a Leave mid-request — a stale
			// route, not a shutdown.
			stale = isNotOwner(err) ||
				(errors.Is(err, ErrStopped) && !cl.cluster.isStopped())
		} else {
			res, stale, err = cl.fetchResilient(ectx, byNode, rc)
		}
		if stale && attempt < maxEpochRetries && ctx.Err() == nil && !cl.cluster.isStopped() {
			mEpochRetries.Inc()
			continue
		}
		break
	}

	mQueryDur.ObserveDuration(time.Since(start))
	switch {
	case err != nil:
		mQueriesError.Inc()
	case !res.Coverage.Complete():
		mQueriesPartial.Inc()
		mPartialResults.Inc()
	default:
		mQueriesOK.Inc()
	}
	return res, err
}

// submit issues one owner sub-request, routing through the request coalescer
// when the cluster has one (CoalesceWindow > 0). With coalescing disabled the
// call degenerates to a direct node submit — today's behavior, exactly.
func (cl *Client) submit(ctx context.Context, n *Node, keys []cell.Key) (query.Result, error) {
	if co := cl.cluster.coalescer; co != nil {
		return co.fetch(ctx, n, keys)
	}
	return n.Submit(ctx, keys)
}

// TimedQuery evaluates a query and reports its wall-clock latency.
func (cl *Client) TimedQuery(q query.Query) (query.Result, time.Duration, error) {
	start := time.Now()
	res, err := cl.Query(q)
	return res, time.Since(start), err
}

// fetchFailFast is the resilience-disabled coordinator: parallel fan-out,
// first error wins and cancels the rest. Identical result semantics to the
// pre-resilience coordinator on healthy clusters.
func (cl *Client) fetchFailFast(ctx context.Context, byNode map[dht.NodeID][]cell.Key) (query.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fanStart := time.Now()
	fanCtx, fanSpan := obs.StartSpan(ctx, "fanout")
	fanSpan.SetAttr("shares", fmt.Sprint(len(byNode)))

	fi := newFanIn(cl.cluster.cfg.FanInWorkers)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for id, ks := range byNode {
		wg.Add(1)
		go func(id dht.NodeID, ks []cell.Key) {
			defer wg.Done()
			shareCtx, ss := obs.StartSpan(fanCtx, "share")
			ss.SetAttr("node", id.String())
			ss.SetAttr("keys", fmt.Sprint(len(ks)))
			var res query.Result
			var err error
			if n := cl.cluster.node(id); n != nil {
				res, err = cl.submit(shareCtx, n, ks)
			} else {
				// The owner this plan targeted has departed: stale view.
				err = ErrNotOwner{Epoch: cl.cluster.Epoch()}
			}
			ss.End()
			if err == nil {
				// Replies merge pairwise as they land, on this reply
				// goroutine; the fan-in owns the reply's cells map from
				// here and recycles it into the Result pool.
				fi.add(res, true)
				return
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = err
				// Fail fast: release siblings still blocked on slow or
				// dead nodes instead of waiting out their silence.
				cancel()
			}
			mu.Unlock()
		}(id, ks)
	}
	wg.Wait()
	fanSpan.End()
	fanDur := time.Since(fanStart)
	mStageFanout.ObserveDuration(fanDur)
	obs.ProfileFromContext(ctx).AddStage("fanout", fanDur)

	if firstErr != nil {
		fi.discard()
		return query.Result{}, firstErr
	}
	// Most of the merge work already ran on the reply goroutines; finish
	// folds the surviving tournament partials and materializes the answer.
	mergeStart := time.Now()
	_, mergeSpan := obs.StartSpan(ctx, "merge")
	merged := fi.finish()
	mergeSpan.End()
	mergeDur := time.Since(mergeStart)
	mStageMerge.ObserveDuration(mergeDur)
	if p := obs.ProfileFromContext(ctx); p != nil {
		p.AddStage("merge", mergeDur)
		p.AddMergeFanIn(fi.stats())
	}
	return merged, nil
}

// shareOutcome is the result of one owner share (one node's slice of the
// footprint) after the full failure-handling ladder has run.
type shareOutcome struct {
	id        dht.NodeID
	keys      []cell.Key
	res       query.Result
	served    map[cell.Key]bool // share keys actually answered
	recovered int               // share keys rescued by a failover path
	err       error             // final error when any key stayed unserved
}

// fetchResilient runs every owner share through the retry/failover ladder
// concurrently, then assembles the merged result and its coverage report.
// The second return reports whether any share bounced with ErrNotOwner —
// the caller's cue to re-plan on a fresh view; when the retry budget is
// exhausted the unserved shares stay visible as honest partial coverage.
func (cl *Client) fetchResilient(ctx context.Context, byNode map[dht.NodeID][]cell.Key, rc ResilienceConfig) (query.Result, bool, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fanStart := time.Now()
	fanCtx, fanSpan := obs.StartSpan(ctx, "fanout")
	fanSpan.SetAttr("shares", fmt.Sprint(len(byNode)))

	fi := newFanIn(cl.cluster.cfg.FanInWorkers)
	outs := make([]*shareOutcome, 0, len(byNode))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for id, ks := range byNode {
		o := &shareOutcome{id: id, keys: ks}
		outs = append(outs, o)
		wg.Add(1)
		go func(o *shareOutcome) {
			defer wg.Done()
			cl.fetchShare(fanCtx, o, rc)
			// Fold this share's cells pairwise as they land (a failed share
			// may still carry a scatter partial). The fan-in owns the map
			// from here; the coverage accounting below reads only
			// keys/served/err.
			fi.add(o.res, true)
			o.res = query.Result{}
			if o.err != nil && !rc.AllowPartial {
				// The whole query is doomed; release the other shares.
				mu.Lock()
				cancel()
				mu.Unlock()
			}
		}(o)
	}
	wg.Wait()
	fanSpan.End()
	fanDur := time.Since(fanStart)
	mStageFanout.ObserveDuration(fanDur)
	obs.ProfileFromContext(ctx).AddStage("fanout", fanDur)

	mergeStart := time.Now()
	_, mergeSpan := obs.StartSpan(ctx, "merge")
	defer func() {
		mergeSpan.End()
		mergeDur := time.Since(mergeStart)
		mStageMerge.ObserveDuration(mergeDur)
		obs.ProfileFromContext(ctx).AddStage("merge", mergeDur)
	}()

	// Deterministic assembly: sort shares by node id so first-error choice
	// and NodeErrors content are reproducible for a given fault schedule.
	// (Cell merge order is the tournament's and may vary run to run; only
	// float summation order differs, which the oracle compares within
	// SumEpsilon.)
	sort.Slice(outs, func(i, j int) bool { return outs[i].id < outs[j].id })

	merged := fi.finish()
	obs.ProfileFromContext(ctx).AddMergeFanIn(fi.stats())
	cov := query.Coverage{NodeErrors: map[string]string{}}
	needed := map[cell.Key]int{}
	got := map[cell.Key]int{}
	var firstErr error
	stale := false
	for _, o := range outs {
		cov.Recovered += o.recovered
		for _, k := range o.keys {
			needed[k]++
			cov.SharesRequested++
			if o.served[k] {
				got[k]++
				cov.SharesServed++
			}
		}
		if o.err != nil {
			if isNotOwner(o.err) {
				stale = true
			}
			cov.NodeErrors[o.id.String()] = o.err.Error()
			if firstErr == nil {
				firstErr = o.err
			}
		}
	}
	cov.Requested = len(needed)
	for k, n := range needed {
		switch g := got[k]; {
		case g == n:
			cov.Covered++
		case g > 0:
			cov.Degraded++
		}
	}
	if len(cov.NodeErrors) == 0 {
		cov.NodeErrors = nil
	}
	merged.Coverage = cov

	switch {
	case cov.Complete():
		return merged, stale, nil
	case !rc.AllowPartial:
		return query.Result{}, stale, firstErr
	case cov.SharesServed == 0:
		return merged, stale, fmt.Errorf("%w: %v", ErrNoCoverage, firstErr)
	default:
		// Graceful degradation: partial result, nil error; the Coverage
		// report is the caller's signal that cells are missing or
		// under-counted.
		return merged, stale, nil
	}
}

// fetchShare runs one owner share through the failure-handling ladder:
//
//  1. direct submit with a per-attempt deadline, retried with doubling
//     backoff while the failure stays retryable;
//  2. helper reroute: serve the whole share from a replication helper's
//     guest graph (replicas of the failed owner's hottest cliques live on
//     nodes picked around the antipode, paper §VII-B3);
//  3. scatter fallback: break the share into per-key (and per-partition)
//     mini-requests, each with a fresh deadline — small requests survive a
//     slow node that a big bundle cannot.
//
// On return o.served marks the answered keys, o.err the final failure if
// any key stayed unserved.
func (cl *Client) fetchShare(ctx context.Context, o *shareOutcome, rc ResilienceConfig) {
	ctx, ss := obs.StartSpan(ctx, "share")
	ss.SetAttr("node", o.id.String())
	ss.SetAttr("keys", fmt.Sprint(len(o.keys)))
	defer ss.End()
	o.served = make(map[cell.Key]bool, len(o.keys))
	node := cl.cluster.node(o.id)
	if node == nil {
		// The planned owner has departed: a stale-view bounce, not a node
		// failure — no ladder rung can serve a share addressed to nobody.
		o.err = ErrNotOwner{Epoch: cl.cluster.Epoch()}
		return
	}

	var lastErr error
	backoff := rc.RetryBackoff
	for attempt := 0; attempt <= rc.Retries; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			obs.ProfileFromContext(ctx).AddRetry()
			if backoff > 0 {
				if err := sleepCtx(ctx, backoff); err != nil {
					o.err = lastErr
					return
				}
				backoff *= 2
			}
		}
		res, err := cl.submitOnce(ctx, node, o.keys, rc)
		if err == nil {
			o.res = res
			for _, k := range o.keys {
				o.served[k] = true
			}
			return
		}
		lastErr = err
		if errors.Is(err, ErrStopped) && !cl.cluster.isStopped() {
			// The node was retired by a Leave while this share was in its
			// queue: reclassify as a stale-route bounce so the coordinator
			// re-plans instead of failing the query with ErrStopped.
			err = ErrNotOwner{Epoch: cl.cluster.Epoch()}
		}
		if isNotOwner(err) {
			// Retrying, helper reroute, or scattering against this node
			// cannot fix a wrong owner assignment; surface the bounce so
			// the coordinator re-plans on a fresh view.
			o.err = err
			return
		}
		if !Retryable(err) || ctx.Err() != nil {
			o.err = err
			return
		}
	}

	if rc.HelperReroute {
		if res, ok := cl.fetchFromHelpers(ctx, node, o.keys, rc); ok {
			mHelperRerouteHit.Inc()
			obs.ProfileFromContext(ctx).AddReroute()
			mRecoveredShares.Add(int64(len(o.keys)))
			o.res = res
			for _, k := range o.keys {
				o.served[k] = true
			}
			o.recovered = len(o.keys)
			return
		}
		mHelperRerouteMiss.Inc()
	}

	if rc.ScatterFallback {
		res, served := cl.scatterFetch(ctx, node, o.keys, rc)
		if len(served) > 0 {
			mRecoveredShares.Add(int64(len(served)))
			o.res = res
			for _, k := range served {
				o.served[k] = true
			}
			o.recovered = len(served)
			if len(served) == len(o.keys) {
				return
			}
		}
	}
	o.err = lastErr
}

// submitOnce performs a single direct sub-request against a node, bounded by
// the per-attempt deadline when one is configured.
func (cl *Client) submitOnce(ctx context.Context, n *Node, keys []cell.Key, rc ResilienceConfig) (query.Result, error) {
	if rc.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.RequestTimeout)
		defer cancel()
	}
	return cl.submit(ctx, n, keys)
}

// fetchFromHelpers tries to serve the whole share from replicas on helper
// nodes: first the helpers the failed owner recorded routes to, then the
// deterministic antipode candidates any client can derive from the share's
// geography (paper §VII-B3) — those survive even when the owner's routing
// table is unreachable with it. A helper counts only if its guest graph
// covers every key (§VII-C: reroute only on full coverage), since a partial
// guest answer cannot be told apart from genuinely empty cells.
func (cl *Client) fetchFromHelpers(ctx context.Context, failed *Node, keys []cell.Key, rc ResilienceConfig) (query.Result, bool) {
	repl := cl.cluster.cfg.Replication
	if !repl.Enabled() || len(keys) == 0 {
		return query.Result{}, false
	}
	seen := map[dht.NodeID]bool{failed.id: true}
	var cands []dht.NodeID
	for _, h := range failed.Routing().Helpers() {
		if !seen[h] {
			seen[h] = true
			cands = append(cands, h)
		}
	}
	rng := rand.New(rand.NewSource(seedFromGeohash(keys[0].Geohash)))
	for _, h := range replication.CandidateHelpers(keys[0].Geohash, cl.cluster.Ring(), failed.id, repl, rng) {
		if !seen[h] {
			seen[h] = true
			cands = append(cands, h)
		}
	}
	if len(cands) > maxHelperCandidates {
		cands = cands[:maxHelperCandidates]
	}
	for _, id := range cands {
		helper := cl.cluster.node(id)
		if helper == nil {
			continue
		}
		res, missing, err := cl.fetchGuestOnce(ctx, helper, keys, rc)
		if err == nil && len(missing) == 0 {
			return res, true
		}
		if ctx.Err() != nil {
			return query.Result{}, false
		}
	}
	return query.Result{}, false
}

// fetchGuestOnce asks one helper's guest graph for the keys, bounded by the
// per-attempt deadline.
func (cl *Client) fetchGuestOnce(ctx context.Context, n *Node, keys []cell.Key, rc ResilienceConfig) (query.Result, []cell.Key, error) {
	if rc.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.RequestTimeout)
		defer cancel()
	}
	return n.FetchGuest(ctx, keys)
}

// scatterFetch breaks a failed share into mini-requests against the same
// owner, each with a fresh per-attempt deadline. Fine keys go one at a
// time; a coarse key (shorter than the partition prefix) is decomposed into
// the owner's extending-partition keys, whose summaries fold back into the
// requested key — associative merging makes the folded partial exactly the
// one the bundled request would have produced. A circuit breaker aborts
// after scatterBreakerLimit consecutive failures so a dead node costs a
// couple of deadlines, not one per key.
func (cl *Client) scatterFetch(ctx context.Context, n *Node, keys []cell.Key, rc ResilienceConfig) (query.Result, []cell.Key) {
	mScatterFallbacks.Inc()
	prof := obs.ProfileFromContext(ctx)
	// The accumulator comes from the columnar pool, lazily: the pure-failure
	// path (dead node, breaker trip before any key lands) allocates nothing
	// and returns the zero Result.
	var acc *query.ColumnarResult
	var served []cell.Key
	fails := 0
	tripped := false
	plen := cl.cluster.Ring().PrefixLen()
	for _, k := range keys {
		if fails >= scatterBreakerLimit {
			if !tripped {
				tripped = true
				mBreakerTrips.Inc()
			}
			break
		}
		if ctx.Err() != nil {
			break
		}
		if len(k.Geohash) >= plen {
			mScatterRequests.Inc()
			prof.AddScatter(1)
			r, err := cl.submitOnce(ctx, n, []cell.Key{k}, rc)
			if err != nil {
				fails++
				continue
			}
			fails = 0
			if r.Len() > 0 {
				if acc == nil {
					acc = query.GetColumnar()
				}
				acc.MergeResult(r)
			}
			query.PutResult(r)
			served = append(served, k)
			continue
		}
		// Coarse key: fetch the owner's partitions one at a time into a
		// pooled staging result; fold into the answer only if every
		// partition arrived, so a half-served coarse key never masquerades
		// as a complete partial.
		var part query.Result
		ok := true
		for _, p := range cl.partitionPrefixes(k.Geohash, n.id) {
			if fails >= scatterBreakerLimit {
				if !tripped {
					tripped = true
					mBreakerTrips.Inc()
				}
				ok = false
				break
			}
			if ctx.Err() != nil {
				ok = false
				break
			}
			pk := cell.Key{Geohash: p, Time: k.Time}
			mScatterRequests.Inc()
			prof.AddScatter(1)
			r, err := cl.submitOnce(ctx, n, []cell.Key{pk}, rc)
			if err != nil {
				fails++
				ok = false
				continue
			}
			fails = 0
			if sum, found := r.Cells[pk]; found {
				if part.Cells == nil {
					part = query.GetResult()
				}
				part.Add(k, sum)
			}
			query.PutResult(r)
		}
		if ok {
			if part.Len() > 0 {
				if acc == nil {
					acc = query.GetColumnar()
				}
				acc.MergeResult(part)
			}
			served = append(served, k)
		}
		query.PutResult(part)
	}
	if acc == nil {
		return query.Result{}, served
	}
	res := acc.ToResult()
	acc.Release()
	return res, served
}

// partitionPrefixes enumerates the partition-prefix geohashes extending a
// coarse geohash that the given node owns.
func (cl *Client) partitionPrefixes(gh string, id dht.NodeID) []string {
	ring := cl.cluster.Ring()
	plen := ring.PrefixLen()
	prefixes := []string{gh}
	for len(prefixes) > 0 && len(prefixes[0]) < plen {
		var next []string
		for _, p := range prefixes {
			next = append(next, geohash.Children(p)...)
		}
		prefixes = next
	}
	var out []string
	for _, p := range prefixes {
		if ring.OwnerOfPartition(p) == id {
			out = append(out, p)
		}
	}
	return out
}

// sleepCtx waits d, aborting early when the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// seedFromGeohash derives a deterministic RNG seed from a geohash so every
// client walks the same helper-candidate sequence for the same share.
func seedFromGeohash(gh string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(gh))
	return int64(h.Sum64())
}

// GroupByOwner exposes the coordinator's owner assignment: every key mapped
// to the node(s) owning its backing partitions. Harnesses use it to check
// per-node cache completeness.
func (cl *Client) GroupByOwner(keys []cell.Key) map[dht.NodeID][]cell.Key {
	return cl.groupByOwner(cl.cluster.Ring(), keys)
}

// groupByOwner assigns every key to the node(s) owning its backing
// partitions. Keys at or finer than the partition prefix have exactly one
// owner; coarser keys span every extending partition, and each owner
// computes its partial summary (partials merge associatively).
//
// Repeated keys in the footprint (overlapping viewport tiles, duplicated
// drill-down cells) are elided before fan-out: a duplicate would only make
// the owner serve — and the wire carry — the same summary twice.
func (cl *Client) groupByOwner(ring *dht.Ring, keys []cell.Key) map[dht.NodeID][]cell.Key {
	plen := ring.PrefixLen()
	out := map[dht.NodeID][]cell.Key{}
	seenKey := make(map[cell.Key]struct{}, len(keys))
	dups := 0
	for _, k := range keys {
		if _, dup := seenKey[k]; dup {
			dups++
			continue
		}
		seenKey[k] = struct{}{}
		if len(k.Geohash) >= plen {
			id := ring.Owner(k.Geohash)
			out[id] = append(out[id], k)
			continue
		}
		// Coarse key: fan out to every owner of an extending partition,
		// deduplicating per node.
		prefixes := []string{k.Geohash}
		for len(prefixes[0]) < plen {
			var next []string
			for _, p := range prefixes {
				next = append(next, geohash.Children(p)...)
			}
			prefixes = next
		}
		seen := map[dht.NodeID]bool{}
		for _, p := range prefixes {
			id := ring.OwnerOfPartition(p)
			if !seen[id] {
				seen[id] = true
				out[id] = append(out[id], k)
			}
		}
	}
	if dups > 0 {
		mCoordDedupKeys.Add(int64(dups))
	}
	return out
}

// Describe formats a one-line summary of a result for logging and examples.
func Describe(res query.Result, attr string) string {
	return fmt.Sprintf("%d cells, %d %s observations", res.Len(), res.TotalCount(attr), attr)
}
