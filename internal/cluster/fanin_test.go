package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stash/internal/cell"
	"stash/internal/query"
	"stash/internal/temporal"
)

func fanKey(i int) cell.Key {
	return cell.MustKey(fmt.Sprintf("9q%04d", i), "2021-06-01", temporal.Day)
}

// fanParts builds node-reply-shaped results: `parts` results of
// `keysPerPart` cells each, drawn from a shared key universe so partials
// overlap (the common case for sibling shares of one viewport).
func fanParts(seed int64, parts, keysPerPart, universe int) []query.Result {
	rng := rand.New(rand.NewSource(seed))
	out := make([]query.Result, parts)
	for p := range out {
		out[p] = query.NewResult()
		for i := 0; i < keysPerPart; i++ {
			s := cell.NewSummary()
			s.Observe("temperature", rng.NormFloat64()*30)
			s.Observe("humidity", rng.Float64()*100)
			out[p].Add(fanKey(rng.Intn(universe)), s)
		}
	}
	return out
}

func requireSameCells(t *testing.T, got, want query.Result) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs, ok := got.Cells[k]
		if !ok {
			t.Fatalf("missing key %v", k)
		}
		for attr, w := range ws.Stats {
			if g := gs.Stats[attr]; !g.ApproxEqual(w, 1e-9) {
				t.Fatalf("key %v attr %q: got %+v want %+v", k, attr, g, w)
			}
		}
	}
}

// TestFanInMatchesSerial: the tournament must produce the same cells as the
// legacy serial fold over the same partials (float sums within SumEpsilon-
// style tolerance; the merge algebra is commutative/associative).
func TestFanInMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 33} {
		parts := fanParts(int64(n)+1, n, 32, 64)
		want := MergeResults(parts, -1)
		got := MergeResults(parts, 0)
		requireSameCells(t, got, want)
	}
}

// TestFanInConcurrentAdds drives add() from many goroutines at once — the
// production shape, where reply goroutines merge as replies land — and checks
// the result and the reported stats.
func TestFanInConcurrentAdds(t *testing.T) {
	const n = 40
	parts := fanParts(99, n, 16, 48)
	want := MergeResults(parts, -1)

	fi := newFanIn(4)
	var wg sync.WaitGroup
	for _, p := range parts {
		wg.Add(1)
		go func(p query.Result) {
			defer wg.Done()
			fi.add(p, false)
		}(p)
	}
	wg.Wait()
	got := fi.finish()
	requireSameCells(t, got, want)

	gotParts, depth := fi.stats()
	if gotParts != n {
		t.Fatalf("parts = %d, want %d", gotParts, n)
	}
	// Tournament height is at least ceil(log2(n)) and at most n.
	if depth < 6 || depth > n {
		t.Fatalf("depth = %d, outside [log2(%d), %d]", depth, n, n)
	}
}

// TestFanInOwnedRecycling: owned results must be recycled (pooled) and empty
// owned results skipped, without corrupting the merge.
func TestFanInOwnedRecycling(t *testing.T) {
	parts := fanParts(7, 6, 16, 24)
	want := MergeResults(parts, -1)

	fi := newFanIn(2)
	for _, p := range parts {
		owned := query.GetResult()
		for k, s := range p.Cells {
			owned.Add(k, s)
		}
		fi.add(owned, true)
	}
	fi.add(query.GetResult(), true) // empty owned result: skipped, recycled
	requireSameCells(t, fi.finish(), want)
}

// TestFanInDiscard: the error path must release parked partials without
// panicking, and finish-after-nothing must return an empty result.
func TestFanInDiscard(t *testing.T) {
	fi := newFanIn(0)
	for _, p := range fanParts(3, 4, 8, 16) {
		fi.add(p, false)
	}
	fi.discard()

	fi2 := newFanIn(0)
	if r := fi2.finish(); r.Len() != 0 {
		t.Fatalf("empty fan-in produced %d cells", r.Len())
	}
}

// TestMergeResultsSerialDepth: the serial baseline reports the partial count
// as its (left-deep) merge depth.
func TestMergeResultsSerialDepth(t *testing.T) {
	fi := newFanIn(-1)
	for _, p := range fanParts(5, 7, 8, 16) {
		fi.add(p, false)
	}
	fi.finish()
	parts, depth := fi.stats()
	if parts != 7 || depth != 7 {
		t.Fatalf("serial stats = (%d, %d), want (7, 7)", parts, depth)
	}
}

// BenchmarkFanIn compares the legacy serial reply fold against the parallel
// tournament at increasing fan-out widths. Each iteration replays the
// production shape: one goroutine per node reply calling add() concurrently,
// then a single finish(). The tournament's advantage grows with width —
// the acceptance bar is beating serial from 16 nodes up.
func BenchmarkFanIn(b *testing.B) {
	for _, nodes := range []int{8, 16, 32, 64} {
		parts := fanParts(int64(nodes), nodes, 256, 1024)
		b.Run(fmt.Sprintf("serial/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fi := newFanIn(-1)
				for _, p := range parts {
					fi.add(p, false)
				}
				fi.finish()
			}
		})
		b.Run(fmt.Sprintf("tournament/nodes=%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fi := newFanIn(0)
				var wg sync.WaitGroup
				for _, p := range parts {
					wg.Add(1)
					go func(p query.Result) {
						defer wg.Done()
						fi.add(p, false)
					}(p)
				}
				wg.Wait()
				fi.finish()
			}
		})
	}
}
