package cluster

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/geohash"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/simnet"
	"stash/internal/temporal"
)

// fastResilience returns a resilient coordinator config scaled for tests:
// short deadlines so crashed-node waits cost milliseconds, not the
// production 150ms.
func fastResilience() ResilienceConfig {
	return ResilienceConfig{
		RequestTimeout:  25 * time.Millisecond,
		Retries:         1,
		RetryBackoff:    time.Millisecond,
		AllowPartial:    true,
		HelperReroute:   true,
		ScatterFallback: true,
	}
}

// regionQuery is a country-sized footprint (several dozen res-3 tiles)
// spanning many owners — big enough that losing one node leaves most of the
// map servable.
func regionQuery() query.Query {
	return query.Query{
		Box:         geohash.Box{MinLat: 30, MaxLat: 40, MinLon: -100, MaxLon: -90},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  3,
		TemporalRes: temporal.Day,
	}
}

// checkCoverageArithmetic asserts the internal consistency of a coverage
// report: the key classes partition the request, shares never overshoot,
// and the result map never contains more keys than were requested.
func checkCoverageArithmetic(t *testing.T, res query.Result) {
	t.Helper()
	c := res.Coverage
	if c.Covered+c.Degraded+c.Missing() != c.Requested {
		t.Fatalf("coverage classes do not partition: %+v", c)
	}
	if c.SharesServed > c.SharesRequested {
		t.Fatalf("served %d shares of %d requested", c.SharesServed, c.SharesRequested)
	}
	if c.Ratio() < 0 || c.Ratio() > 1 {
		t.Fatalf("ratio %v out of range", c.Ratio())
	}
	if c.Requested > 0 && res.Len() > c.Requested {
		t.Fatalf("result has %d cells for %d requested keys", res.Len(), c.Requested)
	}
	if c.Complete() && c.Requested > 0 && c.Covered != c.Requested {
		t.Fatalf("Complete() with covered %d/%d", c.Covered, c.Requested)
	}
}

// TestChaosPanningWorkload is the headline chaos test: a panning workload
// runs against a cluster while a seeded kill/pause/drop/reject schedule
// plays out, and the system must neither deadlock nor panic; every answer's
// coverage report must be arithmetically consistent; and once every fault
// heals, queries must return complete coverage with the same aggregates as
// before the chaos.
func TestChaosPanningWorkload(t *testing.T) {
	const (
		seed  = 20250806
		nodes = 8
		steps = 10
	)
	fp := simnet.NewFaultPlan(seed)
	c := newTestCluster(t, func(cfg *Config) {
		cfg.Nodes = nodes
		cfg.Faults = fp
		cfg.Resilience = fastResilience()
	})

	q := countyQuery()
	baseline, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !baseline.Coverage.Complete() {
		t.Fatalf("healthy cluster returned partial coverage: %v", baseline.Coverage)
	}

	schedule := simnet.GenerateFaultSchedule(seed, nodes, steps, 6)
	if len(schedule) == 0 {
		t.Fatal("empty fault schedule")
	}
	next := 0
	for step := 0; step < steps; step++ {
		for next < len(schedule) && schedule[next].Step <= step {
			fp.Apply(schedule[next])
			next++
		}
		var wg sync.WaitGroup
		results := make([]query.Result, 3)
		errs := make([]error, 3)
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				qq := q.Pan(geohash.Direction((step*3+w)%8), 0.05)
				results[w], errs[w] = c.Client().Query(qq)
			}(w)
		}
		wg.Wait()
		for w := 0; w < 3; w++ {
			switch {
			case errs[w] == nil:
				checkCoverageArithmetic(t, results[w])
			case errors.Is(errs[w], ErrNoCoverage):
				// Legal: every owner of that footprint was down.
			default:
				t.Fatalf("step %d worker %d: unexpected error %v", step, w, errs[w])
			}
		}
	}

	// Full recovery: heal everything; the same query must come back with
	// complete coverage and the pre-chaos aggregates (static dataset).
	fp.Reset()
	healed, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !healed.Coverage.Complete() {
		t.Fatalf("post-recovery coverage not complete: %v", healed.Coverage)
	}
	if healed.TotalCount("temperature") != baseline.TotalCount("temperature") {
		t.Fatalf("post-recovery counts differ: %d vs %d",
			healed.TotalCount("temperature"), baseline.TotalCount("temperature"))
	}
}

// TestPartialResultOneNodeCrashed is the acceptance scenario: with one of 16
// nodes crashed, a country-size query under the resilient coordinator
// returns a partial result with an accurate coverage report, within the
// deadline budget — never a hang, never an all-or-nothing error.
func TestPartialResultOneNodeCrashed(t *testing.T) {
	fp := simnet.NewFaultPlan(7)
	c := newTestCluster(t, func(cfg *Config) {
		cfg.Nodes = 16
		cfg.Faults = fp
		rc := fastResilience()
		rc.HelperReroute = false // no replicas in this scenario
		cfg.Resilience = rc
	})
	q := regionQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	byNode := c.Client().GroupByOwner(keys)
	if len(byNode) < 3 {
		t.Fatalf("query spans only %d owners; want several", len(byNode))
	}
	// Crash the owner with the most keys so the damage is visible.
	var victim dht.NodeID
	most := -1
	for id, ks := range byNode {
		if len(ks) > most {
			most, victim = len(ks), id
		}
	}
	fp.Crash(int(victim))

	start := time.Now()
	res, err := c.Client().Query(q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("expected graceful degradation, got %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("degraded query took %v; deadline machinery not bounding the wait", elapsed)
	}
	cov := res.Coverage
	checkCoverageArithmetic(t, res)
	if cov.Complete() {
		t.Fatalf("coverage claims complete with a crashed owner: %v", cov)
	}
	if cov.Missing()+cov.Degraded == 0 {
		t.Fatalf("no missing or degraded keys reported: %v", cov)
	}
	if _, ok := cov.NodeErrors[victim.String()]; !ok {
		t.Fatalf("NodeErrors %v does not name crashed %v", cov.NodeErrors, victim)
	}
	if res.Len() == 0 {
		t.Fatal("partial result carried no cells at all")
	}
	// The report must be accurate: exactly the victim's exclusive keys are
	// unaccounted for.
	exclusive := 0
	for _, k := range byNode[victim] {
		if len(k.Geohash) >= c.Ring().PrefixLen() {
			exclusive++
		}
	}
	if cov.Missing() != exclusive {
		t.Fatalf("Missing() = %d, want %d (victim's exclusive keys)", cov.Missing(), exclusive)
	}

	// Heal and re-ask: full coverage again.
	fp.Recover(int(victim))
	res2, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Coverage.Complete() {
		t.Fatalf("coverage after heal: %v", res2.Coverage)
	}
}

// TestResilientHealthyMatchesFailFast pins the acceptance requirement that
// healthy-path behavior is unchanged by the resilience machinery: same
// cells, same aggregates, complete coverage.
func TestResilientHealthyMatchesFailFast(t *testing.T) {
	plain := newTestCluster(t, nil)
	resilient := newTestCluster(t, func(cfg *Config) {
		cfg.Resilience = DefaultResilienceConfig()
	})
	q := countyQuery()
	want, err := plain.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resilient.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.TotalCount("temperature") != want.TotalCount("temperature") {
		t.Fatalf("resilient healthy result differs: %d cells/%d obs vs %d/%d",
			got.Len(), got.TotalCount("temperature"), want.Len(), want.TotalCount("temperature"))
	}
	if !got.Coverage.Complete() || got.Coverage.Covered != got.Coverage.Requested {
		t.Fatalf("healthy resilient coverage: %v", got.Coverage)
	}
	if got.Coverage.Recovered != 0 {
		t.Fatalf("healthy query claims %d recovered shares", got.Coverage.Recovered)
	}
}

// TestStopRacesInflightSubmit floods the cluster and stops it mid-flight:
// every outstanding query must return (ErrStopped or a result, never a
// hang), and under -race the shutdown ordering must be clean — this is the
// regression test for the popWG.Wait-before-workers stop-order bug.
func TestStopRacesInflightSubmit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.PointsPerBlock = 64
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()

	q := countyQuery()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				qq := q.Pan(geohash.Direction((i+j)%8), 0.05)
				if _, err := c.Client().Query(qq); err != nil {
					// ErrStopped and friends are expected once Stop lands.
					return
				}
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	c.Stop()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queries still in flight 10s after Stop: shutdown deadlock")
	}
	// Submitting after Stop stays a clean error.
	if _, err := c.Client().Query(q); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-stop query returned %v, want ErrStopped", err)
	}
}

// TestFetchCancelsOnHardError: with resilience disabled, one node answering
// with a permanent storage fault must cancel the sibling sub-request stuck
// on a crashed node — otherwise Fetch would block forever (background
// context, no deadline).
func TestFetchCancelsOnHardError(t *testing.T) {
	fp := simnet.NewFaultPlan(3)
	c := newTestCluster(t, func(cfg *Config) {
		cfg.Faults = fp
	})
	q := regionQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	byNode := c.Client().GroupByOwner(keys)
	if len(byNode) < 2 {
		t.Fatalf("need a footprint spanning at least 2 nodes, got %d", len(byNode))
	}
	ids := make([]dht.NodeID, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fp.SetError(int(ids[0]), true) // instant hard error
	fp.Crash(int(ids[1]))          // eternal silence

	type out struct {
		err error
	}
	ch := make(chan out, 1)
	go func() {
		_, err := c.Client().Fetch(keys)
		ch <- out{err: err}
	}()
	select {
	case o := <-ch:
		if !errors.Is(o.err, ErrFaulted) {
			t.Fatalf("Fetch returned %v, want ErrFaulted", o.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Fetch hung: hard error did not cancel the crashed-node sub-request")
	}
}

// TestFaultPlanDeterministicReplay: the same seed must yield the same fault
// schedule, and replaying it against a fresh cluster must yield identical
// coverage reports query for query — the property that makes chaos failures
// reproducible from a single logged seed.
func TestFaultPlanDeterministicReplay(t *testing.T) {
	const (
		seed  = 99173
		nodes = 6
		steps = 8
	)
	type covSummary struct {
		Requested, Covered, Degraded, Missing    int
		SharesRequested, SharesServed, Recovered int
		NodeErrs                                 []string
		Err                                      string
		Count                                    int64
	}
	run := func() []covSummary {
		fp := simnet.NewFaultPlan(seed)
		cfg := DefaultConfig()
		cfg.Nodes = nodes
		cfg.PointsPerBlock = 64
		cfg.Faults = fp
		// Crash and reject only: both resolve deterministically (deadline
		// and instant bounce); pause/drop outcomes can race the deadline.
		cfg.Resilience = ResilienceConfig{
			RequestTimeout:  15 * time.Millisecond,
			Retries:         1,
			RetryBackoff:    time.Millisecond,
			AllowPartial:    true,
			ScatterFallback: true,
		}
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Start()
		defer c.Stop()

		schedule := simnet.GenerateFaultSchedule(seed, nodes, steps, 5, simnet.FaultCrash, simnet.FaultReject)
		var sums []covSummary
		next := 0
		q := countyQuery()
		for step := 0; step < steps; step++ {
			for next < len(schedule) && schedule[next].Step <= step {
				fp.Apply(schedule[next])
				next++
			}
			for w := 0; w < 2; w++ {
				qq := q.Pan(geohash.Direction((step*2+w)%8), 0.05)
				res, err := c.Client().Query(qq)
				cov := res.Coverage
				s := covSummary{
					Requested: cov.Requested, Covered: cov.Covered,
					Degraded: cov.Degraded, Missing: cov.Missing(),
					SharesRequested: cov.SharesRequested, SharesServed: cov.SharesServed,
					Recovered: cov.Recovered,
					Count:     res.TotalCount("temperature"),
				}
				for n, e := range cov.NodeErrors {
					s.NodeErrs = append(s.NodeErrs, n+": "+e)
				}
				sort.Strings(s.NodeErrs)
				if err != nil {
					s.Err = err.Error()
				}
				sums = append(sums, s)
			}
		}
		return sums
	}

	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Errorf("query %d diverged:\n run A: %+v\n run B: %+v", i, a[i], b[i])
			}
		}
		t.Fatal("replay with identical seed produced different coverage reports")
	}
	// The run must actually have exercised failures, or the test is vacuous.
	sawPartial := false
	for _, s := range a {
		if s.Covered != s.Requested || len(s.NodeErrs) > 0 {
			sawPartial = true
			break
		}
	}
	if !sawPartial {
		t.Fatal("schedule produced no degraded query; replay test is vacuous")
	}
}

// TestHelperRerouteServesCrashedOwnerShare builds the §VII failover scenario
// end to end: a helper holds a replica of the owner's share (as after a
// clique handoff), the owner crashes, and the resilient coordinator serves
// the share from the helper's guest graph — complete coverage, with the
// rescue visible in Coverage.Recovered.
func TestHelperRerouteServesCrashedOwnerShare(t *testing.T) {
	fp := simnet.NewFaultPlan(11)
	rc := replication.DefaultConfig()
	rc.QueueThreshold = 1 << 20 // never organically hotspotted
	rc.RerouteProbability = 0
	c := newTestCluster(t, func(cfg *Config) {
		cfg.Faults = fp
		cfg.Replication = rc
		res := fastResilience()
		res.ScatterFallback = false // prove the helper path did the rescue
		cfg.Resilience = res
	})
	q := countyQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Client().Fetch(keys)
	if err != nil {
		t.Fatal(err)
	}

	byNode := c.Client().GroupByOwner(keys)
	var owner dht.NodeID
	most := -1
	for id, ks := range byNode {
		if len(ks) > most {
			most, owner = len(ks), id
		}
	}
	share := byNode[owner]
	var helper *Node
	for _, n := range c.Nodes() {
		if n.ID() != owner {
			helper = n
			break
		}
	}

	// Stage the replica on the helper, exactly as askReplicate would: data
	// cells into the guest graph, dataless keys negative-cached.
	payload := query.NewResult()
	var empties []cell.Key
	for _, k := range share {
		if s, ok := full.Cells[k]; ok {
			payload.Add(k, s)
		} else {
			empties = append(empties, k)
		}
	}
	helper.Guest().Put(payload)
	if len(empties) > 0 {
		helper.Guest().PutEmpty(empties)
	}
	c.Node(owner).Routing().Add(share[0], helper.ID(), share, time.Now())

	fp.Crash(int(owner))
	res, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage
	if !cov.Complete() {
		t.Fatalf("helper held the full share but coverage is %v", cov)
	}
	if cov.Recovered != len(share) {
		t.Fatalf("Recovered = %d, want %d (the rescued share)", cov.Recovered, len(share))
	}
	if res.TotalCount("temperature") != full.TotalCount("temperature") {
		t.Fatalf("rescued result differs: %d vs %d",
			res.TotalCount("temperature"), full.TotalCount("temperature"))
	}
	if c.Node(helper.ID()).Stats().GuestServed == 0 {
		t.Fatal("helper's guest graph served nothing; rescue came from elsewhere")
	}
}

// TestScatterRecoversOversizedReply: with real (sleeping) transfer costs, a
// bundled share whose reply payload outlives the per-attempt deadline is
// exactly what the scatter fallback exists for — per-key mini-requests carry
// one-cell replies that fit a fresh deadline each. Every share recovers, so
// coverage is complete, with the rescue visible in Recovered.
func TestScatterRecoversOversizedReply(t *testing.T) {
	// Reference aggregates from a free-cost cluster over the same dataset.
	plain := newTestCluster(t, nil)
	q := countyQuery()
	want, err := plain.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCluster(t, func(cfg *Config) {
		cfg.Sleeper = simnet.NewReal()
		// Transfer-dominated costs: a result cell costs ~16ms on the wire,
		// so any reply of 3+ cells blows the 40ms attempt deadline while
		// single-cell replies (and their requests) fit comfortably.
		cfg.Model = simnet.Model{NetByte: 100 * time.Microsecond}
		cfg.Resilience = ResilienceConfig{
			RequestTimeout:  40 * time.Millisecond,
			AllowPartial:    true,
			ScatterFallback: true,
		}
	})
	res, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverageArithmetic(t, res)
	if !res.Coverage.Complete() {
		t.Fatalf("scatter should have recovered every share, got %v", res.Coverage)
	}
	if res.Coverage.Recovered == 0 {
		t.Fatal("no shares recovered: bundles fit the deadline and the test is vacuous")
	}
	if res.TotalCount("temperature") != want.TotalCount("temperature") {
		t.Fatalf("scatter-recovered counts differ: %d vs %d",
			res.TotalCount("temperature"), want.TotalCount("temperature"))
	}
}

// TestScatterPartitionFoldMatchesBundle drives the scatter decomposition of
// a coarse key directly: fetching the owner's extending partitions one at a
// time and folding them back into the requested key must reproduce the
// owner's bundled partial exactly (counts, min, max; sums up to float
// association order).
func TestScatterPartitionFoldMatchesBundle(t *testing.T) {
	c := newTestCluster(t, nil)
	cl := c.Client()
	q := query.Query{
		Box:         geohash.MustBox("9"),
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  1,
		TemporalRes: temporal.Day,
	}
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	rc := ResilienceConfig{AllowPartial: true, ScatterFallback: true}
	for id, share := range cl.GroupByOwner(keys) {
		n := c.Node(id)
		direct, err := n.Submit(context.Background(), share)
		if err != nil {
			t.Fatal(err)
		}
		scat, served := cl.scatterFetch(context.Background(), n, share, rc)
		if len(served) != len(share) {
			t.Fatalf("node %v: scatter served %d of %d keys", id, len(served), len(share))
		}
		if scat.Len() != direct.Len() {
			t.Fatalf("node %v: scatter %d cells, bundle %d", id, scat.Len(), direct.Len())
		}
		for k, ds := range direct.Cells {
			ss, ok := scat.Cells[k]
			if !ok {
				t.Fatalf("node %v: scatter missing cell %v", id, k)
			}
			for attr, d := range ds.Stats {
				s := ss.Stats[attr]
				if d.Count != s.Count || d.Min != s.Min || d.Max != s.Max {
					t.Fatalf("node %v cell %v attr %s: %+v != %+v", id, k, attr, d, s)
				}
				if diff := math.Abs(d.Sum - s.Sum); diff > 1e-6*math.Max(1, math.Abs(d.Sum)) {
					t.Fatalf("node %v cell %v attr %s: sums differ beyond association error: %v vs %v",
						id, k, attr, d.Sum, s.Sum)
				}
			}
		}
	}
}

// TestCoarseKeyDegradedWhenOwnerRejects: a coarse key is served by several
// owners' partials; when one owner bounces every request, the key must come
// back Degraded — present in the map, flagged as under-counting — not
// silently wrong and not missing.
func TestCoarseKeyDegradedWhenOwnerRejects(t *testing.T) {
	fp := simnet.NewFaultPlan(17)
	c := newTestCluster(t, func(cfg *Config) {
		cfg.Faults = fp
		rc := fastResilience()
		rc.HelperReroute = false
		// The victim fails instantly (rejection); healthy owners scan a
		// continent-scale partial, which needs headroom under -race.
		rc.RequestTimeout = 2 * time.Second
		cfg.Resilience = rc
	})
	q := query.Query{
		Box:         geohash.MustBox("9"),
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  1,
		TemporalRes: temporal.Day,
	}
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	byNode := c.Client().GroupByOwner(keys)
	if len(byNode) < 2 {
		t.Fatalf("coarse key spans %d owners; want several", len(byNode))
	}
	want, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}

	var victim dht.NodeID
	for id := range byNode {
		victim = id
		break
	}
	fp.SetReject(int(victim), true)
	res, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverageArithmetic(t, res)
	cov := res.Coverage
	if cov.Degraded == 0 {
		t.Fatalf("rejecting one owner of a coarse key should degrade it, got %v", cov)
	}
	if cov.Missing() != 0 {
		t.Fatalf("coarse key reported missing despite surviving partials: %v", cov)
	}
	if res.Len() == 0 {
		t.Fatal("degraded coarse key absent from the result map")
	}
	if got, w := res.TotalCount("temperature"), want.TotalCount("temperature"); got == 0 || got >= w {
		t.Fatalf("degraded partial should under-count: got %d, healthy %d", got, w)
	}
}
