package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/query"
	"stash/internal/temporal"
)

// mustQuery runs a query and fails the test on error or empty result.
func mustQuery(t *testing.T, c *Cluster, q query.Query) query.Result {
	t.Helper()
	res, err := c.Client().Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("empty result")
	}
	return res
}

func sameResult(t *testing.T, got, want query.Result, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: cells %d != %d", label, got.Len(), want.Len())
	}
	for k, s := range want.Cells {
		gs, ok := got.Cells[k]
		if !ok {
			t.Fatalf("%s: missing cell %v", label, k)
		}
		for attr, st := range s.Stats {
			g := gs.Stats[attr]
			if g.Count != st.Count {
				t.Fatalf("%s: cell %v attr %s: got count=%d, want count=%d",
					label, k, attr, g.Count, st.Count)
			}
		}
	}
}

func TestJoinAdvancesEpochAndMembership(t *testing.T) {
	c := newTestCluster(t, nil)
	e0 := c.Epoch()
	if e0 == 0 {
		t.Fatal("fresh cluster reports epoch 0 (reserved for no-view)")
	}
	id, err := c.Join()
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("epoch after join: %d, want %d", c.Epoch(), e0+1)
	}
	if !c.View().Contains(id) {
		t.Fatalf("view does not contain joined node %v", id)
	}
	if c.node(id) == nil {
		t.Fatalf("member table does not contain joined node %v", id)
	}
	st := c.RebalanceStatus()
	if st.Epoch != e0+1 || st.Changes != 1 || st.Active || st.Phase != "idle" {
		t.Fatalf("status after join: %+v", st)
	}
	if len(st.Members) != 5 {
		t.Fatalf("members after join: %d, want 5", len(st.Members))
	}
}

func TestLeaveAdvancesEpochAndRetiresNode(t *testing.T) {
	c := newTestCluster(t, nil)
	e0 := c.Epoch()
	victim := c.Nodes()[0].ID()
	if err := c.Leave(victim); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("epoch after leave: %d, want %d", c.Epoch(), e0+1)
	}
	if c.View().Contains(victim) {
		t.Fatal("departed node still in view")
	}
	if c.node(victim) != nil {
		t.Fatal("departed node still in member table")
	}
	if err := c.Leave(victim); err == nil {
		t.Fatal("double leave accepted")
	}
}

func TestLeaveLastNodeRejected(t *testing.T) {
	c := newTestCluster(t, func(cfg *Config) { cfg.Nodes = 2 })
	if err := c.Leave(c.Nodes()[0].ID()); err != nil {
		t.Fatal(err)
	}
	last := c.Nodes()[0].ID()
	if err := c.Leave(last); err == nil {
		t.Fatal("removing the last node was accepted")
	}
}

func TestJoinQueryCorrectness(t *testing.T) {
	// Aggregates must stay byte-identical to the cache-less basic system
	// across a join: before, warm; after, both the re-routed cold paths and
	// the migrated warm cells.
	basic := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	c := newTestCluster(t, nil)
	q := countyQuery()

	want := mustQuery(t, basic, q)
	sameResult(t, mustQuery(t, c, q), want, "pre-join cold")
	sameResult(t, mustQuery(t, c, q), want, "pre-join warm")

	if _, err := c.Join(); err != nil {
		t.Fatal(err)
	}
	sameResult(t, mustQuery(t, c, q), want, "post-join")
	sameResult(t, mustQuery(t, c, q), want, "post-join warm")
}

func TestLeaveQueryCorrectness(t *testing.T) {
	basic := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	c := newTestCluster(t, nil)
	q := countyQuery()

	want := mustQuery(t, basic, q)
	sameResult(t, mustQuery(t, c, q), want, "pre-leave")

	if err := c.Leave(c.Nodes()[0].ID()); err != nil {
		t.Fatal(err)
	}
	sameResult(t, mustQuery(t, c, q), want, "post-leave")
	sameResult(t, mustQuery(t, c, q), want, "post-leave warm")
}

func TestJoinMigratesResidentCells(t *testing.T) {
	// Seed one fine cell into every partition's owner, then join: the moved
	// partitions' cells must be shipped, and every seeded cell must be
	// resident on its post-join owner — none lost, none left behind.
	c := newTestCluster(t, nil)
	ring := c.Ring()
	day := temporal.MustParse("2015-02-02", temporal.Day)
	seed := map[dht.NodeID]query.Result{}
	var all []cell.Key
	for _, part := range ring.Partitions() {
		k, err := cell.NewKey(part+"00", day)
		if err != nil {
			t.Fatal(err)
		}
		s := cell.NewSummary()
		s.Observe("temperature", 1)
		owner := ring.Owner(k.Geohash)
		r, ok := seed[owner]
		if !ok {
			r = query.NewResult()
			seed[owner] = r
		}
		r.Add(k, s)
		all = append(all, k)
	}
	for id, r := range seed {
		c.node(id).Graph().Put(r)
	}

	if _, err := c.Join(); err != nil {
		t.Fatal(err)
	}
	st := c.RebalanceStatus()
	if st.MovedPartitions == 0 {
		t.Fatal("join moved no partitions")
	}
	if st.CellsMigrated == 0 {
		t.Fatal("join migrated no cells despite resident cells in every partition")
	}
	if st.BytesMigrated == 0 {
		t.Fatal("cells migrated but no bytes accounted")
	}

	newRing := c.Ring()
	byOwner := map[dht.NodeID][]cell.Key{}
	for _, k := range all {
		id := newRing.Owner(k.Geohash)
		byOwner[id] = append(byOwner[id], k)
	}
	for id, keys := range byOwner {
		n := c.node(id)
		if n == nil {
			t.Fatalf("no node for owner %v", id)
		}
		_, missing := n.Graph().GetBatch(keys)
		if len(missing) > 0 {
			t.Fatalf("node %v missing %d of %d cells after handoff (e.g. %v)",
				id, len(missing), len(keys), missing[0])
		}
	}
}

func TestJoinKeepsQueryFootprintWarm(t *testing.T) {
	// After the cache fully covers a query's footprint, a join must not
	// force the footprint back to disk: moved cells arrive warm on the new
	// owner, so the repeat query reads zero blocks.
	c := newTestCluster(t, nil)
	q := countyQuery()
	keys, _ := q.Footprint()
	mustQuery(t, c, q)
	deadline := time.Now().Add(5 * time.Second)
	for {
		complete := true
		for _, n := range c.Nodes() {
			owned := c.Client().groupByOwner(c.Ring(), keys)[n.ID()]
			if n.Graph().PLM().Completeness(owned) < 1 {
				complete = false
				break
			}
		}
		if complete {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cache never fully covered the query footprint")
		}
		mustQuery(t, c, q)
		time.Sleep(time.Millisecond)
	}

	if _, err := c.Join(); err != nil {
		t.Fatal(err)
	}
	base := c.TotalStats().BlocksRead
	mustQuery(t, c, q)
	if extra := c.TotalStats().BlocksRead - base; extra != 0 {
		t.Fatalf("post-join repeat query read %d blocks; handoff should have kept it warm", extra)
	}
}

func TestStaleEpochRequestBounced(t *testing.T) {
	c := newTestCluster(t, nil)
	n := c.Nodes()[0]
	keys, _ := countyQuery().Footprint()
	ctx := withEpoch(context.Background(), c.Epoch()+7)
	_, err := n.Submit(ctx, keys[:1])
	if err == nil {
		t.Fatal("stale-epoch request served")
	}
	var no ErrNotOwner
	if !errors.As(err, &no) {
		t.Fatalf("stale-epoch request failed with %v, want ErrNotOwner", err)
	}
	if no.RequestEpoch != c.Epoch()+7 || no.Epoch != c.Epoch() {
		t.Fatalf("ErrNotOwner epochs: %+v", no)
	}
	if !Retryable(err) {
		t.Fatal("ErrNotOwner not retryable")
	}
}

func TestClientRetriesAcrossFlip(t *testing.T) {
	// A client planning on view E must transparently re-plan when the
	// cluster has already flipped to E+1 by the time requests land.
	c := newTestCluster(t, nil)
	q := countyQuery()
	want := mustQuery(t, c, q)

	retries0 := mEpochRetries.Value()
	if _, err := c.Join(); err != nil {
		t.Fatal(err)
	}
	// Hand-build a stale plan: group by the *old* routing but let
	// FetchContext discover the bounce and re-plan on the fresh view.
	keys, _ := q.Footprint()
	ctx := withEpoch(context.Background(), c.Epoch()-1)
	n := c.Nodes()[0]
	if _, err := n.Submit(ctx, keys[:1]); err == nil {
		t.Fatal("stale submit unexpectedly served")
	}
	got, err := c.Client().Fetch(keys)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want, "post-flip fetch")
	_ = retries0
}

func TestQueriesDuringChurn(t *testing.T) {
	// Queries racing joins and leaves must never return a wrong answer:
	// every complete result matches the oracle, and failures are limited to
	// honest coverage errors.
	basic := newTestCluster(t, func(cfg *Config) { cfg.Stash = nil })
	c := newTestCluster(t, nil)
	q := countyQuery()
	want := mustQuery(t, basic, q)
	mustQuery(t, c, q)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Pace the loop: on a single-P runtime a hot query loop's
				// request/reply wake chain can keep the scheduler's runnext
				// slot occupied indefinitely, starving the runnable worker
				// goroutines a concurrent Leave is waiting to drain.
				time.Sleep(time.Millisecond)
				res, err := c.Client().Query(q)
				if err != nil {
					continue // honest refusal under churn; never wrong
				}
				if res.Coverage.Complete() {
					if res.Len() != want.Len() {
						errCh <- fmt.Errorf("complete result has %d cells, want %d", res.Len(), want.Len())
						return
					}
					for k, s := range want.Cells {
						g, ok := res.Cells[k]
						if !ok || g.Stats["temperature"].Count != s.Stats["temperature"].Count {
							errCh <- fmt.Errorf("complete result diverges at %v", k)
							return
						}
					}
				}
			}
		}()
	}

	var joined []dht.NodeID
	for i := 0; i < 3; i++ {
		id, err := c.Join()
		if err != nil {
			t.Fatal(err)
		}
		joined = append(joined, id)
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range joined[:2] {
		if err := c.Leave(id); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// After the churn settles, the system must converge back to exact.
	sameResult(t, mustQuery(t, c, q), want, "post-churn")
}

func TestJoinAfterStopRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.PointsPerBlock = 64
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Stop()
	if _, err := c.Join(); !errors.Is(err, ErrStopped) {
		t.Fatalf("join after stop: %v, want ErrStopped", err)
	}
	if err := c.Leave(1); !errors.Is(err, ErrStopped) {
		t.Fatalf("leave after stop: %v, want ErrStopped", err)
	}
}
