package cluster

import "stash/internal/obs"

// Registry handles for the coordinator and node layers, resolved once at
// package init so the hot path pays only atomic operations. Everything the
// PR 1 failure-handling ladder does — retries, helper reroutes, scatter
// fallback, breaker trips, graceful degradation — is counted here so
// degraded-mode behaviour is visible at /metrics without running a chaos
// suite.
var (
	// Coordinator outcomes and load.
	mQueriesOK      = coordOutcome("ok")
	mQueriesPartial = coordOutcome("partial")
	mQueriesError   = coordOutcome("error")
	mInflight       = gauge("stash_coord_inflight_queries", "Queries currently inside the coordinator.")
	mQueryDur       = histogram("stash_query_duration_seconds", "End-to-end coordinator query latency.")
	mFanoutNodes    = fanoutHistogram()

	// Per-stage latency decomposition (shared family with frontend/node stages).
	mStageFootprint = stage("footprint")
	mStageFanout    = stage("fanout")
	mStageMerge     = stage("merge")
	mStageGraphGet  = stage("graph_get")
	mStageDerive    = stage("derive")
	mStageDiskScan  = stage("disk_scan")
	mStagePopulate  = stage("populate")

	// Bounded cache-population pool (paper §VIII-C2).
	mPopQueued = popHandoff("queued")
	mPopInline = popHandoff("inline")

	// PR 1 failure-handling ladder.
	mRetries           = counter("stash_coord_retries_total", "Retry attempts against an owner after a retryable failure.")
	mHelperRerouteHit  = helperReroute("hit")
	mHelperRerouteMiss = helperReroute("miss")
	mScatterFallbacks  = counter("stash_coord_scatter_fallbacks_total", "Owner shares that entered the scatter fallback.")
	mScatterRequests   = counter("stash_coord_scatter_requests_total", "Mini-requests issued by the scatter fallback.")
	mBreakerTrips      = counter("stash_coord_breaker_trips_total", "Scatter circuit-breaker aborts (consecutive-failure limit hit).")
	mPartialResults    = counter("stash_coord_partial_results_total", "Queries answered degraded (incomplete coverage, nil error).")
	mRecoveredShares   = counter("stash_coord_recovered_keys_total", "Share keys rescued by a failover path (reroute or scatter).")

	// Node-side serving and replication (paper §VII).
	mNodeRedirects    = counter("stash_node_redirects_total", "Owner-side probabilistic redirects to a replication helper.")
	mGuestServed      = counter("stash_node_guest_served_total", "Cells served from guest (replica) graphs.")
	mDerived          = counter("stash_node_derived_total", "Cells derived from cached children instead of disk.")
	mDiskCellFetches  = counter("stash_node_disk_cells_total", "Cells materialized from the backing store.")
	mHandoffs         = counter("stash_replication_handoffs_total", "Clique handoffs completed (replicas shipped and routed).")
	mDistressAccepted = distress("accepted")
	mDistressRejected = distress("rejected")

	// Per-request fault firings observed at the transport boundary.
	mFireCrash  = faultFiring("crash")
	mFirePause  = faultFiring("pause")
	mFireDrop   = faultFiring("drop")
	mFireReject = faultFiring("reject")
	mFireError  = faultFiring("error")

	// Serve-side singleflight (duplicate-miss suppression at the owner).
	mSFLeader = singleflight("leader")
	mSFShared = singleflight("shared")

	// Client-side request coalescing (admission-window batching).
	mCoalesceBatches      = counter("stash_coalesce_batches_total", "Coalesced batches flushed to owner nodes.")
	mCoalesceBatchKeys    = batchHistogram("keys")
	mCoalesceBatchWaiters = batchHistogram("waiters")
	mCoalesceDedupKeys    = counter("stash_coalesce_dedup_keys_total", "Duplicate keys elided by cross-caller coalescing.")
	mCoalesceHopsSaved    = counter("stash_coalesce_hops_saved_total", "Network round trips avoided by merging waiters into one batch.")
	mCoalesceBytesSaved   = counter("stash_coalesce_bytes_saved_total", "Request bytes saved by dedup plus prefix-delta key encoding.")

	// groupByOwner intra-request key dedup (satellite of coalescing).
	mCoordDedupKeys = counter("stash_coord_request_dedup_keys_total", "Duplicate footprint keys elided before owner fan-out.")

	// Parallel tournament fan-in (coordinator reply merge).
	mFanInDepth = fanInDepthHistogram()

	// Elastic membership: epoch-versioned shard map and warm handoff.
	mEpoch             = gauge("stash_cluster_epoch", "Current membership epoch (bumps on every join/leave).")
	mMembershipJoins   = membershipChange("join")
	mMembershipLeaves  = membershipChange("leave")
	mHandoffCells      = counter("stash_handoff_cells_total", "Cached cells migrated to their new owner during rebalances.")
	mHandoffBytes      = counter("stash_handoff_bytes_total", "Wire-encoded bytes shipped by warm handoffs.")
	mHandoffCoarse     = counter("stash_handoff_coarse_dropped_total", "Coarse partial summaries dropped because their ownership baseline changed.")
	mHandoffRolledBack = counter("stash_handoff_rolled_back_total", "Migrated cells conservatively dropped because ingest raced the handoff.")
	mHandoffDur        = histogram("stash_handoff_duration_seconds", "Wall-clock duration of one membership rebalance (freeze to unfreeze).")
	mNotOwner          = counter("stash_node_not_owner_total", "Requests bounced because their routing epoch no longer matches membership.")
	mEpochRetries      = counter("stash_coord_epoch_retries_total", "Coordinator re-plans after a not-owner bounce (view refreshed).")
	mPopStaleDropped   = counter("stash_node_population_stale_dropped_total", "Population tasks discarded because their admission epoch was superseded.")
	mRoutesPurged      = counter("stash_replication_routes_purged_total", "Helper routes purged because a membership change invalidated them.")
)

func counter(name, help string) *obs.Counter {
	r := obs.Default()
	r.Help(name, help)
	return r.Counter(name)
}

func gauge(name, help string) *obs.Gauge {
	r := obs.Default()
	r.Help(name, help)
	return r.Gauge(name)
}

func histogram(name, help string) *obs.Histogram {
	r := obs.Default()
	r.Help(name, help)
	return r.Histogram(name)
}

func coordOutcome(outcome string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_coord_queries_total", "Coordinator queries by outcome (ok, partial, error).")
	return r.Counter("stash_coord_queries_total", "outcome", outcome)
}

func stage(name string) *obs.Histogram {
	r := obs.Default()
	r.Help("stash_stage_duration_seconds", "Per-stage latency decomposition of the query path.")
	return r.Histogram("stash_stage_duration_seconds", "stage", name)
}

func helperReroute(result string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_coord_helper_reroutes_total", "Failed-owner shares routed to replication helpers, by result.")
	return r.Counter("stash_coord_helper_reroutes_total", "result", result)
}

func distress(result string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_replication_distress_total", "Distress (replica admission) requests handled by helpers, by result.")
	return r.Counter("stash_replication_distress_total", "result", result)
}

func popHandoff(mode string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_node_population_tasks_total", "Cache-population tasks by handoff mode: queued to the pool, or run inline under backpressure.")
	return r.Counter("stash_node_population_tasks_total", "mode", mode)
}

func faultFiring(kind string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_fault_firings_total", "Injected faults actually firing on requests at the transport, by kind.")
	return r.Counter("stash_fault_firings_total", "kind", kind)
}

func singleflight(role string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_node_singleflight_total", "Serve-side singleflight participants, by role (leader resolves, shared waits).")
	return r.Counter("stash_node_singleflight_total", "role", role)
}

func batchHistogram(dim string) *obs.Histogram {
	r := obs.Default()
	r.Help("stash_coalesce_batch_size", "Coalesced batch sizes, by dimension (keys, waiters).")
	return r.HistogramBuckets("stash_coalesce_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}, "dim", dim)
}

func membershipChange(kind string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_cluster_membership_changes_total", "Completed membership changes, by kind (join, leave).")
	return r.Counter("stash_cluster_membership_changes_total", "kind", kind)
}

func fanInDepthHistogram() *obs.Histogram {
	r := obs.Default()
	r.Help("stash_merge_fanin_depth", "Height of the tournament merge tree per query (serial merges observe the partial count).")
	return r.HistogramBuckets("stash_merge_fanin_depth", []float64{1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16})
}

func fanoutHistogram() *obs.Histogram {
	r := obs.Default()
	r.Help("stash_coord_fanout_nodes", "Owner shares per query (fan-out width).")
	return r.HistogramBuckets("stash_coord_fanout_nodes", []float64{1, 2, 4, 8, 16, 32, 64, 128})
}
