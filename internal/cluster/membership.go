package cluster

// Elastic membership: online node join/leave with warm cell handoff.
//
// The static partition map became an epoch-versioned dht.View; this file is
// the controller that moves the cluster from one view to the next without
// serving a wrong answer in between. A membership change runs three phases:
//
//  1. freeze — the partitions about to move are frozen on their old owners,
//     so background cache population cannot re-insert cells behind the
//     migrator's back (queries keep being served from disk the whole time);
//  2. migrate — every moved partition's resident cells are extracted from
//     the old owner's STASH shard, shipped over the pooled wire codec
//     (priced like any other transfer), and batch-inserted on the new
//     owner, so the cache arrives warm instead of refilling from disk;
//     coarse per-node partials, whose summaries bake in the ownership set
//     they were computed under, are dropped on every affected node;
//  3. flip — the new view is installed atomically, every Galileo shard
//     reassigns block ownership to the new ring, helper routes invalidated
//     by the change are purged, and the freeze lifts.
//
// Requests carry the epoch they were routed under; nodes bounce mismatches
// with a retriable ErrNotOwner so coordinators re-plan on a fresh view. A
// query in flight across the flip is never silently wrong: at worst it is
// re-planned or reported as honest partial coverage.

import (
	"time"

	"stash/internal/cell"
	"stash/internal/dht"
	"stash/internal/obs"
	"stash/internal/query"
	"stash/internal/replication"
	"stash/internal/wire"
)

// rebalanceState is the controller's progress ledger, guarded by rbMu.
// Counters are cumulative across the cluster's lifetime.
type rebalanceState struct {
	active     bool
	phase      string
	lastChange string
	lastDur    time.Duration
	changes    int64
	moved      int64
	cells      int64
	bytes      int64
	coarse     int64
	rolledBack int64
	routes     int64
}

// RebalanceStatus is the admin-surface snapshot of membership state and
// rebalance progress. Counters are cumulative since the cluster started.
type RebalanceStatus struct {
	Epoch           uint64   `json:"epoch"`
	Members         []string `json:"members"`
	Active          bool     `json:"active"`
	Phase           string   `json:"phase"`
	Changes         int64    `json:"changes"`
	LastChange      string   `json:"lastChange,omitempty"`
	LastDurationMS  float64  `json:"lastDurationMs"`
	MovedPartitions int64    `json:"movedPartitions"`
	CellsMigrated   int64    `json:"cellsMigrated"`
	BytesMigrated   int64    `json:"bytesMigrated"`
	CoarseDropped   int64    `json:"coarseDropped"`
	RolledBack      int64    `json:"rolledBack"`
	RoutesPurged    int64    `json:"routesPurged"`
}

// RebalanceStatus reports the current membership view and cumulative
// handoff progress.
func (c *Cluster) RebalanceStatus() RebalanceStatus {
	view := c.View()
	ids := view.Ring().Nodes()
	members := make([]string, len(ids))
	for i, id := range ids {
		members[i] = id.String()
	}
	c.rbMu.Lock()
	defer c.rbMu.Unlock()
	phase := c.rb.phase
	if phase == "" {
		phase = "idle"
	}
	return RebalanceStatus{
		Epoch:           view.Epoch(),
		Members:         members,
		Active:          c.rb.active,
		Phase:           phase,
		Changes:         c.rb.changes,
		LastChange:      c.rb.lastChange,
		LastDurationMS:  float64(c.rb.lastDur) / float64(time.Millisecond),
		MovedPartitions: c.rb.moved,
		CellsMigrated:   c.rb.cells,
		BytesMigrated:   c.rb.bytes,
		CoarseDropped:   c.rb.coarse,
		RolledBack:      c.rb.rolledBack,
		RoutesPurged:    c.rb.routes,
	}
}

func (c *Cluster) setPhase(active bool, phase string) {
	c.rbMu.Lock()
	c.rb.active = active
	c.rb.phase = phase
	c.rbMu.Unlock()
}

// Join adds a fresh node to the cluster (smallest unused id above the current
// maximum), warms it up by handing off the partitions it claims, and flips
// the membership epoch. It returns the new node's id. Serialized with Leave;
// queries keep running throughout.
func (c *Cluster) Join() (dht.NodeID, error) {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.isStopped() {
		return 0, ErrStopped
	}
	view := c.view.Load()
	var id dht.NodeID
	for _, m := range view.Ring().Nodes() {
		if m >= id {
			id = m + 1
		}
	}
	next, moves, err := view.AddNode(id)
	if err != nil {
		return 0, err
	}
	n := newNode(id, c, c.gen)
	if c.hotEnabled {
		hotCap, hotDecay := c.cfg.HotKeyCapacity, c.cfg.HotKeyDecay
		if hotCap == 0 {
			hotCap = DefaultHotKeyCapacity
		}
		if hotDecay == 0 {
			hotDecay = DefaultHotKeyDecay
		}
		n.hot = obs.NewTopK[cell.Key](hotCap, hotDecay)
	}
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		n.start(c.cfg.Workers)
	}
	// The joiner enters the member table before the handoff so broadcast
	// invalidations (UpdateBlock during the migration) reach it, and the
	// shipped cells it accumulates stay honest.
	c.addMember(n)
	c.rebalance(next, moves, "join "+id.String())
	mMembershipJoins.Inc()
	return id, nil
}

// Leave removes a node: its partitions are handed off warm to their new
// owners, the epoch flips, and only then is the node retired — so clients
// holding the old view get retriable not-owner bounces, never lost requests.
func (c *Cluster) Leave(id dht.NodeID) error {
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	if c.isStopped() {
		return ErrStopped
	}
	view := c.view.Load()
	next, moves, err := view.RemoveNode(id)
	if err != nil {
		return err
	}
	c.rebalance(next, moves, "leave "+id.String())
	if n := c.removeMember(id); n != nil {
		n.stop()
	}
	mMembershipLeaves.Inc()
	return nil
}

// addMember installs a node in the copy-on-write member table (memberMu held).
func (c *Cluster) addMember(n *Node) {
	old := c.nodeMap()
	next := make(map[dht.NodeID]*Node, len(old)+1)
	for id, v := range old {
		next[id] = v
	}
	next[n.id] = n
	c.nodes.Store(&next)
}

// removeMember drops a node from the copy-on-write member table and returns
// it (memberMu held).
func (c *Cluster) removeMember(id dht.NodeID) *Node {
	old := c.nodeMap()
	n := old[id]
	if n == nil {
		return nil
	}
	next := make(map[dht.NodeID]*Node, len(old)-1)
	for mid, v := range old {
		if mid != id {
			next[mid] = v
		}
	}
	c.nodes.Store(&next)
	return n
}

// rebalance drives the three-phase handoff from the current view to next.
// Callers hold memberMu, so at most one rebalance runs at a time.
func (c *Cluster) rebalance(next *dht.View, moves []dht.Move, desc string) {
	start := time.Now()
	plen := c.Ring().PrefixLen()

	movedByFrom := map[dht.NodeID]map[string]bool{}
	changedByNode := map[dht.NodeID]map[string]bool{}
	destOwner := map[string]dht.NodeID{}
	movedSet := map[string]bool{}
	mark := func(byNode map[dht.NodeID]map[string]bool, id dht.NodeID, p string) {
		m := byNode[id]
		if m == nil {
			m = map[string]bool{}
			byNode[id] = m
		}
		m[p] = true
	}
	for _, mv := range moves {
		mark(movedByFrom, mv.From, mv.Partition)
		mark(changedByNode, mv.From, mv.Partition)
		mark(changedByNode, mv.To, mv.Partition)
		destOwner[mv.Partition] = mv.To
		movedSet[mv.Partition] = true
	}

	// Phase 1: freeze the moved partitions on their old owners. Queries keep
	// being served (from cache until extraction, from disk after); only
	// background re-population of the moving cells is filtered out.
	c.setPhase(true, "freeze")
	for from, parts := range movedByFrom {
		if n := c.node(from); n != nil {
			n.freeze(parts)
		}
	}

	// Phase 2: warm handoff. Extraction double-checks the ingest version:
	// cells in flight between extract and insert would miss a concurrent
	// block invalidation (the new owner's PLM marks them fresh on insert),
	// so if ingest advanced, everything shipped is conservatively dropped —
	// a cache-warmth loss, never a wrong answer.
	c.setPhase(true, "migrate")
	v0 := c.ingestVersion.Load()
	var cells, bytes, coarse, rolled, routes int64
	inserted := map[dht.NodeID][]cell.Key{}
	for from, parts := range movedByFrom {
		n := c.node(from)
		if n == nil || n.graph == nil {
			continue
		}
		res := n.graph.ExtractPartitions(plen, parts)
		if len(res.Cells) == 0 {
			continue
		}
		perDest := map[dht.NodeID]query.Result{}
		for k, s := range res.Cells {
			dest := destOwner[k.Geohash[:plen]]
			r, ok := perDest[dest]
			if !ok {
				r = query.NewResult()
				perDest[dest] = r
			}
			r.Add(k, s)
		}
		for dest, payload := range perDest {
			dn := c.node(dest)
			if dn == nil || dn.graph == nil {
				continue
			}
			// Ship over the wire codec: encode once into a pooled buffer,
			// pay the network cost of the exact encoded size, decode on the
			// receiving side, batch-insert.
			buf := wire.AppendResult(wire.GetBuf(), payload)
			c.cfg.Sleeper.Apply(c.cfg.Model.NetCost(len(buf)))
			shipped, err := wire.DecodeResult(buf)
			nb := len(buf)
			wire.PutBuf(buf)
			if err != nil {
				continue // defensive: we just encoded it
			}
			dn.graph.Put(shipped)
			cells += int64(len(shipped.Cells))
			bytes += int64(nb)
			keys := inserted[dest]
			for k := range shipped.Cells {
				keys = append(keys, k)
			}
			inserted[dest] = keys
		}
	}
	// Coarse cells cached on any node whose owned set changes are per-node
	// partials over the old ownership — migrating them would double-count,
	// keeping them would over- or under-count. Drop them; they rebuild from
	// the new ownership on next access.
	for id, parts := range changedByNode {
		if n := c.node(id); n != nil && n.graph != nil {
			coarse += int64(n.graph.DropCoarsePartials(plen, parts))
		}
	}
	if c.ingestVersion.Load() != v0 {
		for dest, keys := range inserted {
			if dn := c.node(dest); dn != nil && dn.graph != nil {
				for _, k := range keys {
					dn.graph.Delete(k)
				}
				rolled += int64(len(keys))
			}
		}
	}

	// Phase 3: flip. Install the view (one atomic store — every subsequent
	// routing decision and epoch check sees the new membership), repoint
	// every Galileo shard's block ownership, purge helper routes the change
	// invalidated, then drain in-flight cache inserts and re-sweep coarse
	// partials that landed between the first sweep and the flip.
	c.setPhase(true, "flip")
	c.view.Store(next)
	mEpoch.Set(int64(next.Epoch()))
	newRing := next.Ring()
	members := map[dht.NodeID]bool{}
	for _, id := range newRing.Nodes() {
		members[id] = true
	}
	for _, n := range c.nodeMap() {
		n.store.UpdateRing(newRing)
		purged := n.routing.PurgeWhere(func(r replication.Route) bool {
			return movedSet[newRing.Partition(r.Root.Geohash)] || !members[r.Helper]
		})
		routes += int64(purged)
	}
	for id, parts := range changedByNode {
		if n := c.node(id); n != nil && n.graph != nil {
			n.popBarrier()
			coarse += int64(n.graph.DropCoarsePartials(plen, parts))
		}
	}
	for from := range movedByFrom {
		if n := c.node(from); n != nil {
			n.freeze(nil)
		}
	}

	dur := time.Since(start)
	mHandoffDur.ObserveDuration(dur)
	mHandoffCells.Add(cells)
	mHandoffBytes.Add(bytes)
	mHandoffCoarse.Add(coarse)
	mHandoffRolledBack.Add(rolled)
	mRoutesPurged.Add(routes)

	c.rbMu.Lock()
	c.rb.active = false
	c.rb.phase = "idle"
	c.rb.lastChange = desc
	c.rb.lastDur = dur
	c.rb.changes++
	c.rb.moved += int64(len(moves))
	c.rb.cells += cells
	c.rb.bytes += bytes
	c.rb.coarse += coarse
	c.rb.rolledBack += rolled
	c.rb.routes += routes
	c.rbMu.Unlock()
}
