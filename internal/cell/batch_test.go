package cell

import (
	"math/rand"
	"testing"
)

// randBatchSummary builds a scalar summary with a random subset of attrs and
// a few observations each, deterministically from rng.
func randBatchSummary(rng *rand.Rand) Summary {
	attrs := []string{"temperature", "humidity", "precipitation", "snow"}
	s := NewSummary()
	for _, attr := range attrs {
		if rng.Intn(3) == 0 {
			continue // absent lane for this row
		}
		for n := rng.Intn(5); n >= 0; n-- {
			s.Observe(attr, rng.NormFloat64()*50)
		}
	}
	return s
}

func summariesEqual(t *testing.T, got, want Summary, eps float64) {
	t.Helper()
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("attr sets differ: got %v want %v", got.Attrs(), want.Attrs())
	}
	for attr, ws := range want.Stats {
		gs, ok := got.Stats[attr]
		if !ok {
			t.Fatalf("missing attr %q", attr)
		}
		if !gs.ApproxEqual(ws, eps) {
			t.Fatalf("attr %q: got %+v want %+v", attr, gs, ws)
		}
	}
}

// TestSummaryBatchRoundTrip: append scalar summaries, read rows back —
// bit-exact (a single summary lands in an empty row by copy, no reordering).
func TestSummaryBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var b SummaryBatch
	var want []Summary
	for i := 0; i < 64; i++ {
		s := randBatchSummary(rng)
		want = append(want, s)
		if got := b.AppendSummary(s); got != i {
			t.Fatalf("row %d appended at %d", i, got)
		}
	}
	if b.Rows() != len(want) {
		t.Fatalf("rows = %d, want %d", b.Rows(), len(want))
	}
	for i, w := range want {
		summariesEqual(t, b.RowSummary(i), w, 0)
	}
}

// TestSummaryBatchMergeMatchesScalar: merging a summary into an occupied row
// must agree with scalar Summary.Merge.
func TestSummaryBatchMergeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		a, c := randBatchSummary(rng), randBatchSummary(rng)
		var b SummaryBatch
		row := b.AppendSummary(a)
		b.MergeSummaryAt(row, c)

		want := a.Clone()
		want.Merge(c)
		summariesEqual(t, b.RowSummary(row), want, 0)
	}
}

// TestSummaryBatchMergeRows: the columnar gather must agree with row-by-row
// scalar merging, including rows that fan into the same destination.
func TestSummaryBatchMergeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var dst, src SummaryBatch
	nDst, nSrc := 8, 24
	wants := make([]Summary, nDst)
	for i := 0; i < nDst; i++ {
		s := randBatchSummary(rng)
		dst.AppendSummary(s)
		wants[i] = s.Clone()
	}
	dstRows := make([]int32, nSrc)
	for i := 0; i < nSrc; i++ {
		s := randBatchSummary(rng)
		src.AppendSummary(s)
		d := int32(rng.Intn(nDst))
		dstRows[i] = d
		wants[d].Merge(s)
	}
	dst.MergeRows(dstRows, &src)
	for i, w := range wants {
		summariesEqual(t, dst.RowSummary(i), w, 1e-12)
	}
}

// TestSummaryBatchLateLane: a lane first seen after rows exist must backfill
// empty slots, and Reset must keep lanes while emptying rows.
func TestSummaryBatchLateLane(t *testing.T) {
	var b SummaryBatch
	r0 := b.AppendRow()
	b.ObserveAt(b.EnsureLane("temperature"), r0, 5)
	r1 := b.AppendRow()
	late := b.EnsureLane("wind") // backfills r0 and r1
	b.ObserveAt(late, r1, 9)

	s0 := b.RowSummary(r0)
	if _, ok := s0.Stats["wind"]; ok {
		t.Fatal("backfilled lane leaked a zero-count stat into row 0")
	}
	s1 := b.RowSummary(r1)
	if st := s1.Stats["wind"]; st.Count != 1 || st.Sum != 9 {
		t.Fatalf("late lane row 1 = %+v", st)
	}

	b.Reset()
	if b.Rows() != 0 {
		t.Fatalf("rows after reset = %d", b.Rows())
	}
	r := b.AppendRow()
	if s := b.RowSummary(r); len(s.Stats) != 0 {
		t.Fatalf("reused batch invented stats: %+v", s.Stats)
	}
}

// FuzzSummaryBatchRoundTrip round-trips randomized scalar summaries through
// the columnar representation and cross-checks a two-sided merge against the
// scalar algebra: batch(a) merged with batch(b) must equal Summary a.Merge(b)
// within float tolerance.
func FuzzSummaryBatchRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(99), uint8(17))
	f.Add(int64(-4), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		rng := rand.New(rand.NewSource(seed))
		rows := int(n%32) + 1
		var ba, bb SummaryBatch
		as := make([]Summary, rows)
		bs := make([]Summary, rows)
		for i := 0; i < rows; i++ {
			as[i] = randBatchSummary(rng)
			bs[i] = randBatchSummary(rng)
			ba.AppendSummary(as[i])
			bb.AppendSummary(bs[i])
		}
		// Round trip: row i must read back as as[i] exactly.
		for i := 0; i < rows; i++ {
			got := ba.RowSummary(i)
			if len(got.Stats) != len(as[i].Stats) {
				t.Fatalf("row %d attr sets differ", i)
			}
			for attr, ws := range as[i].Stats {
				if gs := got.Stats[attr]; !gs.ApproxEqual(ws, 0) {
					t.Fatalf("row %d attr %q: got %+v want %+v", i, attr, gs, ws)
				}
			}
		}
		// Merge equivalence: identity gather of bb into ba == scalar merges.
		dstRows := make([]int32, rows)
		for i := range dstRows {
			dstRows[i] = int32(i)
		}
		ba.MergeRows(dstRows, &bb)
		for i := 0; i < rows; i++ {
			want := as[i].Clone()
			want.Merge(bs[i])
			got := ba.RowSummary(i)
			if len(got.Stats) != len(want.Stats) {
				t.Fatalf("merged row %d attr sets differ: got %v want %v", i, got.Attrs(), want.Attrs())
			}
			for attr, ws := range want.Stats {
				if gs := got.Stats[attr]; !gs.ApproxEqual(ws, 1e-12) {
					t.Fatalf("merged row %d attr %q: got %+v want %+v", i, attr, gs, ws)
				}
			}
		}
	})
}
