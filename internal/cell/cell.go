// Package cell defines the STASH Cell, the minimum unit of storage in the
// STASH graph (paper §IV-A, Table I). A Cell couples
//
//  1. spatiotemporal labels — a Geohash plus a temporal label that fix the
//     Cell's bounds and resolutions,
//  2. aggregated summary statistics — mergeable per-attribute aggregates
//     (count/sum/min/max) over the raw observations in those bounds, and
//  3. edge information — the lateral and hierarchical neighborhood, which
//     STASH derives algebraically from the labels rather than storing
//     pointers (paper §IV-D).
//
// The package also carries the freshness state used by the cache-replacement
// policy (paper §V-C).
package cell

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"stash/internal/geohash"
	"stash/internal/temporal"
)

// MaxSpatialPrecision is the paper's n_s: the count of spatial resolutions
// STASH distinguishes. Visual workloads in the paper use precisions 1-6;
// we allow up to 8 to leave drill-down headroom.
const MaxSpatialPrecision = 8

// ErrBadKey reports a malformed cell key.
var ErrBadKey = errors.New("cell: bad key")

// Key identifies a Cell: a spatial label (Geohash, whose length is the
// spatial resolution) and a temporal label (whose Res is the temporal
// resolution).
type Key struct {
	Geohash string
	Time    temporal.Label
}

// NewKey validates and builds a cell key.
func NewKey(gh string, t temporal.Label) (Key, error) {
	if err := geohash.Validate(gh); err != nil {
		return Key{}, fmt.Errorf("%w: %v", ErrBadKey, err)
	}
	if len(gh) > MaxSpatialPrecision {
		return Key{}, fmt.Errorf("%w: geohash %q exceeds max precision %d", ErrBadKey, gh, MaxSpatialPrecision)
	}
	if !t.Valid() {
		return Key{}, fmt.Errorf("%w: temporal label %q at %v", ErrBadKey, t.Text, t.Res)
	}
	return Key{Geohash: gh, Time: t}, nil
}

// MustKey is NewKey for known-good literals; it panics on error.
func MustKey(gh, timeText string, r temporal.Resolution) Key {
	k, err := NewKey(gh, temporal.MustParse(timeText, r))
	if err != nil {
		panic(err)
	}
	return k
}

// SpatialRes returns the cell's spatial resolution (geohash length).
func (k Key) SpatialRes() int { return len(k.Geohash) }

// TemporalRes returns the cell's temporal resolution.
func (k Key) TemporalRes() temporal.Resolution { return k.Time.Res }

// Level returns the cell's depth in the STASH hierarchy. The paper (§IV-C)
// computes it as n_j*n_t + n_i over the current spatial (n_i) and temporal
// (n_j) resolutions; we instantiate that with n_i = geohash length - 1 and a
// row stride wide enough to keep every (spatial, temporal) pair on a distinct
// level: level = n_j*MaxSpatialPrecision + n_i.
func (k Key) Level() int {
	return int(k.Time.Res)*MaxSpatialPrecision + (len(k.Geohash) - 1)
}

// NumLevels is the count of distinct hierarchy levels.
const NumLevels = temporal.NumResolutions * MaxSpatialPrecision

func (k Key) String() string {
	return fmt.Sprintf("%s@%s", k.Geohash, k.Time.Text)
}

// Box returns the cell's spatial bounding box.
func (k Key) Box() (geohash.Box, error) { return geohash.DecodeBox(k.Geohash) }

// SpatialNeighbors returns the keys of the up-to-8 laterally adjacent cells
// in space (same resolutions, adjacent geohashes).
func (k Key) SpatialNeighbors() ([]Key, error) {
	ghs, err := geohash.Neighbors(k.Geohash)
	if err != nil {
		return nil, err
	}
	out := make([]Key, len(ghs))
	for i, g := range ghs {
		out[i] = Key{Geohash: g, Time: k.Time}
	}
	return out, nil
}

// TemporalNeighbors returns the two laterally adjacent cells in time
// (previous and next label at the same resolutions).
func (k Key) TemporalNeighbors() ([]Key, error) {
	ls, err := k.Time.Neighbors()
	if err != nil {
		return nil, err
	}
	out := make([]Key, len(ls))
	for i, l := range ls {
		out[i] = Key{Geohash: k.Geohash, Time: l}
	}
	return out, nil
}

// LateralNeighbors returns the full lateral edge set of the cell: spatial
// neighbors followed by temporal neighbors (paper Fig. 1).
func (k Key) LateralNeighbors() ([]Key, error) {
	sp, err := k.SpatialNeighbors()
	if err != nil {
		return nil, err
	}
	tp, err := k.TemporalNeighbors()
	if err != nil {
		return nil, err
	}
	return append(sp, tp...), nil
}

// Parents returns the cell's hierarchical parents. Per the paper (§IV-B) a
// cell has up to three parents: one step coarser in space, one step coarser
// in time, and one step coarser in both.
func (k Key) Parents() []Key {
	var out []Key
	sp, hasSpatial := geohash.Parent(k.Geohash)
	tp, hasTemporal := k.Time.Parent()
	if hasSpatial {
		out = append(out, Key{Geohash: sp, Time: k.Time})
	}
	if hasTemporal {
		out = append(out, Key{Geohash: k.Geohash, Time: tp})
	}
	if hasSpatial && hasTemporal {
		out = append(out, Key{Geohash: sp, Time: tp})
	}
	return out
}

// SpatialChildren returns the 32 cells one spatial resolution finer. ok is
// false at the maximum spatial precision.
func (k Key) SpatialChildren() ([]Key, bool) {
	if len(k.Geohash) >= MaxSpatialPrecision {
		return nil, false
	}
	ghs := geohash.Children(k.Geohash)
	out := make([]Key, len(ghs))
	for i, g := range ghs {
		out[i] = Key{Geohash: g, Time: k.Time}
	}
	return out, true
}

// TemporalChildren returns the cells one temporal resolution finer. ok is
// false at the finest temporal resolution.
func (k Key) TemporalChildren() ([]Key, bool) {
	ls, ok := k.Time.Children()
	if !ok {
		return nil, false
	}
	out := make([]Key, len(ls))
	for i, l := range ls {
		out[i] = Key{Geohash: k.Geohash, Time: l}
	}
	return out, true
}

// Children returns every hierarchical child of the cell: spatial children,
// temporal children, and (resolution permitting) the spatiotemporal children
// one step finer in both dimensions.
func (k Key) Children() []Key {
	var out []Key
	sc, hasSpatial := k.SpatialChildren()
	out = append(out, sc...)
	tc, hasTemporal := k.TemporalChildren()
	out = append(out, tc...)
	if hasSpatial && hasTemporal {
		for _, s := range sc {
			stc, _ := s.TemporalChildren()
			out = append(out, stc...)
		}
	}
	return out
}

// Encloses reports whether k's spatiotemporal bounds fully contain o's
// (the hierarchical-edge containment property, paper §IV).
func (k Key) Encloses(o Key) bool {
	if k.Geohash != o.Geohash && !geohash.IsAncestor(k.Geohash, o.Geohash) {
		return false
	}
	ks, err := k.Time.Start()
	if err != nil {
		return false
	}
	ke, _ := k.Time.End()
	os, err := o.Time.Start()
	if err != nil {
		return false
	}
	oe, _ := o.Time.End()
	return !os.Before(ks) && !oe.After(ke)
}

// Stat is a mergeable aggregate over one observed attribute.
type Stat struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Observe folds one raw value into the aggregate.
func (s *Stat) Observe(v float64) {
	if s.Count == 0 {
		s.Min, s.Max = v, v
	} else {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Count++
	s.Sum += v
}

// Merge folds another aggregate into this one. Merging is commutative and
// associative, which is what lets STASH combine cached cells with
// disk-computed cells in any order.
func (s *Stat) Merge(o Stat) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Mean returns the arithmetic mean, or NaN for an empty aggregate.
func (s Stat) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// ApproxEqual reports whether two aggregates describe the same observation
// set. Count, Min and Max are order-independent reductions and must match
// exactly; Sum depends on float addition order (block-scan order vs merge
// order differ across serving paths), so it is compared within the given
// relative epsilon.
func (s Stat) ApproxEqual(o Stat, eps float64) bool {
	if s.Count != o.Count {
		return false
	}
	if s.Count == 0 {
		return true
	}
	return s.Min == o.Min && s.Max == o.Max && approxFloat(s.Sum, o.Sum, eps)
}

// SubsetOf reports whether s could be the aggregate of a subset of the
// observations o aggregates: no more observations, a minimum no smaller and
// a maximum no larger. This is the per-stat contract a *partial* query
// result (graceful degradation under node failures) must honor against a
// full recomputation — under-counting is acceptable, impossible bounds are
// not. Sum is unconstrained: a subset of signed values bounds nothing.
func (s Stat) SubsetOf(o Stat) bool {
	if s.Count > o.Count {
		return false
	}
	if s.Count == 0 {
		return true
	}
	return s.Min >= o.Min && s.Max <= o.Max
}

// approxFloat compares floats within a relative epsilon (absolute near zero).
func approxFloat(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		return d < eps
	}
	return d/m < eps
}

// Summary is the per-attribute aggregate payload of a Cell — the content
// returned to clients (paper Table I, "aggregated summary statistics").
// Hists optionally carries per-attribute distributions for histogram
// rendering; it is nil unless the aggregation pipeline maintains them.
type Summary struct {
	Stats map[string]Stat
	Hists map[string]*Histogram
}

// NewSummary returns an empty summary ready for observations.
func NewSummary() Summary { return Summary{Stats: map[string]Stat{}} }

// Observe folds one raw value for the named attribute.
func (s *Summary) Observe(attr string, v float64) {
	if s.Stats == nil {
		s.Stats = map[string]Stat{}
	}
	st := s.Stats[attr]
	st.Observe(v)
	s.Stats[attr] = st
}

// Merge folds another summary into this one, attribute-wise. Histograms
// merge where both sides keep them with matching shapes; a mismatched or
// one-sided histogram is dropped rather than silently skewed.
func (s *Summary) Merge(o Summary) {
	if s.Stats == nil {
		s.Stats = map[string]Stat{}
	}
	for attr, st := range o.Stats {
		cur := s.Stats[attr]
		cur.Merge(st)
		s.Stats[attr] = cur
	}
	for attr, oh := range o.Hists {
		if oh == nil {
			continue
		}
		if s.Hists == nil {
			// Nothing accumulated yet on this side for any attribute: a
			// clone of the other side's histogram is exact only if this
			// side has no observations for the attribute.
			if s.Stats[attr].Count == oh.Total() {
				s.Hists = map[string]*Histogram{attr: oh.Clone()}
			}
			continue
		}
		h, ok := s.Hists[attr]
		if !ok {
			if s.Stats[attr].Count == oh.Total() {
				s.Hists[attr] = oh.Clone()
			}
			continue
		}
		if err := h.Merge(oh); err != nil {
			delete(s.Hists, attr)
		}
	}
	// Drop histograms the other side tracked stats for but no histogram:
	// they would under-count relative to Stats.
	for attr := range s.Hists {
		if _, inOther := o.Stats[attr]; inOther {
			if _, histInOther := o.Hists[attr]; !histInOther {
				delete(s.Hists, attr)
			}
		}
	}
}

// Clone returns a deep copy of the summary.
func (s Summary) Clone() Summary {
	out := Summary{Stats: make(map[string]Stat, len(s.Stats))}
	for k, v := range s.Stats {
		out.Stats[k] = v
	}
	if s.Hists != nil {
		out.Hists = make(map[string]*Histogram, len(s.Hists))
		for k, h := range s.Hists {
			out.Hists[k] = h.Clone()
		}
	}
	return out
}

// Count returns the observation count for the named attribute.
func (s Summary) Count(attr string) int64 { return s.Stats[attr].Count }

// Attrs returns the attribute names in sorted order.
func (s Summary) Attrs() []string {
	out := make([]string, 0, len(s.Stats))
	for k := range s.Stats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Empty reports whether the summary holds no observations at all.
func (s Summary) Empty() bool {
	for _, st := range s.Stats {
		if st.Count > 0 {
			return false
		}
	}
	return true
}

// Cell is a vertex of the STASH graph: a key, its aggregate payload, and the
// freshness bookkeeping driving cache replacement. Edge information is not
// stored; it is derived from the Key (see the Key methods above).
type Cell struct {
	Key     Key
	Summary Summary

	// Freshness is the replacement score (paper §V-C1): the product of
	// access frequency and a time-decay factor, maintained incrementally.
	Freshness float64
	// Accesses counts direct hits on this cell.
	Accesses int64
	// LastTouch is the logical tick of the last freshness update, used to
	// apply decay lazily.
	LastTouch int64
}

// New returns a cell for the given key with an empty summary.
func New(k Key) *Cell {
	return &Cell{Key: k, Summary: NewSummary()}
}

// DecayFunc computes the multiplicative freshness decay over elapsed logical
// ticks. It must map 0 to 1 and be non-increasing.
type DecayFunc func(elapsed int64) float64

// ExpDecay returns an exponential decay with the given half-life in ticks.
// A non-positive half-life yields no decay.
func ExpDecay(halfLife int64) DecayFunc {
	if halfLife <= 0 {
		return func(int64) float64 { return 1 }
	}
	lambda := math.Ln2 / float64(halfLife)
	return func(elapsed int64) float64 {
		if elapsed <= 0 {
			return 1
		}
		return math.Exp(-lambda * float64(elapsed))
	}
}

// FreshnessAt returns the decayed freshness as of the given tick without
// mutating the cell.
func (c *Cell) FreshnessAt(tick int64, decay DecayFunc) float64 {
	return c.Freshness * decay(tick-c.LastTouch)
}

// Touch records a direct access at the given tick: decay is applied, the
// increment is added, and access counters advance (paper §V-C2).
func (c *Cell) Touch(tick int64, inc float64, decay DecayFunc) {
	c.Freshness = c.FreshnessAt(tick, decay) + inc
	c.Accesses++
	c.LastTouch = tick
}

// Disperse records an indirect (neighborhood) freshness boost at the given
// tick: the fraction of the increment dispersed to neighbors of an accessed
// region. It does not count as an access.
func (c *Cell) Disperse(tick int64, inc float64, decay DecayFunc) {
	c.Freshness = c.FreshnessAt(tick, decay) + inc
	c.LastTouch = tick
}
