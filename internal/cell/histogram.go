package cell

import (
	"errors"
	"fmt"
	"math"
)

// ErrHistMismatch reports a merge between histograms with different shapes.
var ErrHistMismatch = errors.New("cell: histogram bounds mismatch")

// Histogram is a mergeable fixed-bucket histogram over one attribute. The
// paper's front-end renders histograms as well as heatmaps; min/max/mean
// alone cannot drive those, so cells can optionally carry per-attribute
// distributions. Like Stat, merging is commutative and associative, so
// histograms compose across cells, nodes and cache tiers exactly like the
// other aggregates.
//
// Values below Lo land in the underflow bucket, values at or above Hi in
// the overflow bucket; the interior divides [Lo, Hi) uniformly.
type Histogram struct {
	Lo, Hi float64
	Under  int64
	Over   int64
	Counts []int64
}

// NewHistogram builds an empty histogram over [lo, hi) with the given number
// of interior buckets.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo < hi) || buckets < 1 {
		return nil, fmt.Errorf("cell: invalid histogram shape [%v,%v)/%d", lo, hi, buckets)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, buckets)}, nil
}

// MustHistogram is NewHistogram for known-good literals; it panics on error.
func MustHistogram(lo, hi float64, buckets int) *Histogram {
	h, err := NewHistogram(lo, hi, buckets)
	if err != nil {
		panic(err)
	}
	return h
}

// Buckets returns the interior bucket count.
func (h *Histogram) Buckets() int { return len(h.Counts) }

// width returns one interior bucket's span.
func (h *Histogram) width() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v float64) {
	switch {
	case math.IsNaN(v):
		return
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / h.width())
		if i >= len(h.Counts) { // float edge at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observed values.
func (h *Histogram) Total() int64 {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge folds another histogram into this one. Shapes must match.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("%w: [%v,%v)/%d vs [%v,%v)/%d",
			ErrHistMismatch, h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	h.Under += o.Under
	h.Over += o.Over
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	return nil
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	out := *h
	out.Counts = make([]int64, len(h.Counts))
	copy(out.Counts, h.Counts)
	return &out
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1),
// interpolating linearly within the containing bucket. Underflow clamps to
// Lo and overflow to Hi. NaN is returned for an empty histogram or invalid
// q.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(total)
	cum := float64(h.Under)
	if target <= cum {
		return h.Lo
	}
	for i, c := range h.Counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.Lo + (float64(i)+frac)*h.width()
		}
		cum = next
	}
	return h.Hi
}

// --- Summary integration ---

// HistogramSpec describes the histogram an aggregation pipeline should
// maintain for one attribute.
type HistogramSpec struct {
	Lo, Hi  float64
	Buckets int
}

// ObserveHist folds a value into the summary's histogram for the attribute,
// creating it with the given spec on first use. It complements Observe —
// callers that want distributions call both.
func (s *Summary) ObserveHist(attr string, v float64, spec HistogramSpec) error {
	if s.Hists == nil {
		s.Hists = map[string]*Histogram{}
	}
	h, ok := s.Hists[attr]
	if !ok {
		var err error
		h, err = NewHistogram(spec.Lo, spec.Hi, spec.Buckets)
		if err != nil {
			return err
		}
		s.Hists[attr] = h
	}
	h.Observe(v)
	return nil
}

// Hist returns the attribute's histogram, or nil if none is kept.
func (s Summary) Hist(attr string) *Histogram { return s.Hists[attr] }
