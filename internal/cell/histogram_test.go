package cell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(10, 5, 4); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	h, err := NewHistogram(0, 10, 5)
	if err != nil || h.Buckets() != 5 {
		t.Fatalf("valid histogram rejected: %v", err)
	}
}

func TestMustHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHistogram should panic on bad shape")
		}
	}()
	MustHistogram(1, 0, 4)
}

func TestHistogramObserveBuckets(t *testing.T) {
	h := MustHistogram(0, 10, 5) // buckets of width 2
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Observe(v)
	}
	if h.Under != 1 {
		t.Errorf("under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("over = %d", h.Over)
	}
	want := []int64{2, 1, 1, 0, 1} // {0,1.9}, {2}, {5}, {}, {9.99}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, c, want[i], h.Counts)
			break
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	h.Observe(math.NaN())
	if h.Total() != 8 {
		t.Error("NaN counted")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustHistogram(0, 10, 5)
	b := MustHistogram(0, 10, 5)
	for i := 0; i < 10; i++ {
		a.Observe(float64(i))
		b.Observe(float64(i) / 2)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 20 {
		t.Errorf("merged total = %d", a.Total())
	}
	if err := a.Merge(nil); err != nil {
		t.Error("nil merge should be a no-op")
	}
	c := MustHistogram(0, 20, 5)
	if err := a.Merge(c); err == nil {
		t.Error("mismatched bounds accepted")
	}
	d := MustHistogram(0, 10, 7)
	if err := a.Merge(d); err == nil {
		t.Error("mismatched bucket count accepted")
	}
}

func TestHistogramMergeEquivalentToObserveAll(t *testing.T) {
	f := func(xs, ys []float64) bool {
		a := MustHistogram(-100, 100, 16)
		b := MustHistogram(-100, 100, 16)
		all := MustHistogram(-100, 100, 16)
		for _, v := range xs {
			v = math.Mod(v, 300)
			a.Observe(v)
			all.Observe(v)
		}
		for _, v := range ys {
			v = math.Mod(v, 300)
			b.Observe(v)
			all.Observe(v)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.Under != all.Under || a.Over != all.Over {
			return false
		}
		for i := range a.Counts {
			if a.Counts[i] != all.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramClone(t *testing.T) {
	h := MustHistogram(0, 10, 5)
	h.Observe(3)
	c := h.Clone()
	c.Observe(3)
	if h.Counts[1] != 1 || c.Counts[1] != 2 {
		t.Error("clone not independent")
	}
	var nilH *Histogram
	if nilH.Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := MustHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 10 {
		t.Errorf("median = %v, want ~50", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); math.Abs(q-100) > 10 {
		t.Errorf("q1 = %v", q)
	}
	if q := h.Quantile(0.9); math.Abs(q-90) > 10 {
		t.Errorf("p90 = %v", q)
	}
	empty := MustHistogram(0, 1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range q should be NaN")
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		h := MustHistogram(-50, 50, 12)
		for _, v := range xs {
			h.Observe(math.Mod(v, 120))
		}
		if h.Total() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummaryObserveHist(t *testing.T) {
	s := NewSummary()
	spec := HistogramSpec{Lo: 0, Hi: 10, Buckets: 5}
	for _, v := range []float64{1, 3, 5} {
		s.Observe("x", v)
		if err := s.ObserveHist("x", v, spec); err != nil {
			t.Fatal(err)
		}
	}
	h := s.Hist("x")
	if h == nil || h.Total() != 3 {
		t.Fatalf("hist = %+v", h)
	}
	if s.Hist("missing") != nil {
		t.Error("absent attribute returned a histogram")
	}
	if err := s.ObserveHist("y", 1, HistogramSpec{Lo: 5, Hi: 1, Buckets: 3}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestSummaryMergeHistograms(t *testing.T) {
	spec := HistogramSpec{Lo: 0, Hi: 10, Buckets: 5}
	mk := func(vals ...float64) Summary {
		s := NewSummary()
		for _, v := range vals {
			s.Observe("x", v)
			_ = s.ObserveHist("x", v, spec)
		}
		return s
	}
	a := mk(1, 2)
	b := mk(3, 4, 5)
	a.Merge(b)
	if got := a.Hist("x").Total(); got != 5 {
		t.Errorf("merged hist total = %d", got)
	}
	if a.Count("x") != 5 {
		t.Errorf("merged stat count = %d", a.Count("x"))
	}
}

func TestSummaryMergeDropsUndercountingHist(t *testing.T) {
	spec := HistogramSpec{Lo: 0, Hi: 10, Buckets: 5}
	withHist := NewSummary()
	withHist.Observe("x", 1)
	_ = withHist.ObserveHist("x", 1, spec)

	statsOnly := NewSummary()
	statsOnly.Observe("x", 2)

	// Merging a stats-only summary in must drop the histogram: it would
	// under-count relative to the merged Stats.
	withHist.Merge(statsOnly)
	if withHist.Hist("x") != nil {
		t.Error("undercounting histogram survived merge")
	}

	// Conversely, merging a hist-carrying summary into a stats-only one
	// adopts the histogram only if it covers every merged observation.
	statsOnly2 := NewSummary()
	statsOnly2.Observe("x", 2)
	full := NewSummary()
	full.Observe("x", 1)
	_ = full.ObserveHist("x", 1, spec)
	statsOnly2.Merge(full)
	if statsOnly2.Hist("x") != nil {
		t.Error("partial histogram adopted")
	}
}

func TestSummaryCloneDeepCopiesHists(t *testing.T) {
	s := NewSummary()
	_ = s.ObserveHist("x", 1, HistogramSpec{Lo: 0, Hi: 10, Buckets: 5})
	c := s.Clone()
	c.Hist("x").Observe(2)
	if s.Hist("x").Total() != 1 || c.Hist("x").Total() != 2 {
		t.Error("clone shares histogram storage")
	}
}
