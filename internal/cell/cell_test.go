package cell

import (
	"math"
	"testing"
	"testing/quick"

	"stash/internal/temporal"
)

func key(t *testing.T, gh, text string, r temporal.Resolution) Key {
	t.Helper()
	k, err := NewKey(gh, temporal.MustParse(text, r))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewKeyValidation(t *testing.T) {
	if _, err := NewKey("9q8a7", temporal.MustParse("2015-03", temporal.Month)); err == nil {
		t.Error("invalid geohash accepted")
	}
	if _, err := NewKey("9q8y7aaaa", temporal.MustParse("2015-03", temporal.Month)); err == nil {
		t.Error("over-long geohash accepted")
	}
	if _, err := NewKey("9q8y7", temporal.Label{Res: temporal.Month, Text: "bogus"}); err == nil {
		t.Error("invalid temporal label accepted")
	}
	k, err := NewKey("9q8y7", temporal.MustParse("2015-03", temporal.Month))
	if err != nil {
		t.Fatal(err)
	}
	if k.SpatialRes() != 5 || k.TemporalRes() != temporal.Month {
		t.Errorf("resolutions: %d %v", k.SpatialRes(), k.TemporalRes())
	}
	if k.String() != "9q8y7@2015-03" {
		t.Errorf("String = %q", k.String())
	}
}

func TestMustKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKey on bad key should panic")
		}
	}()
	MustKey("bad geohash!", "2015-03", temporal.Month)
}

func TestLevelDistinctPerResolutionPair(t *testing.T) {
	seen := map[int]string{}
	for _, res := range []temporal.Resolution{temporal.Year, temporal.Month, temporal.Day, temporal.Hour} {
		gh := ""
		for p := 1; p <= MaxSpatialPrecision; p++ {
			gh += "9"
			k := Key{Geohash: gh, Time: temporal.MustParse("2015", temporal.Year)}
			k.Time.Res = res // resolution is what Level reads
			lvl := Key{Geohash: gh, Time: temporal.Label{Res: res, Text: ""}}.Level()
			label := string(rune('a'+int(res))) + gh
			if prev, dup := seen[lvl]; dup {
				t.Fatalf("level collision: %q and %q both map to %d", prev, label, lvl)
			}
			seen[lvl] = label
			if lvl < 0 || lvl >= NumLevels {
				t.Fatalf("level %d out of range [0,%d)", lvl, NumLevels)
			}
			_ = k
		}
	}
}

func TestLevelOrdering(t *testing.T) {
	coarse := key(t, "9q", "2015", temporal.Year)
	finerSpace := key(t, "9q8", "2015", temporal.Year)
	finerTime := key(t, "9q", "2015-03", temporal.Month)
	if !(coarse.Level() < finerSpace.Level()) {
		t.Error("finer space must increase level")
	}
	if !(coarse.Level() < finerTime.Level()) {
		t.Error("finer time must increase level")
	}
}

// TestPaperLateralEdges reproduces the paper's Fig. 1 example: cell 9q8y7 at
// 2015-03 has 8 spatial neighbors and temporal neighbors 2015-02/2015-04.
func TestPaperLateralEdges(t *testing.T) {
	k := key(t, "9q8y7", "2015-03", temporal.Month)
	sp, err := k.SpatialNeighbors()
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 8 {
		t.Errorf("spatial neighbors = %d, want 8", len(sp))
	}
	for _, n := range sp {
		if n.Time != k.Time {
			t.Errorf("spatial neighbor changed time: %v", n)
		}
	}
	tp, err := k.TemporalNeighbors()
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != 2 || tp[0].Time.Text != "2015-02" || tp[1].Time.Text != "2015-04" {
		t.Errorf("temporal neighbors = %v", tp)
	}
	all, err := k.LateralNeighbors()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Errorf("lateral edge set = %d, want 10", len(all))
	}
}

// TestThreeParents checks the paper's claim (§IV-B) that a cell has three
// parent precisions: spatial, temporal, spatiotemporal.
func TestThreeParents(t *testing.T) {
	k := key(t, "9q8y7", "2015-03", temporal.Month)
	ps := k.Parents()
	if len(ps) != 3 {
		t.Fatalf("parents = %d, want 3", len(ps))
	}
	var haveSpatial, haveTemporal, haveBoth bool
	for _, p := range ps {
		switch {
		case p.Geohash == "9q8y" && p.Time.Text == "2015-03":
			haveSpatial = true
		case p.Geohash == "9q8y7" && p.Time.Text == "2015":
			haveTemporal = true
		case p.Geohash == "9q8y" && p.Time.Text == "2015":
			haveBoth = true
		}
		if !p.Encloses(k) {
			t.Errorf("parent %v does not enclose child %v", p, k)
		}
	}
	if !haveSpatial || !haveTemporal || !haveBoth {
		t.Errorf("missing parent kind: %v", ps)
	}
}

func TestParentsAtHierarchyEdges(t *testing.T) {
	top := key(t, "9", "2015", temporal.Year)
	if got := top.Parents(); len(got) != 0 {
		t.Errorf("top-of-hierarchy cell has parents: %v", got)
	}
	spatialOnly := key(t, "9", "2015-03", temporal.Month)
	if got := spatialOnly.Parents(); len(got) != 1 || got[0].Time.Res != temporal.Year {
		t.Errorf("coarsest-space cell parents = %v", got)
	}
}

func TestSpatialChildren(t *testing.T) {
	k := key(t, "9q8y", "2015-03", temporal.Month)
	ch, ok := k.SpatialChildren()
	if !ok || len(ch) != 32 {
		t.Fatalf("spatial children = %d,%v; want 32", len(ch), ok)
	}
	for _, c := range ch {
		if !k.Encloses(c) {
			t.Errorf("child %v escapes parent %v", c, k)
		}
	}
	deep := Key{Geohash: "12345678", Time: temporal.MustParse("2015", temporal.Year)}
	if _, ok := deep.SpatialChildren(); ok {
		t.Error("max-precision cell should have no spatial children")
	}
}

func TestChildrenCounts(t *testing.T) {
	k := key(t, "9q8y", "2015-03", temporal.Month)
	ch := k.Children()
	// 32 spatial + 31 temporal (March days) + 32*31 spatiotemporal.
	want := 32 + 31 + 32*31
	if len(ch) != want {
		t.Errorf("children = %d, want %d", len(ch), want)
	}
	for _, c := range ch {
		if !k.Encloses(c) {
			t.Errorf("child %v escapes %v", c, k)
		}
	}
}

func TestEncloses(t *testing.T) {
	outer := key(t, "9q", "2015", temporal.Year)
	inner := key(t, "9q8y7", "2015-03-15", temporal.Day)
	if !outer.Encloses(inner) {
		t.Error("outer should enclose inner")
	}
	if inner.Encloses(outer) {
		t.Error("inner should not enclose outer")
	}
	if !outer.Encloses(outer) {
		t.Error("cell should enclose itself")
	}
	disjoint := key(t, "dr5r", "2015-03", temporal.Month)
	if outer.Encloses(disjoint) {
		t.Error("spatially disjoint cell enclosed")
	}
	laterYear := key(t, "9q8y", "2016-03", temporal.Month)
	if outer.Encloses(laterYear) {
		t.Error("temporally disjoint cell enclosed")
	}
}

func TestStatObserve(t *testing.T) {
	var s Stat
	for _, v := range []float64{3, -1, 7, 2} {
		s.Observe(v)
	}
	if s.Count != 4 || s.Sum != 11 || s.Min != -1 || s.Max != 7 {
		t.Errorf("stat = %+v", s)
	}
	if got := s.Mean(); math.Abs(got-2.75) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

func TestStatMeanEmpty(t *testing.T) {
	var s Stat
	if !math.IsNaN(s.Mean()) {
		t.Error("empty stat mean should be NaN")
	}
}

func TestStatMergeCommutativeAssociative(t *testing.T) {
	f := func(a, b, c []float64) bool {
		mk := func(vs []float64) Stat {
			var s Stat
			for _, v := range vs {
				s.Observe(boundVal(v))
			}
			return s
		}
		sa, sb, sc := mk(a), mk(b), mk(c)

		ab := sa
		ab.Merge(sb)
		ba := sb
		ba.Merge(sa)
		if ab != ba {
			return false
		}

		abc1 := ab
		abc1.Merge(sc)
		bc := sb
		bc.Merge(sc)
		abc2 := sa
		abc2.Merge(bc)
		return statsClose(abc1, abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// boundVal maps arbitrary quick-generated floats into a realistic observation
// range so Sum cannot overflow; the invariants under test are about
// aggregation logic, not float saturation.
func boundVal(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func statsClose(a, b Stat) bool {
	if a.Count != b.Count {
		return false
	}
	const eps = 1e-9
	rel := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= eps || d <= eps*math.Max(math.Abs(x), math.Abs(y))
	}
	return rel(a.Sum, b.Sum) && rel(a.Min, b.Min) && rel(a.Max, b.Max)
}

func TestStatMergeMatchesObserveAll(t *testing.T) {
	f := func(a, b []float64) bool {
		var sa, sb, all Stat
		for _, v := range a {
			v = boundVal(v)
			sa.Observe(v)
			all.Observe(v)
		}
		for _, v := range b {
			v = boundVal(v)
			sb.Observe(v)
			all.Observe(v)
		}
		sa.Merge(sb)
		return statsClose(sa, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatMergeEmpty(t *testing.T) {
	var empty Stat
	s := Stat{Count: 2, Sum: 4, Min: 1, Max: 3}
	merged := s
	merged.Merge(empty)
	if merged != s {
		t.Error("merging empty changed stat")
	}
	empty.Merge(s)
	if empty != s {
		t.Error("merging into empty should copy")
	}
}

func TestSummaryObserveMerge(t *testing.T) {
	a := NewSummary()
	a.Observe("temperature", 20)
	a.Observe("temperature", 30)
	a.Observe("humidity", 0.4)

	b := NewSummary()
	b.Observe("temperature", 10)
	b.Observe("precipitation", 1.5)

	a.Merge(b)
	if a.Count("temperature") != 3 {
		t.Errorf("temperature count = %d", a.Count("temperature"))
	}
	if st := a.Stats["temperature"]; st.Min != 10 || st.Max != 30 {
		t.Errorf("temperature stat = %+v", st)
	}
	if a.Count("precipitation") != 1 || a.Count("humidity") != 1 {
		t.Error("attribute union lost entries")
	}
	attrs := a.Attrs()
	if len(attrs) != 3 || attrs[0] != "humidity" {
		t.Errorf("attrs = %v", attrs)
	}
}

func TestSummaryZeroValueUsable(t *testing.T) {
	var s Summary
	s.Observe("x", 1)
	if s.Count("x") != 1 {
		t.Error("zero-value summary should accept observations")
	}
	var m Summary
	m.Merge(s)
	if m.Count("x") != 1 {
		t.Error("zero-value summary should accept merges")
	}
}

func TestSummaryCloneIndependent(t *testing.T) {
	s := NewSummary()
	s.Observe("x", 5)
	c := s.Clone()
	c.Observe("x", 7)
	if s.Count("x") != 1 || c.Count("x") != 2 {
		t.Error("clone not independent")
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if !s.Empty() {
		t.Error("new summary should be empty")
	}
	s.Observe("x", 0)
	if s.Empty() {
		t.Error("summary with observation reported empty")
	}
}

func TestExpDecay(t *testing.T) {
	d := ExpDecay(10)
	if d(0) != 1 {
		t.Error("decay at 0 must be 1")
	}
	if got := d(10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("decay at half-life = %v, want 0.5", got)
	}
	if d(20) >= d(10) || d(10) >= d(5) {
		t.Error("decay must be decreasing")
	}
	nod := ExpDecay(0)
	if nod(1000) != 1 {
		t.Error("zero half-life should disable decay")
	}
}

func TestCellTouchAccumulates(t *testing.T) {
	c := New(MustKey("9q8y7", "2015-03", temporal.Month))
	d := ExpDecay(0) // no decay: freshness is pure access count * inc
	c.Touch(1, 1.0, d)
	c.Touch(2, 1.0, d)
	c.Touch(3, 1.0, d)
	if c.Freshness != 3 || c.Accesses != 3 || c.LastTouch != 3 {
		t.Errorf("cell after 3 touches: %+v", c)
	}
}

func TestCellFreshnessDecays(t *testing.T) {
	c := New(MustKey("9q8y7", "2015-03", temporal.Month))
	d := ExpDecay(10)
	c.Touch(0, 8, d)
	if got := c.FreshnessAt(10, d); math.Abs(got-4) > 1e-9 {
		t.Errorf("freshness after one half-life = %v, want 4", got)
	}
	// Touching later first decays, then adds.
	c.Touch(10, 1, d)
	if math.Abs(c.Freshness-5) > 1e-9 {
		t.Errorf("freshness after decayed touch = %v, want 5", c.Freshness)
	}
}

func TestDisperseDoesNotCountAccess(t *testing.T) {
	c := New(MustKey("9q8y7", "2015-03", temporal.Month))
	d := ExpDecay(0)
	c.Disperse(1, 0.25, d)
	if c.Accesses != 0 {
		t.Error("dispersion must not count as access")
	}
	if c.Freshness != 0.25 {
		t.Errorf("freshness = %v", c.Freshness)
	}
}

// TestRecencyBeatsStaleFrequency encodes the paper's freshness intent: a cell
// accessed often long ago eventually scores below a recently accessed one.
func TestRecencyBeatsStaleFrequency(t *testing.T) {
	d := ExpDecay(50)
	old := New(MustKey("9q8y7", "2015-03", temporal.Month))
	for i := int64(0); i < 20; i++ {
		old.Touch(i, 1, d)
	}
	recent := New(MustKey("9q8y6", "2015-03", temporal.Month))
	recent.Touch(500, 1, d)
	recent.Touch(501, 1, d)

	now := int64(502)
	if old.FreshnessAt(now, d) >= recent.FreshnessAt(now, d) {
		t.Errorf("stale frequent cell (%v) should score below recent cell (%v)",
			old.FreshnessAt(now, d), recent.FreshnessAt(now, d))
	}
}

func BenchmarkSummaryObserve(b *testing.B) {
	s := NewSummary()
	for i := 0; i < b.N; i++ {
		s.Observe("temperature", float64(i%40))
	}
}

func BenchmarkKeyChildren(b *testing.B) {
	k := MustKey("9q8y", "2015-03", temporal.Month)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := k.Children(); len(got) == 0 {
			b.Fatal("no children")
		}
	}
}
