package cell

// SummaryBatch is the columnar counterpart of Summary: a batch of cells laid
// out structure-of-arrays, one row per cell and one lane per attribute, with
// each lane's aggregates (count/sum/min/max) in their own contiguous slices.
//
//	lane "temperature":  counts [c0 c1 c2 ...]   sums [s0 s1 s2 ...]
//	                     mins   [m0 m1 m2 ...]   maxs [M0 M1 M2 ...]
//	lane "humidity":     counts [...]            ...
//
// Merging two batches touches four flat float/int arrays per lane instead of
// N small maps of Stat structs, so the inner loop is sequential loads and
// stores with the bounds checks hoisted — the cache-conscious layout the
// aggregation core's steady state runs on. The scalar Summary stays the
// compatibility wrapper (the wire format, the cache, and the oracle all speak
// it); RowSummary and MergeSummaryAt convert at the edges.
//
// Histograms are NOT carried in batches: a summary with Hists set must stay
// on the scalar path (see query.ColumnarResult's spill map). A lane slot with
// Count == 0 means "attribute absent for this row" — real aggregates always
// have Count >= 1, and materialization skips empty slots so round-tripping
// never invents zero-count attribute entries the oracle would flag.
//
// The zero value is an empty batch ready for use. A SummaryBatch is not safe
// for concurrent use.
type SummaryBatch struct {
	attrs []string       // lane order, first-seen
	lane  map[string]int // attr -> lane index
	rows  int

	counts [][]int64 // [lane][row]
	sums   [][]float64
	mins   [][]float64
	maxs   [][]float64
}

// Rows returns the number of cell rows in the batch.
func (b *SummaryBatch) Rows() int { return b.rows }

// Attrs returns the attribute lanes in lane order. The slice is shared with
// the batch; callers must not mutate it.
func (b *SummaryBatch) Attrs() []string { return b.attrs }

// Reset empties the batch for reuse, keeping lanes and slice capacity so a
// pooled batch's steady state allocates nothing.
func (b *SummaryBatch) Reset() {
	b.rows = 0
	for l := range b.counts {
		b.counts[l] = b.counts[l][:0]
		b.sums[l] = b.sums[l][:0]
		b.mins[l] = b.mins[l][:0]
		b.maxs[l] = b.maxs[l][:0]
	}
}

// EnsureLane returns the lane index of attr, creating the lane (backfilled
// with empty slots for existing rows) on first sight.
func (b *SummaryBatch) EnsureLane(attr string) int {
	if l, ok := b.lane[attr]; ok {
		return l
	}
	if b.lane == nil {
		b.lane = make(map[string]int, 4)
	}
	l := len(b.attrs)
	b.attrs = append(b.attrs, attr)
	b.lane[attr] = l
	b.counts = append(b.counts, make([]int64, b.rows))
	b.sums = append(b.sums, make([]float64, b.rows))
	b.mins = append(b.mins, make([]float64, b.rows))
	b.maxs = append(b.maxs, make([]float64, b.rows))
	return l
}

// AppendRow adds one empty row (every lane slot at Count 0) and returns its
// index.
func (b *SummaryBatch) AppendRow() int {
	r := b.rows
	b.rows++
	for l := range b.counts {
		b.counts[l] = append(b.counts[l], 0)
		b.sums[l] = append(b.sums[l], 0)
		b.mins[l] = append(b.mins[l], 0)
		b.maxs[l] = append(b.maxs[l], 0)
	}
	return r
}

// ObserveAt folds one raw value into (row, lane) — the columnar Stat.Observe.
func (b *SummaryBatch) ObserveAt(lane, row int, v float64) {
	c := b.counts[lane]
	if c[row] == 0 {
		b.mins[lane][row] = v
		b.maxs[lane][row] = v
	} else {
		if v < b.mins[lane][row] {
			b.mins[lane][row] = v
		}
		if v > b.maxs[lane][row] {
			b.maxs[lane][row] = v
		}
	}
	c[row]++
	b.sums[lane][row] += v
}

// MergeStatAt folds one scalar aggregate into (row, lane) — the columnar
// Stat.Merge.
func (b *SummaryBatch) MergeStatAt(lane, row int, st Stat) {
	if st.Count == 0 {
		return
	}
	c := b.counts[lane]
	if c[row] == 0 {
		c[row] = st.Count
		b.sums[lane][row] = st.Sum
		b.mins[lane][row] = st.Min
		b.maxs[lane][row] = st.Max
		return
	}
	c[row] += st.Count
	b.sums[lane][row] += st.Sum
	if st.Min < b.mins[lane][row] {
		b.mins[lane][row] = st.Min
	}
	if st.Max > b.maxs[lane][row] {
		b.maxs[lane][row] = st.Max
	}
}

// MergeSummaryAt folds a scalar summary's stats into an existing row.
// Histograms are ignored; callers route histogram-bearing summaries to the
// scalar path instead.
func (b *SummaryBatch) MergeSummaryAt(row int, s Summary) {
	for attr, st := range s.Stats {
		if st.Count == 0 {
			continue
		}
		b.MergeStatAt(b.EnsureLane(attr), row, st)
	}
}

// AppendSummary adds a new row holding the scalar summary's stats and returns
// its index.
func (b *SummaryBatch) AppendSummary(s Summary) int {
	r := b.AppendRow()
	b.MergeSummaryAt(r, s)
	return r
}

// StatAt returns the scalar aggregate at (row, lane); a zero Stat means the
// attribute is absent for that row.
func (b *SummaryBatch) StatAt(lane, row int) Stat {
	if b.counts[lane][row] == 0 {
		return Stat{}
	}
	return Stat{
		Count: b.counts[lane][row],
		Sum:   b.sums[lane][row],
		Min:   b.mins[lane][row],
		Max:   b.maxs[lane][row],
	}
}

// RowSummary materializes one row as a scalar Summary with a freshly
// allocated stats map (never aliasing batch storage, so the batch can be
// reset and reused without reaching previously returned summaries).
func (b *SummaryBatch) RowSummary(row int) Summary {
	s := Summary{Stats: make(map[string]Stat, len(b.attrs))}
	for l, attr := range b.attrs {
		if b.counts[l][row] == 0 {
			continue
		}
		s.Stats[attr] = Stat{
			Count: b.counts[l][row],
			Sum:   b.sums[l][row],
			Min:   b.mins[l][row],
			Max:   b.maxs[l][row],
		}
	}
	return s
}

// MergeRows folds every row of o into this batch: o's row i merges into this
// batch's row dstRows[i]. This is the columnar gather at the heart of the
// tournament merge: per lane, four source arrays stream into four destination
// arrays with the bounds checks hoisted out of the row loop.
func (b *SummaryBatch) MergeRows(dstRows []int32, o *SummaryBatch) {
	if len(dstRows) != o.rows {
		panic("cell: MergeRows dstRows length mismatch")
	}
	if o.rows == 0 {
		return
	}
	for ol, attr := range o.attrs {
		dl := b.EnsureLane(attr)
		// Hoist the per-lane slices; slicing to len(dstRows) lets the
		// compiler drop the bounds checks in the inner loop.
		oc := o.counts[ol][:len(dstRows)]
		os := o.sums[ol][:len(dstRows)]
		omin := o.mins[ol][:len(dstRows)]
		omax := o.maxs[ol][:len(dstRows)]
		dc := b.counts[dl]
		ds := b.sums[dl]
		dmin := b.mins[dl]
		dmax := b.maxs[dl]
		for i, dr := range dstRows {
			c := oc[i]
			if c == 0 {
				continue
			}
			if dc[dr] == 0 {
				dc[dr] = c
				ds[dr] = os[i]
				dmin[dr] = omin[i]
				dmax[dr] = omax[i]
				continue
			}
			dc[dr] += c
			ds[dr] += os[i]
			if omin[i] < dmin[dr] {
				dmin[dr] = omin[i]
			}
			if omax[i] > dmax[dr] {
				dmax[dr] = omax[i]
			}
		}
	}
}
