package query

import (
	"testing"
	"time"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/temporal"
)

// fuzzQuery maps raw fuzz values onto a Query without sanitizing them into
// validity: Validate is part of the system under test, so out-of-range
// boxes, inverted ranges, and absurd resolutions must all flow through it.
// Only the time span is clamped (to ~2 years), because Footprint/Validate
// themselves walk the temporal cover label by label.
func fuzzQuery(minLat, minLon, dLat, dLon float64, startSec, durSec int64, sres int, tresRaw uint8) Query {
	const maxDur = 750 * 86400
	d := durSec % maxDur
	if d < 0 {
		d = -d
	}
	start := time.Unix(startSec%(400*365*86400), 0).UTC()
	return Query{
		Box: geohash.Box{
			MinLat: minLat, MaxLat: minLat + dLat,
			MinLon: minLon, MaxLon: minLon + dLon,
		},
		Time:        temporal.Range{Start: start, End: start.Add(time.Duration(d) * time.Second)},
		SpatialRes:  sres,
		TemporalRes: temporal.Resolution(tresRaw % 8), // includes invalid values
	}
}

// FuzzQueryFootprint is the parser/planner fuzz gate: for arbitrary inputs,
// Validate must never panic, and any query it accepts must plan cleanly —
// Footprint succeeds, its length matches FootprintCount and stays within
// MaxFootprint, and every key is well-formed at exactly the query's
// resolutions with no duplicates.
func FuzzQueryFootprint(f *testing.F) {
	f.Add(33.0, -103.0, 4.0, 8.0, int64(1422835200), int64(86400), 4, uint8(2))
	f.Add(35.0, -98.0, 0.6, 1.2, int64(1422835200), int64(3600), 5, uint8(3))
	f.Add(-90.0, -180.0, 180.0, 360.0, int64(0), int64(86400), 1, uint8(0))
	f.Add(35.0, -98.0, -1.0, 1.0, int64(1422835200), int64(86400), 4, uint8(2)) // inverted box
	f.Add(35.0, -98.0, 0.5, 0.5, int64(1422835200), int64(-5), 4, uint8(2))     // empty range
	f.Add(35.0, -98.0, 0.5, 0.5, int64(1422835200), int64(86400), 13, uint8(2)) // res too fine
	f.Add(89.9, 179.9, 0.5, 0.5, int64(1422835200), int64(86400), 3, uint8(1))  // pole/antimeridian edge
	f.Fuzz(func(t *testing.T, minLat, minLon, dLat, dLon float64, startSec, durSec int64, sres int, tresRaw uint8) {
		q := fuzzQuery(minLat, minLon, dLat, dLon, startSec, durSec, sres, tresRaw)
		if err := q.Validate(); err != nil {
			return // rejection is fine; panics and accepted-but-unplannable are not
		}
		n, err := q.FootprintCount()
		if err != nil {
			t.Fatalf("validated query has no footprint count: %v\n%v", err, q)
		}
		if n <= 0 || n > MaxFootprint {
			t.Fatalf("validated query has footprint count %d (limit %d)\n%v", n, MaxFootprint, q)
		}
		keys, err := q.Footprint()
		if err != nil {
			t.Fatalf("validated query fails to plan: %v\n%v", err, q)
		}
		if len(keys) != n {
			t.Fatalf("Footprint len %d != FootprintCount %d\n%v", len(keys), n, q)
		}
		seen := make(map[cell.Key]bool, len(keys))
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate footprint key %v\n%v", k, q)
			}
			seen[k] = true
			if k.SpatialRes() != q.SpatialRes || k.TemporalRes() != q.TemporalRes {
				t.Fatalf("key %v at level (%d,%v), query wants (%d,%v)",
					k, k.SpatialRes(), k.TemporalRes(), q.SpatialRes, q.TemporalRes)
			}
			if k.Level() != q.Level() {
				t.Fatalf("key level %d != query level %d for %v", k.Level(), q.Level(), k)
			}
			if _, err := cell.NewKey(k.Geohash, k.Time); err != nil {
				t.Fatalf("footprint emitted malformed key %v: %v", k, err)
			}
		}
	})
}

// FuzzOLAPClosure checks that the navigation operators are closed over valid
// queries: applying any operator to a valid query yields a query that either
// validates or is rejected cleanly — and the spatial round trips restore the
// original query exactly.
func FuzzOLAPClosure(f *testing.F) {
	f.Add(33.0, -103.0, 4.0, 8.0, uint8(1), 0.3)
	f.Add(35.0, -98.0, 0.6, 1.2, uint8(5), 0.8)
	f.Add(-89.0, -179.0, 2.0, 2.0, uint8(0), 0.5)
	f.Fuzz(func(t *testing.T, minLat, minLon, dLat, dLon float64, dirRaw uint8, frac float64) {
		q := fuzzQuery(minLat, minLon, dLat, dLon, 1422835200, 86400, 4, 2)
		if q.Validate() != nil {
			return
		}
		if frac < 0 || frac != frac {
			frac = 0.3
		} else if frac > 1 {
			frac = 1
		}
		panned := q.Pan(geohash.Direction(dirRaw%8), frac)
		if err := panned.Validate(); err != nil {
			t.Fatalf("pan broke a valid query: %v\n%v -> %v", err, q, panned)
		}
		if down, ok := q.DrillDown(); ok {
			up, ok2 := down.RollUp()
			if !ok2 || !up.Equal(q) {
				t.Fatalf("drill/rollup round trip lost the query: %v -> %v -> %v", q, down, up)
			}
		}
		if dq := q.DiceShrink(frac * 0.9); dq.Validate() != nil && frac*0.9 > 0 {
			t.Fatalf("dice-shrink broke a valid query: %v -> %v", q, dq)
		}
	})
}
