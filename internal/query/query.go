// Package query defines STASH's aggregation query model and the OLAP-style
// visual-navigation operators (slice, dice, pan, zoom, drill-down, roll-up)
// that the paper's workloads are built from (§II-B, §V-B).
//
// A Query corresponds to the paper's SQL sketch: aggregate every observation
// inside a spatial polygon (here: a rectangle) and a time window, grouped by
// a spatial resolution (geohash precision) and a temporal resolution. Its
// answer is a Result: one summarized Cell per (geohash, time label) bin.
package query

import (
	"errors"
	"fmt"
	"math"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/temporal"
)

// ErrInvalid reports a malformed query.
var ErrInvalid = errors.New("query: invalid query")

// MaxFootprint bounds how many cells a single query may touch. It protects
// the system from degenerate requests (e.g. the whole globe at precision 8),
// mirroring the perceptual-scalability argument of the paper's introduction:
// no display can use more bins than this anyway.
const MaxFootprint = 1 << 20

// Query is a hierarchical aggregation query.
type Query struct {
	// Box is the rectangular spatial extent. When Polygon is set, Box is
	// ignored for footprint computation (the polygon's bounding box rules).
	Box geohash.Box
	// Polygon optionally restricts the query to a lassoed region — the
	// general form of the paper's Query_Polygon. Nil means rectangular.
	Polygon geohash.Polygon
	// Time is the temporal extent (the paper's Query_Time).
	Time temporal.Range
	// SpatialRes is the requested geohash precision of the result bins.
	SpatialRes int
	// TemporalRes is the requested temporal resolution of the result bins.
	TemporalRes temporal.Resolution
}

// NewPolygonQuery builds a lasso query over the polygon; the Box is set to
// the polygon's bounding box.
func NewPolygonQuery(p geohash.Polygon, tr temporal.Range, sres int, tres temporal.Resolution) (Query, error) {
	q := Query{Box: p.BoundingBox(), Polygon: p, Time: tr, SpatialRes: sres, TemporalRes: tres}
	return q, q.Validate()
}

// Validate checks the query's bounds and resolutions.
func (q Query) Validate() error {
	if q.Polygon != nil {
		if err := q.Polygon.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if !q.Polygon.BoundingBox().Valid() {
			return fmt.Errorf("%w: degenerate polygon bounds", ErrInvalid)
		}
	} else if !q.Box.Valid() {
		return fmt.Errorf("%w: box %v", ErrInvalid, q.Box)
	}
	if !q.Time.Valid() {
		return fmt.Errorf("%w: empty time range", ErrInvalid)
	}
	if q.SpatialRes < 1 || q.SpatialRes > cell.MaxSpatialPrecision {
		return fmt.Errorf("%w: spatial resolution %d", ErrInvalid, q.SpatialRes)
	}
	if !q.TemporalRes.Valid() {
		return fmt.Errorf("%w: temporal resolution %d", ErrInvalid, int(q.TemporalRes))
	}
	n, err := q.FootprintCount()
	if err != nil {
		return err
	}
	if n > MaxFootprint {
		return fmt.Errorf("%w: footprint %d exceeds limit %d", ErrInvalid, n, MaxFootprint)
	}
	return nil
}

// Footprint enumerates the cell keys the query's answer is built from: the
// cross product of the geohash tiles covering Box and the temporal labels
// covering Time, at the requested resolutions.
func (q Query) Footprint() ([]cell.Key, error) {
	var ghs []string
	var err error
	if q.Polygon != nil {
		ghs, err = geohash.CoverPolygon(q.Polygon, q.SpatialRes)
	} else {
		ghs, err = geohash.Cover(q.Box, q.SpatialRes)
	}
	if err != nil {
		return nil, err
	}
	labels, err := q.Time.Cover(q.TemporalRes)
	if err != nil {
		return nil, err
	}
	out := make([]cell.Key, 0, len(ghs)*len(labels))
	for _, gh := range ghs {
		for _, l := range labels {
			out = append(out, cell.Key{Geohash: gh, Time: l})
		}
	}
	return out, nil
}

// FootprintCount returns len(Footprint()) without materializing the keys
// (for rectangular queries; polygon covers are counted by materializing the
// spatial tiles, which the MaxFootprint bound on the bounding box keeps
// tractable).
func (q Query) FootprintCount() (int, error) {
	var s int
	var err error
	if q.Polygon != nil {
		// Bound the candidate bbox first so a degenerate polygon cannot
		// force a huge enumeration.
		bb, err := geohash.CoverCount(q.Polygon.BoundingBox(), q.SpatialRes)
		if err != nil {
			return 0, err
		}
		if bb > MaxFootprint {
			return bb, nil // over limit either way; skip materializing
		}
		ghs, err := geohash.CoverPolygon(q.Polygon, q.SpatialRes)
		if err != nil {
			return 0, err
		}
		s = len(ghs)
	} else {
		s, err = geohash.CoverCount(q.Box, q.SpatialRes)
		if err != nil {
			return 0, err
		}
	}
	t, err := q.Time.CoverCount(q.TemporalRes)
	if err != nil {
		return 0, err
	}
	return s * t, nil
}

// Level returns the STASH hierarchy level the query's cells live on.
func (q Query) Level() int {
	return int(q.TemporalRes)*cell.MaxSpatialPrecision + (q.SpatialRes - 1)
}

// Equal reports whether two queries denote the same request. Query contains
// a Polygon slice, so == does not apply; Equal compares the polygon
// vertex-wise. The metamorphic round-trip identities (drill-down then
// roll-up, zoom-out then zoom-in) rely on this to assert the operators
// returned to the starting query exactly.
func (q Query) Equal(o Query) bool {
	if q.Box != o.Box || q.Time != o.Time ||
		q.SpatialRes != o.SpatialRes || q.TemporalRes != o.TemporalRes {
		return false
	}
	if len(q.Polygon) != len(o.Polygon) {
		return false
	}
	for i, v := range q.Polygon {
		if v != o.Polygon[i] {
			return false
		}
	}
	return true
}

func (q Query) String() string {
	return fmt.Sprintf("q{%v %s..%s res=(%d,%v)}",
		q.Box, q.Time.Start.Format("2006-01-02T15"), q.Time.End.Format("2006-01-02T15"),
		q.SpatialRes, q.TemporalRes)
}

// --- OLAP visual-navigation operators (paper §V-B) ---

// Pan shifts the query rectangle by fraction of its own extent in the given
// compass direction, clamped to the globe — the paper's panning operator.
func (q Query) Pan(d geohash.Direction, fraction float64) Query {
	dLat, dLon := d.Offsets()
	dy := float64(dLat) * q.Box.Height() * fraction
	dx := float64(dLon) * q.Box.Width() * fraction
	nb := geohash.Box{
		MinLat: q.Box.MinLat + dy, MaxLat: q.Box.MaxLat + dy,
		MinLon: q.Box.MinLon + dx, MaxLon: q.Box.MaxLon + dx,
	}
	// Clamp by sliding back inside the globe, preserving extent.
	if nb.MinLat < -90 {
		nb.MaxLat += -90 - nb.MinLat
		nb.MinLat = -90
	}
	if nb.MaxLat > 90 {
		nb.MinLat -= nb.MaxLat - 90
		nb.MaxLat = 90
	}
	if nb.MinLon < -180 {
		nb.MaxLon += -180 - nb.MinLon
		nb.MinLon = -180
	}
	if nb.MaxLon > 180 {
		nb.MinLon -= nb.MaxLon - 180
		nb.MaxLon = 180
	}
	// A polygon pans with its viewport (by the possibly-clamped shift).
	if q.Polygon != nil {
		sLat := nb.MinLat - q.Box.MinLat
		sLon := nb.MinLon - q.Box.MinLon
		moved := make(geohash.Polygon, len(q.Polygon))
		for i, v := range q.Polygon {
			moved[i] = geohash.Point{Lat: v.Lat + sLat, Lon: v.Lon + sLon}
		}
		q.Polygon = moved
	}
	q.Box = nb
	return q
}

// DiceShrink contracts the rectangle around its center so its area drops by
// the given fraction (0 < fraction < 1) — one step of the paper's descending
// iterative dicing (20% spatial area reduction per step).
func (q Query) DiceShrink(fraction float64) Query {
	return q.scale(1 - fraction)
}

// DiceExpand grows the rectangle around its center so its area increases by
// the given fraction — one step of ascending iterative dicing.
func (q Query) DiceExpand(fraction float64) Query {
	return q.scale(1 + fraction)
}

func (q Query) scale(areaFactor float64) Query {
	if areaFactor <= 0 {
		return q
	}
	lin := sqrtPos(areaFactor)
	cLat, cLon := q.Box.Center()
	halfH := q.Box.Height() / 2 * lin
	halfW := q.Box.Width() / 2 * lin
	q.Box = geohash.Box{
		MinLat: cLat - halfH, MaxLat: cLat + halfH,
		MinLon: cLon - halfW, MaxLon: cLon + halfW,
	}.Clamp()
	// A polygon dices around the same center.
	if q.Polygon != nil {
		scaled := make(geohash.Polygon, len(q.Polygon))
		for i, v := range q.Polygon {
			scaled[i] = geohash.Point{
				Lat: cLat + (v.Lat-cLat)*lin,
				Lon: cLon + (v.Lon-cLon)*lin,
			}
		}
		q.Polygon = scaled
	}
	return q
}

// DrillDown increases the spatial resolution by one step (zoom-in); ok is
// false at the maximum precision.
func (q Query) DrillDown() (Query, bool) {
	if q.SpatialRes >= cell.MaxSpatialPrecision {
		return q, false
	}
	q.SpatialRes++
	return q, true
}

// RollUp decreases the spatial resolution by one step (zoom-out); ok is
// false at precision 1.
func (q Query) RollUp() (Query, bool) {
	if q.SpatialRes <= 1 {
		return q, false
	}
	q.SpatialRes--
	return q, true
}

// DrillDownTemporal moves to the next finer temporal resolution.
func (q Query) DrillDownTemporal() (Query, bool) {
	r, ok := q.TemporalRes.Finer()
	if !ok {
		return q, false
	}
	q.TemporalRes = r
	return q, true
}

// RollUpTemporal moves to the next coarser temporal resolution.
func (q Query) RollUpTemporal() (Query, bool) {
	r, ok := q.TemporalRes.Coarser()
	if !ok {
		return q, false
	}
	q.TemporalRes = r
	return q, true
}

// SliceTime restricts the query to a single temporal label — the slicing
// operator (pick a subset by choosing a single dimension).
func (q Query) SliceTime(l temporal.Label) (Query, error) {
	s, err := l.Start()
	if err != nil {
		return q, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	e, err := l.End()
	if err != nil {
		return q, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	q.Time = temporal.Range{Start: s, End: e}
	q.TemporalRes = l.Res
	return q, nil
}

// Dice constrains both dimensions at once: a new rectangle and time range —
// the general dicing operator.
func (q Query) Dice(box geohash.Box, tr temporal.Range) Query {
	q.Box = box
	q.Time = tr
	return q
}

func sqrtPos(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// --- Results ---

// Coverage reports how much of a query's requested footprint a result
// actually covers. The coordinator fills it in when graceful degradation is
// active: under node failures a query can return a *partial* map instead of
// an error, and the caller uses Coverage to render what arrived and flag
// what did not.
//
// A "share" is one owner sub-request of one key: keys at or finer than the
// partition prefix have exactly one share, coarser keys have one share per
// node owning an extending partition (each contributing a partial
// aggregate). Counting shares, not just keys, is what lets a coarse key be
// reported as Degraded — present in the map but under-counting — rather
// than silently wrong.
//
// The zero value means "complete by construction" (no failure handling was
// active on the query path): Complete() is true and Ratio() is 1.
type Coverage struct {
	// Requested is the number of footprint cell keys the query asked for.
	Requested int
	// Covered counts keys every owner share of which was served.
	Covered int
	// Degraded counts keys served by only a strict subset of their owner
	// shares: they appear in the result but their aggregates under-count.
	Degraded int
	// Recovered counts shares rescued by a failover path (replica helpers
	// or partition scatter) after the primary owner failed.
	Recovered int
	// SharesRequested / SharesServed count owner sub-request shares; their
	// ratio is the finest-grained completeness measure.
	SharesRequested int
	SharesServed    int
	// NodeErrors records the final per-node failure behind any missing
	// coverage, keyed by node name (e.g. "node-3").
	NodeErrors map[string]string
}

// Complete reports whether the result covers the full requested footprint.
func (c Coverage) Complete() bool {
	return c.Requested == 0 || (c.Covered == c.Requested && len(c.NodeErrors) == 0)
}

// Ratio returns the fraction of owner shares served, in [0,1]; 1 when no
// coverage accounting was active.
func (c Coverage) Ratio() float64 {
	if c.SharesRequested == 0 {
		return 1
	}
	return float64(c.SharesServed) / float64(c.SharesRequested)
}

// Missing returns the number of requested keys entirely absent from the
// result's coverage (neither covered nor degraded).
func (c Coverage) Missing() int {
	m := c.Requested - c.Covered - c.Degraded
	if m < 0 {
		return 0
	}
	return m
}

func (c Coverage) String() string {
	if c.Complete() {
		return fmt.Sprintf("complete (%d/%d keys)", c.Covered, c.Requested)
	}
	return fmt.Sprintf("partial %d/%d keys (%d degraded, %d missing, %.0f%% of shares, %d node errors)",
		c.Covered, c.Requested, c.Degraded, c.Missing(), 100*c.Ratio(), len(c.NodeErrors))
}

// Result is the answer to a Query: one summary per footprint cell that
// contained any data. Cells with no observations are omitted. Coverage
// describes how much of the requested footprint the cells represent; see
// Coverage for the partial-result contract.
//
// Summaries held by a Result are IMMUTABLE BY CONVENTION: they may be shared
// with caches and other results, so holders must never mutate them. Add
// enforces this on its own writes — merging into an existing entry clones
// before merging — which keeps the hot path (first insert) allocation-free.
type Result struct {
	Cells    map[cell.Key]cell.Summary
	Coverage Coverage
}

// NewResult returns an empty result.
func NewResult() Result { return Result{Cells: map[cell.Key]cell.Summary{}} }

// NewResultCap returns an empty result preallocated for n cells, for callers
// (wire decoders, coalescer demux) that know the size up front and want to
// avoid incremental map growth.
func NewResultCap(n int) Result {
	return Result{Cells: make(map[cell.Key]cell.Summary, n)}
}

// Add merges a summary into the result under the given key. The first
// insert aliases s (do not mutate it afterwards); subsequent inserts for
// the same key merge into a private clone, never into s or the original.
func (r *Result) Add(k cell.Key, s cell.Summary) {
	if r.Cells == nil {
		r.Cells = map[cell.Key]cell.Summary{}
	}
	cur, ok := r.Cells[k]
	if !ok {
		r.Cells[k] = s
		return
	}
	merged := cur.Clone()
	merged.Merge(s)
	r.Cells[k] = merged
}

// Merge folds another result's cells into this one. Coverage is NOT merged:
// it is a per-query report computed by the coordinator over the final merged
// result, and sub-results carry none.
func (r *Result) Merge(o Result) {
	for k, s := range o.Cells {
		r.Add(k, s)
	}
}

// Len returns the number of non-empty cells in the result.
func (r Result) Len() int { return len(r.Cells) }

// TotalCount sums the observation count of the named attribute over all
// cells — a convenient invariant check for tests.
func (r Result) TotalCount(attr string) int64 {
	var n int64
	for _, s := range r.Cells {
		n += s.Count(attr)
	}
	return n
}
