package query

// The pooled, columnar side of the Result lifecycle. The coordinator's merge
// path (tournament fan-in, scatter accumulation, coalescer demux) runs
// entirely on structures from these pools, so the steady state of a warm
// cluster merges node replies without allocating: summaries land in a
// columnar cell arena (cell.SummaryBatch) addressed by an open-addressing key
// index, partials merge as columnar gathers, and only the final
// materialization (ToResult) builds the scalar map the public API returns.
//
// Pool-safety rules (mirroring internal/wire's GetBuf/PutBuf):
//
//  1. Release/PutResult return storage to a pool: the caller must not touch
//     the value afterwards, and nothing returned to a caller may alias pooled
//     storage. ToResult guarantees this by materializing into fresh maps.
//  2. Oversized carcasses are dropped, not pooled (maxPooledResultCells), so
//     one giant query cannot pin its arena behind every later small one.
//  3. Summaries READ from inputs are shared, never mutated (the Result
//     immutability convention); only the pooled arena itself is recycled.

import (
	"sync"

	"stash/internal/cell"
	"stash/internal/obs"
)

// maxPooledResultCells bounds the row capacity of arenas (and the size of
// result maps) returned to the pools; larger ones are left for the GC.
const maxPooledResultCells = 1 << 14

// Pool traffic counters: a hit is a reuse, a miss is a fresh allocation.
// Exposed at /metrics so the steady-state claim (hits >> misses after warmup)
// is observable in production.
var (
	mResultPoolHit  = poolCounter("hit")
	mResultPoolMiss = poolCounter("miss")
)

func poolCounter(outcome string) *obs.Counter {
	r := obs.Default()
	r.Help("stash_result_pool_total", "Result/arena pool acquisitions by outcome (hit: reused, miss: allocated).")
	return r.Counter("stash_result_pool_total", "outcome", outcome)
}

// ColumnarResult is a mergeable aggregation intermediate: cell keys in a flat
// slice, their aggregates in a columnar arena, and an open-addressing hash
// index mapping key -> row. It is the representation the coordinator merges
// in; Results (the public map form) convert in at the leaves and out once at
// the end.
//
// Summaries carrying histograms cannot live in the arena (batches are
// stats-only); they take the scalar spill path and fold in at ToResult.
type ColumnarResult struct {
	keys    []cell.Key
	batch   cell.SummaryBatch
	index   []int32 // open addressing, power-of-two size, -1 = empty
	spill   map[cell.Key]cell.Summary
	scratch []int32 // row-mapping buffer reused across MergeColumnar calls
}

var columnarPool sync.Pool

// GetColumnar returns an empty ColumnarResult from the pool.
func GetColumnar() *ColumnarResult {
	if v := columnarPool.Get(); v != nil {
		mResultPoolHit.Inc()
		return v.(*ColumnarResult)
	}
	mResultPoolMiss.Inc()
	return &ColumnarResult{}
}

// Release resets the result and returns it to the pool. The caller must not
// use c afterwards. Arenas that grew past maxPooledResultCells are dropped.
func (c *ColumnarResult) Release() {
	if c == nil {
		return
	}
	if cap(c.keys) > maxPooledResultCells {
		return
	}
	c.Reset()
	columnarPool.Put(c)
}

// Reset empties the result for reuse, keeping capacity.
func (c *ColumnarResult) Reset() {
	c.keys = c.keys[:0]
	c.batch.Reset()
	for i := range c.index {
		c.index[i] = -1
	}
	clear(c.spill)
}

// Len returns the number of distinct cells accumulated.
func (c *ColumnarResult) Len() int { return len(c.keys) + len(c.spill) }

// hashKey is FNV-1a over the key's geohash, temporal text, and temporal
// resolution — allocation-free (no interface conversions, no byte slices).
func hashKey(k cell.Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Geohash); i++ {
		h ^= uint64(k.Geohash[i])
		h *= prime64
	}
	h ^= uint64(k.Time.Res) + 0x9e
	h *= prime64
	for i := 0; i < len(k.Time.Text); i++ {
		h ^= uint64(k.Time.Text[i])
		h *= prime64
	}
	return h
}

// row returns the arena row of k, or -1 when absent.
func (c *ColumnarResult) row(k cell.Key) int32 {
	if len(c.index) == 0 {
		return -1
	}
	mask := uint64(len(c.index) - 1)
	for slot := hashKey(k) & mask; ; slot = (slot + 1) & mask {
		r := c.index[slot]
		if r == -1 {
			return -1
		}
		if c.keys[r] == k {
			return r
		}
	}
}

// rowOrNew returns the arena row of k, appending a fresh (empty) row when the
// key is new.
func (c *ColumnarResult) rowOrNew(k cell.Key) int32 {
	// Grow at 3/4 load so probe chains stay short.
	if 4*(len(c.keys)+1) > 3*len(c.index) {
		c.grow()
	}
	mask := uint64(len(c.index) - 1)
	for slot := hashKey(k) & mask; ; slot = (slot + 1) & mask {
		r := c.index[slot]
		if r == -1 {
			r = int32(len(c.keys))
			c.keys = append(c.keys, k)
			c.batch.AppendRow()
			c.index[slot] = r
			return r
		}
		if c.keys[r] == k {
			return r
		}
	}
}

// grow rebuilds the index at double size (minimum 16 slots) and reinserts
// every existing key.
func (c *ColumnarResult) grow() {
	n := 2 * len(c.index)
	if n < 16 {
		n = 16
	}
	if cap(c.index) >= n {
		c.index = c.index[:n]
	} else {
		c.index = make([]int32, n)
	}
	for i := range c.index {
		c.index[i] = -1
	}
	mask := uint64(n - 1)
	for r, k := range c.keys {
		slot := hashKey(k) & mask
		for c.index[slot] != -1 {
			slot = (slot + 1) & mask
		}
		c.index[slot] = int32(r)
	}
}

// AddSummary folds one (key, summary) pair in. The summary is only read;
// histogram-bearing summaries take the scalar spill path (clone-on-merge, the
// same convention as Result.Add).
func (c *ColumnarResult) AddSummary(k cell.Key, s cell.Summary) {
	if len(s.Hists) > 0 {
		if c.spill == nil {
			c.spill = make(map[cell.Key]cell.Summary, 4)
		}
		cur, ok := c.spill[k]
		if !ok {
			c.spill[k] = s
			return
		}
		merged := cur.Clone()
		merged.Merge(s)
		c.spill[k] = merged
		return
	}
	c.batch.MergeSummaryAt(int(c.rowOrNew(k)), s)
}

// MergeResult folds a scalar Result's cells in. The result's summaries are
// only read and may be shared; the caller keeps ownership of the map.
func (c *ColumnarResult) MergeResult(o Result) {
	for k, s := range o.Cells {
		c.AddSummary(k, s)
	}
}

// MergeColumnar folds another columnar result in as a columnar gather: o's
// keys map to destination rows once, then every lane streams array-to-array
// (cell.SummaryBatch.MergeRows). o is only read.
func (c *ColumnarResult) MergeColumnar(o *ColumnarResult) {
	if o.Len() == 0 {
		return
	}
	if cap(c.scratch) < len(o.keys) {
		c.scratch = make([]int32, len(o.keys))
	}
	dst := c.scratch[:len(o.keys)]
	for i, k := range o.keys {
		dst[i] = c.rowOrNew(k)
	}
	c.batch.MergeRows(dst, &o.batch)
	for k, s := range o.spill {
		c.AddSummary(k, s)
	}
}

// ToResult materializes the accumulated cells as a scalar Result. Every map
// and stats map is freshly allocated: nothing in the returned result aliases
// the arena, so Release-ing c afterwards can never reach it.
func (c *ColumnarResult) ToResult() Result {
	r := NewResultCap(c.Len())
	for i, k := range c.keys {
		r.Cells[k] = c.batch.RowSummary(i)
	}
	for k, s := range c.spill {
		// Add, not assign: a key can be split between the arena (plain
		// partials) and the spill (histogram-bearing partials).
		r.Add(k, s)
	}
	return r
}

// --- pooled scalar Results ---

// resultMapPool recycles the Cells maps of short-lived intermediate Results
// (coalescer demux slices, scatter staging). Only the map is pooled; the
// summary values inside are shared and immutable, so dropping the references
// is all that clearing does.
var resultMapPool sync.Pool

// GetResult returns an empty Result backed by a pooled cells map. Callers
// hand it to a consumer that either keeps it (never pool a retained result)
// or recycles it with PutResult.
func GetResult() Result {
	if v := resultMapPool.Get(); v != nil {
		mResultPoolHit.Inc()
		return Result{Cells: v.(map[cell.Key]cell.Summary)}
	}
	mResultPoolMiss.Inc()
	return NewResult()
}

// PutResult clears r's cells map and returns it to the pool. The caller must
// own r exclusively (no other holder of the same map) and must not use it
// afterwards. Oversized maps are dropped so one wide query cannot pin a huge
// bucket array forever.
func PutResult(r Result) {
	if r.Cells == nil || len(r.Cells) > maxPooledResultCells {
		return
	}
	clear(r.Cells)
	resultMapPool.Put(r.Cells)
}

// Reset empties the result in place for reuse: cells cleared (map retained),
// coverage zeroed.
func (r *Result) Reset() {
	clear(r.Cells)
	r.Coverage = Coverage{}
}
