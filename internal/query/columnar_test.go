package query

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"stash/internal/cell"
	"stash/internal/temporal"
)

func colKey(i int) cell.Key {
	return cell.MustKey(fmt.Sprintf("9q%03d", i), "2021-06-01", temporal.Day)
}

func colSummary(rng *rand.Rand) cell.Summary {
	s := cell.NewSummary()
	for _, attr := range []string{"temperature", "humidity"} {
		for n := rng.Intn(4); n >= 0; n-- {
			s.Observe(attr, rng.NormFloat64()*10)
		}
	}
	return s
}

// TestColumnarMatchesScalarMerge: folding scalar results through the columnar
// path and materializing must equal plain Result.Merge over the same inputs.
func TestColumnarMatchesScalarMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	parts := make([]Result, 6)
	for p := range parts {
		parts[p] = NewResult()
		for i := 0; i < 40; i++ {
			parts[p].Add(colKey(rng.Intn(25)), colSummary(rng))
		}
	}

	want := NewResult()
	for _, p := range parts {
		want.Merge(p)
	}

	c := GetColumnar()
	for _, p := range parts {
		c.MergeResult(p)
	}
	got := c.ToResult()
	c.Release()

	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs, ok := got.Cells[k]
		if !ok {
			t.Fatalf("missing key %v", k)
		}
		for attr, w := range ws.Stats {
			if g := gs.Stats[attr]; !g.ApproxEqual(w, 1e-9) {
				t.Fatalf("key %v attr %q: got %+v want %+v", k, attr, g, w)
			}
		}
	}
}

// TestColumnarMergeColumnar: gather-merging two columnar results must agree
// with folding both scalar inputs into one.
func TestColumnarMergeColumnar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := NewResult(), NewResult()
	for i := 0; i < 60; i++ {
		a.Add(colKey(rng.Intn(20)), colSummary(rng))
		b.Add(colKey(rng.Intn(20)+10), colSummary(rng)) // overlapping + disjoint keys
	}

	ca, cb := GetColumnar(), GetColumnar()
	ca.MergeResult(a)
	cb.MergeResult(b)
	ca.MergeColumnar(cb)
	cb.Release()
	got := ca.ToResult()
	ca.Release()

	want := NewResult()
	want.Merge(a)
	want.Merge(b)
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		for attr, w := range ws.Stats {
			if g := got.Cells[k].Stats[attr]; !g.ApproxEqual(w, 1e-9) {
				t.Fatalf("key %v attr %q: got %+v want %+v", k, attr, g, w)
			}
		}
	}
}

// TestColumnarHistogramSpill: histogram-bearing summaries take the scalar
// spill path, and the outcome — including the hist-completeness rule scalar
// Merge applies — must match folding the same sequence through Result.Add.
func TestColumnarHistogramSpill(t *testing.T) {
	spec := cell.HistogramSpec{Lo: 0, Hi: 100, Buckets: 4}
	histSummary := func(v float64) cell.Summary {
		s := cell.NewSummary()
		s.Observe("temperature", v)
		if err := s.ObserveHist("temperature", v, spec); err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := cell.NewSummary()
	plain.Observe("temperature", 10)

	// Key 1: two complete hist-bearing partials (hist survives the merge).
	// Key 2: a plain partial plus a hist-bearing one (scalar Merge drops the
	// now-incomplete hist) — exercises the arena/spill split for one key.
	seq := []struct {
		k cell.Key
		s cell.Summary
	}{
		{colKey(1), histSummary(20)},
		{colKey(1), histSummary(60)},
		{colKey(2), plain},
		{colKey(2), histSummary(80)},
	}

	want := NewResult()
	c := GetColumnar()
	for _, e := range seq {
		want.Add(e.k, e.s)
		c.AddSummary(e.k, e.s)
	}
	got := c.ToResult()
	c.Release()

	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs := got.Cells[k]
		for attr, w := range ws.Stats {
			if g := gs.Stats[attr]; !g.ApproxEqual(w, 1e-9) {
				t.Fatalf("key %v attr %q: got %+v want %+v", k, attr, g, w)
			}
		}
		if len(gs.Hists) != len(ws.Hists) {
			t.Fatalf("key %v: hist sets differ: got %d want %d", k, len(gs.Hists), len(ws.Hists))
		}
		for attr, wh := range ws.Hists {
			if gh := gs.Hists[attr]; gh == nil || gh.Total() != wh.Total() {
				t.Fatalf("key %v hist %q: got %v want total %d", k, attr, gh, wh.Total())
			}
		}
	}
	if h := got.Cells[colKey(1)].Hists["temperature"]; h == nil || h.Total() != 2 {
		t.Fatalf("complete histogram did not survive the spill merge: %v", h)
	}
}

// TestColumnarReleaseNoAliasing proves the pool-safety contract: a Result
// materialized by ToResult must stay intact (and race-free, under -race) while
// the released ColumnarResult is concurrently reacquired and overwritten with
// different data.
func TestColumnarReleaseNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := GetColumnar()
	want := NewResult()
	for i := 0; i < 50; i++ {
		k, s := colKey(i), colSummary(rng)
		c.AddSummary(k, s)
		want.Add(k, s)
	}
	out := c.ToResult()
	c.Release() // out must not alias anything the pool can hand back

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(w)))
			for iter := 0; iter < 50; iter++ {
				cc := GetColumnar()
				for i := 0; i < 64; i++ {
					// Disjoint poison value: any aliasing shows up as a
					// corrupted stat below (and as a race under -race).
					s := cell.NewSummary()
					s.Observe("temperature", -1e9)
					cc.AddSummary(colKey(lrng.Intn(200)), s)
				}
				r := cc.ToResult()
				cc.Release()
				PutResult(r)
			}
		}(w)
	}
	wg.Wait()

	if out.Len() != want.Len() {
		t.Fatalf("released arena reachable: len = %d, want %d", out.Len(), want.Len())
	}
	for k, ws := range want.Cells {
		gs := out.Cells[k]
		for attr, w := range ws.Stats {
			if g := gs.Stats[attr]; !g.ApproxEqual(w, 0) {
				t.Fatalf("released arena reachable: key %v attr %q mutated to %+v (want %+v)", k, attr, g, w)
			}
		}
	}
}

// TestPutResultDropsOversized: the pool must not retain maps past the size
// cap, and pooled maps must come back empty.
func TestPutResultDropsOversized(t *testing.T) {
	r := GetResult()
	r.Add(colKey(1), colSummary(rand.New(rand.NewSource(1))))
	PutResult(r)
	r2 := GetResult()
	if r2.Len() != 0 {
		t.Fatalf("pooled result not cleared: %d cells", r2.Len())
	}
	PutResult(r2)

	big := NewResultCap(maxPooledResultCells + 1)
	for i := 0; i <= maxPooledResultCells; i++ {
		big.Cells[cell.Key{Geohash: fmt.Sprintf("g%06d", i), Time: temporal.Label{Res: temporal.Day, Text: "2021-06-01"}}] = cell.Summary{}
	}
	PutResult(big) // must be dropped, not pooled
	r3 := GetResult()
	if r3.Len() != 0 {
		t.Fatalf("oversized map re-emerged from pool with %d cells", r3.Len())
	}
	PutResult(r3)
}

// BenchmarkResultMergeSteadyState is the allocation gate for the pooled merge
// path: with warm pools, folding node replies into a columnar accumulator and
// recycling everything must run at 0 allocs/op.
func BenchmarkResultMergeSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	// Node replies are built once and only read during merges, mirroring the
	// coordinator contract (reply summaries are shared, never mutated).
	const parts, keysPerPart = 16, 64
	replies := make([]Result, parts)
	for p := range replies {
		replies[p] = NewResult()
		for i := 0; i < keysPerPart; i++ {
			replies[p].Add(colKey(rng.Intn(128)), colSummary(rng))
		}
	}

	warm := func() {
		c := GetColumnar()
		for _, rep := range replies {
			c.MergeResult(rep)
		}
		r := c.ToResult()
		c.Release()
		PutResult(r)
	}
	// Warm the pools (and pre-grow arena/index/map capacities) so the timed
	// region measures the steady state, not first-touch growth.
	for i := 0; i < 16; i++ {
		warm()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := GetColumnar()
		for _, rep := range replies {
			c.MergeResult(rep)
		}
		c.Release()
	}
}
