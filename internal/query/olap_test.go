package query

import (
	"testing"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/temporal"
)

// keySet materializes a query's footprint as a set, failing the test on any
// planning error.
func keySet(t *testing.T, q Query) map[cell.Key]bool {
	t.Helper()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatalf("Footprint(%v): %v", q, err)
	}
	set := make(map[cell.Key]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}

// opposite finds the direction whose offsets negate d's, without assuming
// anything about the enum ordering.
func opposite(t *testing.T, d geohash.Direction) geohash.Direction {
	t.Helper()
	dLat, dLon := d.Offsets()
	for _, o := range geohash.Directions() {
		oLat, oLon := o.Offsets()
		if oLat == -dLat && oLon == -dLon {
			return o
		}
	}
	t.Fatalf("no opposite for %v", d)
	return d
}

// TestPanReverseRoundTrip checks the pan identity of the metamorphic suite in
// isolation: panning an interior query and panning back restores the exact
// box and therefore the exact footprint, for every compass direction.
func TestPanReverseRoundTrip(t *testing.T) {
	q := stateQuery()
	orig := keySet(t, q)
	for _, d := range geohash.Directions() {
		t.Run(d.String(), func(t *testing.T) {
			back := q.Pan(d, 0.4).Pan(opposite(t, d), 0.4)
			if !back.Equal(q) {
				t.Fatalf("pan %v then back changed the query: %v -> %v", d, q, back)
			}
			got := keySet(t, back)
			if len(got) != len(orig) {
				t.Fatalf("footprint size changed: %d -> %d", len(orig), len(got))
			}
			for k := range orig {
				if !got[k] {
					t.Fatalf("footprint lost key %v after pan round trip", k)
				}
			}
		})
	}
}

// TestPanFootprintOverlap asserts the continuity property the differential
// harness relies on: a fractional pan keeps part of the previous footprint,
// so consecutive frames share cells whose aggregates must agree.
func TestPanFootprintOverlap(t *testing.T) {
	tests := []struct {
		dir  geohash.Direction
		frac float64
	}{
		{geohash.North, 0.25},
		{geohash.East, 0.25},
		{geohash.SouthWest, 0.3},
		{geohash.West, 0.5},
	}
	q := stateQuery()
	before := keySet(t, q)
	for _, tc := range tests {
		t.Run(tc.dir.String(), func(t *testing.T) {
			after := keySet(t, q.Pan(tc.dir, tc.frac))
			shared := 0
			for k := range after {
				if before[k] {
					shared++
				}
			}
			if shared == 0 {
				t.Fatalf("pan %v by %.2f shares no footprint with the origin query", tc.dir, tc.frac)
			}
		})
	}
}

// TestDrillRollUpFootprintAlgebra drives the spatial and temporal zoom
// operators through a table and asserts two algebraic facts: the round trip
// is the identity on the query, and every fine-footprint key refines some
// coarse-footprint key (its spatial prefix / temporal parent is present).
func TestDrillRollUpFootprintAlgebra(t *testing.T) {
	tests := []struct {
		name  string
		down  func(Query) (Query, bool)
		up    func(Query) (Query, bool)
		check func(t *testing.T, fine cell.Key, coarseSet map[cell.Key]bool, coarse Query)
	}{
		{
			name: "spatial",
			down: Query.DrillDown,
			up:   Query.RollUp,
			check: func(t *testing.T, fine cell.Key, coarseSet map[cell.Key]bool, coarse Query) {
				parent := cell.Key{Geohash: fine.Geohash[:coarse.SpatialRes], Time: fine.Time}
				if !coarseSet[parent] {
					t.Fatalf("fine key %v has no parent %v in coarse footprint", fine, parent)
				}
			},
		},
		{
			name: "temporal",
			down: Query.DrillDownTemporal,
			up:   Query.RollUpTemporal,
			check: func(t *testing.T, fine cell.Key, coarseSet map[cell.Key]bool, coarse Query) {
				start, err := fine.Time.Start()
				if err != nil {
					t.Fatalf("fine label %v: %v", fine.Time, err)
				}
				parent := cell.Key{Geohash: fine.Geohash, Time: temporal.At(start, coarse.TemporalRes)}
				if !coarseSet[parent] {
					t.Fatalf("fine key %v has no parent %v in coarse footprint", fine, parent)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			coarse := stateQuery()
			fine, ok := tc.down(coarse)
			if !ok {
				t.Fatalf("%s drill-down refused at a mid-range resolution", tc.name)
			}
			back, ok := tc.up(fine)
			if !ok || !back.Equal(coarse) {
				t.Fatalf("%s round trip lost the query: %v -> %v -> %v", tc.name, coarse, fine, back)
			}
			coarseSet := keySet(t, coarse)
			for fk := range keySet(t, fine) {
				tc.check(t, fk, coarseSet, coarse)
			}
		})
	}
}

// TestSliceTimeFootprint checks slicing at each temporal resolution: the
// sliced footprint is exactly the spatial cover crossed with the single
// chosen label — no other time bins survive.
func TestSliceTimeFootprint(t *testing.T) {
	tests := []struct {
		label string
		res   temporal.Resolution
	}{
		{"2015", temporal.Year},
		{"2015-02", temporal.Month},
		{"2015-02-02", temporal.Day},
		{"2015-02-02T15", temporal.Hour},
	}
	base := stateQuery()
	for _, tc := range tests {
		t.Run(tc.label, func(t *testing.T) {
			l, err := temporal.Parse(tc.label, tc.res)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.label, err)
			}
			sliced, err := base.SliceTime(l)
			if err != nil {
				t.Fatalf("SliceTime(%v): %v", l, err)
			}
			if sliced.TemporalRes != tc.res {
				t.Fatalf("slice set resolution %v, want %v", sliced.TemporalRes, tc.res)
			}
			ghs, err := geohash.Cover(base.Box, base.SpatialRes)
			if err != nil {
				t.Fatalf("Cover: %v", err)
			}
			got := keySet(t, sliced)
			if len(got) != len(ghs) {
				t.Fatalf("sliced footprint has %d keys, want %d (one per tile)", len(got), len(ghs))
			}
			for k := range got {
				if k.Time != l {
					t.Fatalf("sliced footprint leaked label %v, want only %v", k.Time, l)
				}
			}
		})
	}
}

// TestDiceFootprintIsCrossProduct checks the general dicing operator: the
// footprint of a diced query is exactly cover(box) x cover(range).
func TestDiceFootprintIsCrossProduct(t *testing.T) {
	tests := []struct {
		name string
		box  geohash.Box
		tr   temporal.Range
	}{
		{
			name: "county-day",
			box:  geohash.Box{MinLat: 35, MaxLat: 35.6, MinLon: -98, MaxLon: -96.8},
			tr:   temporal.DayRange(2015, 2, 3),
		},
		{
			name: "strip-two-days",
			box:  geohash.Box{MinLat: 34, MaxLat: 34.2, MinLon: -101, MaxLon: -95},
			tr: temporal.Range{
				Start: temporal.DayRange(2015, 2, 4).Start,
				End:   temporal.DayRange(2015, 2, 5).End,
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := stateQuery().Dice(tc.box, tc.tr)
			if err := q.Validate(); err != nil {
				t.Fatalf("diced query invalid: %v", err)
			}
			ghs, err := geohash.Cover(tc.box, q.SpatialRes)
			if err != nil {
				t.Fatalf("Cover(box): %v", err)
			}
			labels, err := tc.tr.Cover(q.TemporalRes)
			if err != nil {
				t.Fatalf("Cover(time): %v", err)
			}
			got := keySet(t, q)
			if len(got) != len(ghs)*len(labels) {
				t.Fatalf("footprint has %d keys, want %d x %d", len(got), len(ghs), len(labels))
			}
			for _, gh := range ghs {
				for _, l := range labels {
					k := cell.Key{Geohash: gh, Time: l}
					if !got[k] {
						t.Fatalf("cross product key %v missing from footprint", k)
					}
				}
			}
		})
	}
}

// TestDiceShrinkFootprintNests checks descending iterative dicing at the
// footprint level: each shrink step's spatial tiles are a subset of the
// previous step's, so a session zooming into a hotspot only ever re-reads
// cells it has already seen.
func TestDiceShrinkFootprintNests(t *testing.T) {
	fractions := []float64{0.2, 0.2, 0.5}
	q := stateQuery()
	prev := keySet(t, q)
	for i, f := range fractions {
		q = q.DiceShrink(f)
		if err := q.Validate(); err != nil {
			t.Fatalf("shrink step %d produced invalid query: %v", i, err)
		}
		cur := keySet(t, q)
		if len(cur) == 0 {
			t.Fatalf("shrink step %d emptied the footprint", i)
		}
		for k := range cur {
			if !prev[k] {
				t.Fatalf("shrink step %d introduced key %v outside the previous footprint", i, k)
			}
		}
		prev = cur
	}
}
