package query

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"stash/internal/cell"
	"stash/internal/geohash"
	"stash/internal/temporal"
)

// stateQuery returns a state-sized query as in the paper's setup: spatial
// extent (4°, 8°), one day, resolutions (4, Day).
func stateQuery() Query {
	return Query{
		Box:         geohash.Box{MinLat: 33, MaxLat: 37, MinLon: -103, MaxLon: -95},
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  4,
		TemporalRes: temporal.Day,
	}
}

func TestValidate(t *testing.T) {
	q := stateQuery()
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}

	bad := q
	bad.Box = geohash.Box{MinLat: 5, MaxLat: 1, MinLon: 0, MaxLon: 1}
	if bad.Validate() == nil {
		t.Error("inverted box accepted")
	}

	bad = q
	bad.Time = temporal.Range{}
	if bad.Validate() == nil {
		t.Error("empty time range accepted")
	}

	bad = q
	bad.SpatialRes = 0
	if bad.Validate() == nil {
		t.Error("spatial res 0 accepted")
	}
	bad.SpatialRes = cell.MaxSpatialPrecision + 1
	if bad.Validate() == nil {
		t.Error("over-max spatial res accepted")
	}

	bad = q
	bad.TemporalRes = temporal.Resolution(9)
	if bad.Validate() == nil {
		t.Error("bad temporal res accepted")
	}
}

func TestValidateFootprintLimit(t *testing.T) {
	q := Query{
		Box:         geohash.World,
		Time:        temporal.DayRange(2015, 2, 2),
		SpatialRes:  8,
		TemporalRes: temporal.Hour,
	}
	if q.Validate() == nil {
		t.Error("globe-at-precision-8 query must exceed the footprint limit")
	}
}

func TestFootprint(t *testing.T) {
	q := stateQuery()
	keys, err := q.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.FootprintCount()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Errorf("Footprint len %d != FootprintCount %d", len(keys), n)
	}
	if n == 0 {
		t.Fatal("state query has empty footprint")
	}
	for _, k := range keys {
		if k.SpatialRes() != 4 || k.TemporalRes() != temporal.Day {
			t.Fatalf("footprint key %v has wrong resolutions", k)
		}
		if k.Time.Text != "2015-02-02" {
			t.Fatalf("footprint key %v outside time range", k)
		}
	}
}

func TestFootprintMultiDay(t *testing.T) {
	q := stateQuery()
	r, _ := temporal.NewRange(q.Time.Start, q.Time.Start.AddDate(0, 0, 3))
	q.Time = r
	n3, _ := q.FootprintCount()
	q1 := stateQuery()
	n1, _ := q1.FootprintCount()
	if n3 != 3*n1 {
		t.Errorf("3-day footprint = %d, want 3x single day %d", n3, n1)
	}
}

func TestLevelMatchesCellLevel(t *testing.T) {
	q := stateQuery()
	keys, _ := q.Footprint()
	for _, k := range keys[:min(5, len(keys))] {
		if k.Level() != q.Level() {
			t.Errorf("key level %d != query level %d", k.Level(), q.Level())
		}
	}
}

func TestPanPreservesExtent(t *testing.T) {
	q := stateQuery()
	for _, d := range geohash.Directions() {
		p := q.Pan(d, 0.25)
		if math.Abs(p.Box.Width()-q.Box.Width()) > 1e-9 ||
			math.Abs(p.Box.Height()-q.Box.Height()) > 1e-9 {
			t.Errorf("pan %v changed extent: %v -> %v", d, q.Box, p.Box)
		}
		if p.Box == q.Box {
			t.Errorf("pan %v did not move the box", d)
		}
	}
}

func TestPanDirectionSigns(t *testing.T) {
	q := stateQuery()
	n := q.Pan(geohash.North, 0.1)
	if n.Box.MinLat <= q.Box.MinLat {
		t.Error("north pan should increase latitude")
	}
	e := q.Pan(geohash.East, 0.1)
	if e.Box.MinLon <= q.Box.MinLon {
		t.Error("east pan should increase longitude")
	}
	sw := q.Pan(geohash.SouthWest, 0.1)
	if sw.Box.MinLat >= q.Box.MinLat || sw.Box.MinLon >= q.Box.MinLon {
		t.Error("southwest pan should decrease both")
	}
}

func TestPanOverlapFraction(t *testing.T) {
	// A 10% pan must leave a 90% overlap in the panned dimension; this is
	// the property the paper's caching benefit rests on.
	q := stateQuery()
	p := q.Pan(geohash.East, 0.10)
	inter, ok := q.Box.Intersection(p.Box)
	if !ok {
		t.Fatal("panned box does not overlap original")
	}
	gotFrac := inter.Area() / q.Box.Area()
	if math.Abs(gotFrac-0.90) > 1e-9 {
		t.Errorf("overlap fraction after 10%% pan = %v, want 0.90", gotFrac)
	}
}

func TestPanClampsAtGlobeEdge(t *testing.T) {
	q := stateQuery()
	q.Box = geohash.Box{MinLat: 80, MaxLat: 88, MinLon: 0, MaxLon: 8}
	p := q.Pan(geohash.North, 1.0)
	if p.Box.MaxLat > 90 || !p.Box.Valid() {
		t.Errorf("north pan escaped globe: %v", p.Box)
	}
	if math.Abs(p.Box.Height()-q.Box.Height()) > 1e-9 {
		t.Error("clamped pan should preserve extent")
	}
	q.Box = geohash.Box{MinLat: 0, MaxLat: 5, MinLon: 170, MaxLon: 178}
	p = q.Pan(geohash.East, 2.0)
	if p.Box.MaxLon > 180 || !p.Box.Valid() {
		t.Errorf("east pan escaped globe: %v", p.Box)
	}
}

func TestDiceShrinkExpand(t *testing.T) {
	q := stateQuery()
	s := q.DiceShrink(0.20)
	if got := s.Box.Area() / q.Box.Area(); math.Abs(got-0.80) > 1e-9 {
		t.Errorf("shrink 20%%: area ratio = %v", got)
	}
	cLat0, cLon0 := q.Box.Center()
	cLat1, cLon1 := s.Box.Center()
	if math.Abs(cLat0-cLat1) > 1e-9 || math.Abs(cLon0-cLon1) > 1e-9 {
		t.Error("dice must preserve center")
	}
	if !q.Box.ContainsBox(s.Box) {
		t.Error("shrunk box must nest inside original")
	}

	e := q.DiceExpand(0.25)
	if got := e.Box.Area() / q.Box.Area(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("expand 25%%: area ratio = %v", got)
	}
	if !e.Box.ContainsBox(q.Box) {
		t.Error("expanded box must contain original")
	}
}

func TestDiceShrinkSequenceNests(t *testing.T) {
	// The paper's descending iterative dicing: 5 queries, each 20% smaller.
	// Every query after the first must be fully contained in the first.
	q := stateQuery()
	cur := q
	for i := 0; i < 4; i++ {
		next := cur.DiceShrink(0.20)
		if !cur.Box.ContainsBox(next.Box) {
			t.Fatalf("step %d: %v not nested in %v", i, next.Box, cur.Box)
		}
		cur = next
	}
	if got := cur.Box.Area() / q.Box.Area(); math.Abs(got-math.Pow(0.8, 4)) > 1e-9 {
		t.Errorf("area after 4 shrinks = %v of original", got)
	}
}

func TestDiceIgnoresNonPositiveFactor(t *testing.T) {
	q := stateQuery()
	if got := q.DiceShrink(1.0); got.Box != q.Box {
		t.Error("shrink by 100% should be a no-op (degenerate)")
	}
	if got := q.DiceShrink(1.5); got.Box != q.Box {
		t.Error("shrink beyond 100% should be a no-op")
	}
}

func TestZoomLadder(t *testing.T) {
	q := stateQuery()
	q.SpatialRes = 2
	steps := 0
	for {
		next, ok := q.DrillDown()
		if !ok {
			break
		}
		if next.SpatialRes != q.SpatialRes+1 {
			t.Fatalf("drill-down jumped from %d to %d", q.SpatialRes, next.SpatialRes)
		}
		q = next
		steps++
	}
	if q.SpatialRes != cell.MaxSpatialPrecision {
		t.Errorf("drill-down stopped at %d", q.SpatialRes)
	}
	if steps != cell.MaxSpatialPrecision-2 {
		t.Errorf("steps = %d", steps)
	}
	for {
		next, ok := q.RollUp()
		if !ok {
			break
		}
		q = next
	}
	if q.SpatialRes != 1 {
		t.Errorf("roll-up stopped at %d", q.SpatialRes)
	}
}

func TestTemporalZoom(t *testing.T) {
	q := stateQuery()
	q.TemporalRes = temporal.Month
	d, ok := q.DrillDownTemporal()
	if !ok || d.TemporalRes != temporal.Day {
		t.Errorf("temporal drill-down: %v %v", d.TemporalRes, ok)
	}
	u, ok := q.RollUpTemporal()
	if !ok || u.TemporalRes != temporal.Year {
		t.Errorf("temporal roll-up: %v %v", u.TemporalRes, ok)
	}
	q.TemporalRes = temporal.Hour
	if _, ok := q.DrillDownTemporal(); ok {
		t.Error("drill below Hour accepted")
	}
	q.TemporalRes = temporal.Year
	if _, ok := q.RollUpTemporal(); ok {
		t.Error("roll above Year accepted")
	}
}

func TestSliceTime(t *testing.T) {
	q := stateQuery()
	s, err := q.SliceTime(temporal.MustParse("2015-03", temporal.Month))
	if err != nil {
		t.Fatal(err)
	}
	if s.TemporalRes != temporal.Month {
		t.Errorf("slice temporal res = %v", s.TemporalRes)
	}
	labels, err := s.Time.Cover(temporal.Month)
	if err != nil || len(labels) != 1 || labels[0].Text != "2015-03" {
		t.Errorf("sliced range covers %v", labels)
	}
	if _, err := q.SliceTime(temporal.Label{Res: temporal.Month, Text: "bad"}); err == nil {
		t.Error("slice on invalid label accepted")
	}
}

func TestDice(t *testing.T) {
	q := stateQuery()
	nb := geohash.Box{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1}
	nr := temporal.DayRange(2015, 3, 1)
	d := q.Dice(nb, nr)
	if d.Box != nb || d.Time != nr {
		t.Error("dice did not apply constraints")
	}
	if d.SpatialRes != q.SpatialRes || d.TemporalRes != q.TemporalRes {
		t.Error("dice must preserve resolutions")
	}
}

func TestResultAddMerge(t *testing.T) {
	k1 := cell.MustKey("9q8y", "2015-02-02", temporal.Day)
	k2 := cell.MustKey("9q8z", "2015-02-02", temporal.Day)

	s1 := cell.NewSummary()
	s1.Observe("temperature", 20)
	s2 := cell.NewSummary()
	s2.Observe("temperature", 30)

	r := NewResult()
	r.Add(k1, s1)
	r.Add(k1, s2)
	r.Add(k2, s2)
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if got := r.Cells[k1].Count("temperature"); got != 2 {
		t.Errorf("k1 count = %d", got)
	}
	if r.TotalCount("temperature") != 3 {
		t.Errorf("TotalCount = %d", r.TotalCount("temperature"))
	}

	other := NewResult()
	s3 := cell.NewSummary()
	s3.Observe("temperature", -5)
	other.Add(k1, s3)
	r.Merge(other)
	if got := r.Cells[k1].Count("temperature"); got != 3 {
		t.Errorf("after merge k1 count = %d", got)
	}
	if st := r.Cells[k1].Stats["temperature"]; st.Min != -5 || st.Max != 30 {
		t.Errorf("merged stat = %+v", st)
	}
}

func TestResultAddMergeDoesNotMutateSources(t *testing.T) {
	// Summaries in results are immutable-by-convention: when Add merges a
	// second summary under the same key, neither source may be mutated —
	// both could be aliased by caches or other results.
	k := cell.MustKey("9q8y", "2015-02-02", temporal.Day)
	s1 := cell.NewSummary()
	s1.Observe("x", 1)
	s2 := cell.NewSummary()
	s2.Observe("x", 10)

	r := NewResult()
	r.Add(k, s1)
	r.Add(k, s2) // merge path: must clone, not mutate s1 or s2
	if got := r.Cells[k].Count("x"); got != 2 {
		t.Errorf("merged count = %d, want 2", got)
	}
	if s1.Count("x") != 1 || s2.Count("x") != 1 {
		t.Errorf("Add mutated source summaries: s1=%d s2=%d", s1.Count("x"), s2.Count("x"))
	}
	if st := s1.Stats["x"]; st.Max != 1 {
		t.Errorf("s1 stat mutated: %+v", st)
	}
}

func TestResultZeroValueUsable(t *testing.T) {
	var r Result
	k := cell.MustKey("9q8y", "2015-02-02", temporal.Day)
	s := cell.NewSummary()
	s.Observe("x", 1)
	r.Add(k, s)
	if r.Len() != 1 {
		t.Error("zero-value result should accept Add")
	}
}

func TestResultMergeCommutative(t *testing.T) {
	f := func(vals1, vals2 []float64) bool {
		k := cell.MustKey("9q8y", "2015-02-02", temporal.Day)
		mk := func(vs []float64) Result {
			r := NewResult()
			s := cell.NewSummary()
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				s.Observe("a", math.Mod(v, 1e6))
			}
			if !s.Empty() {
				r.Add(k, s)
			}
			return r
		}
		a1, b1 := mk(vals1), mk(vals2)
		a2, b2 := mk(vals1), mk(vals2)
		a1.Merge(b1)
		b2.Merge(a2)
		if a1.Len() != b2.Len() {
			return false
		}
		sa, sb := a1.Cells[k], b2.Cells[k]
		return sa.Count("a") == sb.Count("a") &&
			sa.Stats["a"].Min == sb.Stats["a"].Min &&
			sa.Stats["a"].Max == sb.Stats["a"].Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueryString(t *testing.T) {
	if stateQuery().String() == "" {
		t.Error("String should format")
	}
}

func BenchmarkFootprintStateQuery(b *testing.B) {
	q := stateQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Footprint(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPolygonQueryFootprint(t *testing.T) {
	tri := geohash.Polygon{{Lat: 30, Lon: -100}, {Lat: 45, Lon: -90}, {Lat: 30, Lon: -80}}
	pq, err := NewPolygonQuery(tri, temporal.DayRange(2015, 2, 2), 3, temporal.Day)
	if err != nil {
		t.Fatal(err)
	}
	polyKeys, err := pq.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	rect := pq
	rect.Polygon = nil // same bbox, rectangular
	rectKeys, err := rect.Footprint()
	if err != nil {
		t.Fatal(err)
	}
	if len(polyKeys) == 0 || len(polyKeys) >= len(rectKeys) {
		t.Errorf("polygon footprint %d should be a strict subset of bbox footprint %d",
			len(polyKeys), len(rectKeys))
	}
	n, err := pq.FootprintCount()
	if err != nil || n != len(polyKeys) {
		t.Errorf("FootprintCount = %d,%v want %d", n, err, len(polyKeys))
	}
}

func TestPolygonQueryValidation(t *testing.T) {
	if _, err := NewPolygonQuery(geohash.Polygon{{Lat: 0, Lon: 0}}, temporal.DayRange(2015, 2, 2), 3, temporal.Day); err == nil {
		t.Error("degenerate polygon accepted")
	}
	q := stateQuery()
	q.Polygon = geohash.Polygon{{Lat: 0, Lon: 0}, {Lat: 1, Lon: 1}} // invalid even with valid Box
	if q.Validate() == nil {
		t.Error("invalid polygon on a valid box accepted")
	}
}

func TestPolygonQueryPanAndDice(t *testing.T) {
	tri := geohash.Polygon{{Lat: 30, Lon: -100}, {Lat: 45, Lon: -90}, {Lat: 30, Lon: -80}}
	pq, err := NewPolygonQuery(tri, temporal.DayRange(2015, 2, 2), 3, temporal.Day)
	if err != nil {
		t.Fatal(err)
	}
	panned := pq.Pan(geohash.East, 0.10)
	if panned.Polygon[0].Lon <= pq.Polygon[0].Lon {
		t.Error("pan did not move polygon vertices")
	}
	if math.Abs(panned.Polygon.BoundingBox().Width()-pq.Polygon.BoundingBox().Width()) > 1e-9 {
		t.Error("pan changed polygon extent")
	}
	if err := panned.Validate(); err != nil {
		t.Errorf("panned polygon query invalid: %v", err)
	}

	diced := pq.DiceShrink(0.2)
	ratio := dicedArea(diced.Polygon) / dicedArea(pq.Polygon)
	if math.Abs(ratio-0.8) > 1e-9 {
		t.Errorf("dice area ratio = %v, want 0.8", ratio)
	}
}

// dicedArea computes the shoelace area of a polygon (planar approximation).
func dicedArea(p geohash.Polygon) float64 {
	var a float64
	n := len(p)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a += p[i].Lon*p[j].Lat - p[j].Lon*p[i].Lat
	}
	return math.Abs(a) / 2
}

// --- coverage report (partial-result contract) ---

func TestCoverageZeroValueComplete(t *testing.T) {
	var c Coverage
	if !c.Complete() {
		t.Error("zero-value coverage must read as complete")
	}
	if c.Ratio() != 1 {
		t.Errorf("zero-value ratio = %v, want 1", c.Ratio())
	}
	if c.Missing() != 0 {
		t.Errorf("zero-value missing = %d", c.Missing())
	}
	if c.String() == "" {
		t.Error("empty coverage string")
	}
	var r Result
	if !r.Coverage.Complete() {
		t.Error("zero-value result coverage incomplete")
	}
}

func TestCoveragePartialAccounting(t *testing.T) {
	c := Coverage{
		Requested:       10,
		Covered:         6,
		Degraded:        2,
		SharesRequested: 16,
		SharesServed:    10,
		NodeErrors:      map[string]string{"node-3": "cluster: node unavailable"},
	}
	if c.Complete() {
		t.Error("partial coverage reads as complete")
	}
	if got := c.Missing(); got != 2 {
		t.Errorf("Missing() = %d, want 2", got)
	}
	if got := c.Ratio(); math.Abs(got-10.0/16.0) > 1e-12 {
		t.Errorf("Ratio() = %v, want %v", got, 10.0/16.0)
	}
	if s := c.String(); !strings.Contains(s, "partial") || !strings.Contains(s, "2 degraded") {
		t.Errorf("String() = %q, want partial summary", s)
	}
	// Full coverage with no errors is complete even when shares are tracked.
	full := Coverage{Requested: 4, Covered: 4, SharesRequested: 6, SharesServed: 6}
	if !full.Complete() || full.Ratio() != 1 {
		t.Errorf("full coverage misreported: %+v", full)
	}
	// All shares failed: ratio 0, nothing covered.
	none := Coverage{Requested: 4, SharesRequested: 4}
	if none.Complete() || none.Ratio() != 0 || none.Missing() != 4 {
		t.Errorf("empty coverage misreported: %+v", none)
	}
	// Missing never goes negative on inconsistent inputs.
	odd := Coverage{Requested: 1, Covered: 2}
	if odd.Missing() != 0 {
		t.Errorf("Missing() went negative: %d", odd.Missing())
	}
}

func TestResultMergeDoesNotTouchCoverage(t *testing.T) {
	a := NewResult()
	a.Coverage = Coverage{Requested: 5, Covered: 5}
	b := NewResult()
	b.Coverage = Coverage{Requested: 9, Covered: 1}
	a.Merge(b)
	if a.Coverage.Requested != 5 || a.Coverage.Covered != 5 {
		t.Errorf("Merge mutated coverage: %+v", a.Coverage)
	}
}
