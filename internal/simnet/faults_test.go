package simnet

import (
	"reflect"
	"testing"
	"time"
)

func TestFaultPlanZeroStateHealthy(t *testing.T) {
	p := NewFaultPlan(1)
	for id := 0; id < 4; id++ {
		if p.Crashed(id) || p.Rejecting(id) || p.Erroring(id) || p.PauseFor(id) != 0 {
			t.Fatalf("fresh plan not healthy for node %d", id)
		}
		if !p.Healthy(id) {
			t.Fatalf("Healthy(%d) = false on fresh plan", id)
		}
	}
	if !p.AllHealthy() {
		t.Fatal("fresh plan not AllHealthy")
	}
	if got := p.Faulted(); len(got) != 0 {
		t.Fatalf("fresh plan reports faulted nodes %v", got)
	}
	if p.DropReply(0) {
		t.Fatal("fresh plan dropped a reply")
	}
}

func TestFaultPlanTransitions(t *testing.T) {
	p := NewFaultPlan(7)
	p.Crash(2)
	p.Pause(3, 20*time.Millisecond)
	p.SetReject(4, true)
	p.SetError(5, true)
	if !p.Crashed(2) || p.PauseFor(3) != 20*time.Millisecond || !p.Rejecting(4) || !p.Erroring(5) {
		t.Fatal("fault setters did not stick")
	}
	if p.AllHealthy() {
		t.Fatal("AllHealthy with four faults active")
	}
	if got, want := p.Faulted(), []int{2, 3, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Faulted() = %v, want %v", got, want)
	}
	for _, id := range []int{2, 3, 4, 5} {
		p.Recover(id)
		if !p.Healthy(id) {
			t.Fatalf("node %d unhealthy after Recover", id)
		}
	}
	if !p.AllHealthy() {
		t.Fatal("not AllHealthy after recovering every node")
	}

	p.Crash(0)
	p.Crash(1)
	p.Reset()
	if !p.AllHealthy() {
		t.Fatal("Reset did not heal all nodes")
	}
}

func TestFaultPlanClamps(t *testing.T) {
	p := NewFaultPlan(1)
	p.Pause(0, -time.Second)
	if p.PauseFor(0) != 0 {
		t.Error("negative pause not clamped")
	}
	p.SetDropProb(0, 2)
	if !p.DropReply(0) {
		t.Error("prob>1 should drop every reply")
	}
	p.SetDropProb(0, -1)
	if p.DropReply(0) {
		t.Error("prob<0 should drop nothing")
	}
}

// TestDropReplyDeterministic: for a fixed seed, the sequence of drop
// decisions per node is a pure function of the request index.
func TestDropReplyDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewFaultPlan(42)
		p.SetDropProb(1, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = p.DropReply(1)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different drop sequences")
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("prob 0.5 dropped %d/%d replies; hash looks degenerate", drops, len(a))
	}
	// A different seed must not replay the same sequence.
	p2 := NewFaultPlan(43)
	p2.SetDropProb(1, 0.5)
	c := make([]bool, 64)
	for i := range c {
		c[i] = p2.DropReply(1)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical drop sequences")
	}
}

// TestRecoverPreservesDropCounter: healing mid-replay must not rewind the
// deterministic drop counter, or replays with heals would diverge.
func TestRecoverPreservesDropCounter(t *testing.T) {
	seq := func(withHeal bool) []bool {
		p := NewFaultPlan(9)
		p.SetDropProb(0, 0.5)
		out := make([]bool, 0, 20)
		for i := 0; i < 10; i++ {
			out = append(out, p.DropReply(0))
		}
		if withHeal {
			p.Recover(0)
			p.SetDropProb(0, 0.5)
		}
		for i := 0; i < 10; i++ {
			out = append(out, p.DropReply(0))
		}
		return out
	}
	if !reflect.DeepEqual(seq(false), seq(true)) {
		t.Fatal("Recover rewound the drop counter")
	}
}

func TestGenerateFaultScheduleDeterministic(t *testing.T) {
	a := GenerateFaultSchedule(1234, 8, 30, 6)
	b := GenerateFaultSchedule(1234, 8, 30, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := GenerateFaultSchedule(1235, 8, 30, 6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a) != 12 {
		t.Fatalf("6 events should yield 12 schedule entries (fault+heal), got %d", len(a))
	}
	for i, ev := range a {
		if ev.Node < 0 || ev.Node >= 8 {
			t.Errorf("entry %d: node %d out of range", i, ev.Node)
		}
		if !ev.Heal && (ev.Step < 0 || ev.Step >= 30) {
			t.Errorf("entry %d: fault step %d out of range", i, ev.Step)
		}
		if i > 0 && a[i-1].Step > ev.Step {
			t.Errorf("schedule not sorted at %d", i)
		}
		if !ev.Heal && ev.Kind == FaultError {
			t.Errorf("entry %d: default kinds must exclude FaultError", i)
		}
	}
}

func TestGenerateFaultScheduleEdgeCases(t *testing.T) {
	if s := GenerateFaultSchedule(1, 0, 10, 3); s != nil {
		t.Error("zero nodes should yield nil schedule")
	}
	if s := GenerateFaultSchedule(1, 4, 0, 3); s != nil {
		t.Error("zero steps should yield nil schedule")
	}
	if s := GenerateFaultSchedule(1, 4, 10, 0); s != nil {
		t.Error("zero events should yield nil schedule")
	}
	// Restricted kinds are honored.
	for _, ev := range GenerateFaultSchedule(5, 4, 10, 8, FaultCrash) {
		if !ev.Heal && ev.Kind != FaultCrash {
			t.Fatalf("kind restriction violated: %v", ev)
		}
	}
}

func TestScheduleApplyAndStrings(t *testing.T) {
	p := NewFaultPlan(3)
	evs := []ScheduledFault{
		{Node: 0, Kind: FaultCrash},
		{Node: 1, Kind: FaultPause, Pause: 7 * time.Millisecond},
		{Node: 2, Kind: FaultDrop, DropProb: 1},
		{Node: 3, Kind: FaultReject},
		{Node: 4, Kind: FaultError},
	}
	for _, ev := range evs {
		p.Apply(ev)
		if ev.String() == "" {
			t.Error("empty event string")
		}
	}
	if !p.Crashed(0) || p.PauseFor(1) != 7*time.Millisecond || !p.DropReply(2) ||
		!p.Rejecting(3) || !p.Erroring(4) {
		t.Fatal("Apply did not install faults")
	}
	// Defaults: zero pause/prob get sensible values.
	p.Apply(ScheduledFault{Node: 5, Kind: FaultPause})
	if p.PauseFor(5) <= 0 {
		t.Error("Apply(FaultPause) with zero Pause installed no delay")
	}
	p.Apply(ScheduledFault{Node: 6, Kind: FaultDrop})
	if !p.DropReply(6) {
		t.Error("Apply(FaultDrop) with zero prob should default to always-drop")
	}
	// Heal clears everything.
	for n := 0; n <= 6; n++ {
		p.Apply(ScheduledFault{Node: n, Heal: true})
	}
	if !p.AllHealthy() {
		t.Fatal("heals did not restore health")
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k := FaultKind(0); k < numFaultKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has empty name", k)
		}
		back, err := ParseFaultKind(name)
		if err != nil || back != k {
			t.Fatalf("ParseFaultKind(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := ParseFaultKind("meteor"); err == nil {
		t.Error("unknown kind accepted")
	}
	if FaultKind(99).String() == "" {
		t.Error("out-of-range kind has empty string")
	}
}
