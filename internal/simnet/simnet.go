// Package simnet models the I/O cost asymmetries of the paper's testbed —
// disk reads, network hops and payload transfer — inside a single process.
//
// The paper's headline results are relative: a warm STASH graph wins because
// memory lookups avoid disk I/O and query forwarding. Reproducing the shape
// of those results requires only that the simulated costs preserve the
// ordering disk ≫ network ≫ memory. Costs here are injected either by really
// sleeping (so concurrent experiments like the hotspot run exhibit genuine
// queueing) or by pure accounting (so unit tests stay instant and
// deterministic).
package simnet

import (
	"sync/atomic"
	"time"
)

// Model prices the simulated operations. The zero value is a free model
// (all costs zero), which is what unit tests want.
type Model struct {
	// DiskSeek is charged once per block read from the backing store.
	DiskSeek time.Duration
	// DiskPoint is charged per observation scanned from a block.
	DiskPoint time.Duration
	// NetHop is charged per message between cluster nodes.
	NetHop time.Duration
	// NetByte is charged per payload byte moved between nodes.
	NetByte time.Duration
	// MemCell is charged per cell touched in the in-memory STASH graph.
	MemCell time.Duration
}

// Default returns the cost model used by the experiment harness. The
// absolute numbers are scaled down from hardware latencies (~10ms seek,
// ~100µs LAN RTT) by 100x so full experiment suites finish in seconds while
// preserving the disk ≫ network ≫ memory ordering.
func Default() Model {
	return Model{
		DiskSeek:  100 * time.Microsecond,
		DiskPoint: 40 * time.Nanosecond,
		NetHop:    10 * time.Microsecond,
		NetByte:   1 * time.Nanosecond,
		MemCell:   30 * time.Nanosecond,
	}
}

// DiskCost returns the cost of reading blocks containing points observations.
func (m Model) DiskCost(blocks, points int) time.Duration {
	return time.Duration(blocks)*m.DiskSeek + time.Duration(points)*m.DiskPoint
}

// NetCost returns the cost of one hop carrying a payload of the given size.
func (m Model) NetCost(bytes int) time.Duration {
	return m.NetHop + time.Duration(bytes)*m.NetByte
}

// MemCost returns the cost of touching cells in memory.
func (m Model) MemCost(cells int) time.Duration {
	return time.Duration(cells) * m.MemCell
}

// Sleeper applies a simulated cost. Implementations decide whether the cost
// is real wall-clock time (Real) or bookkeeping only (Meter).
type Sleeper interface {
	// Apply charges the given cost.
	Apply(d time.Duration)
	// Elapsed returns the total cost charged so far.
	Elapsed() time.Duration
}

// Real is a Sleeper that actually sleeps, so concurrent load produces real
// queueing and contention. Use it in experiments and benchmarks.
type Real struct {
	total atomic.Int64
}

// NewReal returns a sleeping cost applier.
func NewReal() *Real { return &Real{} }

// Apply sleeps for d and records it.
func (r *Real) Apply(d time.Duration) {
	if d <= 0 {
		return
	}
	r.total.Add(int64(d))
	time.Sleep(d)
}

// Elapsed returns the total slept duration across all goroutines.
func (r *Real) Elapsed() time.Duration { return time.Duration(r.total.Load()) }

// Meter is a Sleeper that only accounts, never sleeps. Use it in unit tests
// and anywhere wall-clock determinism matters.
type Meter struct {
	total atomic.Int64
}

// NewMeter returns an accounting-only cost applier.
func NewMeter() *Meter { return &Meter{} }

// Apply records d without sleeping.
func (m *Meter) Apply(d time.Duration) {
	if d <= 0 {
		return
	}
	m.total.Add(int64(d))
}

// Elapsed returns the total recorded cost.
func (m *Meter) Elapsed() time.Duration { return time.Duration(m.total.Load()) }

// Reset clears the recorded total.
func (m *Meter) Reset() { m.total.Store(0) }
